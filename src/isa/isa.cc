#include "src/isa/isa.h"

#include <array>
#include <cctype>
#include <cstdlib>
#include <sstream>

#include "src/common/error.h"

namespace xmt {

namespace {

constexpr std::array<OpInfo, kNumOps> kOpTable = {{
    {"add", OpFormat::kR3, FuKind::kAlu},
    {"addi", OpFormat::kR2I, FuKind::kAlu},
    {"sub", OpFormat::kR3, FuKind::kAlu},
    {"and", OpFormat::kR3, FuKind::kAlu},
    {"andi", OpFormat::kR2I, FuKind::kAlu},
    {"or", OpFormat::kR3, FuKind::kAlu},
    {"ori", OpFormat::kR2I, FuKind::kAlu},
    {"xor", OpFormat::kR3, FuKind::kAlu},
    {"xori", OpFormat::kR2I, FuKind::kAlu},
    {"nor", OpFormat::kR3, FuKind::kAlu},
    {"slt", OpFormat::kR3, FuKind::kAlu},
    {"slti", OpFormat::kR2I, FuKind::kAlu},
    {"sltu", OpFormat::kR3, FuKind::kAlu},
    {"li", OpFormat::kRI, FuKind::kAlu},
    {"la", OpFormat::kRL, FuKind::kAlu},
    {"move", OpFormat::kR2, FuKind::kAlu},
    {"sll", OpFormat::kR2I, FuKind::kShift},
    {"sllv", OpFormat::kR3, FuKind::kShift},
    {"srl", OpFormat::kR2I, FuKind::kShift},
    {"srlv", OpFormat::kR3, FuKind::kShift},
    {"sra", OpFormat::kR2I, FuKind::kShift},
    {"srav", OpFormat::kR3, FuKind::kShift},
    {"mul", OpFormat::kR3, FuKind::kMdu},
    {"div", OpFormat::kR3, FuKind::kMdu},
    {"rem", OpFormat::kR3, FuKind::kMdu},
    {"fadd", OpFormat::kR3, FuKind::kFpu},
    {"fsub", OpFormat::kR3, FuKind::kFpu},
    {"fmul", OpFormat::kR3, FuKind::kFpu},
    {"fdiv", OpFormat::kR3, FuKind::kFpu},
    {"feq", OpFormat::kR3, FuKind::kFpu},
    {"flt", OpFormat::kR3, FuKind::kFpu},
    {"fle", OpFormat::kR3, FuKind::kFpu},
    {"cvtif", OpFormat::kR2, FuKind::kFpu},
    {"cvtfi", OpFormat::kR2, FuKind::kFpu},
    {"beq", OpFormat::kBr2, FuKind::kBranch},
    {"bne", OpFormat::kBr2, FuKind::kBranch},
    {"blt", OpFormat::kBr2, FuKind::kBranch},
    {"ble", OpFormat::kBr2, FuKind::kBranch},
    {"bgt", OpFormat::kBr2, FuKind::kBranch},
    {"bge", OpFormat::kBr2, FuKind::kBranch},
    {"j", OpFormat::kJump, FuKind::kBranch},
    {"jal", OpFormat::kJump, FuKind::kBranch},
    {"jr", OpFormat::kR1, FuKind::kBranch},
    {"jalr", OpFormat::kR1, FuKind::kBranch},
    {"lw", OpFormat::kMem, FuKind::kMem},
    {"sw", OpFormat::kMem, FuKind::kMem},
    {"swnb", OpFormat::kMem, FuKind::kMem},
    {"lbu", OpFormat::kMem, FuKind::kMem},
    {"sb", OpFormat::kMem, FuKind::kMem},
    {"pref", OpFormat::kMem, FuKind::kMem},
    {"rolw", OpFormat::kMem, FuKind::kMem},
    {"fence", OpFormat::kNone, FuKind::kMem},
    {"ps", OpFormat::kGr, FuKind::kPs},
    {"psm", OpFormat::kMem, FuKind::kPs},
    {"mtgr", OpFormat::kGr, FuKind::kPs},
    {"mfgr", OpFormat::kGr, FuKind::kPs},
    {"spawn", OpFormat::kSpawn, FuKind::kControl},
    {"join", OpFormat::kNone, FuKind::kControl},
    {"halt", OpFormat::kNone, FuKind::kControl},
    {"sys", OpFormat::kImm, FuKind::kControl},
    {"nop", OpFormat::kNone, FuKind::kControl},
}};

constexpr std::array<std::string_view, kNumRegs> kRegNames = {
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0",   "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0",   "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8",   "t9", "tid", "k1", "gp", "sp", "fp", "ra"};

}  // namespace

const OpInfo& opInfo(Op op) {
  XMT_CHECK(op < Op::kOpCount);
  return kOpTable[static_cast<std::size_t>(op)];
}

Op opByName(std::string_view name) {
  for (int i = 0; i < kNumOps; ++i)
    if (kOpTable[static_cast<std::size_t>(i)].name == name)
      return static_cast<Op>(i);
  return Op::kOpCount;
}

std::string_view regName(int reg) {
  XMT_CHECK(reg >= 0 && reg < kNumRegs);
  return kRegNames[static_cast<std::size_t>(reg)];
}

int parseReg(std::string_view text) {
  if (!text.empty() && text.front() == '$') text.remove_prefix(1);
  if (text.empty()) return -1;
  // Numeric form: $0..$31.
  if (std::isdigit(static_cast<unsigned char>(text.front()))) {
    int v = 0;
    for (char c : text) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
      v = v * 10 + (c - '0');
      if (v >= kNumRegs * 10) return -1;
    }
    return v < kNumRegs ? v : -1;
  }
  for (int i = 0; i < kNumRegs; ++i)
    if (kRegNames[static_cast<std::size_t>(i)] == text) return i;
  return -1;
}

bool Instruction::isMemory() const {
  FuKind fu = opInfo(op).fu;
  return fu == FuKind::kMem || op == Op::kPsm;
}

bool Instruction::isBranch() const { return opInfo(op).fu == FuKind::kBranch; }

bool Instruction::isStore() const {
  return op == Op::kSw || op == Op::kSwnb || op == Op::kSb;
}

bool Instruction::isLoad() const {
  return op == Op::kLw || op == Op::kLbu || op == Op::kRolw;
}

int regDef(const Instruction& in) {
  switch (opInfo(in.op).format) {
    case OpFormat::kR3:
    case OpFormat::kR2I:
    case OpFormat::kRI:
    case OpFormat::kRL:
    case OpFormat::kR2:
      return in.rd;
    case OpFormat::kMem:
      // Loads write rt; psm writes the old memory value into rt. Stores and
      // pref write no register.
      if (in.isLoad() || in.op == Op::kPsm) return in.rt;
      return -1;
    case OpFormat::kJump:
      return in.op == Op::kJal ? kRa : -1;
    case OpFormat::kR1:
      return in.op == Op::kJalr ? kRa : -1;
    case OpFormat::kGr:
      // ps rd, grN returns the old global-register value in rd; mfgr reads
      // a global register into rd; mtgr only writes the global register.
      return in.op == Op::kMtgr ? -1 : in.rd;
    default:
      return -1;
  }
}

int regUses(const Instruction& in, int out[3]) {
  int n = 0;
  switch (opInfo(in.op).format) {
    case OpFormat::kR3:
      out[n++] = in.rs;
      out[n++] = in.rt;
      break;
    case OpFormat::kR2I:
    case OpFormat::kR2:
      out[n++] = in.rs;
      break;
    case OpFormat::kMem:
      out[n++] = in.rs;  // address base
      if (in.isStore() || in.op == Op::kPsm) out[n++] = in.rt;
      break;
    case OpFormat::kBr2:
      out[n++] = in.rs;
      out[n++] = in.rt;
      break;
    case OpFormat::kR1:
      out[n++] = in.rs;
      break;
    case OpFormat::kGr:
      // ps reads rd as the increment; mtgr reads rd as the source.
      if (in.op != Op::kMfgr) out[n++] = in.rd;
      break;
    case OpFormat::kImm:
      if (in.op == Op::kSys) out[n++] = kA0;
      break;
    case OpFormat::kNone:
      if (in.op == Op::kHalt) out[n++] = kV0;
      break;
    default:
      break;
  }
  return n;
}

bool isNonBlockingStore(const Instruction& in) { return in.op == Op::kSwnb; }

bool isPrefixSum(const Instruction& in) {
  return in.op == Op::kPs || in.op == Op::kPsm;
}

bool isCall(const Instruction& in) {
  return in.op == Op::kJal || in.op == Op::kJalr;
}

bool drainsStores(const Instruction& in) {
  return in.op == Op::kFence || in.op == Op::kJoin || in.op == Op::kHalt;
}

std::string disassemble(const Instruction& in) {
  const OpInfo& info = opInfo(in.op);
  std::ostringstream ss;
  ss << info.name;
  auto r = [](int reg) { return std::string(regName(reg)); };
  switch (info.format) {
    case OpFormat::kR3:
      ss << " " << r(in.rd) << ", " << r(in.rs) << ", " << r(in.rt);
      break;
    case OpFormat::kR2I:
      ss << " " << r(in.rd) << ", " << r(in.rs) << ", " << in.imm;
      break;
    case OpFormat::kRI:
      ss << " " << r(in.rd) << ", " << in.imm;
      break;
    case OpFormat::kRL:
      ss << " " << r(in.rd) << ", 0x" << std::hex << in.imm;
      break;
    case OpFormat::kR2:
      ss << " " << r(in.rd) << ", " << r(in.rs);
      break;
    case OpFormat::kMem:
      ss << " " << r(in.rt) << ", " << in.imm << "(" << r(in.rs) << ")";
      break;
    case OpFormat::kBr2:
      ss << " " << r(in.rs) << ", " << r(in.rt) << ", 0x" << std::hex
         << in.imm;
      break;
    case OpFormat::kJump:
      ss << " 0x" << std::hex << in.imm;
      break;
    case OpFormat::kR1:
      ss << " " << r(in.rs);
      break;
    case OpFormat::kR1L:
      ss << " " << r(in.rd) << ", 0x" << std::hex << in.imm;
      break;
    case OpFormat::kGr:
      ss << " " << r(in.rd) << ", gr" << static_cast<int>(in.rt);
      break;
    case OpFormat::kSpawn:
      ss << " 0x" << std::hex << in.imm << ", 0x" << in.imm2;
      break;
    case OpFormat::kImm:
      ss << " " << in.imm;
      break;
    case OpFormat::kNone:
      break;
  }
  return ss.str();
}

}  // namespace xmt
