// The XMT instruction set architecture.
//
// XMT's ISA is MIPS-like with XMT-specific extensions: spawn/join for
// transitions between serial and parallel mode, ps/psm prefix-sum
// (fetch-and-add) primitives, prefetch into TCU-local prefetch buffers,
// non-blocking stores, read-only cache loads, memory fences, and global
// register file access. Instructions are modelled at transaction level (the
// paper's stated accuracy level): there is no binary encoding; the assembler
// produces decoded Instruction records directly.
//
// Register convention (32 general registers per context):
//   r0  zero      always 0
//   r1  at        assembler temporary
//   r2-r3   v0,v1 return values
//   r4-r7   a0-a3 arguments
//   r8-r15  t0-t7 caller-saved temporaries
//   r16-r23 s0-s7 callee-saved
//   r24-r25 t8,t9 temporaries
//   r26 tid       virtual thread ID ($); written by thread-dispatch hardware
//   r27 k1        reserved for the runtime
//   r28 gp        global pointer
//   r29 sp        stack pointer (serial mode only; no parallel stack)
//   r30 fp        frame pointer
//   r31 ra        return address
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace xmt {

inline constexpr int kNumRegs = 32;
inline constexpr int kNumGlobalRegs = 8;

/// Architectural global-register indices reserved by the spawn hardware.
/// gr6 holds the next virtual-thread ID counter, gr7 the high bound. The
/// compiler may freely use gr0..gr5 for psBaseReg variables.
inline constexpr int kGrNextId = 6;
inline constexpr int kGrHigh = 7;

enum Reg : std::uint8_t {
  kZero = 0, kAt = 1, kV0 = 2, kV1 = 3,
  kA0 = 4, kA1 = 5, kA2 = 6, kA3 = 7,
  kT0 = 8, kT1 = 9, kT2 = 10, kT3 = 11, kT4 = 12, kT5 = 13, kT6 = 14,
  kT7 = 15,
  kS0 = 16, kS1 = 17, kS2 = 18, kS3 = 19, kS4 = 20, kS5 = 21, kS6 = 22,
  kS7 = 23,
  kT8 = 24, kT9 = 25,
  kTid = 26, kK1 = 27, kGp = 28, kSp = 29, kFp = 30, kRa = 31,
};

/// Opcodes. Order is stable; statistics are indexed by this enum.
enum class Op : std::uint8_t {
  // ALU
  kAdd, kAddi, kSub, kAnd, kAndi, kOr, kOri, kXor, kXori, kNor,
  kSlt, kSlti, kSltu, kLi, kLa, kMove,
  // Shift unit
  kSll, kSllv, kSrl, kSrlv, kSra, kSrav,
  // MDU (shared per cluster)
  kMul, kDiv, kRem,
  // FPU (shared per cluster; operands are float bit patterns in int regs)
  kFadd, kFsub, kFmul, kFdiv, kFeq, kFlt, kFle, kCvtif, kCvtfi,
  // Branch unit
  kBeq, kBne, kBlt, kBle, kBgt, kBge, kJ, kJal, kJr, kJalr,
  // Memory
  kLw, kSw, kSwnb, kLbu, kSb, kPref, kRolw, kFence,
  // Prefix-sum and global registers
  kPs, kPsm, kMtgr, kMfgr,
  // XMT control
  kSpawn, kJoin, kHalt, kSys, kNop,
  kOpCount,
};

inline constexpr int kNumOps = static_cast<int>(Op::kOpCount);

/// Operand format, used by the assembler and disassembler.
enum class OpFormat : std::uint8_t {
  kR3,     // op rd, rs, rt
  kR2I,    // op rd, rs, imm
  kRI,     // op rd, imm
  kRL,     // op rd, label        (la)
  kR2,     // op rd, rs           (move, cvt*)
  kMem,    // op rt, imm(rs)      (lw/sw/swnb/lbu/sb/pref/rolw/psm)
  kBr2,    // op rs, rt, label
  kJump,   // op label            (j, jal)
  kR1,     // op rs               (jr)
  kR1L,    // op rd, label        (jalr uses kR2; unused)
  kGr,     // op r, grN           (ps/mtgr/mfgr)
  kSpawn,  // spawn Lstart, Lend
  kNone,   // join, fence, halt, nop
  kImm,    // op imm              (sys)
};

/// Which functional unit executes an op (drives cycle-accurate routing and
/// the per-unit activity counters).
enum class FuKind : std::uint8_t {
  kAlu, kShift, kBranch, kMdu, kFpu, kMem, kPs, kControl,
};

/// A decoded instruction. `imm2` is only used by spawn (end address).
struct Instruction {
  Op op = Op::kNop;
  std::uint8_t rd = 0;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::int32_t imm = 0;
  std::int32_t imm2 = 0;
  std::int32_t srcLine = 0;  // assembly source line, for traces/diagnostics

  bool isMemory() const;
  bool isBranch() const;
  bool isStore() const;
  bool isLoad() const;
};

/// Static properties of an opcode.
struct OpInfo {
  std::string_view name;
  OpFormat format;
  FuKind fu;
};

/// Lookup table entry for `op`. Never fails for valid enum values.
const OpInfo& opInfo(Op op);

/// Finds an opcode by mnemonic; returns kOpCount if unknown.
Op opByName(std::string_view name);

/// Canonical register names ("zero", "v0", "a0", "t0", "tid", "sp", ...).
std::string_view regName(int reg);

/// Parses a register operand: "$5", "$t0", "t0", "$zero"... Returns -1 if
/// unrecognized.
int parseReg(std::string_view text);

/// Human-readable disassembly, e.g. "addi t0, t1, 4".
std::string disassemble(const Instruction& in);

// --- Register use/def model and instruction-class predicates -------------
//
// Used by the assembly-level verifier (src/compiler/analysis/asmverify) to
// run dataflow over physical registers. The model covers the implicit
// operands the functional model honours: `jal`/`jalr` define ra, `ps` both
// reads and writes rd, `psm` reads rs+rt and writes rt (the old value),
// `sys` reads a0 and `halt` reads v0 (the halt code).

/// The general register written by `in`, or -1 when it writes none.
int regDef(const Instruction& in);

/// Collects the general registers read by `in` into `out` (capacity >= 3);
/// returns how many were written. Duplicates are possible (e.g. add r, x, x).
int regUses(const Instruction& in, int out[3]);

/// True for the non-blocking store `swnb` — the only store the memory
/// system acknowledges before completion.
bool isNonBlockingStore(const Instruction& in);

/// True for the prefix-sum primitives `ps` / `psm`.
bool isPrefixSum(const Instruction& in);

/// True for `jal` / `jalr` (function calls).
bool isCall(const Instruction& in);

/// True for ops that drain outstanding non-blocking stores before
/// completing: `fence` itself, plus `join` and `halt` (the cycle model
/// waits for the store queue to empty at both).
bool drainsStores(const Instruction& in);

}  // namespace xmt
