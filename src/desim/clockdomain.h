// Clock domains with runtime-variable frequency.
//
// XMTSim assigns clock domains to clusters, the interconnection network,
// shared caches and DRAM controllers; activity plug-ins "can change the
// frequencies of the clock domains ... or even enable and disable them"
// (Section III-B). A ClockDomain maps domain-local cycles to global
// picosecond time. Frequency changes take effect from the moment of the
// change: the edge phase is re-anchored at the change time so edges remain
// monotonic.
//
// Disabling a domain is modelled as dropping to a configurable "gated"
// frequency (default 1 MHz) rather than stopping edges entirely, so actors
// polling the domain always make progress; this preserves the DVFS
// experiments while keeping the engine livelock-free.
#pragma once

#include <cstdint>
#include <string>

#include "src/desim/scheduler.h"

namespace xmt {

class ClockDomain {
 public:
  /// Frequency in GHz; period is rounded to whole picoseconds.
  ClockDomain(std::string name, double freqGhz);

  const std::string& name() const { return name_; }

  /// Current period in picoseconds.
  SimTime period() const { return period_; }
  double frequencyGhz() const { return 1000.0 / static_cast<double>(period_); }

  /// Changes frequency; edges re-anchor at `now`.
  void setFrequency(double freqGhz, SimTime now);

  /// Gates / ungates the domain (models clock disable as a crawl clock).
  void setEnabled(bool enabled, SimTime now);
  bool enabled() const { return enabled_; }

  /// First edge strictly after `t`.
  SimTime nextEdge(SimTime t) const;

  /// Edge `n` cycles after the first edge strictly after `t` (n >= 0).
  SimTime edgeAfter(SimTime t, std::int64_t n) const;

  /// Number of whole cycles of this domain elapsed up to time `t` since
  /// construction, accounting for frequency changes.
  std::int64_t cyclesAt(SimTime t) const;

  /// Time at which cycle count `c` is reached, assuming the current
  /// frequency holds from the anchor onward. `c` must be >= the anchor's
  /// cycle count.
  SimTime timeOfCycle(std::int64_t c) const;

 private:
  void rebase(SimTime now);

  std::string name_;
  SimTime period_;
  SimTime savedPeriod_;      // period to restore on enable
  SimTime anchorTime_ = 0;   // edge-phase anchor
  std::int64_t anchorCycles_ = 0;  // cycles elapsed at anchorTime_
  bool enabled_ = true;
};

}  // namespace xmt
