// Bucketed event queue for the discrete-event scheduler.
//
// XMTSim's event population is near-monotone: almost every event lands on
// the current timestamp (the two-phase clock cycle being processed) or a
// handful of future clock edges. A binary heap pays O(log n) per push/pop
// and gives no credit for that structure. This queue does: events live in
// per-timestamp buckets, each bucket holding one FIFO lane per phase
// priority, so the dominant "same time, next phase" case is an O(1) vector
// append / cursor bump. Buckets for distinct future times sit in a sorted
// map whose size is the number of *distinct* pending timestamps (typically
// a few clock-domain edges), not the number of pending events.
//
// Determinism contract: pop() returns events in exactly ascending
// (time, priority, insertion-seq) order — the same total order the seed
// priority_queue produced. Time order comes from the sorted bucket map,
// priority order from scanning lanes 0..N within a bucket, and seq order
// for free: pushes append to a lane in insertion order, so the lane cursor
// replays them FIFO. Lanes are rescanned from 0 on every pop because an
// actor fired at (T, p) may push a new event at (T, p' < p) — it must still
// fire before pending (T, p) events, and it does.
//
// Events are cancellable: push() returns a Handle the owner may later pass
// to cancel(), which tombstones the item in place; pop() skips tombstones.
// Stale handles (already fired, already cancelled, or pointing into a
// recycled bucket) are detected via a per-activation stamp and rejected, so
// callers need no fired-vs-pending bookkeeping of their own.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/common/error.h"

namespace xmt {

class Actor;

/// Simulated time in picoseconds.
using SimTime = std::int64_t;

/// Event priorities within one timestamp (smaller runs first).
inline constexpr int kPhaseNegotiate = 0;
inline constexpr int kPhaseTransfer = 1;
inline constexpr int kPhaseRetire = 2;

/// Internal lane for stop events; sorts after every phase at equal time.
inline constexpr int kLaneStop = kPhaseRetire + 1;
inline constexpr int kNumEventLanes = kLaneStop + 1;

class EventQueue {
 public:
  struct Fired {
    SimTime time;
    Actor* actor;  // nullptr == stop event
  };

  /// Position of a scheduled event, for cancel(). Default-constructed or
  /// stale handles are safely rejected.
  struct Handle {
    SimTime time = -1;
    std::uint64_t stamp = 0;
    std::uint32_t index = 0;
    std::uint8_t lane = 0;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Inserts an event; lane must be in [0, kNumEventLanes).
  Handle push(SimTime time, int lane, Actor* actor) {
    Bucket* b = bucketFor(time);
    auto& items = b->lanes[lane];
    items.push_back(Item{actor, false});
    ++live_;
    return Handle{time, b->stamp, static_cast<std::uint32_t>(items.size() - 1),
                  static_cast<std::uint8_t>(lane)};
  }

  /// Cancels a not-yet-fired event. Returns false (and does nothing) if the
  /// handle is stale: default, already fired, already cancelled, or from a
  /// recycled bucket.
  bool cancel(const Handle& h) {
    if (h.time < 0) return false;
    auto it = buckets_.find(h.time);
    if (it == buckets_.end()) return false;
    Bucket* b = it->second.get();
    if (b->stamp != h.stamp) return false;       // bucket was recycled
    if (h.index < b->heads[h.lane]) return false;  // already fired
    // Stamps are a monotone 64-bit counter, so a recycled bucket can never
    // reproduce an old activation's stamp; this bound check is defense in
    // depth against forged/corrupted handles, not a reachable state.
    if (h.index >= b->lanes[h.lane].size()) return false;
    Item& item = b->lanes[h.lane][h.index];
    if (item.cancelled) return false;
    item.cancelled = true;
    --live_;
    return true;
  }

  /// Earliest live event time. Queue must not be empty.
  SimTime headTime() { return front()->time; }

  /// Removes and returns the earliest event: smallest (time, lane), FIFO
  /// within a lane. Queue must not be empty.
  Fired pop() {
    Bucket* b = front();
    for (int lane = 0; lane < kNumEventLanes; ++lane) {
      auto& items = b->lanes[lane];
      std::uint32_t& head = b->heads[lane];
      while (head < items.size() && items[head].cancelled) ++head;
      if (head < items.size()) {
        Actor* actor = items[head].actor;
        ++head;
        --live_;
        return Fired{b->time, actor};
      }
    }
    // front() guarantees a live item.
    throw InternalError("EventQueue bucket lost its live item");
  }

 private:
  struct Item {
    Actor* actor;
    bool cancelled;
  };
  struct Bucket {
    SimTime time = 0;
    std::uint64_t stamp = 0;
    std::array<std::vector<Item>, kNumEventLanes> lanes;
    std::array<std::uint32_t, kNumEventLanes> heads{};
  };

  static bool hasLive(Bucket* b) {
    for (int lane = 0; lane < kNumEventLanes; ++lane) {
      auto& items = b->lanes[lane];
      std::uint32_t& head = b->heads[lane];
      while (head < items.size() && items[head].cancelled) ++head;
      if (head < items.size()) return true;
    }
    return false;
  }

  Bucket* bucketFor(SimTime time) {
    if (cachedFront_ != nullptr && cachedFront_->time == time)
      return cachedFront_;
    auto [it, inserted] = buckets_.try_emplace(time);
    if (inserted) {
      if (!free_.empty()) {
        it->second = std::move(free_.back());
        free_.pop_back();
        for (auto& lane : it->second->lanes) lane.clear();
        it->second->heads.fill(0);
      } else {
        it->second = std::make_unique<Bucket>();
      }
      it->second->time = time;
      it->second->stamp = ++stampSeq_;
    }
    Bucket* b = it->second.get();
    if (cachedFront_ == nullptr || time < cachedFront_->time) cachedFront_ = b;
    return b;
  }

  /// The earliest bucket holding a live event, pruning fully-drained
  /// buckets along the way. Queue must not be empty.
  Bucket* front() {
    XMT_CHECK(live_ > 0);
    if (cachedFront_ != nullptr && hasLive(cachedFront_)) return cachedFront_;
    for (;;) {
      auto it = buckets_.begin();
      Bucket* b = it->second.get();
      if (hasLive(b)) {
        cachedFront_ = b;
        return b;
      }
      if (cachedFront_ == b) cachedFront_ = nullptr;
      free_.push_back(std::move(it->second));
      buckets_.erase(it);
    }
  }

  std::map<SimTime, std::unique_ptr<Bucket>> buckets_;
  std::vector<std::unique_ptr<Bucket>> free_;  // recycled bucket storage
  Bucket* cachedFront_ = nullptr;  // earliest bucket, when known
  std::uint64_t stampSeq_ = 0;
  std::size_t live_ = 0;  // pushed, not yet fired or cancelled
};

}  // namespace xmt
