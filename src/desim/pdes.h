// Conservative parallel discrete-event simulation (PDES) driver.
//
// The actor graph is partitioned into shards, each owning a private
// Scheduler (its own event list, clock edges and now()). Shards advance in
// lockstep *windows*: all shards process their local events with
// time < `end` in parallel, then meet at a barrier where a single
// coordinator thread applies every buffered cross-shard message and fires
// any global (all-shard) events. The window size is bounded by the
// *lookahead* L — the minimum latency of any cross-shard link — which makes
// the scheme null-message-free: a message created at local time s carries a
// ready-time >= s + L >= end, so applying it after the barrier can never
// inject work into a shard's past. This is the classic conservative
// synchronous protocol (CMB windows; cf. MGSim's sharded core simulation
// and GPU-simulator parallelizations), specialized to this engine's
// bucketed event queue: a window is one `Scheduler::runWindow(end)` call.
//
// The driver is policy-free: it knows nothing about clusters or caches.
// The model supplies PdesShard implementations whose applyInbound() drains
// the model's own cross-shard channels; determinism is the *model's*
// obligation (canonical arbitration of multi-source sinks, see
// src/desim/port.h ArbTimedQueue) — the driver only guarantees that
// windows, barriers and global events happen in the same order every run.
//
// Threading: run(parallel=true) pins shard 0 to the calling thread
// (coordinator) and runs shards 1..K-1 as long-lived tasks on a private
// ThreadPool; run(parallel=false) executes every shard's window on the
// calling thread in shard order — same results, no concurrency (used when
// a trace sink needs a stable interleaving, and by tests).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/desim/scheduler.h"

namespace xmt {

/// One partition of the actor graph, owned by the model.
class PdesShard {
 public:
  virtual ~PdesShard() = default;

  /// Processes local events with time < `end`; returns true if a stop
  /// event fired (only the hub shard ever stops). Runs concurrently with
  /// other shards' windows — it must touch only shard-local state plus the
  /// shard's outbound channels.
  virtual bool runWindow(SimTime end) = 0;

  /// Applies messages buffered for this shard during the last window.
  /// Called by the coordinator between windows; never concurrent.
  virtual void applyInbound() = 0;

  /// Earliest pending local event time, -1 if idle. Coordinator-only.
  virtual SimTime nextEventTime() = 0;
};

class PdesDriver {
 public:
  enum class RunEnd {
    kStopped,  // a shard's stop event (halt / budget / checkpoint) fired
    kDrained,  // every shard's event list drained with no global pending
  };

  /// `lookahead` must be > 0 (the minimum cross-shard link latency in ps).
  PdesDriver(std::vector<PdesShard*> shards, SimTime lookahead);

  /// Registers a coordinator-fired event: windows never cross `time`, and
  /// once every shard has caught up to it, `fire(time)` runs with all
  /// shards parked (it may schedule into any shard, at times >= `time`).
  void scheduleGlobal(SimTime time, std::function<void(SimTime)> fire);

  /// Aligns a window boundary to end just *after* `time`, so a stop event
  /// scheduled at `time` in a shard is reached exactly (all shards process
  /// every event with time <= `time` first, matching the sequential
  /// stop-lane-last order). The stop event itself lives in the shard's
  /// scheduler; this only shapes the windows.
  void alignStop(SimTime time);

  RunEnd run(bool parallel);

 private:
  struct GlobalEvent {
    SimTime time;
    bool stopAlign;  // window ends at time+1 instead of time
    std::function<void(SimTime)> fire;
  };

  static constexpr SimTime kNoEvent = -1;

  /// Next window end, or kNoEvent when fully drained.
  SimTime computeWindowEnd();
  /// Fires (and pops) all non-stop globals with time <= `end`.
  void fireGlobalsUpTo(SimTime end);
  void insertGlobal(GlobalEvent g);

  RunEnd runSerial();
  RunEnd runParallel();

  std::vector<PdesShard*> shards_;
  SimTime lookahead_;
  std::vector<GlobalEvent> globals_;  // sorted by (time, stopAlign)
};

}  // namespace xmt
