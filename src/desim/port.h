// Timed delivery queues — the "ports" through which packages move between
// cycle-accurate components.
//
// A producer pushes an item with a future ready-time (now + link latency) and
// wakes the consuming actor; the consumer pops items whose ready-time has
// arrived. Entries are ordered by (readyTime, sequence), so same-source
// traffic to the same destination is never reordered — the hardware property
// the XMT memory model's first rule relies on (Section IV-A).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "src/desim/scheduler.h"

namespace xmt {

template <typename T>
class TimedQueue {
 public:
  void push(SimTime readyAt, T item) {
    q_.push(Entry{readyAt, seq_++, std::move(item)});
  }

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  /// True if the head entry is ready at time `now`.
  bool ready(SimTime now) const { return !q_.empty() && q_.top().readyAt <= now; }

  /// Ready-time of the earliest entry; -1 when empty.
  SimTime nextReadyTime() const { return q_.empty() ? -1 : q_.top().readyAt; }

  /// Pops the head entry (must be ready).
  T pop(SimTime now) {
    XMT_CHECK(ready(now));
    T item = std::move(const_cast<Entry&>(q_.top()).item);
    q_.pop();
    return item;
  }

  void clear() {
    while (!q_.empty()) q_.pop();
  }

 private:
  struct Entry {
    SimTime readyAt;
    std::uint64_t seq;
    T item;
    bool operator>(const Entry& o) const {
      if (readyAt != o.readyAt) return readyAt > o.readyAt;
      return seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> q_;
  std::uint64_t seq_ = 0;
};

}  // namespace xmt
