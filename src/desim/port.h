// Timed delivery queues — the "ports" through which packages move between
// cycle-accurate components.
//
// A producer pushes an item with a future ready-time (now + link latency) and
// wakes the consuming actor; the consumer pops items whose ready-time has
// arrived. Entries are ordered by (readyTime, sequence), so same-source
// traffic to the same destination is never reordered — the hardware property
// the XMT memory model's first rule relies on (Section IV-A).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "src/desim/scheduler.h"

namespace xmt {

template <typename T>
class TimedQueue {
 public:
  void push(SimTime readyAt, T item) {
    q_.push(Entry{readyAt, seq_++, std::move(item)});
  }

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  /// True if the head entry is ready at time `now`.
  bool ready(SimTime now) const { return !q_.empty() && q_.top().readyAt <= now; }

  /// Ready-time of the earliest entry; -1 when empty.
  SimTime nextReadyTime() const { return q_.empty() ? -1 : q_.top().readyAt; }

  /// Pops the head entry (must be ready).
  T pop(SimTime now) {
    XMT_CHECK(ready(now));
    T item = std::move(const_cast<Entry&>(q_.top()).item);
    q_.pop();
    return item;
  }

  void clear() {
    while (!q_.empty()) q_.pop();
  }

 private:
  struct Entry {
    SimTime readyAt;
    std::uint64_t seq;
    T item;
    bool operator>(const Entry& o) const {
      if (readyAt != o.readyAt) return readyAt > o.readyAt;
      return seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> q_;
  std::uint64_t seq_ = 0;
};

/// A timed queue whose same-ready-time entries are served in a canonical
/// source-key order instead of global push order: (readyAt, srcKey, seq).
///
/// Multi-producer sinks (the cache modules' inject queues, the PS unit's
/// request inbox) use this so the service order is a function of simulated
/// time and topology only — two engines that deliver the same entries with
/// the same ready-times pop them identically even if the *push* interleaving
/// differs (the sequential engine pushes in event order; the PDES engine
/// pushes at barrier application in shard order). Per-source FIFO is
/// preserved: entries from one key keep their relative push order (seq is
/// globally monotone, and any one source's pushes are totally ordered).
template <typename T>
class ArbTimedQueue {
 public:
  void push(SimTime readyAt, int srcKey, T item) {
    q_.push(Entry{readyAt, srcKey, seq_++, std::move(item)});
  }

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  bool ready(SimTime now) const { return !q_.empty() && q_.top().readyAt <= now; }

  SimTime nextReadyTime() const { return q_.empty() ? -1 : q_.top().readyAt; }

  T pop(SimTime now) {
    XMT_CHECK(ready(now));
    T item = std::move(const_cast<Entry&>(q_.top()).item);
    q_.pop();
    return item;
  }

  void clear() {
    while (!q_.empty()) q_.pop();
  }

 private:
  struct Entry {
    SimTime readyAt;
    int srcKey;
    std::uint64_t seq;
    T item;
    bool operator>(const Entry& o) const {
      if (readyAt != o.readyAt) return readyAt > o.readyAt;
      if (srcKey != o.srcKey) return srcKey > o.srcKey;
      return seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> q_;
  std::uint64_t seq_ = 0;
};

}  // namespace xmt
