#include "src/desim/clockdomain.h"

#include <cmath>

namespace xmt {

namespace {
constexpr double kGatedFreqGhz = 0.001;  // 1 MHz crawl clock when "disabled"

SimTime periodFromGhz(double freqGhz) {
  XMT_CHECK(freqGhz > 0.0);
  auto period = static_cast<SimTime>(std::llround(1000.0 / freqGhz));
  return period < 1 ? 1 : period;
}
}  // namespace

ClockDomain::ClockDomain(std::string name, double freqGhz)
    : name_(std::move(name)),
      period_(periodFromGhz(freqGhz)),
      savedPeriod_(period_) {}

void ClockDomain::rebase(SimTime now) {
  anchorCycles_ = cyclesAt(now);
  anchorTime_ = now;
}

void ClockDomain::setFrequency(double freqGhz, SimTime now) {
  if (!enabled_) {
    // A gated domain keeps crawling at the gated period; the new frequency
    // only takes effect when the domain is re-enabled. Overwriting period_
    // here would silently un-gate the domain.
    savedPeriod_ = periodFromGhz(freqGhz);
    return;
  }
  rebase(now);
  period_ = periodFromGhz(freqGhz);
  savedPeriod_ = period_;
}

void ClockDomain::setEnabled(bool enabled, SimTime now) {
  if (enabled == enabled_) return;
  rebase(now);
  enabled_ = enabled;
  if (enabled) {
    period_ = savedPeriod_;
  } else {
    savedPeriod_ = period_;
    period_ = periodFromGhz(kGatedFreqGhz);
  }
}

SimTime ClockDomain::nextEdge(SimTime t) const {
  if (t < anchorTime_) t = anchorTime_;
  SimTime delta = t - anchorTime_;
  SimTime k = delta / period_ + 1;
  return anchorTime_ + k * period_;
}

SimTime ClockDomain::edgeAfter(SimTime t, std::int64_t n) const {
  XMT_CHECK(n >= 0);
  return nextEdge(t) + n * period_;
}

std::int64_t ClockDomain::cyclesAt(SimTime t) const {
  if (t <= anchorTime_) return anchorCycles_;
  return anchorCycles_ + (t - anchorTime_) / period_;
}

SimTime ClockDomain::timeOfCycle(std::int64_t c) const {
  XMT_CHECK(c >= anchorCycles_);
  return anchorTime_ + (c - anchorCycles_) * period_;
}

}  // namespace xmt
