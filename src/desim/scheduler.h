// Discrete-event scheduler: the core of XMTSim's simulation engine.
//
// The paper (Section III-C) describes XMTSim as a discrete-event simulator:
// a system is a collection of actors that schedule events; the scheduler
// keeps events ordered by time and priority, and notifies one actor per
// main-loop iteration (Fig. 5b). Time does not advance in fixed steps — the
// event list drives it — which lets synchronous components in different
// clock domains and (future) asynchronous components coexist.
//
// Priorities implement the paper's two-phase clock-cycle scheme: within one
// timestamp, kPhaseNegotiate events run before kPhaseTransfer events, which
// run before kPhaseRetire events; ties break by insertion order, making
// simulation fully deterministic. The event list itself is a bucketed
// EventQueue (see eventqueue.h) that exploits the near-monotone timestamp
// distribution while preserving exactly that (time, priority, seq) order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/error.h"
#include "src/desim/eventqueue.h"

namespace xmt {

/// An object that can schedule events and is notified when they fire.
class Actor {
 public:
  explicit Actor(std::string name) : name_(std::move(name)) {}
  virtual ~Actor() = default;
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  /// Called by the scheduler when an event this actor scheduled fires.
  virtual void notify(SimTime now) = 0;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// The discrete-event scheduler (Fig. 4 / Fig. 5b of the paper).
class Scheduler {
 public:
  Scheduler() = default;

  /// Schedules `actor` to be notified at `time` with the given phase
  /// priority. `time` must be >= now().
  void schedule(Actor* actor, SimTime time, int priority = kPhaseTransfer);

  /// Like schedule(), but returns a handle the caller may pass to cancel()
  /// to withdraw the event before it fires.
  EventQueue::Handle scheduleCancellable(Actor* actor, SimTime time,
                                         int priority = kPhaseTransfer);

  /// Cancels a pending event. Stale handles (fired, cancelled, default) are
  /// ignored; returns whether an event was actually withdrawn.
  bool cancel(const EventQueue::Handle& handle) {
    return events_.cancel(handle);
  }

  /// Schedules the special stop event; run() returns when it is reached.
  void scheduleStop(SimTime time);

  /// Requests an immediate stop (stop event at the current time).
  void requestStop() { scheduleStop(now_); }

  /// Withdraws all pending stop events (already-consumed ones are ignored),
  /// so a finished run's unreached stop cannot leak into a resumed run.
  void cancelStops();

  /// Processes events until the stop event fires or the list drains.
  /// Returns true if stopped by a stop event, false if the list drained.
  bool run();

  /// Processes events with time <= `limit` (and not past a stop event).
  bool runUntil(SimTime limit);

  /// Processes events with time strictly < `end` (and not past a stop
  /// event). Returns true if a stop event fired inside the window. This is
  /// the PDES window primitive: a shard runs all its local events up to the
  /// barrier time, after which cross-shard messages are applied (see
  /// src/desim/pdes.h). now() is left at the last fired event, not advanced
  /// to `end`.
  bool runWindow(SimTime end);

  /// Processes a single event. Returns false if the list is empty or the
  /// next event is a stop event (which is consumed).
  bool step();

  SimTime now() const { return now_; }

  /// Earliest pending event time; -1 when the list is empty. Used by the
  /// PDES driver to size conservative windows.
  SimTime nextEventTime() { return events_.empty() ? -1 : events_.headTime(); }

  bool empty() const { return events_.empty(); }
  std::size_t pendingEvents() const { return events_.size(); }
  std::uint64_t eventsProcessed() const { return processed_; }

 private:
  EventQueue events_;
  std::vector<EventQueue::Handle> stops_;  // pending (or consumed) stops
  SimTime now_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace xmt
