// Discrete-event scheduler: the core of XMTSim's simulation engine.
//
// The paper (Section III-C) describes XMTSim as a discrete-event simulator:
// a system is a collection of actors that schedule events; the scheduler
// keeps events ordered by time and priority, and notifies one actor per
// main-loop iteration (Fig. 5b). Time does not advance in fixed steps — the
// event list drives it — which lets synchronous components in different
// clock domains and (future) asynchronous components coexist.
//
// Priorities implement the paper's two-phase clock-cycle scheme: within one
// timestamp, kPhaseNegotiate events run before kPhaseTransfer events, which
// run before kPhaseRetire events; ties break by insertion order, making
// simulation fully deterministic.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "src/common/error.h"

namespace xmt {

/// Simulated time in picoseconds.
using SimTime = std::int64_t;

/// Event priorities within one timestamp (smaller runs first).
inline constexpr int kPhaseNegotiate = 0;
inline constexpr int kPhaseTransfer = 1;
inline constexpr int kPhaseRetire = 2;

/// An object that can schedule events and is notified when they fire.
class Actor {
 public:
  explicit Actor(std::string name) : name_(std::move(name)) {}
  virtual ~Actor() = default;
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  /// Called by the scheduler when an event this actor scheduled fires.
  virtual void notify(SimTime now) = 0;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// The discrete-event scheduler (Fig. 4 / Fig. 5b of the paper).
class Scheduler {
 public:
  Scheduler() = default;

  /// Schedules `actor` to be notified at `time` with the given phase
  /// priority. `time` must be >= now().
  void schedule(Actor* actor, SimTime time, int priority = kPhaseTransfer);

  /// Schedules the special stop event; run() returns when it is reached.
  void scheduleStop(SimTime time);

  /// Requests an immediate stop (stop event at the current time).
  void requestStop() { scheduleStop(now_); }

  /// Processes events until the stop event fires or the list drains.
  /// Returns true if stopped by a stop event, false if the list drained.
  bool run();

  /// Processes events with time <= `limit` (and not past a stop event).
  bool runUntil(SimTime limit);

  /// Processes a single event. Returns false if the list is empty or the
  /// next event is a stop event (which is consumed).
  bool step();

  SimTime now() const { return now_; }
  bool empty() const { return events_.empty(); }
  std::size_t pendingEvents() const { return events_.size(); }
  std::uint64_t eventsProcessed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    int priority;
    std::uint64_t seq;
    Actor* actor;  // nullptr == stop event
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      if (priority != o.priority) return priority > o.priority;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace xmt
