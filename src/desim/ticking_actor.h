// TickingActor: a clocked component (or macro-actor) that sleeps when idle.
//
// This realizes the paper's "Inputable"/macro-actor pattern: a component is
// only notified when it has work. Producers push packages into the
// component's queues and call wakeAt(); the actor then ticks on its clock
// domain's edges until its tick() reports there is nothing left to do, at
// which point it stops scheduling itself (the DE advantage over
// discrete-time polling — Fig. 5 of the paper).
//
// When an earlier wake supersedes a later one already in the event list, the
// superseded event is cancelled (stamp-checked, O(1) in the bucketed queue).
// The invariant is therefore: at most one live pending event per actor, and
// the sequence of effective ticks is a pure function of the wake targets —
// never of how many redundant schedule/supersede cycles produced them. The
// PDES engine relies on this: a stale dormant tick would fire in one
// sharding and not another, desynchronizing e.g. the cluster's round-robin
// issue pointer. tick() implementations must still be work-conserving (safe
// to call with nothing to do): a wake and the work it announced can land on
// the same edge. The determinism contract (bit-identical Stats across
// engine variants, see tests/test_golden_stats.cc) pins this behavior down.
#pragma once

#include "src/desim/clockdomain.h"
#include "src/desim/scheduler.h"

namespace xmt {

class TickingActor : public Actor {
 public:
  TickingActor(std::string name, Scheduler& sched, ClockDomain& clock,
               int priority = kPhaseTransfer)
      : Actor(std::move(name)),
        sched_(sched),
        clock_(clock),
        priority_(priority) {}

  /// Ensures the actor is notified at the first clock edge at or after `t`.
  void wakeAt(SimTime t) {
    SimTime edge = clock_.nextEdge(t - 1);  // first edge >= t
    if (edge < sched_.now()) edge = clock_.nextEdge(sched_.now() - 1);
    if (pending_ >= 0 && pending_ <= edge) return;  // already covered
    if (pending_ >= 0) sched_.cancel(handle_);      // supersede the later wake
    pending_ = edge;
    handle_ = sched_.scheduleCancellable(this, edge, priority_);
  }

  /// Ensures the actor runs on the next clock edge strictly after `now`.
  void wakeNextCycle(SimTime now) { wakeAt(clock_.nextEdge(now)); }

  void notify(SimTime now) final {
    pending_ = -1;
    SimTime next = tick(now);
    if (next >= 0) wakeAt(next);
  }

  ClockDomain& clock() { return clock_; }
  Scheduler& scheduler() { return sched_; }

 protected:
  /// Performs one cycle of work. Returns the next time the actor wants to
  /// run (typically clock().nextEdge(now)), or -1 to go dormant until the
  /// next wakeAt().
  virtual SimTime tick(SimTime now) = 0;

 private:
  Scheduler& sched_;
  ClockDomain& clock_;
  int priority_;
  SimTime pending_ = -1;
  EventQueue::Handle handle_;
};

}  // namespace xmt
