#include "src/desim/pdes.h"

#include <algorithm>
#include <barrier>
#include <exception>
#include <limits>

#include "src/common/error.h"
#include "src/common/threadpool.h"

namespace xmt {

PdesDriver::PdesDriver(std::vector<PdesShard*> shards, SimTime lookahead)
    : shards_(std::move(shards)), lookahead_(lookahead) {
  XMT_CHECK(!shards_.empty());
  XMT_CHECK(lookahead_ > 0);
}

void PdesDriver::insertGlobal(GlobalEvent g) {
  auto pos = std::upper_bound(
      globals_.begin(), globals_.end(), g, [](const GlobalEvent& a, const GlobalEvent& b) {
        if (a.time != b.time) return a.time < b.time;
        // Fire-kind events precede a stop alignment at the same time, the
        // same order the sequential stop lane produces.
        return static_cast<int>(a.stopAlign) < static_cast<int>(b.stopAlign);
      });
  globals_.insert(pos, std::move(g));
}

void PdesDriver::scheduleGlobal(SimTime time, std::function<void(SimTime)> fire) {
  insertGlobal(GlobalEvent{time, false, std::move(fire)});
}

void PdesDriver::alignStop(SimTime time) {
  insertGlobal(GlobalEvent{time, true, nullptr});
}

SimTime PdesDriver::computeWindowEnd() {
  SimTime minNext = std::numeric_limits<SimTime>::max();
  for (PdesShard* s : shards_) {
    SimTime t = s->nextEventTime();
    if (t >= 0 && t < minNext) minNext = t;
  }
  if (!globals_.empty() && globals_.front().time < minNext)
    minNext = globals_.front().time;
  if (minNext == std::numeric_limits<SimTime>::max()) return kNoEvent;
  // Channels are empty here (applyInbound ran before this), so no event can
  // appear anywhere before minNext; any message created at time s >= minNext
  // is ready at >= s + lookahead >= end. Jumping the window start to minNext
  // skips idle stretches for free.
  SimTime end = minNext + lookahead_;
  if (!globals_.empty()) {
    const GlobalEvent& g = globals_.front();
    end = std::min(end, g.stopAlign ? g.time + 1 : g.time);
  }
  return end;
}

void PdesDriver::fireGlobalsUpTo(SimTime end) {
  while (!globals_.empty() && !globals_.front().stopAlign &&
         globals_.front().time <= end) {
    GlobalEvent g = std::move(globals_.front());
    globals_.erase(globals_.begin());
    g.fire(g.time);
  }
}

PdesDriver::RunEnd PdesDriver::runSerial() {
  for (;;) {
    SimTime end = computeWindowEnd();
    if (end == kNoEvent) return RunEnd::kDrained;
    bool stopped = false;
    for (PdesShard* s : shards_) stopped = s->runWindow(end) || stopped;
    for (PdesShard* s : shards_) s->applyInbound();
    if (stopped) return RunEnd::kStopped;
    fireGlobalsUpTo(end);
    if (!globals_.empty() && globals_.front().stopAlign &&
        globals_.front().time + 1 <= end) {
      // The aligned stop time passed without the shard stopping (the stop
      // was cancelled); drop the alignment so windows can grow again.
      globals_.erase(globals_.begin());
    }
  }
}

PdesDriver::RunEnd PdesDriver::runParallel() {
  const int k = static_cast<int>(shards_.size());
  if (k == 1) return runSerial();

  struct Control {
    SimTime end = 0;
    bool done = false;
    std::vector<char> stopFlags;
    std::vector<std::exception_ptr> errors;
  } ctl;
  ctl.stopFlags.assign(static_cast<std::size_t>(k), 0);
  ctl.errors.assign(static_cast<std::size_t>(k), nullptr);

  // Two barriers per window: `start` publishes ctl.end (or done) to the
  // workers, `finish` publishes stop flags / errors back. The coordinator
  // (this thread) is participant k.
  std::barrier<> start(k), finish(k);

  ThreadPool pool(k - 1);
  for (int i = 1; i < k; ++i) {
    PdesShard* shard = shards_[static_cast<std::size_t>(i)];
    pool.submit([&ctl, &start, &finish, shard, i] {
      for (;;) {
        start.arrive_and_wait();
        if (ctl.done) return;
        if (!ctl.errors[static_cast<std::size_t>(i)]) {
          try {
            ctl.stopFlags[static_cast<std::size_t>(i)] =
                shard->runWindow(ctl.end) ? 1 : 0;
          } catch (...) {
            ctl.errors[static_cast<std::size_t>(i)] = std::current_exception();
          }
        }
        finish.arrive_and_wait();
      }
    });
  }

  bool released = false;
  auto release = [&] {
    if (released) return;
    released = true;
    ctl.done = true;
    start.arrive_and_wait();
    pool.wait();
  };

  try {
    for (;;) {
      SimTime end = computeWindowEnd();
      if (end == kNoEvent) {
        release();
        return RunEnd::kDrained;
      }
      ctl.end = end;
      std::fill(ctl.stopFlags.begin(), ctl.stopFlags.end(), 0);
      start.arrive_and_wait();
      if (!ctl.errors[0]) {
        try {
          ctl.stopFlags[0] = shards_[0]->runWindow(end) ? 1 : 0;
        } catch (...) {
          ctl.errors[0] = std::current_exception();
        }
      }
      finish.arrive_and_wait();

      // Coordinator-only section: workers are parked at the next start
      // barrier, so channel application and global events are
      // single-threaded.
      for (PdesShard* s : shards_) s->applyInbound();
      for (const std::exception_ptr& e : ctl.errors) {
        if (e) {
          release();
          std::rethrow_exception(e);
        }
      }
      bool stopped = false;
      for (char f : ctl.stopFlags) stopped = stopped || f != 0;
      if (stopped) {
        release();
        return RunEnd::kStopped;
      }
      fireGlobalsUpTo(end);
      if (!globals_.empty() && globals_.front().stopAlign &&
          globals_.front().time + 1 <= end) {
        globals_.erase(globals_.begin());
      }
    }
  } catch (...) {
    release();
    throw;
  }
}

PdesDriver::RunEnd PdesDriver::run(bool parallel) {
  return parallel ? runParallel() : runSerial();
}

}  // namespace xmt
