#include "src/desim/scheduler.h"

namespace xmt {

void Scheduler::schedule(Actor* actor, SimTime time, int priority) {
  XMT_CHECK(actor != nullptr);
  XMT_CHECK(time >= now_);
  XMT_CHECK(priority >= 0 && priority < kLaneStop);
  events_.push(time, priority, actor);
}

EventQueue::Handle Scheduler::scheduleCancellable(Actor* actor, SimTime time,
                                                 int priority) {
  XMT_CHECK(actor != nullptr);
  XMT_CHECK(time >= now_);
  XMT_CHECK(priority >= 0 && priority < kLaneStop);
  return events_.push(time, priority, actor);
}

void Scheduler::scheduleStop(SimTime time) {
  XMT_CHECK(time >= now_);
  // Stop events sort after all same-time phases so the cycle completes.
  stops_.push_back(events_.push(time, kLaneStop, nullptr));
}

void Scheduler::cancelStops() {
  for (const EventQueue::Handle& h : stops_) events_.cancel(h);
  stops_.clear();
}

bool Scheduler::step() {
  if (events_.empty()) return false;
  EventQueue::Fired e = events_.pop();
  now_ = e.time;
  if (e.actor == nullptr) return false;  // stop event
  ++processed_;
  e.actor->notify(now_);
  return true;
}

bool Scheduler::run() {
  while (!events_.empty()) {
    EventQueue::Fired e = events_.pop();
    now_ = e.time;
    if (e.actor == nullptr) return true;  // stop event
    ++processed_;
    e.actor->notify(now_);
  }
  return false;
}

bool Scheduler::runWindow(SimTime end) {
  while (!events_.empty()) {
    if (events_.headTime() >= end) return false;
    EventQueue::Fired e = events_.pop();
    now_ = e.time;
    if (e.actor == nullptr) return true;  // stop event
    ++processed_;
    e.actor->notify(now_);
  }
  return false;
}

bool Scheduler::runUntil(SimTime limit) {
  while (!events_.empty()) {
    if (events_.headTime() > limit) return false;
    EventQueue::Fired e = events_.pop();
    now_ = e.time;
    if (e.actor == nullptr) return true;  // stop event
    ++processed_;
    e.actor->notify(now_);
  }
  return false;
}

}  // namespace xmt
