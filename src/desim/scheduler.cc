#include "src/desim/scheduler.h"

namespace xmt {

void Scheduler::schedule(Actor* actor, SimTime time, int priority) {
  XMT_CHECK(actor != nullptr);
  XMT_CHECK(time >= now_);
  events_.push(Event{time, priority, seq_++, actor});
}

void Scheduler::scheduleStop(SimTime time) {
  XMT_CHECK(time >= now_);
  // Stop events sort after all same-time phases so the cycle completes.
  events_.push(Event{time, kPhaseRetire + 1, seq_++, nullptr});
}

bool Scheduler::step() {
  if (events_.empty()) return false;
  Event e = events_.top();
  events_.pop();
  now_ = e.time;
  if (e.actor == nullptr) return false;  // stop event
  ++processed_;
  e.actor->notify(now_);
  return true;
}

bool Scheduler::run() {
  while (!events_.empty()) {
    Event e = events_.top();
    if (e.actor == nullptr) {
      events_.pop();
      now_ = e.time;
      return true;
    }
    step();
  }
  return false;
}

bool Scheduler::runUntil(SimTime limit) {
  while (!events_.empty()) {
    Event e = events_.top();
    if (e.time > limit) return false;
    if (e.actor == nullptr) {
      events_.pop();
      now_ = e.time;
      return true;
    }
    step();
  }
  return false;
}

}  // namespace xmt
