// Graph workloads: the irregular problems the paper's performance claims
// center on (BFS and connectivity — Section II-B), with XMTC sources derived
// from PRAM algorithms and host reference implementations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xmt::workloads {

/// CSR graph (undirected edges stored in both directions).
struct Graph {
  int n = 0;
  int m = 0;  // directed edge count (2x undirected)
  std::vector<std::int32_t> rowStart;  // n+1
  std::vector<std::int32_t> adj;       // m
  // Edge list view (for connectivity).
  std::vector<std::int32_t> src;       // m
  std::vector<std::int32_t> dst;       // m
};

/// Random graph: n vertices, ~degree undirected edges per vertex.
Graph randomGraph(int n, int degree, std::uint64_t seed);

/// PRAM level-synchronous BFS in XMTC. Globals: rowStart, adj, dist,
/// visited, cur, next, curSize, levels. Source vertex `src` baked in.
std::string bfsParallelSource(const Graph& g, int src);

/// Serial BFS on the Master TCU (the serial baseline).
std::string bfsSerialSource(const Graph& g, int src);

/// Host BFS distances (reference).
std::vector<std::int32_t> hostBfs(const Graph& g, int src);

/// PRAM-style connectivity via repeated hooking (label propagation) in
/// XMTC. Globals: comp (component label per vertex), rounds.
std::string connectivityParallelSource(const Graph& g);

/// Serial connectivity baseline (label propagation on the master).
std::string connectivitySerialSource(const Graph& g);

/// Host connected components labels (min label per component).
std::vector<std::int32_t> hostComponents(const Graph& g);

}  // namespace xmt::workloads
