#include "src/workloads/graphs.h"

#include <algorithm>
#include <queue>
#include <sstream>

#include "src/common/error.h"
#include "src/common/rng.h"

namespace xmt::workloads {

Graph randomGraph(int n, int degree, std::uint64_t seed) {
  XMT_CHECK(n >= 2 && degree >= 1);
  Rng rng(seed);
  std::vector<std::pair<int, int>> edges;
  edges.reserve(static_cast<std::size_t>(n) * degree);
  // A random spine keeps most of the graph connected, then random extras.
  for (int v = 1; v < n; ++v)
    edges.emplace_back(static_cast<int>(rng.below(static_cast<std::uint64_t>(v))), v);
  for (int v = 0; v < n; ++v) {
    for (int d = 1; d < degree; ++d) {
      int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      if (u != v) edges.emplace_back(u, v);
    }
  }
  Graph g;
  g.n = n;
  g.m = static_cast<int>(edges.size()) * 2;
  std::vector<int> deg(static_cast<std::size_t>(n), 0);
  for (auto [u, v] : edges) {
    ++deg[static_cast<std::size_t>(u)];
    ++deg[static_cast<std::size_t>(v)];
  }
  g.rowStart.resize(static_cast<std::size_t>(n) + 1, 0);
  for (int v = 0; v < n; ++v)
    g.rowStart[static_cast<std::size_t>(v) + 1] =
        g.rowStart[static_cast<std::size_t>(v)] + deg[static_cast<std::size_t>(v)];
  g.adj.resize(static_cast<std::size_t>(g.m));
  g.src.resize(static_cast<std::size_t>(g.m));
  g.dst.resize(static_cast<std::size_t>(g.m));
  std::vector<int> fill(g.rowStart.begin(), g.rowStart.end() - 1);
  std::size_t ei = 0;
  for (auto [u, v] : edges) {
    g.adj[static_cast<std::size_t>(fill[static_cast<std::size_t>(u)]++)] = v;
    g.adj[static_cast<std::size_t>(fill[static_cast<std::size_t>(v)]++)] = u;
    g.src[ei] = u;
    g.dst[ei] = v;
    ++ei;
    g.src[ei] = v;
    g.dst[ei] = u;
    ++ei;
  }
  return g;
}

std::string bfsParallelSource(const Graph& g, int src) {
  std::ostringstream s;
  s << "int rowStart[" << g.n + 1 << "];\n"
    << "int adj[" << g.m << "];\n"
    << "int dist[" << g.n << "];\n"
    << "int visited[" << g.n << "];\n"
    << "int cur[" << g.n << "];\n"
    << "int next[" << g.n << "];\n"
    << "int curSize;\n"
    << "int levels;\n"
    << "psBaseReg nextSize = 0;\n"
    << "int main() {\n"
    << "  spawn(0, " << g.n - 1 << ") { dist[$] = -1; visited[$] = 0; }\n"
    << "  dist[" << src << "] = 0;\n"
    << "  visited[" << src << "] = 1;\n"
    << "  cur[0] = " << src << ";\n"
    << "  curSize = 1;\n"
    << "  int level = 0;\n"
    << "  while (curSize > 0) {\n"
    << "    level = level + 1;\n"
    << "    nextSize = 0;\n"
    << "    spawn(0, curSize - 1) {\n"
    << "      int u = cur[$];\n"
    << "      int e = rowStart[u];\n"
    << "      int last = rowStart[u + 1];\n"
    << "      while (e < last) {\n"
    << "        int v = adj[e];\n"
    << "        int one = 1;\n"
    << "        psm(one, visited[v]);\n"
    << "        if (one == 0) {\n"
    << "          dist[v] = level;\n"
    << "          int idx = 1;\n"
    << "          ps(idx, nextSize);\n"
    << "          next[idx] = v;\n"
    << "        }\n"
    << "        e = e + 1;\n"
    << "      }\n"
    << "    }\n"
    << "    curSize = nextSize;\n"
    << "    spawn(0, curSize - 1) { cur[$] = next[$]; }\n"
    << "  }\n"
    << "  levels = level;\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string bfsSerialSource(const Graph& g, int src) {
  std::ostringstream s;
  s << "int rowStart[" << g.n + 1 << "];\n"
    << "int adj[" << g.m << "];\n"
    << "int dist[" << g.n << "];\n"
    << "int visited[" << g.n << "];\n"
    << "int cur[" << g.n << "];\n"
    << "int levels;\n"
    << "int main() {\n"
    << "  for (int i = 0; i < " << g.n << "; i++) {\n"
    << "    dist[i] = -1;\n"
    << "    visited[i] = 0;\n"
    << "  }\n"
    << "  dist[" << src << "] = 0;\n"
    << "  visited[" << src << "] = 1;\n"
    << "  cur[0] = " << src << ";\n"
    << "  int head = 0;\n"
    << "  int tail = 1;\n"
    << "  while (head < tail) {\n"
    << "    int u = cur[head];\n"
    << "    head++;\n"
    << "    int e = rowStart[u];\n"
    << "    int last = rowStart[u + 1];\n"
    << "    while (e < last) {\n"
    << "      int v = adj[e];\n"
    << "      if (visited[v] == 0) {\n"
    << "        visited[v] = 1;\n"
    << "        dist[v] = dist[u] + 1;\n"
    << "        cur[tail] = v;\n"
    << "        tail++;\n"
    << "      }\n"
    << "      e = e + 1;\n"
    << "    }\n"
    << "  }\n"
    << "  levels = tail;\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::vector<std::int32_t> hostBfs(const Graph& g, int src) {
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.n), -1);
  std::queue<int> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    int u = q.front();
    q.pop();
    for (int e = g.rowStart[static_cast<std::size_t>(u)];
         e < g.rowStart[static_cast<std::size_t>(u) + 1]; ++e) {
      int v = g.adj[static_cast<std::size_t>(e)];
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(u)] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

std::string connectivityParallelSource(const Graph& g) {
  std::ostringstream s;
  s << "int esrc[" << g.m << "];\n"
    << "int edst[" << g.m << "];\n"
    << "int comp[" << g.n << "];\n"
    << "int rounds;\n"
    << "psBaseReg changed = 0;\n"
    << "int main() {\n"
    << "  spawn(0, " << g.n - 1 << ") { comp[$] = $; }\n"
    << "  int iter = 0;\n"
    << "  int go = 1;\n"
    << "  while (go) {\n"
    << "    changed = 0;\n"
    << "    spawn(0, " << g.m - 1 << ") {\n"
    << "      int a = comp[esrc[$]];\n"
    << "      int b = comp[edst[$]];\n"
    << "      if (b < a) {\n"
    << "        comp[esrc[$]] = b;\n"  // benign min race; re-checked below
    << "        int one = 1;\n"
    << "        ps(one, changed);\n"
    << "      }\n"
    << "    }\n"
    << "    spawn(0, " << g.n - 1 << ") { comp[$] = comp[comp[$]]; }\n"
    << "    go = changed > 0;\n"
    << "    iter = iter + 1;\n"
    << "  }\n"
    << "  rounds = iter;\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string connectivitySerialSource(const Graph& g) {
  std::ostringstream s;
  s << "int esrc[" << g.m << "];\n"
    << "int edst[" << g.m << "];\n"
    << "int comp[" << g.n << "];\n"
    << "int rounds;\n"
    << "int main() {\n"
    << "  for (int i = 0; i < " << g.n << "; i++) comp[i] = i;\n"
    << "  int go = 1;\n"
    << "  int iter = 0;\n"
    << "  while (go) {\n"
    << "    go = 0;\n"
    << "    for (int e = 0; e < " << g.m << "; e++) {\n"
    << "      int a = comp[esrc[e]];\n"
    << "      int b = comp[edst[e]];\n"
    << "      if (b < a) { comp[esrc[e]] = b; go = 1; }\n"
    << "    }\n"
    << "    for (int i = 0; i < " << g.n << "; i++) comp[i] = comp[comp[i]];\n"
    << "    iter = iter + 1;\n"
    << "  }\n"
    << "  rounds = iter;\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::vector<std::int32_t> hostComponents(const Graph& g) {
  std::vector<std::int32_t> comp(static_cast<std::size_t>(g.n), -1);
  for (int v = 0; v < g.n; ++v) {
    if (comp[static_cast<std::size_t>(v)] >= 0) continue;
    // BFS labelling with the minimum vertex id in the component (v).
    std::queue<int> q;
    comp[static_cast<std::size_t>(v)] = v;
    q.push(v);
    while (!q.empty()) {
      int u = q.front();
      q.pop();
      for (int e = g.rowStart[static_cast<std::size_t>(u)];
           e < g.rowStart[static_cast<std::size_t>(u) + 1]; ++e) {
        int w = g.adj[static_cast<std::size_t>(e)];
        if (comp[static_cast<std::size_t>(w)] < 0) {
          comp[static_cast<std::size_t>(w)] = v;
          q.push(w);
        }
      }
    }
  }
  return comp;
}

}  // namespace xmt::workloads
