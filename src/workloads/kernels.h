// XMTC workload generators: parameterized source programs plus host
// reference implementations used by integration tests, examples and the
// benchmark harness.
//
// The microbenchmark groups mirror Table I of the paper: {serial, parallel}
// x {memory-, computation-intensive}.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xmt::workloads {

// --- Simple kernels ---------------------------------------------------------

/// Fig. 2a array compaction. Globals: A[n], B[n], count.
std::string compactionSource(int n);

/// B[$] = A[$] + 1 over n elements. Globals: A, B.
std::string vectorAddSource(int n);

/// Histogram with psm. Globals: A[n], H[buckets].
std::string histogramSource(int n, int buckets);

/// Parallel sum via psm into `total`. Globals: A[n], total.
std::string parallelSumSource(int n);

/// Serial sum loop (baseline for the small-parallelism study).
std::string serialSumSource(int n);

/// SAXPY on floats: Y[$] = a*X[$] + Y[$]. Globals: X, Y, alpha (float bits).
std::string saxpySource(int n);

/// PRAM inclusive prefix sum (Hillis-Steele, log-depth, n log n work):
/// S[i] = A[0] + ... + A[i]. Globals: A[n], S[n]. The classic example of a
/// PRAM algorithm whose XMTC rendering is a direct transcription.
std::string prefixSumSource(int n);

/// Serial prefix-sum baseline. Globals: A[n], S[n].
std::string serialPrefixSumSource(int n);

/// N threads each add 1 to a shared counter `iters` times with the
/// hardware ps primitive (global register; combining PS unit).
std::string psCounterSource(int threads, int iters);

/// Same, with psm to a memory location (serializes at one cache module).
std::string psmCounterSource(int threads, int iters);

/// Square matrix multiply C = A x B (flattened n*n arrays, one virtual
/// thread per output element — heavy shared-MDU contention within clusters).
std::string matmulSource(int n);

/// Host reference for matmulSource.
std::vector<std::int32_t> hostMatmul(const std::vector<std::int32_t>& a,
                                     const std::vector<std::int32_t>& b,
                                     int n);

// --- FFT (the fine-grained parallel FFT of paper ref. [24]) -----------------

/// Radix-2 iterative complex FFT over n (power of two) points. Globals:
/// RE[n], IM[n] (in/out, float bits), WR/WI[n/2] (twiddles, host-filled),
/// BR[n] (bit-reversal table, host-filled). Each stage is one spawn over
/// n/2 butterflies — exactly the fine-grained decomposition XMT favours.
std::string fftSource(int n);

/// Host-filled tables for fftSource.
struct FftTables {
  std::vector<std::int32_t> wr, wi;  // float bits
  std::vector<std::int32_t> br;
};
FftTables fftTables(int n);

/// Reference DFT (double precision) for validation.
void hostDft(const std::vector<float>& re, const std::vector<float>& im,
             std::vector<double>& outRe, std::vector<double>& outIm);

// --- Table I microbenchmarks ------------------------------------------------

/// Parallel memory-intensive: each virtual thread streams through a chunk
/// of a large array with data-dependent loads.
std::string parMemSource(int threads, int itersPerThread);

/// Parallel computation-intensive: register-only integer mix per thread.
std::string parCompSource(int threads, int itersPerThread);

/// Serial memory-intensive: pointer-chase style strided walk on the master.
std::string serMemSource(int iters);

/// Serial computation-intensive: register-only integer mix on the master.
std::string serCompSource(int iters);

// --- Host references ---------------------------------------------------------

std::vector<std::int32_t> hostCompaction(const std::vector<std::int32_t>& a);
std::vector<std::int32_t> hostHistogram(const std::vector<std::int32_t>& a,
                                        int buckets);

}  // namespace xmt::workloads
