#include "src/workloads/registry.h"

#include <algorithm>
#include <cstring>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/sim/simulator.h"
#include "src/workloads/graphs.h"
#include "src/workloads/kernels.h"

namespace xmt::workloads {

namespace {

int geti(const ConfigMap& p, const char* key, int dflt) {
  return static_cast<int>(p.getInt(key, dflt));
}

std::uint64_t seedOf(const ConfigMap& p) {
  return static_cast<std::uint64_t>(p.getInt("seed", 1));
}

std::vector<std::int32_t> randomInts(Rng& rng, int n, int lo, int hi) {
  std::vector<std::int32_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<std::int32_t>(rng.range(lo, hi));
  return v;
}

std::int32_t floatBits(float f) {
  std::int32_t bits;
  std::memcpy(&bits, &f, sizeof bits);
  return bits;
}

std::vector<std::int32_t> randomFloatBits(Rng& rng, int n) {
  std::vector<std::int32_t> v(static_cast<std::size_t>(n));
  for (auto& x : v)
    x = floatBits(static_cast<float>(rng.uniform() * 2.0 - 1.0));
  return v;
}

// --- source generators (adapting the typed kernel API to ConfigMap) ---

std::string srcVadd(const ConfigMap& p) {
  return vectorAddSource(geti(p, "n", 256));
}
std::string srcCompaction(const ConfigMap& p) {
  return compactionSource(geti(p, "n", 256));
}
std::string srcHistogram(const ConfigMap& p) {
  return histogramSource(geti(p, "n", 256), geti(p, "buckets", 8));
}
std::string srcParallelSum(const ConfigMap& p) {
  return parallelSumSource(geti(p, "n", 256));
}
std::string srcSerialSum(const ConfigMap& p) {
  return serialSumSource(geti(p, "n", 256));
}
std::string srcPrefixSum(const ConfigMap& p) {
  return prefixSumSource(geti(p, "n", 256));
}
std::string srcSerialPrefixSum(const ConfigMap& p) {
  return serialPrefixSumSource(geti(p, "n", 256));
}
std::string srcSaxpy(const ConfigMap& p) {
  return saxpySource(geti(p, "n", 256));
}
std::string srcMatmul(const ConfigMap& p) {
  return matmulSource(geti(p, "n", 8));
}
std::string srcFft(const ConfigMap& p) { return fftSource(geti(p, "n", 64)); }
std::string srcPsCounter(const ConfigMap& p) {
  return psCounterSource(geti(p, "threads", 64), geti(p, "iters", 16));
}
std::string srcPsmCounter(const ConfigMap& p) {
  return psmCounterSource(geti(p, "threads", 64), geti(p, "iters", 16));
}
std::string srcParMem(const ConfigMap& p) {
  return parMemSource(geti(p, "threads", 64), geti(p, "iters", 16));
}
std::string srcParComp(const ConfigMap& p) {
  return parCompSource(geti(p, "threads", 64), geti(p, "iters", 16));
}
std::string srcSerMem(const ConfigMap& p) {
  return serMemSource(geti(p, "iters", 256));
}
std::string srcSerComp(const ConfigMap& p) {
  return serCompSource(geti(p, "iters", 256));
}
std::string srcBfs(const ConfigMap& p) {
  Graph g = randomGraph(geti(p, "n", 128), geti(p, "degree", 4), seedOf(p));
  return bfsParallelSource(g, 0);
}

// --- input preparers ---

void prepArrayA(Simulator& sim, const ConfigMap& p) {
  Rng rng(seedOf(p));
  sim.setGlobalArray("A", randomInts(rng, geti(p, "n", 256), 0, 999));
}

void prepCompaction(Simulator& sim, const ConfigMap& p) {
  // ~1/3 of the entries non-zero, matching the Fig. 2a usage.
  Rng rng(seedOf(p));
  int n = geti(p, "n", 256);
  std::vector<std::int32_t> a(static_cast<std::size_t>(n), 0);
  for (auto& x : a)
    if (rng.chance(1.0 / 3.0))
      x = static_cast<std::int32_t>(rng.range(1, 999));
  sim.setGlobalArray("A", a);
}

void prepHistogram(Simulator& sim, const ConfigMap& p) {
  Rng rng(seedOf(p));
  int buckets = geti(p, "buckets", 8);
  sim.setGlobalArray(
      "A", randomInts(rng, geti(p, "n", 256), 0, buckets - 1));
}

void prepSaxpy(Simulator& sim, const ConfigMap& p) {
  Rng rng(seedOf(p));
  int n = geti(p, "n", 256);
  sim.setGlobalArray("X", randomFloatBits(rng, n));
  sim.setGlobalArray("Y", randomFloatBits(rng, n));
  sim.setGlobal("alpha", floatBits(2.5f));
}

void prepMatmul(Simulator& sim, const ConfigMap& p) {
  Rng rng(seedOf(p));
  int n = geti(p, "n", 8);
  sim.setGlobalArray("A", randomInts(rng, n * n, -9, 9));
  sim.setGlobalArray("B", randomInts(rng, n * n, -9, 9));
}

void prepFft(Simulator& sim, const ConfigMap& p) {
  Rng rng(seedOf(p));
  int n = geti(p, "n", 64);
  sim.setGlobalArray("RE", randomFloatBits(rng, n));
  sim.setGlobalArray("IM", randomFloatBits(rng, n));
  FftTables t = fftTables(n);
  sim.setGlobalArray("WR", t.wr);
  sim.setGlobalArray("WI", t.wi);
  sim.setGlobalArray("BR", t.br);
}

void prepParMem(Simulator& sim, const ConfigMap& p) {
  Rng rng(seedOf(p));
  int size = geti(p, "threads", 64) * geti(p, "iters", 16);
  sim.setGlobalArray("DATA", randomInts(rng, size, 0, 999));
}

void prepSerMem(Simulator& sim, const ConfigMap& p) {
  Rng rng(seedOf(p));
  sim.setGlobalArray("DATA", randomInts(rng, 1 << 14, 0, 999));
}

void prepBfs(Simulator& sim, const ConfigMap& p) {
  Graph g = randomGraph(geti(p, "n", 128), geti(p, "degree", 4), seedOf(p));
  sim.setGlobalArray("rowStart", g.rowStart);
  sim.setGlobalArray("adj", g.adj);
}

}  // namespace

const std::vector<WorkloadEntry>& workloadRegistry() {
  static const std::vector<WorkloadEntry> kRegistry = {
      {"bfs", "parallel BFS over a random graph (CSR)",
       {"n", "degree", "seed"}, srcBfs, prepBfs, {"cur", "next"}},
      {"compaction", "Fig. 2a array compaction",
       {"n", "seed"}, srcCompaction, prepCompaction, {"B"}},
      {"fft", "radix-2 parallel FFT", {"n", "seed"}, srcFft, prepFft, {}},
      {"histogram", "psm histogram",
       {"n", "buckets", "seed"}, srcHistogram, prepHistogram, {}},
      {"matmul", "square matrix multiply (n x n)",
       {"n", "seed"}, srcMatmul, prepMatmul, {}},
      {"par_comp", "Table I parallel compute-intensive",
       {"threads", "iters"}, srcParComp, nullptr, {}},
      {"par_mem", "Table I parallel memory-intensive",
       {"threads", "iters", "seed"}, srcParMem, prepParMem, {}},
      {"parallel_sum", "parallel psm sum",
       {"n", "seed"}, srcParallelSum, prepArrayA, {}},
      {"prefix_sum", "Hillis-Steele parallel prefix sum",
       {"n", "seed"}, srcPrefixSum, prepArrayA, {}},
      {"ps_counter", "hardware-ps shared counter",
       {"threads", "iters"}, srcPsCounter, nullptr, {}},
      {"psm_counter", "psm shared counter",
       {"threads", "iters"}, srcPsmCounter, nullptr, {}},
      {"saxpy", "float SAXPY", {"n", "seed"}, srcSaxpy, prepSaxpy, {}},
      {"ser_comp", "Table I serial compute-intensive",
       {"iters"}, srcSerComp, nullptr, {}},
      {"ser_mem", "Table I serial memory-intensive",
       {"iters", "seed"}, srcSerMem, prepSerMem, {}},
      {"serial_prefix_sum", "serial prefix-sum baseline",
       {"n", "seed"}, srcSerialPrefixSum, prepArrayA, {}},
      {"serial_sum", "serial sum baseline",
       {"n", "seed"}, srcSerialSum, prepArrayA, {}},
      {"vadd", "B[$] = A[$] + 1", {"n", "seed"}, srcVadd, prepArrayA, {}},
  };
  return kRegistry;
}

const WorkloadEntry& findWorkload(const std::string& name) {
  for (const auto& e : workloadRegistry())
    if (e.name == name) return e;
  std::string known;
  for (const auto& e : workloadRegistry()) {
    if (!known.empty()) known += ", ";
    known += e.name;
  }
  throw ConfigError("workload",
                    "unknown workload '" + name + "' (known: " + known + ")");
}

void validateWorkloadParams(const WorkloadEntry& entry,
                            const ConfigMap& params) {
  for (const auto& key : params.keys()) {
    if (std::find(entry.params.begin(), entry.params.end(), key) ==
        entry.params.end())
      throw ConfigError("workload." + key, "not a parameter of workload '" +
                                               entry.name + "'");
  }
}

std::string WorkloadInstance::key() const {
  std::string out = name;
  auto ks = params.keys();
  if (!ks.empty()) {
    out += '[';
    for (std::size_t i = 0; i < ks.size(); ++i) {
      if (i) out += ' ';
      out += ks[i] + "=" + params.getString(ks[i], "");
    }
    out += ']';
  }
  return out;
}

std::string instanceSource(const WorkloadInstance& w) {
  const WorkloadEntry& e = findWorkload(w.name);
  validateWorkloadParams(e, w.params);
  return e.makeSource(w.params);
}

void instancePrepare(const WorkloadInstance& w, Simulator& sim) {
  const WorkloadEntry& e = findWorkload(w.name);
  if (e.prepare) e.prepare(sim, w.params);
}

}  // namespace xmt::workloads
