#include "src/workloads/kernels.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace xmt::workloads {

namespace {
std::string N(int v) { return std::to_string(v); }
}  // namespace

std::string compactionSource(int n) {
  std::ostringstream s;
  s << "int A[" << N(n) << "];\n"
    << "int B[" << N(n) << "];\n"
    << "psBaseReg base = 0;\n"
    << "int count;\n"
    << "int main() {\n"
    << "  spawn(0, " << N(n - 1) << ") {\n"
    << "    int inc = 1;\n"
    << "    if (A[$] != 0) {\n"
    << "      ps(inc, base);\n"
    << "      B[inc] = A[$];\n"
    << "    }\n"
    << "  }\n"
    << "  count = base;\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string vectorAddSource(int n) {
  std::ostringstream s;
  s << "int A[" << N(n) << "];\n"
    << "int B[" << N(n) << "];\n"
    << "int main() {\n"
    << "  spawn(0, " << N(n - 1) << ") { B[$] = A[$] + 1; }\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string histogramSource(int n, int buckets) {
  std::ostringstream s;
  s << "int A[" << N(n) << "];\n"
    << "int H[" << N(buckets) << "];\n"
    << "int main() {\n"
    << "  spawn(0, " << N(n - 1) << ") {\n"
    << "    int one = 1;\n"
    << "    psm(one, H[A[$]]);\n"
    << "  }\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string parallelSumSource(int n) {
  std::ostringstream s;
  s << "int A[" << N(n) << "];\n"
    << "int total;\n"
    << "int main() {\n"
    << "  spawn(0, " << N(n - 1) << ") {\n"
    << "    int v = A[$];\n"
    << "    psm(v, total);\n"
    << "  }\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string serialSumSource(int n) {
  std::ostringstream s;
  s << "int A[" << N(n) << "];\n"
    << "int total;\n"
    << "int main() {\n"
    << "  int t = 0;\n"
    << "  for (int i = 0; i < " << N(n) << "; i++) t += A[i];\n"
    << "  total = t;\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string saxpySource(int n) {
  std::ostringstream s;
  s << "float X[" << N(n) << "];\n"
    << "float Y[" << N(n) << "];\n"
    << "float alpha;\n"
    << "int main() {\n"
    << "  spawn(0, " << N(n - 1) << ") {\n"
    << "    Y[$] = alpha * X[$] + Y[$];\n"
    << "  }\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string prefixSumSource(int n) {
  std::ostringstream s;
  s << "int A[" << N(n) << "];\n"
    << "int S[" << N(n) << "];\n"
    << "int T[" << N(n) << "];\n"
    << "int main() {\n"
    << "  spawn(0, " << N(n - 1) << ") { S[$] = A[$]; }\n"
    << "  int d = 1;\n"
    << "  while (d < " << N(n) << ") {\n"
    << "    spawn(0, " << N(n - 1) << ") {\n"
    << "      if ($ >= d) T[$] = S[$] + S[$ - d];\n"
    << "      else T[$] = S[$];\n"
    << "    }\n"
    << "    spawn(0, " << N(n - 1) << ") { S[$] = T[$]; }\n"
    << "    d = d * 2;\n"
    << "  }\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string serialPrefixSumSource(int n) {
  std::ostringstream s;
  s << "int A[" << N(n) << "];\n"
    << "int S[" << N(n) << "];\n"
    << "int main() {\n"
    << "  int acc = 0;\n"
    << "  for (int i = 0; i < " << N(n) << "; i++) {\n"
    << "    acc += A[i];\n"
    << "    S[i] = acc;\n"
    << "  }\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string psCounterSource(int threads, int iters) {
  std::ostringstream s;
  s << "psBaseReg counter = 0;\n"
    << "int total;\n"
    << "int main() {\n"
    << "  spawn(0, " << N(threads - 1) << ") {\n"
    << "    int i = 0;\n"
    << "    while (i < " << N(iters) << ") {\n"
    << "      int one = 1;\n"
    << "      ps(one, counter);\n"
    << "      i++;\n"
    << "    }\n"
    << "  }\n"
    << "  total = counter;\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string psmCounterSource(int threads, int iters) {
  std::ostringstream s;
  s << "int counter;\n"
    << "int total;\n"
    << "int main() {\n"
    << "  spawn(0, " << N(threads - 1) << ") {\n"
    << "    int i = 0;\n"
    << "    while (i < " << N(iters) << ") {\n"
    << "      int one = 1;\n"
    << "      psm(one, counter);\n"
    << "      i++;\n"
    << "    }\n"
    << "  }\n"
    << "  total = counter;\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string matmulSource(int n) {
  std::ostringstream s;
  s << "int A[" << N(n * n) << "];\n"
    << "int B[" << N(n * n) << "];\n"
    << "int C[" << N(n * n) << "];\n"
    << "int main() {\n"
    << "  spawn(0, " << N(n * n - 1) << ") {\n"
    << "    int r = $ / " << N(n) << ";\n"
    << "    int c = $ - r * " << N(n) << ";\n"
    << "    int acc = 0;\n"
    << "    for (int k = 0; k < " << N(n) << "; k++)\n"
    << "      acc += A[r * " << N(n) << " + k] * B[k * " << N(n)
    << " + c];\n"
    << "    C[$] = acc;\n"
    << "  }\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::vector<std::int32_t> hostMatmul(const std::vector<std::int32_t>& a,
                                     const std::vector<std::int32_t>& b,
                                     int n) {
  std::vector<std::int32_t> c(static_cast<std::size_t>(n) * n, 0);
  for (int r = 0; r < n; ++r)
    for (int col = 0; col < n; ++col) {
      std::int32_t acc = 0;
      for (int k = 0; k < n; ++k)
        acc += a[static_cast<std::size_t>(r * n + k)] *
               b[static_cast<std::size_t>(k * n + col)];
      c[static_cast<std::size_t>(r * n + col)] = acc;
    }
  return c;
}

std::string fftSource(int n) {
  std::ostringstream s;
  s << "float RE[" << N(n) << "];\n"
    << "float IM[" << N(n) << "];\n"
    << "float TR[" << N(n) << "];\n"
    << "float TI[" << N(n) << "];\n"
    << "float WR[" << N(n / 2) << "];\n"
    << "float WI[" << N(n / 2) << "];\n"
    << "int BR[" << N(n) << "];\n"
    << "int main() {\n"
    // Bit-reversal permutation (parallel gather via the host-filled table).
    << "  spawn(0, " << N(n - 1) << ") {\n"
    << "    TR[$] = RE[BR[$]];\n"
    << "    TI[$] = IM[BR[$]];\n"
    << "  }\n"
    << "  spawn(0, " << N(n - 1) << ") { RE[$] = TR[$]; IM[$] = TI[$]; }\n"
    // log2(n) butterfly stages, n/2 fine-grained butterflies each.
    << "  int len = 2;\n"
    << "  while (len <= " << N(n) << ") {\n"
    << "    int half = len / 2;\n"
    << "    int stride = " << N(n) << " / len;\n"
    << "    spawn(0, " << N(n / 2 - 1) << ") {\n"
    << "      int g = $ / half;\n"
    << "      int j = $ - g * half;\n"
    << "      int i0 = g * len + j;\n"
    << "      int i1 = i0 + half;\n"
    << "      int ti = j * stride;\n"
    << "      float xr = RE[i1] * WR[ti] - IM[i1] * WI[ti];\n"
    << "      float xi = RE[i1] * WI[ti] + IM[i1] * WR[ti];\n"
    << "      RE[i1] = RE[i0] - xr;\n"
    << "      IM[i1] = IM[i0] - xi;\n"
    << "      RE[i0] = RE[i0] + xr;\n"
    << "      IM[i0] = IM[i0] + xi;\n"
    << "    }\n"
    << "    len = len * 2;\n"
    << "  }\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

FftTables fftTables(int n) {
  FftTables t;
  auto bits = [](float f) {
    std::int32_t b;
    std::memcpy(&b, &f, 4);
    return b;
  };
  for (int k = 0; k < n / 2; ++k) {
    double ang = -2.0 * M_PI * k / n;
    t.wr.push_back(bits(static_cast<float>(std::cos(ang))));
    t.wi.push_back(bits(static_cast<float>(std::sin(ang))));
  }
  int logn = 0;
  while ((1 << logn) < n) ++logn;
  for (int i = 0; i < n; ++i) {
    int r = 0;
    for (int b = 0; b < logn; ++b)
      if (i & (1 << b)) r |= 1 << (logn - 1 - b);
    t.br.push_back(r);
  }
  return t;
}

void hostDft(const std::vector<float>& re, const std::vector<float>& im,
             std::vector<double>& outRe, std::vector<double>& outIm) {
  std::size_t n = re.size();
  outRe.assign(n, 0.0);
  outIm.assign(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      double ang = -2.0 * M_PI * static_cast<double>(k * t) /
                   static_cast<double>(n);
      double c = std::cos(ang), s = std::sin(ang);
      outRe[k] += re[t] * c - im[t] * s;
      outIm[k] += re[t] * s + im[t] * c;
    }
  }
}

std::string parMemSource(int threads, int itersPerThread) {
  // Each virtual thread walks DATA with a large stride so accesses spread
  // over all cache modules and mostly miss.
  int size = threads * itersPerThread;
  std::ostringstream s;
  s << "int DATA[" << N(size) << "];\n"
    << "int OUT[" << N(threads) << "];\n"
    << "int main() {\n"
    << "  spawn(0, " << N(threads - 1) << ") {\n"
    << "    int acc = 0;\n"
    << "    int i = 0;\n"
    << "    while (i < " << N(itersPerThread) << ") {\n"
    << "      acc += DATA[i * " << N(threads) << " + $];\n"
    << "      i++;\n"
    << "    }\n"
    << "    OUT[$] = acc;\n"
    << "  }\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string parCompSource(int threads, int itersPerThread) {
  std::ostringstream s;
  s << "int OUT[" << N(threads) << "];\n"
    << "int main() {\n"
    << "  spawn(0, " << N(threads - 1) << ") {\n"
    << "    int a = $ + 1;\n"
    << "    int b = 12345;\n"
    << "    int i = 0;\n"
    << "    while (i < " << N(itersPerThread) << ") {\n"
    << "      a = a * 5 + b;\n"
    << "      b = b ^ (a >> 3);\n"
    << "      a = a + (b << 1);\n"
    << "      i++;\n"
    << "    }\n"
    << "    OUT[$] = a;\n"
    << "  }\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string serMemSource(int iters) {
  int size = 1 << 14;
  std::ostringstream s;
  s << "int DATA[" << N(size) << "];\n"
    << "int OUT[1];\n"
    << "int main() {\n"
    << "  int acc = 0;\n"
    << "  int idx = 7;\n"
    << "  for (int i = 0; i < " << N(iters) << "; i++) {\n"
    << "    acc += DATA[idx];\n"
    << "    idx = (idx + 1027) & " << N(size - 1) << ";\n"
    << "  }\n"
    << "  OUT[0] = acc;\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::string serCompSource(int iters) {
  std::ostringstream s;
  s << "int OUT[1];\n"
    << "int main() {\n"
    << "  int a = 1;\n"
    << "  int b = 12345;\n"
    << "  for (int i = 0; i < " << N(iters) << "; i++) {\n"
    << "    a = a * 5 + b;\n"
    << "    b = b ^ (a >> 3);\n"
    << "    a = a + (b << 1);\n"
    << "  }\n"
    << "  OUT[0] = a;\n"
    << "  return 0;\n"
    << "}\n";
  return s.str();
}

std::vector<std::int32_t> hostCompaction(const std::vector<std::int32_t>& a) {
  std::vector<std::int32_t> out;
  for (std::int32_t v : a)
    if (v != 0) out.push_back(v);
  return out;
}

std::vector<std::int32_t> hostHistogram(const std::vector<std::int32_t>& a,
                                        int buckets) {
  std::vector<std::int32_t> h(static_cast<std::size_t>(buckets), 0);
  for (std::int32_t v : a) ++h[static_cast<std::size_t>(v)];
  return h;
}

}  // namespace xmt::workloads
