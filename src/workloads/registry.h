// Named-workload registry: every built-in kernel reachable by name with
// parameterized, deterministically generated inputs.
//
// The campaign engine sweeps over workloads the way it sweeps over machine
// parameters, so kernels must be instantiable from flat key=value data
// ("workload = histogram", "workload.n = 4096", "workload.seed = 7")
// rather than by calling each generator function by hand. A registry entry
// bundles the source generator with an input preparer that fills the
// program's globals from an Rng seeded by the `seed` parameter — the same
// (name, params) pair always produces the same program and the same input,
// which is what makes campaign results reproducible and resumable.
#pragma once

#include <string>
#include <vector>

#include "src/common/config.h"

namespace xmt {
class Simulator;
}

namespace xmt::workloads {

/// A workload selected by name plus its parameter assignment.
struct WorkloadInstance {
  std::string name;
  ConfigMap params;

  /// Canonical "name[k=v k=v]" string (sorted params) for point keys.
  std::string key() const;
};

struct WorkloadEntry {
  std::string name;
  std::string description;
  /// Parameter names this workload accepts (all integers; `seed` is
  /// accepted by every workload that takes input data).
  std::vector<std::string> params;
  std::string (*makeSource)(const ConfigMap& params);
  /// Fills input globals on a freshly built simulator. May be null when
  /// the kernel needs no input.
  void (*prepare)(Simulator& sim, const ConfigMap& params);
  /// Globals whose final content is correct as a *set* but placed at
  /// thread-order-dependent positions (e.g. compaction's ps-allocated B,
  /// bfs frontier queues). Simulator::memoryDigest() comparisons across
  /// simulation modes must mask these; everything else is demanded
  /// bit-identical between functional and cycle-accurate runs.
  std::vector<std::string> digestExclude;
};

/// All registered workloads, sorted by name.
const std::vector<WorkloadEntry>& workloadRegistry();

/// Lookup by name; throws ConfigError (field = "workload") listing the
/// known names when `name` is not registered.
const WorkloadEntry& findWorkload(const std::string& name);

/// Validates that every param key is accepted by the workload; throws
/// ConfigError naming the bad key otherwise.
void validateWorkloadParams(const WorkloadEntry& entry, const ConfigMap& params);

/// Builds the XMTC source for an instance (validates params first).
std::string instanceSource(const WorkloadInstance& w);

/// Prepares simulator input for an instance.
void instancePrepare(const WorkloadInstance& w, Simulator& sim);

}  // namespace xmt::workloads
