// Instruction/data packages: the unit of traffic in the cycle-accurate model.
//
// "Simulated assembly instruction instances are wrapped in objects of type
// Package. An instruction package originates at a TCU, travels through a
// specific set of cycle-accurate components according to its type ... and
// expires upon returning to the commit stage of the originating TCU."
#pragma once

#include <cstdint>

#include "src/desim/scheduler.h"

namespace xmt {

/// Source identifier for the master TCU (it has a dedicated ICN port).
inline constexpr int kMasterCluster = -1;

enum class PkgKind : std::uint8_t {
  kLoadWord,      // lw: blocking word load
  kLoadByte,      // lbu
  kStoreWord,     // sw: blocking (waits for ack)
  kStoreByte,     // sb
  kStoreNbWord,   // swnb: non-blocking store (ack decrements fence counter)
  kPsm,           // prefix-sum to memory: atomic fetch-and-add at the module
  kPrefetch,      // fill a TCU prefetch-buffer entry
  kReadOnlyLoad,  // fill a cluster read-only cache line
};

/// A memory-bound package and, symmetrically, its response on the return
/// network. Responses carry the loaded value (or the psm old value) in
/// `value`.
struct Package {
  PkgKind kind = PkgKind::kLoadWord;
  std::uint32_t addr = 0;
  std::uint32_t value = 0;
  std::int16_t srcCluster = 0;  // kMasterCluster for the Master TCU
  std::int16_t srcTcu = 0;
  std::uint8_t destReg = 0;
  std::uint64_t id = 0;        // unique, for traces and invariant checks
  SimTime issueTime = 0;       // when the originating context issued it

  bool isStore() const {
    return kind == PkgKind::kStoreWord || kind == PkgKind::kStoreByte ||
           kind == PkgKind::kStoreNbWord;
  }
  bool isNonBlocking() const {
    return kind == PkgKind::kStoreNbWord || kind == PkgKind::kPrefetch;
  }
};

}  // namespace xmt
