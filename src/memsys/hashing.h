// Address hashing in the load-store unit.
//
// "The load-store (LS) unit applies hashing on each memory address to avoid
// hotspots" (Section II): consecutive cache lines — and, more importantly,
// concurrently accessed lines of shared data structures — are scattered
// across cache modules so that no single module serializes the traffic of
// the whole machine. With hashing disabled, lines map round-robin, which the
// ICN benchmark uses to provoke hotspot contention.
#pragma once

#include <cstdint>

namespace xmt {

/// Maps a cache-line index to a cache module.
inline int hashLineToModule(std::uint64_t line, int modules, bool hashing) {
  if (!hashing) return static_cast<int>(line % static_cast<std::uint64_t>(modules));
  // Fibonacci multiplicative hashing with extra mixing: cheap and
  // deterministic, with good scatter on strided access patterns.
  std::uint64_t h = line * 0x9e3779b97f4a7c15ull;
  h ^= h >> 32;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 29;
  return static_cast<int>(h % static_cast<std::uint64_t>(modules));
}

}  // namespace xmt
