// Set-associative tag array with LRU replacement.
//
// The simulator keeps data values in the functional model's memory (accessed
// at package service time); caches are timing filters over tags, the
// standard transaction-level practice the paper follows. TagCache is used by
// the shared L1 cache modules, the Master TCU's private cache, and (in
// direct-mapped form) the cluster read-only caches.
#pragma once

#include <cstdint>
#include <vector>

namespace xmt {

class TagCache {
 public:
  /// `lines` total lines, `assoc`-way sets, `lineBytes` per line (pow2).
  TagCache(int lines, int assoc, int lineBytes);

  /// Looks up the line containing `addr`, updating LRU on hit.
  bool lookup(std::uint32_t addr);

  /// Presence check without touching LRU or the hit/miss counters (used by
  /// issue logic that may retry the same access after a structural stall).
  bool contains(std::uint32_t addr) const;

  /// Installs the line containing `addr`, evicting the set's LRU way.
  void install(std::uint32_t addr);

  void invalidateAll();

  int lineBytes() const { return lineBytes_; }
  std::uint64_t lineOf(std::uint32_t addr) const {
    return addr / static_cast<std::uint32_t>(lineBytes_);
  }

  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

 private:
  struct Way {
    std::uint64_t tag = 0;  // line index + 1; 0 = invalid
    std::uint64_t lru = 0;
  };
  std::size_t setOf(std::uint64_t line) const {
    return static_cast<std::size_t>(line % static_cast<std::uint64_t>(sets_));
  }

  int lineBytes_;
  int sets_;
  int assoc_;
  std::uint64_t clock_ = 0;
  std::vector<Way> ways_;  // sets_ * assoc_, row-major by set
};

}  // namespace xmt
