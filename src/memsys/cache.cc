#include "src/memsys/cache.h"

#include "src/common/error.h"

namespace xmt {

TagCache::TagCache(int lines, int assoc, int lineBytes)
    : lineBytes_(lineBytes), assoc_(assoc) {
  XMT_CHECK(lines > 0 && assoc > 0 && lineBytes > 0);
  XMT_CHECK((lineBytes & (lineBytes - 1)) == 0);
  if (assoc > lines) assoc_ = lines;
  sets_ = lines / assoc_;
  if (sets_ == 0) sets_ = 1;
  ways_.resize(static_cast<std::size_t>(sets_) * assoc_);
}

bool TagCache::lookup(std::uint32_t addr) {
  std::uint64_t line = lineOf(addr);
  std::size_t base = setOf(line) * static_cast<std::size_t>(assoc_);
  for (int w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (way.tag == line + 1) {
      way.lru = ++clock_;
      ++hits;
      return true;
    }
  }
  ++misses;
  return false;
}

bool TagCache::contains(std::uint32_t addr) const {
  std::uint64_t line = lineOf(addr);
  std::size_t base = setOf(line) * static_cast<std::size_t>(assoc_);
  for (int w = 0; w < assoc_; ++w)
    if (ways_[base + static_cast<std::size_t>(w)].tag == line + 1)
      return true;
  return false;
}

void TagCache::install(std::uint32_t addr) {
  std::uint64_t line = lineOf(addr);
  std::size_t base = setOf(line) * static_cast<std::size_t>(assoc_);
  Way* victim = &ways_[base];
  for (int w = 0; w < assoc_; ++w) {
    Way& way = ways_[base + static_cast<std::size_t>(w)];
    if (way.tag == line + 1) {  // already present
      way.lru = ++clock_;
      return;
    }
    if (way.tag == 0) {
      victim = &way;
      break;
    }
    if (way.lru < victim->lru) victim = &way;
  }
  victim->tag = line + 1;
  victim->lru = ++clock_;
}

void TagCache::invalidateAll() {
  for (auto& w : ways_) w = Way{};
}

}  // namespace xmt
