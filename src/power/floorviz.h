// Floorplan visualization (Section III-E).
//
// "XMTSim can be paired with the floorplan visualization package ... allows
// displaying data for each cluster or cache module on an XMT floorplan, in
// colors or text." This is the text renderer: an ASCII heat map over the
// floorplan grid with a scale legend, usable from an activity plug-in to
// animate statistics during a run.
#pragma once

#include <string>
#include <vector>

namespace xmt {

/// Renders `values` (row-major, rows x cols) as an ASCII intensity map.
/// Pass lo >= hi to auto-scale to the data range.
std::string renderFloorplan(const std::vector<double>& values, int rows,
                            int cols, const std::string& title,
                            double lo = 0.0, double hi = -1.0);

}  // namespace xmt
