// Compact thermal model in the HotSpot style.
//
// The original toolchain passed power numbers to HotSpot over JNI for
// "accurate and fast" temperature estimation (Section III-F); we
// reimplement the same modelling idea natively: each floorplan block is an
// RC node with a vertical resistance to the heat sink (held at ambient),
// lateral resistances to its 4-neighbours on the floorplan grid, and a heat
// capacity. Temperatures integrate with forward Euler using internally
// bounded substeps for stability.
#pragma once

#include <vector>

namespace xmt {

struct ThermalParams {
  double ambientC = 45.0;       // heat-sink temperature (deg C)
  double rVertical = 2.2;       // K/W block -> sink
  double rLateral = 4.0;        // K/W between adjacent blocks
  double heatCapacity = 0.012;  // J/K per block
};

class ThermalModel {
 public:
  /// `rows` x `cols` floorplan grid.
  ThermalModel(int rows, int cols, ThermalParams params = {});

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int cells() const { return rows_ * cols_; }

  /// Advances the model by `dtSeconds` with the given per-cell power
  /// (watts; size must equal cells()).
  void step(const std::vector<double>& powerWatts, double dtSeconds);

  const std::vector<double>& temperatures() const { return temps_; }
  double maxTemp() const;
  double cellTemp(int r, int c) const {
    return temps_[static_cast<std::size_t>(r * cols_ + c)];
  }

  /// Steady-state sanity: temperature a cell would reach in isolation.
  double isolatedSteadyState(double watts) const {
    return params_.ambientC + watts * params_.rVertical;
  }

 private:
  int rows_;
  int cols_;
  ThermalParams params_;
  std::vector<double> temps_;
};

}  // namespace xmt
