// Activity-based power model.
//
// "The power output is computed as a function of the activity counters"
// (Section III-F). Power is evaluated per floorplan block (one per cluster,
// plus the shared-cache/ICN/master blocks) from deltas of the simulator's
// activity counters over a sampling interval: dynamic energy per operation
// class, clock-tree power proportional to the block's clock frequency, and
// constant leakage. Coefficients are configurable; defaults are loosely
// calibrated to a ~65 nm many-core so that a fully busy 1024-TCU chip lands
// in the tens-of-watts range the XMT thermal study considers.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/stats.h"

namespace xmt {

struct PowerParams {
  // Dynamic energy per operation, picojoules.
  double pjAluOp = 8.0;
  double pjMduOp = 35.0;
  double pjFpuOp = 30.0;
  double pjMemOp = 25.0;       // TCU-side issue of a memory package
  double pjCacheAccess = 20.0; // per shared-cache service
  double pjDramAccess = 200.0;
  double pjIcnPacket = 15.0;
  // Clock tree / idle switching, watts per GHz per block.
  double wattsPerGhzCluster = 0.08;
  double wattsPerGhzUncore = 0.5;
  // Leakage, watts per block.
  double leakCluster = 0.05;
  double leakUncore = 0.4;
};

/// Snapshot of the counters a power evaluation needs.
struct ActivitySnapshot {
  std::vector<ClusterActivity> perCluster;
  std::uint64_t cacheServices = 0;  // hits + misses
  std::uint64_t dramRequests = 0;
  std::uint64_t icnPackets = 0;
};

ActivitySnapshot takeSnapshot(const Stats& s);

/// Per-block power (watts) over an interval.
struct PowerBreakdown {
  std::vector<double> clusterWatts;  // one per cluster
  double uncoreWatts = 0;            // caches + ICN + DRAM + master
  double totalWatts = 0;
};

/// Computes power over the interval between two snapshots.
/// `intervalSeconds` must be > 0; `clusterGhz` holds each cluster's current
/// frequency (for clock-tree power).
PowerBreakdown computePower(const PowerParams& params,
                            const ActivitySnapshot& before,
                            const ActivitySnapshot& after,
                            double intervalSeconds,
                            const std::vector<double>& clusterGhz,
                            double uncoreGhz);

}  // namespace xmt
