#include "src/power/dvfs.h"

#include <algorithm>
#include <cmath>

namespace xmt {

void floorplanDims(int clusters, int& rows, int& cols) {
  rows = 1;
  while (rows * rows < clusters) ++rows;
  cols = (clusters + rows - 1) / rows;
}

PowerTracePlugin::PowerTracePlugin(PowerParams power, ThermalParams thermal)
    : power_(power), thermalParams_(thermal) {}

void PowerTracePlugin::onInterval(RuntimeControl& rc) {
  const Stats& s = rc.stats();
  int clusters = rc.config().clusters;
  if (!initialized_) {
    initialized_ = true;
    floorplanDims(clusters, rows_, cols_);
    thermal_ = std::make_unique<ThermalModel>(rows_, cols_, thermalParams_);
    lastTime_ = rc.now();
    lastSnap_ = takeSnapshot(s);
    lastInstructions_ = s.instructions;
    lastClusterTemps_.assign(static_cast<std::size_t>(clusters),
                             thermalParams_.ambientC);
    return;
  }
  SimTime now = rc.now();
  double dt = static_cast<double>(now - lastTime_) * 1e-12;
  if (dt <= 0) return;
  ActivitySnapshot snap = takeSnapshot(s);
  std::vector<double> ghz(static_cast<std::size_t>(clusters));
  double sumGhz = 0;
  for (int c = 0; c < clusters; ++c) {
    ghz[static_cast<std::size_t>(c)] = rc.clusterFrequency(c);
    sumGhz += ghz[static_cast<std::size_t>(c)];
  }
  PowerBreakdown pb = computePower(power_, lastSnap_, snap, dt, ghz,
                                   rc.config().icnGhz);

  // Distribute power onto the floorplan: cluster blocks get their own
  // power; uncore power spreads evenly over all cells.
  std::vector<double> cellW(static_cast<std::size_t>(thermal_->cells()),
                            pb.uncoreWatts /
                                static_cast<double>(thermal_->cells()));
  for (int c = 0; c < clusters; ++c)
    cellW[static_cast<std::size_t>(c)] +=
        pb.clusterWatts[static_cast<std::size_t>(c)];
  thermal_->step(cellW, dt);

  for (int c = 0; c < clusters; ++c)
    lastClusterTemps_[static_cast<std::size_t>(c)] =
        thermal_->temperatures()[static_cast<std::size_t>(c)];

  PowerSample sample;
  sample.time = now;
  sample.totalWatts = pb.totalWatts;
  sample.maxClusterWatts =
      pb.clusterWatts.empty()
          ? 0
          : *std::max_element(pb.clusterWatts.begin(), pb.clusterWatts.end());
  sample.maxTempC = thermal_->maxTemp();
  sample.avgClusterGhz = sumGhz / clusters;
  sample.instructionsDelta = s.instructions - lastInstructions_;
  samples_.push_back(sample);

  lastTime_ = now;
  lastSnap_ = std::move(snap);
  lastInstructions_ = s.instructions;

  control(rc);
}

double PowerTracePlugin::peakTempC() const {
  double peak = thermalParams_.ambientC;
  for (const auto& s : samples_) peak = std::max(peak, s.maxTempC);
  return peak;
}

void DvfsThermalPlugin::control(RuntimeControl& rc) {
  int clusters = rc.config().clusters;
  for (int c = 0; c < clusters; ++c) {
    double t = lastClusterTemps_[static_cast<std::size_t>(c)];
    double f = rc.clusterFrequency(c);
    if (t > capC_ && f > minGhz_) {
      rc.setClusterFrequency(c, std::max(minGhz_, f * 0.75));
      ++throttleActions_;
    } else if (t < capC_ - 3.0 && f < nominalGhz_) {
      rc.setClusterFrequency(c, std::min(nominalGhz_, f * 1.15));
    }
  }
}

}  // namespace xmt
