#include "src/power/floorviz.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/error.h"

namespace xmt {

std::string renderFloorplan(const std::vector<double>& values, int rows,
                            int cols, const std::string& title, double lo,
                            double hi) {
  XMT_CHECK(values.size() >= static_cast<std::size_t>(rows * cols));
  static const char kShades[] = " .:-=+*#%@";
  constexpr int kLevels = 9;
  if (lo >= hi) {
    lo = *std::min_element(values.begin(), values.end());
    hi = *std::max_element(values.begin(), values.end());
    if (hi <= lo) hi = lo + 1.0;
  }
  std::ostringstream out;
  out << "+-- " << title << " ";
  for (std::size_t i = title.size() + 5; i < static_cast<std::size_t>(2 * cols + 1); ++i)
    out << "-";
  out << "+\n";
  for (int r = 0; r < rows; ++r) {
    out << "|";
    for (int c = 0; c < cols; ++c) {
      double v = values[static_cast<std::size_t>(r * cols + c)];
      double norm = (v - lo) / (hi - lo);
      int level = static_cast<int>(norm * kLevels + 0.5);
      level = std::clamp(level, 0, kLevels);
      char ch = kShades[level];
      out << ch << ch;
    }
    out << "|\n";
  }
  out << "+";
  for (int i = 0; i < 2 * cols; ++i) out << "-";
  out << "+\n";
  char buf[96];
  std::snprintf(buf, sizeof buf, "scale: '%c' = %.2f .. '%c' = %.2f\n",
                kShades[0], lo, kShades[kLevels], hi);
  out << buf;
  return out.str();
}

}  // namespace xmt
