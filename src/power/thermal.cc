#include "src/power/thermal.h"

#include <algorithm>

#include "src/common/error.h"

namespace xmt {

ThermalModel::ThermalModel(int rows, int cols, ThermalParams params)
    : rows_(rows), cols_(cols), params_(params) {
  XMT_CHECK(rows > 0 && cols > 0);
  temps_.assign(static_cast<std::size_t>(rows * cols), params_.ambientC);
}

void ThermalModel::step(const std::vector<double>& powerWatts,
                        double dtSeconds) {
  XMT_CHECK(powerWatts.size() == temps_.size());
  XMT_CHECK(dtSeconds >= 0);
  // Stability bound for explicit Euler: dt < C * R_parallel_min. Use a
  // conservative substep.
  double gMax = 1.0 / params_.rVertical + 4.0 / params_.rLateral;
  double dtMax = 0.25 * params_.heatCapacity / gMax;
  int substeps = std::max(1, static_cast<int>(dtSeconds / dtMax) + 1);
  double dt = dtSeconds / substeps;
  std::vector<double> next(temps_.size());
  for (int s = 0; s < substeps; ++s) {
    for (int r = 0; r < rows_; ++r) {
      for (int c = 0; c < cols_; ++c) {
        std::size_t i = static_cast<std::size_t>(r * cols_ + c);
        double t = temps_[i];
        double flow = powerWatts[i];
        flow -= (t - params_.ambientC) / params_.rVertical;
        auto lateral = [&](int rr, int cc) {
          if (rr < 0 || rr >= rows_ || cc < 0 || cc >= cols_) return;
          flow -= (t - temps_[static_cast<std::size_t>(rr * cols_ + cc)]) /
                  params_.rLateral;
        };
        lateral(r - 1, c);
        lateral(r + 1, c);
        lateral(r, c - 1);
        lateral(r, c + 1);
        next[i] = t + dt * flow / params_.heatCapacity;
      }
    }
    temps_.swap(next);
  }
}

double ThermalModel::maxTemp() const {
  return *std::max_element(temps_.begin(), temps_.end());
}

}  // namespace xmt
