// Dynamic power and thermal management — the activity-plug-in application
// the paper calls out as unique to XMTSim ("the only publicly available
// many-core simulator that allows evaluation of mechanisms, such as dynamic
// power and thermal management", Section I).
//
// PowerTracePlugin samples activity counters at a fixed interval and records
// a power/temperature profile over simulated time (the "execution profiles
// of XMTC programs ... showing memory and computation intensive phases,
// power" of Section III-B).
//
// DvfsThermalPlugin additionally closes the loop: when a cluster's modelled
// temperature exceeds the cap it lowers that cluster's clock through the
// RuntimeControl API; when it cools below the cap minus hysteresis it steps
// the clock back toward nominal.
#pragma once

#include <memory>
#include <vector>

#include "src/power/power.h"
#include "src/power/thermal.h"
#include "src/sim/plugins.h"

namespace xmt {

struct PowerSample {
  SimTime time = 0;
  double totalWatts = 0;
  double maxClusterWatts = 0;
  double maxTempC = 0;
  double avgClusterGhz = 0;
  std::uint64_t instructionsDelta = 0;
};

/// Maps `clusters` onto a near-square floorplan grid.
void floorplanDims(int clusters, int& rows, int& cols);

class PowerTracePlugin : public ActivityPlugin {
 public:
  PowerTracePlugin(PowerParams power = {}, ThermalParams thermal = {});

  void onInterval(RuntimeControl& rc) override;

  const std::vector<PowerSample>& samples() const { return samples_; }
  const ThermalModel& thermal() const { return *thermal_; }
  double peakTempC() const;

 protected:
  /// Hook for subclasses, called after the thermal step with per-cluster
  /// temperatures available.
  virtual void control(RuntimeControl& rc) { (void)rc; }

  PowerParams power_;
  ThermalParams thermalParams_;
  std::unique_ptr<ThermalModel> thermal_;
  int rows_ = 0, cols_ = 0;
  bool initialized_ = false;
  SimTime lastTime_ = 0;
  ActivitySnapshot lastSnap_;
  std::uint64_t lastInstructions_ = 0;
  std::vector<PowerSample> samples_;
  std::vector<double> lastClusterTemps_;
};

class DvfsThermalPlugin : public PowerTracePlugin {
 public:
  DvfsThermalPlugin(double tempCapC, double nominalGhz, double minGhz = 0.2,
                    PowerParams power = {}, ThermalParams thermal = {})
      : PowerTracePlugin(power, thermal),
        capC_(tempCapC),
        nominalGhz_(nominalGhz),
        minGhz_(minGhz) {}

  int throttleActions() const { return throttleActions_; }

 protected:
  void control(RuntimeControl& rc) override;

 private:
  double capC_;
  double nominalGhz_;
  double minGhz_;
  int throttleActions_ = 0;
};

}  // namespace xmt
