#include "src/power/power.h"

#include "src/common/error.h"

namespace xmt {

ActivitySnapshot takeSnapshot(const Stats& s) {
  ActivitySnapshot snap;
  snap.perCluster = s.perCluster;
  snap.cacheServices = s.cacheHits + s.cacheMisses;
  snap.dramRequests = s.dramRequests;
  snap.icnPackets = s.icnPackets;
  return snap;
}

PowerBreakdown computePower(const PowerParams& p,
                            const ActivitySnapshot& before,
                            const ActivitySnapshot& after,
                            double intervalSeconds,
                            const std::vector<double>& clusterGhz,
                            double uncoreGhz) {
  XMT_CHECK(intervalSeconds > 0);
  XMT_CHECK(after.perCluster.size() == clusterGhz.size());
  PowerBreakdown out;
  out.clusterWatts.resize(after.perCluster.size(), 0.0);
  auto delta = [](std::uint64_t a, std::uint64_t b) {
    return a >= b ? static_cast<double>(a - b) : 0.0;
  };
  const double pjToW = 1e-12 / intervalSeconds;
  for (std::size_t c = 0; c < after.perCluster.size(); ++c) {
    const ClusterActivity& a = after.perCluster[c];
    ClusterActivity z{};
    const ClusterActivity& b =
        c < before.perCluster.size() ? before.perCluster[c] : z;
    double dynamic =
        (delta(a.aluOps, b.aluOps) * p.pjAluOp +
         delta(a.mduOps, b.mduOps) * p.pjMduOp +
         delta(a.fpuOps, b.fpuOps) * p.pjFpuOp +
         delta(a.memOps, b.memOps) * p.pjMemOp) *
        pjToW;
    double clock = p.wattsPerGhzCluster * clusterGhz[c];
    out.clusterWatts[c] = dynamic + clock + p.leakCluster;
    out.totalWatts += out.clusterWatts[c];
  }
  double uncoreDyn =
      (delta(after.cacheServices, before.cacheServices) * p.pjCacheAccess +
       delta(after.dramRequests, before.dramRequests) * p.pjDramAccess +
       delta(after.icnPackets, before.icnPackets) * p.pjIcnPacket) *
      pjToW;
  out.uncoreWatts = uncoreDyn + p.wattsPerGhzUncore * uncoreGhz + p.leakUncore;
  out.totalWatts += out.uncoreWatts;
  return out;
}

}  // namespace xmt
