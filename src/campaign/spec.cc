#include "src/campaign/spec.h"

#include <algorithm>
#include <cctype>

#include "src/common/digest.h"
#include "src/common/error.h"
#include "src/common/version.h"
#include "src/sim/statsjson.h"

namespace xmt::campaign {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> splitList(const std::string& key,
                                   const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    std::size_t comma = value.find(',', start);
    std::string item = trim(value.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start));
    if (item.empty())
      throw ConfigError(key, "empty entry in value list '" + value + "'");
    out.push_back(std::move(item));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (out.empty()) throw ConfigError(key, "empty value list");
  return out;
}

bool startsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> knownConfigKeys() {
  return XmtConfig{}.toConfigMap().keys();  // includes "base"
}

bool isConfigKey(const std::string& key) {
  static const std::vector<std::string> kKnown = knownConfigKeys();
  return std::find(kKnown.begin(), kKnown.end(), key) != kKnown.end();
}

}  // namespace

std::uint64_t fnv1a64(const std::string& text) { return xmt::fnv1a64(text); }

CampaignSpec CampaignSpec::fromText(const std::string& text) {
  return fromConfigMap(ConfigMap::fromText(text));
}

CampaignSpec CampaignSpec::fromFile(const std::string& path) {
  return fromConfigMap(ConfigMap::fromFile(path));
}

CampaignSpec CampaignSpec::fromConfigMap(const ConfigMap& map) {
  CampaignSpec spec;
  spec.map_ = map;
  std::string baselineText;

  for (const auto& key : map.keys()) {
    std::string value = map.getString(key, "");
    if (key == "campaign") {
      spec.name_ = value;
    } else if (key == "base") {
      XmtConfig::byName(value);  // validates the preset name
      spec.fixedConfig_.set("base", value);
    } else if (key == "mode") {
      simModeByName(value);  // validates
      spec.fixedMode_ = value;
    } else if (key == "workload") {
      spec.fixedWorkload_ = value;
    } else if (key == "baseline") {
      baselineText = value;
    } else if (startsWith(key, "config.")) {
      std::string k = key.substr(7);
      if (!isConfigKey(k))
        throw ConfigError(key, "not an XmtConfig parameter");
      spec.fixedConfig_.set(k, value);
    } else if (startsWith(key, "workload.")) {
      spec.fixedWorkloadParams_.set(key.substr(9), value);
    } else if (startsWith(key, "sweep.")) {
      std::string dim = key.substr(6);
      if (dim != "mode" && dim != "workload" &&
          !startsWith(dim, "workload.") && !isConfigKey(dim))
        throw ConfigError(key, "not a sweepable dimension (XmtConfig key, "
                               "'mode', 'workload' or 'workload.<param>')");
      Dimension d{dim, splitList(key, value)};
      for (std::size_t i = 0; i < d.values.size(); ++i)
        for (std::size_t j = i + 1; j < d.values.size(); ++j)
          if (d.values[i] == d.values[j])
            throw ConfigError(key, "duplicate value '" + d.values[i] + "'");
      if (dim == "mode")
        for (const auto& v : d.values) simModeByName(v);
      if (dim == "workload")
        for (const auto& v : d.values) workloads::findWorkload(v);
      spec.dims_.push_back(std::move(d));
    } else {
      throw ConfigError(key, "unknown campaign spec key");
    }
  }

  std::sort(spec.dims_.begin(), spec.dims_.end(),
            [](const Dimension& a, const Dimension& b) {
              return a.name < b.name;
            });

  // A key may be fixed or swept, not both.
  for (const auto& d : spec.dims_) {
    bool fixedToo =
        (d.name == "mode" && map.has("mode")) ||
        (d.name == "workload" && map.has("workload")) ||
        (startsWith(d.name, "workload.")
             ? map.has(d.name)
             : map.has("config." + d.name));
    if (fixedToo)
      throw ConfigError("sweep." + d.name, "also set as a fixed key");
  }

  // The selected workload(s) must exist and accept every param in play.
  std::vector<std::string> workloadNames;
  if (!spec.fixedWorkload_.empty())
    workloadNames.push_back(spec.fixedWorkload_);
  std::vector<std::string> paramNames = spec.fixedWorkloadParams_.keys();
  for (const auto& d : spec.dims_) {
    if (d.name == "workload")
      workloadNames = d.values;
    else if (startsWith(d.name, "workload."))
      paramNames.push_back(d.name.substr(9));
  }
  if (workloadNames.empty())
    throw ConfigError("workload", "spec selects no workload");
  for (const auto& wname : workloadNames) {
    const auto& entry = workloads::findWorkload(wname);
    for (const auto& p : paramNames)
      if (std::find(entry.params.begin(), entry.params.end(), p) ==
          entry.params.end())
        throw ConfigError("workload." + p,
                          "not a parameter of workload '" + wname + "'");
  }

  if (!baselineText.empty()) {
    for (const auto& part : splitList("baseline", baselineText)) {
      auto eq = part.find('=');
      if (eq == std::string::npos)
        throw ConfigError("baseline", "expected dim=value, got '" + part + "'");
      std::string dim = trim(part.substr(0, eq));
      std::string val = trim(part.substr(eq + 1));
      auto it = std::find_if(
          spec.dims_.begin(), spec.dims_.end(),
          [&](const Dimension& d) { return d.name == dim; });
      if (it == spec.dims_.end())
        throw ConfigError("baseline", "'" + dim + "' is not a swept dimension");
      if (std::find(it->values.begin(), it->values.end(), val) ==
          it->values.end())
        throw ConfigError("baseline", "'" + val + "' is not a value of '" +
                                          dim + "'");
      spec.baseline_.emplace_back(dim, val);
    }
    std::sort(spec.baseline_.begin(), spec.baseline_.end());
  }

  if (spec.pointCount() > 100000)
    throw ConfigError("sweep", "grid has " +
                                   std::to_string(spec.pointCount()) +
                                   " points; the limit is 100000");
  return spec;
}

std::size_t CampaignSpec::pointCount() const {
  std::size_t n = 1;
  for (const auto& d : dims_) n *= d.values.size();
  return n;
}

std::uint64_t CampaignSpec::fingerprint() const {
  return fingerprintWith(kToolchainVersion);
}

std::uint64_t CampaignSpec::fingerprintWith(const std::string& version) const {
  return fnv1a64(version + "\n" + map_.toText());
}

std::vector<CampaignPoint> CampaignSpec::expand() const {
  std::vector<CampaignPoint> points;
  points.reserve(pointCount());
  std::vector<std::size_t> odo(dims_.size(), 0);
  for (std::size_t index = 0; index < pointCount(); ++index) {
    CampaignPoint p;
    p.index = static_cast<int>(index);
    for (std::size_t d = 0; d < dims_.size(); ++d)
      p.dims.emplace_back(dims_[d].name, dims_[d].values[odo[d]]);

    for (const auto& [name, value] : p.dims) {
      if (!p.key.empty()) p.key += ' ';
      p.key += name + "=" + value;
    }
    if (p.key.empty()) p.key = "default";

    ConfigMap cm = fixedConfig_;
    std::string modeName = fixedMode_;
    p.workload.name = fixedWorkload_;
    p.workload.params = fixedWorkloadParams_;
    for (const auto& [name, value] : p.dims) {
      if (name == "mode") modeName = value;
      else if (name == "workload") p.workload.name = value;
      else if (startsWith(name, "workload."))
        p.workload.params.set(name.substr(9), value);
      else cm.set(name, value);
    }
    p.mode = simModeByName(modeName);
    try {
      p.config = XmtConfig::fromConfigMap(cm);
    } catch (const Error& e) {
      throw ConfigError("point '" + p.key + "': " + e.what());
    }
    workloads::validateWorkloadParams(
        workloads::findWorkload(p.workload.name), p.workload.params);

    points.push_back(std::move(p));
    // Odometer: last (canonically-sorted) dimension advances fastest.
    for (std::size_t d = dims_.size(); d-- > 0;) {
      if (++odo[d] < dims_[d].values.size()) break;
      odo[d] = 0;
    }
  }
  return points;
}

}  // namespace xmt::campaign
