// Campaign runner: executes a sweep grid on the work-stealing pool.
//
// Each grid point is an independent compile + simulate pipeline (the
// Toolchain and Simulator share no mutable state between instances), so
// points parallelize perfectly across workers; the result store
// serializes only the final append of each record. Determinism contract:
// a point's persisted record is a pure function of the spec — bit
// identical regardless of worker count, completion order, or whether the
// campaign was resumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/campaign/resultstore.h"
#include "src/campaign/spec.h"

namespace xmt::campaign {

/// The spec-independent outcome of simulating one (config, mode, workload)
/// combination — everything about the run except where it sits in a
/// particular sweep grid. This is the unit the server's content-addressed
/// cache stores: the same payload serves any grid, any client, that asks
/// for the same point.
struct RunPayload {
  bool ok = false;
  std::string error;  // set when !ok
  /// Deterministic JSON object {"workload","config","mode","result",
  /// "stats"}; set when ok. payloadToRecord() turns it back into a full
  /// results.jsonl record byte-identical to an uncached run's.
  std::string json;
};

/// Compiles and simulates one point (no cache involved). Never throws —
/// failures come back as ok=false payloads. Increments the process-wide
/// simulation counter.
RunPayload simulatePoint(const CampaignPoint& point, int pdesShards = 1);

/// Re-attaches a payload to its grid position: prefixes {"point","key",
/// "dims"} and extracts the headline metrics. Pure — a cached payload and
/// a fresh one produce byte-identical records.
PointRecord payloadToRecord(const CampaignPoint& point, const RunPayload& p);

/// Process-wide count of actual simulations executed (simulatePoint
/// calls). The serving tests use the delta across a warm-cache replay to
/// prove "zero simulations" rather than inferring it from timing.
std::uint64_t simulationsExecuted();

struct CampaignOptions {
  /// Output directory for manifest/results/summary (required).
  std::string outDir;
  /// Worker threads; <= 0 selects the hardware concurrency.
  int workers = 0;
  /// PDES shards per cycle-accurate point (1 = sequential engine). The
  /// persisted records are bit-identical either way — this trades
  /// point-level for intra-point parallelism, which pays off when the grid
  /// has fewer big points than cores. Pool workers are divided by the
  /// shard count to keep total thread pressure roughly constant.
  int pdesShards = 1;
  /// Discard any previous results in outDir instead of resuming.
  bool fresh = false;
  /// When > 0, run at most this many pending points (in grid order) and
  /// stop — the building block of the resume tests and of incremental
  /// "run a bit more of the sweep" workflows.
  std::size_t limitPoints = 0;
  /// Progress callback, invoked as each point lands. Calls may come from
  /// different worker threads but are serialized by the runner (one at a
  /// time, with a happens-before edge between consecutive calls), so the
  /// callback itself needs no locking.
  std::function<void(const PointRecord&)> onPoint;
  /// Per-point result-cache hooks (both or neither). When lookup returns
  /// true the point is served from *out without simulating; after a
  /// successful simulation fill is offered the payload. The server and
  /// `xmtdse --cache` plug the content-addressed ResultCache in here.
  /// Both may be called concurrently from worker threads.
  std::function<bool(const CampaignPoint&, RunPayload* out)> cacheLookup;
  std::function<void(const CampaignPoint&, const RunPayload&)> cacheFill;
};

struct CampaignResult {
  std::size_t totalPoints = 0;
  std::size_t skipped = 0;   // already done in the store (resume)
  std::size_t executed = 0;  // run by this invocation
  std::size_t failed = 0;    // of the executed points
  std::size_t cacheHits = 0; // of the executed points, served via cacheLookup
  std::size_t remaining = 0; // still pending (limitPoints cut)
  std::string summary;       // campaignReport(), also in summary.txt
  std::vector<PointRecord> records;  // all store records, by point index
};

/// Runs one resolved point: compile, prepare inputs, simulate, serialize.
/// Never throws — failures come back as ok=false records.
PointRecord runPoint(const CampaignPoint& point, int pdesShards = 1);

/// Expands the spec, skips points already in the store, runs the rest on
/// the pool, then finalizes the store (sorted results.jsonl, results.csv,
/// summary.txt).
CampaignResult runCampaign(const CampaignSpec& spec,
                           const CampaignOptions& opts);

}  // namespace xmt::campaign
