#include "src/campaign/resultstore.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <filesystem>
#include <fstream>

#include "src/common/digest.h"
#include "src/common/error.h"
#include "src/common/json.h"

namespace xmt::campaign {

namespace {

std::string fingerprintHex(std::uint64_t fp) { return hex64(fp); }

// fflush moves data to the kernel; fsync makes it durable. A record is
// only "committed" (trusted by resume and by the server cache's
// durability story) once it survives a power loss, not just a SIGKILL.
void flushDurably(std::FILE* f) {
  std::fflush(f);
  ::fsync(::fileno(f));
}

}  // namespace

std::string csvEscape(const std::string& s) {
  // RFC-4180 quoting: a field containing a comma, quote, or line break is
  // wrapped in quotes with embedded quotes doubled. Workload names and
  // swept values are benign today, but error strings and future workload
  // params can carry all three.
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

PointRecord parseRecordLine(const std::string& line) {
  Json j = Json::parse(line);
  PointRecord r;
  r.index = static_cast<int>(j.at("point").asInt());
  r.key = j.at("key").asString();
  for (const auto& [k, v] : j.at("dims").fields())
    r.dims.emplace_back(k, v.asString());
  r.ok = true;
  r.recordJson = line;
  r.mode = j.at("mode").asString();
  r.workload = j.at("workload").at("key").asString();
  const Json& stats = j.at("stats");
  r.instructions = static_cast<std::uint64_t>(stats.at("instructions").asInt());
  r.cycles = static_cast<std::uint64_t>(stats.at("cycles").asInt());
  r.simTimePs = static_cast<std::uint64_t>(stats.at("sim_time_ps").asInt());
  return r;
}

ResultStore::ResultStore(std::string dir, const CampaignSpec& spec, bool fresh)
    : dir_(std::move(dir)), spec_(spec) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw ConfigError("cannot create campaign directory '" + dir_ +
                      "': " + ec.message());
  manifestPath_ = dir_ + "/manifest.jsonl";
  resultsPath_ = dir_ + "/results.jsonl";
  csvPath_ = dir_ + "/results.csv";
  summaryPath_ = dir_ + "/summary.txt";
  done_.assign(spec_.pointCount(), false);
  if (!fresh) loadExisting();
  openAppend();
}

ResultStore::~ResultStore() {
  if (manifest_) std::fclose(manifest_);
  if (results_) std::fclose(results_);
}

void ResultStore::loadExisting() {
  std::ifstream mf(manifestPath_);
  if (!mf) return;  // nothing to resume from

  std::string line;
  if (!std::getline(mf, line) || line.empty()) return;
  Json header;
  try {
    header = Json::parse(line);
  } catch (const Error&) {
    return;  // unreadable header: treat as no previous campaign
  }
  std::string fp = header.at("fingerprint").asString();
  if (fp != fingerprintHex(spec_.fingerprint()))
    throw ConfigError(
        "campaign directory '" + dir_ +
        "' holds results for a different spec (fingerprint " + fp +
        "); rerun with a fresh directory or pass --fresh");

  // Manifest statuses: last line per point wins; a truncated tail line
  // (killed campaign) simply ends the scan.
  std::vector<int> status(spec_.pointCount(), -1);  // -1 none, 0 failed, 1 ok
  while (std::getline(mf, line)) {
    if (line.empty()) continue;
    Json j;
    try {
      j = Json::parse(line);
    } catch (const Error&) {
      break;
    }
    std::int64_t idx = j.at("point").asInt();
    if (idx < 0 || static_cast<std::size_t>(idx) >= status.size()) continue;
    status[static_cast<std::size_t>(idx)] =
        j.at("status").asString() == "ok" ? 1 : 0;
  }

  // Records for manifest-ok points. Only a point whose record parses is
  // kept as done — anything else re-runs.
  std::ifstream rf(resultsPath_);
  if (rf) {
    while (std::getline(rf, line)) {
      if (line.empty()) continue;
      PointRecord r;
      try {
        r = parseRecordLine(line);
      } catch (const Error&) {
        // A torn trailing line from a killed run (or any corrupt line):
        // skip it — openAppend() rewrites the file from the surviving
        // records, so the torn bytes are truncated away on disk too.
        continue;
      }
      std::size_t idx = static_cast<std::size_t>(r.index);
      if (r.index < 0 || idx >= done_.size() || status[idx] != 1 ||
          done_[idx])
        continue;
      done_[idx] = true;
      records_.push_back(std::move(r));
    }
  }
}

void ResultStore::openAppend() {
  // Rewrite both files from the loaded state so stale tails from a killed
  // run never precede fresh appends, then keep appending.
  std::sort(records_.begin(), records_.end(),
            [](const PointRecord& a, const PointRecord& b) {
              return a.index < b.index;
            });
  manifest_ = std::fopen(manifestPath_.c_str(), "w");
  results_ = std::fopen(resultsPath_.c_str(), "w");
  if (!manifest_ || !results_)
    throw ConfigError("cannot write campaign files in '" + dir_ + "'");
  writeHeader();
  for (const auto& r : records_) {
    std::fprintf(results_, "%s\n", r.recordJson.c_str());
    Json m = Json::object();
    m.set("point", Json::number(static_cast<std::int64_t>(r.index)));
    m.set("key", Json::str(r.key));
    m.set("status", Json::str("ok"));
    std::fprintf(manifest_, "%s\n", m.dump().c_str());
  }
  std::fflush(results_);
  std::fflush(manifest_);
}

void ResultStore::writeHeader() {
  Json h = Json::object();
  h.set("campaign", Json::str(spec_.name()));
  h.set("fingerprint", Json::str(fingerprintHex(spec_.fingerprint())));
  h.set("points", Json::number(static_cast<std::int64_t>(spec_.pointCount())));
  std::fprintf(manifest_, "%s\n", h.dump().c_str());
}

bool ResultStore::isDone(int index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index >= 0 && static_cast<std::size_t>(index) < done_.size() &&
         done_[static_cast<std::size_t>(index)];
}

std::size_t ResultStore::doneCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::size_t>(
      std::count(done_.begin(), done_.end(), true));
}

void ResultStore::record(PointRecord r) {
  std::lock_guard<std::mutex> lock(mu_);
  // Record line first (made durable with fsync), then the manifest
  // status: a crash between the two re-runs the point, never trusts a
  // status without data, and a status line never lands before its record
  // is on stable storage.
  if (r.ok) {
    std::fprintf(results_, "%s\n", r.recordJson.c_str());
    flushDurably(results_);
    done_[static_cast<std::size_t>(r.index)] = true;
  }
  Json m = Json::object();
  m.set("point", Json::number(static_cast<std::int64_t>(r.index)));
  m.set("key", Json::str(r.key));
  m.set("status", Json::str(r.ok ? "ok" : "failed"));
  if (!r.ok) m.set("error", Json::str(r.error));
  std::fprintf(manifest_, "%s\n", m.dump().c_str());
  flushDurably(manifest_);
  records_.push_back(std::move(r));
}

std::vector<PointRecord> ResultStore::sortedRecords() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PointRecord> out = records_;
  std::sort(out.begin(), out.end(),
            [](const PointRecord& a, const PointRecord& b) {
              return a.index < b.index;
            });
  return out;
}

void ResultStore::finalize(const std::string& summary) {
  std::vector<PointRecord> sorted = sortedRecords();
  std::lock_guard<std::mutex> lock(mu_);

  // results.jsonl in point order: a resumed campaign ends up byte-equal
  // to a clean one.
  std::freopen(resultsPath_.c_str(), "w", results_);
  for (const auto& r : sorted)
    if (r.ok) std::fprintf(results_, "%s\n", r.recordJson.c_str());
  std::fflush(results_);

  std::ofstream csv(csvPath_, std::ios::trunc);
  // Dimension columns get a "dim." prefix so a swept "mode" or "workload"
  // doesn't collide with the fixed columns of the same name.
  csv << "point,key,workload,mode";
  for (const auto& d : spec_.dimensions())
    csv << ",dim." << csvEscape(d.name);
  csv << ",instructions,cycles,sim_time_ps\n";
  for (const auto& r : sorted) {
    if (!r.ok) continue;
    csv << r.index << ',' << csvEscape(r.key) << ',' << csvEscape(r.workload)
        << ',' << r.mode;
    for (const auto& [name, value] : r.dims) {
      (void)name;
      csv << ',' << csvEscape(value);
    }
    csv << ',' << r.instructions << ',' << r.cycles << ',' << r.simTimePs
        << '\n';
  }

  std::ofstream sum(summaryPath_, std::ios::trunc);
  sum << summary;
}

}  // namespace xmt::campaign
