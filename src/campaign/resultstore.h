// On-disk campaign result store: JSON-lines records, a resume manifest,
// and a CSV aggregate.
//
// Layout of the output directory:
//   manifest.jsonl — line 1: the campaign header (name, spec fingerprint,
//                    point count); then one status line per finished point
//                    ({"point","key","status","error"?}). Append-only
//                    during a run; the completion order is whatever the
//                    worker pool produced.
//   results.jsonl  — one full record per successful point ({"point",
//                    "key","dims","workload","config","mode","result",
//                    "stats"}). Appended as points finish, rewritten in
//                    point order by finalize() so a resumed campaign's
//                    merged file is byte-identical to a clean run's.
//   results.csv    — finalize(): one row per successful point (dims +
//                    headline counters), for spreadsheets/plotting.
//   summary.txt    — finalize(): the human-readable report.
//
// Resumability: a record line is flushed before its manifest status line,
// so every point the manifest claims is done has a parseable record. On
// load, the header fingerprint must match the spec (else ConfigError —
// pass fresh=true to wipe); "ok" points are skipped by the runner,
// "failed" and missing points re-run.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "src/campaign/spec.h"

namespace xmt::campaign {

/// Outcome of one campaign point, as persisted.
struct PointRecord {
  int index = 0;
  std::string key;
  std::vector<std::pair<std::string, std::string>> dims;
  bool ok = false;
  std::string error;      // set when !ok
  std::string recordJson; // full results.jsonl line (without '\n'); ok only
  // Headline metrics (mirrored out of recordJson for ranking/CSV).
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t simTimePs = 0;
  std::string mode;       // "cycle" or "functional"
  std::string workload;   // workload instance key
};

class ResultStore {
 public:
  /// Opens (creating the directory if needed) and, unless `fresh`, loads
  /// any existing manifest + records for this spec.
  ResultStore(std::string dir, const CampaignSpec& spec, bool fresh);
  ~ResultStore();

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// True when the manifest already has a successful record for `index`.
  bool isDone(int index) const;
  std::size_t doneCount() const;

  /// Persists one finished point (thread-safe, crash-safe append order).
  void record(PointRecord r);

  /// All records (loaded + new), sorted by point index.
  std::vector<PointRecord> sortedRecords() const;

  /// Rewrites results.jsonl in point order, writes results.csv and
  /// summary.txt. Call once, after the run loop.
  void finalize(const std::string& summary);

  const std::string& dir() const { return dir_; }

 private:
  void openAppend();
  void writeHeader();
  void loadExisting();

  std::string dir_;
  std::string manifestPath_, resultsPath_, csvPath_, summaryPath_;
  const CampaignSpec& spec_;
  mutable std::mutex mu_;
  std::vector<PointRecord> records_;  // completed (ok or failed)
  std::vector<bool> done_;            // ok per point index
  std::FILE* manifest_ = nullptr;
  std::FILE* results_ = nullptr;
};

/// Parses one results.jsonl line back into a PointRecord (ok=true).
/// Throws ConfigError on malformed input.
PointRecord parseRecordLine(const std::string& line);

/// RFC-4180 CSV field quoting: wraps (and quote-doubles) any field
/// containing a comma, quote, or line break; returns others unchanged.
std::string csvEscape(const std::string& s);

}  // namespace xmt::campaign
