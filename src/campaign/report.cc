#include "src/campaign/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace xmt::campaign {

namespace {

std::string fmtDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// Signature of the dimensions NOT pinned by the baseline selector — the
/// grouping key for groupwise speedups.
std::string groupSignature(
    const PointRecord& r,
    const std::vector<std::pair<std::string, std::string>>& baseline) {
  std::string sig;
  for (const auto& [name, value] : r.dims) {
    bool pinned = std::any_of(
        baseline.begin(), baseline.end(),
        [&, n = name](const auto& b) { return b.first == n; });
    if (pinned) continue;
    if (!sig.empty()) sig += ' ';
    sig += name + "=" + value;
  }
  return sig;
}

bool isBaseline(
    const PointRecord& r,
    const std::vector<std::pair<std::string, std::string>>& baseline) {
  for (const auto& [name, value] : baseline) {
    bool match = std::any_of(r.dims.begin(), r.dims.end(),
                             [&, n = name, v = value](const auto& d) {
                               return d.first == n && d.second == v;
                             });
    if (!match) return false;
  }
  return true;
}

}  // namespace

std::uint64_t pointMetric(const PointRecord& r) {
  if (r.mode == "functional") return r.instructions;
  return r.simTimePs != 0 ? r.simTimePs : r.cycles;
}

std::string campaignReport(const CampaignSpec& spec,
                           const std::vector<PointRecord>& records,
                           std::size_t rankLimit) {
  std::ostringstream out;
  std::vector<const PointRecord*> ok;
  std::vector<const PointRecord*> failed;
  for (const auto& r : records) (r.ok ? ok : failed).push_back(&r);

  out << "=== campaign '" << spec.name() << "' ===\n";
  out << "points: " << spec.pointCount() << " total, " << ok.size()
      << " ok, " << failed.size() << " failed, "
      << (spec.pointCount() - ok.size() - failed.size()) << " pending\n";

  if (!ok.empty()) {
    std::vector<const PointRecord*> ranked = ok;
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const PointRecord* a, const PointRecord* b) {
                       return pointMetric(*a) < pointMetric(*b);
                     });
    out << "\nbest configurations (metric: sim-ps for cycle mode, "
           "instructions for functional):\n";
    std::size_t n = std::min(rankLimit, ranked.size());
    for (std::size_t i = 0; i < n; ++i) {
      const PointRecord& r = *ranked[i];
      out << "  " << (i + 1) << ". [" << r.key << "] metric="
          << pointMetric(r) << " cycles=" << r.cycles
          << " instructions=" << r.instructions << "\n";
    }
  }

  if (!spec.baseline().empty() && !ok.empty()) {
    std::map<std::string, const PointRecord*> baselines;
    for (const PointRecord* r : ok)
      if (isBaseline(*r, spec.baseline()))
        baselines[groupSignature(*r, spec.baseline())] = r;
    out << "\nspeedup vs baseline [";
    for (std::size_t i = 0; i < spec.baseline().size(); ++i) {
      if (i) out << ' ';
      out << spec.baseline()[i].first << '=' << spec.baseline()[i].second;
    }
    out << "]:\n";
    for (const PointRecord* r : ok) {
      auto it = baselines.find(groupSignature(*r, spec.baseline()));
      if (it == baselines.end()) {
        out << "  [" << r->key << "] baseline missing\n";
        continue;
      }
      double num = static_cast<double>(pointMetric(*it->second));
      double den = static_cast<double>(pointMetric(*r));
      out << "  [" << r->key << "] speedup="
          << (den > 0 ? fmtDouble(num / den) : "inf") << "\n";
    }
  }

  if (!failed.empty()) {
    out << "\nfailed points:\n";
    for (const PointRecord* r : failed)
      out << "  [" << r->key << "] " << r->error << "\n";
  }
  return out.str();
}

}  // namespace xmt::campaign
