// Campaign summary report: best-config ranking and baseline speedups.
//
// Turns a finished (or partially finished) campaign into the table a
// design-space study actually wants: which configuration won, and how
// much faster each point is than the spec's named baseline. The metric is
// per-mode: cycle-accurate points compare by simulated time (picoseconds
// — comparable across clock-frequency sweeps), functional points by
// instruction count.
//
// When the spec's `baseline` selector pins only a subset of the swept
// dimensions, speedups are computed groupwise: each point is normalized
// to the point that shares all its un-pinned dimension values and carries
// the pinned baseline values — e.g. `baseline = clusters=2` in a
// clusters x workload sweep normalizes every workload against its own
// 2-cluster run, which is exactly the paper's speedup-table shape.
#pragma once

#include <string>
#include <vector>

#include "src/campaign/resultstore.h"
#include "src/campaign/spec.h"

namespace xmt::campaign {

/// The ranking/speedup metric for one successful record (lower is
/// better): simulated picoseconds in cycle mode (falling back to cycles
/// when no time was recorded), instruction count in functional mode.
std::uint64_t pointMetric(const PointRecord& r);

/// Human-readable report: status counts, best-config ranking (up to
/// `rankLimit` rows), the baseline speedup table when the spec names a
/// baseline, and any failed points with their errors.
std::string campaignReport(const CampaignSpec& spec,
                           const std::vector<PointRecord>& records,
                           std::size_t rankLimit = 10);

}  // namespace xmt::campaign
