// Campaign sweep specification: a declarative grid over machine
// configurations, simulation modes and workloads.
//
// The paper studies XMT by sweeping TCU counts, cache sizes, DRAM
// bandwidth and clock ratios across benchmarks (Sections IV-V). A
// CampaignSpec captures one such study as a ConfigMap-format file:
//
//   campaign = tcu_scaling
//   base     = fpga64              # preset for un-swept machine fields
//   config.dram_latency = 40       # fixed override on every point
//   sweep.clusters = 2,4,8,16      # swept XmtConfig keys (comma lists)
//   sweep.tcus_per_cluster = 4,8
//   mode     = cycle               # or sweep.mode = cycle,functional
//   workload = vadd                # or sweep.workload = vadd,histogram
//   workload.n = 2048              # workload params; sweep.workload.n = ...
//   baseline = clusters=2,tcus_per_cluster=4   # speedup reference
//
// expand() produces the cartesian grid in a canonical deterministic order
// (dimensions sorted by name, values in spec order, last dimension
// fastest); a point's position in that order is its stable identity, and
// fingerprint() identifies the whole spec — together they make campaign
// result stores resumable.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/config.h"
#include "src/sim/config.h"
#include "src/sim/simulator.h"
#include "src/workloads/registry.h"

namespace xmt::campaign {

/// One swept axis of the grid. `name` is an XmtConfig key, "mode",
/// "workload", or "workload.<param>".
struct Dimension {
  std::string name;
  std::vector<std::string> values;
};

/// One fully resolved grid point.
struct CampaignPoint {
  int index = 0;     // position in canonical grid order
  std::string key;   // canonical "dim=value dim=value" (dims sorted by name)
  std::vector<std::pair<std::string, std::string>> dims;  // sorted by name
  XmtConfig config;  // validated machine configuration
  SimMode mode = SimMode::kCycleAccurate;
  workloads::WorkloadInstance workload;
};

class CampaignSpec {
 public:
  /// Parses and validates a spec. Throws ConfigError (with field()) on
  /// unknown keys, unknown workloads/params, empty sweep lists, or
  /// baseline selectors that do not match the grid.
  static CampaignSpec fromConfigMap(const ConfigMap& map);
  static CampaignSpec fromText(const std::string& text);
  static CampaignSpec fromFile(const std::string& path);

  const std::string& name() const { return name_; }
  const std::vector<Dimension>& dimensions() const { return dims_; }
  std::size_t pointCount() const;

  /// The full grid in canonical order. Every point's XmtConfig has been
  /// validated; a configuration made invalid by a sweep combination
  /// surfaces here as ConfigError naming the offending point key.
  std::vector<CampaignPoint> expand() const;

  /// Baseline dimension assignments ("" selector: empty). Keys are
  /// dimension names; a point is a baseline for its group when it carries
  /// every listed value.
  const std::vector<std::pair<std::string, std::string>>& baseline() const {
    return baseline_;
  }

  /// Canonical sorted key=value text of the spec (round-trippable).
  std::string canonicalText() const { return map_.toText(); }

  /// FNV-1a 64 fingerprint of (toolchain version, canonicalText());
  /// identifies the spec in the on-disk manifest so resumes never mix
  /// grids — and never trust results a different toolchain computed.
  std::uint64_t fingerprint() const;

  /// fingerprint() under an explicit toolchain version string (exposed so
  /// tests can prove a version bump invalidates resume manifests).
  std::uint64_t fingerprintWith(const std::string& version) const;

 private:
  std::string name_ = "campaign";
  ConfigMap map_;                 // original spec (canonical identity)
  ConfigMap fixedConfig_;         // base + config.* overrides
  ConfigMap fixedWorkloadParams_; // workload.* fixed params
  std::string fixedMode_ = "cycle";
  std::string fixedWorkload_;
  std::vector<Dimension> dims_;   // sorted by name
  std::vector<std::pair<std::string, std::string>> baseline_;
};

/// FNV-1a 64-bit hash (exposed for tests and the result store).
std::uint64_t fnv1a64(const std::string& text);

}  // namespace xmt::campaign
