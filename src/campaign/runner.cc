#include "src/campaign/runner.h"

#include <atomic>
#include <mutex>

#include "src/campaign/report.h"
#include "src/common/error.h"
#include "src/common/threadpool.h"
#include "src/core/toolchain.h"
#include "src/sim/statsjson.h"

namespace xmt::campaign {

namespace {
std::atomic<std::uint64_t> g_simulations{0};
}  // namespace

std::uint64_t simulationsExecuted() {
  return g_simulations.load(std::memory_order_relaxed);
}

RunPayload simulatePoint(const CampaignPoint& point, int pdesShards) {
  g_simulations.fetch_add(1, std::memory_order_relaxed);
  RunPayload p;
  try {
    ToolchainOptions opts;
    opts.config = point.config;
    opts.mode = point.mode;
    Toolchain tc(opts);
    auto sim = tc.makeSimulator(workloads::instanceSource(point.workload));
    if (pdesShards > 1 && point.mode == SimMode::kCycleAccurate)
      sim->setPdesShards(pdesShards);
    workloads::instancePrepare(point.workload, *sim);
    RunResult result = sim->run();
    if (!result.halted)
      throw SimError("program did not halt (instruction budget exhausted?)");

    Json j = Json::object();
    Json w = Json::object();
    w.set("name", Json::str(point.workload.name));
    Json params = Json::object();
    for (const auto& k : point.workload.params.keys())
      params.set(k, Json::str(point.workload.params.getString(k, "")));
    w.set("params", std::move(params));
    w.set("key", Json::str(point.workload.key()));
    j.set("workload", std::move(w));
    Json run = runRecordJson(point.config, point.mode, result, sim->stats());
    for (const auto& [k, v] : run.fields()) j.set(k, v);
    p.json = j.dump();
    p.ok = true;
  } catch (const Error& e) {
    p.ok = false;
    p.error = e.what();
  }
  return p;
}

PointRecord payloadToRecord(const CampaignPoint& point, const RunPayload& p) {
  PointRecord rec;
  rec.index = point.index;
  rec.key = point.key;
  rec.dims = point.dims;
  rec.mode = simModeName(point.mode);
  rec.workload = point.workload.key();
  if (!p.ok) {
    rec.ok = false;
    rec.error = p.error;
    return rec;
  }
  // Re-parse rather than splice strings: Json parse->dump is byte-stable,
  // so cached and freshly simulated payloads serialize identically.
  Json payload = Json::parse(p.json);
  Json j = Json::object();
  j.set("point", Json::number(static_cast<std::int64_t>(point.index)));
  j.set("key", Json::str(point.key));
  Json dims = Json::object();
  for (const auto& [name, value] : point.dims) dims.set(name, Json::str(value));
  j.set("dims", std::move(dims));
  for (const auto& [k, v] : payload.fields()) j.set(k, v);
  rec.recordJson = j.dump();
  const Json& stats = payload.at("stats");
  rec.instructions =
      static_cast<std::uint64_t>(stats.at("instructions").asInt());
  rec.cycles = static_cast<std::uint64_t>(stats.at("cycles").asInt());
  rec.simTimePs = static_cast<std::uint64_t>(stats.at("sim_time_ps").asInt());
  rec.ok = true;
  return rec;
}

PointRecord runPoint(const CampaignPoint& point, int pdesShards) {
  return payloadToRecord(point, simulatePoint(point, pdesShards));
}

CampaignResult runCampaign(const CampaignSpec& spec,
                           const CampaignOptions& opts) {
  if (opts.outDir.empty())
    throw ConfigError("campaign output directory not set");

  std::vector<CampaignPoint> points = spec.expand();
  ResultStore store(opts.outDir, spec, opts.fresh);

  std::vector<const CampaignPoint*> pending;
  for (const auto& p : points)
    if (!store.isDone(p.index)) pending.push_back(&p);

  CampaignResult res;
  res.totalPoints = points.size();
  res.skipped = points.size() - pending.size();
  std::size_t toRun = pending.size();
  if (opts.limitPoints > 0 && opts.limitPoints < toRun)
    toRun = opts.limitPoints;
  res.executed = toRun;
  res.remaining = pending.size() - toRun;

  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> cacheHits{0};
  // Serializes onPoint invocations: callbacks land from worker threads, but
  // one at a time and with a happens-before edge between them, so a plain
  // counter or ostream in the callback needs no locking of its own.
  std::mutex onPointMutex;
  {
    // Clamp here rather than trusting the pool's own default: workers == 0
    // must never reach ThreadPool as a zero-thread pool, and with PDES each
    // point itself runs `pdesShards` threads, so divide the pool down to
    // keep total thread pressure near the hardware concurrency.
    int workers = opts.workers > 0 ? opts.workers
                                   : ThreadPool::hardwareWorkers();
    if (opts.pdesShards > 1) workers /= opts.pdesShards;
    if (workers < 1) workers = 1;
    ThreadPool pool(workers);
    for (std::size_t i = 0; i < toRun; ++i) {
      const CampaignPoint* p = pending[i];
      pool.submit([p, &store, &failed, &cacheHits, &opts, &onPointMutex] {
        RunPayload payload;
        bool hit = opts.cacheLookup && opts.cacheLookup(*p, &payload);
        if (hit) {
          cacheHits.fetch_add(1, std::memory_order_relaxed);
        } else {
          payload = simulatePoint(*p, opts.pdesShards);
          if (payload.ok && opts.cacheFill) opts.cacheFill(*p, payload);
        }
        PointRecord rec = payloadToRecord(*p, payload);
        if (!rec.ok) failed.fetch_add(1, std::memory_order_relaxed);
        store.record(rec);
        if (opts.onPoint) {
          std::lock_guard<std::mutex> lock(onPointMutex);
          opts.onPoint(rec);
        }
      });
    }
    pool.wait();
  }
  res.failed = failed.load();
  res.cacheHits = cacheHits.load();

  res.records = store.sortedRecords();
  res.summary = campaignReport(spec, res.records);
  store.finalize(res.summary);
  return res;
}

}  // namespace xmt::campaign
