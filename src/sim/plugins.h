// Plug-in interfaces: filter plug-ins and activity plug-ins.
//
// "Users can customize the instruction statistics reported at the end of the
// simulation via external filter plug-ins. ... instruction and activity
// counters can be read at regular intervals during the simulation time via
// the activity plug-in interface. ... it can change the frequencies of the
// clock domains assigned to clusters, interconnection network, shared caches
// and DRAM controllers" (Section III-B).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/assembler/program.h"
#include "src/desim/scheduler.h"
#include "src/isa/isa.h"
#include "src/sim/config.h"
#include "src/sim/stats.h"

namespace xmt {

/// Runtime-control surface handed to activity plug-ins: counters plus the
/// API "for modifying the operation of the cycle-accurate components during
/// runtime" (clock domain control).
class RuntimeControl {
 public:
  virtual ~RuntimeControl() = default;

  virtual const Stats& stats() const = 0;
  virtual const XmtConfig& config() const = 0;
  virtual SimTime now() const = 0;
  virtual std::uint64_t coreCycles() const = 0;

  virtual void setClusterFrequency(int cluster, double ghz) = 0;
  virtual double clusterFrequency(int cluster) const = 0;
  virtual void setClusterEnabled(int cluster, bool enabled) = 0;
  virtual void setIcnFrequency(double ghz) = 0;
  virtual void setCacheFrequency(double ghz) = 0;
  virtual void setDramFrequency(double ghz) = 0;

  /// Stops the simulation at the current time (run() returns).
  virtual void requestStop() = 0;
};

/// Called at a fixed cycle interval during cycle-accurate simulation.
class ActivityPlugin {
 public:
  virtual ~ActivityPlugin() = default;
  virtual void onInterval(RuntimeControl& rc) = 0;
};

/// Observes every committed instruction; reports at end of simulation.
class FilterPlugin {
 public:
  virtual ~FilterPlugin() = default;
  virtual void onCommit(int cluster, int tcu, const Instruction& in,
                        std::uint32_t pc, std::uint32_t memAddr) = 0;
  /// Architectural memory access (functional mode). Default: ignored.
  virtual void onMemAccess(const MemAccess& access) { (void)access; }
  virtual std::string report() const = 0;
};

/// The default filter plug-in from the paper: "creates a list of most
/// frequently accessed locations in the XMT shared memory space", to help a
/// programmer find memory bottlenecks.
class HotMemoryFilter : public FilterPlugin {
 public:
  explicit HotMemoryFilter(int topN = 10, std::uint32_t granularityBytes = 4)
      : topN_(topN), granularity_(granularityBytes) {}

  void onCommit(int cluster, int tcu, const Instruction& in,
                std::uint32_t pc, std::uint32_t memAddr) override;
  std::string report() const override;

  /// (address, count) pairs, most frequent first.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> top() const;

 private:
  int topN_;
  std::uint32_t granularity_;
  std::map<std::uint32_t, std::uint64_t> counts_;
};

/// Filter plug-in counting instructions per assembly source line — the hook
/// that lets the compiler refer hot assembly back to XMTC lines.
class HotLineFilter : public FilterPlugin {
 public:
  explicit HotLineFilter(int topN = 10) : topN_(topN) {}
  void onCommit(int cluster, int tcu, const Instruction& in,
                std::uint32_t pc, std::uint32_t memAddr) override;
  std::string report() const override;
  std::vector<std::pair<std::int32_t, std::uint64_t>> top() const;

 private:
  int topN_;
  std::map<std::int32_t, std::uint64_t> counts_;
};

/// Dynamic race checker for functional-mode runs. Functional mode serializes
/// the virtual threads of a spawn region, so true interleaving bugs cannot
/// manifest — instead this plug-in shadow-tags every byte accessed inside a
/// spawn region with the last accessing virtual thread and flags accesses
/// that conflict with a *different* thread's earlier access to the same byte
/// in the same region. psm-to-psm accesses are exempt (the sanctioned
/// concurrent-update primitive); psm against a plain access still races.
/// This is the dynamic cross-check for the compiler's static race lint.
class RaceCheckPlugin : public FilterPlugin {
 public:
  struct DynRace {
    std::uint32_t addr = 0;
    bool writeWrite = false;       // else read/write
    std::uint32_t tidA = 0, tidB = 0;
    std::int32_t srcLine = 0;      // line of the second (racing) access
  };

  void onCommit(int, int, const Instruction&, std::uint32_t,
                std::uint32_t) override {}
  void onMemAccess(const MemAccess& access) override;
  std::string report() const override;

  const std::vector<DynRace>& races() const { return races_; }
  bool clean() const { return races_.empty(); }

  /// Data-symbol names covering the racy addresses, for comparison with the
  /// static lint's per-symbol findings. Addresses inside no data symbol map
  /// to "<stack>" (near the master stack) or "<unknown>".
  std::set<std::string> racySymbols(const Program& prog) const;

 private:
  struct Shadow {
    std::uint64_t spawnSeq = 0;
    bool hasWrite = false, writeAtomic = false;
    std::uint32_t writerTid = 0;
    bool hasRead = false, readAtomic = true;  // all reads so far atomic
    std::uint32_t readerTid = 0;
    bool multiReader = false;  // reads from more than one thread
  };

  std::map<std::uint32_t, Shadow> shadow_;  // per byte
  std::vector<DynRace> races_;
};

}  // namespace xmt
