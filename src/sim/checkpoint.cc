#include "src/sim/checkpoint.h"

#include <cstdio>
#include <sstream>

#include "src/common/error.h"

namespace xmt {

namespace {

constexpr const char* kMagic = "xmt-checkpoint-v1";

void hexEncode(const std::vector<std::uint8_t>& bytes, std::string& out) {
  static const char* kHex = "0123456789abcdef";
  out.reserve(out.size() + bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out += kHex[b >> 4];
    out += kHex[b & 0xf];
  }
}

std::vector<std::uint8_t> hexDecode(const std::string& s) {
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    throw SimError("checkpoint: bad hex digit");
  };
  if (s.size() % 2 != 0) throw SimError("checkpoint: odd hex length");
  std::vector<std::uint8_t> out(s.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = static_cast<std::uint8_t>((nib(s[2 * i]) << 4) |
                                       nib(s[2 * i + 1]));
  return out;
}

void readPages(std::istream& in, Checkpoint& c, std::size_t n) {
  std::string word;
  c.arch.pages.clear();
  for (std::size_t i = 0; i < n; ++i) {
    in >> word;
    if (word != "page") throw SimError("checkpoint: expected 'page'");
    std::uint32_t idx;
    in >> idx >> word;
    c.arch.pages.emplace_back(idx, hexDecode(word));
  }
  in >> word;
  if (word != "end") throw SimError("checkpoint: missing 'end'");
}

}  // namespace

std::string Checkpoint::serialize() const {
  std::ostringstream ss;
  ss << kMagic << "\n";
  ss << "config " << configName << "\n";
  ss << "simtime " << simTime << "\n";
  ss << "cycles " << cycles << "\n";
  ss << "master-pc " << master.pc << "\n";
  ss << "master-regs";
  for (auto r : master.regs) ss << " " << r;
  ss << "\n";
  ss << "gr";
  for (auto g : arch.gr) ss << " " << g;
  ss << "\n";
  ss << "stats " << stats.instructions << " " << stats.spawns << " "
     << stats.virtualThreads << " " << stats.nonBlockingStores << " "
     << stats.psRequests << " " << stats.psmRequests << "\n";
  ss << "opcounts";
  for (auto c : stats.opCount) ss << " " << c;
  ss << "\n";
  // Output can contain newlines: length-prefixed hex.
  std::string outHex;
  hexEncode(std::vector<std::uint8_t>(arch.output.begin(), arch.output.end()),
            outHex);
  ss << "output " << outHex << "\n";
  ss << "pages " << arch.pages.size() << "\n";
  for (const auto& [idx, data] : arch.pages) {
    std::string hex;
    hexEncode(data, hex);
    ss << "page " << idx << " " << hex << "\n";
  }
  ss << "end\n";
  return ss.str();
}

Checkpoint Checkpoint::deserialize(const std::string& text) {
  std::istringstream in(text);
  std::string line, word;
  Checkpoint c;
  if (!std::getline(in, line) || line != kMagic)
    throw SimError("checkpoint: bad magic");
  auto expect = [&](const char* key) {
    in >> word;
    if (word != key)
      throw SimError(std::string("checkpoint: expected '") + key +
                     "', got '" + word + "'");
  };
  expect("config");
  in >> c.configName;
  expect("simtime");
  in >> c.simTime;
  expect("cycles");
  in >> c.cycles;
  expect("master-pc");
  in >> c.master.pc;
  expect("master-regs");
  for (auto& r : c.master.regs) in >> r;
  expect("gr");
  for (auto& g : c.arch.gr) in >> g;
  expect("stats");
  in >> c.stats.instructions >> c.stats.spawns >> c.stats.virtualThreads >>
      c.stats.nonBlockingStores >> c.stats.psRequests >> c.stats.psmRequests;
  expect("opcounts");
  for (auto& v : c.stats.opCount) in >> v;
  expect("output");
  in >> word;
  if (word == "pages") {
    // empty output
    std::size_t n;
    in >> n;
    readPages(in, c, n);
    return c;
  }
  {
    auto bytes = hexDecode(word);
    c.arch.output.assign(bytes.begin(), bytes.end());
  }
  expect("pages");
  std::size_t n;
  in >> n;
  readPages(in, c, n);
  return c;
}

}  // namespace xmt
