// JSON serialization of simulation outputs.
//
// One run = one JSON record: the resolved configuration, the simulation
// mode, the RunResult and the full Stats (every counter, including the
// per-cluster activity the power model consumes). The schema is shared
// between `xmtcc --stats-json` (single runs) and the campaign result
// store (thousands of runs), so downstream analysis never needs two
// parsers. Serialization is deterministic: identical Stats produce
// byte-identical text — the property the campaign resume test relies on.
#pragma once

#include <string>

#include "src/common/json.h"
#include "src/sim/simulator.h"
#include "src/sim/stats.h"

namespace xmt {

/// "cycle" or "functional".
const char* simModeName(SimMode mode);
/// Inverse of simModeName; throws ConfigError on anything else.
SimMode simModeByName(const std::string& name);

/// Every counter of Stats, including per-op / per-FU breakdowns (non-zero
/// entries only) and the perCluster activity array.
Json toJson(const Stats& s);

/// RunResult: halt state, instruction/cycle totals and program output.
Json toJson(const RunResult& r);

/// XmtConfig as a typed JSON object (ints/doubles/bools, not strings).
Json toJson(const XmtConfig& cfg);

/// The shared single-run record schema: {config, mode, result, stats}.
Json runRecordJson(const XmtConfig& cfg, SimMode mode, const RunResult& r,
                   const Stats& s);

}  // namespace xmt
