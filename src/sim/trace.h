// Execution traces.
//
// "XMTSim generates execution traces at various detail levels. At the
// functional level, only the results of executed assembly instructions are
// displayed. The more detailed cycle-accurate level reports the
// cycle-accurate components through which the instruction and data packages
// travel. Traces can be limited to specific instructions in the assembly
// input and/or to specific TCUs." (Section III-E)
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "src/desim/scheduler.h"
#include "src/isa/isa.h"

namespace xmt {

struct TraceEvent {
  SimTime time = 0;
  int cluster = 0;  // kMasterCluster for the master
  int tcu = 0;
  std::uint32_t pc = 0;
  const Instruction* in = nullptr;
  std::uint32_t memAddr = 0;
  /// Component stage: "commit", "icn", "cache", "dram" — commit-only at the
  /// functional level; package hops appear at the cycle-accurate level.
  const char* stage = "commit";
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void onEvent(const TraceEvent& ev) = 0;
};

enum class TraceLevel { kOff, kFunctional, kCycle };

/// Text trace with the paper's filters: by TCU and by opcode.
class TextTrace : public TraceSink {
 public:
  explicit TextTrace(TraceLevel level = TraceLevel::kFunctional)
      : level_(level) {}

  /// Restrict to one (cluster, tcu); pass (-2, -1) for "all" (default).
  void filterTcu(int cluster, int tcu) {
    fCluster_ = cluster;
    fTcu_ = tcu;
  }
  /// Restrict to one opcode; Op::kOpCount means "all".
  void filterOp(Op op) { fOp_ = op; }

  void onEvent(const TraceEvent& ev) override;

  std::string str() const { return out_.str(); }
  std::uint64_t eventCount() const { return count_; }

 private:
  TraceLevel level_;
  int fCluster_ = -2;  // -2 = any (kMasterCluster is -1)
  int fTcu_ = -1;
  Op fOp_ = Op::kOpCount;
  std::ostringstream out_;
  std::uint64_t count_ = 0;
};

}  // namespace xmt
