#include "src/sim/funcmodel.h"

#include <cstdio>
#include <cstring>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/memsys/package.h"
#include "src/sim/semantics.h"

namespace xmt {

FuncModel::FuncModel(Program program) : program_(std::move(program)) {
  if (!program_.data.empty())
    memory_.writeBlock(kDataBase, program_.data.data(), program_.data.size());
}

const Instruction& FuncModel::fetch(std::uint32_t pc) const {
  return program_.text[program_.textIndex(pc)];
}

FuncModel::StepClass FuncModel::classify(const Instruction& in) {
  switch (in.op) {
    case Op::kLw:
    case Op::kSw:
    case Op::kSwnb:
    case Op::kLbu:
    case Op::kSb:
    case Op::kPref:
    case Op::kRolw:
    case Op::kFence:
      return StepClass::kMemory;
    case Op::kPs:
      return StepClass::kPs;
    case Op::kPsm:
      return StepClass::kPsm;
    case Op::kSpawn:
      return StepClass::kSpawn;
    case Op::kJoin:
      return StepClass::kJoin;
    case Op::kHalt:
      return StepClass::kHalt;
    default:
      return StepClass::kSimple;
  }
}

void FuncModel::execSimple(Context& ctx, const Instruction& in) {
  const OpInfo& info = opInfo(in.op);
  std::uint32_t next = ctx.pc + 4;
  switch (info.format) {
    case OpFormat::kR3:
      ctx.setReg(in.rd, evalAlu(in.op, ctx.reg(in.rs), ctx.reg(in.rt)));
      break;
    case OpFormat::kR2I:
      ctx.setReg(in.rd, evalAlu(in.op, ctx.reg(in.rs),
                                static_cast<std::uint32_t>(in.imm)));
      break;
    case OpFormat::kRI:
    case OpFormat::kRL:
      ctx.setReg(in.rd, static_cast<std::uint32_t>(in.imm));
      break;
    case OpFormat::kR2:
      if (in.op == Op::kMove)
        ctx.setReg(in.rd, ctx.reg(in.rs));
      else  // cvtif / cvtfi
        ctx.setReg(in.rd, evalAlu(in.op, ctx.reg(in.rs), 0));
      break;
    case OpFormat::kBr2:
      if (evalBranch(in.op, ctx.reg(in.rs), ctx.reg(in.rt)))
        next = static_cast<std::uint32_t>(in.imm);
      break;
    case OpFormat::kJump:
      if (in.op == Op::kJal) ctx.setReg(kRa, ctx.pc + 4);
      next = static_cast<std::uint32_t>(in.imm);
      break;
    case OpFormat::kR1:
      if (in.op == Op::kJalr) ctx.setReg(kRa, ctx.pc + 4);
      next = ctx.reg(in.rs);
      break;
    case OpFormat::kGr:
      XMT_CHECK(in.rt < kNumGlobalRegs);
      if (in.op == Op::kMtgr)
        gr_[in.rt] = ctx.reg(in.rd);
      else if (in.op == Op::kMfgr)
        ctx.setReg(in.rd, gr_[in.rt]);
      else
        throw InternalError("ps must not reach execSimple");
      break;
    case OpFormat::kImm:
      doSyscall(ctx, in.imm);
      break;
    case OpFormat::kNone:
      if (in.op != Op::kNop)
        throw InternalError("non-simple op in execSimple: " +
                            std::string(info.name));
      break;
    default:
      throw InternalError("unexpected format in execSimple");
  }
  ctx.pc = next;
}

std::uint32_t FuncModel::psFetchAdd(int gr, std::uint32_t inc) {
  XMT_CHECK(gr >= 0 && gr < kNumGlobalRegs);
  std::uint32_t old = gr_[static_cast<std::size_t>(gr)];
  gr_[static_cast<std::size_t>(gr)] = old + inc;
  return old;
}

Context FuncModel::makeThreadContext(const Context& master,
                                     std::uint32_t startPc,
                                     std::uint32_t tid) const {
  Context t = master;  // register broadcast at spawn onset
  t.pc = startPc;
  t.setReg(kTid, tid);
  return t;
}

void FuncModel::doSyscall(Context& ctx, std::int32_t code) {
  // Under PDES, TCUs on different shards can print concurrently; the append
  // must not tear. (Print *order* from inside one spawn region follows shard
  // interleaving — see DESIGN.md §10; serial-code prints are unaffected.)
  std::lock_guard<std::mutex> lock(outputMu_);
  char buf[64];
  switch (code) {
    case 1:  // print signed int in a0
      std::snprintf(buf, sizeof buf, "%d",
                    static_cast<std::int32_t>(ctx.reg(kA0)));
      output_ += buf;
      break;
    case 2:  // print char in a0
      output_ += static_cast<char>(ctx.reg(kA0) & 0xff);
      break;
    case 3: {  // print NUL-terminated string at address in a0
      std::uint32_t addr = ctx.reg(kA0);
      for (int guard = 0; guard < (1 << 20); ++guard) {
        char c = static_cast<char>(memory_.readByte(addr++));
        if (c == '\0') break;
        output_ += c;
      }
      break;
    }
    case 4: {  // print float bits in a0
      float f;
      std::uint32_t bits = ctx.reg(kA0);
      std::memcpy(&f, &bits, 4);
      std::snprintf(buf, sizeof buf, "%g", static_cast<double>(f));
      output_ += buf;
      break;
    }
    default:
      throw SimError("unknown syscall code " + std::to_string(code));
  }
}

std::uint32_t FuncModel::symbolWordAddr(const std::string& name,
                                        const char* why) const {
  const Symbol& sym = program_.symbol(name);
  if (sym.isText)
    throw SimError(std::string(why) + ": '" + name + "' is a text symbol");
  return sym.addr;
}

void FuncModel::setGlobal(const std::string& name, std::uint32_t value) {
  memory_.writeWord(symbolWordAddr(name, "setGlobal"), value);
}

void FuncModel::setGlobalArray(const std::string& name,
                               std::span<const std::uint32_t> values) {
  const Symbol& sym = program_.symbol(name);
  if (sym.isText) throw SimError("setGlobalArray: text symbol");
  if (values.size() * 4 > sym.size)
    throw SimError("setGlobalArray: '" + name + "' holds " +
                   std::to_string(sym.size / 4) + " words, got " +
                   std::to_string(values.size()));
  std::uint32_t addr = sym.addr;
  for (std::uint32_t v : values) {
    memory_.writeWord(addr, v);
    addr += 4;
  }
}

std::uint32_t FuncModel::getGlobal(const std::string& name) const {
  return memory_.readWord(symbolWordAddr(name, "getGlobal"));
}

std::vector<std::uint32_t> FuncModel::getGlobalArray(
    const std::string& name) const {
  const Symbol& sym = program_.symbol(name);
  if (sym.isText) throw SimError("getGlobalArray: text symbol");
  std::vector<std::uint32_t> out;
  out.reserve(sym.size / 4);
  for (std::uint32_t off = 0; off + 4 <= sym.size; off += 4)
    out.push_back(memory_.readWord(sym.addr + off));
  return out;
}

bool FuncModel::runContextSerial(Context& ctx, bool isMaster,
                                 std::uint64_t maxInstructions,
                                 std::uint64_t& executed,
                                 CommitObserver* observer, Stats* stats) {
  for (;;) {
    if (executed >= maxInstructions)
      throw SimError("functional mode exceeded instruction limit (" +
                     std::to_string(maxInstructions) + ")");
    const std::uint32_t pcBefore = ctx.pc;
    const Instruction& in = fetch(ctx.pc);
    ++executed;
    if (stats) stats->countInstruction(in);
    std::uint32_t memAddr = 0;
    StepClass cls = classify(in);
    switch (cls) {
      case StepClass::kSimple:
        execSimple(ctx, in);
        break;
      case StepClass::kMemory: {
        memAddr = effectiveAddr(ctx, in);
        bool isWrite = false, touches = true;
        std::uint32_t size = 4;
        switch (in.op) {
          case Op::kLw:
          case Op::kRolw:
            ctx.setReg(in.rt, memory_.readWord(memAddr));
            break;
          case Op::kLbu:
            ctx.setReg(in.rt, memory_.readByte(memAddr));
            size = 1;
            break;
          case Op::kSw:
          case Op::kSwnb:
            memory_.writeWord(memAddr, ctx.reg(in.rt));
            isWrite = true;
            break;
          case Op::kSb:
            memory_.writeByte(memAddr,
                              static_cast<std::uint8_t>(ctx.reg(in.rt)));
            isWrite = true;
            size = 1;
            break;
          case Op::kPref:
          case Op::kFence:
            touches = false;  // timing-only in functional mode
            break;
          default:
            throw InternalError("bad memory op");
        }
        if (observer && touches)
          observer->onMemAccess({isMaster ? 0 : spawnSeq_, ctx.reg(kTid),
                                 !isMaster, isWrite, false, memAddr, size,
                                 in.srcLine});
        ctx.pc += 4;
        break;
      }
      case StepClass::kPs: {
        if (stats) ++stats->psRequests;
        std::uint32_t old = psFetchAdd(in.rt, ctx.reg(in.rd));
        ctx.setReg(in.rd, old);
        ctx.pc += 4;
        break;
      }
      case StepClass::kPsm: {
        if (stats) ++stats->psmRequests;
        memAddr = effectiveAddr(ctx, in);
        std::uint32_t old = memory_.fetchAdd(memAddr, ctx.reg(in.rt));
        ctx.setReg(in.rt, old);
        if (observer)
          observer->onMemAccess({isMaster ? 0 : spawnSeq_, ctx.reg(kTid),
                                 !isMaster, true, true, memAddr, 4,
                                 in.srcLine});
        ctx.pc += 4;
        break;
      }
      case StepClass::kSpawn: {
        if (!isMaster)
          throw SimError("nested spawn reached hardware (the compiler "
                         "serializes nested spawns)");
        if (stats) ++stats->spawns;
        ++spawnSeq_;
        std::uint32_t low = gr_[kGrNextId];
        std::uint32_t high = gr_[kGrHigh];
        auto startPc = static_cast<std::uint32_t>(in.imm);
        if (regionRunner_) {
          executed += regionRunner_->runRegion(
              *this, ctx, startPc, low, high, spawnSeq_,
              maxInstructions - executed, observer, stats);
        } else {
          // Serialize the spawn block: one virtual thread at a time, each
          // starting from the master register snapshot.
          for (std::uint32_t id = low;
               static_cast<std::int32_t>(id) <=
               static_cast<std::int32_t>(high);
               ++id) {
            if (stats) ++stats->virtualThreads;
            Context t = makeThreadContext(ctx, startPc, id);
            if (runContextSerial(t, false, maxInstructions, executed,
                                 observer, stats))
              return true;
          }
        }
        gr_[kGrNextId] = high + 1;
        ctx.pc = static_cast<std::uint32_t>(in.imm2);
        break;
      }
      case StepClass::kJoin:
        if (isMaster)
          throw SimError("join executed in serial (master) mode");
        if (observer)
          observer->onCommit(0, 0, in, pcBefore, 0);
        return false;  // virtual thread complete
      case StepClass::kHalt:
        if (!isMaster) throw SimError("halt executed inside a spawn block");
        if (observer) observer->onCommit(kMasterCluster, 0, in, pcBefore, 0);
        return true;
    }
    if (observer && cls != StepClass::kJoin && cls != StepClass::kHalt)
      observer->onCommit(isMaster ? kMasterCluster : 0, 0, in, pcBefore,
                         memAddr);
  }
}

FunctionalRunResult FuncModel::runFunctional(std::uint64_t maxInstructions,
                                             CommitObserver* observer,
                                             Stats* stats) {
  Context master;
  master.pc = program_.entry;
  master.setReg(kSp, kStackTop);
  std::uint64_t executed = 0;
  bool halted =
      runContextSerial(master, true, maxInstructions, executed, observer,
                       stats);
  FunctionalRunResult r;
  r.halted = halted;
  r.haltCode = static_cast<std::int32_t>(master.reg(kV0));
  r.instructions = executed;
  return r;
}

// --- RegionExec: visible-operation stepping of one spawn region -----------

RegionExec::RegionExec(FuncModel& fm, const Context& master,
                       std::uint32_t startPc, std::uint32_t low,
                       std::uint32_t high, std::uint64_t spawnSeq,
                       std::uint64_t instrBudget, bool eager)
    : fm_(fm), spawnSeq_(spawnSeq), budget_(instrBudget), eager_(eager) {
  for (std::uint32_t id = low; static_cast<std::int32_t>(id) <=
                               static_cast<std::int32_t>(high);
       ++id) {
    Thread t;
    t.ctx = fm_.makeThreadContext(master, startPc, id);
    threads_.push_back(std::move(t));
  }
  liveThreads_ = threads_.size();
  if (eager_)
    for (std::size_t t = 0; t < threads_.size(); ++t)
      advance(t, nullptr, nullptr);
}

void RegionExec::countInstr(Stats* stats, const Instruction& in) {
  if (executed_ >= budget_)
    throw SimError("functional mode exceeded instruction limit (" +
                   std::to_string(budget_) + ")");
  ++executed_;
  if (stats) stats->countInstruction(in);
}

RegionExec::VisibleOp RegionExec::decodeVisible(const Context& ctx,
                                                const Instruction& in) const {
  VisibleOp op;
  op.srcLine = in.srcLine;
  switch (in.op) {
    case Op::kLw:
    case Op::kRolw:
      op.kind = OpKind::kLoad;
      op.addr = fm_.effectiveAddr(ctx, in);
      break;
    case Op::kLbu:
      op.kind = OpKind::kLoad;
      op.addr = fm_.effectiveAddr(ctx, in);
      op.size = 1;
      break;
    case Op::kSw:
    case Op::kSwnb:
      op.kind = OpKind::kStore;
      op.addr = fm_.effectiveAddr(ctx, in);
      op.write = true;
      break;
    case Op::kSb:
      op.kind = OpKind::kStore;
      op.addr = fm_.effectiveAddr(ctx, in);
      op.write = true;
      op.size = 1;
      break;
    case Op::kPs:
      op.kind = OpKind::kPs;
      op.addr = static_cast<std::uint32_t>(in.rt);
      op.write = true;
      op.atomic = true;
      break;
    case Op::kPsm:
      op.kind = OpKind::kPsm;
      op.addr = fm_.effectiveAddr(ctx, in);
      op.write = true;
      op.atomic = true;
      break;
    case Op::kMtgr:
      op.kind = OpKind::kGrWrite;
      op.addr = static_cast<std::uint32_t>(in.rt);
      op.write = true;
      break;
    case Op::kMfgr:
      op.kind = OpKind::kGrRead;
      op.addr = static_cast<std::uint32_t>(in.rt);
      break;
    case Op::kSys:
      op.kind = OpKind::kOutput;
      break;
    case Op::kJoin:
      op.kind = OpKind::kJoin;
      break;
    default:
      throw InternalError("decodeVisible: invisible op");
  }
  return op;
}

void RegionExec::advance(std::size_t t, CommitObserver* observer,
                         Stats* stats) {
  Thread& th = threads_[t];
  for (;;) {
    const Instruction& in = fm_.fetch(th.ctx.pc);
    switch (FuncModel::classify(in)) {
      case FuncModel::StepClass::kSimple:
        if (in.op == Op::kMtgr || in.op == Op::kMfgr || in.op == Op::kSys) {
          th.pending = decodeVisible(th.ctx, in);
          th.advanced = true;
          return;
        }
        break;  // thread-local: execute below
      case FuncModel::StepClass::kMemory:
        if (in.op != Op::kPref && in.op != Op::kFence) {
          th.pending = decodeVisible(th.ctx, in);
          th.advanced = true;
          return;
        }
        break;  // timing-only: execute below
      case FuncModel::StepClass::kPs:
      case FuncModel::StepClass::kPsm:
      case FuncModel::StepClass::kJoin:
        th.pending = decodeVisible(th.ctx, in);
        th.advanced = true;
        return;
      case FuncModel::StepClass::kSpawn:
        throw SimError("nested spawn reached hardware (the compiler "
                       "serializes nested spawns)");
      case FuncModel::StepClass::kHalt:
        throw SimError("halt executed inside a spawn block");
    }
    // Invisible instruction: execute immediately (mirrors the serial path's
    // event shape — countInstruction, then commit).
    const std::uint32_t pcBefore = th.ctx.pc;
    countInstr(stats, in);
    std::uint32_t memAddr = 0;
    if (in.op == Op::kPref || in.op == Op::kFence) {
      memAddr = fm_.effectiveAddr(th.ctx, in);
      th.ctx.pc += 4;
    } else {
      fm_.execSimple(th.ctx, in);
    }
    if (observer) observer->onCommit(0, 0, in, pcBefore, memAddr);
  }
}

RegionExec::VisibleOp RegionExec::execVisible(std::size_t t,
                                              CommitObserver* observer,
                                              Stats* stats) {
  Thread& th = threads_[t];
  const Instruction& in = fm_.fetch(th.ctx.pc);
  const std::uint32_t pcBefore = th.ctx.pc;
  const VisibleOp op = th.pending;
  countInstr(stats, in);
  switch (op.kind) {
    case OpKind::kLoad:
    case OpKind::kStore: {
      switch (in.op) {
        case Op::kLw:
        case Op::kRolw:
          th.ctx.setReg(in.rt, fm_.memory().readWord(op.addr));
          break;
        case Op::kLbu:
          th.ctx.setReg(in.rt, fm_.memory().readByte(op.addr));
          break;
        case Op::kSw:
        case Op::kSwnb:
          fm_.memory().writeWord(op.addr, th.ctx.reg(in.rt));
          break;
        case Op::kSb:
          fm_.memory().writeByte(op.addr,
                                 static_cast<std::uint8_t>(th.ctx.reg(in.rt)));
          break;
        default:
          throw InternalError("bad visible memory op");
      }
      if (observer)
        observer->onMemAccess({spawnSeq_, th.ctx.reg(kTid), true, op.write,
                               false, op.addr, op.size, in.srcLine});
      th.ctx.pc += 4;
      if (observer) observer->onCommit(0, 0, in, pcBefore, op.addr);
      break;
    }
    case OpKind::kPs: {
      if (stats) ++stats->psRequests;
      std::uint32_t old = fm_.psFetchAdd(in.rt, th.ctx.reg(in.rd));
      th.ctx.setReg(in.rd, old);
      th.ctx.pc += 4;
      if (observer) observer->onCommit(0, 0, in, pcBefore, 0);
      break;
    }
    case OpKind::kPsm: {
      if (stats) ++stats->psmRequests;
      std::uint32_t old = fm_.memory().fetchAdd(op.addr, th.ctx.reg(in.rt));
      th.ctx.setReg(in.rt, old);
      if (observer)
        observer->onMemAccess({spawnSeq_, th.ctx.reg(kTid), true, true, true,
                               op.addr, 4, in.srcLine});
      th.ctx.pc += 4;
      if (observer) observer->onCommit(0, 0, in, pcBefore, op.addr);
      break;
    }
    case OpKind::kGrRead:
    case OpKind::kGrWrite:
    case OpKind::kOutput:
      fm_.execSimple(th.ctx, in);
      if (observer) observer->onCommit(0, 0, in, pcBefore, 0);
      break;
    case OpKind::kJoin:
      if (observer) observer->onCommit(0, 0, in, pcBefore, 0);
      th.done = true;
      th.pending = VisibleOp{};
      --liveThreads_;
      return op;
    case OpKind::kNone:
      throw InternalError("step on a finished thread");
  }
  th.advanced = false;
  return op;
}

RegionExec::VisibleOp RegionExec::step(std::size_t t, CommitObserver* observer,
                                       Stats* stats) {
  Thread& th = threads_[t];
  XMT_CHECK(!th.done);
  if (!th.advanced) advance(t, observer, stats);
  VisibleOp op = execVisible(t, observer, stats);
  if (eager_ && !th.done) advance(t, observer, stats);
  return op;
}

// --- RandomScheduleRunner --------------------------------------------------

std::uint64_t RandomScheduleRunner::runRegion(
    FuncModel& fm, const Context& master, std::uint32_t startPc,
    std::uint32_t low, std::uint32_t high, std::uint64_t spawnSeq,
    std::uint64_t instrBudget, CommitObserver* observer, Stats* stats) {
  RegionExec exec(fm, master, startPc, low, high, spawnSeq, instrBudget,
                  /*eager=*/false);
  if (stats) stats->virtualThreads += exec.threadCount();
  Rng rng(seed_ + 0x9e3779b97f4a7c15ull * (spawnSeq + 1));
  std::vector<std::size_t> live;
  live.reserve(exec.threadCount());
  for (std::size_t t = 0; t < exec.threadCount(); ++t) live.push_back(t);
  while (!live.empty()) {
    std::size_t idx = static_cast<std::size_t>(rng.below(live.size()));
    std::size_t t = live[idx];
    exec.step(t, observer, stats);
    if (exec.done(t)) {
      live[idx] = live.back();
      live.pop_back();
    }
  }
  return exec.instructionsExecuted();
}

FuncModel::ArchState FuncModel::saveArchState() const {
  ArchState s;
  s.pages = memory_.snapshot();
  s.gr = gr_;
  s.output = output_;
  return s;
}

void FuncModel::restoreArchState(const ArchState& s) {
  memory_.restore(s.pages);
  gr_ = s.gr;
  output_ = s.output;
}

}  // namespace xmt
