#include "src/sim/plugins.h"

#include <algorithm>
#include <sstream>

namespace xmt {

void HotMemoryFilter::onCommit(int cluster, int tcu, const Instruction& in,
                               std::uint32_t pc, std::uint32_t memAddr) {
  (void)cluster;
  (void)tcu;
  (void)pc;
  if (!in.isMemory() || in.op == Op::kFence || in.op == Op::kPref) return;
  ++counts_[memAddr / granularity_ * granularity_];
}

std::vector<std::pair<std::uint32_t, std::uint64_t>> HotMemoryFilter::top()
    const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> v(counts_.begin(),
                                                         counts_.end());
  std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (v.size() > static_cast<std::size_t>(topN_)) v.resize(topN_);
  return v;
}

std::string HotMemoryFilter::report() const {
  std::ostringstream ss;
  ss << "hottest memory locations (top " << topN_ << "):\n";
  for (const auto& [addr, count] : top())
    ss << "  0x" << std::hex << addr << std::dec << ": " << count
       << " accesses\n";
  return ss.str();
}

void HotLineFilter::onCommit(int cluster, int tcu, const Instruction& in,
                             std::uint32_t pc, std::uint32_t memAddr) {
  (void)cluster;
  (void)tcu;
  (void)pc;
  (void)memAddr;
  ++counts_[in.srcLine];
}

std::vector<std::pair<std::int32_t, std::uint64_t>> HotLineFilter::top()
    const {
  std::vector<std::pair<std::int32_t, std::uint64_t>> v(counts_.begin(),
                                                        counts_.end());
  std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (v.size() > static_cast<std::size_t>(topN_)) v.resize(topN_);
  return v;
}

std::string HotLineFilter::report() const {
  std::ostringstream ss;
  ss << "hottest assembly lines (top " << topN_ << "):\n";
  for (const auto& [line, count] : top())
    ss << "  line " << line << ": " << count << " executions\n";
  return ss.str();
}

void RaceCheckPlugin::onMemAccess(const MemAccess& a) {
  if (!a.parallel) return;
  // An access conflicting on several of its bytes is one race, not size
  // races: remember the first conflicting byte of each flavour and report
  // once after the shadow update loop.
  bool sawWW = false, sawRW = false;
  DynRace ww{}, rw{};
  for (std::uint32_t off = 0; off < a.size; ++off) {
    std::uint32_t byte = a.addr + off;
    Shadow& s = shadow_[byte];
    if (s.spawnSeq != a.spawnSeq) s = Shadow{a.spawnSeq};
    if (a.write) {
      if (s.hasWrite && s.writerTid != a.tid &&
          !(a.atomic && s.writeAtomic)) {
        if (!sawWW) ww = {byte, true, s.writerTid, a.tid, a.srcLine};
        sawWW = true;
      } else if (s.hasRead && !(a.atomic && s.readAtomic) &&
                 (s.multiReader || s.readerTid != a.tid)) {
        if (!sawRW) rw = {byte, false, s.readerTid, a.tid, a.srcLine};
        sawRW = true;
      }
      s.hasWrite = true;
      s.writerTid = a.tid;
      s.writeAtomic = a.atomic;
    }
    if (!a.write || a.atomic) {  // psm also reads
      if (s.hasWrite && s.writerTid != a.tid &&
          !(a.atomic && s.writeAtomic)) {
        if (!sawRW) rw = {byte, false, s.writerTid, a.tid, a.srcLine};
        sawRW = true;
      }
      if (!s.hasRead) {
        s.hasRead = true;
        s.readerTid = a.tid;
        s.readAtomic = a.atomic;
      } else {
        if (s.readerTid != a.tid) s.multiReader = true;
        s.readAtomic = s.readAtomic && a.atomic;
      }
    }
  }
  if (sawWW) races_.push_back(ww);
  if (sawRW && !sawWW) races_.push_back(rw);
}

std::set<std::string> RaceCheckPlugin::racySymbols(const Program& prog) const {
  std::set<std::string> out;
  for (const DynRace& r : races_) {
    const std::string* best = nullptr;
    for (const auto& [name, sym] : prog.symbols) {
      if (sym.isText || sym.size == 0) continue;
      if (r.addr >= sym.addr && r.addr < sym.addr + sym.size) {
        best = &name;
        break;
      }
    }
    if (best) {
      out.insert(*best);
    } else if (r.addr >= kStackTop - (1u << 20)) {
      out.insert("<stack>");
    } else {
      out.insert("<unknown>");
    }
  }
  return out;
}

std::string RaceCheckPlugin::report() const {
  std::ostringstream ss;
  if (races_.empty()) {
    ss << "race check: no races observed\n";
    return ss.str();
  }
  ss << "race check: " << races_.size() << " conflicting accesses\n";
  std::size_t shown = 0;
  for (const DynRace& r : races_) {
    if (shown++ == 10) {
      ss << "  ...\n";
      break;
    }
    ss << "  0x" << std::hex << r.addr << std::dec << ": "
       << (r.writeWrite ? "write/write" : "read/write") << " between threads "
       << r.tidA << " and " << r.tidB << " (asm line " << r.srcLine << ")\n";
  }
  return ss.str();
}

}  // namespace xmt
