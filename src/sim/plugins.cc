#include "src/sim/plugins.h"

#include <algorithm>
#include <sstream>

namespace xmt {

void HotMemoryFilter::onCommit(int cluster, int tcu, const Instruction& in,
                               std::uint32_t pc, std::uint32_t memAddr) {
  (void)cluster;
  (void)tcu;
  (void)pc;
  if (!in.isMemory() || in.op == Op::kFence || in.op == Op::kPref) return;
  ++counts_[memAddr / granularity_ * granularity_];
}

std::vector<std::pair<std::uint32_t, std::uint64_t>> HotMemoryFilter::top()
    const {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> v(counts_.begin(),
                                                         counts_.end());
  std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (v.size() > static_cast<std::size_t>(topN_)) v.resize(topN_);
  return v;
}

std::string HotMemoryFilter::report() const {
  std::ostringstream ss;
  ss << "hottest memory locations (top " << topN_ << "):\n";
  for (const auto& [addr, count] : top())
    ss << "  0x" << std::hex << addr << std::dec << ": " << count
       << " accesses\n";
  return ss.str();
}

void HotLineFilter::onCommit(int cluster, int tcu, const Instruction& in,
                             std::uint32_t pc, std::uint32_t memAddr) {
  (void)cluster;
  (void)tcu;
  (void)pc;
  (void)memAddr;
  ++counts_[in.srcLine];
}

std::vector<std::pair<std::int32_t, std::uint64_t>> HotLineFilter::top()
    const {
  std::vector<std::pair<std::int32_t, std::uint64_t>> v(counts_.begin(),
                                                        counts_.end());
  std::stable_sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (v.size() > static_cast<std::size_t>(topN_)) v.resize(topN_);
  return v;
}

std::string HotLineFilter::report() const {
  std::ostringstream ss;
  ss << "hottest assembly lines (top " << topN_ << "):\n";
  for (const auto& [line, count] : top())
    ss << "  line " << line << ": " << count << " executions\n";
  return ss.str();
}

}  // namespace xmt
