// Simulation checkpoints.
//
// "XMTSim supports simulation checkpoints, i.e., the state of the simulation
// can be saved at a point that is given by the user ahead of time ...
// Simulation can be resumed at a later time." (Section III-E)
//
// Checkpoints capture architectural state (memory pages, global registers,
// master context, printf output) plus accumulated statistics and the
// simulated clock. They are taken at quiescent points — master executing
// serial code with nothing in flight — so no microarchitectural state needs
// saving; caches restart cold on resume (documented approximation).
//
// The serialized form is a line-oriented text format, versioned, suitable
// for files and for the paper's use case of load-balancing long simulation
// batches across machines.
#pragma once

#include <string>

#include "src/desim/scheduler.h"
#include "src/sim/funcmodel.h"
#include "src/sim/stats.h"

namespace xmt {

struct Checkpoint {
  FuncModel::ArchState arch;
  Context master;
  Stats stats;          // aggregate counters at save time
  SimTime simTime = 0;  // picoseconds at save time
  std::uint64_t cycles = 0;
  std::string configName;  // provenance; resume validates nothing heavier

  std::string serialize() const;
  static Checkpoint deserialize(const std::string& text);
};

}  // namespace xmt
