// The functional model: architectural state plus operational definitions.
//
// "The functional model contains the operational definition of the
// instructions, as well as the state of the registers and the memory."
// (Section III-A). The cycle-accurate model fetches instructions from here
// and returns expired instructions for execution; the fast functional mode
// (runFunctional) replaces the cycle-accurate model with a mechanism that
// serializes the parallel sections — orders of magnitude faster, but unable
// to reveal concurrency bugs, exactly as the paper describes.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/assembler/program.h"
#include "src/sim/memory.h"
#include "src/sim/stats.h"

namespace xmt {

/// One hardware execution context (the Master TCU or a parallel TCU).
struct Context {
  std::array<std::uint32_t, kNumRegs> regs{};
  std::uint32_t pc = 0;

  std::uint32_t reg(int r) const { return r == 0 ? 0u : regs[static_cast<std::size_t>(r)]; }
  void setReg(int r, std::uint32_t v) {
    if (r != 0) regs[static_cast<std::size_t>(r)] = v;
  }
};

/// Result of a fast functional run.
struct FunctionalRunResult {
  bool halted = false;
  std::int32_t haltCode = 0;
  std::uint64_t instructions = 0;
};

class FuncModel {
 public:
  /// Classification used by both execution modes to route instructions.
  enum class StepClass {
    kSimple,  // ALU/shift/MDU/FPU/branch/li/la/move/mtgr/mfgr/sys/nop
    kMemory,  // lw/sw/swnb/lbu/sb/pref/rolw/fence
    kPs,      // prefix-sum on a global register
    kPsm,     // prefix-sum to memory
    kSpawn,
    kJoin,
    kHalt,
  };

  explicit FuncModel(Program program);

  Program& program() { return program_; }
  const Program& program() const { return program_; }
  SparseMemory& memory() { return memory_; }
  const SparseMemory& memory() const { return memory_; }
  std::array<std::uint32_t, kNumGlobalRegs>& globalRegs() { return gr_; }

  const Instruction& fetch(std::uint32_t pc) const;
  static StepClass classify(const Instruction& in);

  /// Executes one kSimple instruction on `ctx`, including pc update.
  void execSimple(Context& ctx, const Instruction& in);

  /// Effective address of a memory-class instruction.
  std::uint32_t effectiveAddr(const Context& ctx, const Instruction& in) const {
    return ctx.reg(in.rs) + static_cast<std::uint32_t>(in.imm);
  }

  /// Atomic fetch-and-add on global register `gr` (the ps primitive).
  std::uint32_t psFetchAdd(int gr, std::uint32_t inc);

  /// Fresh parallel context inheriting the master's registers (the
  /// register-broadcast at spawn onset) with `tid` as its virtual thread ID.
  Context makeThreadContext(const Context& master, std::uint32_t startPc,
                            std::uint32_t tid) const;

  // --- Host data interface (global variables are the only program input) ---
  void setGlobal(const std::string& name, std::uint32_t value);
  void setGlobalArray(const std::string& name,
                      std::span<const std::uint32_t> values);
  std::uint32_t getGlobal(const std::string& name) const;
  std::vector<std::uint32_t> getGlobalArray(const std::string& name) const;

  /// Printf output accumulated by `sys` instructions.
  const std::string& output() const { return output_; }
  std::string& mutableOutput() { return output_; }

  /// Handles a `sys` instruction for `ctx` (print traps).
  void doSyscall(Context& ctx, std::int32_t code);

  /// Fast functional-mode execution from the program entry point.
  /// Serializes spawn blocks. `observer` may be null. Throws SimError if
  /// `maxInstructions` is exceeded (runaway-program guard).
  FunctionalRunResult runFunctional(std::uint64_t maxInstructions,
                                    CommitObserver* observer,
                                    Stats* stats);

  /// Architectural checkpoint support: memory + global registers + output.
  struct ArchState {
    std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> pages;
    std::array<std::uint32_t, kNumGlobalRegs> gr;
    std::string output;
  };
  ArchState saveArchState() const;
  void restoreArchState(const ArchState& s);

 private:
  // Runs `ctx` until join/halt, executing memory ops immediately.
  // Returns true when a halt was executed.
  bool runContextSerial(Context& ctx, bool isMaster,
                        std::uint64_t maxInstructions, std::uint64_t& executed,
                        CommitObserver* observer, Stats* stats);

  std::uint32_t symbolWordAddr(const std::string& name, const char* why) const;

  Program program_;
  SparseMemory memory_;
  std::array<std::uint32_t, kNumGlobalRegs> gr_{};
  std::string output_;
  std::mutex outputMu_;  // doSyscall appends can race under PDES
  std::uint64_t spawnSeq_ = 0;  // spawn regions executed (labels MemAccess)
};

}  // namespace xmt
