// The functional model: architectural state plus operational definitions.
//
// "The functional model contains the operational definition of the
// instructions, as well as the state of the registers and the memory."
// (Section III-A). The cycle-accurate model fetches instructions from here
// and returns expired instructions for execution; the fast functional mode
// (runFunctional) replaces the cycle-accurate model with a mechanism that
// serializes the parallel sections — orders of magnitude faster, but unable
// to reveal concurrency bugs, exactly as the paper describes.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/assembler/program.h"
#include "src/sim/memory.h"
#include "src/sim/stats.h"

namespace xmt {

/// One hardware execution context (the Master TCU or a parallel TCU).
struct Context {
  std::array<std::uint32_t, kNumRegs> regs{};
  std::uint32_t pc = 0;

  std::uint32_t reg(int r) const { return r == 0 ? 0u : regs[static_cast<std::size_t>(r)]; }
  void setReg(int r, std::uint32_t v) {
    if (r != 0) regs[static_cast<std::size_t>(r)] = v;
  }
};

/// Result of a fast functional run.
struct FunctionalRunResult {
  bool halted = false;
  std::int32_t haltCode = 0;
  std::uint64_t instructions = 0;
};

class FuncModel;

/// Pluggable executor for one spawn region in functional mode. The default
/// (no runner installed) is the classic serialization: thread low..high run
/// to join one after the other. A runner replaces that inner loop — the
/// model checker enumerates interleavings here, the seeded perturbation
/// runner shuffles them — but must leave memory, global registers and the
/// printf transcript in the state of a *completed* region and return the
/// number of instructions it charged against the functional budget.
class RegionRunner {
 public:
  virtual ~RegionRunner() = default;
  /// `master` is the spawning context (registers are broadcast from it);
  /// threads are tids low..high (inclusive; high < low means zero threads)
  /// starting at `startPc`. Throw SimError to abort the run.
  virtual std::uint64_t runRegion(FuncModel& fm, const Context& master,
                                  std::uint32_t startPc, std::uint32_t low,
                                  std::uint32_t high, std::uint64_t spawnSeq,
                                  std::uint64_t instrBudget,
                                  CommitObserver* observer, Stats* stats) = 0;
};

class FuncModel {
 public:
  /// Classification used by both execution modes to route instructions.
  enum class StepClass {
    kSimple,  // ALU/shift/MDU/FPU/branch/li/la/move/mtgr/mfgr/sys/nop
    kMemory,  // lw/sw/swnb/lbu/sb/pref/rolw/fence
    kPs,      // prefix-sum on a global register
    kPsm,     // prefix-sum to memory
    kSpawn,
    kJoin,
    kHalt,
  };

  explicit FuncModel(Program program);

  Program& program() { return program_; }
  const Program& program() const { return program_; }
  SparseMemory& memory() { return memory_; }
  const SparseMemory& memory() const { return memory_; }
  std::array<std::uint32_t, kNumGlobalRegs>& globalRegs() { return gr_; }

  const Instruction& fetch(std::uint32_t pc) const;
  static StepClass classify(const Instruction& in);

  /// Executes one kSimple instruction on `ctx`, including pc update.
  void execSimple(Context& ctx, const Instruction& in);

  /// Effective address of a memory-class instruction.
  std::uint32_t effectiveAddr(const Context& ctx, const Instruction& in) const {
    return ctx.reg(in.rs) + static_cast<std::uint32_t>(in.imm);
  }

  /// Atomic fetch-and-add on global register `gr` (the ps primitive).
  std::uint32_t psFetchAdd(int gr, std::uint32_t inc);

  /// Fresh parallel context inheriting the master's registers (the
  /// register-broadcast at spawn onset) with `tid` as its virtual thread ID.
  Context makeThreadContext(const Context& master, std::uint32_t startPc,
                            std::uint32_t tid) const;

  // --- Host data interface (global variables are the only program input) ---
  void setGlobal(const std::string& name, std::uint32_t value);
  void setGlobalArray(const std::string& name,
                      std::span<const std::uint32_t> values);
  std::uint32_t getGlobal(const std::string& name) const;
  std::vector<std::uint32_t> getGlobalArray(const std::string& name) const;

  /// Printf output accumulated by `sys` instructions.
  const std::string& output() const { return output_; }
  std::string& mutableOutput() { return output_; }

  /// Handles a `sys` instruction for `ctx` (print traps).
  void doSyscall(Context& ctx, std::int32_t code);

  /// Fast functional-mode execution from the program entry point.
  /// Serializes spawn blocks. `observer` may be null. Throws SimError if
  /// `maxInstructions` is exceeded (runaway-program guard).
  FunctionalRunResult runFunctional(std::uint64_t maxInstructions,
                                    CommitObserver* observer,
                                    Stats* stats);

  /// Installs a spawn-region executor (non-owning; null restores the
  /// default serialization). Must be set before runFunctional.
  void setRegionRunner(RegionRunner* runner) { regionRunner_ = runner; }

  /// Architectural checkpoint support: memory + global registers + output.
  struct ArchState {
    std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> pages;
    std::array<std::uint32_t, kNumGlobalRegs> gr;
    std::string output;
  };
  ArchState saveArchState() const;
  void restoreArchState(const ArchState& s);

 private:
  // Runs `ctx` until join/halt, executing memory ops immediately.
  // Returns true when a halt was executed.
  bool runContextSerial(Context& ctx, bool isMaster,
                        std::uint64_t maxInstructions, std::uint64_t& executed,
                        CommitObserver* observer, Stats* stats);

  std::uint32_t symbolWordAddr(const std::string& name, const char* why) const;

  Program program_;
  SparseMemory memory_;
  std::array<std::uint32_t, kNumGlobalRegs> gr_{};
  std::string output_;
  std::mutex outputMu_;  // doSyscall appends can race under PDES
  std::uint64_t spawnSeq_ = 0;  // spawn regions executed (labels MemAccess)
  RegionRunner* regionRunner_ = nullptr;
};

/// Controllable execution of one spawn region at visible-operation
/// granularity — the substrate of the model checker and the seeded schedule
/// perturbation runner. A *visible* operation is one that touches state
/// shared between virtual threads: memory loads/stores, psm, ps, global
/// register moves (mtgr/mfgr), printf traps, and the terminating join.
/// Everything else (ALU, branches, pref/fence) is thread-local and commutes
/// with every other thread's operations, so it is executed eagerly in
/// whatever order the caller steps the threads — final state depends only
/// on the visible-op interleaving.
///
/// Two modes:
///   * eager  — every live thread is pre-advanced to its next visible op,
///     which is decoded (address/kind resolved, not executed) into
///     pending(). This is the exploration mode: the scheduler can inspect
///     all pending ops before committing one. Events are not emitted.
///   * lazy   — threads advance only when stepped; step(t) runs t's
///     invisible prefix and then its visible op, emitting observer/stats
///     events in true execution order. Replaying the thread-id sequence
///     [0,0,...,1,1,...] reproduces the classic serial execution
///     event-for-event.
class RegionExec {
 public:
  enum class OpKind : std::uint8_t {
    kNone,     // thread finished (joined)
    kLoad,     // lw/lbu/rolw
    kStore,    // sw/swnb/sb
    kPsm,      // atomic fetch-add to memory
    kPs,       // atomic fetch-add on a global register
    kGrRead,   // mfgr
    kGrWrite,  // mtgr
    kOutput,   // sys (printf trap)
    kJoin,
  };
  struct VisibleOp {
    OpKind kind = OpKind::kNone;
    std::uint32_t addr = 0;  // byte address (memory) or global register #
    std::uint32_t size = 4;  // bytes touched (memory ops)
    std::int32_t srcLine = 0;
    bool write = false;      // store / psm / ps / mtgr
    bool atomic = false;     // ps / psm
  };

  RegionExec(FuncModel& fm, const Context& master, std::uint32_t startPc,
             std::uint32_t low, std::uint32_t high, std::uint64_t spawnSeq,
             std::uint64_t instrBudget, bool eager);

  std::size_t threadCount() const { return threads_.size(); }
  std::uint32_t tidOf(std::size_t t) const {
    return threads_[t].ctx.reg(kTid);
  }
  bool done(std::size_t t) const { return threads_[t].done; }
  bool allDone() const { return liveThreads_ == 0; }
  /// Eager mode: the decoded next visible op of thread t (kind == kNone
  /// once the thread has joined).
  const VisibleOp& pending(std::size_t t) const { return threads_[t].pending; }
  std::uint64_t instructionsExecuted() const { return executed_; }

  /// Executes thread t's next visible operation (and, in lazy mode, the
  /// invisible instructions leading up to it) and returns it. Throws
  /// SimError on budget exhaustion, nested spawn, or in-region halt.
  VisibleOp step(std::size_t t, CommitObserver* observer, Stats* stats);

 private:
  struct Thread {
    Context ctx;
    bool done = false;
    bool advanced = false;  // invisible prefix executed, pending decoded
    VisibleOp pending;
  };

  void advance(std::size_t t, CommitObserver* observer, Stats* stats);
  VisibleOp decodeVisible(const Context& ctx, const Instruction& in) const;
  VisibleOp execVisible(std::size_t t, CommitObserver* observer, Stats* stats);
  void countInstr(Stats* stats, const Instruction& in);

  FuncModel& fm_;
  std::uint64_t spawnSeq_;
  std::uint64_t budget_;
  bool eager_;
  std::vector<Thread> threads_;
  std::size_t liveThreads_ = 0;
  std::uint64_t executed_ = 0;
};

/// RegionRunner executing one seeded pseudo-random interleaving per region —
/// the schedule-perturbation fallback behind `--race-check-seed`: regions
/// too large for exhaustive exploration still get multi-schedule coverage
/// by re-running under different seeds. Deterministic for a given seed.
class RandomScheduleRunner : public RegionRunner {
 public:
  explicit RandomScheduleRunner(std::uint64_t seed) : seed_(seed) {}
  std::uint64_t runRegion(FuncModel& fm, const Context& master,
                          std::uint32_t startPc, std::uint32_t low,
                          std::uint32_t high, std::uint64_t spawnSeq,
                          std::uint64_t instrBudget, CommitObserver* observer,
                          Stats* stats) override;

 private:
  std::uint64_t seed_;
};

}  // namespace xmt
