#include "src/sim/semantics.h"

#include <cstring>
#include <limits>

#include "src/common/error.h"

namespace xmt {

namespace {

float asFloat(std::uint32_t b) {
  float f;
  std::memcpy(&f, &b, 4);
  return f;
}

std::uint32_t asBits(float f) {
  std::uint32_t b;
  std::memcpy(&b, &f, 4);
  return b;
}

}  // namespace

bool usesImmediate(Op op) {
  switch (op) {
    case Op::kAddi:
    case Op::kAndi:
    case Op::kOri:
    case Op::kXori:
    case Op::kSlti:
    case Op::kSll:
    case Op::kSrl:
    case Op::kSra:
      return true;
    default:
      return false;
  }
}

std::uint32_t evalAlu(Op op, std::uint32_t a, std::uint32_t b) {
  auto sa = static_cast<std::int32_t>(a);
  auto sb = static_cast<std::int32_t>(b);
  switch (op) {
    case Op::kAdd:
    case Op::kAddi:
      return a + b;
    case Op::kSub:
      return a - b;
    case Op::kAnd:
    case Op::kAndi:
      return a & b;
    case Op::kOr:
    case Op::kOri:
      return a | b;
    case Op::kXor:
    case Op::kXori:
      return a ^ b;
    case Op::kNor:
      return ~(a | b);
    case Op::kSlt:
    case Op::kSlti:
      return sa < sb ? 1u : 0u;
    case Op::kSltu:
      return a < b ? 1u : 0u;
    case Op::kSll:
    case Op::kSllv:
      return a << (b & 31);
    case Op::kSrl:
    case Op::kSrlv:
      return a >> (b & 31);
    case Op::kSra:
    case Op::kSrav:
      return static_cast<std::uint32_t>(sa >> (b & 31));
    case Op::kMul:
      return static_cast<std::uint32_t>(
          static_cast<std::int64_t>(sa) * static_cast<std::int64_t>(sb));
    case Op::kDiv:
      if (sb == 0) throw SimError("division by zero");
      if (sa == std::numeric_limits<std::int32_t>::min() && sb == -1)
        return a;  // wraps, matching hardware two's-complement behaviour
      return static_cast<std::uint32_t>(sa / sb);
    case Op::kRem:
      if (sb == 0) throw SimError("remainder by zero");
      if (sa == std::numeric_limits<std::int32_t>::min() && sb == -1)
        return 0;
      return static_cast<std::uint32_t>(sa % sb);
    case Op::kFadd:
      return asBits(asFloat(a) + asFloat(b));
    case Op::kFsub:
      return asBits(asFloat(a) - asFloat(b));
    case Op::kFmul:
      return asBits(asFloat(a) * asFloat(b));
    case Op::kFdiv:
      return asBits(asFloat(a) / asFloat(b));  // IEEE: div-by-zero -> inf
    case Op::kFeq:
      return asFloat(a) == asFloat(b) ? 1u : 0u;
    case Op::kFlt:
      return asFloat(a) < asFloat(b) ? 1u : 0u;
    case Op::kFle:
      return asFloat(a) <= asFloat(b) ? 1u : 0u;
    case Op::kCvtif:
      return asBits(static_cast<float>(sa));
    case Op::kCvtfi:
      return static_cast<std::uint32_t>(
          static_cast<std::int32_t>(asFloat(a)));
    default:
      throw InternalError("evalAlu: not an ALU-class op");
  }
}

bool evalBranch(Op op, std::uint32_t a, std::uint32_t b) {
  auto sa = static_cast<std::int32_t>(a);
  auto sb = static_cast<std::int32_t>(b);
  switch (op) {
    case Op::kBeq: return a == b;
    case Op::kBne: return a != b;
    case Op::kBlt: return sa < sb;
    case Op::kBle: return sa <= sb;
    case Op::kBgt: return sa > sb;
    case Op::kBge: return sa >= sb;
    default:
      throw InternalError("evalBranch: not a conditional branch");
  }
}

}  // namespace xmt
