#include "src/sim/statsjson.h"

#include <charconv>

#include "src/common/error.h"

namespace xmt {

const char* simModeName(SimMode mode) {
  return mode == SimMode::kFunctional ? "functional" : "cycle";
}

SimMode simModeByName(const std::string& name) {
  if (name == "cycle" || name == "cycle-accurate")
    return SimMode::kCycleAccurate;
  if (name == "functional") return SimMode::kFunctional;
  throw ConfigError("mode", "unknown simulation mode '" + name +
                                "' (use 'cycle' or 'functional')");
}

Json toJson(const Stats& s) {
  Json j = Json::object();
  j.set("instructions", Json::number(s.instructions));
  j.set("spawns", Json::number(s.spawns));
  j.set("virtual_threads", Json::number(s.virtualThreads));
  j.set("cycles", Json::number(s.cycles));
  j.set("sim_time_ps", Json::number(static_cast<std::uint64_t>(s.simTime)));
  j.set("cache_hits", Json::number(s.cacheHits));
  j.set("cache_misses", Json::number(s.cacheMisses));
  j.set("dram_requests", Json::number(s.dramRequests));
  j.set("master_cache_hits", Json::number(s.masterCacheHits));
  j.set("master_cache_misses", Json::number(s.masterCacheMisses));
  j.set("ro_cache_hits", Json::number(s.roCacheHits));
  j.set("ro_cache_misses", Json::number(s.roCacheMisses));
  j.set("prefetch_buffer_hits", Json::number(s.prefetchBufferHits));
  j.set("icn_packets", Json::number(s.icnPackets));
  j.set("mem_wait_cycles", Json::number(s.memWaitCycles));
  j.set("ps_requests", Json::number(s.psRequests));
  j.set("psm_requests", Json::number(s.psmRequests));
  j.set("non_blocking_stores", Json::number(s.nonBlockingStores));

  static const char* kFuNames[] = {"alu", "shift", "branch", "mdu",
                                   "fpu", "mem",   "ps",     "control"};
  Json fu = Json::object();
  for (std::size_t i = 0; i < s.fuCount.size(); ++i)
    if (s.fuCount[i] != 0) fu.set(kFuNames[i], Json::number(s.fuCount[i]));
  j.set("fu_count", std::move(fu));

  Json ops = Json::object();
  for (int i = 0; i < kNumOps; ++i) {
    std::size_t idx = static_cast<std::size_t>(i);
    if (s.opCount[idx] != 0)
      ops.set(std::string(opInfo(static_cast<Op>(i)).name),
              Json::number(s.opCount[idx]));
  }
  j.set("op_count", std::move(ops));

  Json clusters = Json::array();
  for (const auto& c : s.perCluster) {
    Json cj = Json::object();
    cj.set("instructions", Json::number(c.instructions));
    cj.set("alu_ops", Json::number(c.aluOps));
    cj.set("mdu_ops", Json::number(c.mduOps));
    cj.set("fpu_ops", Json::number(c.fpuOps));
    cj.set("mem_ops", Json::number(c.memOps));
    cj.set("active_cycles", Json::number(c.activeCycles));
    clusters.push(std::move(cj));
  }
  j.set("per_cluster", std::move(clusters));
  return j;
}

Json toJson(const RunResult& r) {
  Json j = Json::object();
  j.set("halted", Json::boolean(r.halted));
  j.set("halt_code", Json::number(static_cast<std::int64_t>(r.haltCode)));
  j.set("instructions", Json::number(r.instructions));
  j.set("cycles", Json::number(r.cycles));
  j.set("sim_time_ps", Json::number(static_cast<std::uint64_t>(r.simTimePs)));
  j.set("output", Json::str(r.output));
  return j;
}

Json toJson(const XmtConfig& cfg) {
  // Reuse the canonical ConfigMap key set; re-type each value so the JSON
  // carries numbers and booleans rather than strings.
  ConfigMap m = cfg.toConfigMap();
  Json j = Json::object();
  for (const auto& key : m.keys()) {
    std::string v = m.getString(key, "");
    if (v == "true" || v == "false") {
      j.set(key, Json::boolean(v == "true"));
      continue;
    }
    std::int64_t iv = 0;
    auto [ip, iec] = std::from_chars(v.data(), v.data() + v.size(), iv);
    if (iec == std::errc() && ip == v.data() + v.size()) {
      j.set(key, Json::number(iv));
      continue;
    }
    double dv = 0;
    auto [dp, dec] = std::from_chars(v.data(), v.data() + v.size(), dv);
    if (dec == std::errc() && dp == v.data() + v.size()) {
      j.set(key, Json::real(dv));
      continue;
    }
    j.set(key, Json::str(v));
  }
  return j;
}

Json runRecordJson(const XmtConfig& cfg, SimMode mode, const RunResult& r,
                   const Stats& s) {
  Json j = Json::object();
  j.set("config", toJson(cfg));
  j.set("mode", Json::str(simModeName(mode)));
  j.set("result", toJson(r));
  j.set("stats", toJson(s));
  return j;
}

}  // namespace xmt
