// XMT machine configuration.
//
// "XMTSim is highly configurable and provides control over many parameters
// including number of TCUs, the cache size, DRAM bandwidth and relative
// clock frequencies of components." The two built-in configurations mirror
// the paper: the 64-TCU FPGA prototype (Paraleap, also the simulator's
// verification target) and the envisioned 1024-TCU XMT chip.
//
// All latencies are expressed in cycles of the owning component's clock
// domain; frequencies are per-domain and can be changed at runtime through
// the activity-plug-in interface (DVFS).
#pragma once

#include <cstdint>
#include <string>

#include "src/common/config.h"

namespace xmt {

struct XmtConfig {
  std::string name = "custom";

  // Topology.
  int clusters = 8;
  int tcusPerCluster = 8;
  int cacheModules = 8;
  int dramChannels = 2;

  // Clock domains (GHz). Clusters share coreGhz until a DVFS plug-in
  // retunes them individually.
  double coreGhz = 1.0;
  double icnGhz = 1.0;
  double cacheGhz = 1.0;
  double dramGhz = 0.5;

  // Interconnection network. 0 = derive from topology:
  // 2 + ceil(log2(clusters)) + ceil(log2(cacheModules)) pipeline stages,
  // the depth of a mesh-of-trees traversal.
  int icnSendLatency = 0;
  int icnReturnLatency = 0;
  int clusterInjectRate = 2;   // packages a cluster may inject per core cycle
  int clusterReturnRate = 2;   // responses a cluster may retire per ICN cycle
  bool addressHashing = true;  // LS-unit hashing to avoid module hotspots

  // Asynchronous interconnect (Section III-F: the GALS NoC study). When
  // enabled, packages traverse the network in continuous time — mean
  // latency matching the synchronous pipeline depth, with deterministic
  // per-package jitter — instead of being clocked and rate-limited at the
  // return ports. Only a discrete-EVENT engine can model this; a
  // discrete-time simulator cannot.
  bool icnAsync = false;
  double icnAsyncJitter = 0.25;  // +- fraction of the mean latency

  // Shared L1 cache modules.
  int cacheHitLatency = 4;     // cache cycles
  int cacheLineBytes = 32;
  int cacheModuleKB = 32;
  int cacheAssoc = 4;

  // DRAM ("modeled as simple latency" + per-channel bandwidth).
  int dramLatency = 60;          // dram cycles until fill
  int dramServiceInterval = 4;   // dram cycles between requests per channel

  // Cluster resources.
  int mduPerCluster = 1;
  int mduLatency = 8;
  int fpuPerCluster = 1;
  int fpuLatency = 6;
  int prefetchEntries = 4;
  std::string prefetchPolicy = "fifo";  // "fifo" or "lru" (cf. paper ref [8])
  int roCacheLines = 64;                // read-only cache, direct-mapped
  int masterCacheKB = 8;

  // Prefix-sum unit and spawn hardware.
  int psLatency = 2;            // one-way TCU -> PS unit, core cycles
  int psReturnLatency = 2;      // PS unit -> TCU
  int spawnBroadcastBase = 12;  // fixed broadcast setup cost, core cycles
  int broadcastInstrPerCycle = 4;  // broadcast bus width

  // Run guards.
  std::uint64_t maxInstructions = 500'000'000;

  int totalTcus() const { return clusters * tcusPerCluster; }
  int effectiveIcnSendLatency() const;
  int effectiveIcnReturnLatency() const;

  /// Throws ConfigError if any parameter is out of range.
  void validate() const;

  /// The 64-TCU FPGA prototype (Paraleap-like).
  static XmtConfig fpga64();
  /// The envisioned 1024-TCU XMT chip.
  static XmtConfig chip1024();
  /// Lookup by name: "fpga64", "chip1024", or "custom" (defaults).
  static XmtConfig byName(const std::string& name);

  /// Builds a configuration from a ConfigMap: optional "base" key selects a
  /// preset; any other key overrides the matching field.
  static XmtConfig fromConfigMap(const ConfigMap& map);
  ConfigMap toConfigMap() const;
};

}  // namespace xmt
