#include "src/sim/simulator.h"

#include "src/common/error.h"

namespace xmt {

Simulator::Simulator(Program program, XmtConfig config, SimMode mode)
    : programCopy_(program), config_(std::move(config)), mode_(mode) {
  config_.validate();
  func_ = std::make_unique<FuncModel>(std::move(program));
}

Simulator::~Simulator() = default;

void Simulator::applyMemoryMap(const MemoryMap& map) {
  // Memory maps edit the data image through the program loader path so the
  // same bounds checks apply; then refresh the live memory.
  map.apply(func_->program());
  const Program& p = func_->program();
  if (!p.data.empty())
    func_->memory().writeBlock(kDataBase, p.data.data(), p.data.size());
}

void Simulator::setGlobal(const std::string& name, std::int32_t value) {
  func_->setGlobal(name, static_cast<std::uint32_t>(value));
}

void Simulator::setGlobalArray(const std::string& name,
                               std::span<const std::int32_t> values) {
  std::vector<std::uint32_t> raw(values.begin(), values.end());
  func_->setGlobalArray(name, raw);
}

std::int32_t Simulator::getGlobal(const std::string& name) const {
  return static_cast<std::int32_t>(func_->getGlobal(name));
}

std::vector<std::int32_t> Simulator::getGlobalArray(
    const std::string& name) const {
  auto raw = func_->getGlobalArray(name);
  return std::vector<std::int32_t>(raw.begin(), raw.end());
}

FilterPlugin* Simulator::addFilterPlugin(
    std::unique_ptr<FilterPlugin> plugin) {
  filters_.push_back(std::move(plugin));
  return filters_.back().get();
}

std::string Simulator::filterReports() const {
  std::string out;
  for (const auto& f : filters_) out += f->report();
  return out;
}

ActivityPlugin* Simulator::addActivityPlugin(
    std::unique_ptr<ActivityPlugin> plugin, std::uint64_t periodCycles) {
  ActivityPlugin* raw = plugin.get();
  if (cycle_) {
    cycle_->addActivityPlugin(raw, periodCycles);
    activities_.push_back({std::move(plugin), periodCycles});
  } else {
    activities_.push_back({std::move(plugin), periodCycles});
  }
  return raw;
}

void Simulator::setTraceSink(TraceSink* sink) {
  trace_ = sink;
  if (cycle_) cycle_->setTraceSink(sink);
}

void Simulator::setPdesShards(int shards) {
  if (cycle_)
    throw SimError("setPdesShards must be called before the first run");
  if (mode_ != SimMode::kCycleAccurate && shards > 1)
    throw SimError("PDES applies to cycle-accurate mode only");
  pdesShards_ = shards < 1 ? 1 : shards;
}

int Simulator::pdesShards() const {
  return cycle_ ? cycle_->pdesShards() : 1;
}

void Simulator::onCommit(int cluster, int tcu, const Instruction& in,
                         std::uint32_t pc, std::uint32_t memAddr) {
  for (const auto& f : filters_) f->onCommit(cluster, tcu, in, pc, memAddr);
  if (mode_ == SimMode::kFunctional && trace_) {
    // Functional mode has no clock; use the instruction count as "time".
    TraceEvent ev;
    ev.time = static_cast<SimTime>(stats_.instructions);
    ev.cluster = cluster;
    ev.tcu = tcu;
    ev.pc = pc;
    ev.in = &in;
    ev.memAddr = memAddr;
    ev.stage = "commit";
    trace_->onEvent(ev);
  }
}

void Simulator::onMemAccess(const MemAccess& access) {
  for (const auto& f : filters_) f->onMemAccess(access);
}

void Simulator::ensureCycleModel() {
  if (cycle_) return;
  // PDES gates: observer/trace callbacks assume a single deterministic
  // interleaving, so any attached sink pins the model to the sequential
  // engine. Stats are bit-identical either way; only wall-clock differs.
  int shards = pdesShards_;
  if (trace_ != nullptr || !filters_.empty() || !activities_.empty())
    shards = 1;
  cycle_ = std::make_unique<CycleModel>(*func_, config_, stats_, shards);
  cycle_->setCommitObserver(this);
  if (trace_) cycle_->setTraceSink(trace_);
  for (auto& a : activities_)
    cycle_->addActivityPlugin(a.plugin.get(), a.period);
}

RunResult Simulator::finishCycleResult(const CycleRunResult& r) {
  RunResult out;
  out.halted = r.halted;
  out.haltCode = r.haltCode;
  out.instructions = stats_.instructions;
  out.cycles = r.cycles + baseCycles_;
  out.simTimePs = r.simTime + baseSimTime_;
  stats_.cycles = out.cycles;
  stats_.simTime = out.simTimePs;
  out.output = func_->output();
  out.checkpointTaken = cycle_->checkpointStopTaken();
  return out;
}

RunResult Simulator::run(std::uint64_t maxCycles) {
  if (mode_ == SimMode::kFunctional) {
    if (ranFunctional_)
      throw SimError("functional mode is not resumable; construct a new "
                     "Simulator");
    ranFunctional_ = true;
    FunctionalRunResult fr =
        func_->runFunctional(config_.maxInstructions, this, &stats_);
    RunResult out;
    out.halted = fr.halted;
    out.haltCode = fr.haltCode;
    out.instructions = fr.instructions;
    out.output = func_->output();
    return out;
  }
  ensureCycleModel();
  if (cycle_->halted())
    throw SimError("program already halted; construct a new Simulator");
  return finishCycleResult(cycle_->run(maxCycles));
}

RunResult Simulator::runToCheckpoint(std::uint64_t minCycles) {
  if (mode_ != SimMode::kCycleAccurate)
    throw SimError("checkpoints require cycle-accurate mode");
  // Quiescence detection polls in-flight package counts at instruction
  // boundaries, which is only exact on the sequential engine.
  if (cycle_ ? cycle_->pdesShards() > 1 : pdesShards_ > 1)
    throw SimError("checkpoints require the sequential engine; do not "
                   "combine setPdesShards with runToCheckpoint");
  ensureCycleModel();
  cycle_->requestCheckpointStop(minCycles);
  RunResult r = finishCycleResult(cycle_->run());
  if (r.checkpointTaken) {
    XMT_CHECK(cycle_->quiescent());
    lastCheckpoint_.arch = func_->saveArchState();
    lastCheckpoint_.master = cycle_->masterContext();
    lastCheckpoint_.stats = stats_;
    lastCheckpoint_.simTime = r.simTimePs;
    lastCheckpoint_.cycles = r.cycles;
    lastCheckpoint_.configName = config_.name;
    haveCheckpoint_ = true;
  }
  return r;
}

const Checkpoint& Simulator::checkpoint() const {
  if (!haveCheckpoint_)
    throw SimError("no checkpoint has been taken");
  return lastCheckpoint_;
}

std::unique_ptr<Simulator> Simulator::resume(Program program,
                                             const Checkpoint& chk,
                                             XmtConfig config, SimMode mode) {
  auto sim = std::make_unique<Simulator>(std::move(program),
                                         std::move(config), mode);
  sim->func_->restoreArchState(chk.arch);
  sim->stats_ = chk.stats;
  sim->baseCycles_ = chk.cycles;
  sim->baseSimTime_ = chk.simTime;
  if (mode == SimMode::kCycleAccurate) {
    sim->ensureCycleModel();
    sim->cycle_->setMasterContext(chk.master);
  } else {
    throw SimError("functional-mode resume is not supported: the functional "
                   "runner restarts from the program entry");
  }
  return sim;
}

std::uint64_t Simulator::memoryDigest(
    std::span<const std::string> excludeSymbols) const {
  // Byte extents to mask out (order-dependent result placement).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> skip;
  for (const auto& name : excludeSymbols) {
    if (!programCopy_.hasSymbol(name)) continue;
    const Symbol& s = programCopy_.symbol(name);
    skip.emplace_back(s.addr, s.addr + s.size);
  }

  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64 offset basis
  auto mix = [&h](std::uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ull;
  };

  const SparseMemory& mem = func_->memory();
  const auto end =
      kDataBase + static_cast<std::uint32_t>(programCopy_.data.size());
  for (std::uint32_t a = kDataBase; a < end; ++a) {
    std::uint8_t b = mem.readByte(a);
    for (const auto& [lo, hi] : skip)
      if (a >= lo && a < hi) {
        b = 0;
        break;
      }
    mix(b);
  }
  // Directory of named data symbols (std::map: already name-sorted), so the
  // digest is tied to the symbol layout it hashed, not just raw bytes.
  for (const auto& [name, sym] : programCopy_.symbols) {
    if (sym.isText) continue;
    for (char c : name) mix(static_cast<std::uint8_t>(c));
    mix(0);
    for (int i = 0; i < 4; ++i)
      mix(static_cast<std::uint8_t>(sym.addr >> (8 * i)));
    for (int i = 0; i < 4; ++i)
      mix(static_cast<std::uint8_t>(sym.size >> (8 * i)));
  }
  return h;
}

RuntimeControl* Simulator::runtimeControl() { return cycle_.get(); }

}  // namespace xmt
