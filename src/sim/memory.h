// Sparse paged memory for the functional model.
//
// Backs the entire 32-bit simulated address space with 4 KiB pages allocated
// on demand. Word accesses must be 4-byte aligned (the compiler and
// assembler only generate aligned accesses; unaligned traffic indicates a
// simulated-program bug and throws SimError).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace xmt {

class SparseMemory {
 public:
  static constexpr std::uint32_t kPageBits = 12;
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;

  std::uint32_t readWord(std::uint32_t addr) const;
  void writeWord(std::uint32_t addr, std::uint32_t value);
  std::uint8_t readByte(std::uint32_t addr) const;
  void writeByte(std::uint32_t addr, std::uint8_t value);

  /// Atomic fetch-and-add on a word; returns the previous value. This is the
  /// psm primitive as executed by a shared cache module.
  std::uint32_t fetchAdd(std::uint32_t addr, std::uint32_t delta);

  /// Bulk copy-in (program loading, memory maps).
  void writeBlock(std::uint32_t addr, const std::uint8_t* src,
                  std::size_t len);

  /// Number of resident pages (for tests and checkpoint sizing).
  std::size_t residentPages() const { return pages_.size(); }

  /// Deterministic serialization for checkpoints: (pageIndex, bytes) pairs
  /// in ascending page order.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> snapshot()
      const;
  void restore(
      const std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>&
          pages);

 private:
  using Page = std::vector<std::uint8_t>;
  Page& page(std::uint32_t addr);
  const Page* findPage(std::uint32_t addr) const;

  std::map<std::uint32_t, Page> pages_;
};

}  // namespace xmt
