// Sparse paged memory for the functional model.
//
// Backs the entire 32-bit simulated address space with 4 KiB pages allocated
// on demand. Word accesses must be 4-byte aligned (the compiler and
// assembler only generate aligned accesses; unaligned traffic indicates a
// simulated-program bug and throws SimError).
//
// Layout: a two-level radix table (1024 lazily-allocated mid nodes of 1024
// page slots each) instead of a std::map, so a page lookup is two indexed
// loads with no tree walk — this is the hot path of every cache-module
// serve. Node and page pointers are installed with release stores and read
// with acquire loads, giving the following thread-safety contract (used by
// the PDES engine, where cluster shards read the read-only-cache path while
// the hub shard owns all mutation):
//   - exactly ONE writer thread may call the mutating operations;
//   - any number of reader threads may concurrently call readWord/readByte,
//     and always observe either a fully-zeroed or fully-installed page;
//   - a racing read to a *byte* the writer is concurrently changing is a
//     data race in the simulated program, not in the simulator: accesses go
//     through per-byte-disjoint memcpy of word granularity, and programs the
//     toolchain admits (race-lint clean, spawn discipline) never do this.
// snapshot()/restore() require quiescence (no concurrent readers).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace xmt {

class SparseMemory {
 public:
  static constexpr std::uint32_t kPageBits = 12;
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;

  SparseMemory() = default;
  SparseMemory(const SparseMemory&) = delete;
  SparseMemory& operator=(const SparseMemory&) = delete;

  std::uint32_t readWord(std::uint32_t addr) const;
  void writeWord(std::uint32_t addr, std::uint32_t value);
  std::uint8_t readByte(std::uint32_t addr) const;
  void writeByte(std::uint32_t addr, std::uint8_t value);

  /// Atomic fetch-and-add on a word; returns the previous value. This is the
  /// psm primitive as executed by a shared cache module.
  std::uint32_t fetchAdd(std::uint32_t addr, std::uint32_t delta);

  /// Bulk copy-in (program loading, memory maps).
  void writeBlock(std::uint32_t addr, const std::uint8_t* src,
                  std::size_t len);

  /// Number of resident pages (for tests and checkpoint sizing).
  std::size_t residentPages() const { return resident_; }

  /// Deterministic serialization for checkpoints: (pageIndex, bytes) pairs
  /// in ascending page order.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> snapshot()
      const;
  void restore(
      const std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>&
          pages);

 private:
  // 32-bit space = 20 page-index bits, split 10 (top) + 10 (mid).
  static constexpr std::uint32_t kMidBits = 10;
  static constexpr std::uint32_t kMidSize = 1u << kMidBits;
  static constexpr std::uint32_t kTopSize = 1u << (32 - kPageBits - kMidBits);

  struct Mid {
    std::array<std::atomic<std::uint8_t*>, kMidSize> slots{};
  };

  std::uint8_t* page(std::uint32_t addr);            // writer: creates
  const std::uint8_t* findPage(std::uint32_t addr) const;  // reader: or null

  std::array<std::atomic<Mid*>, kTopSize> top_{};
  std::vector<std::unique_ptr<Mid>> midStore_;
  std::vector<std::unique_ptr<std::uint8_t[]>> pageStore_;
  std::size_t resident_ = 0;
};

}  // namespace xmt
