// The cycle-accurate model of the XMT architecture.
//
// Models the interactions between the high-level micro-architectural
// components of Fig. 1: TCUs grouped in clusters with shared MDU/FPU units,
// per-TCU prefetch buffers, per-cluster read-only caches, the Master TCU
// with its private cache, the mesh-of-trees interconnection network, the
// shared (banked) first-level cache modules with request queueing, DRAM
// channels, the global prefix-sum unit, and the spawn/join hardware with its
// instruction/register broadcast bus.
//
// Each component is an actor (or part of a macro-actor) on the
// discrete-event engine; instructions travel as packages; components are
// state machines whose output is the delay imposed on packages — exactly the
// paper's transaction-level modelling approach.
//
// Components and clock domains:
//   - one ClusterActor per cluster (macro-actor over its TCUs), each with
//     its own clock domain (for per-cluster DVFS),
//   - MasterActor (core clock),
//   - PsUnitActor (core clock) — combining fetch-and-add on global
//     registers; also serves virtual-thread ID dispatch and detects the
//     all-TCUs-parked join condition,
//   - per-destination ReturnPorts (ICN clock) — rate-limited return-path
//     arbitration of the synchronous mesh-of-trees,
//   - CacheActor (cache clock) — macro-actor over all shared cache modules,
//   - DramActor (DRAM clock) — per-channel latency/bandwidth model,
//   - SamplerActor(s) — periodic activity plug-in callbacks.
//
// Parallel mode (PDES): constructed with pdesShards > 1, the actor graph is
// partitioned into shards — shard 0 (the "hub") owns the master, PS unit,
// caches and DRAM; clusters are dealt round-robin over the remaining
// shards — each with a private Scheduler, synchronized by the conservative
// window protocol in src/desim/pdes.h with the minimum cross-shard link
// latency as lookahead. Stats are accumulated per shard and merged
// deterministically, and every multi-source sink arbitrates in a canonical
// (readyTime, source) order, so a PDES run reproduces the sequential run's
// Stats bit-identically (see DESIGN.md §10 and tests/test_golden_stats.cc).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/desim/clockdomain.h"
#include "src/desim/scheduler.h"
#include "src/sim/config.h"
#include "src/sim/funcmodel.h"
#include "src/sim/plugins.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace xmt {

struct CycleRunResult {
  bool halted = false;
  std::int32_t haltCode = 0;
  std::uint64_t cycles = 0;  // core-domain cycles
  SimTime simTime = 0;
};

namespace detail {
class ClusterActor;
class MasterActor;
class CacheActor;
class DramActor;
class PsUnitActor;
class SamplerActor;
class SpawnStarter;
class SpawnJoiner;
struct ModelCore;
}  // namespace detail

class CycleModel final : public RuntimeControl {
 public:
  /// `pdesShards` > 1 opts into the parallel (PDES) engine with that many
  /// event-loop shards (clamped to 1 + clusters; forced to 1 when the
  /// configuration is asynchronous-ICN, whose continuous-time delivery
  /// defeats conservative lookahead).
  CycleModel(FuncModel& funcModel, const XmtConfig& config, Stats& stats,
             int pdesShards = 1);
  ~CycleModel() override;

  /// Effective shard count after clamping (1 == sequential engine).
  int pdesShards() const;

  void setCommitObserver(CommitObserver* observer);
  void setTraceSink(TraceSink* sink);

  /// Registers an activity plug-in called every `periodCycles` core cycles.
  /// The plug-in is not owned.
  void addActivityPlugin(ActivityPlugin* plugin, std::uint64_t periodCycles);

  /// Runs until halt, a requested stop, or `maxCycles` core cycles
  /// (0 = no limit). Resumable: calling run() again continues.
  CycleRunResult run(std::uint64_t maxCycles = 0);

  bool halted() const;

  /// True when the master is executing serial code with no packages in
  /// flight and no spawn active — the state checkpoints are taken in.
  bool quiescent() const;

  /// Architectural master context (for checkpoint save/restore). Restoring
  /// is only valid before the first run() or at a quiescent stop.
  const Context& masterContext() const;
  void setMasterContext(const Context& ctx);

  /// Asks the model to stop at the first quiescent master instruction
  /// boundary at or after `minCycles` core cycles. run() then returns with
  /// halted == false and checkpointStopTaken() == true.
  void requestCheckpointStop(std::uint64_t minCycles);
  bool checkpointStopTaken() const;

  // --- RuntimeControl (activity plug-in API) ---
  const Stats& stats() const override;
  const XmtConfig& config() const override;
  SimTime now() const override;
  std::uint64_t coreCycles() const override;
  void setClusterFrequency(int cluster, double ghz) override;
  double clusterFrequency(int cluster) const override;
  void setClusterEnabled(int cluster, bool enabled) override;
  void setIcnFrequency(double ghz) override;
  void setCacheFrequency(double ghz) override;
  void setDramFrequency(double ghz) override;
  void requestStop() override;

  /// The hub shard's scheduler (the only scheduler when sequential).
  Scheduler& scheduler();

 private:
  std::unique_ptr<detail::ModelCore> core_;
};

}  // namespace xmt
