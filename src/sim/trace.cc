#include "src/sim/trace.h"

#include <iomanip>

#include "src/memsys/package.h"

namespace xmt {

void TextTrace::onEvent(const TraceEvent& ev) {
  if (level_ == TraceLevel::kOff) return;
  if (level_ == TraceLevel::kFunctional &&
      std::string_view(ev.stage) != "commit")
    return;
  if (fCluster_ != -2 && (ev.cluster != fCluster_ || ev.tcu != fTcu_)) return;
  if (fOp_ != Op::kOpCount && (!ev.in || ev.in->op != fOp_)) return;
  ++count_;
  out_ << std::setw(10) << ev.time << " ";
  if (ev.cluster == kMasterCluster)
    out_ << "master      ";
  else
    out_ << "c" << std::setw(2) << ev.cluster << "/t" << std::setw(2)
         << ev.tcu << "    ";
  out_ << std::setw(8) << ev.stage << "  pc=0x" << std::hex << ev.pc
       << std::dec;
  if (ev.in) out_ << "  " << disassemble(*ev.in);
  if (ev.memAddr != 0)
    out_ << "  addr=0x" << std::hex << ev.memAddr << std::dec;
  out_ << "\n";
}

}  // namespace xmt
