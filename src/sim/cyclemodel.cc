#include "src/sim/cyclemodel.h"

#include <map>
#include <set>

#include "src/common/error.h"
#include "src/desim/port.h"
#include "src/desim/ticking_actor.h"
#include "src/memsys/cache.h"
#include "src/memsys/hashing.h"
#include "src/memsys/package.h"
#include "src/sim/semantics.h"

namespace xmt {
namespace detail {

// Prefix-sum unit traffic (dedicated network, separate from the ICN).
struct PsReq {
  std::int16_t cluster = 0;
  std::int16_t tcu = 0;
  std::uint8_t destReg = 0;
  std::uint8_t gr = 0;
  std::uint32_t inc = 0;
  bool isDispatch = false;  // virtual-thread ID allocation (join/chkid path)
};

struct PsResp {
  std::int16_t cluster = 0;
  std::int16_t tcu = 0;
  std::uint8_t destReg = 0;
  std::uint32_t value = 0;
  bool isDispatch = false;
};

enum class WaitKind : std::uint8_t {
  kNone,
  kLoad,      // blocking load (lw/lbu) waiting for data
  kStoreAck,  // blocking store waiting for acknowledgement
  kPsm,       // prefix-sum-to-memory round trip
  kPbFill,    // load hit a pending prefetch-buffer entry
  kRoFill,    // read-only cache miss fill
  kFence,     // fence waiting for non-blocking stores to drain
  kPs,        // ps round trip to the global PS unit
  kDispatch,  // waiting for a virtual-thread ID grant
};

inline bool isMemWait(WaitKind k) {
  return k == WaitKind::kLoad || k == WaitKind::kStoreAck ||
         k == WaitKind::kPsm || k == WaitKind::kPbFill ||
         k == WaitKind::kRoFill || k == WaitKind::kFence;
}

// ---------------------------------------------------------------------------
// ModelCore: shared state + wiring between all component actors.
// ---------------------------------------------------------------------------

struct ModelCore {
  ModelCore(FuncModel& funcModel, const XmtConfig& config, Stats& statsRef);

  FuncModel& fm;
  XmtConfig cfg;
  Stats& stats;
  Scheduler sched;

  ClockDomain masterClk;
  ClockDomain icnClk;
  ClockDomain cacheClk;
  ClockDomain dramClk;
  std::vector<std::unique_ptr<ClockDomain>> clusterClk;

  std::vector<std::unique_ptr<ClusterActor>> clusters;
  std::unique_ptr<MasterActor> master;
  std::unique_ptr<IcnActor> icn;
  std::unique_ptr<CacheActor> caches;
  std::unique_ptr<DramActor> dram;
  std::unique_ptr<PsUnitActor> psUnit;
  std::unique_ptr<SpawnStarter> spawnStarter;
  std::vector<std::unique_ptr<SamplerActor>> samplers;

  CommitObserver* observer = nullptr;
  TraceSink* trace = nullptr;

  // Spawn hardware state.
  bool spawnActive = false;
  std::uint32_t spawnStart = 0;
  std::uint32_t spawnEnd = 0;
  int parkedCount = 0;

  bool halted = false;
  std::int32_t haltCode = 0;
  std::uint64_t inFlight = 0;  // outstanding packages + ps requests
  std::uint64_t pkgSeq = 0;
  bool started = false;
  bool masterRestored = false;  // checkpoint resume: keep the restored ctx

  bool checkpointRequested = false;
  std::uint64_t checkpointMinCycles = 0;
  bool checkpointTaken = false;

  // Wiring helpers (defined after the actor classes).
  void commit(int cluster, int tcu, const Instruction& in, std::uint32_t pc,
              std::uint32_t addr, SimTime now);
  void tracePkg(const char* stage, const Package& pkg, SimTime now);
  void sendPackage(Package pkg, SimTime now);
  void sendResponse(const Package& pkg, SimTime readyAt);
  void deliverResponse(const Package& pkg, SimTime now);
  void sendPsRequest(const PsReq& req, SimTime now);
  void deliverPsResponse(const PsResp& resp, SimTime readyAt);
  void dramRequest(int module, std::uint64_t line, SimTime now);
  SimTime asyncIcnLatency(std::uint64_t pkgId, int meanCycles);
  void scheduleSpawnStart(SimTime when);
  void tcuParked(SimTime now);
  void doHalt(std::int32_t code);
  void syncCacheStats();
  bool quiescent() const;
};

// ---------------------------------------------------------------------------
// ClusterActor: macro-actor over one cluster's TCUs, shared MDU/FPU pools,
// the read-only cache, and the per-TCU prefetch buffers.
// ---------------------------------------------------------------------------

class ClusterActor : public TickingActor {
 public:
  ClusterActor(ModelCore& m, int id, ClockDomain& clk)
      : TickingActor("cluster" + std::to_string(id), m.sched, clk),
        m_(m),
        id_(id),
        roCache_(m.cfg.roCacheLines, 1, m.cfg.cacheLineBytes),
        mduBusy_(static_cast<std::size_t>(m.cfg.mduPerCluster), 0),
        fpuBusy_(static_cast<std::size_t>(m.cfg.fpuPerCluster), 0) {
    tcus_.resize(static_cast<std::size_t>(m.cfg.tcusPerCluster));
    for (auto& t : tcus_)
      t.pb.resize(static_cast<std::size_t>(m.cfg.prefetchEntries));
  }

  TimedQueue<Package> pkgInbox;
  TimedQueue<PsResp> psInbox;

  /// Spawn onset: broadcast master registers, reset per-section caches,
  /// request virtual-thread IDs for every TCU.
  void beginSpawn(const Context& masterCtx, SimTime now) {
    roCache_.invalidateAll();
    for (std::size_t i = 0; i < tcus_.size(); ++i) {
      Tcu& t = tcus_[i];
      XMT_CHECK(t.outstandingStores == 0);
      t.ctx.regs = masterCtx.regs;
      t.phase = Phase::kBlocked;
      t.wait = WaitKind::kDispatch;
      t.waitStart = now;
      for (auto& e : t.pb) e = PbEntry{};
      PsReq req;
      req.cluster = static_cast<std::int16_t>(id_);
      req.tcu = static_cast<std::int16_t>(i);
      req.gr = kGrNextId;
      req.inc = 1;
      req.isDispatch = true;
      m_.sendPsRequest(req, now);
    }
  }

  std::uint64_t roHits() const { return roCache_.hits; }
  std::uint64_t roMisses() const { return roCache_.misses; }

 protected:
  SimTime tick(SimTime now) override {
    while (pkgInbox.ready(now)) {
      Package pkg = pkgInbox.pop(now);
      handleResponse(pkg, now);
    }
    while (psInbox.ready(now)) {
      PsResp r = psInbox.pop(now);
      handlePsResp(r, now);
    }

    int memSlots = m_.cfg.clusterInjectRate;
    bool anyIssued = false;
    const int n = static_cast<int>(tcus_.size());
    for (int i = 0; i < n; ++i) {
      Tcu& t = tcus_[static_cast<std::size_t>((rr_ + i) % n)];
      if (t.phase == Phase::kWaitUntil && now >= t.readyAt)
        t.phase = Phase::kRunning;
      if (t.phase != Phase::kRunning) continue;
      if (issueOne(t, (rr_ + i) % n, now, memSlots)) anyIssued = true;
    }
    rr_ = (rr_ + 1) % n;
    if (anyIssued)
      ++m_.stats.perCluster[static_cast<std::size_t>(id_)].activeCycles;

    // Next wanted time.
    SimTime next = -1;
    auto consider = [&](SimTime t) {
      if (t >= 0 && (next < 0 || t < next)) next = t;
    };
    for (const Tcu& t : tcus_) {
      if (t.phase == Phase::kRunning) consider(clock().nextEdge(now));
      else if (t.phase == Phase::kWaitUntil) consider(t.readyAt);
    }
    consider(pkgInbox.nextReadyTime());
    consider(psInbox.nextReadyTime());
    return next;
  }

 private:
  struct PbEntry {
    std::uint32_t addr = 0;
    std::uint32_t value = 0;
    bool valid = false;
    bool pending = false;
    std::uint64_t pkgId = 0;
    std::uint64_t lastUse = 0;   // for LRU replacement
    std::uint64_t allocSeq = 0;  // for FIFO replacement
  };

  enum class Phase : std::uint8_t {
    kIdle, kRunning, kWaitUntil, kBlocked, kParked
  };

  struct Tcu {
    Context ctx;
    Phase phase = Phase::kIdle;
    WaitKind wait = WaitKind::kNone;
    SimTime readyAt = 0;
    SimTime waitStart = 0;
    std::uint8_t waitReg = 0;
    std::uint64_t waitPkgId = 0;
    int outstandingStores = 0;
    bool joinPending = false;  // join waiting for the implicit store fence
    std::multiset<std::uint32_t> storeAddrs;  // word-aligned, in flight
    std::vector<PbEntry> pb;
  };

  void requestDispatch(Tcu& t, int tcuIdx, SimTime now) {
    PsReq req;
    req.cluster = static_cast<std::int16_t>(id_);
    req.tcu = static_cast<std::int16_t>(tcuIdx);
    req.gr = kGrNextId;
    req.inc = 1;
    req.isDispatch = true;
    m_.sendPsRequest(req, now);
    t.phase = Phase::kBlocked;
    t.wait = WaitKind::kDispatch;
    t.waitStart = now;
  }

  PbEntry* findPb(Tcu& t, std::uint32_t addr) {
    for (auto& e : t.pb)
      if ((e.valid || e.pending) && e.addr == addr) return &e;
    return nullptr;
  }

  // Allocates a prefetch-buffer entry; never evicts pending entries.
  PbEntry* allocPb(Tcu& t) {
    PbEntry* victim = nullptr;
    for (auto& e : t.pb) {
      if (e.pending) continue;
      if (!e.valid) return &e;
      if (victim == nullptr) {
        victim = &e;
        continue;
      }
      if (m_.cfg.prefetchPolicy == "lru") {
        if (e.lastUse < victim->lastUse) victim = &e;
      } else {  // fifo
        if (e.allocSeq < victim->allocSeq) victim = &e;
      }
    }
    return victim;
  }

  void resume(Tcu& t, SimTime now) {
    if (isMemWait(t.wait)) {
      SimTime waited = now - t.waitStart;
      m_.stats.memWaitCycles +=
          static_cast<std::uint64_t>(waited / clock().period());
    }
    t.wait = WaitKind::kNone;
    t.phase = Phase::kRunning;
  }

  Package makePkg(PkgKind kind, std::uint32_t addr, std::uint32_t value,
                  int tcuIdx, std::uint8_t destReg, SimTime now) {
    Package p;
    p.kind = kind;
    p.addr = addr;
    p.value = value;
    p.srcCluster = static_cast<std::int16_t>(id_);
    p.srcTcu = static_cast<std::int16_t>(tcuIdx);
    p.destReg = destReg;
    p.id = ++m_.pkgSeq;
    p.issueTime = now;
    return p;
  }

  // Issues one instruction for TCU `t`. Returns false on a structural
  // stall (retry next cycle, no architectural effect).
  bool issueOne(Tcu& t, int tcuIdx, SimTime now, int& memSlots) {
    const std::uint32_t pc = t.ctx.pc;
    if (pc < m_.spawnStart || pc >= m_.spawnEnd)
      throw SimError(
          "TCU fetched an instruction outside the broadcast spawn region "
          "(pc=0x" + std::to_string(pc) +
          "); mislaid basic block? (cf. paper Fig. 9)");
    const Instruction& in = m_.fm.fetch(pc);
    auto& act = m_.stats.perCluster[static_cast<std::size_t>(id_)];

    switch (FuncModel::classify(in)) {
      case FuncModel::StepClass::kSimple: {
        FuKind fu = opInfo(in.op).fu;
        if (fu == FuKind::kMdu || fu == FuKind::kFpu) {
          auto& busy = (fu == FuKind::kMdu) ? mduBusy_ : fpuBusy_;
          int lat = (fu == FuKind::kMdu) ? m_.cfg.mduLatency
                                         : m_.cfg.fpuLatency;
          std::size_t unit = busy.size();
          for (std::size_t u = 0; u < busy.size(); ++u)
            if (busy[u] <= now) { unit = u; break; }
          if (unit == busy.size()) return false;  // all shared units busy
          busy[unit] = now + clock().period();    // pipelined: 1-cycle issue
          m_.fm.execSimple(t.ctx, in);
          t.phase = Phase::kWaitUntil;
          t.readyAt = now + lat * clock().period();
          if (fu == FuKind::kMdu) ++act.mduOps; else ++act.fpuOps;
        } else {
          m_.fm.execSimple(t.ctx, in);
          ++act.aluOps;
        }
        m_.commit(id_, tcuIdx, in, pc, 0, now);
        return true;
      }

      case FuncModel::StepClass::kMemory:
        return issueMemory(t, tcuIdx, in, pc, now, memSlots);

      case FuncModel::StepClass::kPs: {
        PsReq req;
        req.cluster = static_cast<std::int16_t>(id_);
        req.tcu = static_cast<std::int16_t>(tcuIdx);
        req.destReg = in.rd;
        req.gr = in.rt;
        req.inc = t.ctx.reg(in.rd);
        m_.sendPsRequest(req, now);
        t.ctx.pc += 4;
        t.phase = Phase::kBlocked;
        t.wait = WaitKind::kPs;
        t.waitStart = now;
        m_.commit(id_, tcuIdx, in, pc, 0, now);
        return true;
      }

      case FuncModel::StepClass::kPsm: {
        if (memSlots == 0) return false;
        --memSlots;
        std::uint32_t addr = m_.fm.effectiveAddr(t.ctx, in);
        Package p = makePkg(PkgKind::kPsm, addr, t.ctx.reg(in.rt), tcuIdx,
                            in.rt, now);
        m_.sendPackage(p, now);
        ++m_.stats.psmRequests;
        t.ctx.pc += 4;
        t.phase = Phase::kBlocked;
        t.wait = WaitKind::kPsm;
        t.waitStart = now;
        ++act.memOps;
        m_.commit(id_, tcuIdx, in, pc, addr, now);
        return true;
      }

      case FuncModel::StepClass::kSpawn:
        throw SimError(
            "nested spawn reached the spawn hardware (the compiler must "
            "serialize nested spawns)");

      case FuncModel::StepClass::kJoin: {
        // Virtual thread complete. The end of a virtual thread orders
        // memory operations (XMT memory model), so join is an implicit
        // fence: outstanding non-blocking stores drain before the TCU's
        // dispatch hardware performs the ps + chkid sequence for the next
        // thread ID.
        m_.commit(id_, tcuIdx, in, pc, 0, now);
        if (t.outstandingStores != 0) {
          t.phase = Phase::kBlocked;
          t.wait = WaitKind::kFence;
          t.waitStart = now;
          t.joinPending = true;
          return true;
        }
        requestDispatch(t, tcuIdx, now);
        return true;
      }

      case FuncModel::StepClass::kHalt:
        throw SimError("halt executed inside a spawn block");
    }
    return false;
  }

  bool issueMemory(Tcu& t, int tcuIdx, const Instruction& in,
                   std::uint32_t pc, SimTime now, int& memSlots) {
    auto& act = m_.stats.perCluster[static_cast<std::size_t>(id_)];
    std::uint32_t addr = m_.fm.effectiveAddr(t.ctx, in);
    switch (in.op) {
      case Op::kFence:
        t.ctx.pc += 4;
        m_.commit(id_, tcuIdx, in, pc, 0, now);
        if (t.outstandingStores != 0) {
          t.phase = Phase::kBlocked;
          t.wait = WaitKind::kFence;
          t.waitStart = now;
        }
        return true;

      case Op::kPref: {
        if (t.pb.empty() || findPb(t, addr) != nullptr) {
          t.ctx.pc += 4;
          m_.commit(id_, tcuIdx, in, pc, addr, now);
          return true;
        }
        if (memSlots == 0) return false;
        PbEntry* e = allocPb(t);
        if (e == nullptr) {  // every entry pending: drop the prefetch
          t.ctx.pc += 4;
          m_.commit(id_, tcuIdx, in, pc, addr, now);
          return true;
        }
        --memSlots;
        Package p = makePkg(PkgKind::kPrefetch, addr, 0, tcuIdx, 0, now);
        *e = PbEntry{};
        e->addr = addr;
        e->pending = true;
        e->pkgId = p.id;
        e->allocSeq = ++pbSeq_;
        e->lastUse = pbSeq_;
        m_.sendPackage(p, now);
        t.ctx.pc += 4;
        ++act.memOps;
        m_.commit(id_, tcuIdx, in, pc, addr, now);
        return true;
      }

      case Op::kLw:
      case Op::kLbu: {
        // XMT memory-model rule 1: same-source same-address operations are
        // never reordered. A load that would overtake this TCU's own
        // in-flight non-blocking store to the same word stalls here.
        std::uint32_t key = addr & ~3u;
        if (t.storeAddrs.count(key) != 0) return false;
        if (in.op == Op::kLw) {
          PbEntry* e = findPb(t, addr);
          if (e != nullptr && e->valid) {
            t.ctx.setReg(in.rt, e->value);
            e->valid = false;  // consume on use
            e->addr = 0;
            ++m_.stats.prefetchBufferHits;
            t.ctx.pc += 4;
            m_.commit(id_, tcuIdx, in, pc, addr, now);
            return true;
          }
          if (e != nullptr && e->pending) {
            t.ctx.pc += 4;
            t.phase = Phase::kBlocked;
            t.wait = WaitKind::kPbFill;
            t.waitPkgId = e->pkgId;
            t.waitReg = in.rt;
            t.waitStart = now;
            m_.commit(id_, tcuIdx, in, pc, addr, now);
            return true;
          }
        }
        if (memSlots == 0) return false;
        --memSlots;
        Package p = makePkg(
            in.op == Op::kLw ? PkgKind::kLoadWord : PkgKind::kLoadByte, addr,
            0, tcuIdx, in.rt, now);
        m_.sendPackage(p, now);
        t.ctx.pc += 4;
        t.phase = Phase::kBlocked;
        t.wait = WaitKind::kLoad;
        t.waitStart = now;
        ++act.memOps;
        m_.commit(id_, tcuIdx, in, pc, addr, now);
        return true;
      }

      case Op::kRolw: {
        if (roCache_.contains(addr)) {
          roCache_.lookup(addr);  // count the hit, touch LRU
          t.ctx.setReg(in.rt, m_.fm.memory().readWord(addr));
          t.ctx.pc += 4;
          t.phase = Phase::kWaitUntil;
          t.readyAt = now + 2 * clock().period();
          m_.commit(id_, tcuIdx, in, pc, addr, now);
          return true;
        }
        if (memSlots == 0) return false;  // retry without a counted miss
        roCache_.lookup(addr);            // count the miss
        --memSlots;
        Package p =
            makePkg(PkgKind::kReadOnlyLoad, addr, 0, tcuIdx, in.rt, now);
        m_.sendPackage(p, now);
        t.ctx.pc += 4;
        t.phase = Phase::kBlocked;
        t.wait = WaitKind::kRoFill;
        t.waitPkgId = p.id;
        t.waitReg = in.rt;
        t.waitStart = now;
        ++act.memOps;
        m_.commit(id_, tcuIdx, in, pc, addr, now);
        return true;
      }

      case Op::kSw:
      case Op::kSb: {
        if (memSlots == 0) return false;
        --memSlots;
        Package p = makePkg(
            in.op == Op::kSw ? PkgKind::kStoreWord : PkgKind::kStoreByte,
            addr, t.ctx.reg(in.rt), tcuIdx, 0, now);
        m_.sendPackage(p, now);
        t.ctx.pc += 4;
        t.phase = Phase::kBlocked;
        t.wait = WaitKind::kStoreAck;
        t.waitStart = now;
        ++act.memOps;
        m_.commit(id_, tcuIdx, in, pc, addr, now);
        return true;
      }

      case Op::kSwnb: {
        if (memSlots == 0) return false;
        --memSlots;
        Package p = makePkg(PkgKind::kStoreNbWord, addr, t.ctx.reg(in.rt),
                            tcuIdx, 0, now);
        ++t.outstandingStores;
        t.storeAddrs.insert(addr & ~3u);
        ++m_.stats.nonBlockingStores;
        m_.sendPackage(p, now);
        t.ctx.pc += 4;
        ++act.memOps;
        m_.commit(id_, tcuIdx, in, pc, addr, now);
        return true;
      }

      default:
        throw InternalError("unhandled memory op in cluster issue");
    }
  }

  void handleResponse(const Package& pkg, SimTime now) {
    Tcu& t = tcus_[static_cast<std::size_t>(pkg.srcTcu)];
    switch (pkg.kind) {
      case PkgKind::kLoadWord:
      case PkgKind::kLoadByte:
        XMT_CHECK(t.phase == Phase::kBlocked && t.wait == WaitKind::kLoad);
        t.ctx.setReg(pkg.destReg, pkg.value);
        resume(t, now);
        break;
      case PkgKind::kStoreWord:
      case PkgKind::kStoreByte:
        XMT_CHECK(t.phase == Phase::kBlocked &&
                  t.wait == WaitKind::kStoreAck);
        resume(t, now);
        break;
      case PkgKind::kStoreNbWord: {
        XMT_CHECK(t.outstandingStores > 0);
        --t.outstandingStores;
        auto it = t.storeAddrs.find(pkg.addr & ~3u);
        XMT_CHECK(it != t.storeAddrs.end());
        t.storeAddrs.erase(it);
        if (t.phase == Phase::kBlocked && t.wait == WaitKind::kFence &&
            t.outstandingStores == 0) {
          if (t.joinPending) {
            t.joinPending = false;
            SimTime waited = now - t.waitStart;
            m_.stats.memWaitCycles +=
                static_cast<std::uint64_t>(waited / clock().period());
            requestDispatch(t, static_cast<int>(pkg.srcTcu), now);
          } else {
            resume(t, now);
          }
        }
        break;
      }
      case PkgKind::kPsm:
        XMT_CHECK(t.phase == Phase::kBlocked && t.wait == WaitKind::kPsm);
        t.ctx.setReg(pkg.destReg, pkg.value);
        resume(t, now);
        break;
      case PkgKind::kPrefetch: {
        for (auto& e : t.pb) {
          if (e.pending && e.pkgId == pkg.id) {
            e.pending = false;
            e.valid = true;
            e.value = pkg.value;
            break;
          }
        }
        if (t.phase == Phase::kBlocked && t.wait == WaitKind::kPbFill &&
            t.waitPkgId == pkg.id) {
          t.ctx.setReg(t.waitReg, pkg.value);
          // Consume the entry the blocked load was waiting on. Hitting a
          // pending entry is still a buffer hit — the prefetch absorbed
          // (part of) the latency.
          for (auto& e : t.pb)
            if (e.valid && e.pkgId == pkg.id) {
              e.valid = false;
              e.addr = 0;
            }
          ++m_.stats.prefetchBufferHits;
          resume(t, now);
        }
        break;
      }
      case PkgKind::kReadOnlyLoad:
        roCache_.install(pkg.addr);
        if (t.phase == Phase::kBlocked && t.wait == WaitKind::kRoFill &&
            t.waitPkgId == pkg.id) {
          t.ctx.setReg(t.waitReg, pkg.value);
          resume(t, now);
        }
        break;
    }
    XMT_CHECK(m_.inFlight > 0);
    --m_.inFlight;
  }

  void handlePsResp(const PsResp& r, SimTime now) {
    Tcu& t = tcus_[static_cast<std::size_t>(r.tcu)];
    XMT_CHECK(m_.inFlight > 0);
    --m_.inFlight;
    if (r.isDispatch) {
      XMT_CHECK(t.phase == Phase::kBlocked &&
                t.wait == WaitKind::kDispatch);
      auto id = static_cast<std::int32_t>(r.value);
      auto high = static_cast<std::int32_t>(m_.fm.globalRegs()[kGrHigh]);
      if (id <= high) {
        t.ctx.setReg(kTid, r.value);
        t.ctx.pc = m_.spawnStart;
        t.phase = Phase::kRunning;
        t.wait = WaitKind::kNone;
        ++m_.stats.virtualThreads;
      } else {
        t.phase = Phase::kParked;
        t.wait = WaitKind::kNone;
        m_.tcuParked(now);
      }
    } else {
      XMT_CHECK(t.phase == Phase::kBlocked && t.wait == WaitKind::kPs);
      t.ctx.setReg(r.destReg, r.value);
      resume(t, now);
    }
  }

  ModelCore& m_;
  int id_;
  std::vector<Tcu> tcus_;
  TagCache roCache_;
  std::vector<SimTime> mduBusy_;
  std::vector<SimTime> fpuBusy_;
  int rr_ = 0;
  std::uint64_t pbSeq_ = 0;
};

// ---------------------------------------------------------------------------
// MasterActor: the serial Master TCU with its private (write-through) cache
// and dedicated functional units.
// ---------------------------------------------------------------------------

class MasterActor : public TickingActor {
 public:
  MasterActor(ModelCore& m, ClockDomain& clk)
      : TickingActor("master", m.sched, clk),
        m_(m),
        cache_(m.cfg.masterCacheKB * 1024 / m.cfg.cacheLineBytes,
               m.cfg.cacheAssoc, m.cfg.cacheLineBytes) {}

  TimedQueue<Package> pkgInbox;

  Context ctx;

  void start() {
    if (!m_.masterRestored) {
      ctx.pc = m_.fm.program().entry;
      ctx.setReg(kSp, kStackTop);
    }
    phase_ = Phase::kRunning;
    wakeAt(scheduler().now() + 1);
  }

  void resumeFromSpawn(SimTime now) {
    XMT_CHECK(phase_ == Phase::kWaitSpawn);
    ctx.pc = m_.spawnEnd;
    cache_.invalidateAll();  // TCUs may have written anywhere
    phase_ = Phase::kWaitUntil;
    readyAt_ = now + clock().period();
    wakeAt(readyAt_);
  }

  bool runnable() const { return phase_ == Phase::kRunning; }
  int outstandingStores() const { return outstandingStores_; }
  std::uint64_t cacheHits() const { return cache_.hits; }
  std::uint64_t cacheMisses() const { return cache_.misses; }

 protected:
  SimTime tick(SimTime now) override {
    while (pkgInbox.ready(now)) {
      Package pkg = pkgInbox.pop(now);
      handleResponse(pkg, now);
    }
    if (phase_ == Phase::kWaitUntil && now >= readyAt_)
      phase_ = Phase::kRunning;
    if (phase_ == Phase::kRunning && !m_.halted) {
      if (m_.checkpointRequested && !m_.checkpointTaken && m_.quiescent() &&
          clock().cyclesAt(now) >=
              static_cast<std::int64_t>(m_.checkpointMinCycles)) {
        m_.checkpointTaken = true;
        scheduler().requestStop();
        return -1;
      }
      issue(now);
    }
    if (m_.halted) return -1;
    switch (phase_) {
      case Phase::kRunning:
        return clock().nextEdge(now);
      case Phase::kWaitUntil:
        return readyAt_;
      default:
        return pkgInbox.nextReadyTime();
    }
  }

 private:
  enum class Phase : std::uint8_t {
    kRunning, kWaitUntil, kBlocked, kWaitSpawn
  };

  Package makePkg(PkgKind kind, std::uint32_t addr, std::uint32_t value,
                  std::uint8_t destReg, SimTime now) {
    Package p;
    p.kind = kind;
    p.addr = addr;
    p.value = value;
    p.srcCluster = kMasterCluster;
    p.srcTcu = 0;
    p.destReg = destReg;
    p.id = ++m_.pkgSeq;
    p.issueTime = now;
    return p;
  }

  void block(WaitKind k, SimTime now) {
    phase_ = Phase::kBlocked;
    wait_ = k;
    waitStart_ = now;
  }

  void resume(SimTime now) {
    if (isMemWait(wait_))
      m_.stats.memWaitCycles +=
          static_cast<std::uint64_t>((now - waitStart_) / clock().period());
    wait_ = WaitKind::kNone;
    phase_ = Phase::kRunning;
  }

  void issue(SimTime now) {
    const std::uint32_t pc = ctx.pc;
    const Instruction& in = m_.fm.fetch(pc);
    switch (FuncModel::classify(in)) {
      case FuncModel::StepClass::kSimple: {
        FuKind fu = opInfo(in.op).fu;
        m_.fm.execSimple(ctx, in);
        if (fu == FuKind::kMdu) {
          phase_ = Phase::kWaitUntil;
          readyAt_ = now + m_.cfg.mduLatency * clock().period();
        } else if (fu == FuKind::kFpu) {
          phase_ = Phase::kWaitUntil;
          readyAt_ = now + m_.cfg.fpuLatency * clock().period();
        }
        m_.commit(kMasterCluster, 0, in, pc, 0, now);
        return;
      }
      case FuncModel::StepClass::kPs: {
        // The master sits next to the global register file / PS unit.
        std::uint32_t old = m_.fm.psFetchAdd(in.rt, ctx.reg(in.rd));
        ctx.setReg(in.rd, old);
        ++m_.stats.psRequests;
        ctx.pc += 4;
        phase_ = Phase::kWaitUntil;
        readyAt_ = now + 2 * clock().period();
        m_.commit(kMasterCluster, 0, in, pc, 0, now);
        return;
      }
      case FuncModel::StepClass::kMemory:
        issueMemory(in, pc, now);
        return;
      case FuncModel::StepClass::kPsm: {
        std::uint32_t addr = m_.fm.effectiveAddr(ctx, in);
        Package p = makePkg(PkgKind::kPsm, addr, ctx.reg(in.rt), in.rt, now);
        m_.sendPackage(p, now);
        ++m_.stats.psmRequests;
        ctx.pc += 4;
        block(WaitKind::kPsm, now);
        m_.commit(kMasterCluster, 0, in, pc, addr, now);
        return;
      }
      case FuncModel::StepClass::kSpawn: {
        ++m_.stats.spawns;
        m_.spawnActive = true;
        m_.spawnStart = static_cast<std::uint32_t>(in.imm);
        m_.spawnEnd = static_cast<std::uint32_t>(in.imm2);
        m_.parkedCount = 0;
        std::uint32_t blockInstrs = (m_.spawnEnd - m_.spawnStart) / 4;
        std::int64_t bcastCycles =
            m_.cfg.spawnBroadcastBase +
            (blockInstrs + static_cast<std::uint32_t>(
                               m_.cfg.broadcastInstrPerCycle) - 1) /
                static_cast<std::uint32_t>(m_.cfg.broadcastInstrPerCycle);
        phase_ = Phase::kWaitSpawn;
        m_.scheduleSpawnStart(now + bcastCycles * clock().period());
        m_.commit(kMasterCluster, 0, in, pc, 0, now);
        return;
      }
      case FuncModel::StepClass::kJoin:
        throw SimError("join executed in serial (master) mode");
      case FuncModel::StepClass::kHalt:
        // Halt implies a fence: outstanding non-blocking stores must reach
        // memory before the final memory dump.
        m_.commit(kMasterCluster, 0, in, pc, 0, now);
        if (outstandingStores_ != 0) {
          haltPending_ = true;
          block(WaitKind::kFence, now);
          return;
        }
        m_.doHalt(static_cast<std::int32_t>(ctx.reg(kV0)));
        return;
    }
  }

  void issueMemory(const Instruction& in, std::uint32_t pc, SimTime now) {
    std::uint32_t addr = m_.fm.effectiveAddr(ctx, in);
    switch (in.op) {
      case Op::kFence:
        ctx.pc += 4;
        m_.commit(kMasterCluster, 0, in, pc, 0, now);
        if (outstandingStores_ != 0) block(WaitKind::kFence, now);
        return;
      case Op::kPref:  // the master has no prefetch buffer
        ctx.pc += 4;
        m_.commit(kMasterCluster, 0, in, pc, addr, now);
        return;
      case Op::kLw:
      case Op::kLbu:
      case Op::kRolw: {
        std::uint32_t key = addr & ~3u;
        if (storeAddrs_.count(key) != 0) return;  // retry after drain
        if (cache_.lookup(addr)) {
          std::uint32_t v = (in.op == Op::kLbu)
                                ? m_.fm.memory().readByte(addr)
                                : m_.fm.memory().readWord(addr);
          ctx.setReg(in.rt, v);
          ctx.pc += 4;
          phase_ = Phase::kWaitUntil;
          readyAt_ = now + 2 * clock().period();
          m_.commit(kMasterCluster, 0, in, pc, addr, now);
          return;
        }
        Package p = makePkg(in.op == Op::kLbu ? PkgKind::kLoadByte
                                              : PkgKind::kLoadWord,
                            addr, 0, in.rt, now);
        m_.sendPackage(p, now);
        ctx.pc += 4;
        block(WaitKind::kLoad, now);
        m_.commit(kMasterCluster, 0, in, pc, addr, now);
        return;
      }
      case Op::kSw:
      case Op::kSb: {
        Package p = makePkg(
            in.op == Op::kSw ? PkgKind::kStoreWord : PkgKind::kStoreByte,
            addr, ctx.reg(in.rt), 0, now);
        m_.sendPackage(p, now);
        ctx.pc += 4;
        block(WaitKind::kStoreAck, now);
        m_.commit(kMasterCluster, 0, in, pc, addr, now);
        return;
      }
      case Op::kSwnb: {
        Package p =
            makePkg(PkgKind::kStoreNbWord, addr, ctx.reg(in.rt), 0, now);
        ++outstandingStores_;
        storeAddrs_.insert(addr & ~3u);
        ++m_.stats.nonBlockingStores;
        m_.sendPackage(p, now);
        ctx.pc += 4;
        m_.commit(kMasterCluster, 0, in, pc, addr, now);
        return;
      }
      default:
        throw InternalError("unhandled master memory op");
    }
  }

  void handleResponse(const Package& pkg, SimTime now) {
    switch (pkg.kind) {
      case PkgKind::kLoadWord:
      case PkgKind::kLoadByte:
        XMT_CHECK(phase_ == Phase::kBlocked && wait_ == WaitKind::kLoad);
        cache_.install(pkg.addr);
        ctx.setReg(pkg.destReg, pkg.value);
        resume(now);
        break;
      case PkgKind::kStoreWord:
      case PkgKind::kStoreByte:
        XMT_CHECK(phase_ == Phase::kBlocked &&
                  wait_ == WaitKind::kStoreAck);
        resume(now);
        break;
      case PkgKind::kStoreNbWord: {
        XMT_CHECK(outstandingStores_ > 0);
        --outstandingStores_;
        auto it = storeAddrs_.find(pkg.addr & ~3u);
        XMT_CHECK(it != storeAddrs_.end());
        storeAddrs_.erase(it);
        if (phase_ == Phase::kBlocked && wait_ == WaitKind::kFence &&
            outstandingStores_ == 0) {
          if (haltPending_) {
            haltPending_ = false;
            m_.doHalt(static_cast<std::int32_t>(ctx.reg(kV0)));
          } else {
            resume(now);
          }
        }
        break;
      }
      case PkgKind::kPsm:
        XMT_CHECK(phase_ == Phase::kBlocked && wait_ == WaitKind::kPsm);
        ctx.setReg(pkg.destReg, pkg.value);
        resume(now);
        break;
      default:
        throw InternalError("unexpected response kind at master");
    }
    XMT_CHECK(m_.inFlight > 0);
    --m_.inFlight;
  }

  ModelCore& m_;
  TagCache cache_;
  Phase phase_ = Phase::kRunning;
  WaitKind wait_ = WaitKind::kNone;
  SimTime readyAt_ = 0;
  SimTime waitStart_ = 0;
  int outstandingStores_ = 0;
  bool haltPending_ = false;
  std::multiset<std::uint32_t> storeAddrs_;
};

// ---------------------------------------------------------------------------
// PsUnitActor: the global prefix-sum unit. All requests to the same global
// register that are pending in the same cycle are combined and served
// together — the hardware property that makes thread dispatch O(1).
// ---------------------------------------------------------------------------

class PsUnitActor : public TickingActor {
 public:
  PsUnitActor(ModelCore& m, ClockDomain& clk)
      : TickingActor("psunit", m.sched, clk), m_(m) {}

  TimedQueue<PsReq> inbox;

 protected:
  SimTime tick(SimTime now) override {
    while (inbox.ready(now)) {
      PsReq req = inbox.pop(now);
      std::uint32_t old = m_.fm.psFetchAdd(req.gr, req.inc);
      if (!req.isDispatch) ++m_.stats.psRequests;
      PsResp resp;
      resp.cluster = req.cluster;
      resp.tcu = req.tcu;
      resp.destReg = req.destReg;
      resp.value = old;
      resp.isDispatch = req.isDispatch;
      m_.deliverPsResponse(resp,
                           now + m_.cfg.psReturnLatency * clock().period());
    }
    return inbox.nextReadyTime();
  }

 private:
  ModelCore& m_;
};

// ---------------------------------------------------------------------------
// IcnActor: return-path arbitration of the mesh-of-trees network. The send
// path of a mesh-of-trees is non-blocking except at the destinations, so
// send contention is modelled at the cache-module service queues; the
// return path is rate-limited per cluster port here.
// ---------------------------------------------------------------------------

class IcnActor : public TickingActor {
 public:
  IcnActor(ModelCore& m, ClockDomain& clk)
      : TickingActor("icn", m.sched, clk), m_(m) {
    retq_.resize(static_cast<std::size_t>(m.cfg.clusters) + 1);
  }

  void enqueueReturn(const Package& pkg, SimTime readyFromCache) {
    std::size_t port = portOf(pkg.srcCluster);
    SimTime ready = readyFromCache +
                    m_.cfg.effectiveIcnReturnLatency() * clock().period();
    retq_[port].push(ready, pkg);
    wakeAt(ready);
  }

 protected:
  SimTime tick(SimTime now) override {
    SimTime next = -1;
    auto consider = [&](SimTime t) {
      if (t >= 0 && (next < 0 || t < next)) next = t;
    };
    for (auto& q : retq_) {
      int slots = m_.cfg.clusterReturnRate;
      while (slots > 0 && q.ready(now)) {
        Package pkg = q.pop(now);
        m_.tracePkg("icn", pkg, now);
        m_.deliverResponse(pkg, now);
        --slots;
      }
      if (q.ready(now))
        consider(clock().nextEdge(now));  // rate-limited leftovers
      else
        consider(q.nextReadyTime());
    }
    return next;
  }

 private:
  std::size_t portOf(int cluster) const {
    return cluster == kMasterCluster
               ? retq_.size() - 1
               : static_cast<std::size_t>(cluster);
  }
  ModelCore& m_;
  std::vector<TimedQueue<Package>> retq_;
};

// ---------------------------------------------------------------------------
// CacheActor: macro-actor over the shared L1 cache modules. Each module
// serves one request per cache cycle in arrival order, with hit-under-miss
// across lines (MSHRs) and strict in-order service within a line — which
// preserves same-source same-address ordering end to end.
// ---------------------------------------------------------------------------

class CacheActor : public TickingActor {
 public:
  struct Fill {
    int module = 0;
    std::uint64_t line = 0;
  };

  CacheActor(ModelCore& m, ClockDomain& clk)
      : TickingActor("caches", m.sched, clk), m_(m) {
    mods_.reserve(static_cast<std::size_t>(m.cfg.cacheModules));
    int lines = m.cfg.cacheModuleKB * 1024 / m.cfg.cacheLineBytes;
    for (int i = 0; i < m.cfg.cacheModules; ++i)
      mods_.push_back(std::make_unique<Module>(lines, m.cfg.cacheAssoc,
                                               m.cfg.cacheLineBytes));
  }

  void inject(const Package& pkg, SimTime readyAt, int module) {
    mods_[static_cast<std::size_t>(module)]->inq.push(readyAt, pkg);
    wakeAt(readyAt);
  }

  void fill(int module, std::uint64_t line, SimTime readyAt) {
    fillq_.push(readyAt, Fill{module, line});
    wakeAt(readyAt);
  }

  std::uint64_t tagHits() const {
    std::uint64_t s = 0;
    for (const auto& mod : mods_) s += mod->tags.hits;
    return s;
  }
  std::uint64_t tagMisses() const {
    std::uint64_t s = 0;
    for (const auto& mod : mods_) s += mod->tags.misses;
    return s;
  }

 protected:
  SimTime tick(SimTime now) override {
    while (fillq_.ready(now)) {
      Fill f = fillq_.pop(now);
      Module& mod = *mods_[static_cast<std::size_t>(f.module)];
      mod.tags.install(
          static_cast<std::uint32_t>(f.line) *
          static_cast<std::uint32_t>(m_.cfg.cacheLineBytes));
      auto it = mod.mshr.find(f.line);
      XMT_CHECK(it != mod.mshr.end());
      for (const Package& waiter : it->second) serve(waiter, now);
      mod.mshr.erase(it);
    }
    SimTime next = -1;
    auto consider = [&](SimTime t) {
      if (t >= 0 && (next < 0 || t < next)) next = t;
    };
    for (std::size_t mi = 0; mi < mods_.size(); ++mi) {
      Module& mod = *mods_[mi];
      if (mod.inq.ready(now)) {
        Package pkg = mod.inq.pop(now);  // one request per module per cycle
        process(mod, static_cast<int>(mi), pkg, now);
      }
      if (mod.inq.ready(now))
        consider(clock().nextEdge(now));
      else
        consider(mod.inq.nextReadyTime());
    }
    consider(fillq_.nextReadyTime());
    return next;
  }

 private:
  struct Module {
    Module(int lines, int assoc, int lineBytes)
        : tags(lines, assoc, lineBytes) {}
    TimedQueue<Package> inq;
    TagCache tags;
    std::map<std::uint64_t, std::vector<Package>> mshr;
  };

  void process(Module& mod, int moduleIdx, const Package& pkg, SimTime now) {
    std::uint64_t line = mod.tags.lineOf(pkg.addr);
    auto it = mod.mshr.find(line);
    if (it != mod.mshr.end()) {
      // A miss to this line is outstanding: queue behind it to preserve
      // same-line (and thus same-address) order.
      it->second.push_back(pkg);
      return;
    }
    if (pkg.isStore()) {
      // Write-through, no-allocate: performed at service time. DRAM
      // write-back traffic is not modelled (see DESIGN.md).
      serve(pkg, now);
      return;
    }
    if (mod.tags.lookup(pkg.addr)) {
      serve(pkg, now);
      return;
    }
    mod.mshr.emplace(line, std::vector<Package>{pkg});
    m_.tracePkg("dram", pkg, now);
    m_.dramRequest(moduleIdx, line, now);
  }

  // Performs the functional access and sends the response.
  void serve(Package pkg, SimTime now) {
    SparseMemory& mem = m_.fm.memory();
    switch (pkg.kind) {
      case PkgKind::kLoadWord:
      case PkgKind::kPrefetch:
      case PkgKind::kReadOnlyLoad:
        pkg.value = mem.readWord(pkg.addr);
        break;
      case PkgKind::kLoadByte:
        pkg.value = mem.readByte(pkg.addr);
        break;
      case PkgKind::kStoreWord:
      case PkgKind::kStoreNbWord:
        mem.writeWord(pkg.addr, pkg.value);
        break;
      case PkgKind::kStoreByte:
        mem.writeByte(pkg.addr, static_cast<std::uint8_t>(pkg.value));
        break;
      case PkgKind::kPsm:
        pkg.value = mem.fetchAdd(pkg.addr, pkg.value);
        break;
    }
    m_.tracePkg("cache", pkg, now);
    m_.sendResponse(pkg, now + m_.cfg.cacheHitLatency * clock().period());
  }

  ModelCore& m_;
  std::vector<std::unique_ptr<Module>> mods_;
  TimedQueue<Fill> fillq_;
};

// ---------------------------------------------------------------------------
// DramActor: per-channel latency + bandwidth model ("DRAM is modeled as
// simple latency").
// ---------------------------------------------------------------------------

class DramActor : public TickingActor {
 public:
  DramActor(ModelCore& m, ClockDomain& clk)
      : TickingActor("dram", m.sched, clk), m_(m) {
    chq_.resize(static_cast<std::size_t>(m.cfg.dramChannels));
    busyUntil_.assign(static_cast<std::size_t>(m.cfg.dramChannels), 0);
  }

  void request(int module, std::uint64_t line, SimTime now) {
    std::size_t ch =
        static_cast<std::size_t>(module % m_.cfg.dramChannels);
    chq_[ch].push(now, Req{module, line});
    ++m_.stats.dramRequests;
    wakeAt(now);
  }

 protected:
  SimTime tick(SimTime now) override {
    SimTime next = -1;
    auto consider = [&](SimTime t) {
      if (t >= 0 && (next < 0 || t < next)) next = t;
    };
    for (std::size_t ch = 0; ch < chq_.size(); ++ch) {
      if (chq_[ch].ready(now) && now >= busyUntil_[ch]) {
        Req r = chq_[ch].pop(now);
        busyUntil_[ch] =
            now + m_.cfg.dramServiceInterval * clock().period();
        m_.caches->fill(r.module, r.line,
                        now + m_.cfg.dramLatency * clock().period());
      }
      if (!chq_[ch].empty()) {
        SimTime t = chq_[ch].nextReadyTime();
        if (t < busyUntil_[ch]) t = busyUntil_[ch];
        consider(t);
      }
    }
    return next;
  }

 private:
  struct Req {
    int module;
    std::uint64_t line;
  };
  ModelCore& m_;
  std::vector<TimedQueue<Req>> chq_;
  std::vector<SimTime> busyUntil_;
};

// ---------------------------------------------------------------------------
// SpawnStarter: one-shot actor firing when the instruction broadcast
// completes; flips every TCU into dispatch mode.
// ---------------------------------------------------------------------------

class SpawnStarter : public Actor {
 public:
  explicit SpawnStarter(ModelCore& m) : Actor("spawnstarter"), m_(m) {}
  void notify(SimTime now) override {
    for (auto& c : m_.clusters) {
      c->beginSpawn(m_.master->ctx, now);
      c->wakeAt(now + 1);
    }
  }

 private:
  ModelCore& m_;
};

// ---------------------------------------------------------------------------
// SamplerActor: periodic activity plug-in callback.
// ---------------------------------------------------------------------------

class SamplerActor : public TickingActor {
 public:
  SamplerActor(ModelCore& m, RuntimeControl& rc, ActivityPlugin* plugin,
               std::uint64_t periodCycles, ClockDomain& clk)
      : TickingActor("sampler", m.sched, clk),
        m_(m),
        rc_(rc),
        plugin_(plugin),
        periodCycles_(periodCycles) {}

 protected:
  SimTime tick(SimTime now) override {
    if (m_.halted) return -1;
    plugin_->onInterval(rc_);
    return now + static_cast<SimTime>(periodCycles_) * clock().period();
  }

 private:
  ModelCore& m_;
  RuntimeControl& rc_;
  ActivityPlugin* plugin_;
  std::uint64_t periodCycles_;
};

// ---------------------------------------------------------------------------
// ModelCore implementation.
// ---------------------------------------------------------------------------

ModelCore::ModelCore(FuncModel& funcModel, const XmtConfig& config,
                     Stats& statsRef)
    : fm(funcModel),
      cfg(config),
      stats(statsRef),
      masterClk("core", config.coreGhz),
      icnClk("icn", config.icnGhz),
      cacheClk("cache", config.cacheGhz),
      dramClk("dram", config.dramGhz) {
  cfg.validate();
  stats.perCluster.assign(static_cast<std::size_t>(cfg.clusters),
                          ClusterActivity{});
  for (int i = 0; i < cfg.clusters; ++i)
    clusterClk.push_back(std::make_unique<ClockDomain>(
        "cluster" + std::to_string(i), cfg.coreGhz));
  icn = std::make_unique<IcnActor>(*this, icnClk);
  caches = std::make_unique<CacheActor>(*this, cacheClk);
  dram = std::make_unique<DramActor>(*this, dramClk);
  psUnit = std::make_unique<PsUnitActor>(*this, masterClk);
  master = std::make_unique<MasterActor>(*this, masterClk);
  for (int i = 0; i < cfg.clusters; ++i)
    clusters.push_back(
        std::make_unique<ClusterActor>(*this, i, *clusterClk[static_cast<std::size_t>(i)]));
  spawnStarter = std::make_unique<SpawnStarter>(*this);
}

void ModelCore::commit(int cluster, int tcu, const Instruction& in,
                       std::uint32_t pc, std::uint32_t addr, SimTime now) {
  stats.countInstruction(in);
  if (cluster >= 0) {
    auto& a = stats.perCluster[static_cast<std::size_t>(cluster)];
    ++a.instructions;
  }
  if (stats.instructions > cfg.maxInstructions)
    throw SimError("instruction limit exceeded (" +
                   std::to_string(cfg.maxInstructions) + ")");
  if (observer) observer->onCommit(cluster, tcu, in, pc, addr);
  if (trace) {
    TraceEvent ev;
    ev.time = now;
    ev.cluster = cluster;
    ev.tcu = tcu;
    ev.pc = pc;
    ev.in = &in;
    ev.memAddr = addr;
    ev.stage = "commit";
    trace->onEvent(ev);
  }
}

void ModelCore::tracePkg(const char* stage, const Package& pkg, SimTime now) {
  if (!trace) return;
  TraceEvent ev;
  ev.time = now;
  ev.cluster = pkg.srcCluster;
  ev.tcu = pkg.srcTcu;
  ev.memAddr = pkg.addr;
  ev.stage = stage;
  trace->onEvent(ev);
}

// Deterministic per-package latency for the asynchronous interconnect:
// mean = the synchronous pipeline depth, jittered by a hash of the package
// id. Continuous time — not aligned to any clock edge, which is exactly
// what the discrete-event engine supports and a discrete-time loop cannot.
SimTime ModelCore::asyncIcnLatency(std::uint64_t pkgId, int meanCycles) {
  double meanPs =
      static_cast<double>(meanCycles) * static_cast<double>(icnClk.period());
  std::uint64_t h = pkgId * 0x9e3779b97f4a7c15ull;
  h ^= h >> 31;
  double unit = static_cast<double>(h % 10007) / 10007.0;  // [0, 1)
  double factor = 1.0 + cfg.icnAsyncJitter * (2.0 * unit - 1.0);
  auto lat = static_cast<SimTime>(meanPs * factor);
  return lat < 1 ? 1 : lat;
}

void ModelCore::sendPackage(Package pkg, SimTime now) {
  ++stats.icnPackets;
  ++inFlight;
  int module = hashLineToModule(
      pkg.addr / static_cast<std::uint32_t>(cfg.cacheLineBytes),
      cfg.cacheModules, cfg.addressHashing);
  SimTime ready =
      cfg.icnAsync
          ? now + asyncIcnLatency(pkg.id, cfg.effectiveIcnSendLatency())
          : now + cfg.effectiveIcnSendLatency() * icnClk.period();
  caches->inject(pkg, ready, module);
}

void ModelCore::sendResponse(const Package& pkg, SimTime readyAt) {
  if (cfg.icnAsync) {
    // Asynchronous routers forward when ready: no return-port clocking or
    // rate limiting; delivery lands at a continuous-time instant.
    deliverResponse(
        pkg, readyAt + asyncIcnLatency(pkg.id ^ 0xa5a5u,
                                       cfg.effectiveIcnReturnLatency()));
    return;
  }
  icn->enqueueReturn(pkg, readyAt);
}

void ModelCore::deliverResponse(const Package& pkg, SimTime now) {
  if (pkg.srcCluster == kMasterCluster) {
    master->pkgInbox.push(now, pkg);
    master->wakeAt(now);
  } else {
    auto& c = clusters[static_cast<std::size_t>(pkg.srcCluster)];
    c->pkgInbox.push(now, pkg);
    c->wakeAt(now);
  }
}

void ModelCore::sendPsRequest(const PsReq& req, SimTime now) {
  ++inFlight;
  SimTime ready = now + cfg.psLatency * masterClk.period();
  psUnit->inbox.push(ready, req);
  psUnit->wakeAt(ready);
}

void ModelCore::deliverPsResponse(const PsResp& resp, SimTime readyAt) {
  auto& c = clusters[static_cast<std::size_t>(resp.cluster)];
  c->psInbox.push(readyAt, resp);
  c->wakeAt(readyAt);
}

void ModelCore::dramRequest(int module, std::uint64_t line, SimTime now) {
  dram->request(module, line, now);
}

void ModelCore::scheduleSpawnStart(SimTime when) {
  sched.schedule(spawnStarter.get(), when, kPhaseNegotiate);
}

void ModelCore::tcuParked(SimTime now) {
  ++parkedCount;
  if (parkedCount == cfg.totalTcus()) {
    spawnActive = false;
    master->resumeFromSpawn(now);
  }
}

void ModelCore::doHalt(std::int32_t code) {
  halted = true;
  haltCode = code;
  sched.requestStop();
}

void ModelCore::syncCacheStats() {
  stats.cacheHits = caches->tagHits();
  stats.cacheMisses = caches->tagMisses();
  stats.masterCacheHits = master->cacheHits();
  stats.masterCacheMisses = master->cacheMisses();
  std::uint64_t roH = 0, roM = 0;
  for (const auto& c : clusters) {
    roH += c->roHits();
    roM += c->roMisses();
  }
  stats.roCacheHits = roH;
  stats.roCacheMisses = roM;
  stats.cycles = static_cast<std::uint64_t>(masterClk.cyclesAt(sched.now()));
  stats.simTime = sched.now();
}

bool ModelCore::quiescent() const {
  return !spawnActive && !halted && inFlight == 0 && master->runnable() &&
         master->outstandingStores() == 0;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// CycleModel facade.
// ---------------------------------------------------------------------------

CycleModel::CycleModel(FuncModel& funcModel, const XmtConfig& config,
                       Stats& stats)
    : core_(std::make_unique<detail::ModelCore>(funcModel, config, stats)) {}

CycleModel::~CycleModel() = default;

void CycleModel::setCommitObserver(CommitObserver* observer) {
  core_->observer = observer;
}

void CycleModel::setTraceSink(TraceSink* sink) { core_->trace = sink; }

void CycleModel::addActivityPlugin(ActivityPlugin* plugin,
                                   std::uint64_t periodCycles) {
  XMT_CHECK(plugin != nullptr && periodCycles > 0);
  core_->samplers.push_back(std::make_unique<detail::SamplerActor>(
      *core_, *this, plugin, periodCycles, core_->masterClk));
  if (core_->started)
    core_->samplers.back()->wakeAt(core_->sched.now() + 1);
}

CycleRunResult CycleModel::run(std::uint64_t maxCycles) {
  detail::ModelCore& m = *core_;
  if (!m.started) {
    m.started = true;
    m.master->start();
    for (auto& s : m.samplers) s->wakeAt(1);
  }
  // A previous run()'s cycle-budget stop may still sit in the event list if
  // that run ended early on a halt or checkpoint stop; withdraw it so it
  // cannot cut this run short.
  m.sched.cancelStops();
  if (maxCycles > 0) {
    std::int64_t target =
        m.masterClk.cyclesAt(m.sched.now()) +
        static_cast<std::int64_t>(maxCycles);
    m.sched.scheduleStop(m.masterClk.timeOfCycle(target));
  }
  bool stopped = m.sched.run();
  if (!stopped && !m.halted)
    throw SimError("simulation deadlock: event list drained before halt");
  m.syncCacheStats();
  CycleRunResult r;
  r.halted = m.halted;
  r.haltCode = m.haltCode;
  r.cycles = m.stats.cycles;
  r.simTime = m.sched.now();
  return r;
}

bool CycleModel::halted() const { return core_->halted; }
bool CycleModel::quiescent() const { return core_->quiescent(); }

const Context& CycleModel::masterContext() const {
  return core_->master->ctx;
}

void CycleModel::setMasterContext(const Context& ctx) {
  core_->master->ctx = ctx;
  core_->masterRestored = true;
}

void CycleModel::requestCheckpointStop(std::uint64_t minCycles) {
  core_->checkpointRequested = true;
  core_->checkpointMinCycles = minCycles;
  core_->checkpointTaken = false;
}

bool CycleModel::checkpointStopTaken() const {
  return core_->checkpointTaken;
}

const Stats& CycleModel::stats() const { return core_->stats; }
const XmtConfig& CycleModel::config() const { return core_->cfg; }
SimTime CycleModel::now() const { return core_->sched.now(); }

std::uint64_t CycleModel::coreCycles() const {
  return static_cast<std::uint64_t>(
      core_->masterClk.cyclesAt(core_->sched.now()));
}

void CycleModel::setClusterFrequency(int cluster, double ghz) {
  XMT_CHECK(cluster >= 0 && cluster < core_->cfg.clusters);
  core_->clusterClk[static_cast<std::size_t>(cluster)]->setFrequency(
      ghz, core_->sched.now());
  core_->clusters[static_cast<std::size_t>(cluster)]->wakeAt(
      core_->sched.now() + 1);
}

double CycleModel::clusterFrequency(int cluster) const {
  XMT_CHECK(cluster >= 0 && cluster < core_->cfg.clusters);
  return core_->clusterClk[static_cast<std::size_t>(cluster)]
      ->frequencyGhz();
}

void CycleModel::setClusterEnabled(int cluster, bool enabled) {
  XMT_CHECK(cluster >= 0 && cluster < core_->cfg.clusters);
  core_->clusterClk[static_cast<std::size_t>(cluster)]->setEnabled(
      enabled, core_->sched.now());
  core_->clusters[static_cast<std::size_t>(cluster)]->wakeAt(
      core_->sched.now() + 1);
}

void CycleModel::setIcnFrequency(double ghz) {
  core_->icnClk.setFrequency(ghz, core_->sched.now());
  core_->icn->wakeAt(core_->sched.now() + 1);
}

void CycleModel::setCacheFrequency(double ghz) {
  core_->cacheClk.setFrequency(ghz, core_->sched.now());
  core_->caches->wakeAt(core_->sched.now() + 1);
}

void CycleModel::setDramFrequency(double ghz) {
  core_->dramClk.setFrequency(ghz, core_->sched.now());
  core_->dram->wakeAt(core_->sched.now() + 1);
}

void CycleModel::requestStop() { core_->sched.requestStop(); }

Scheduler& CycleModel::scheduler() { return core_->sched; }

}  // namespace xmt
