#include "src/sim/cyclemodel.h"

#include <atomic>
#include <map>
#include <set>

#include "src/common/error.h"
#include "src/desim/pdes.h"
#include "src/desim/port.h"
#include "src/desim/ticking_actor.h"
#include "src/memsys/cache.h"
#include "src/memsys/hashing.h"
#include "src/memsys/package.h"
#include "src/sim/semantics.h"

namespace xmt {
namespace detail {

namespace {
// Which shard's event loop the current thread is executing. 0 is the hub
// (and the only value ever seen by the sequential engine, the coordinator
// thread between windows, and global-event fires). Outbound sends and the
// per-shard Stats accumulator key off it.
thread_local int tlsShardId = 0;
}  // namespace

// Prefix-sum unit traffic (dedicated network, separate from the ICN).
struct PsReq {
  std::int16_t cluster = 0;
  std::int16_t tcu = 0;
  std::uint8_t destReg = 0;
  std::uint8_t gr = 0;
  std::uint32_t inc = 0;
  bool isDispatch = false;  // virtual-thread ID allocation (join/chkid path)
};

struct PsResp {
  std::int16_t cluster = 0;
  std::int16_t tcu = 0;
  std::uint8_t destReg = 0;
  std::uint32_t value = 0;
  bool isDispatch = false;
  // Dispatch verdict, decided *at the PS unit* (id > $high at serve time).
  // Shipping it with the response keeps clusters from reading the global
  // register file, whose state is hub-local under PDES.
  bool park = false;
};

enum class WaitKind : std::uint8_t {
  kNone,
  kLoad,      // blocking load (lw/lbu) waiting for data
  kStoreAck,  // blocking store waiting for acknowledgement
  kPsm,       // prefix-sum-to-memory round trip
  kPbFill,    // load hit a pending prefetch-buffer entry
  kRoFill,    // read-only cache miss fill
  kFence,     // fence waiting for non-blocking stores to drain
  kPs,        // ps round trip to the global PS unit
  kDispatch,  // waiting for a virtual-thread ID grant
};

inline bool isMemWait(WaitKind k) {
  return k == WaitKind::kLoad || k == WaitKind::kStoreAck ||
         k == WaitKind::kPsm || k == WaitKind::kPbFill ||
         k == WaitKind::kRoFill || k == WaitKind::kFence;
}

// Cross-shard message buffers. A non-hub shard appends to its outbox during
// its window; the coordinator applies everything between windows. Ready
// times are computed by the *sender* (identically to the sequential path),
// so application is pure delivery.
struct PkgSend {
  Package pkg;
  SimTime ready = 0;
  int module = 0;
};
struct PsSend {
  PsReq req;
  SimTime ready = 0;
};
struct RetSend {
  Package pkg;
  SimTime ready = 0;
};
struct PsRespSend {
  PsResp resp;
  SimTime ready = 0;
};
struct ShardOutbox {
  std::vector<PkgSend> toCache;  // cluster -> shared cache modules
  std::vector<PsSend> toPs;      // cluster -> PS unit
};

// ---------------------------------------------------------------------------
// ReturnPort: the per-destination return tree of the synchronous
// mesh-of-trees. Replaces the former central IcnActor: each destination
// (cluster or master) owns its port and *replays* the ICN-edge rate metering
// locally when it ticks, which keeps the return path shard-local under PDES.
// The delivered sequence is a pure function of the (readyTime-ordered)
// contents, so sequential and PDES runs agree bit-for-bit.
// ---------------------------------------------------------------------------

struct ModelCore;

struct ReturnPort {
  TimedQueue<Package> q;
  SimTime cursor = 0;  // earliest ICN edge whose rate budget is still unspent

  /// Replays per-ICN-edge metering up to `now`: moves packages whose
  /// delivery edge has arrived into `inbox` (stamped with that edge).
  /// Returns the next ICN edge at which more work becomes deliverable,
  /// or -1 when the port is empty.
  SimTime drain(SimTime now, ModelCore& m, TimedQueue<Package>& inbox);
};

// ---------------------------------------------------------------------------
// ShardAdapter: glue between one shard's Scheduler and the PDES driver.
// ---------------------------------------------------------------------------

class ShardAdapter final : public PdesShard {
 public:
  ShardAdapter(ModelCore& m, int idx) : m_(m), idx_(idx) {}
  bool runWindow(SimTime end) override;
  void applyInbound() override;
  SimTime nextEventTime() override;

 private:
  ModelCore& m_;
  int idx_;
};

// ---------------------------------------------------------------------------
// ModelCore: shared state + wiring between all component actors.
// ---------------------------------------------------------------------------

struct ModelCore {
  ModelCore(FuncModel& funcModel, const XmtConfig& config, Stats& statsRef,
            int pdesShards);

  FuncModel& fm;
  XmtConfig cfg;
  Stats& stats;

  // Shard 0 ("hub") owns the master, PS unit, caches, DRAM and samplers;
  // clusters are dealt round-robin over shards 1..shards-1. Sequential mode
  // is the degenerate single-shard case: one scheduler, no channels.
  int shards = 1;
  std::vector<std::unique_ptr<Scheduler>> scheds;
  Scheduler& hub() { return *scheds[0]; }
  int shardOfCluster(int c) const {
    return shards == 1 ? 0 : 1 + c % (shards - 1);
  }

  ClockDomain masterClk;
  ClockDomain icnClk;
  ClockDomain cacheClk;
  ClockDomain dramClk;
  std::vector<std::unique_ptr<ClockDomain>> clusterClk;

  std::vector<std::unique_ptr<ClusterActor>> clusters;
  std::unique_ptr<MasterActor> master;
  std::unique_ptr<CacheActor> caches;
  std::unique_ptr<DramActor> dram;
  std::unique_ptr<PsUnitActor> psUnit;
  std::unique_ptr<SpawnStarter> spawnStarter;
  std::unique_ptr<SpawnJoiner> spawnJoiner;
  std::vector<std::unique_ptr<SamplerActor>> samplers;

  CommitObserver* observer = nullptr;
  TraceSink* trace = nullptr;

  // Spawn hardware state (hub-written; clusters read spawnStart/spawnEnd
  // only while a spawn is active, i.e. strictly between the barrier-ordered
  // broadcast fire and the joiner — never concurrently with the writes).
  bool spawnActive = false;
  std::uint32_t spawnStart = 0;
  std::uint32_t spawnEnd = 0;
  int parkedCount = 0;          // hub-only (maintained at the PS unit)
  SimTime parkLastTime = -1;    // latest park-consumption edge this spawn
  SimTime pendingSpawnStartAt = -1;  // broadcast completion not yet fired

  bool halted = false;
  std::int32_t haltCode = 0;
  // Outstanding packages + ps requests. Relaxed atomics: the ids and the
  // count are bookkeeping read cluster-locally or at quiescence, never an
  // ordering channel.
  std::atomic<std::uint64_t> inFlight{0};
  std::atomic<std::uint64_t> pkgSeq{0};
  bool started = false;
  bool masterRestored = false;  // checkpoint resume: keep the restored ctx

  bool checkpointRequested = false;
  std::uint64_t checkpointMinCycles = 0;
  bool checkpointTaken = false;

  // PDES plumbing. shardStats[k] accumulates shard k's counters during a
  // run and is folded into `stats` (in shard order) when the run returns;
  // sequential mode writes `stats` directly.
  std::vector<Stats> shardStats;
  std::vector<std::unique_ptr<ShardAdapter>> adapters;
  PdesDriver* driver = nullptr;  // alive only inside a PDES run()
  std::vector<ShardOutbox> outbox;             // by source shard; [0] unused
  std::vector<std::vector<RetSend>> retChan;   // by destination cluster
  std::vector<std::vector<PsRespSend>> psChan; // by destination cluster

  Stats& st() {
    return shardStats.empty()
               ? stats
               : shardStats[static_cast<std::size_t>(tlsShardId)];
  }

  // Wiring helpers (defined after the actor classes).
  void commit(int cluster, int tcu, const Instruction& in, std::uint32_t pc,
              std::uint32_t addr, SimTime now);
  void tracePkg(const char* stage, const Package& pkg, SimTime now);
  void sendPackage(Package pkg, SimTime now);
  void sendResponse(const Package& pkg, SimTime readyAt);
  void deliverResponse(const Package& pkg, SimTime now);
  void routeReturn(const Package& pkg, SimTime ready);
  void sendPsRequest(const PsReq& req, SimTime now);
  void deliverPsResponse(const PsResp& resp, SimTime readyAt);
  void dramRequest(int module, std::uint64_t line, SimTime now);
  SimTime asyncIcnLatency(std::uint64_t pkgId, int meanCycles);
  void scheduleSpawnStart(SimTime when);
  void registerSpawnGlobal();
  void noteParked(int cluster, SimTime respReady);
  void applyInboundFor(int shard);
  SimTime pdesLookahead() const;
  void doHalt(std::int32_t code);
  void syncCacheStats();
  bool quiescent() const;
};

// ---------------------------------------------------------------------------
// ClusterActor: macro-actor over one cluster's TCUs, shared MDU/FPU pools,
// the read-only cache, and the per-TCU prefetch buffers.
// ---------------------------------------------------------------------------

class ClusterActor : public TickingActor {
 public:
  ClusterActor(ModelCore& m, int id, Scheduler& sched, ClockDomain& clk)
      : TickingActor("cluster" + std::to_string(id), sched, clk),
        m_(m),
        id_(id),
        roCache_(m.cfg.roCacheLines, 1, m.cfg.cacheLineBytes),
        mduBusy_(static_cast<std::size_t>(m.cfg.mduPerCluster), 0),
        fpuBusy_(static_cast<std::size_t>(m.cfg.fpuPerCluster), 0) {
    tcus_.resize(static_cast<std::size_t>(m.cfg.tcusPerCluster));
    for (auto& t : tcus_)
      t.pb.resize(static_cast<std::size_t>(m.cfg.prefetchEntries));
  }

  TimedQueue<Package> pkgInbox;
  TimedQueue<PsResp> psInbox;
  ReturnPort retPort;

  /// Spawn onset: broadcast master registers, reset per-section caches,
  /// request virtual-thread IDs for every TCU.
  void beginSpawn(const Context& masterCtx, SimTime now) {
    roCache_.invalidateAll();
    for (std::size_t i = 0; i < tcus_.size(); ++i) {
      Tcu& t = tcus_[i];
      XMT_CHECK(t.outstandingStores == 0);
      t.ctx.regs = masterCtx.regs;
      t.phase = Phase::kBlocked;
      t.wait = WaitKind::kDispatch;
      t.waitStart = now;
      for (auto& e : t.pb) e = PbEntry{};
      PsReq req;
      req.cluster = static_cast<std::int16_t>(id_);
      req.tcu = static_cast<std::int16_t>(i);
      req.gr = kGrNextId;
      req.inc = 1;
      req.isDispatch = true;
      m_.sendPsRequest(req, now);
    }
  }

  std::uint64_t roHits() const { return roCache_.hits; }
  std::uint64_t roMisses() const { return roCache_.misses; }

 protected:
  SimTime tick(SimTime now) override {
    SimTime rpNext = retPort.drain(now, m_, pkgInbox);
    while (pkgInbox.ready(now)) {
      Package pkg = pkgInbox.pop(now);
      handleResponse(pkg, now);
    }
    while (psInbox.ready(now)) {
      PsResp r = psInbox.pop(now);
      handlePsResp(r, now);
    }

    int memSlots = m_.cfg.clusterInjectRate;
    bool anyIssued = false;
    const int n = static_cast<int>(tcus_.size());
    for (int i = 0; i < n; ++i) {
      Tcu& t = tcus_[static_cast<std::size_t>((rr_ + i) % n)];
      if (t.phase == Phase::kWaitUntil && now >= t.readyAt)
        t.phase = Phase::kRunning;
      if (t.phase != Phase::kRunning) continue;
      if (issueOne(t, (rr_ + i) % n, now, memSlots)) anyIssued = true;
    }
    rr_ = (rr_ + 1) % n;
    if (anyIssued)
      ++m_.st().perCluster[static_cast<std::size_t>(id_)].activeCycles;

    // Next wanted time.
    SimTime next = -1;
    auto consider = [&](SimTime t) {
      if (t >= 0 && (next < 0 || t < next)) next = t;
    };
    for (const Tcu& t : tcus_) {
      if (t.phase == Phase::kRunning) consider(clock().nextEdge(now));
      else if (t.phase == Phase::kWaitUntil) consider(t.readyAt);
    }
    consider(pkgInbox.nextReadyTime());
    consider(psInbox.nextReadyTime());
    consider(rpNext);
    return next;
  }

 private:
  struct PbEntry {
    std::uint32_t addr = 0;
    std::uint32_t value = 0;
    bool valid = false;
    bool pending = false;
    std::uint64_t pkgId = 0;
    std::uint64_t lastUse = 0;   // for LRU replacement
    std::uint64_t allocSeq = 0;  // for FIFO replacement
  };

  enum class Phase : std::uint8_t {
    kIdle, kRunning, kWaitUntil, kBlocked, kParked
  };

  struct Tcu {
    Context ctx;
    Phase phase = Phase::kIdle;
    WaitKind wait = WaitKind::kNone;
    SimTime readyAt = 0;
    SimTime waitStart = 0;
    std::uint8_t waitReg = 0;
    std::uint64_t waitPkgId = 0;
    int outstandingStores = 0;
    bool joinPending = false;  // join waiting for the implicit store fence
    std::multiset<std::uint32_t> storeAddrs;  // word-aligned, in flight
    std::vector<PbEntry> pb;
  };

  void requestDispatch(Tcu& t, int tcuIdx, SimTime now) {
    PsReq req;
    req.cluster = static_cast<std::int16_t>(id_);
    req.tcu = static_cast<std::int16_t>(tcuIdx);
    req.gr = kGrNextId;
    req.inc = 1;
    req.isDispatch = true;
    m_.sendPsRequest(req, now);
    t.phase = Phase::kBlocked;
    t.wait = WaitKind::kDispatch;
    t.waitStart = now;
  }

  PbEntry* findPb(Tcu& t, std::uint32_t addr) {
    for (auto& e : t.pb)
      if ((e.valid || e.pending) && e.addr == addr) return &e;
    return nullptr;
  }

  // Allocates a prefetch-buffer entry; never evicts pending entries.
  PbEntry* allocPb(Tcu& t) {
    PbEntry* victim = nullptr;
    for (auto& e : t.pb) {
      if (e.pending) continue;
      if (!e.valid) return &e;
      if (victim == nullptr) {
        victim = &e;
        continue;
      }
      if (m_.cfg.prefetchPolicy == "lru") {
        if (e.lastUse < victim->lastUse) victim = &e;
      } else {  // fifo
        if (e.allocSeq < victim->allocSeq) victim = &e;
      }
    }
    return victim;
  }

  void resume(Tcu& t, SimTime now) {
    if (isMemWait(t.wait)) {
      SimTime waited = now - t.waitStart;
      m_.st().memWaitCycles +=
          static_cast<std::uint64_t>(waited / clock().period());
    }
    t.wait = WaitKind::kNone;
    t.phase = Phase::kRunning;
  }

  Package makePkg(PkgKind kind, std::uint32_t addr, std::uint32_t value,
                  int tcuIdx, std::uint8_t destReg, SimTime now) {
    Package p;
    p.kind = kind;
    p.addr = addr;
    p.value = value;
    p.srcCluster = static_cast<std::int16_t>(id_);
    p.srcTcu = static_cast<std::int16_t>(tcuIdx);
    p.destReg = destReg;
    p.id = 1 + m_.pkgSeq.fetch_add(1, std::memory_order_relaxed);
    p.issueTime = now;
    return p;
  }

  // Issues one instruction for TCU `t`. Returns false on a structural
  // stall (retry next cycle, no architectural effect).
  bool issueOne(Tcu& t, int tcuIdx, SimTime now, int& memSlots) {
    const std::uint32_t pc = t.ctx.pc;
    if (pc < m_.spawnStart || pc >= m_.spawnEnd)
      throw SimError(
          "TCU fetched an instruction outside the broadcast spawn region "
          "(pc=0x" + std::to_string(pc) +
          "); mislaid basic block? (cf. paper Fig. 9)");
    const Instruction& in = m_.fm.fetch(pc);
    auto& act = m_.st().perCluster[static_cast<std::size_t>(id_)];

    switch (FuncModel::classify(in)) {
      case FuncModel::StepClass::kSimple: {
        FuKind fu = opInfo(in.op).fu;
        if (fu == FuKind::kMdu || fu == FuKind::kFpu) {
          auto& busy = (fu == FuKind::kMdu) ? mduBusy_ : fpuBusy_;
          int lat = (fu == FuKind::kMdu) ? m_.cfg.mduLatency
                                         : m_.cfg.fpuLatency;
          std::size_t unit = busy.size();
          for (std::size_t u = 0; u < busy.size(); ++u)
            if (busy[u] <= now) { unit = u; break; }
          if (unit == busy.size()) return false;  // all shared units busy
          busy[unit] = now + clock().period();    // pipelined: 1-cycle issue
          m_.fm.execSimple(t.ctx, in);
          t.phase = Phase::kWaitUntil;
          t.readyAt = now + lat * clock().period();
          if (fu == FuKind::kMdu) ++act.mduOps; else ++act.fpuOps;
        } else {
          m_.fm.execSimple(t.ctx, in);
          ++act.aluOps;
        }
        m_.commit(id_, tcuIdx, in, pc, 0, now);
        return true;
      }

      case FuncModel::StepClass::kMemory:
        return issueMemory(t, tcuIdx, in, pc, now, memSlots);

      case FuncModel::StepClass::kPs: {
        PsReq req;
        req.cluster = static_cast<std::int16_t>(id_);
        req.tcu = static_cast<std::int16_t>(tcuIdx);
        req.destReg = in.rd;
        req.gr = in.rt;
        req.inc = t.ctx.reg(in.rd);
        m_.sendPsRequest(req, now);
        t.ctx.pc += 4;
        t.phase = Phase::kBlocked;
        t.wait = WaitKind::kPs;
        t.waitStart = now;
        m_.commit(id_, tcuIdx, in, pc, 0, now);
        return true;
      }

      case FuncModel::StepClass::kPsm: {
        if (memSlots == 0) return false;
        --memSlots;
        std::uint32_t addr = m_.fm.effectiveAddr(t.ctx, in);
        Package p = makePkg(PkgKind::kPsm, addr, t.ctx.reg(in.rt), tcuIdx,
                            in.rt, now);
        m_.sendPackage(p, now);
        ++m_.st().psmRequests;
        t.ctx.pc += 4;
        t.phase = Phase::kBlocked;
        t.wait = WaitKind::kPsm;
        t.waitStart = now;
        ++act.memOps;
        m_.commit(id_, tcuIdx, in, pc, addr, now);
        return true;
      }

      case FuncModel::StepClass::kSpawn:
        throw SimError(
            "nested spawn reached the spawn hardware (the compiler must "
            "serialize nested spawns)");

      case FuncModel::StepClass::kJoin: {
        // Virtual thread complete. The end of a virtual thread orders
        // memory operations (XMT memory model), so join is an implicit
        // fence: outstanding non-blocking stores drain before the TCU's
        // dispatch hardware performs the ps + chkid sequence for the next
        // thread ID.
        m_.commit(id_, tcuIdx, in, pc, 0, now);
        if (t.outstandingStores != 0) {
          t.phase = Phase::kBlocked;
          t.wait = WaitKind::kFence;
          t.waitStart = now;
          t.joinPending = true;
          return true;
        }
        requestDispatch(t, tcuIdx, now);
        return true;
      }

      case FuncModel::StepClass::kHalt:
        throw SimError("halt executed inside a spawn block");
    }
    return false;
  }

  bool issueMemory(Tcu& t, int tcuIdx, const Instruction& in,
                   std::uint32_t pc, SimTime now, int& memSlots) {
    auto& act = m_.st().perCluster[static_cast<std::size_t>(id_)];
    std::uint32_t addr = m_.fm.effectiveAddr(t.ctx, in);
    switch (in.op) {
      case Op::kFence:
        t.ctx.pc += 4;
        m_.commit(id_, tcuIdx, in, pc, 0, now);
        if (t.outstandingStores != 0) {
          t.phase = Phase::kBlocked;
          t.wait = WaitKind::kFence;
          t.waitStart = now;
        }
        return true;

      case Op::kPref: {
        if (t.pb.empty() || findPb(t, addr) != nullptr) {
          t.ctx.pc += 4;
          m_.commit(id_, tcuIdx, in, pc, addr, now);
          return true;
        }
        if (memSlots == 0) return false;
        PbEntry* e = allocPb(t);
        if (e == nullptr) {  // every entry pending: drop the prefetch
          t.ctx.pc += 4;
          m_.commit(id_, tcuIdx, in, pc, addr, now);
          return true;
        }
        --memSlots;
        Package p = makePkg(PkgKind::kPrefetch, addr, 0, tcuIdx, 0, now);
        *e = PbEntry{};
        e->addr = addr;
        e->pending = true;
        e->pkgId = p.id;
        e->allocSeq = ++pbSeq_;
        e->lastUse = pbSeq_;
        m_.sendPackage(p, now);
        t.ctx.pc += 4;
        ++act.memOps;
        m_.commit(id_, tcuIdx, in, pc, addr, now);
        return true;
      }

      case Op::kLw:
      case Op::kLbu: {
        // XMT memory-model rule 1: same-source same-address operations are
        // never reordered. A load that would overtake this TCU's own
        // in-flight non-blocking store to the same word stalls here.
        std::uint32_t key = addr & ~3u;
        if (t.storeAddrs.count(key) != 0) return false;
        if (in.op == Op::kLw) {
          PbEntry* e = findPb(t, addr);
          if (e != nullptr && e->valid) {
            t.ctx.setReg(in.rt, e->value);
            e->valid = false;  // consume on use
            e->addr = 0;
            ++m_.st().prefetchBufferHits;
            t.ctx.pc += 4;
            m_.commit(id_, tcuIdx, in, pc, addr, now);
            return true;
          }
          if (e != nullptr && e->pending) {
            t.ctx.pc += 4;
            t.phase = Phase::kBlocked;
            t.wait = WaitKind::kPbFill;
            t.waitPkgId = e->pkgId;
            t.waitReg = in.rt;
            t.waitStart = now;
            m_.commit(id_, tcuIdx, in, pc, addr, now);
            return true;
          }
        }
        if (memSlots == 0) return false;
        --memSlots;
        Package p = makePkg(
            in.op == Op::kLw ? PkgKind::kLoadWord : PkgKind::kLoadByte, addr,
            0, tcuIdx, in.rt, now);
        m_.sendPackage(p, now);
        t.ctx.pc += 4;
        t.phase = Phase::kBlocked;
        t.wait = WaitKind::kLoad;
        t.waitStart = now;
        ++act.memOps;
        m_.commit(id_, tcuIdx, in, pc, addr, now);
        return true;
      }

      case Op::kRolw: {
        if (roCache_.contains(addr)) {
          roCache_.lookup(addr);  // count the hit, touch LRU
          t.ctx.setReg(in.rt, m_.fm.memory().readWord(addr));
          t.ctx.pc += 4;
          t.phase = Phase::kWaitUntil;
          t.readyAt = now + 2 * clock().period();
          m_.commit(id_, tcuIdx, in, pc, addr, now);
          return true;
        }
        if (memSlots == 0) return false;  // retry without a counted miss
        roCache_.lookup(addr);            // count the miss
        --memSlots;
        Package p =
            makePkg(PkgKind::kReadOnlyLoad, addr, 0, tcuIdx, in.rt, now);
        m_.sendPackage(p, now);
        t.ctx.pc += 4;
        t.phase = Phase::kBlocked;
        t.wait = WaitKind::kRoFill;
        t.waitPkgId = p.id;
        t.waitReg = in.rt;
        t.waitStart = now;
        ++act.memOps;
        m_.commit(id_, tcuIdx, in, pc, addr, now);
        return true;
      }

      case Op::kSw:
      case Op::kSb: {
        if (memSlots == 0) return false;
        --memSlots;
        Package p = makePkg(
            in.op == Op::kSw ? PkgKind::kStoreWord : PkgKind::kStoreByte,
            addr, t.ctx.reg(in.rt), tcuIdx, 0, now);
        m_.sendPackage(p, now);
        t.ctx.pc += 4;
        t.phase = Phase::kBlocked;
        t.wait = WaitKind::kStoreAck;
        t.waitStart = now;
        ++act.memOps;
        m_.commit(id_, tcuIdx, in, pc, addr, now);
        return true;
      }

      case Op::kSwnb: {
        if (memSlots == 0) return false;
        --memSlots;
        Package p = makePkg(PkgKind::kStoreNbWord, addr, t.ctx.reg(in.rt),
                            tcuIdx, 0, now);
        ++t.outstandingStores;
        t.storeAddrs.insert(addr & ~3u);
        ++m_.st().nonBlockingStores;
        m_.sendPackage(p, now);
        t.ctx.pc += 4;
        ++act.memOps;
        m_.commit(id_, tcuIdx, in, pc, addr, now);
        return true;
      }

      default:
        throw InternalError("unhandled memory op in cluster issue");
    }
  }

  void handleResponse(const Package& pkg, SimTime now) {
    Tcu& t = tcus_[static_cast<std::size_t>(pkg.srcTcu)];
    switch (pkg.kind) {
      case PkgKind::kLoadWord:
      case PkgKind::kLoadByte:
        XMT_CHECK(t.phase == Phase::kBlocked && t.wait == WaitKind::kLoad);
        t.ctx.setReg(pkg.destReg, pkg.value);
        resume(t, now);
        break;
      case PkgKind::kStoreWord:
      case PkgKind::kStoreByte:
        XMT_CHECK(t.phase == Phase::kBlocked &&
                  t.wait == WaitKind::kStoreAck);
        resume(t, now);
        break;
      case PkgKind::kStoreNbWord: {
        XMT_CHECK(t.outstandingStores > 0);
        --t.outstandingStores;
        auto it = t.storeAddrs.find(pkg.addr & ~3u);
        XMT_CHECK(it != t.storeAddrs.end());
        t.storeAddrs.erase(it);
        if (t.phase == Phase::kBlocked && t.wait == WaitKind::kFence &&
            t.outstandingStores == 0) {
          if (t.joinPending) {
            t.joinPending = false;
            SimTime waited = now - t.waitStart;
            m_.st().memWaitCycles +=
                static_cast<std::uint64_t>(waited / clock().period());
            requestDispatch(t, static_cast<int>(pkg.srcTcu), now);
          } else {
            resume(t, now);
          }
        }
        break;
      }
      case PkgKind::kPsm:
        XMT_CHECK(t.phase == Phase::kBlocked && t.wait == WaitKind::kPsm);
        t.ctx.setReg(pkg.destReg, pkg.value);
        resume(t, now);
        break;
      case PkgKind::kPrefetch: {
        for (auto& e : t.pb) {
          if (e.pending && e.pkgId == pkg.id) {
            e.pending = false;
            e.valid = true;
            e.value = pkg.value;
            break;
          }
        }
        if (t.phase == Phase::kBlocked && t.wait == WaitKind::kPbFill &&
            t.waitPkgId == pkg.id) {
          t.ctx.setReg(t.waitReg, pkg.value);
          // Consume the entry the blocked load was waiting on. Hitting a
          // pending entry is still a buffer hit — the prefetch absorbed
          // (part of) the latency.
          for (auto& e : t.pb)
            if (e.valid && e.pkgId == pkg.id) {
              e.valid = false;
              e.addr = 0;
            }
          ++m_.st().prefetchBufferHits;
          resume(t, now);
        }
        break;
      }
      case PkgKind::kReadOnlyLoad:
        roCache_.install(pkg.addr);
        if (t.phase == Phase::kBlocked && t.wait == WaitKind::kRoFill &&
            t.waitPkgId == pkg.id) {
          t.ctx.setReg(t.waitReg, pkg.value);
          resume(t, now);
        }
        break;
    }
    std::uint64_t prev = m_.inFlight.fetch_sub(1, std::memory_order_relaxed);
    XMT_CHECK(prev > 0);
  }

  void handlePsResp(const PsResp& r, SimTime now) {
    Tcu& t = tcus_[static_cast<std::size_t>(r.tcu)];
    std::uint64_t prev = m_.inFlight.fetch_sub(1, std::memory_order_relaxed);
    XMT_CHECK(prev > 0);
    if (r.isDispatch) {
      XMT_CHECK(t.phase == Phase::kBlocked &&
                t.wait == WaitKind::kDispatch);
      if (!r.park) {
        t.ctx.setReg(kTid, r.value);
        t.ctx.pc = m_.spawnStart;
        t.phase = Phase::kRunning;
        t.wait = WaitKind::kNone;
        ++m_.st().virtualThreads;
      } else {
        // The all-parked join condition is detected hub-side at the PS unit
        // (noteParked); the cluster only retires the TCU.
        t.phase = Phase::kParked;
        t.wait = WaitKind::kNone;
      }
    } else {
      XMT_CHECK(t.phase == Phase::kBlocked && t.wait == WaitKind::kPs);
      t.ctx.setReg(r.destReg, r.value);
      resume(t, now);
    }
  }

  ModelCore& m_;
  int id_;
  std::vector<Tcu> tcus_;
  TagCache roCache_;
  std::vector<SimTime> mduBusy_;
  std::vector<SimTime> fpuBusy_;
  int rr_ = 0;
  std::uint64_t pbSeq_ = 0;
};

// ---------------------------------------------------------------------------
// MasterActor: the serial Master TCU with its private (write-through) cache
// and dedicated functional units.
// ---------------------------------------------------------------------------

class MasterActor : public TickingActor {
 public:
  MasterActor(ModelCore& m, Scheduler& sched, ClockDomain& clk)
      : TickingActor("master", sched, clk),
        m_(m),
        cache_(m.cfg.masterCacheKB * 1024 / m.cfg.cacheLineBytes,
               m.cfg.cacheAssoc, m.cfg.cacheLineBytes) {}

  TimedQueue<Package> pkgInbox;
  ReturnPort retPort;

  Context ctx;

  void start() {
    if (!m_.masterRestored) {
      ctx.pc = m_.fm.program().entry;
      ctx.setReg(kSp, kStackTop);
    }
    phase_ = Phase::kRunning;
    wakeAt(scheduler().now() + 1);
  }

  void resumeFromSpawn(SimTime now) {
    XMT_CHECK(phase_ == Phase::kWaitSpawn);
    ctx.pc = m_.spawnEnd;
    cache_.invalidateAll();  // TCUs may have written anywhere
    phase_ = Phase::kWaitUntil;
    readyAt_ = now + clock().period();
    wakeAt(readyAt_);
  }

  bool runnable() const { return phase_ == Phase::kRunning; }
  int outstandingStores() const { return outstandingStores_; }
  std::uint64_t cacheHits() const { return cache_.hits; }
  std::uint64_t cacheMisses() const { return cache_.misses; }

 protected:
  SimTime tick(SimTime now) override {
    SimTime rpNext = retPort.drain(now, m_, pkgInbox);
    while (pkgInbox.ready(now)) {
      Package pkg = pkgInbox.pop(now);
      handleResponse(pkg, now);
    }
    if (phase_ == Phase::kWaitUntil && now >= readyAt_)
      phase_ = Phase::kRunning;
    if (phase_ == Phase::kRunning && !m_.halted) {
      if (m_.checkpointRequested && !m_.checkpointTaken && m_.quiescent() &&
          clock().cyclesAt(now) >=
              static_cast<std::int64_t>(m_.checkpointMinCycles)) {
        m_.checkpointTaken = true;
        scheduler().requestStop();
        return -1;
      }
      issue(now);
    }
    if (m_.halted) return -1;
    auto minPos = [](SimTime a, SimTime b) {
      if (a < 0) return b;
      if (b < 0) return a;
      return a < b ? a : b;
    };
    switch (phase_) {
      case Phase::kRunning:
        return clock().nextEdge(now);
      case Phase::kWaitUntil:
        return minPos(readyAt_, rpNext);
      default:
        return minPos(pkgInbox.nextReadyTime(), rpNext);
    }
  }

 private:
  enum class Phase : std::uint8_t {
    kRunning, kWaitUntil, kBlocked, kWaitSpawn
  };

  Package makePkg(PkgKind kind, std::uint32_t addr, std::uint32_t value,
                  std::uint8_t destReg, SimTime now) {
    Package p;
    p.kind = kind;
    p.addr = addr;
    p.value = value;
    p.srcCluster = kMasterCluster;
    p.srcTcu = 0;
    p.destReg = destReg;
    p.id = 1 + m_.pkgSeq.fetch_add(1, std::memory_order_relaxed);
    p.issueTime = now;
    return p;
  }

  void block(WaitKind k, SimTime now) {
    phase_ = Phase::kBlocked;
    wait_ = k;
    waitStart_ = now;
  }

  void resume(SimTime now) {
    if (isMemWait(wait_))
      m_.st().memWaitCycles +=
          static_cast<std::uint64_t>((now - waitStart_) / clock().period());
    wait_ = WaitKind::kNone;
    phase_ = Phase::kRunning;
  }

  void issue(SimTime now) {
    const std::uint32_t pc = ctx.pc;
    const Instruction& in = m_.fm.fetch(pc);
    switch (FuncModel::classify(in)) {
      case FuncModel::StepClass::kSimple: {
        FuKind fu = opInfo(in.op).fu;
        m_.fm.execSimple(ctx, in);
        if (fu == FuKind::kMdu) {
          phase_ = Phase::kWaitUntil;
          readyAt_ = now + m_.cfg.mduLatency * clock().period();
        } else if (fu == FuKind::kFpu) {
          phase_ = Phase::kWaitUntil;
          readyAt_ = now + m_.cfg.fpuLatency * clock().period();
        }
        m_.commit(kMasterCluster, 0, in, pc, 0, now);
        return;
      }
      case FuncModel::StepClass::kPs: {
        // The master sits next to the global register file / PS unit.
        std::uint32_t old = m_.fm.psFetchAdd(in.rt, ctx.reg(in.rd));
        ctx.setReg(in.rd, old);
        ++m_.st().psRequests;
        ctx.pc += 4;
        phase_ = Phase::kWaitUntil;
        readyAt_ = now + 2 * clock().period();
        m_.commit(kMasterCluster, 0, in, pc, 0, now);
        return;
      }
      case FuncModel::StepClass::kMemory:
        issueMemory(in, pc, now);
        return;
      case FuncModel::StepClass::kPsm: {
        std::uint32_t addr = m_.fm.effectiveAddr(ctx, in);
        Package p = makePkg(PkgKind::kPsm, addr, ctx.reg(in.rt), in.rt, now);
        m_.sendPackage(p, now);
        ++m_.st().psmRequests;
        ctx.pc += 4;
        block(WaitKind::kPsm, now);
        m_.commit(kMasterCluster, 0, in, pc, addr, now);
        return;
      }
      case FuncModel::StepClass::kSpawn: {
        ++m_.st().spawns;
        m_.spawnActive = true;
        m_.spawnStart = static_cast<std::uint32_t>(in.imm);
        m_.spawnEnd = static_cast<std::uint32_t>(in.imm2);
        m_.parkedCount = 0;
        m_.parkLastTime = -1;
        std::uint32_t blockInstrs = (m_.spawnEnd - m_.spawnStart) / 4;
        std::int64_t bcastCycles =
            m_.cfg.spawnBroadcastBase +
            (blockInstrs + static_cast<std::uint32_t>(
                               m_.cfg.broadcastInstrPerCycle) - 1) /
                static_cast<std::uint32_t>(m_.cfg.broadcastInstrPerCycle);
        phase_ = Phase::kWaitSpawn;
        m_.scheduleSpawnStart(now + bcastCycles * clock().period());
        m_.commit(kMasterCluster, 0, in, pc, 0, now);
        return;
      }
      case FuncModel::StepClass::kJoin:
        throw SimError("join executed in serial (master) mode");
      case FuncModel::StepClass::kHalt:
        // Halt implies a fence: outstanding non-blocking stores must reach
        // memory before the final memory dump.
        m_.commit(kMasterCluster, 0, in, pc, 0, now);
        if (outstandingStores_ != 0) {
          haltPending_ = true;
          block(WaitKind::kFence, now);
          return;
        }
        m_.doHalt(static_cast<std::int32_t>(ctx.reg(kV0)));
        return;
    }
  }

  void issueMemory(const Instruction& in, std::uint32_t pc, SimTime now) {
    std::uint32_t addr = m_.fm.effectiveAddr(ctx, in);
    switch (in.op) {
      case Op::kFence:
        ctx.pc += 4;
        m_.commit(kMasterCluster, 0, in, pc, 0, now);
        if (outstandingStores_ != 0) block(WaitKind::kFence, now);
        return;
      case Op::kPref:  // the master has no prefetch buffer
        ctx.pc += 4;
        m_.commit(kMasterCluster, 0, in, pc, addr, now);
        return;
      case Op::kLw:
      case Op::kLbu:
      case Op::kRolw: {
        std::uint32_t key = addr & ~3u;
        if (storeAddrs_.count(key) != 0) return;  // retry after drain
        if (cache_.lookup(addr)) {
          std::uint32_t v = (in.op == Op::kLbu)
                                ? m_.fm.memory().readByte(addr)
                                : m_.fm.memory().readWord(addr);
          ctx.setReg(in.rt, v);
          ctx.pc += 4;
          phase_ = Phase::kWaitUntil;
          readyAt_ = now + 2 * clock().period();
          m_.commit(kMasterCluster, 0, in, pc, addr, now);
          return;
        }
        Package p = makePkg(in.op == Op::kLbu ? PkgKind::kLoadByte
                                              : PkgKind::kLoadWord,
                            addr, 0, in.rt, now);
        m_.sendPackage(p, now);
        ctx.pc += 4;
        block(WaitKind::kLoad, now);
        m_.commit(kMasterCluster, 0, in, pc, addr, now);
        return;
      }
      case Op::kSw:
      case Op::kSb: {
        Package p = makePkg(
            in.op == Op::kSw ? PkgKind::kStoreWord : PkgKind::kStoreByte,
            addr, ctx.reg(in.rt), 0, now);
        m_.sendPackage(p, now);
        ctx.pc += 4;
        block(WaitKind::kStoreAck, now);
        m_.commit(kMasterCluster, 0, in, pc, addr, now);
        return;
      }
      case Op::kSwnb: {
        Package p =
            makePkg(PkgKind::kStoreNbWord, addr, ctx.reg(in.rt), 0, now);
        ++outstandingStores_;
        storeAddrs_.insert(addr & ~3u);
        ++m_.st().nonBlockingStores;
        m_.sendPackage(p, now);
        ctx.pc += 4;
        m_.commit(kMasterCluster, 0, in, pc, addr, now);
        return;
      }
      default:
        throw InternalError("unhandled master memory op");
    }
  }

  void handleResponse(const Package& pkg, SimTime now) {
    switch (pkg.kind) {
      case PkgKind::kLoadWord:
      case PkgKind::kLoadByte:
        XMT_CHECK(phase_ == Phase::kBlocked && wait_ == WaitKind::kLoad);
        cache_.install(pkg.addr);
        ctx.setReg(pkg.destReg, pkg.value);
        resume(now);
        break;
      case PkgKind::kStoreWord:
      case PkgKind::kStoreByte:
        XMT_CHECK(phase_ == Phase::kBlocked &&
                  wait_ == WaitKind::kStoreAck);
        resume(now);
        break;
      case PkgKind::kStoreNbWord: {
        XMT_CHECK(outstandingStores_ > 0);
        --outstandingStores_;
        auto it = storeAddrs_.find(pkg.addr & ~3u);
        XMT_CHECK(it != storeAddrs_.end());
        storeAddrs_.erase(it);
        if (phase_ == Phase::kBlocked && wait_ == WaitKind::kFence &&
            outstandingStores_ == 0) {
          if (haltPending_) {
            haltPending_ = false;
            m_.doHalt(static_cast<std::int32_t>(ctx.reg(kV0)));
          } else {
            resume(now);
          }
        }
        break;
      }
      case PkgKind::kPsm:
        XMT_CHECK(phase_ == Phase::kBlocked && wait_ == WaitKind::kPsm);
        ctx.setReg(pkg.destReg, pkg.value);
        resume(now);
        break;
      default:
        throw InternalError("unexpected response kind at master");
    }
    std::uint64_t prev = m_.inFlight.fetch_sub(1, std::memory_order_relaxed);
    XMT_CHECK(prev > 0);
  }

  ModelCore& m_;
  TagCache cache_;
  Phase phase_ = Phase::kRunning;
  WaitKind wait_ = WaitKind::kNone;
  SimTime readyAt_ = 0;
  SimTime waitStart_ = 0;
  int outstandingStores_ = 0;
  bool haltPending_ = false;
  std::multiset<std::uint32_t> storeAddrs_;
};

// ---------------------------------------------------------------------------
// PsUnitActor: the global prefix-sum unit. All requests to the same global
// register that are pending in the same cycle are combined and served
// together — the hardware property that makes thread dispatch O(1). The
// request inbox arbitrates in canonical (readyTime, cluster) order so the
// service sequence — and with it the thread-ID assignment — is identical
// whichever engine delivered the requests. Dispatch requests that overrun
// $high are detected *here* (hub-side) and feed the join logic (noteParked).
// ---------------------------------------------------------------------------

class PsUnitActor : public TickingActor {
 public:
  PsUnitActor(ModelCore& m, Scheduler& sched, ClockDomain& clk)
      : TickingActor("psunit", sched, clk), m_(m) {}

  ArbTimedQueue<PsReq> inbox;

 protected:
  SimTime tick(SimTime now) override {
    while (inbox.ready(now)) {
      PsReq req = inbox.pop(now);
      std::uint32_t old = m_.fm.psFetchAdd(req.gr, req.inc);
      if (!req.isDispatch) ++m_.st().psRequests;
      PsResp resp;
      resp.cluster = req.cluster;
      resp.tcu = req.tcu;
      resp.destReg = req.destReg;
      resp.value = old;
      resp.isDispatch = req.isDispatch;
      SimTime ready = now + m_.cfg.psReturnLatency * clock().period();
      if (req.isDispatch) {
        auto id = static_cast<std::int32_t>(old);
        auto high = static_cast<std::int32_t>(m_.fm.globalRegs()[kGrHigh]);
        resp.park = id > high;
        if (resp.park) m_.noteParked(req.cluster, ready);
      }
      m_.deliverPsResponse(resp, ready);
    }
    return inbox.nextReadyTime();
  }

 private:
  ModelCore& m_;
};

// ---------------------------------------------------------------------------
// CacheActor: macro-actor over the shared L1 cache modules. Each module
// serves one request per cache cycle in canonical (readyTime, srcCluster)
// arrival order, with hit-under-miss across lines (MSHRs) and strict
// in-order service within a line — which preserves same-source same-address
// ordering end to end.
// ---------------------------------------------------------------------------

class CacheActor : public TickingActor {
 public:
  struct Fill {
    int module = 0;
    std::uint64_t line = 0;
  };

  CacheActor(ModelCore& m, Scheduler& sched, ClockDomain& clk)
      : TickingActor("caches", sched, clk), m_(m) {
    mods_.reserve(static_cast<std::size_t>(m.cfg.cacheModules));
    int lines = m.cfg.cacheModuleKB * 1024 / m.cfg.cacheLineBytes;
    for (int i = 0; i < m.cfg.cacheModules; ++i)
      mods_.push_back(std::make_unique<Module>(lines, m.cfg.cacheAssoc,
                                               m.cfg.cacheLineBytes));
  }

  void inject(const Package& pkg, SimTime readyAt, int module) {
    mods_[static_cast<std::size_t>(module)]->inq.push(readyAt,
                                                      pkg.srcCluster, pkg);
    wakeAt(readyAt);
  }

  void fill(int module, std::uint64_t line, SimTime readyAt) {
    fillq_.push(readyAt, Fill{module, line});
    wakeAt(readyAt);
  }

  std::uint64_t tagHits() const {
    std::uint64_t s = 0;
    for (const auto& mod : mods_) s += mod->tags.hits;
    return s;
  }
  std::uint64_t tagMisses() const {
    std::uint64_t s = 0;
    for (const auto& mod : mods_) s += mod->tags.misses;
    return s;
  }

 protected:
  SimTime tick(SimTime now) override {
    while (fillq_.ready(now)) {
      Fill f = fillq_.pop(now);
      Module& mod = *mods_[static_cast<std::size_t>(f.module)];
      mod.tags.install(
          static_cast<std::uint32_t>(f.line) *
          static_cast<std::uint32_t>(m_.cfg.cacheLineBytes));
      auto it = mod.mshr.find(f.line);
      XMT_CHECK(it != mod.mshr.end());
      for (const Package& waiter : it->second) serve(waiter, now);
      mod.mshr.erase(it);
    }
    SimTime next = -1;
    auto consider = [&](SimTime t) {
      if (t >= 0 && (next < 0 || t < next)) next = t;
    };
    for (std::size_t mi = 0; mi < mods_.size(); ++mi) {
      Module& mod = *mods_[mi];
      if (mod.inq.ready(now)) {
        Package pkg = mod.inq.pop(now);  // one request per module per cycle
        process(mod, static_cast<int>(mi), pkg, now);
      }
      if (mod.inq.ready(now))
        consider(clock().nextEdge(now));
      else
        consider(mod.inq.nextReadyTime());
    }
    consider(fillq_.nextReadyTime());
    return next;
  }

 private:
  struct Module {
    Module(int lines, int assoc, int lineBytes)
        : tags(lines, assoc, lineBytes) {}
    ArbTimedQueue<Package> inq;
    TagCache tags;
    std::map<std::uint64_t, std::vector<Package>> mshr;
  };

  void process(Module& mod, int moduleIdx, const Package& pkg, SimTime now) {
    std::uint64_t line = mod.tags.lineOf(pkg.addr);
    auto it = mod.mshr.find(line);
    if (it != mod.mshr.end()) {
      // A miss to this line is outstanding: queue behind it to preserve
      // same-line (and thus same-address) order.
      it->second.push_back(pkg);
      return;
    }
    if (pkg.isStore()) {
      // Write-through, no-allocate: performed at service time. DRAM
      // write-back traffic is not modelled (see DESIGN.md).
      serve(pkg, now);
      return;
    }
    if (mod.tags.lookup(pkg.addr)) {
      serve(pkg, now);
      return;
    }
    mod.mshr.emplace(line, std::vector<Package>{pkg});
    m_.tracePkg("dram", pkg, now);
    m_.dramRequest(moduleIdx, line, now);
  }

  // Performs the functional access and sends the response.
  void serve(Package pkg, SimTime now) {
    SparseMemory& mem = m_.fm.memory();
    switch (pkg.kind) {
      case PkgKind::kLoadWord:
      case PkgKind::kPrefetch:
      case PkgKind::kReadOnlyLoad:
        pkg.value = mem.readWord(pkg.addr);
        break;
      case PkgKind::kLoadByte:
        pkg.value = mem.readByte(pkg.addr);
        break;
      case PkgKind::kStoreWord:
      case PkgKind::kStoreNbWord:
        mem.writeWord(pkg.addr, pkg.value);
        break;
      case PkgKind::kStoreByte:
        mem.writeByte(pkg.addr, static_cast<std::uint8_t>(pkg.value));
        break;
      case PkgKind::kPsm:
        pkg.value = mem.fetchAdd(pkg.addr, pkg.value);
        break;
    }
    m_.tracePkg("cache", pkg, now);
    m_.sendResponse(pkg, now + m_.cfg.cacheHitLatency * clock().period());
  }

  ModelCore& m_;
  std::vector<std::unique_ptr<Module>> mods_;
  TimedQueue<Fill> fillq_;
};

// ---------------------------------------------------------------------------
// DramActor: per-channel latency + bandwidth model ("DRAM is modeled as
// simple latency").
// ---------------------------------------------------------------------------

class DramActor : public TickingActor {
 public:
  DramActor(ModelCore& m, Scheduler& sched, ClockDomain& clk)
      : TickingActor("dram", sched, clk), m_(m) {
    chq_.resize(static_cast<std::size_t>(m.cfg.dramChannels));
    busyUntil_.assign(static_cast<std::size_t>(m.cfg.dramChannels), 0);
  }

  void request(int module, std::uint64_t line, SimTime now) {
    std::size_t ch =
        static_cast<std::size_t>(module % m_.cfg.dramChannels);
    chq_[ch].push(now, Req{module, line});
    ++m_.st().dramRequests;
    wakeAt(now);
  }

 protected:
  SimTime tick(SimTime now) override {
    SimTime next = -1;
    auto consider = [&](SimTime t) {
      if (t >= 0 && (next < 0 || t < next)) next = t;
    };
    for (std::size_t ch = 0; ch < chq_.size(); ++ch) {
      if (chq_[ch].ready(now) && now >= busyUntil_[ch]) {
        Req r = chq_[ch].pop(now);
        busyUntil_[ch] =
            now + m_.cfg.dramServiceInterval * clock().period();
        m_.caches->fill(r.module, r.line,
                        now + m_.cfg.dramLatency * clock().period());
      }
      if (!chq_[ch].empty()) {
        SimTime t = chq_[ch].nextReadyTime();
        if (t < busyUntil_[ch]) t = busyUntil_[ch];
        consider(t);
      }
    }
    return next;
  }

 private:
  struct Req {
    int module;
    std::uint64_t line;
  };
  ModelCore& m_;
  std::vector<TimedQueue<Req>> chq_;
  std::vector<SimTime> busyUntil_;
};

// ---------------------------------------------------------------------------
// SpawnStarter: fires when the instruction broadcast completes; flips every
// TCU into dispatch mode. Sequential: a hub-scheduled event. PDES: a global
// (all-shards-parked) event, because it touches every cluster at once.
// ---------------------------------------------------------------------------

class SpawnStarter : public Actor {
 public:
  explicit SpawnStarter(ModelCore& m) : Actor("spawnstarter"), m_(m) {}
  void notify(SimTime now) override {
    for (auto& c : m_.clusters) {
      c->beginSpawn(m_.master->ctx, now);
      c->wakeAt(now + 1);
    }
  }

 private:
  ModelCore& m_;
};

// ---------------------------------------------------------------------------
// SpawnJoiner: fires (on the hub) at the edge the last TCU parks; completes
// the join by waking the master out of kWaitSpawn. Scheduled by noteParked.
// ---------------------------------------------------------------------------

class SpawnJoiner : public Actor {
 public:
  explicit SpawnJoiner(ModelCore& m) : Actor("spawnjoiner"), m_(m) {}
  void notify(SimTime now) override {
    m_.spawnActive = false;
    m_.master->resumeFromSpawn(now);
  }

 private:
  ModelCore& m_;
};

// ---------------------------------------------------------------------------
// SamplerActor: periodic activity plug-in callback.
// ---------------------------------------------------------------------------

class SamplerActor : public TickingActor {
 public:
  SamplerActor(ModelCore& m, RuntimeControl& rc, ActivityPlugin* plugin,
               std::uint64_t periodCycles, ClockDomain& clk)
      : TickingActor("sampler", m.hub(), clk),
        m_(m),
        rc_(rc),
        plugin_(plugin),
        periodCycles_(periodCycles) {}

 protected:
  SimTime tick(SimTime now) override {
    if (m_.halted) return -1;
    plugin_->onInterval(rc_);
    return now + static_cast<SimTime>(periodCycles_) * clock().period();
  }

 private:
  ModelCore& m_;
  RuntimeControl& rc_;
  ActivityPlugin* plugin_;
  std::uint64_t periodCycles_;
};

// ---------------------------------------------------------------------------
// ReturnPort implementation.
// ---------------------------------------------------------------------------

SimTime ReturnPort::drain(SimTime now, ModelCore& m,
                          TimedQueue<Package>& inbox) {
  for (;;) {
    if (q.empty()) return -1;
    // The head's delivery edge: the first ICN edge at or after its ready
    // time, but never an edge whose rate budget was already spent (the
    // cursor), so a rate-limited batch spills to the *next* edge exactly as
    // the central ICN actor used to deliver it.
    SimTime e = m.icnClk.nextEdge(q.nextReadyTime() - 1);
    if (e < cursor) e = cursor;
    if (e > now) return e;
    int slots = m.cfg.clusterReturnRate;
    while (slots > 0 && q.ready(e)) {
      Package pkg = q.pop(e);
      m.tracePkg("icn", pkg, e);
      inbox.push(e, pkg);
      --slots;
    }
    cursor = m.icnClk.nextEdge(e);
  }
}

// ---------------------------------------------------------------------------
// ShardAdapter implementation.
// ---------------------------------------------------------------------------

bool ShardAdapter::runWindow(SimTime end) {
  tlsShardId = idx_;
  bool stopped = m_.scheds[static_cast<std::size_t>(idx_)]->runWindow(end);
  tlsShardId = 0;
  return stopped;
}

void ShardAdapter::applyInbound() { m_.applyInboundFor(idx_); }

SimTime ShardAdapter::nextEventTime() {
  return m_.scheds[static_cast<std::size_t>(idx_)]->nextEventTime();
}

// ---------------------------------------------------------------------------
// ModelCore implementation.
// ---------------------------------------------------------------------------

ModelCore::ModelCore(FuncModel& funcModel, const XmtConfig& config,
                     Stats& statsRef, int pdesShards)
    : fm(funcModel),
      cfg(config),
      stats(statsRef),
      masterClk("core", config.coreGhz),
      icnClk("icn", config.icnGhz),
      cacheClk("cache", config.cacheGhz),
      dramClk("dram", config.dramGhz) {
  cfg.validate();
  stats.perCluster.assign(static_cast<std::size_t>(cfg.clusters),
                          ClusterActivity{});

  shards = pdesShards < 1 ? 1 : pdesShards;
  if (cfg.icnAsync) shards = 1;  // continuous-time delivery: no lookahead
  if (shards > 1 + cfg.clusters) shards = 1 + cfg.clusters;
  for (int k = 0; k < shards; ++k)
    scheds.push_back(std::make_unique<Scheduler>());
  if (shards > 1) {
    shardStats.resize(static_cast<std::size_t>(shards));
    for (Stats& s : shardStats)
      s.perCluster.assign(static_cast<std::size_t>(cfg.clusters),
                          ClusterActivity{});
    outbox.resize(static_cast<std::size_t>(shards));
    retChan.resize(static_cast<std::size_t>(cfg.clusters));
    psChan.resize(static_cast<std::size_t>(cfg.clusters));
    for (int k = 0; k < shards; ++k)
      adapters.push_back(std::make_unique<ShardAdapter>(*this, k));
  }

  for (int i = 0; i < cfg.clusters; ++i)
    clusterClk.push_back(std::make_unique<ClockDomain>(
        "cluster" + std::to_string(i), cfg.coreGhz));
  caches = std::make_unique<CacheActor>(*this, hub(), cacheClk);
  dram = std::make_unique<DramActor>(*this, hub(), dramClk);
  psUnit = std::make_unique<PsUnitActor>(*this, hub(), masterClk);
  master = std::make_unique<MasterActor>(*this, hub(), masterClk);
  for (int i = 0; i < cfg.clusters; ++i)
    clusters.push_back(std::make_unique<ClusterActor>(
        *this, i, *scheds[static_cast<std::size_t>(shardOfCluster(i))],
        *clusterClk[static_cast<std::size_t>(i)]));
  spawnStarter = std::make_unique<SpawnStarter>(*this);
  spawnJoiner = std::make_unique<SpawnJoiner>(*this);
}

void ModelCore::commit(int cluster, int tcu, const Instruction& in,
                       std::uint32_t pc, std::uint32_t addr, SimTime now) {
  Stats& s = st();
  s.countInstruction(in);
  if (cluster >= 0) {
    auto& a = s.perCluster[static_cast<std::size_t>(cluster)];
    ++a.instructions;
  }
  // Runaway guard. Under PDES the check is against the shard's own count,
  // so the effective ceiling is up to `shards` times looser — it exists to
  // stop infinite loops, not to meter precisely.
  if (s.instructions > cfg.maxInstructions)
    throw SimError("instruction limit exceeded (" +
                   std::to_string(cfg.maxInstructions) + ")");
  if (observer) observer->onCommit(cluster, tcu, in, pc, addr);
  if (trace) {
    TraceEvent ev;
    ev.time = now;
    ev.cluster = cluster;
    ev.tcu = tcu;
    ev.pc = pc;
    ev.in = &in;
    ev.memAddr = addr;
    ev.stage = "commit";
    trace->onEvent(ev);
  }
}

void ModelCore::tracePkg(const char* stage, const Package& pkg, SimTime now) {
  if (!trace) return;
  TraceEvent ev;
  ev.time = now;
  ev.cluster = pkg.srcCluster;
  ev.tcu = pkg.srcTcu;
  ev.memAddr = pkg.addr;
  ev.stage = stage;
  trace->onEvent(ev);
}

// Deterministic per-package latency for the asynchronous interconnect:
// mean = the synchronous pipeline depth, jittered by a hash of the package
// id. Continuous time — not aligned to any clock edge, which is exactly
// what the discrete-event engine supports and a discrete-time loop cannot.
SimTime ModelCore::asyncIcnLatency(std::uint64_t pkgId, int meanCycles) {
  double meanPs =
      static_cast<double>(meanCycles) * static_cast<double>(icnClk.period());
  std::uint64_t h = pkgId * 0x9e3779b97f4a7c15ull;
  h ^= h >> 31;
  double unit = static_cast<double>(h % 10007) / 10007.0;  // [0, 1)
  double factor = 1.0 + cfg.icnAsyncJitter * (2.0 * unit - 1.0);
  auto lat = static_cast<SimTime>(meanPs * factor);
  return lat < 1 ? 1 : lat;
}

void ModelCore::sendPackage(Package pkg, SimTime now) {
  ++st().icnPackets;
  inFlight.fetch_add(1, std::memory_order_relaxed);
  int module = hashLineToModule(
      pkg.addr / static_cast<std::uint32_t>(cfg.cacheLineBytes),
      cfg.cacheModules, cfg.addressHashing);
  SimTime ready =
      cfg.icnAsync
          ? now + asyncIcnLatency(pkg.id, cfg.effectiveIcnSendLatency())
          : now + cfg.effectiveIcnSendLatency() * icnClk.period();
  if (tlsShardId == 0) {
    caches->inject(pkg, ready, module);
  } else {
    outbox[static_cast<std::size_t>(tlsShardId)].toCache.push_back(
        PkgSend{pkg, ready, module});
  }
}

void ModelCore::sendResponse(const Package& pkg, SimTime readyAt) {
  if (cfg.icnAsync) {
    // Asynchronous routers forward when ready: no return-port clocking or
    // rate limiting; delivery lands at a continuous-time instant.
    deliverResponse(
        pkg, readyAt + asyncIcnLatency(pkg.id ^ 0xa5a5u,
                                       cfg.effectiveIcnReturnLatency()));
    return;
  }
  routeReturn(pkg, readyAt + cfg.effectiveIcnReturnLatency() * icnClk.period());
}

// Direct (continuous-time) delivery — asynchronous-ICN configurations only,
// which are pinned to the sequential engine.
void ModelCore::deliverResponse(const Package& pkg, SimTime now) {
  if (pkg.srcCluster == kMasterCluster) {
    master->pkgInbox.push(now, pkg);
    master->wakeAt(now);
  } else {
    auto& c = clusters[static_cast<std::size_t>(pkg.srcCluster)];
    c->pkgInbox.push(now, pkg);
    c->wakeAt(now);
  }
}

// Synchronous return path: hand the package to the destination's return
// port with its tree-egress ready time; the destination replays the ICN
// edge metering when it ticks. The wake targets the earliest possible
// delivery edge (the port may postpone under rate pressure and re-arm).
void ModelCore::routeReturn(const Package& pkg, SimTime ready) {
  if (pkg.srcCluster == kMasterCluster) {
    master->retPort.q.push(ready, pkg);
    master->wakeAt(icnClk.nextEdge(ready - 1));
  } else if (shards == 1) {
    auto& c = *clusters[static_cast<std::size_t>(pkg.srcCluster)];
    c.retPort.q.push(ready, pkg);
    c.wakeAt(icnClk.nextEdge(ready - 1));
  } else {
    retChan[static_cast<std::size_t>(pkg.srcCluster)].push_back(
        RetSend{pkg, ready});
  }
}

void ModelCore::sendPsRequest(const PsReq& req, SimTime now) {
  inFlight.fetch_add(1, std::memory_order_relaxed);
  SimTime ready = now + cfg.psLatency * masterClk.period();
  if (tlsShardId == 0) {
    psUnit->inbox.push(ready, req.cluster, req);
    psUnit->wakeAt(ready);
  } else {
    outbox[static_cast<std::size_t>(tlsShardId)].toPs.push_back(
        PsSend{req, ready});
  }
}

void ModelCore::deliverPsResponse(const PsResp& resp, SimTime readyAt) {
  auto c = static_cast<std::size_t>(resp.cluster);
  if (shards == 1) {
    clusters[c]->psInbox.push(readyAt, resp);
    clusters[c]->wakeAt(readyAt);
  } else {
    psChan[c].push_back(PsRespSend{resp, readyAt});
  }
}

void ModelCore::dramRequest(int module, std::uint64_t line, SimTime now) {
  dram->request(module, line, now);
}

void ModelCore::scheduleSpawnStart(SimTime when) {
  if (shards > 1) {
    // The broadcast completion touches every cluster at once, so under PDES
    // it is a driver-global event (windows never cross it; it fires with
    // all shards parked). At most one can be outstanding — the master is in
    // kWaitSpawn until the matching join.
    XMT_CHECK(pendingSpawnStartAt < 0);
    pendingSpawnStartAt = when;
    if (driver != nullptr) registerSpawnGlobal();
    // else: between runs; CycleModel::run re-registers into the new driver.
  } else {
    hub().schedule(spawnStarter.get(), when, kPhaseNegotiate);
  }
}

void ModelCore::registerSpawnGlobal() {
  driver->scheduleGlobal(pendingSpawnStartAt, [this](SimTime t) {
    tlsShardId = 0;  // fires on the coordinator
    pendingSpawnStartAt = -1;
    spawnStarter->notify(t);
  });
}

// Called at the PS unit when a dispatch request overruns $high. The TCU
// architecturally parks when its cluster consumes the response — the first
// cluster-clock edge covering the response's ready time — so the join
// completes at the latest such edge, exactly when the old cluster-side
// detection resumed the master.
void ModelCore::noteParked(int cluster, SimTime respReady) {
  SimTime at =
      clusterClk[static_cast<std::size_t>(cluster)]->nextEdge(respReady - 1);
  if (at > parkLastTime) parkLastTime = at;
  ++parkedCount;
  if (parkedCount == cfg.totalTcus())
    hub().schedule(spawnJoiner.get(), parkLastTime, kPhaseTransfer);
}

// Coordinator-only (single-threaded, all shards parked): drain the channels
// addressed to `shard`. Application order across source shards is fixed
// (shard 1, 2, ...), and the hub's multi-source sinks arbitrate in
// canonical (readyTime, srcCluster) order anyway, so delivery is
// order-insensitive; per-cluster channels are FIFO by construction.
void ModelCore::applyInboundFor(int shard) {
  tlsShardId = 0;
  if (shard == 0) {
    for (int s = 1; s < shards; ++s) {
      ShardOutbox& ob = outbox[static_cast<std::size_t>(s)];
      for (PkgSend& m : ob.toCache) caches->inject(m.pkg, m.ready, m.module);
      ob.toCache.clear();
      for (PsSend& m : ob.toPs) {
        psUnit->inbox.push(m.ready, m.req.cluster, m.req);
        psUnit->wakeAt(m.ready);
      }
      ob.toPs.clear();
    }
    return;
  }
  for (int c = 0; c < cfg.clusters; ++c) {
    if (shardOfCluster(c) != shard) continue;
    ClusterActor& cl = *clusters[static_cast<std::size_t>(c)];
    for (RetSend& m : retChan[static_cast<std::size_t>(c)]) {
      cl.retPort.q.push(m.ready, m.pkg);
      cl.wakeAt(icnClk.nextEdge(m.ready - 1));
    }
    retChan[static_cast<std::size_t>(c)].clear();
    for (PsRespSend& m : psChan[static_cast<std::size_t>(c)]) {
      cl.psInbox.push(m.ready, m.resp);
      cl.wakeAt(m.ready);
    }
    psChan[static_cast<std::size_t>(c)].clear();
  }
}

// The PDES lookahead: the smallest latency any cross-shard interaction can
// have, in picoseconds. Every cross-shard edge goes through the hub —
// cluster->PS unit (psLatency), PS unit->cluster (psReturnLatency),
// cluster->cache (ICN send), cache->cluster (cache hit + ICN return) — and
// the spawn broadcast (a driver-global event) takes at least
// spawnBroadcastBase + 1 master cycles, so clamping to spawnBroadcastBase
// guarantees a mid-window spawn-start registration always lands at or
// beyond the current window's end.
SimTime ModelCore::pdesLookahead() const {
  SimTime l = cfg.psLatency * masterClk.period();
  SimTime x = cfg.psReturnLatency * masterClk.period();
  if (x < l) l = x;
  x = cfg.effectiveIcnSendLatency() * icnClk.period();
  if (x < l) l = x;
  x = cfg.cacheHitLatency * cacheClk.period() +
      cfg.effectiveIcnReturnLatency() * icnClk.period();
  if (x < l) l = x;
  x = cfg.spawnBroadcastBase * masterClk.period();
  if (x < l) l = x;
  return l;
}

void ModelCore::doHalt(std::int32_t code) {
  halted = true;
  haltCode = code;
  hub().requestStop();
}

void ModelCore::syncCacheStats() {
  stats.cacheHits = caches->tagHits();
  stats.cacheMisses = caches->tagMisses();
  stats.masterCacheHits = master->cacheHits();
  stats.masterCacheMisses = master->cacheMisses();
  std::uint64_t roH = 0, roM = 0;
  for (const auto& c : clusters) {
    roH += c->roHits();
    roM += c->roMisses();
  }
  stats.roCacheHits = roH;
  stats.roCacheMisses = roM;
  stats.cycles = static_cast<std::uint64_t>(masterClk.cyclesAt(hub().now()));
  stats.simTime = hub().now();
}

bool ModelCore::quiescent() const {
  return !spawnActive && !halted &&
         inFlight.load(std::memory_order_relaxed) == 0 &&
         master->runnable() && master->outstandingStores() == 0;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// CycleModel facade.
// ---------------------------------------------------------------------------

CycleModel::CycleModel(FuncModel& funcModel, const XmtConfig& config,
                       Stats& stats, int pdesShards)
    : core_(std::make_unique<detail::ModelCore>(funcModel, config, stats,
                                                pdesShards)) {}

CycleModel::~CycleModel() = default;

int CycleModel::pdesShards() const { return core_->shards; }

void CycleModel::setCommitObserver(CommitObserver* observer) {
  core_->observer = observer;
}

void CycleModel::setTraceSink(TraceSink* sink) { core_->trace = sink; }

void CycleModel::addActivityPlugin(ActivityPlugin* plugin,
                                   std::uint64_t periodCycles) {
  XMT_CHECK(plugin != nullptr && periodCycles > 0);
  core_->samplers.push_back(std::make_unique<detail::SamplerActor>(
      *core_, *this, plugin, periodCycles, core_->masterClk));
  if (core_->started)
    core_->samplers.back()->wakeAt(core_->hub().now() + 1);
}

CycleRunResult CycleModel::run(std::uint64_t maxCycles) {
  detail::ModelCore& m = *core_;
  if (!m.started) {
    m.started = true;
    m.master->start();
    for (auto& s : m.samplers) s->wakeAt(1);
  }
  // A previous run()'s cycle-budget stop may still sit in the event list if
  // that run ended early on a halt or checkpoint stop; withdraw it so it
  // cannot cut this run short.
  m.hub().cancelStops();
  SimTime stopAt = -1;
  if (maxCycles > 0) {
    std::int64_t target = m.masterClk.cyclesAt(m.hub().now()) +
                          static_cast<std::int64_t>(maxCycles);
    stopAt = m.masterClk.timeOfCycle(target);
    m.hub().scheduleStop(stopAt);
  }
  bool stopped;
  if (m.shards > 1) {
    std::vector<PdesShard*> shardPtrs;
    shardPtrs.reserve(m.adapters.size());
    for (auto& a : m.adapters) shardPtrs.push_back(a.get());
    PdesDriver driver(std::move(shardPtrs), m.pdesLookahead());
    m.driver = &driver;
    // A spawn broadcast pending from a previous (budget-stopped) run must
    // be re-registered into this run's driver.
    if (m.pendingSpawnStartAt >= 0) m.registerSpawnGlobal();
    if (stopAt >= 0) driver.alignStop(stopAt);
    // A trace sink needs one stable event interleaving: run the shards'
    // windows serially on this thread (same windows, same results).
    PdesDriver::RunEnd end = driver.run(m.trace == nullptr);
    m.driver = nullptr;
    stopped = end == PdesDriver::RunEnd::kStopped;
    // Deterministic merge: fold the per-shard counters into the session
    // Stats in fixed shard order, then zero the accumulators so a resumed
    // run cannot double-count.
    for (Stats& s : m.shardStats) {
      m.stats.mergeCounters(s);
      s = Stats{};
      s.perCluster.assign(static_cast<std::size_t>(m.cfg.clusters),
                          ClusterActivity{});
    }
  } else {
    stopped = m.hub().run();
  }
  if (!stopped && !m.halted)
    throw SimError("simulation deadlock: event list drained before halt");
  m.syncCacheStats();
  CycleRunResult r;
  r.halted = m.halted;
  r.haltCode = m.haltCode;
  r.cycles = m.stats.cycles;
  r.simTime = m.hub().now();
  return r;
}

bool CycleModel::halted() const { return core_->halted; }
bool CycleModel::quiescent() const { return core_->quiescent(); }

const Context& CycleModel::masterContext() const {
  return core_->master->ctx;
}

void CycleModel::setMasterContext(const Context& ctx) {
  core_->master->ctx = ctx;
  core_->masterRestored = true;
}

void CycleModel::requestCheckpointStop(std::uint64_t minCycles) {
  core_->checkpointRequested = true;
  core_->checkpointMinCycles = minCycles;
  core_->checkpointTaken = false;
}

bool CycleModel::checkpointStopTaken() const {
  return core_->checkpointTaken;
}

const Stats& CycleModel::stats() const { return core_->stats; }
const XmtConfig& CycleModel::config() const { return core_->cfg; }
SimTime CycleModel::now() const { return core_->hub().now(); }

std::uint64_t CycleModel::coreCycles() const {
  return static_cast<std::uint64_t>(
      core_->masterClk.cyclesAt(core_->hub().now()));
}

void CycleModel::setClusterFrequency(int cluster, double ghz) {
  XMT_CHECK(cluster >= 0 && cluster < core_->cfg.clusters);
  core_->clusterClk[static_cast<std::size_t>(cluster)]->setFrequency(
      ghz, core_->hub().now());
  core_->clusters[static_cast<std::size_t>(cluster)]->wakeAt(
      core_->hub().now() + 1);
}

double CycleModel::clusterFrequency(int cluster) const {
  XMT_CHECK(cluster >= 0 && cluster < core_->cfg.clusters);
  return core_->clusterClk[static_cast<std::size_t>(cluster)]
      ->frequencyGhz();
}

void CycleModel::setClusterEnabled(int cluster, bool enabled) {
  XMT_CHECK(cluster >= 0 && cluster < core_->cfg.clusters);
  core_->clusterClk[static_cast<std::size_t>(cluster)]->setEnabled(
      enabled, core_->hub().now());
  core_->clusters[static_cast<std::size_t>(cluster)]->wakeAt(
      core_->hub().now() + 1);
}

void CycleModel::setIcnFrequency(double ghz) {
  core_->icnClk.setFrequency(ghz, core_->hub().now());
  // Return metering lives in the destinations' ports now: re-arm them so
  // pending deliveries re-anchor to the new edge grid.
  core_->master->wakeAt(core_->hub().now() + 1);
  for (auto& c : core_->clusters) c->wakeAt(core_->hub().now() + 1);
}

void CycleModel::setCacheFrequency(double ghz) {
  core_->cacheClk.setFrequency(ghz, core_->hub().now());
  core_->caches->wakeAt(core_->hub().now() + 1);
}

void CycleModel::setDramFrequency(double ghz) {
  core_->dramClk.setFrequency(ghz, core_->hub().now());
  core_->dram->wakeAt(core_->hub().now() + 1);
}

void CycleModel::requestStop() { core_->hub().requestStop(); }

Scheduler& CycleModel::scheduler() { return core_->hub(); }

}  // namespace xmt
