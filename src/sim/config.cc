#include "src/sim/config.h"

#include <cmath>

#include "src/common/error.h"

namespace xmt {

namespace {
int ceilLog2(int n) {
  int lg = 0;
  while ((1 << lg) < n) ++lg;
  return lg;
}
}  // namespace

int XmtConfig::effectiveIcnSendLatency() const {
  if (icnSendLatency > 0) return icnSendLatency;
  return 2 + ceilLog2(clusters) + ceilLog2(cacheModules);
}

int XmtConfig::effectiveIcnReturnLatency() const {
  if (icnReturnLatency > 0) return icnReturnLatency;
  return 2 + ceilLog2(clusters) + ceilLog2(cacheModules);
}

void XmtConfig::validate() const {
  auto positive = [](std::int64_t v, const char* what) {
    if (v <= 0)
      throw ConfigError(std::string(what), "must be positive");
  };
  positive(clusters, "clusters");
  positive(tcusPerCluster, "tcus_per_cluster");
  positive(cacheModules, "cache_modules");
  positive(dramChannels, "dram_channels");
  positive(clusterInjectRate, "cluster_inject_rate");
  positive(clusterReturnRate, "cluster_return_rate");
  positive(cacheHitLatency, "cache_hit_latency");
  positive(cacheLineBytes, "cache_line_bytes");
  positive(cacheModuleKB, "cache_module_kb");
  positive(cacheAssoc, "cache_assoc");
  positive(dramLatency, "dram_latency");
  positive(dramServiceInterval, "dram_service_interval");
  positive(mduPerCluster, "mdu_per_cluster");
  positive(fpuPerCluster, "fpu_per_cluster");
  positive(mduLatency, "mdu_latency");
  positive(fpuLatency, "fpu_latency");
  positive(roCacheLines, "ro_cache_lines");
  positive(masterCacheKB, "master_cache_kb");
  positive(psLatency, "ps_latency");
  positive(psReturnLatency, "ps_return_latency");
  positive(spawnBroadcastBase, "spawn_broadcast_base");
  positive(broadcastInstrPerCycle, "broadcast_instr_per_cycle");
  if (prefetchEntries < 0)
    throw ConfigError("prefetch_entries", "must be >= 0");
  auto positiveGhz = [](double v, const char* what) {
    if (!(v > 0))
      throw ConfigError(std::string(what), "clock frequency must be positive");
  };
  positiveGhz(coreGhz, "core_ghz");
  positiveGhz(icnGhz, "icn_ghz");
  positiveGhz(cacheGhz, "cache_ghz");
  positiveGhz(dramGhz, "dram_ghz");
  if ((cacheLineBytes & (cacheLineBytes - 1)) != 0)
    throw ConfigError("cache_line_bytes", "must be a power of two");
  if (prefetchPolicy != "fifo" && prefetchPolicy != "lru")
    throw ConfigError("prefetch_policy", "must be 'fifo' or 'lru'");
  if (icnAsyncJitter < 0.0 || icnAsyncJitter >= 1.0)
    throw ConfigError("icn_async_jitter", "must be in [0, 1)");
}

XmtConfig XmtConfig::fpga64() {
  XmtConfig c;
  c.name = "fpga64";
  c.clusters = 8;
  c.tcusPerCluster = 8;
  c.cacheModules = 8;
  c.dramChannels = 1;
  c.coreGhz = 0.075;  // the 75 MHz FPGA prototype
  c.icnGhz = 0.075;
  c.cacheGhz = 0.075;
  c.dramGhz = 0.075;
  c.cacheModuleKB = 32;
  c.dramLatency = 20;
  c.dramServiceInterval = 2;
  c.mduLatency = 8;
  c.fpuLatency = 6;
  c.prefetchEntries = 1;
  return c;
}

XmtConfig XmtConfig::chip1024() {
  XmtConfig c;
  c.name = "chip1024";
  c.clusters = 64;
  c.tcusPerCluster = 16;
  c.cacheModules = 128;
  c.dramChannels = 16;
  c.coreGhz = 1.3;
  c.icnGhz = 1.3;
  c.cacheGhz = 1.3;
  c.dramGhz = 0.8;
  c.cacheModuleKB = 32;
  c.cacheHitLatency = 6;  // ~30-cycle round trip incl. ICN, per the paper
  c.dramLatency = 80;
  c.dramServiceInterval = 4;
  c.prefetchEntries = 4;
  return c;
}

XmtConfig XmtConfig::byName(const std::string& name) {
  if (name == "fpga64") return fpga64();
  if (name == "chip1024") return chip1024();
  if (name == "custom" || name.empty()) return XmtConfig{};
  throw ConfigError("unknown configuration '" + name + "'");
}

XmtConfig XmtConfig::fromConfigMap(const ConfigMap& map) {
  XmtConfig c = byName(map.getString("base", "custom"));
  auto geti = [&](const char* k, int d) {
    return static_cast<int>(map.getInt(k, d));
  };
  c.clusters = geti("clusters", c.clusters);
  c.tcusPerCluster = geti("tcus_per_cluster", c.tcusPerCluster);
  c.cacheModules = geti("cache_modules", c.cacheModules);
  c.dramChannels = geti("dram_channels", c.dramChannels);
  c.coreGhz = map.getDouble("core_ghz", c.coreGhz);
  c.icnGhz = map.getDouble("icn_ghz", c.icnGhz);
  c.cacheGhz = map.getDouble("cache_ghz", c.cacheGhz);
  c.dramGhz = map.getDouble("dram_ghz", c.dramGhz);
  c.icnSendLatency = geti("icn_send_latency", c.icnSendLatency);
  c.icnReturnLatency = geti("icn_return_latency", c.icnReturnLatency);
  c.clusterInjectRate = geti("cluster_inject_rate", c.clusterInjectRate);
  c.clusterReturnRate = geti("cluster_return_rate", c.clusterReturnRate);
  c.addressHashing = map.getBool("address_hashing", c.addressHashing);
  c.icnAsync = map.getBool("icn_async", c.icnAsync);
  c.icnAsyncJitter = map.getDouble("icn_async_jitter", c.icnAsyncJitter);
  c.cacheHitLatency = geti("cache_hit_latency", c.cacheHitLatency);
  c.cacheLineBytes = geti("cache_line_bytes", c.cacheLineBytes);
  c.cacheModuleKB = geti("cache_module_kb", c.cacheModuleKB);
  c.cacheAssoc = geti("cache_assoc", c.cacheAssoc);
  c.dramLatency = geti("dram_latency", c.dramLatency);
  c.dramServiceInterval = geti("dram_service_interval", c.dramServiceInterval);
  c.mduPerCluster = geti("mdu_per_cluster", c.mduPerCluster);
  c.mduLatency = geti("mdu_latency", c.mduLatency);
  c.fpuPerCluster = geti("fpu_per_cluster", c.fpuPerCluster);
  c.fpuLatency = geti("fpu_latency", c.fpuLatency);
  c.prefetchEntries = geti("prefetch_entries", c.prefetchEntries);
  c.prefetchPolicy = map.getString("prefetch_policy", c.prefetchPolicy);
  c.roCacheLines = geti("ro_cache_lines", c.roCacheLines);
  c.masterCacheKB = geti("master_cache_kb", c.masterCacheKB);
  c.psLatency = geti("ps_latency", c.psLatency);
  c.psReturnLatency = geti("ps_return_latency", c.psReturnLatency);
  c.spawnBroadcastBase = geti("spawn_broadcast_base", c.spawnBroadcastBase);
  c.broadcastInstrPerCycle =
      geti("broadcast_instr_per_cycle", c.broadcastInstrPerCycle);
  c.maxInstructions = static_cast<std::uint64_t>(
      map.getInt("max_instructions",
                 static_cast<std::int64_t>(c.maxInstructions)));
  c.validate();
  return c;
}

ConfigMap XmtConfig::toConfigMap() const {
  ConfigMap m;
  m.set("base", name);
  m.set("clusters", static_cast<std::int64_t>(clusters));
  m.set("tcus_per_cluster", static_cast<std::int64_t>(tcusPerCluster));
  m.set("cache_modules", static_cast<std::int64_t>(cacheModules));
  m.set("dram_channels", static_cast<std::int64_t>(dramChannels));
  m.set("core_ghz", coreGhz);
  m.set("icn_ghz", icnGhz);
  m.set("cache_ghz", cacheGhz);
  m.set("dram_ghz", dramGhz);
  m.set("icn_send_latency", static_cast<std::int64_t>(icnSendLatency));
  m.set("icn_return_latency", static_cast<std::int64_t>(icnReturnLatency));
  m.set("cluster_inject_rate", static_cast<std::int64_t>(clusterInjectRate));
  m.set("cluster_return_rate", static_cast<std::int64_t>(clusterReturnRate));
  m.set("address_hashing", addressHashing ? "true" : "false");
  m.set("icn_async", icnAsync ? "true" : "false");
  m.set("icn_async_jitter", icnAsyncJitter);
  m.set("cache_hit_latency", static_cast<std::int64_t>(cacheHitLatency));
  m.set("cache_line_bytes", static_cast<std::int64_t>(cacheLineBytes));
  m.set("cache_module_kb", static_cast<std::int64_t>(cacheModuleKB));
  m.set("cache_assoc", static_cast<std::int64_t>(cacheAssoc));
  m.set("dram_latency", static_cast<std::int64_t>(dramLatency));
  m.set("dram_service_interval",
        static_cast<std::int64_t>(dramServiceInterval));
  m.set("mdu_per_cluster", static_cast<std::int64_t>(mduPerCluster));
  m.set("mdu_latency", static_cast<std::int64_t>(mduLatency));
  m.set("fpu_per_cluster", static_cast<std::int64_t>(fpuPerCluster));
  m.set("fpu_latency", static_cast<std::int64_t>(fpuLatency));
  m.set("prefetch_entries", static_cast<std::int64_t>(prefetchEntries));
  m.set("prefetch_policy", prefetchPolicy);
  m.set("ro_cache_lines", static_cast<std::int64_t>(roCacheLines));
  m.set("master_cache_kb", static_cast<std::int64_t>(masterCacheKB));
  m.set("ps_latency", static_cast<std::int64_t>(psLatency));
  m.set("ps_return_latency", static_cast<std::int64_t>(psReturnLatency));
  m.set("spawn_broadcast_base",
        static_cast<std::int64_t>(spawnBroadcastBase));
  m.set("broadcast_instr_per_cycle",
        static_cast<std::int64_t>(broadcastInstrPerCycle));
  m.set("max_instructions", static_cast<std::int64_t>(maxInstructions));
  return m;
}

}  // namespace xmt
