// XMTSim: the top-level simulator facade.
//
// Wraps the functional model and the cycle-accurate model behind one API
// (Fig. 3): load a program (assembly + memory map), choose a configuration
// and a simulation mode, attach filter/activity plug-ins and traces, run,
// then read the outputs — cycle count, instruction statistics, printf
// output, and memory dump via named global symbols.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/assembler/memorymap.h"
#include "src/assembler/program.h"
#include "src/sim/checkpoint.h"
#include "src/sim/config.h"
#include "src/sim/cyclemodel.h"
#include "src/sim/funcmodel.h"
#include "src/sim/plugins.h"
#include "src/sim/stats.h"
#include "src/sim/trace.h"

namespace xmt {

enum class SimMode {
  kCycleAccurate,  // the full model
  kFunctional,     // fast mode: serializes spawn blocks
};

struct RunResult {
  bool halted = false;
  std::int32_t haltCode = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;   // 0 in functional mode
  SimTime simTimePs = 0;      // 0 in functional mode
  std::string output;         // printf output so far
  /// True when run() returned because a requested checkpoint was taken.
  bool checkpointTaken = false;
};

class Simulator : private CommitObserver {
 public:
  explicit Simulator(Program program,
                     XmtConfig config = XmtConfig::fpga64(),
                     SimMode mode = SimMode::kCycleAccurate);
  ~Simulator() override;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- Program input (global variables only — there is no OS / file I/O) ---
  void applyMemoryMap(const MemoryMap& map);
  void setGlobal(const std::string& name, std::int32_t value);
  void setGlobalArray(const std::string& name,
                      std::span<const std::int32_t> values);
  std::int32_t getGlobal(const std::string& name) const;
  std::vector<std::int32_t> getGlobalArray(const std::string& name) const;

  // --- Plug-ins and traces ---
  /// Takes ownership; reports are collected by filterReports().
  FilterPlugin* addFilterPlugin(std::unique_ptr<FilterPlugin> plugin);
  std::string filterReports() const;
  /// Takes ownership; called every `periodCycles` core cycles
  /// (cycle-accurate mode only).
  ActivityPlugin* addActivityPlugin(std::unique_ptr<ActivityPlugin> plugin,
                                    std::uint64_t periodCycles);
  /// Non-owning; must outlive the simulator.
  void setTraceSink(TraceSink* sink);

  /// Opts into the parallel (PDES) cycle-accurate engine with `shards`
  /// event-loop shards (1 = sequential, the default). Must be called before
  /// the first run. Silently falls back to sequential when a trace sink,
  /// filter plug-ins, or activity plug-ins are attached (their callbacks
  /// assume one interleaving) — stats stay bit-identical either way.
  void setPdesShards(int shards);
  /// The shard count the cycle model actually runs with (after gating and
  /// clamping); 1 before the cycle model exists.
  int pdesShards() const;

  // --- Execution ---
  /// Runs to halt (or `maxCycles` core cycles in cycle-accurate mode;
  /// resumable by calling run() again). Functional mode always runs to halt.
  RunResult run(std::uint64_t maxCycles = 0);

  /// Cycle-accurate mode: runs until the first quiescent point at or after
  /// `minCycles` core cycles, takes a checkpoint, and returns (or runs to
  /// halt if none occurs). checkpoint() is then valid.
  RunResult runToCheckpoint(std::uint64_t minCycles);

  /// The checkpoint captured by the last runToCheckpoint().
  const Checkpoint& checkpoint() const;

  /// Builds a simulator resuming from `chk` (program must match the one the
  /// checkpoint was taken from).
  static std::unique_ptr<Simulator> resume(Program program,
                                           const Checkpoint& chk,
                                           XmtConfig config,
                                           SimMode mode =
                                               SimMode::kCycleAccurate);

  // --- Results and internals ---
  /// FNV-1a 64 digest of the final architectural memory: every byte of the
  /// static data segment plus a directory of the named data symbols. Two
  /// runs of the same program are architecturally equivalent iff their
  /// digests match — the one-number oracle the differential fuzzing harness
  /// compares across modes, opt levels and configurations.
  ///
  /// `excludeSymbols` masks the extents of the named globals to zero before
  /// hashing, for workloads whose results are correct as a *set* but land at
  /// thread-order-dependent positions (e.g. compaction's B).
  std::uint64_t memoryDigest(
      std::span<const std::string> excludeSymbols = {}) const;

  const Stats& stats() const { return stats_; }
  const std::string& output() const { return func_->output(); }
  const XmtConfig& config() const { return config_; }
  SimMode mode() const { return mode_; }
  FuncModel& funcModel() { return *func_; }
  /// RuntimeControl for manual DVFS experiments; null in functional mode
  /// before the first run.
  RuntimeControl* runtimeControl();

 private:
  void onCommit(int cluster, int tcu, const Instruction& in,
                std::uint32_t pc, std::uint32_t memAddr) override;
  void onMemAccess(const MemAccess& access) override;
  void ensureCycleModel();
  RunResult finishCycleResult(const CycleRunResult& r);

  Program programCopy_;  // retained for checkpoint provenance
  XmtConfig config_;
  SimMode mode_;
  Stats stats_;
  std::unique_ptr<FuncModel> func_;
  std::unique_ptr<CycleModel> cycle_;
  std::vector<std::unique_ptr<FilterPlugin>> filters_;
  struct PendingActivity {
    std::unique_ptr<ActivityPlugin> plugin;
    std::uint64_t period;
  };
  std::vector<PendingActivity> activities_;
  TraceSink* trace_ = nullptr;
  int pdesShards_ = 1;
  bool ranFunctional_ = false;
  Checkpoint lastCheckpoint_;
  bool haveCheckpoint_ = false;
  // Offsets carried across a checkpoint resume.
  std::uint64_t baseCycles_ = 0;
  SimTime baseSimTime_ = 0;
};

}  // namespace xmt
