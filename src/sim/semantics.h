// Pure operational semantics of XMT instructions.
//
// Shared by the functional model (fast mode) and the cycle-accurate model so
// both always agree on architectural results — the invariant our integration
// tests check in lieu of the paper's FPGA cross-validation.
#pragma once

#include <cstdint>

#include "src/isa/isa.h"

namespace xmt {

/// Integer/float ALU-class evaluation for R3/R2I ops (second operand already
/// selected: register or immediate). Throws SimError on division by zero.
std::uint32_t evalAlu(Op op, std::uint32_t a, std::uint32_t b);

/// Branch condition for the kBr2 ops (signed comparisons).
bool evalBranch(Op op, std::uint32_t a, std::uint32_t b);

/// True if this op's second source operand is the immediate field.
bool usesImmediate(Op op);

}  // namespace xmt
