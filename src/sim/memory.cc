#include "src/sim/memory.h"

#include <cstring>

#include "src/common/error.h"

namespace xmt {

std::uint8_t* SparseMemory::page(std::uint32_t addr) {
  std::uint32_t idx = addr >> kPageBits;
  std::uint32_t topIdx = idx >> kMidBits;
  Mid* mid = top_[topIdx].load(std::memory_order_relaxed);
  if (mid == nullptr) {
    midStore_.push_back(std::make_unique<Mid>());
    mid = midStore_.back().get();
    top_[topIdx].store(mid, std::memory_order_release);
  }
  std::atomic<std::uint8_t*>& slot = mid->slots[idx & (kMidSize - 1)];
  std::uint8_t* p = slot.load(std::memory_order_relaxed);
  if (p == nullptr) {
    pageStore_.push_back(std::make_unique<std::uint8_t[]>(kPageSize));
    p = pageStore_.back().get();
    std::memset(p, 0, kPageSize);
    slot.store(p, std::memory_order_release);
    ++resident_;
  }
  return p;
}

const std::uint8_t* SparseMemory::findPage(std::uint32_t addr) const {
  std::uint32_t idx = addr >> kPageBits;
  const Mid* mid = top_[idx >> kMidBits].load(std::memory_order_acquire);
  if (mid == nullptr) return nullptr;
  return mid->slots[idx & (kMidSize - 1)].load(std::memory_order_acquire);
}

std::uint32_t SparseMemory::readWord(std::uint32_t addr) const {
  if (addr % 4 != 0)
    throw SimError("unaligned word read at 0x" + std::to_string(addr));
  const std::uint8_t* p = findPage(addr);
  if (!p) return 0;
  std::uint32_t w;
  std::memcpy(&w, p + (addr & (kPageSize - 1)), 4);
  return w;
}

void SparseMemory::writeWord(std::uint32_t addr, std::uint32_t value) {
  if (addr % 4 != 0)
    throw SimError("unaligned word write at 0x" + std::to_string(addr));
  std::memcpy(page(addr) + (addr & (kPageSize - 1)), &value, 4);
}

std::uint8_t SparseMemory::readByte(std::uint32_t addr) const {
  const std::uint8_t* p = findPage(addr);
  return p ? p[addr & (kPageSize - 1)] : 0;
}

void SparseMemory::writeByte(std::uint32_t addr, std::uint8_t value) {
  page(addr)[addr & (kPageSize - 1)] = value;
}

std::uint32_t SparseMemory::fetchAdd(std::uint32_t addr, std::uint32_t delta) {
  std::uint32_t old = readWord(addr);
  writeWord(addr, old + delta);
  return old;
}

void SparseMemory::writeBlock(std::uint32_t addr, const std::uint8_t* src,
                              std::size_t len) {
  while (len > 0) {
    std::size_t inPage = kPageSize - (addr & (kPageSize - 1));
    std::size_t n = len < inPage ? len : inPage;
    std::memcpy(page(addr) + (addr & (kPageSize - 1)), src, n);
    addr += static_cast<std::uint32_t>(n);
    src += n;
    len -= n;
  }
}

std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>
SparseMemory::snapshot() const {
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> out;
  out.reserve(resident_);
  for (std::uint32_t t = 0; t < kTopSize; ++t) {
    const Mid* mid = top_[t].load(std::memory_order_acquire);
    if (mid == nullptr) continue;
    for (std::uint32_t m = 0; m < kMidSize; ++m) {
      const std::uint8_t* p = mid->slots[m].load(std::memory_order_acquire);
      if (p == nullptr) continue;
      out.emplace_back((t << kMidBits) | m,
                       std::vector<std::uint8_t>(p, p + kPageSize));
    }
  }
  return out;
}

void SparseMemory::restore(
    const std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>&
        pages) {
  for (std::uint32_t t = 0; t < kTopSize; ++t)
    top_[t].store(nullptr, std::memory_order_relaxed);
  midStore_.clear();
  pageStore_.clear();
  resident_ = 0;
  for (const auto& [idx, data] : pages) {
    XMT_CHECK(data.size() == kPageSize);
    std::memcpy(page(idx << kPageBits), data.data(), kPageSize);
  }
}

}  // namespace xmt
