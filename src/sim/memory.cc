#include "src/sim/memory.h"

#include <cstring>

#include "src/common/error.h"

namespace xmt {

SparseMemory::Page& SparseMemory::page(std::uint32_t addr) {
  std::uint32_t idx = addr >> kPageBits;
  auto it = pages_.find(idx);
  if (it == pages_.end())
    it = pages_.emplace(idx, Page(kPageSize, 0)).first;
  return it->second;
}

const SparseMemory::Page* SparseMemory::findPage(std::uint32_t addr) const {
  auto it = pages_.find(addr >> kPageBits);
  return it == pages_.end() ? nullptr : &it->second;
}

std::uint32_t SparseMemory::readWord(std::uint32_t addr) const {
  if (addr % 4 != 0)
    throw SimError("unaligned word read at 0x" + std::to_string(addr));
  const Page* p = findPage(addr);
  if (!p) return 0;
  std::uint32_t w;
  std::memcpy(&w, p->data() + (addr & (kPageSize - 1)), 4);
  return w;
}

void SparseMemory::writeWord(std::uint32_t addr, std::uint32_t value) {
  if (addr % 4 != 0)
    throw SimError("unaligned word write at 0x" + std::to_string(addr));
  std::memcpy(page(addr).data() + (addr & (kPageSize - 1)), &value, 4);
}

std::uint8_t SparseMemory::readByte(std::uint32_t addr) const {
  const Page* p = findPage(addr);
  return p ? (*p)[addr & (kPageSize - 1)] : 0;
}

void SparseMemory::writeByte(std::uint32_t addr, std::uint8_t value) {
  page(addr)[addr & (kPageSize - 1)] = value;
}

std::uint32_t SparseMemory::fetchAdd(std::uint32_t addr, std::uint32_t delta) {
  std::uint32_t old = readWord(addr);
  writeWord(addr, old + delta);
  return old;
}

void SparseMemory::writeBlock(std::uint32_t addr, const std::uint8_t* src,
                              std::size_t len) {
  while (len > 0) {
    std::size_t inPage = kPageSize - (addr & (kPageSize - 1));
    std::size_t n = len < inPage ? len : inPage;
    std::memcpy(page(addr).data() + (addr & (kPageSize - 1)), src, n);
    addr += static_cast<std::uint32_t>(n);
    src += n;
    len -= n;
  }
}

std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>
SparseMemory::snapshot() const {
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> out;
  out.reserve(pages_.size());
  for (const auto& [idx, data] : pages_) out.emplace_back(idx, data);
  return out;
}

void SparseMemory::restore(
    const std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>>&
        pages) {
  pages_.clear();
  for (const auto& [idx, data] : pages) {
    XMT_CHECK(data.size() == kPageSize);
    pages_[idx] = data;
  }
}

}  // namespace xmt
