#include "src/sim/phase.h"

#include <cmath>
#include <map>
#include <sstream>

namespace xmt {

namespace {

std::uint64_t memOpsOf(const Stats& s) {
  return s.fuCount[static_cast<std::size_t>(FuKind::kMem)] +
         s.fuCount[static_cast<std::size_t>(FuKind::kPs)];
}

}  // namespace

void PhaseProfiler::onInterval(RuntimeControl& rc) {
  const Stats& s = rc.stats();
  std::uint64_t instr = s.instructions;
  std::uint64_t cycles = rc.coreCycles();
  std::uint64_t memOps = memOpsOf(s);
  if (first_) {
    first_ = false;
    lastInstr_ = instr;
    lastCycles_ = cycles;
    lastMemOps_ = memOps;
    return;
  }
  PhaseSample sample;
  sample.time = rc.now();
  sample.instrDelta = instr - lastInstr_;
  sample.cycleDelta = cycles - lastCycles_;
  std::uint64_t memDelta = memOps - lastMemOps_;
  lastInstr_ = instr;
  lastCycles_ = cycles;
  lastMemOps_ = memOps;
  if (sample.cycleDelta == 0) return;
  sample.ipc = static_cast<double>(sample.instrDelta) /
               static_cast<double>(sample.cycleDelta);
  sample.memFrac =
      sample.instrDelta == 0
          ? 0.0
          : static_cast<double>(memDelta) /
                static_cast<double>(sample.instrDelta);

  double ipcN = sample.ipc / (1.0 + sample.ipc);
  int best = -1;
  double bestDist = threshold_;
  // Memory intensity is the stronger phase discriminator on XMT (the
  // paper's execution profiles show "memory and computation intensive
  // phases"), so it is weighted up in the distance metric.
  constexpr double kMemWeight = 3.0;
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    double d = std::hypot(
        ipcN - centroids_[i].ipcN,
        kMemWeight * (sample.memFrac - centroids_[i].memFrac));
    if (d <= bestDist) {
      bestDist = d;
      best = static_cast<int>(i);
    }
  }
  if (best < 0) {
    centroids_.push_back(Centroid{ipcN, sample.memFrac, 1});
    best = static_cast<int>(centroids_.size()) - 1;
  } else {
    Centroid& c = centroids_[static_cast<std::size_t>(best)];
    ++c.count;
    c.ipcN += (ipcN - c.ipcN) / c.count;
    c.memFrac += (sample.memFrac - c.memFrac) / c.count;
  }
  sample.phaseId = best;
  samples_.push_back(sample);
}

std::string PhaseProfiler::report() const {
  std::ostringstream ss;
  ss << "phase timeline (" << centroids_.size() << " phases, "
     << samples_.size() << " intervals):\n  ";
  for (const auto& s : samples_)
    ss << static_cast<char>('A' + (s.phaseId % 26));
  ss << "\n";
  std::map<int, std::pair<double, double>> agg;  // phase -> (ipc, memFrac)
  std::map<int, int> counts;
  for (const auto& s : samples_) {
    agg[s.phaseId].first += s.ipc;
    agg[s.phaseId].second += s.memFrac;
    ++counts[s.phaseId];
  }
  for (const auto& [id, sums] : agg) {
    ss << "  phase " << static_cast<char>('A' + (id % 26)) << ": "
       << counts[id] << " intervals, avg IPC "
       << sums.first / counts[id] << ", mem fraction "
       << sums.second / counts[id] << "\n";
  }
  return ss.str();
}

double PhaseProfiler::estimateCycles(const std::vector<PhaseSample>& samples,
                                     int detailPerPhase,
                                     double* detailedFraction) {
  std::map<int, int> seen;
  std::map<int, double> cpiSum;
  std::map<int, int> cpiCount;
  double total = 0;
  int detailed = 0;
  for (const auto& s : samples) {
    int k = seen[s.phaseId]++;
    if (k < detailPerPhase) {
      // Detailed interval: exact cycles, and it trains the phase CPI.
      total += static_cast<double>(s.cycleDelta);
      if (s.instrDelta > 0) {
        cpiSum[s.phaseId] += static_cast<double>(s.cycleDelta) /
                             static_cast<double>(s.instrDelta);
        ++cpiCount[s.phaseId];
      }
      ++detailed;
    } else {
      // Fast-forwarded interval: instructions are known (the functional
      // model provides them); cycles extrapolate from the phase CPI.
      double cpi = cpiCount[s.phaseId] > 0
                       ? cpiSum[s.phaseId] / cpiCount[s.phaseId]
                       : 1.0;
      total += cpi * static_cast<double>(s.instrDelta);
    }
  }
  if (detailedFraction != nullptr)
    *detailedFraction =
        samples.empty()
            ? 0.0
            : static_cast<double>(detailed) / static_cast<double>(samples.size());
  return total;
}

}  // namespace xmt
