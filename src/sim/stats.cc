#include "src/sim/stats.h"

#include <sstream>

namespace xmt {

std::string Stats::report() const {
  std::ostringstream ss;
  ss << "=== simulation statistics ===\n";
  ss << "instructions:        " << instructions << "\n";
  ss << "cycles:              " << cycles << "\n";
  ss << "sim time (ps):       " << simTime << "\n";
  ss << "spawns:              " << spawns << "\n";
  ss << "virtual threads:     " << virtualThreads << "\n";
  static const char* kFuNames[] = {"alu", "shift", "branch", "mdu",
                                   "fpu", "mem",   "ps",     "control"};
  ss << "instructions by functional unit:\n";
  for (int i = 0; i < 8; ++i)
    if (fuCount[static_cast<std::size_t>(i)] != 0)
      ss << "  " << kFuNames[i] << ": "
         << fuCount[static_cast<std::size_t>(i)] << "\n";
  ss << "instructions by opcode:\n";
  for (int i = 0; i < kNumOps; ++i)
    if (opCount[static_cast<std::size_t>(i)] != 0)
      ss << "  " << opInfo(static_cast<Op>(i)).name << ": "
         << opCount[static_cast<std::size_t>(i)] << "\n";
  ss << "shared cache:        " << cacheHits << " hits, " << cacheMisses
     << " misses\n";
  ss << "master cache:        " << masterCacheHits << " hits, "
     << masterCacheMisses << " misses\n";
  ss << "read-only cache:     " << roCacheHits << " hits, " << roCacheMisses
     << " misses\n";
  ss << "prefetch buf hits:   " << prefetchBufferHits << "\n";
  ss << "DRAM requests:       " << dramRequests << "\n";
  ss << "ICN packets:         " << icnPackets << "\n";
  ss << "TCU mem-wait cycles: " << memWaitCycles << "\n";
  ss << "ps requests:         " << psRequests << "\n";
  ss << "psm requests:        " << psmRequests << "\n";
  ss << "non-blocking stores: " << nonBlockingStores << "\n";
  return ss.str();
}

}  // namespace xmt
