// Simulation statistics: the built-in instruction and activity counters.
//
// "XMTSim features built-in counters that keep record of the executed
// instructions and the activity of the cycle-accurate components."
// (Section III-B). Stats is filled by both simulation modes; the
// cycle-accurate-only fields stay zero in functional mode.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/desim/scheduler.h"
#include "src/isa/isa.h"

namespace xmt {

/// Per-cluster activity, consumed by the power/thermal model and the
/// floorplan visualizer.
struct ClusterActivity {
  std::uint64_t instructions = 0;
  std::uint64_t aluOps = 0;
  std::uint64_t mduOps = 0;
  std::uint64_t fpuOps = 0;
  std::uint64_t memOps = 0;
  std::uint64_t activeCycles = 0;  // cycles with >=1 TCU issuing
};

struct Stats {
  // Instruction counters (both modes).
  std::array<std::uint64_t, kNumOps> opCount{};
  std::array<std::uint64_t, 8> fuCount{};  // indexed by FuKind
  std::uint64_t instructions = 0;
  std::uint64_t spawns = 0;
  std::uint64_t virtualThreads = 0;

  // Cycle-accurate activity counters.
  std::uint64_t cycles = 0;  // core-domain cycles at end of run
  SimTime simTime = 0;       // picoseconds at end of run
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t dramRequests = 0;
  std::uint64_t masterCacheHits = 0;
  std::uint64_t masterCacheMisses = 0;
  std::uint64_t roCacheHits = 0;
  std::uint64_t roCacheMisses = 0;
  std::uint64_t prefetchBufferHits = 0;
  std::uint64_t icnPackets = 0;
  std::uint64_t memWaitCycles = 0;   // TCU-cycles blocked on memory
  std::uint64_t psRequests = 0;
  std::uint64_t psmRequests = 0;
  std::uint64_t nonBlockingStores = 0;
  std::vector<ClusterActivity> perCluster;

  /// Records one committed instruction.
  void countInstruction(const Instruction& in) {
    ++instructions;
    ++opCount[static_cast<std::size_t>(in.op)];
    ++fuCount[static_cast<std::size_t>(opInfo(in.op).fu)];
  }

  /// Folds another Stats' *additive* counters into this one — the PDES
  /// deterministic merge (shards accumulate into private Stats; the merge
  /// happens in fixed shard order). Every field here is an unsigned integer
  /// delta, so addition is exact and order-insensitive. Absolute
  /// end-of-run fields (cycles, simTime, the cache hit/miss totals synced
  /// from the actors) are deliberately excluded: they are set once after
  /// merging.
  void mergeCounters(const Stats& o) {
    for (std::size_t i = 0; i < opCount.size(); ++i) opCount[i] += o.opCount[i];
    for (std::size_t i = 0; i < fuCount.size(); ++i) fuCount[i] += o.fuCount[i];
    instructions += o.instructions;
    spawns += o.spawns;
    virtualThreads += o.virtualThreads;
    dramRequests += o.dramRequests;
    prefetchBufferHits += o.prefetchBufferHits;
    icnPackets += o.icnPackets;
    memWaitCycles += o.memWaitCycles;
    psRequests += o.psRequests;
    psmRequests += o.psmRequests;
    nonBlockingStores += o.nonBlockingStores;
    if (perCluster.size() < o.perCluster.size())
      perCluster.resize(o.perCluster.size());
    for (std::size_t i = 0; i < o.perCluster.size(); ++i) {
      perCluster[i].instructions += o.perCluster[i].instructions;
      perCluster[i].aluOps += o.perCluster[i].aluOps;
      perCluster[i].mduOps += o.perCluster[i].mduOps;
      perCluster[i].fpuOps += o.perCluster[i].fpuOps;
      perCluster[i].memOps += o.perCluster[i].memOps;
      perCluster[i].activeCycles += o.perCluster[i].activeCycles;
    }
  }

  /// Multi-line human-readable report (end-of-simulation statistics).
  std::string report() const;
};

/// One architectural memory access as observed by the functional model —
/// the event stream the dynamic race checker consumes.
struct MemAccess {
  std::uint64_t spawnSeq = 0;  // 0 in serial code; else the Nth spawn region
  std::uint32_t tid = 0;       // virtual thread ID ($); 0 for the master
  bool parallel = false;       // inside a spawn region
  bool write = false;
  bool atomic = false;         // psm (counts as both read and write)
  std::uint32_t addr = 0;
  std::uint32_t size = 4;      // bytes
  std::int32_t srcLine = 0;    // source line carried on the instruction
};

/// Observer invoked at each instruction commit. The Simulator routes these
/// to the statistics, filter plug-ins, and trace sinks.
class CommitObserver {
 public:
  virtual ~CommitObserver() = default;
  /// `memAddr` is the effective address for memory-class ops, 0 otherwise.
  virtual void onCommit(int cluster, int tcu, const Instruction& in,
                        std::uint32_t pc, std::uint32_t memAddr) = 0;
  /// Architectural memory access (loads, stores, psm). Default: ignored.
  virtual void onMemAccess(const MemAccess& access) { (void)access; }
};

}  // namespace xmt
