// Program phase detection and phase-sampling estimation (paper
// Section III-F, "Phase sampling", citing SimPoint [38]).
//
// "Programs with very long execution times usually consist of multiple
// phases where each phase is a set of intervals that have similar behavior.
// An extension to the XMT system can be tested by running the cycle-
// accurate simulation for a few intervals on each phase and fast-forwarding
// in-between."
//
// PhaseProfiler is an activity plug-in that fingerprints each sampling
// interval (IPC, memory intensity) and clusters intervals into phases with
// a simple online nearest-centroid scheme. estimateCycles() then evaluates
// the phase-sampling idea offline: simulate in detail only the first K
// intervals of each phase, extrapolate the rest from the phase's CPI — and
// compare the estimate against the fully detailed run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/plugins.h"

namespace xmt {

struct PhaseSample {
  SimTime time = 0;
  std::uint64_t instrDelta = 0;
  std::uint64_t cycleDelta = 0;
  double ipc = 0;      // instructions per core cycle over the interval
  double memFrac = 0;  // fraction of instructions that touch memory
  int phaseId = 0;
};

class PhaseProfiler : public ActivityPlugin {
 public:
  /// `distThreshold` controls phase granularity: a new interval joins the
  /// nearest phase centroid within this distance, else starts a new phase.
  explicit PhaseProfiler(double distThreshold = 0.2)
      : threshold_(distThreshold) {}

  void onInterval(RuntimeControl& rc) override;

  const std::vector<PhaseSample>& samples() const { return samples_; }
  int phaseCount() const { return static_cast<int>(centroids_.size()); }

  /// Human-readable phase timeline and per-phase behaviour summary.
  std::string report() const;

  /// Offline phase-sampling evaluation: estimated total cycles when only
  /// the first `detailPerPhase` intervals of each phase run cycle-accurate
  /// and the rest are fast-forwarded with the phase's measured CPI.
  /// Also returns via `detailedFraction` the fraction of intervals that
  /// needed detailed simulation.
  static double estimateCycles(const std::vector<PhaseSample>& samples,
                               int detailPerPhase,
                               double* detailedFraction = nullptr);

 private:
  struct Centroid {
    double ipcN = 0;  // ipc/(1+ipc), bounded to [0,1)
    double memFrac = 0;
    int count = 0;
  };

  double threshold_;
  bool first_ = true;
  std::uint64_t lastInstr_ = 0;
  std::uint64_t lastCycles_ = 0;
  std::uint64_t lastMemOps_ = 0;
  std::vector<Centroid> centroids_;
  std::vector<PhaseSample> samples_;
};

}  // namespace xmt
