#include "src/compiler/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>

#include "src/common/error.h"

namespace xmt {

namespace {

const std::map<std::string, Tok, std::less<>> kKeywords = {
    {"int", Tok::kInt},         {"unsigned", Tok::kUnsigned},
    {"float", Tok::kFloat},     {"char", Tok::kChar},
    {"void", Tok::kVoid},       {"if", Tok::kIf},
    {"else", Tok::kElse},       {"while", Tok::kWhile},
    {"for", Tok::kFor},         {"do", Tok::kDo},
    {"break", Tok::kBreak},     {"continue", Tok::kContinue},
    {"return", Tok::kReturn},   {"spawn", Tok::kSpawn},
    {"psBaseReg", Tok::kPsBaseReg}, {"volatile", Tok::kVolatile},
    {"sizeof", Tok::kSizeof},
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    for (;;) {
      skipWhitespaceAndComments();
      Token t = next();
      out.push_back(t);
      if (t.kind == Tok::kEof) break;
    }
    return out;
  }

 private:
  char peek(int ahead = 0) const {
    std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < src_.size() ? src_[i] : '\0';
  }
  char get() {
    char c = peek();
    if (c == '\n') ++line_;
    if (pos_ < src_.size()) ++pos_;
    return c;
  }
  bool eat(char c) {
    if (peek() == c) {
      get();
      return true;
    }
    return false;
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw CompileError(line_, msg);
  }

  /// Converts an integer literal, diagnosing out-of-range values instead of
  /// silently saturating to LLONG_MAX the way bare strtoll would.
  std::int64_t parseIntLit(const std::string& num, int base) {
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(num.c_str(), &end, base);
    if (end != num.c_str() + num.size())
      fail("malformed integer literal '" + num + "'");
    if (errno == ERANGE)
      fail("integer literal '" + num + "' out of range");
    return v;
  }

  void skipWhitespaceAndComments() {
    for (;;) {
      char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        get();
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        while (peek() != '\n' && peek() != '\0') get();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        get();
        get();
        while (!(peek() == '*' && peek(1) == '/')) {
          if (peek() == '\0') fail("unterminated block comment");
          get();
        }
        get();
        get();
        continue;
      }
      return;
    }
  }

  char unescape() {
    char c = get();
    if (c != '\\') return c;
    char e = get();
    switch (e) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default: fail(std::string("bad escape '\\") + e + "'");
    }
  }

  Token next() {
    Token t;
    t.line = line_;
    char c = peek();
    if (c == '\0') {
      t.kind = Tok::kEof;
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string id;
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_')
        id += get();
      auto it = kKeywords.find(id);
      if (it != kKeywords.end()) {
        t.kind = it->second;
      } else {
        t.kind = Tok::kIdent;
        t.text = std::move(id);
      }
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool isFloat = false;
      if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        num += get();
        num += get();
        while (std::isxdigit(static_cast<unsigned char>(peek())))
          num += get();
        t.kind = Tok::kIntLit;
        t.intVal = parseIntLit(num, 16);
        return t;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) num += get();
      if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
        isFloat = true;
        num += get();
        while (std::isdigit(static_cast<unsigned char>(peek()))) num += get();
      }
      if (peek() == 'e' || peek() == 'E') {
        isFloat = true;
        num += get();
        if (peek() == '+' || peek() == '-') num += get();
        while (std::isdigit(static_cast<unsigned char>(peek()))) num += get();
      }
      if (peek() == 'f' || peek() == 'F') {
        isFloat = true;
        get();
      }
      if (isFloat) {
        t.kind = Tok::kFloatLit;
        t.floatVal = std::strtod(num.c_str(), nullptr);
      } else {
        t.kind = Tok::kIntLit;
        t.intVal = parseIntLit(num, 10);
      }
      return t;
    }
    if (c == '\'') {
      get();
      t.kind = Tok::kCharLit;
      t.intVal = static_cast<unsigned char>(unescape());
      if (!eat('\'')) fail("unterminated character literal");
      return t;
    }
    if (c == '"') {
      get();
      t.kind = Tok::kStringLit;
      while (peek() != '"') {
        if (peek() == '\0') fail("unterminated string literal");
        t.text += unescape();
      }
      get();
      return t;
    }
    get();
    switch (c) {
      case '(': t.kind = Tok::kLParen; return t;
      case ')': t.kind = Tok::kRParen; return t;
      case '{': t.kind = Tok::kLBrace; return t;
      case '}': t.kind = Tok::kRBrace; return t;
      case '[': t.kind = Tok::kLBracket; return t;
      case ']': t.kind = Tok::kRBracket; return t;
      case ';': t.kind = Tok::kSemi; return t;
      case ',': t.kind = Tok::kComma; return t;
      case '$': t.kind = Tok::kDollar; return t;
      case '?': t.kind = Tok::kQuestion; return t;
      case ':': t.kind = Tok::kColon; return t;
      case '~': t.kind = Tok::kTilde; return t;
      case '+':
        if (eat('+')) t.kind = Tok::kPlusPlus;
        else if (eat('=')) t.kind = Tok::kPlusAssign;
        else t.kind = Tok::kPlus;
        return t;
      case '-':
        if (eat('-')) t.kind = Tok::kMinusMinus;
        else if (eat('=')) t.kind = Tok::kMinusAssign;
        else t.kind = Tok::kMinus;
        return t;
      case '*':
        t.kind = eat('=') ? Tok::kStarAssign : Tok::kStar;
        return t;
      case '/':
        t.kind = eat('=') ? Tok::kSlashAssign : Tok::kSlash;
        return t;
      case '%':
        t.kind = eat('=') ? Tok::kPercentAssign : Tok::kPercent;
        return t;
      case '&':
        if (eat('&')) t.kind = Tok::kAmpAmp;
        else if (eat('=')) t.kind = Tok::kAndAssign;
        else t.kind = Tok::kAmp;
        return t;
      case '|':
        if (eat('|')) t.kind = Tok::kPipePipe;
        else if (eat('=')) t.kind = Tok::kOrAssign;
        else t.kind = Tok::kPipe;
        return t;
      case '^':
        t.kind = eat('=') ? Tok::kXorAssign : Tok::kCaret;
        return t;
      case '!':
        t.kind = eat('=') ? Tok::kNe : Tok::kBang;
        return t;
      case '=':
        t.kind = eat('=') ? Tok::kEq : Tok::kAssign;
        return t;
      case '<':
        if (eat('<')) t.kind = eat('=') ? Tok::kShlAssign : Tok::kShl;
        else if (eat('=')) t.kind = Tok::kLe;
        else t.kind = Tok::kLt;
        return t;
      case '>':
        if (eat('>')) t.kind = eat('=') ? Tok::kShrAssign : Tok::kShr;
        else if (eat('=')) t.kind = Tok::kGe;
        else t.kind = Tok::kGt;
        return t;
      default:
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::vector<Token> lex(const std::string& source) {
  return Lexer(source).run();
}

const char* tokName(Tok t) {
  switch (t) {
    case Tok::kEof: return "end of file";
    case Tok::kIdent: return "identifier";
    case Tok::kIntLit: return "integer literal";
    case Tok::kFloatLit: return "float literal";
    case Tok::kCharLit: return "char literal";
    case Tok::kStringLit: return "string literal";
    case Tok::kInt: return "'int'";
    case Tok::kUnsigned: return "'unsigned'";
    case Tok::kFloat: return "'float'";
    case Tok::kChar: return "'char'";
    case Tok::kVoid: return "'void'";
    case Tok::kIf: return "'if'";
    case Tok::kElse: return "'else'";
    case Tok::kWhile: return "'while'";
    case Tok::kFor: return "'for'";
    case Tok::kDo: return "'do'";
    case Tok::kBreak: return "'break'";
    case Tok::kContinue: return "'continue'";
    case Tok::kReturn: return "'return'";
    case Tok::kSpawn: return "'spawn'";
    case Tok::kPsBaseReg: return "'psBaseReg'";
    case Tok::kVolatile: return "'volatile'";
    case Tok::kSizeof: return "'sizeof'";
    case Tok::kLParen: return "'('";
    case Tok::kRParen: return "')'";
    case Tok::kLBrace: return "'{'";
    case Tok::kRBrace: return "'}'";
    case Tok::kLBracket: return "'['";
    case Tok::kRBracket: return "']'";
    case Tok::kSemi: return "';'";
    case Tok::kComma: return "','";
    case Tok::kDollar: return "'$'";
    case Tok::kQuestion: return "'?'";
    case Tok::kColon: return "':'";
    case Tok::kAssign: return "'='";
    default: return "operator";
  }
}

}  // namespace xmt
