// Recursive-descent parser for XMTC.
#pragma once

#include <memory>
#include <string>

#include "src/compiler/ast.h"

namespace xmt {

/// Parses XMTC source into an AST. Throws CompileError with the offending
/// line on any syntax error. Identifier resolution and typing happen in the
/// subsequent sema pass.
std::unique_ptr<TranslationUnit> parse(const std::string& source);

}  // namespace xmt
