// Semantic analysis for XMTC: name resolution, type checking and
// annotation, lvalue validation, psBaseReg global-register allocation, and
// the XMT-specific rules ($ only inside spawn, ps over psBaseReg variables
// only, no multi-dimensional arrays, at most 4 register arguments).
#pragma once

#include "src/compiler/ast.h"

namespace xmt {

/// Analyzes and annotates the AST in place. Throws CompileError on any
/// violation.
void analyze(TranslationUnit& tu);

/// True if `e` designates a storage location (assignable).
bool isLvalue(const Expr& e);

}  // namespace xmt
