#include "src/compiler/analysis/asmverify.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "src/assembler/assembler.h"
#include "src/assembler/program.h"
#include "src/common/error.h"
#include "src/isa/isa.h"

namespace xmt::analysis {

namespace {

using RegMask = std::uint32_t;

constexpr RegMask kAllRegs = 0xffffffffu;

RegMask bit(int r) { return r < 0 ? 0u : (1u << static_cast<unsigned>(r)); }

// Registers the calling convention defines at a callee's entry: the
// hardware initializes sp, the caller's jal sets ra, and arguments arrive
// in a0..a3. gp/fp are reserved by convention and never read before being
// set by our codegen.
const RegMask kCalleeEntryDefs = bit(kZero) | bit(kSp) | bit(kGp) | bit(kFp) |
                                 bit(kRa) | bit(kA0) | bit(kA1) | bit(kA2) |
                                 bit(kA3);
// At program entry only zero/sp (hardware) and gp/fp (convention) hold
// meaningful values.
const RegMask kMainEntryDefs = bit(kZero) | bit(kSp) | bit(kGp) | bit(kFp);
// Caller-saved registers a call may clobber (plus the scratch regs at/k1
// the runtime reserves). Used as the call's def set in liveness so stale
// values are not considered live across calls.
const RegMask kCallClobbers = bit(kAt) | bit(kV0) | bit(kV1) | bit(kA0) |
                              bit(kA1) | bit(kA2) | bit(kA3) | bit(kT0) |
                              bit(kT1) | bit(kT2) | bit(kT3) | bit(kT4) |
                              bit(kT5) | bit(kT6) | bit(kT7) | bit(kT8) |
                              bit(kT9) | bit(kK1) | bit(kRa);

RegMask defMask(const Instruction& in) {
  int d = regDef(in);
  return d <= 0 ? 0u : bit(d);  // a write to `zero` is architecturally void
}

RegMask useMask(const Instruction& in) {
  int u[3];
  int cnt = regUses(in, u);
  RegMask m = 0;
  for (int i = 0; i < cnt; ++i) m |= bit(u[i]);
  return m & ~bit(kZero);  // reading `zero` never needs a definition
}

struct Verifier {
  const Program& prog;
  const AsmVerifyOptions& opts;
  std::vector<Diagnostic> diags;
  int n;
  std::map<std::uint32_t, std::string> textLabels;  // addr -> first label

  // One finding per (code, instruction, detail) so loops and shared paths
  // do not flood the report.
  std::set<std::tuple<int, int, int>> reported;

  Verifier(const Program& p, const AsmVerifyOptions& o)
      : prog(p), opts(o), n(static_cast<int>(p.text.size())) {
    for (const auto& [name, sym] : prog.symbols)
      if (sym.isText) textLabels.emplace(sym.addr, name);
  }

  const Instruction& at(int i) const {
    return prog.text[static_cast<std::size_t>(i)];
  }

  int indexOf(std::int32_t addr) const {
    std::uint32_t a = static_cast<std::uint32_t>(addr);
    if (a < kTextBase || (a - kTextBase) % 4 != 0) return -1;
    std::uint32_t i = (a - kTextBase) / 4;
    return i < static_cast<std::uint32_t>(n) ? static_cast<int>(i) : -1;
  }

  std::string labelAt(int i) const {
    auto it = textLabels.find(kTextBase + 4u * static_cast<std::uint32_t>(i));
    return it == textLabels.end() ? std::string() : it->second;
  }

  void report(DiagCode code, int i, std::string msg, std::string symbol = {},
              int otherLine = -1, int aux = 0) {
    if (!reported.emplace(static_cast<int>(code), i, aux).second) return;
    Diagnostic d;
    d.code = code;
    d.severity = Severity::kWarning;
    d.line = (i >= 0 && i < n) ? at(i).srcLine : 0;
    d.otherLine = otherLine;
    d.symbol = std::move(symbol);
    d.message = std::move(msg);
    diags.push_back(std::move(d));
  }

  // Successors as the serial (master) processor executes: calls fall
  // through (the callee returns), spawn resumes at the region end,
  // jr/join/halt end the path.
  void masterSuccs(int i, std::vector<int>& out) const {
    out.clear();
    const Instruction& in = at(i);
    switch (in.op) {
      case Op::kJ: {
        int t = indexOf(in.imm);
        if (t >= 0) out.push_back(t);
        return;
      }
      case Op::kJal:
      case Op::kJalr:
        if (i + 1 < n) out.push_back(i + 1);
        return;
      case Op::kJr:
      case Op::kJoin:
      case Op::kHalt:
        return;
      case Op::kSpawn: {
        int c = indexOf(in.imm2);
        if (c >= 0) out.push_back(c);
        return;
      }
      default:
        if (in.isBranch()) {  // conditional beq..bge
          int t = indexOf(in.imm);
          if (t >= 0) out.push_back(t);
        }
        if (i + 1 < n) out.push_back(i + 1);
    }
  }

  // --- Per-function master analyses -------------------------------------

  struct FuncAnalysis {
    std::vector<int> body;                 // reachable instruction indices
    std::map<int, RegMask> mustDefIn;      // defined on all paths, pre-instr
    std::map<int, RegMask> liveIn;         // read before redefinition
    std::map<int, bool> dirtyIn;           // swnb possibly outstanding
  };

  FuncAnalysis analyzeFunction(int entry, bool isProgramEntry) {
    FuncAnalysis fa;
    std::vector<int> succs;

    // Reachability.
    {
      std::set<int> seen;
      std::vector<int> work{entry};
      while (!work.empty()) {
        int i = work.back();
        work.pop_back();
        if (!seen.insert(i).second) continue;
        masterSuccs(i, succs);
        for (int t : succs) work.push_back(t);
      }
      fa.body.assign(seen.begin(), seen.end());
    }

    // Forward: must-defined registers (intersection over paths) and
    // may-outstanding swnb (union over paths).
    {
      std::vector<int> work{entry};
      fa.mustDefIn[entry] = isProgramEntry ? kMainEntryDefs : kCalleeEntryDefs;
      fa.dirtyIn[entry] = false;
      while (!work.empty()) {
        int i = work.back();
        work.pop_back();
        const Instruction& in = at(i);
        RegMask m = fa.mustDefIn[i] | defMask(in);
        if (isCall(in)) m |= bit(kV0) | bit(kV1) | bit(kRa);
        bool d = fa.dirtyIn[i];
        if (drainsStores(in) || in.op == Op::kSpawn) d = false;
        else if (isNonBlockingStore(in)) d = true;
        else if (isCall(in)) d = true;  // mirror the compiler: callee may store
        masterSuccs(i, succs);
        for (int t : succs) {
          bool changed = false;
          auto it = fa.mustDefIn.find(t);
          if (it == fa.mustDefIn.end()) {
            fa.mustDefIn[t] = m;
            fa.dirtyIn[t] = d;
            changed = true;
          } else {
            if ((it->second & m) != it->second) {
              it->second &= m;
              changed = true;
            }
            if (d && !fa.dirtyIn[t]) {
              fa.dirtyIn[t] = true;
              changed = true;
            }
          }
          if (changed) work.push_back(t);
        }
      }
    }

    // Backward: liveness. jal's clobber set kills values across calls and
    // its a0..a3 use keeps outgoing arguments alive; jr keeps the v0
    // return value alive into the caller.
    {
      bool changed = true;
      while (changed) {
        changed = false;
        for (auto it = fa.body.rbegin(); it != fa.body.rend(); ++it) {
          int i = *it;
          const Instruction& in = at(i);
          RegMask liveOut = 0;
          masterSuccs(i, succs);
          for (int t : succs) liveOut |= fa.liveIn[t];
          RegMask defs = defMask(in);
          RegMask uses = useMask(in);
          if (isCall(in)) {
            defs |= kCallClobbers;
            uses |= bit(kA0) | bit(kA1) | bit(kA2) | bit(kA3);
          }
          if (in.op == Op::kJr) uses |= bit(kV0);
          RegMask li = uses | (liveOut & ~defs);
          if (li != fa.liveIn[i]) {
            fa.liveIn[i] = li;
            changed = true;
          }
        }
      }
    }
    return fa;
  }

  // --- Spawn-region checks ----------------------------------------------

  // Successors inside a region: join ends a thread; illegal control
  // transfers (spawn/halt/calls/returns) are reported separately and not
  // expanded.
  void regionSuccs(int i, std::vector<int>& out) const {
    out.clear();
    const Instruction& in = at(i);
    switch (in.op) {
      case Op::kJ: {
        int t = indexOf(in.imm);
        if (t >= 0) out.push_back(t);
        return;
      }
      case Op::kJoin:
      case Op::kSpawn:
      case Op::kHalt:
      case Op::kJal:
      case Op::kJalr:
      case Op::kJr:
        return;
      default:
        if (in.isBranch()) {
          int t = indexOf(in.imm);
          if (t >= 0) out.push_back(t);
        }
        out.push_back(i + 1);  // may be == region end; caught as an escape
    }
  }

  void checkRegion(int si, RegMask broadcast, RegMask contLive) {
    const Instruction& sp = at(si);
    int s = indexOf(sp.imm);
    int c = indexOf(sp.imm2);
    std::string regionLbl = s >= 0 ? labelAt(s) : std::string();
    if (s < 0 || c < 0 || s >= c) {
      report(DiagCode::kAsmBadRegion, si,
             "spawn bounds do not form a valid text range (start 0x" +
                 toHex(sp.imm) + ", end 0x" + toHex(sp.imm2) + ")",
             regionLbl);
      return;
    }

    // Reachable region instructions; escapes and illegal ops on the way.
    std::set<int> body;
    bool sawJoin = false;
    {
      std::vector<int> work{s};
      std::vector<int> succs;
      while (!work.empty()) {
        int i = work.back();
        work.pop_back();
        if (!body.insert(i).second) continue;
        const Instruction& in = at(i);
        if (in.op == Op::kJoin) sawJoin = true;
        const char* illegal =
            in.op == Op::kSpawn  ? "nested spawn"
            : in.op == Op::kHalt ? "halt"
            : isCall(in)         ? "function call"
            : in.op == Op::kJr   ? "jr (no calls or returns in parallel code)"
                                 : nullptr;
        if (illegal)
          report(DiagCode::kAsmIllegalInRegion, i,
                 std::string(illegal) + " inside spawn region", regionLbl, -1,
                 i);
        if ((useMask(in) | defMask(in)) & bit(kSp))
          report(DiagCode::kAsmParallelStack, i,
                 "sp referenced inside spawn region ('" + disassemble(in) +
                     "'): there is no parallel stack",
                 regionLbl, -1, i);
        regionSuccs(i, succs);
        for (int t : succs) {
          if (t < s || t >= c) {
            std::string where = labelAt(t);
            report(DiagCode::kAsmRegionEscape, i,
                   "control flow leaves the spawn region ('" +
                       disassemble(in) + "' reaches " +
                       (where.empty() ? ("instruction " + std::to_string(t))
                                      : where) +
                       "): TCUs only fetch the broadcast range",
                   regionLbl, t >= 0 && t < n ? at(t).srcLine : -1, i);
          } else {
            work.push_back(t);
          }
        }
      }
    }
    if (!sawJoin)
      report(DiagCode::kAsmMissingJoin, si,
             "no reachable join terminates the spawn region", regionLbl);

    // Forward over the region CFG (TCUs start with an empty store queue and
    // the broadcast master registers): swnb-dirty (union) + must-defined
    // registers (intersection).
    std::map<int, RegMask> mustDefIn;
    std::map<int, bool> dirtyIn;
    {
      std::vector<int> work{s};
      std::vector<int> succs;
      mustDefIn[s] = broadcast | bit(kZero) | bit(kTid);
      dirtyIn[s] = false;
      while (!work.empty()) {
        int i = work.back();
        work.pop_back();
        const Instruction& in = at(i);
        RegMask m = mustDefIn[i] | defMask(in);
        bool d = dirtyIn[i];
        if (drainsStores(in)) d = false;
        else if (isNonBlockingStore(in)) d = true;
        regionSuccs(i, succs);
        for (int t : succs) {
          if (t < s || t >= c) continue;  // escape, already reported
          bool changed = false;
          auto it = mustDefIn.find(t);
          if (it == mustDefIn.end()) {
            mustDefIn[t] = m;
            dirtyIn[t] = d;
            changed = true;
          } else {
            if ((it->second & m) != it->second) {
              it->second &= m;
              changed = true;
            }
            if (d && !dirtyIn[t]) {
              dirtyIn[t] = true;
              changed = true;
            }
          }
          if (changed) work.push_back(t);
        }
      }
    }

    RegMask regionWrites = 0;
    for (int i : body) {
      const Instruction& in = at(i);
      regionWrites |= defMask(in);
      bool dirty = dirtyIn.count(i) && dirtyIn[i];
      if (isPrefixSum(in) && dirty)
        report(DiagCode::kAsmMissingFence, i,
               "path to '" + std::string(opInfo(in.op).name) +
                   "' with an outstanding swnb and no fence",
               regionLbl, -1, i);
      if (opts.strictJoinFence && in.op == Op::kJoin && dirty)
        report(DiagCode::kAsmSwnbAtJoin, i,
               "swnb outstanding at join (strict Section IV-A)", regionLbl, -1,
               i);
      // Every register read must be locally defined on all paths, a
      // broadcast master value, or a TCU-local special. at/k1 are runtime
      // scratch and never carry values into a region.
      RegMask defined =
          (mustDefIn.count(i) ? mustDefIn[i] : kAllRegs) | bit(kAt) | bit(kK1);
      RegMask missing = useMask(in) & ~defined & ~bit(kSp);
      for (int r = 0; r < kNumRegs && missing; ++r) {
        if (!(missing & bit(r))) continue;
        missing &= ~bit(r);
        report(DiagCode::kAsmUndefSpawnReg, i,
               "register " + std::string(regName(r)) +
                   " read inside spawn region ('" + disassemble(in) +
                   "') is neither locally defined nor a broadcast master "
                   "value",
               regionLbl, -1, i * kNumRegs + r);
      }
    }

    // Fig. 8 at machine level: a register written by the region and read by
    // the serial continuation is a lost update — TCU register files are
    // discarded at join. tid/zero are TCU-local; at/k1 are scratch.
    RegMask conflict = regionWrites & contLive &
                       ~(bit(kZero) | bit(kTid) | bit(kAt) | bit(kK1));
    for (int r = 0; r < kNumRegs && conflict; ++r) {
      if (!(conflict & bit(r))) continue;
      conflict &= ~bit(r);
      int defAt = -1;
      for (int i : body)
        if (defMask(at(i)) & bit(r)) {
          defAt = i;
          break;
        }
      report(DiagCode::kAsmRegionDataflow, defAt >= 0 ? defAt : si,
             "register " + std::string(regName(r)) +
                 " written inside spawn region but read by the serial "
                 "continuation: TCU registers are discarded at join "
                 "(Fig. 8 illegal dataflow)",
             std::string(regName(r)), c < n ? at(c).srcLine : -1, r);
    }
  }

  static std::string toHex(std::int32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%x", static_cast<std::uint32_t>(v));
    return buf;
  }

  void run() {
    if (n == 0) return;

    // Function entries: the program entry plus every jal target.
    std::set<int> entries;
    int mainIdx = indexOf(static_cast<std::int32_t>(prog.entry));
    if (mainIdx >= 0) entries.insert(mainIdx);
    for (int i = 0; i < n; ++i)
      if (at(i).op == Op::kJal) {
        int t = indexOf(at(i).imm);
        if (t >= 0) entries.insert(t);
      }

    // Master-side state at each spawn, merged across the functions that
    // reach it: broadcast register file (must-defined: intersection),
    // continuation liveness (union), store-queue state (union).
    std::map<int, RegMask> spawnBroadcast;
    std::map<int, RegMask> spawnContLive;
    for (int entry : entries) {
      FuncAnalysis fa = analyzeFunction(entry, entry == mainIdx);
      for (int i : fa.body) {
        const Instruction& in = at(i);
        bool dirty = fa.dirtyIn.count(i) && fa.dirtyIn[i];
        if (isPrefixSum(in) && dirty)
          report(DiagCode::kAsmMissingFence, i,
                 "path to '" + std::string(opInfo(in.op).name) +
                     "' with an outstanding swnb and no fence",
                 labelAt(entry), -1, i);
        if (in.op != Op::kSpawn) continue;
        if ((opts.strictJoinFence || opts.strictSpawnFence) && dirty)
          report(DiagCode::kAsmSwnbAtJoin, i,
                 "swnb outstanding at spawn (strict Section IV-A)",
                 labelAt(entry), -1, i);
        RegMask md = fa.mustDefIn.count(i) ? fa.mustDefIn[i] : kAllRegs;
        auto it = spawnBroadcast.find(i);
        if (it == spawnBroadcast.end()) spawnBroadcast[i] = md;
        else it->second &= md;
        int c = indexOf(in.imm2);
        RegMask live = (c >= 0 && fa.liveIn.count(c)) ? fa.liveIn[c] : 0;
        spawnContLive[i] |= live;
      }
    }

    // Region checks for every spawn in the text. Spawns unreachable from
    // any entry get a full broadcast mask (their definedness cannot be
    // judged) and empty continuation liveness.
    for (int i = 0; i < n; ++i) {
      if (at(i).op != Op::kSpawn) continue;
      RegMask broadcast =
          spawnBroadcast.count(i) ? spawnBroadcast[i] : kAllRegs;
      RegMask live = spawnContLive.count(i) ? spawnContLive[i] : 0;
      checkRegion(i, broadcast, live);
    }
  }
};

}  // namespace

std::vector<Diagnostic> verifyAssembly(const std::string& asmText,
                                       const AsmVerifyOptions& opts) {
  Program prog;
  try {
    prog = assemble(asmText);
  } catch (const Error& e) {
    Diagnostic d;
    d.code = DiagCode::kAsmUnassemblable;
    d.severity = Severity::kWarning;
    d.message = std::string("assembly does not decode: ") + e.what();
    return {std::move(d)};
  }
  Verifier v(prog, opts);
  v.run();
  return std::move(v.diags);
}

}  // namespace xmt::analysis
