#include "src/compiler/analysis/cfg.h"

#include <algorithm>

namespace xmt::analysis {

std::vector<int> successors(const IrBlock& b) {
  if (b.instrs.empty()) return {};
  const IrInstr& t = b.instrs.back();
  switch (t.op) {
    case IOp::kBr: return {t.t1, t.t2};
    case IOp::kJmp: return {t.t1};
    case IOp::kSpawn: return {t.t1, t.t2};
    default: return {};
  }
}

namespace {

// Iterative DFS postorder (linear block chains can be deep; no recursion).
void postorder(const std::vector<std::vector<int>>& succ, int entry,
               std::vector<bool>& seen, std::vector<int>& out) {
  std::vector<std::pair<int, std::size_t>> stack{{entry, 0}};
  seen[static_cast<std::size_t>(entry)] = true;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    const auto& ss = succ[static_cast<std::size_t>(b)];
    if (next < ss.size()) {
      int s = ss[next++];
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        stack.emplace_back(s, 0);
      }
    } else {
      out.push_back(b);
      stack.pop_back();
    }
  }
}

}  // namespace

Cfg buildCfg(const IrFunc& fn) {
  Cfg cfg;
  std::size_t n = fn.blocks.size();
  cfg.succ.resize(n);
  cfg.pred.resize(n);
  cfg.reachable.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    for (int s : successors(fn.blocks[i])) {
      if (s < 0 || static_cast<std::size_t>(s) >= n) continue;
      cfg.succ[i].push_back(s);
      cfg.pred[static_cast<std::size_t>(s)].push_back(static_cast<int>(i));
    }
  }
  if (n != 0) {
    std::vector<int> po;
    po.reserve(n);
    postorder(cfg.succ, 0, cfg.reachable, po);
    cfg.rpo.assign(po.rbegin(), po.rend());
  }
  return cfg;
}

}  // namespace xmt::analysis
