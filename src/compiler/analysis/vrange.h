// Integer value-range (interval) domain for the abstract interpreter.
//
// A VRange is a closed interval [lo, hi] of int64 bounds. Two different
// clients share the type with different conventions:
//
//   * The numeric engine (xmtai) models 32-bit program values. Every
//     transfer function suffixed `32` returns a range that is a sound
//     superset of the concrete int32 results: whenever a bound would
//     escape [INT32_MIN, INT32_MAX] — i.e. the concrete machine would
//     wrap — the result degrades to full32(). Numeric ranges therefore
//     always satisfy full32-containment, which is what makes folding
//     decisions (`-O2` dead-branch elimination) sound against the
//     simulator's two's-complement semantics.
//
//   * The alias domain (alias.h) uses VRange for byte-offset intervals,
//     where loop-carried strides are widened to the kNegInf / kPosInf
//     sentinels ("unbounded on this side") instead of collapsing the
//     whole value to Unknown. Offset arithmetic saturates at the
//     sentinels. (Caveat, documented in racecheck.h: an offset whose
//     concrete computation wraps past 2^31 may escape a one-sided
//     interval; the race lint treats infinite widths conservatively, so
//     this can only under-report on >2^31-iteration carriers.)
#pragma once

#include <cstdint>

namespace xmt::analysis {

struct VRange {
  // Sentinels with headroom so sums of two sentinels cannot overflow int64.
  static constexpr std::int64_t kNegInf = INT64_MIN / 4;
  static constexpr std::int64_t kPosInf = INT64_MAX / 4;

  std::int64_t lo = kNegInf;
  std::int64_t hi = kPosInf;

  static VRange full32();
  static VRange of(std::int64_t lo, std::int64_t hi);
  static VRange constant(std::int64_t v) { return of(v, v); }
  /// The canonical empty range (an unreachable state).
  static VRange empty();

  bool isEmpty() const { return lo > hi; }
  bool isConst() const { return lo == hi; }
  bool isFull32() const;
  bool contains(std::int64_t v) const { return lo <= v && v <= hi; }
  /// Both ends strictly inside int32 — the "user actually constrained
  /// this" test the may-warn lints key on.
  bool strictlyBounded32() const;
  std::int64_t width() const { return hi - lo; }

  bool operator==(const VRange& o) const { return lo == o.lo && hi == o.hi; }

  /// Interval hull (empty is the identity).
  VRange joined(const VRange& o) const;
  VRange intersected(const VRange& o) const;  // may be empty

  /// Standard widening against the previous iterate: any bound that moved
  /// jumps to the int32 extreme (numeric client) — always sound because
  /// int32 values live in full32 by construction.
  VRange widened32(const VRange& prev) const;
  /// Offset-client widening: moved bounds jump to the infinity sentinels.
  VRange widenedInf(const VRange& prev) const;

  // Saturating interval arithmetic for the offset client (sentinels are
  // sticky; results clamp into [kNegInf, kPosInf]).
  VRange addSat(const VRange& o) const;
  VRange negated() const;
  VRange mulConstSat(std::int64_t k) const;

  // int32-sound transfer functions for the numeric client. All inputs must
  // be full32-contained; results are full32-contained (wrap => full32).
  static VRange add32(const VRange& a, const VRange& b);
  static VRange sub32(const VRange& a, const VRange& b);
  static VRange mul32(const VRange& a, const VRange& b);
  static VRange div32(const VRange& a, const VRange& b);
  static VRange rem32(const VRange& a, const VRange& b);
  static VRange and32(const VRange& a, const VRange& b);
  static VRange or32(const VRange& a, const VRange& b);
  static VRange xor32(const VRange& a, const VRange& b);
  static VRange nor32(const VRange& a, const VRange& b);
  static VRange sll32(const VRange& a, const VRange& sh);
  static VRange srl32(const VRange& a, const VRange& sh);
  static VRange sra32(const VRange& a, const VRange& sh);
};

}  // namespace xmt::analysis
