#include "src/compiler/analysis/summary.h"

#include <vector>

#include "src/compiler/analysis/callgraph.h"
#include "src/compiler/analysis/xmtai.h"
#include "src/isa/isa.h"

namespace xmt::analysis {

AbsVal applyReturnSummary(const FuncSummary& s,
                          const std::vector<AbsVal>& argVals) {
  const AbsVal& r = s.retSym;
  if (r.kind != AbsVal::Kind::kValue) return AbsVal::unknown();
  if (r.origin == kOriginNone) return r;  // constant or sym+const
  if (!isParamOrigin(r.origin)) return AbsVal::unknown();
  int p = paramOfOrigin(r.origin);
  if (p < 0 || static_cast<std::size_t>(p) >= argVals.size())
    return AbsVal::unknown();
  AbsVal scaled = absMulConst(argVals[static_cast<std::size_t>(p)], r.scale);
  AbsVal rest = r;
  rest.origin = kOriginNone;
  rest.uniqueOrigin = false;
  rest.scale = 0;
  return absAdd(rest, scaled);
}

namespace {

/// True when `v` is a return shape that means the same thing at every call
/// site: an exact constant, a symbol at a fixed offset, or an affine
/// function of one parameter. A constant *range* with no origin is
/// excluded — two executions draw from it independently, so substituting
/// it at call sites would let the race lint compare unrelated calls as if
/// they were the same interval variable.
bool exportableReturn(const AbsVal& v) {
  if (v.kind != AbsVal::Kind::kValue) return false;
  if (v.origin == kOriginNone) return v.off.isConst();
  return isParamOrigin(v.origin);
}

/// Joined numeric range of kV0 over every reachable kRet.
VRange returnRange(const IrFunc& fn, const RangeAnalysis& ra) {
  VRange ret = VRange::empty();
  for (const IrBlock& b : fn.blocks) {
    if (!ra.blockReachable(b.id)) continue;
    ra.forEachInstr(b.id, [&](int i, const RangeAnalysis::State& st) {
      if (b.instrs[static_cast<std::size_t>(i)].op == IOp::kRet)
        ret = ret.joined(RangeAnalysis::stateOf(st, kV0));
    });
  }
  return ret.isEmpty() ? VRange::full32() : ret;
}

}  // namespace

ModuleSummaries buildModuleSummaries(const IrModule& mod,
                                     AnalysisManager& am) {
  ModuleSummaries out;
  CallGraph cg = buildCallGraph(mod);
  for (std::size_t i = 0; i < mod.funcs.size(); ++i)
    out.byName[mod.funcs[i].name].recursive = cg.recursive[i];

  // Bottom-up: return summaries (params TOP — sound for every call site).
  // Callees are final before any caller is processed, so nested calls
  // compose: f(){return g()+1;} summarizes through g's summary.
  for (int fi : cg.bottomUp) {
    const IrFunc& fn = mod.funcs[static_cast<std::size_t>(fi)];
    FuncSummary& s = out.byName[fn.name];
    if (s.recursive) continue;
    RangeAnalysis ra(fn, am, &out, nullptr);
    s.ret = returnRange(fn, ra);
    ValueResolver vr(fn, am, &out, &ra, /*seedParamOrigins=*/true);
    if (exportableReturn(vr.returnValue())) s.retSym = vr.returnValue();
  }

  // Top-down: join the numeric argument ranges observed at every call
  // site into the callee's parameter summary (callers first, so a
  // caller's own refined parameters sharpen what it passes down).
  std::map<std::string, std::array<VRange, kMaxSummaryParams>> seen;
  for (int fi : cg.topDown) {
    const IrFunc& fn = mod.funcs[static_cast<std::size_t>(fi)];
    FuncSummary& s = out.byName[fn.name];
    if (!s.recursive) {
      if (auto it = seen.find(fn.name); it != seen.end())
        for (int p = 0; p < kMaxSummaryParams; ++p)
          if (!it->second[static_cast<std::size_t>(p)].isEmpty())
            s.paramRanges[static_cast<std::size_t>(p)] =
                it->second[static_cast<std::size_t>(p)];
    }
    const VRange* params = s.recursive ? nullptr : s.paramRanges.data();
    RangeAnalysis ra(fn, am, &out, params);
    for (const IrBlock& b : fn.blocks) {
      if (!ra.blockReachable(b.id)) continue;
      ra.forEachInstr(b.id, [&](int i, const RangeAnalysis::State& st) {
        const IrInstr& in = b.instrs[static_cast<std::size_t>(i)];
        if (in.op != IOp::kCall) return;
        auto it = seen.find(in.sym);
        if (it == seen.end()) {
          std::array<VRange, kMaxSummaryParams> init;
          init.fill(VRange::empty());
          it = seen.emplace(in.sym, init).first;
        }
        for (std::size_t p = 0; p < in.args.size() &&
                                p < static_cast<std::size_t>(kMaxSummaryParams);
             ++p)
          it->second[p] =
              it->second[p].joined(RangeAnalysis::stateOf(st, in.args[p]));
      });
    }
  }
  return out;
}

}  // namespace xmt::analysis
