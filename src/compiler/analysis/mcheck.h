// Static facts feeding the model checker's independence relation (xmtmc).
//
// The DPOR explorer (src/testing/explore) decides at runtime whether two
// visible operations are *dependent* — whether swapping them could change
// the final state. Dynamically-disjoint addresses are already independent,
// but two prefix-sums to the same global register (or psm to the same cell)
// conflict on every schedule, and exploring their n! orderings is exactly
// the blow-up the paper's ps discipline is meant to make unnecessary. This
// pass proves, from the PR-1 alias domain and PR-6 value-range/summary
// analyses, when that exploration is pointless:
//
//   * a ps/psm whose result is *dead* (no reachable use of the old value)
//     commutes: fetch-add is associative-commutative and every order yields
//     the same final counter;
//   * a ps/psm whose result is used only as the *unique-index idiom* —
//     flowing through thread-local arithmetic into the address operand of
//     provably thread-private accesses, or into the value stored to an
//     order-permuted symbol — commutes modulo those symbols: the handed-out
//     indices are a permutation of the same range, so the final state
//     (with permuted symbols masked) is schedule-invariant;
//   * a memory line all of whose spawn-region accesses are threadPrivate
//     (tid- or unique-ps-indexed with sufficient stride) can never generate
//     a backtrack point: the explorer skips the dependence scan for pairs
//     of such lines and cross-checks disjointness dynamically, reporting
//     kMcStaticUnsound if the algebra was ever wrong.
//
// Facts are computed on the same fresh, un-outlined lint lowering the race
// detector uses (driver.cc). The assembler stamps instructions with
// *assembly* line numbers, so XMTC source lines cannot key the runtime
// lookup; the explorer-facing facts are therefore keyed by the stable
// names the explorer can recover dynamically — global-register indices
// (ps) and data-symbol names (psm targets, plain accesses). The line-keyed
// sets are kept for introspection and lint feedback. A fact keyed by name
// is only emitted when it holds for *every* potentially-matching site, so
// the coarser key never over-prunes.
#pragma once

#include <set>
#include <string>

#include "src/compiler/analysis/dataflow.h"
#include "src/compiler/ir.h"

namespace xmt::analysis {

struct ModuleSummaries;

struct McStaticFacts {
  /// ps/psm source lines proven order-commutative (dead result or the
  /// unique-index idiom). Pairs of atomics at these lines never generate
  /// backtrack points.
  std::set<int> commutativeAtomicLines;
  /// Load/store source lines where *every* spawn-region access is
  /// provably thread-private: pairs of such lines are independent without
  /// a dynamic overlap scan.
  std::set<int> privateMemLines;
  /// Global symbols whose spawn-region content is a schedule-dependent
  /// *permutation* (written through unique ps-derived indices, the Fig. 2a
  /// compaction idiom). Masked from the order-independence digest: any
  /// arrival order is a correct compaction.
  std::set<std::string> orderPermutedSymbols;
  /// Spawn regions seen (0 = serial program, nothing to check).
  int regionCount = 0;

  // --- Runtime-keyed views (what McExplorer consumes) ---
  /// Global-register indices where *every* in-region ps commutes: ps-ps
  /// pairs on these registers never generate backtrack points.
  std::set<int> commutativePsGrs;
  /// Data symbols where every in-region psm (including any psm whose
  /// target could not be resolved) commutes: psm-psm pairs landing in
  /// these symbols are independent.
  std::set<std::string> commutativePsmSymbols;
  /// Data symbols where every in-region plain access is provably
  /// thread-private (and no unresolved access could alias them).
  /// threadPrivate is a per-site claim, so the soundness cross-check
  /// (kMcStaticUnsound) fires only when two instances of the *same*
  /// instruction overlap across threads inside such a symbol.
  std::set<std::string> privateSymbols;
};

/// Computes the facts for a lowered module. Builds interprocedural
/// summaries internally when `summaries` is null.
McStaticFacts computeMcFacts(const IrModule& mod,
                             const ModuleSummaries* summaries = nullptr);

/// Convenience wrapper: parses `source` and computes facts on the same
/// fresh lint lowering the driver uses (inline-parallel, no clustering, no
/// outlining, unoptimized). Throws CompileError on invalid source.
McStaticFacts computeMcFactsForSource(const std::string& source,
                                      bool inlineParallel = true);

}  // namespace xmt::analysis
