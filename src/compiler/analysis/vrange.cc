#include "src/compiler/analysis/vrange.h"

#include <algorithm>

namespace xmt::analysis {

namespace {

constexpr std::int64_t kI32Min = INT32_MIN;
constexpr std::int64_t kI32Max = INT32_MAX;

VRange fit32(std::int64_t lo, std::int64_t hi) {
  if (lo < kI32Min || hi > kI32Max) return VRange::full32();
  return VRange{lo, hi};
}

std::int64_t clampSat(std::int64_t v) {
  return std::clamp(v, VRange::kNegInf, VRange::kPosInf);
}

// Largest value expressible with the bit width of `v` (v >= 0):
// 2^ceil(log2(v+1)) - 1. Upper bound for x|y and x^y over non-negatives.
std::int64_t bitHull(std::int64_t v) {
  std::int64_t m = 1;
  while (m - 1 < v) m <<= 1;
  return m - 1;
}

}  // namespace

VRange VRange::full32() { return {kI32Min, kI32Max}; }

VRange VRange::of(std::int64_t lo, std::int64_t hi) { return {lo, hi}; }

VRange VRange::empty() { return {1, 0}; }

bool VRange::isFull32() const { return lo <= kI32Min && hi >= kI32Max; }

bool VRange::strictlyBounded32() const {
  return !isEmpty() && lo > kI32Min && hi < kI32Max;
}

VRange VRange::joined(const VRange& o) const {
  if (isEmpty()) return o;
  if (o.isEmpty()) return *this;
  return {std::min(lo, o.lo), std::max(hi, o.hi)};
}

VRange VRange::intersected(const VRange& o) const {
  return {std::max(lo, o.lo), std::min(hi, o.hi)};
}

VRange VRange::widened32(const VRange& prev) const {
  VRange r = *this;
  if (r.lo < prev.lo) r.lo = kI32Min;
  if (r.hi > prev.hi) r.hi = kI32Max;
  return r;
}

VRange VRange::widenedInf(const VRange& prev) const {
  VRange r = *this;
  if (r.lo < prev.lo) r.lo = kNegInf;
  if (r.hi > prev.hi) r.hi = kPosInf;
  return r;
}

VRange VRange::addSat(const VRange& o) const {
  if (isEmpty() || o.isEmpty()) return empty();
  return {clampSat(lo + o.lo), clampSat(hi + o.hi)};
}

VRange VRange::negated() const {
  if (isEmpty()) return empty();
  return {clampSat(-hi), clampSat(-lo)};
}

VRange VRange::mulConstSat(std::int64_t k) const {
  if (isEmpty()) return empty();
  // Sentinel-aware: an infinite end stays infinite (sign-adjusted); finite
  // ends multiply exactly (clamped). Mixed products of a sentinel and a
  // huge k cannot overflow because sentinels have 4x headroom and finite
  // offsets are int32-bounded by the alias domain.
  auto mul = [&](std::int64_t v) -> std::int64_t {
    if (v <= kNegInf) return k >= 0 ? kNegInf : kPosInf;
    if (v >= kPosInf) return k >= 0 ? kPosInf : kNegInf;
    __int128 p = static_cast<__int128>(v) * k;
    if (p < kNegInf) return kNegInf;
    if (p > kPosInf) return kPosInf;
    return static_cast<std::int64_t>(p);
  };
  std::int64_t a = mul(lo), b = mul(hi);
  return {std::min(a, b), std::max(a, b)};
}

VRange VRange::add32(const VRange& a, const VRange& b) {
  if (a.isEmpty() || b.isEmpty()) return empty();
  return fit32(a.lo + b.lo, a.hi + b.hi);
}

VRange VRange::sub32(const VRange& a, const VRange& b) {
  if (a.isEmpty() || b.isEmpty()) return empty();
  return fit32(a.lo - b.hi, a.hi - b.lo);
}

VRange VRange::mul32(const VRange& a, const VRange& b) {
  if (a.isEmpty() || b.isEmpty()) return empty();
  std::int64_t c[] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi};
  return fit32(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
}

VRange VRange::div32(const VRange& a, const VRange& b) {
  if (a.isEmpty() || b.isEmpty()) return empty();
  // Division by zero traps (no result to bound), but a range containing
  // zero still has non-trapping members; INT32_MIN / -1 wraps. Both cases
  // conservatively give full32.
  if (b.contains(0)) return full32();
  if (a.contains(kI32Min) && b.contains(-1)) return full32();
  std::int64_t best_lo = INT64_MAX, best_hi = INT64_MIN;
  for (std::int64_t d : {b.lo, b.hi, std::int64_t{-1}, std::int64_t{1}}) {
    if (!b.contains(d)) continue;
    for (std::int64_t n : {a.lo, a.hi}) {
      std::int64_t q = n / d;
      best_lo = std::min(best_lo, q);
      best_hi = std::max(best_hi, q);
    }
  }
  return fit32(best_lo, best_hi);
}

VRange VRange::rem32(const VRange& a, const VRange& b) {
  if (a.isEmpty() || b.isEmpty()) return empty();
  if (b.contains(0)) return full32();
  std::int64_t m = std::max(std::llabs(b.lo), std::llabs(b.hi)) - 1;
  // C truncation: the remainder's sign follows the dividend.
  std::int64_t lo = a.lo >= 0 ? 0 : -m;
  std::int64_t hi = a.hi <= 0 ? 0 : m;
  if (a.lo >= 0) hi = std::min(hi, a.hi);
  if (a.hi <= 0) lo = std::max(lo, a.lo);
  return fit32(lo, hi);
}

VRange VRange::and32(const VRange& a, const VRange& b) {
  if (a.isEmpty() || b.isEmpty()) return empty();
  // x & y with either side known non-negative is trapped in [0, that hi]:
  // a non-negative operand has a clear sign bit, so the result does too,
  // and masking can only clear bits below it.
  if (a.lo >= 0 && b.lo >= 0) return {0, std::min(a.hi, b.hi)};
  if (a.lo >= 0) return {0, a.hi};
  if (b.lo >= 0) return {0, b.hi};
  return full32();
}

VRange VRange::or32(const VRange& a, const VRange& b) {
  if (a.isEmpty() || b.isEmpty()) return empty();
  if (a.lo < 0 || b.lo < 0) return full32();
  return fit32(std::max(a.lo, b.lo), bitHull(std::max(a.hi, b.hi)));
}

VRange VRange::xor32(const VRange& a, const VRange& b) {
  if (a.isEmpty() || b.isEmpty()) return empty();
  if (a.lo < 0 || b.lo < 0) return full32();
  return fit32(0, bitHull(std::max(a.hi, b.hi)));
}

VRange VRange::nor32(const VRange& a, const VRange& b) {
  VRange o = or32(a, b);
  if (o.isEmpty()) return empty();
  return fit32(-1 - o.hi, -1 - o.lo);  // ~(a|b) == -1 - (a|b)
}

VRange VRange::sll32(const VRange& a, const VRange& sh) {
  if (a.isEmpty() || sh.isEmpty()) return empty();
  // Hardware masks the amount with &31; an unconstrained amount therefore
  // reaches every shift, so only a [0,31]-contained range is useful.
  if (sh.lo < 0 || sh.hi > 31) return full32();
  std::int64_t c[] = {a.lo << sh.lo, a.lo << sh.hi, a.hi << sh.lo,
                      a.hi << sh.hi};
  return fit32(*std::min_element(c, c + 4), *std::max_element(c, c + 4));
}

VRange VRange::srl32(const VRange& a, const VRange& sh) {
  if (a.isEmpty() || sh.isEmpty()) return empty();
  if (sh.lo < 0 || sh.hi > 31) return full32();
  if (a.lo >= 0) return {a.lo >> sh.hi, a.hi >> sh.lo};
  // A negative operand reinterprets as a large uint32; with at least one
  // shift the result is a bounded non-negative value.
  if (sh.lo >= 1) return {0, std::int64_t{0xFFFFFFFF} >> sh.lo};
  return full32();
}

VRange VRange::sra32(const VRange& a, const VRange& sh) {
  if (a.isEmpty() || sh.isEmpty()) return empty();
  if (sh.lo < 0 || sh.hi > 31) return full32();
  std::int64_t c[] = {a.lo >> sh.lo, a.lo >> sh.hi, a.hi >> sh.lo,
                      a.hi >> sh.hi};
  return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
}

}  // namespace xmt::analysis
