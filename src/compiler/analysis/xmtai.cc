#include "src/compiler/analysis/xmtai.h"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

#include "src/compiler/analysis/alias.h"
#include "src/compiler/analysis/racecheck.h"
#include "src/compiler/analysis/summary.h"
#include "src/isa/isa.h"

namespace xmt::analysis {

namespace {

// Global registers are tracked as pseudo-keys below the vreg space so the
// spawn-bound staging (mtgr gr6/gr7 ... spawn) is visible to the engine.
constexpr int kGrKeyBase = -100;
int grKey(int gr) { return kGrKeyBase - gr; }

// Fixpoint visits to one block before moved bounds are widened.
constexpr int kWidenVisits = 3;

void erasePhysRanges(RangeAnalysis::State& st, bool keepV0) {
  for (auto it = st.begin(); it != st.end();) {
    bool phys = it->first > 0 && it->first < kNumRegs;
    bool gr = it->first <= kGrKeyBase;
    it = (gr || (phys && !(keepV0 && it->first == kV0))) ? st.erase(it)
                                                         : std::next(it);
  }
}

// Refines (a, b) under "rel(a, b) is `taken`"; empty result = edge dead.
std::pair<VRange, VRange> refineBranch(Op rel, bool taken, VRange a,
                                       VRange b) {
  // Normalize to the taken sense of a relation.
  if (!taken) {
    switch (rel) {
      case Op::kBeq: rel = Op::kBne; break;
      case Op::kBne: rel = Op::kBeq; break;
      case Op::kBlt: rel = Op::kBge; break;
      case Op::kBge: rel = Op::kBlt; break;
      case Op::kBle: rel = Op::kBgt; break;
      case Op::kBgt: rel = Op::kBle; break;
      default: return {a, b};
    }
  }
  switch (rel) {
    case Op::kBeq: {
      VRange m = a.intersected(b);
      return {m, m};
    }
    case Op::kBne:
      // Intervals can only exclude an endpoint equal to a constant side.
      if (b.isConst()) {
        if (a.lo == b.lo) a.lo += 1;
        if (a.hi == b.lo) a.hi -= 1;
      }
      if (a.isConst()) {
        if (b.lo == a.lo) b.lo += 1;
        if (b.hi == a.lo) b.hi -= 1;
      }
      return {a, b};
    case Op::kBlt:
      return {{a.lo, std::min(a.hi, b.hi - 1)},
              {std::max(b.lo, a.lo + 1), b.hi}};
    case Op::kBle:
      return {{a.lo, std::min(a.hi, b.hi)}, {std::max(b.lo, a.lo), b.hi}};
    case Op::kBgt:
      return {{std::max(a.lo, b.lo + 1), a.hi},
              {b.lo, std::min(b.hi, a.hi - 1)}};
    case Op::kBge:
      return {{std::max(a.lo, b.lo), a.hi}, {b.lo, std::min(b.hi, a.hi)}};
    default:
      return {a, b};
  }
}

}  // namespace

VRange RangeAnalysis::stateOf(const State& st, int reg) {
  if (reg == 0) return VRange::constant(0);
  auto it = st.find(reg);
  return it == st.end() ? VRange::full32() : it->second;
}

void RangeAnalysis::transferInstr(const IrInstr& in, int block,
                                  State& st) const {
  auto get = [&](int r) { return stateOf(st, r); };
  auto set = [&](int r, VRange v) {
    if (v.isFull32())
      st.erase(r);
    else
      st[r] = v;
  };
  switch (in.op) {
    case IOp::kCall: {
      erasePhysRanges(st, /*keepV0=*/false);
      VRange ret = VRange::full32();
      if (sums_ != nullptr) {
        if (const FuncSummary* s = sums_->find(in.sym);
            s != nullptr && !s->recursive)
          ret = s->ret;
      }
      set(kV0, ret);
      return;
    }
    case IOp::kSys:
      erasePhysRanges(st, /*keepV0=*/false);
      return;
    case IOp::kMtgr:
      st[grKey(in.imm)] = get(in.a);
      return;
    case IOp::kPs:
      st.erase(grKey(in.imm));  // the counter advanced
      break;
    default:
      break;
  }
  if (in.dst < 0) return;
  VRange a = get(in.a), b = get(in.b);
  VRange imm = VRange::constant(in.imm);
  switch (in.op) {
    case IOp::kLi: set(in.dst, imm); break;
    case IOp::kCopy: set(in.dst, a); break;
    case IOp::kAdd: set(in.dst, VRange::add32(a, b)); break;
    case IOp::kAddi: set(in.dst, VRange::add32(a, imm)); break;
    case IOp::kSub: set(in.dst, VRange::sub32(a, b)); break;
    case IOp::kMul: set(in.dst, VRange::mul32(a, b)); break;
    case IOp::kDiv: set(in.dst, VRange::div32(a, b)); break;
    case IOp::kRem: set(in.dst, VRange::rem32(a, b)); break;
    case IOp::kAnd: set(in.dst, VRange::and32(a, b)); break;
    case IOp::kAndi: set(in.dst, VRange::and32(a, imm)); break;
    case IOp::kOr: set(in.dst, VRange::or32(a, b)); break;
    case IOp::kOri: set(in.dst, VRange::or32(a, imm)); break;
    case IOp::kXor: set(in.dst, VRange::xor32(a, b)); break;
    case IOp::kXori: set(in.dst, VRange::xor32(a, imm)); break;
    case IOp::kNor: set(in.dst, VRange::nor32(a, b)); break;
    case IOp::kSll: set(in.dst, VRange::sll32(a, imm)); break;
    case IOp::kSrl: set(in.dst, VRange::srl32(a, imm)); break;
    case IOp::kSra: set(in.dst, VRange::sra32(a, imm)); break;
    case IOp::kSllv: set(in.dst, VRange::sll32(a, b)); break;
    case IOp::kSrlv: set(in.dst, VRange::srl32(a, b)); break;
    case IOp::kSrav: set(in.dst, VRange::sra32(a, b)); break;
    case IOp::kSlt:
    case IOp::kSlti: {
      VRange rhs = in.op == IOp::kSlt ? b : imm;
      if (a.hi < rhs.lo)
        set(in.dst, VRange::constant(1));
      else if (a.lo >= rhs.hi)
        set(in.dst, VRange::constant(0));
      else
        set(in.dst, VRange::of(0, 1));
      break;
    }
    case IOp::kSltu:
    case IOp::kFeq:
    case IOp::kFlt:
    case IOp::kFle:
      set(in.dst, VRange::of(0, 1));
      break;
    case IOp::kLoadB:
      set(in.dst, VRange::of(0, 255));  // lbu: byte loads are unsigned
      break;
    case IOp::kGetTid: {
      int region = regionOf_[static_cast<std::size_t>(block)];
      auto it = region >= 0 ? tidOfRegion_.find(region)
                            : tidOfRegion_.end();
      set(in.dst, it == tidOfRegion_.end() ? VRange::full32() : it->second);
      break;
    }
    case IOp::kMfgr: set(in.dst, get(grKey(in.imm))); break;
    case IOp::kPs:
    case IOp::kPsm:
    case IOp::kLoadW:
    case IOp::kLa:
    case IOp::kFrameAddr:
    default:
      set(in.dst, VRange::full32());
      break;
  }
}

RangeAnalysis::RangeAnalysis(const IrFunc& fn, AnalysisManager& am,
                             const ModuleSummaries* summaries,
                             const VRange* paramRanges)
    : fn_(fn), sums_(summaries) {
  const Cfg& cfg = am.cfg(fn);
  std::size_t n = fn.blocks.size();
  in_.assign(n, State{});
  reached_.assign(n, false);
  regionOf_.assign(n, -1);

  // Structural region map: parallel blocks -> their spawn body entry.
  for (const IrBlock& b : fn.blocks) {
    if (b.instrs.empty() || b.instrs.back().op != IOp::kSpawn) continue;
    int entry = b.instrs.back().t1;
    std::deque<int> work{entry};
    while (!work.empty()) {
      int cur = work.front();
      work.pop_front();
      auto ci = static_cast<std::size_t>(cur);
      if (regionOf_[ci] >= 0 || !fn.blocks[ci].parallel) continue;
      regionOf_[ci] = entry;
      for (int s : cfg.succ[ci]) work.push_back(s);
    }
  }

  // RPO position for worklist ordering.
  std::vector<int> rpoPos(n, 0);
  for (std::size_t i = 0; i < cfg.rpo.size(); ++i)
    rpoPos[static_cast<std::size_t>(cfg.rpo[i])] = static_cast<int>(i);

  State entry;
  if (paramRanges != nullptr) {
    for (int i = 0; i < fn.nParams && i < kMaxSummaryParams; ++i)
      if (!paramRanges[i].isFull32())
        entry[kSummaryArgRegs[i]] = paramRanges[i];
  }
  in_[0] = std::move(entry);
  reached_[0] = true;

  std::vector<int> visits(n, 0);
  std::set<std::pair<int, int>> work;  // (rpo position, block)
  work.insert({rpoPos[0], 0});
  while (!work.empty()) {
    int b = work.begin()->second;
    work.erase(work.begin());
    auto bi = static_cast<std::size_t>(b);
    const IrBlock& blk = fn_.blocks[bi];
    State st = in_[bi];
    for (const IrInstr& in : blk.instrs)
      if (!in.isTerminator() && in.op != IOp::kSpawn)
        transferInstr(in, b, st);

    // Spawn-bound capture: tid of the region is [gr6.lo, gr7.hi] as staged.
    if (!blk.instrs.empty() && blk.instrs.back().op == IOp::kSpawn) {
      VRange lo = stateOf(st, grKey(kGrNextId));
      VRange hi = stateOf(st, grKey(kGrHigh));
      VRange tid = VRange::of(lo.lo, hi.hi);
      if (tid.isEmpty()) tid = VRange::full32();
      auto [it, fresh] =
          tidOfRegion_.try_emplace(blk.instrs.back().t1, tid);
      if (!fresh) {
        VRange joinedTid = it->second.joined(tid);
        if (!(joinedTid == it->second)) {
          it->second = joinedTid;
          // Region blocks already visited must observe the wider tid.
          for (std::size_t r = 0; r < n; ++r)
            if (regionOf_[r] == it->first && reached_[r])
              work.insert({rpoPos[r], static_cast<int>(r)});
        }
      }
    }

    auto propagate = [&](int succ, State out,
                         const std::set<int>& refined = {}) {
      erasePhysRanges(out, /*keepV0=*/true);
      auto si = static_cast<std::size_t>(succ);
      if (!reached_[si]) {
        reached_[si] = true;
        in_[si] = std::move(out);
        work.insert({rpoPos[si], succ});
        return;
      }
      State& target = in_[si];
      State merged;
      bool changed = false;
      for (const auto& [reg, range] : target) {
        VRange j = range.joined(stateOf(out, reg));
        if (!j.isFull32()) merged[reg] = j;
      }
      if (merged.size() != target.size()) changed = true;
      if (!changed)
        for (const auto& [reg, range] : merged)
          if (!(range == target.at(reg))) {
            changed = true;
            break;
          }
      if (!changed) return;
      if (++visits[si] > kWidenVisits)
        for (auto it = merged.begin(); it != merged.end();) {
          // A register the branch just refined is exempt: its bound is
          // derived from the other operand's (converging) range, and
          // widening it would throw the refinement away — the classic
          // `while (q < 8)` carrier would jump from [0,7] to [0, 2^31).
          if (refined.count(it->first) != 0) {
            ++it;
            continue;
          }
          VRange w = it->second.widened32(stateOf(target, it->first));
          if (w.isFull32())
            it = merged.erase(it);
          else
            (it++)->second = w;
        }
      if (!(merged == target)) {
        target = std::move(merged);
        work.insert({rpoPos[si], succ});
      }
    };

    if (!blk.instrs.empty() && blk.instrs.back().op == IOp::kBr) {
      const IrInstr& br = blk.instrs.back();
      VRange a = stateOf(st, br.a), b2 = stateOf(st, br.b);
      for (bool taken : {true, false}) {
        auto [ra, rb] = refineBranch(br.rel, taken, a, b2);
        if (ra.isEmpty() || rb.isEmpty()) continue;  // edge cannot execute
        State out = st;
        std::set<int> refined;
        if (br.a != 0) {
          if (ra.isFull32()) {
            out.erase(br.a);
          } else {
            out[br.a] = ra;
            refined.insert(br.a);
          }
        }
        if (br.b != 0) {
          if (rb.isFull32()) {
            out.erase(br.b);
          } else {
            out[br.b] = rb;
            refined.insert(br.b);
          }
        }
        propagate(taken ? br.t1 : br.t2, std::move(out), refined);
      }
    } else {
      for (int s : cfg.succ[bi]) propagate(s, st);
    }
  }
}

VRange RangeAnalysis::rangeAt(int block, int instr, int reg) const {
  auto bi = static_cast<std::size_t>(block);
  if (bi >= reached_.size() || !reached_[bi]) return VRange::full32();
  State st = in_[bi];
  const IrBlock& blk = fn_.blocks[bi];
  for (int i = 0; i < instr && i < static_cast<int>(blk.instrs.size()); ++i)
    transferInstr(blk.instrs[static_cast<std::size_t>(i)], block, st);
  return stateOf(st, reg);
}

void RangeAnalysis::forEachInstr(
    int block, const std::function<void(int, const State&)>& cb) const {
  auto bi = static_cast<std::size_t>(block);
  if (bi >= reached_.size() || !reached_[bi]) return;
  State st = in_[bi];
  const IrBlock& blk = fn_.blocks[bi];
  for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
    cb(static_cast<int>(i), st);
    transferInstr(blk.instrs[i], block, st);
  }
}

const VRange& RangeAnalysis::tidRangeOf(int block) const {
  int region = regionOf_[static_cast<std::size_t>(block)];
  if (region >= 0) {
    auto it = tidOfRegion_.find(region);
    if (it != tidOfRegion_.end()) return it->second;
  }
  return full_;
}

namespace {

/// Byte size of a data symbol, or -1 when unknown.
std::int64_t symbolSize(const IrModule& mod, const std::string& name) {
  for (const IrData& d : mod.data) {
    if (d.label != name) continue;
    switch (d.kind) {
      case IrData::Kind::kWords:
        return static_cast<std::int64_t>(d.words.size()) * 4;
      case IrData::Kind::kSpace:
        return static_cast<std::int64_t>(d.spaceBytes);
      case IrData::Kind::kAscii:
        return static_cast<std::int64_t>(d.str.size()) + 1;
    }
  }
  return -1;
}

// "Informative" interval: both ends derived from real constraints rather
// than full32 / the widening sentinels. The may-lints only speak when the
// user actually constrained the value (same philosophy as the race lint's
// resolved-addresses-only rule) — an unconstrained full32 fact says
// nothing about the program and would warn on every unchecked input.
bool informative(const VRange& r) {
  return !r.isEmpty() && r.strictlyBounded32();
}

class Linter {
 public:
  Linter(const IrModule& mod, const AiConfig& cfg,
         const ModuleSummaries& sums, std::vector<Diagnostic>& out)
      : mod_(mod), cfg_(cfg), sums_(sums), out_(out) {}

  void runFunction(const IrFunc& fn) {
    AnalysisManager am;
    const VRange* params = nullptr;
    if (const FuncSummary* s = sums_.find(fn.name);
        s != nullptr && !s->recursive)
      params = s->paramRanges.data();
    RangeAnalysis ra(fn, am, &sums_, params);
    if (cfg_.divZero || cfg_.shift || cfg_.psDiscipline) {
      for (const IrBlock& b : fn.blocks) {
        ra.forEachInstr(b.id, [&](int i, const RangeAnalysis::State& st) {
          lintInstr(b.instrs[static_cast<std::size_t>(i)], st);
        });
      }
    }
    if (cfg_.bounds) lintBounds(fn, am, ra);
  }

 private:
  void report(DiagCode code, int line, std::string symbol,
              std::string message) {
    if (!seen_.insert({static_cast<int>(code), line}).second) return;
    Diagnostic d;
    d.code = code;
    d.severity = Severity::kWarning;
    d.line = line;
    d.symbol = std::move(symbol);
    d.message = std::move(message);
    out_.push_back(std::move(d));
  }

  static std::string rangeStr(const VRange& r) {
    return "[" + std::to_string(r.lo) + ", " + std::to_string(r.hi) + "]";
  }

  void lintInstr(const IrInstr& in, const RangeAnalysis::State& st) {
    switch (in.op) {
      case IOp::kDiv:
      case IOp::kRem: {
        if (!cfg_.divZero) return;
        const char* what = in.op == IOp::kDiv ? "division" : "remainder";
        VRange b = RangeAnalysis::stateOf(st, in.b);
        if (b.isConst() && b.lo == 0) {
          report(DiagCode::kDivByZero, in.srcLine, "",
                 std::string(what) + " by zero (traps at runtime)");
        } else if (informative(b) && b.contains(0)) {
          report(DiagCode::kDivMayBeZero, in.srcLine, "",
                 std::string(what) + " divisor range " + rangeStr(b) +
                     " contains zero");
        }
        return;
      }
      case IOp::kSllv:
      case IOp::kSrlv:
      case IOp::kSrav: {
        if (!cfg_.shift) return;
        VRange b = RangeAnalysis::stateOf(st, in.b);
        if (informative(b) && (b.lo < 0 || b.hi > 31))
          report(DiagCode::kShiftRange, in.srcLine, "",
                 "shift amount range " + rangeStr(b) +
                     " escapes [0, 31]; the hardware masks to 5 bits");
        return;
      }
      case IOp::kSll:
      case IOp::kSrl:
      case IOp::kSra:
        if (cfg_.shift && (in.imm < 0 || in.imm > 31))
          report(DiagCode::kShiftRange, in.srcLine, "",
                 "shift amount " + std::to_string(in.imm) +
                     " escapes [0, 31]; the hardware masks to 5 bits");
        return;
      case IOp::kPs: {
        // `ps` (global-register prefix-sum) is the paper's index-allocation
        // primitive; an increment that is never positive cannot allocate.
        // `psm` is deliberately exempt: it doubles as a general atomic add,
        // where negative increments are meaningful.
        if (!cfg_.psDiscipline) return;
        VRange inc = RangeAnalysis::stateOf(st, in.a);
        if (!inc.isEmpty() && inc.hi <= 0)
          report(DiagCode::kPsNonPositive, in.srcLine, "",
                 "prefix-sum increment range " + rangeStr(inc) +
                     " is never positive; ps cannot hand out distinct "
                     "indices this way");
        return;
      }
      default:
        return;
    }
  }

  /// Blocks dominated by a branch the interval domain cannot encode: a
  /// reg-reg compare where neither side is a single constant. `if ($ >= d)
  /// T[$] = S[$ - d]` is in-bounds *because* of that relation, which no
  /// per-register interval carries — may-warnings are suppressed under such
  /// guards (definite errors never are).
  static std::vector<bool> relationallyGuarded(const IrFunc& fn,
                                               AnalysisManager& am,
                                               const RangeAnalysis& ra) {
    const Cfg& cfg = am.cfg(fn);
    std::size_t nb = cfg.numBlocks();
    std::vector<int> guards;
    for (std::size_t b = 0; b < nb; ++b) {
      if (!cfg.reachable[b]) continue;
      const auto& ins = fn.blocks[b].instrs;
      for (std::size_t i = 0; i < ins.size(); ++i) {
        const IrInstr& in = ins[i];
        if (in.op != IOp::kBr || in.a < 0 || in.b < 0) continue;
        if (!ra.rangeAt(static_cast<int>(b), static_cast<int>(i), in.a)
                 .isConst() &&
            !ra.rangeAt(static_cast<int>(b), static_cast<int>(i), in.b)
                 .isConst())
          guards.push_back(static_cast<int>(b));
      }
    }
    std::vector<bool> out(nb, false);
    if (guards.empty()) return out;
    // Iterative dominator sets over bitsets (functions are small).
    std::vector<BitSet> dom(nb, BitSet(nb));
    for (std::size_t b = 1; b < nb; ++b) dom[b].fill();
    dom[0].set(0);
    bool changed = true;
    while (changed) {
      changed = false;
      for (int b : cfg.rpo) {
        if (b == 0) continue;
        BitSet nd(nb);
        nd.fill();
        bool any = false;
        for (int p : cfg.pred[static_cast<std::size_t>(b)]) {
          if (!cfg.reachable[static_cast<std::size_t>(p)]) continue;
          nd.intersectWith(dom[static_cast<std::size_t>(p)]);
          any = true;
        }
        if (!any) nd.clear();
        nd.set(static_cast<std::size_t>(b));
        if (!(nd == dom[static_cast<std::size_t>(b)])) {
          dom[static_cast<std::size_t>(b)] = nd;
          changed = true;
        }
      }
    }
    for (std::size_t b = 0; b < nb; ++b)
      for (int g : guards)
        if (static_cast<int>(b) != g &&
            dom[b].test(static_cast<std::size_t>(g)))
          out[b] = true;
    return out;
  }

  void lintBounds(const IrFunc& fn, AnalysisManager& am,
                  const RangeAnalysis& ra) {
    ValueResolver vr(fn, am, &sums_, &ra);
    std::vector<bool> relGuarded = relationallyGuarded(fn, am, ra);
    for (const MemSite& m : vr.memorySites()) {
      if (!ra.blockReachable(m.block)) continue;
      if (!m.addr.isValue() || m.addr.base != AbsVal::Base::kSym) continue;
      std::int64_t size = symbolSize(mod_, m.addr.sym);
      if (size < 0) continue;
      // Concretize the origin term where a numeric range is known.
      VRange term = VRange::constant(0);
      if (m.addr.origin == kOriginTid) {
        term = ra.tidRangeOf(m.block).mulConstSat(m.addr.scale);
      } else if (m.addr.origin >= 0) {
        // Opaque handle / ps result: its def site is still a register the
        // interval engine may bound (a loaded value under a guard — the
        // `if (0 <= g && g < n) A[g]` idiom).
        const ReachingDefsResult& rd = am.reachingDefs(fn);
        const DefSite& osite =
            rd.sites[static_cast<std::size_t>(m.addr.origin)];
        VRange n = ra.rangeAt(osite.block, osite.instr + 1, osite.vreg);
        // The interval engine keys refinements by register, and a guard may
        // test a *copy* of the origin (`int g = G; if (g < n) A[g]`: the
        // branch refines g's home register, not the load's). Every def whose
        // abstract value is exactly `origin + c` carries the origin value in
        // its register; where such a def still solely owns that register at
        // the access, the use-point state (which has seen the guard) bounds
        // the origin too.
        for (std::size_t sid = 0; sid < rd.sites.size(); ++sid) {
          const AbsVal& dv = vr.valueOfDef(static_cast<int>(sid));
          if (!dv.isValue() || dv.base != AbsVal::Base::kNone ||
              dv.origin != m.addr.origin || dv.scale != 1 ||
              !dv.off.isConst())
            continue;
          const DefSite& s = rd.sites[sid];
          bool solo;
          if (s.block == m.block && s.instr < m.instr) {
            solo = true;
            for (int i = s.instr + 1; solo && i < m.instr; ++i)
              if (fn.blocks[m.block].instrs[static_cast<std::size_t>(i)]
                      .dst == s.vreg)
                solo = false;
          } else {
            solo = rd.flow.in[static_cast<std::size_t>(m.block)].test(sid);
            auto it = rd.sitesOfVreg.find(s.vreg);
            if (solo && it != rd.sitesOfVreg.end())
              for (int other : it->second)
                if (static_cast<std::size_t>(other) != sid &&
                    rd.flow.in[static_cast<std::size_t>(m.block)].test(
                        static_cast<std::size_t>(other)))
                  solo = false;
            for (int i = 0; solo && i < m.instr; ++i)
              if (fn.blocks[m.block].instrs[static_cast<std::size_t>(i)]
                      .dst == s.vreg)
                solo = false;
          }
          if (!solo) continue;
          VRange atUse = ra.rangeAt(m.block, m.instr, s.vreg)
                             .addSat(VRange::constant(-dv.off.lo));
          VRange cut = n.intersected(atUse);
          if (!cut.isEmpty()) n = cut;
        }
        if (!n.strictlyBounded32()) continue;
        term = n.mulConstSat(m.addr.scale);
      } else if (m.addr.origin != kOriginNone) {
        continue;  // summary param origin: no concrete range here
      }
      VRange addr = term.addSat(m.addr.off);
      if (addr.isEmpty()) continue;
      std::int64_t first = addr.lo, last = addr.hi + m.sizeBytes - 1;
      const char* what = m.atomic ? "psm" : m.write ? "store" : "load";
      if (last < 0 || first >= size) {
        report(DiagCode::kBoundsOutOfRange, m.srcLine, m.addr.sym,
               std::string(what) + " at byte offset " + rangeStr(addr) +
                   " is entirely outside '" + m.addr.sym + "' (" +
                   std::to_string(size) + " bytes)");
      } else if (informative(addr) && (first < 0 || last >= size) &&
                 !(relGuarded[static_cast<std::size_t>(m.block)] &&
                   !m.addr.off.isConst())) {
        report(DiagCode::kBoundsMayExceed, m.srcLine, m.addr.sym,
               std::string(what) + " at byte offset " + rangeStr(addr) +
                   " can exceed '" + m.addr.sym + "' (" +
                   std::to_string(size) + " bytes)");
      }
    }
  }

  const IrModule& mod_;
  const AiConfig& cfg_;
  const ModuleSummaries& sums_;
  std::vector<Diagnostic>& out_;
  std::set<std::pair<int, int>> seen_;  // (code, line) dedup
};

}  // namespace

std::vector<Diagnostic> analyzeModuleValues(const IrModule& mod,
                                            const AiConfig& cfg) {
  return runModuleAnalysis(mod, /*races=*/false, cfg);
}

std::vector<Diagnostic> runModuleAnalysis(const IrModule& mod, bool races,
                                          const AiConfig& cfg) {
  std::vector<Diagnostic> out;
  if (!races && !cfg.any()) return out;
  AnalysisManager am;
  ModuleSummaries sums = buildModuleSummaries(mod, am);
  if (cfg.any()) {
    Linter linter(mod, cfg, sums, out);
    for (const IrFunc& fn : mod.funcs) linter.runFunction(fn);
  }
  if (races) {
    std::vector<Diagnostic> rd = analyzeModuleRaces(mod, &sums);
    out.insert(out.end(), rd.begin(), rd.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line < b.line;
                   });
  return out;
}

}  // namespace xmt::analysis
