#include "src/compiler/analysis/dataflow.h"

#include <algorithm>

#include "src/isa/isa.h"

namespace xmt::analysis {

bool BitSet::uniteWith(const BitSet& other) {
  bool changed = false;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t neu = words_[i] | other.words_[i];
    if (neu != words_[i]) {
      words_[i] = neu;
      changed = true;
    }
  }
  return changed;
}

bool BitSet::intersectWith(const BitSet& other) {
  bool changed = false;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t neu = words_[i] & other.words_[i];
    if (neu != words_[i]) {
      words_[i] = neu;
      changed = true;
    }
  }
  return changed;
}

void BitSet::subtract(const BitSet& other) {
  for (std::size_t i = 0; i < words_.size(); ++i)
    words_[i] &= ~other.words_[i];
}

std::size_t BitSet::count() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
  return n;
}

DataflowResult solve(const IrFunc& fn, const Cfg& cfg,
                     const DataflowProblem& problem) {
  std::size_t nb = fn.blocks.size();
  bool forward = problem.direction() == Direction::kForward;
  bool unionC = problem.confluence() == Confluence::kUnion;

  DataflowResult r;
  r.in.assign(nb, problem.initial());
  r.out.assign(nb, problem.initial());

  // Seed the worklist in an order that lets values propagate in one sweep.
  std::vector<int> order = cfg.rpo;
  if (!forward) std::reverse(order.begin(), order.end());
  // Include unreachable blocks at the end so their state is still defined.
  for (std::size_t b = 0; b < nb; ++b)
    if (!cfg.reachable[b]) order.push_back(static_cast<int>(b));

  std::vector<bool> onList(nb, false);
  std::vector<int> work(order.rbegin(), order.rend());  // pop_back = order
  for (int b : work) onList[static_cast<std::size_t>(b)] = true;

  while (!work.empty()) {
    int b = work.back();
    work.pop_back();
    auto bi = static_cast<std::size_t>(b);
    onList[bi] = false;

    // Meet over the relevant neighbors.
    const std::vector<int>& meetFrom = forward ? cfg.pred[bi] : cfg.succ[bi];
    BitSet meet(problem.domainSize());
    bool haveNeighbor = false;
    for (int n : meetFrom) {
      const BitSet& v =
          forward ? r.out[static_cast<std::size_t>(n)]
                  : r.in[static_cast<std::size_t>(n)];
      if (!haveNeighbor) {
        meet = v;
        haveNeighbor = true;
      } else if (unionC) {
        meet.uniteWith(v);
      } else {
        meet.intersectWith(v);
      }
    }
    bool isBoundary = forward ? (b == 0) : cfg.succ[bi].empty();
    if (!haveNeighbor) {
      meet = problem.boundary();
    } else if (isBoundary) {
      // A boundary block that also has neighbors (entry with a back edge,
      // exit inside a loop) still meets the boundary value in.
      if (unionC) meet.uniteWith(problem.boundary());
      else meet.intersectWith(problem.boundary());
    }

    BitSet& preState = forward ? r.in[bi] : r.out[bi];
    BitSet& postState = forward ? r.out[bi] : r.in[bi];
    preState = meet;
    BitSet neu = meet;
    problem.transfer(fn, fn.blocks[bi], neu);
    if (neu == postState) continue;
    postState = std::move(neu);
    const std::vector<int>& propagateTo = forward ? cfg.succ[bi] : cfg.pred[bi];
    for (int n : propagateTo) {
      if (!onList[static_cast<std::size_t>(n)]) {
        onList[static_cast<std::size_t>(n)] = true;
        work.push_back(n);
      }
    }
  }
  return r;
}

void collectUses(const IrInstr& in, std::vector<int>& out) {
  if (in.a >= 0) out.push_back(in.a);
  if (in.b >= 0) out.push_back(in.b);
  for (int v : in.args) out.push_back(v);
  if (in.op == IOp::kRet) out.push_back(kV0);  // return value convention
}

namespace {

class LivenessProblem : public DataflowProblem {
 public:
  explicit LivenessProblem(std::size_t nvregs) : nvregs_(nvregs) {}
  std::size_t domainSize() const override { return nvregs_; }
  Direction direction() const override { return Direction::kBackward; }
  Confluence confluence() const override { return Confluence::kUnion; }

  void transfer(const IrFunc&, const IrBlock& b,
                BitSet& state) const override {
    std::vector<int> uses;
    for (std::size_t i = b.instrs.size(); i-- > 0;) {
      const IrInstr& in = b.instrs[i];
      if (in.dst >= 0) state.reset(static_cast<std::size_t>(in.dst));
      uses.clear();
      collectUses(in, uses);
      for (int u : uses) state.set(static_cast<std::size_t>(u));
    }
  }

 private:
  std::size_t nvregs_;
};

class ReachingDefsProblem : public DataflowProblem {
 public:
  ReachingDefsProblem(const IrFunc& fn, const ReachingDefsResult& r)
      : nsites_(r.sites.size()) {
    // Per-block gen/kill: the last def of each vreg in the block generates;
    // every def kills all other sites of the same vreg.
    gen_.assign(fn.blocks.size(), BitSet(nsites_));
    kill_.assign(fn.blocks.size(), BitSet(nsites_));
    std::size_t site = 0;
    for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      for (const IrInstr& in : fn.blocks[bi].instrs) {
        if (in.dst < 0) continue;
        for (int other : r.sitesOfVreg.at(in.dst)) {
          gen_[bi].reset(static_cast<std::size_t>(other));
          kill_[bi].set(static_cast<std::size_t>(other));
        }
        gen_[bi].set(site);
        kill_[bi].reset(site);
        ++site;
      }
    }
  }

  std::size_t domainSize() const override { return nsites_; }
  Direction direction() const override { return Direction::kForward; }
  Confluence confluence() const override { return Confluence::kUnion; }

  void transfer(const IrFunc&, const IrBlock& b,
                BitSet& state) const override {
    auto bi = static_cast<std::size_t>(b.id);
    state.subtract(kill_[bi]);
    state.uniteWith(gen_[bi]);
  }

 private:
  std::size_t nsites_;
  std::vector<BitSet> gen_, kill_;
};

}  // namespace

LivenessResult computeLiveness(const IrFunc& fn, const Cfg& cfg) {
  LivenessProblem p(static_cast<std::size_t>(fn.nextVreg));
  return {solve(fn, cfg, p)};
}

ReachingDefsResult computeReachingDefs(const IrFunc& fn, const Cfg& cfg) {
  ReachingDefsResult r;
  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    const IrBlock& b = fn.blocks[bi];
    for (std::size_t i = 0; i < b.instrs.size(); ++i) {
      if (b.instrs[i].dst < 0) continue;
      int id = static_cast<int>(r.sites.size());
      r.sites.push_back({static_cast<int>(bi), static_cast<int>(i),
                         b.instrs[i].dst});
      r.sitesOfVreg[b.instrs[i].dst].push_back(id);
    }
  }
  ReachingDefsProblem p(fn, r);
  r.flow = solve(fn, cfg, p);
  return r;
}

const Cfg& AnalysisManager::cfg(const IrFunc& fn) {
  Entry& e = cache_[&fn];
  if (!e.hasCfg) {
    e.cfg = buildCfg(fn);
    e.hasCfg = true;
  }
  return e.cfg;
}

const LivenessResult& AnalysisManager::liveness(const IrFunc& fn) {
  Entry& e = cache_[&fn];
  if (!e.hasLive) {
    e.live = computeLiveness(fn, cfg(fn));
    e.hasLive = true;
  }
  return e.live;
}

const ReachingDefsResult& AnalysisManager::reachingDefs(const IrFunc& fn) {
  Entry& e = cache_[&fn];
  if (!e.hasReach) {
    e.reach = computeReachingDefs(fn, cfg(fn));
    e.hasReach = true;
  }
  return e.reach;
}

void AnalysisManager::invalidate(const IrFunc& fn) { cache_.erase(&fn); }

}  // namespace xmt::analysis
