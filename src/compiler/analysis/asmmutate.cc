#include "src/compiler/analysis/asmmutate.h"

#include <cctype>
#include <set>
#include <sstream>

namespace xmt::analysis {

namespace {

struct Line {
  std::string raw;        // original text, re-emitted verbatim
  std::string label;      // "X" for a pure label line "X:"
  std::string mnemonic;   // first token of an instruction line
  std::vector<std::string> operands;
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<Line> parseLines(const std::string& text) {
  std::vector<Line> out;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    Line l;
    l.raw = raw;
    std::string s = raw;
    std::size_t hash = s.find('#');
    if (hash != std::string::npos && s.find('"') == std::string::npos)
      s = s.substr(0, hash);
    s = trim(s);
    if (!s.empty() && s.back() == ':' && s.find(' ') == std::string::npos) {
      l.label = s.substr(0, s.size() - 1);
    } else if (!s.empty() && s[0] != '.') {
      std::size_t sp = s.find_first_of(" \t");
      if (sp == std::string::npos) {
        l.mnemonic = s;
      } else {
        l.mnemonic = s.substr(0, sp);
        std::string rest = s.substr(sp + 1), tok;
        std::istringstream rs(rest);
        while (std::getline(rs, tok, ',')) {
          tok = trim(tok);
          if (!tok.empty()) l.operands.push_back(tok);
        }
      }
    }
    out.push_back(std::move(l));
  }
  return out;
}

std::string render(const std::vector<Line>& lines) {
  std::string out;
  for (const Line& l : lines) {
    out += l.raw;
    out += '\n';
  }
  return out;
}

bool isControlFlow(const std::string& m) {
  return m == "beq" || m == "bne" || m == "blt" || m == "ble" || m == "bgt" ||
         m == "bge" || m == "beqz" || m == "bnez" || m == "b" || m == "j" ||
         m == "jal" || m == "jalr" || m == "jr" || m == "spawn" ||
         m == "join" || m == "halt";
}

bool drains(const std::string& m) {
  return m == "fence" || m == "join" || m == "halt";
}

}  // namespace

const char* mutantClassName(MutantClass c) {
  switch (c) {
    case MutantClass::kDropFence: return "drop-fence";
    case MutantClass::kHoistStoreAcrossPs: return "hoist-store-across-ps";
    case MutantClass::kBlockOutOfRegion: return "block-out-of-region";
    case MutantClass::kInRegionSpill: return "in-region-spill";
    case MutantClass::kUndefSpawnReg: return "undef-spawn-reg";
  }
  return "?";
}

std::vector<Mutant> generateMutants(const std::string& asmText) {
  std::vector<Mutant> out;
  const std::vector<Line> lines = parseLines(asmText);
  const std::size_t n = lines.size();

  auto emit = [&](MutantClass cls, std::string desc, std::vector<Line> body) {
    out.push_back({cls, std::move(desc), render(body)});
  };

  // --- Fence mutants: straight-line swnb → fence → ps/psm chains. A label
  // or any control transfer resets the chain (the path is no longer
  // provably unique), and a second fence makes a single drop harmless.
  {
    std::ptrdiff_t swnbAt = -1, fenceAt = -1;
    int fencesSinceStore = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const Line& l = lines[i];
      if (!l.label.empty() || isControlFlow(l.mnemonic)) {
        swnbAt = -1;
        fenceAt = -1;
        fencesSinceStore = 0;
        continue;
      }
      if (l.mnemonic == "fence") {
        fenceAt = static_cast<std::ptrdiff_t>(i);
        ++fencesSinceStore;
        continue;
      }
      if (l.mnemonic == "swnb") {
        swnbAt = static_cast<std::ptrdiff_t>(i);
        fenceAt = -1;
        fencesSinceStore = 0;
        continue;
      }
      if ((l.mnemonic == "ps" || l.mnemonic == "psm") && swnbAt >= 0 &&
          fenceAt >= 0 && fencesSinceStore == 1) {
        std::vector<Line> body(lines);
        body.erase(body.begin() + fenceAt);
        emit(MutantClass::kDropFence,
             "dropped fence (line " + std::to_string(fenceAt + 1) +
                 ") guarding '" + l.mnemonic + "'",
             std::move(body));

        body = lines;
        Line store = body[static_cast<std::size_t>(swnbAt)];
        body.erase(body.begin() + swnbAt);
        body.insert(body.begin() + fenceAt, store);  // now after the fence
        emit(MutantClass::kHoistStoreAcrossPs,
             "hoisted swnb (line " + std::to_string(swnbAt + 1) +
                 ") across its fence, adjacent to '" + l.mnemonic + "'",
             std::move(body));
        swnbAt = -1;  // one mutant pair per chain
      }
    }
  }

  // --- Region mutants: operate on each spawn region.
  for (std::size_t si = 0; si < n; ++si) {
    if (lines[si].mnemonic != "spawn" || lines[si].operands.size() != 2)
      continue;
    std::ptrdiff_t start = -1, end = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (lines[i].label == lines[si].operands[0])
        start = static_cast<std::ptrdiff_t>(i);
      if (lines[i].label == lines[si].operands[1])
        end = static_cast<std::ptrdiff_t>(i);
    }
    if (start < 0 || end < 0 || start >= end) continue;
    const std::string tag = std::to_string(out.size());

    // Relocate the first plain in-region instruction past the region —
    // Fig. 9a reproduced at the text level. The relocated copy jumps back
    // so the mutant differs from the original only in layout.
    for (std::ptrdiff_t i = start + 1; i < end; ++i) {
      const Line& l = lines[static_cast<std::size_t>(i)];
      if (l.mnemonic.empty() || isControlFlow(l.mnemonic) ||
          drains(l.mnemonic))
        continue;
      std::vector<Line> body(lines);
      Line moved = body[static_cast<std::size_t>(i)];
      Line jumpOut;
      jumpOut.raw = "  j __mut_blk" + tag;
      jumpOut.mnemonic = "j";
      Line retLbl;
      retLbl.raw = "__mut_ret" + tag + ":";
      retLbl.label = "__mut_ret" + tag;
      body[static_cast<std::size_t>(i)] = jumpOut;
      body.insert(body.begin() + i + 1, retLbl);
      Line outLbl;
      outLbl.raw = "__mut_blk" + tag + ":";
      Line jumpBack;
      jumpBack.raw = "  j __mut_ret" + tag;
      body.push_back(outLbl);
      body.push_back(moved);
      body.push_back(jumpBack);
      emit(MutantClass::kBlockOutOfRegion,
           "moved in-region instruction '" + trim(moved.raw) +
               "' past the region (Fig. 9a layout)",
           std::move(body));
      break;
    }

    // Insert an sp-relative spill at the region entry.
    {
      std::vector<Line> body(lines);
      Line spill;
      spill.raw = "  sw t4, 0(sp)";
      spill.mnemonic = "sw";
      body.insert(body.begin() + start + 1, spill);
      emit(MutantClass::kInRegionSpill,
           "inserted 'sw t4, 0(sp)' at region entry (no parallel stack)",
           std::move(body));
    }

    // Read a register the program never mentions at the region entry: it
    // cannot be locally defined or a meaningful broadcast value.
    {
      static const char* kCandidates[] = {"t9", "t8", "t7", "t6", "s7",
                                          "s6", "s5", "s4", "s3", "s2"};
      std::string unused;
      for (const char* cand : kCandidates) {
        bool mentioned = false;
        for (const Line& l : lines)
          for (const std::string& op : l.operands)
            if (op == cand || op.find(std::string(cand) + ")") !=
                                  std::string::npos)
              mentioned = true;
        if (!mentioned) {
          unused = cand;
          break;
        }
      }
      if (!unused.empty()) {
        std::vector<Line> body(lines);
        Line read;
        read.raw = "  add " + unused + ", " + unused + ", " + unused;
        read.mnemonic = "add";
        body.insert(body.begin() + start + 1, read);
        emit(MutantClass::kUndefSpawnReg,
             "read of never-defined register " + unused + " at region entry",
             std::move(body));
      }
    }
  }
  return out;
}

}  // namespace xmt::analysis
