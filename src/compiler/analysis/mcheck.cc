#include "src/compiler/analysis/mcheck.h"

#include <map>
#include <utility>
#include <vector>

#include "src/compiler/analysis/alias.h"
#include "src/compiler/analysis/summary.h"
#include "src/compiler/analysis/xmtai.h"
#include "src/compiler/lower.h"
#include "src/compiler/parser.h"
#include "src/compiler/sema.h"
#include "src/compiler/transforms.h"

namespace xmt::analysis {

namespace {

/// Blocks of the spawn region whose body entry is `entry` (same traversal
/// as the race detector's).
std::vector<int> regionBlocks(const IrFunc& fn, const Cfg& cfg, int entry) {
  std::vector<int> blocks;
  if (entry < 0 || static_cast<std::size_t>(entry) >= fn.blocks.size())
    return blocks;
  if (!fn.blocks[static_cast<std::size_t>(entry)].parallel) return blocks;
  std::vector<bool> seen(fn.blocks.size(), false);
  std::vector<int> work{entry};
  seen[static_cast<std::size_t>(entry)] = true;
  while (!work.empty()) {
    int b = work.back();
    work.pop_back();
    blocks.push_back(b);
    for (int s : cfg.succ[static_cast<std::size_t>(b)]) {
      auto si = static_cast<std::size_t>(s);
      if (!seen[si] && fn.blocks[si].parallel) {
        seen[si] = true;
        work.push_back(s);
      }
    }
  }
  return blocks;
}

/// Thread-local arithmetic a tainted index may flow through without
/// becoming order-visible.
bool isLocalArith(IOp op) {
  switch (op) {
    case IOp::kAdd: case IOp::kSub: case IOp::kMul: case IOp::kDiv:
    case IOp::kRem: case IOp::kAnd: case IOp::kOr: case IOp::kXor:
    case IOp::kNor: case IOp::kSlt: case IOp::kSltu: case IOp::kSllv:
    case IOp::kSrlv: case IOp::kSrav: case IOp::kFadd: case IOp::kFsub:
    case IOp::kFmul: case IOp::kFdiv: case IOp::kFeq: case IOp::kFlt:
    case IOp::kFle: case IOp::kAddi: case IOp::kAndi: case IOp::kOri:
    case IOp::kXori: case IOp::kSlti: case IOp::kSll: case IOp::kSrl:
    case IOp::kSra: case IOp::kCvtif: case IOp::kCvtfi: case IOp::kCopy:
      return true;
    default:
      return false;
  }
}

struct UseRef {
  int block = 0;
  int instr = 0;
};

/// Def-site-precise def→use chains: a replay of the reaching-definitions
/// solution that records each instruction's uses *before* applying its own
/// definition. This is what makes `ps(one, counter)` inside a loop body
/// come out dead when `li one, 1` re-kills the result each iteration — the
/// ps's increment operand reads the li's def, not its own.
struct DefUse {
  std::map<std::pair<int, int>, int> siteAt;    // (block, instr) -> site id
  std::vector<std::vector<UseRef>> usesOfSite;  // site id -> reading instrs

  DefUse(const IrFunc& fn, const ReachingDefsResult& rd) {
    usesOfSite.resize(rd.sites.size());
    for (std::size_t s = 0; s < rd.sites.size(); ++s)
      siteAt[{rd.sites[s].block, rd.sites[s].instr}] = static_cast<int>(s);
    std::vector<int> uses;
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
      std::map<int, std::vector<int>> cur;  // vreg -> reaching site ids
      rd.flow.in[b].forEach([&](std::size_t s) {
        cur[rd.sites[s].vreg].push_back(static_cast<int>(s));
      });
      const IrBlock& blk = fn.blocks[b];
      for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
        const IrInstr& in = blk.instrs[i];
        uses.clear();
        collectUses(in, uses);
        for (int v : uses)
          if (auto it = cur.find(v); it != cur.end())
            for (int s : it->second)
              usesOfSite[static_cast<std::size_t>(s)].push_back(
                  {static_cast<int>(b), static_cast<int>(i)});
        if (in.dst >= 0) {
          auto it = siteAt.find({static_cast<int>(b), static_cast<int>(i)});
          if (it != siteAt.end()) cur[in.dst] = {it->second};
        }
      }
    }
  }
};

/// Module-wide accumulators behind the name-keyed fact sets: a name is
/// emitted only when every matching site across every function is clean,
/// and an unresolvable site poisons the whole category.
struct FactAcc {
  std::set<int> grSeen, grPoisoned;
  std::set<std::string> psmSeen, psmPoisoned;
  bool psmUnknownPoison = false;   // non-commuting psm with opaque target
  std::set<std::string> privSeen, privPoisoned;
  bool privUnknownPoison = false;  // non-private access with opaque target
};

void analyzeFunction(const IrFunc& fn, AnalysisManager& am,
                     const ModuleSummaries* summaries, McStaticFacts& out,
                     FactAcc& acc) {
  std::vector<int> entries;
  for (const IrBlock& b : fn.blocks)
    if (!b.instrs.empty() && b.instrs.back().op == IOp::kSpawn)
      entries.push_back(b.instrs.back().t1);
  if (entries.empty()) return;

  const Cfg& cfg = am.cfg(fn);
  const VRange* params = nullptr;
  if (summaries != nullptr)
    if (const FuncSummary* s = summaries->find(fn.name);
        s != nullptr && !s->recursive)
      params = s->paramRanges.data();
  RangeAnalysis ranges(fn, am, summaries, params);
  ValueResolver resolver(fn, am, summaries, &ranges);
  const ReachingDefsResult& rd = am.reachingDefs(fn);
  DefUse du(fn, rd);

  std::map<std::pair<int, int>, const MemSite*> siteOfInstr;
  for (const MemSite& m : resolver.memorySites())
    siteOfInstr[{m.block, m.instr}] = &m;

  // Region membership of blocks (by index).
  std::vector<bool> inRegion(fn.blocks.size(), false);
  for (int e : entries)
    for (int b : regionBlocks(fn, cfg, e))
      inRegion[static_cast<std::size_t>(b)] = true;
  out.regionCount += static_cast<int>(entries.size());

  // Pass 1: order-permuted symbols — region writes through a unique
  // ps-derived index (origin >= 0; the tid origin is schedule-invariant).
  for (const MemSite& m : resolver.memorySites()) {
    if (!inRegion[static_cast<std::size_t>(m.block)] || !m.write) continue;
    if (m.addr.isValue() && m.addr.base == AbsVal::Base::kSym &&
        m.addr.origin >= 0 && m.addr.uniqueOrigin)
      out.orderPermutedSymbols.insert(m.addr.sym);
  }

  // Pass 2: private memory lines (plain loads/stores only; one impure site
  // poisons its whole line).
  std::set<int> privateSeen, privatePoisoned;
  for (const MemSite& m : resolver.memorySites()) {
    if (!inRegion[static_cast<std::size_t>(m.block)] || m.atomic) continue;
    privateSeen.insert(m.srcLine);
    if (!m.threadPrivate) privatePoisoned.insert(m.srcLine);
    if (m.addr.isValue() && m.addr.base == AbsVal::Base::kSym) {
      acc.privSeen.insert(m.addr.sym);
      if (!m.threadPrivate) acc.privPoisoned.insert(m.addr.sym);
    } else {
      acc.privUnknownPoison = true;  // could alias any symbol
    }
  }
  for (int line : privateSeen)
    if (privatePoisoned.count(line) == 0) out.privateMemLines.insert(line);

  // Pass 3: commutative atomics. Taint the ps/psm result through
  // thread-local arithmetic; acceptable sinks are thread-private address
  // operands, store values landing in order-permuted private slots, and
  // prefetches. Everything else (branches, calls, printf, increments of a
  // further atomic, escaping stores) makes the handed-out order visible.
  auto commutes = [&](int blockIdx, int instrIdx) {
    auto seedIt = du.siteAt.find({blockIdx, instrIdx});
    if (seedIt == du.siteAt.end()) return true;  // no def recorded: dead
    std::vector<int> work{seedIt->second};
    std::set<int> tainted{seedIt->second};
    while (!work.empty()) {
      int s = work.back();
      work.pop_back();
      int sv = rd.sites[static_cast<std::size_t>(s)].vreg;
      for (const UseRef& u : du.usesOfSite[static_cast<std::size_t>(s)]) {
        const IrInstr& in =
            fn.blocks[static_cast<std::size_t>(u.block)]
                .instrs[static_cast<std::size_t>(u.instr)];
        if (auto it = siteOfInstr.find({u.block, u.instr});
            it != siteOfInstr.end()) {
          const MemSite& m = *it->second;
          bool asValue = (in.op == IOp::kStoreW || in.op == IOp::kStoreB ||
                          in.op == IOp::kPsm) &&
                         in.b == sv;
          if (asValue) {
            if (in.op == IOp::kPsm) return false;  // order-visible increment
            if (!(m.threadPrivate && m.addr.base == AbsVal::Base::kSym &&
                  out.orderPermutedSymbols.count(m.addr.sym) != 0))
              return false;
            continue;
          }
          if (in.a == sv) {  // address operand
            if (!m.threadPrivate) return false;
            continue;
          }
          return false;
        }
        if (in.op == IOp::kPref) continue;  // prefetch has no semantics
        if (in.op == IOp::kPs && in.a == sv) return false;
        if (!isLocalArith(in.op)) return false;
        if (in.dst >= 0) {
          auto dit = du.siteAt.find({u.block, u.instr});
          if (dit != du.siteAt.end() && tainted.insert(dit->second).second)
            work.push_back(dit->second);
        }
      }
    }
    return true;
  };

  std::set<int> atomicSeen, atomicPoisoned;
  for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
    if (!inRegion[b]) continue;
    const IrBlock& blk = fn.blocks[b];
    for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
      const IrInstr& in = blk.instrs[i];
      if (in.op != IOp::kPs && in.op != IOp::kPsm) continue;
      atomicSeen.insert(in.srcLine);
      bool ok = commutes(static_cast<int>(b), static_cast<int>(i));
      if (!ok) atomicPoisoned.insert(in.srcLine);
      if (in.op == IOp::kPs) {
        acc.grSeen.insert(in.imm);
        if (!ok) acc.grPoisoned.insert(in.imm);
      } else {
        auto it = siteOfInstr.find({static_cast<int>(b), static_cast<int>(i)});
        const MemSite* m = it != siteOfInstr.end() ? it->second : nullptr;
        if (m != nullptr && m->addr.isValue() &&
            m->addr.base == AbsVal::Base::kSym) {
          acc.psmSeen.insert(m->addr.sym);
          if (!ok) acc.psmPoisoned.insert(m->addr.sym);
        } else if (!ok) {
          // A non-commuting psm that could land anywhere: no psm symbol
          // may be trusted.
          acc.psmUnknownPoison = true;
        }
      }
    }
  }
  for (int line : atomicSeen)
    if (atomicPoisoned.count(line) == 0)
      out.commutativeAtomicLines.insert(line);
}

}  // namespace

McStaticFacts computeMcFacts(const IrModule& mod,
                             const ModuleSummaries* summaries) {
  McStaticFacts facts;
  AnalysisManager am;
  ModuleSummaries local;
  if (summaries == nullptr) {
    local = buildModuleSummaries(mod, am);
    summaries = &local;
  }
  FactAcc acc;
  for (const IrFunc& fn : mod.funcs)
    analyzeFunction(fn, am, summaries, facts, acc);
  for (int g : acc.grSeen)
    if (acc.grPoisoned.count(g) == 0) facts.commutativePsGrs.insert(g);
  if (!acc.psmUnknownPoison)
    for (const std::string& s : acc.psmSeen)
      if (acc.psmPoisoned.count(s) == 0) facts.commutativePsmSymbols.insert(s);
  if (!acc.privUnknownPoison)
    for (const std::string& s : acc.privSeen)
      if (acc.privPoisoned.count(s) == 0) facts.privateSymbols.insert(s);
  return facts;
}

McStaticFacts computeMcFactsForSource(const std::string& source,
                                      bool inlineParallel) {
  auto tu = parse(source);
  analyze(*tu);
  if (inlineParallel) inlineParallelCalls(*tu);
  IrModule mod = lowerToIr(*tu);
  return computeMcFacts(mod);
}

}  // namespace xmt::analysis
