// Assembly-level XMT legality and memory-model verifier.
//
// The paper's post-pass (Section IV-B) is supposed to *verify* that emitted
// assembly complies with XMT semantics; runPostPass only repairs basic-block
// layout. This pass closes the gap: it assembles the post-pass output into
// decoded Instruction records (reusing the assembler's front-end rather than
// pattern-matching text), builds a machine-code CFG over the text segment,
// and runs dataflow over *physical* registers to check the rules of
// Section IV-A at the level the hardware sees:
//
//   1. Every path to a `ps`/`psm` with an outstanding non-blocking store
//      carries a `fence` (the prefix-sum unit does not order against the
//      store queue). `sw`/`sb` block until acknowledged and never go dirty;
//      `join` and `halt` drain the store queue and act as implicit fences —
//      exactly the cycle model's behaviour. The paper-strict reading (no
//      swnb outstanding at join/spawn either) is available behind
//      AsmVerifyOptions::strictJoinFence.
//   2. All control flow of a spawn region stays inside [start, end): every
//      branch target and every fall-through of a reachable in-region
//      instruction must land in the region, and each path must end at a
//      `join`. This is an independent oracle for the Fig. 9 layout repair —
//      the TCUs fetch only the broadcast range and trap outside it.
//   3. No spawn/halt/jal/jalr/jr inside a region (no nesting, no calls, no
//      parallel-mode halt) and no reference to `sp` (there is no parallel
//      stack; spills inside regions are illegal).
//   4. Every register read inside a region is locally defined on all paths,
//      a master-defined broadcast value (the spawn hardware copies the
//      master register file to every TCU), or a TCU-local special
//      (tid/zero).
//   5. No register written inside a region is consumed by the serial
//      continuation: TCU register files are discarded at join, so such a
//      write is the Fig. 8 lost-update bug (caught at the machine level,
//      which covers `outline=false` compilations that bypass the IR check).
//
// The verifier only reports; it never mutates the assembly. It must accept
// every program the driver accepts (meta-oracle: all registry workloads at
// every opt level/option combo, plus the fuzz corpus, verify clean) and
// flag every class of the asmmutate fault-injection harness.
#pragma once

#include <string>
#include <vector>

#include "src/compiler/diag.h"

namespace xmt::analysis {

struct AsmVerifyOptions {
  // Paper-strict Section IV-A: also require the store queue to be empty at
  // `join` and `spawn`. The hardware drains outstanding swnb at both, so
  // the relaxed default matches the cycle model (and the compiler, which
  // relies on the implicit drain at join).
  bool strictJoinFence = false;
  // Flag only the spawn half of the strict rule: an swnb possibly
  // outstanding when `spawn` broadcasts. This is the master-side window
  // that outlined codegen hides from the drop-fence fault injection
  // (DESIGN.md section 8.5): the spawn helper contains no stores, so no
  // fence is ever emitted there and the relaxed verifier clears the dirty
  // bit at spawn. The narrow knob lets the fuzzer assert the window is
  // fenced without also requiring fences before every join.
  bool strictSpawnFence = false;
};

/// Verifies assembly text. Returns one Diagnostic per finding (severity
/// kWarning; callers promote under -Werror-asm). Never throws on malformed
/// input: text that does not assemble yields a single kAsmUnassemblable
/// finding. Diagnostic::line is the assembly source line.
std::vector<Diagnostic> verifyAssembly(const std::string& asmText,
                                       const AsmVerifyOptions& opts = {});

}  // namespace xmt::analysis
