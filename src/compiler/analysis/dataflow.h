// Generic forward/backward dataflow framework over the IrInstr CFG.
//
// Analyses are expressed as bit-vector problems: a finite domain (virtual
// registers, definition sites, ...), a union or intersection confluence, and
// a per-block transfer function. The solver runs a worklist to a fixed
// point, seeding in reverse post-order (forward) or post-order (backward) so
// typical CFGs converge in a couple of sweeps. Built-in problem instances —
// liveness and reaching definitions — serve both the optimizer (dead-code
// elimination) and the race detector; AnalysisManager caches per-function
// results so stacked passes do not recompute them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/compiler/analysis/cfg.h"
#include "src/compiler/ir.h"

namespace xmt::analysis {

/// Fixed-size bitset sized at run time (the lattice element).
class BitSet {
 public:
  BitSet() = default;
  explicit BitSet(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  std::size_t sizeBits() const { return nbits_; }
  void set(std::size_t i) { words_[i >> 6] |= 1ull << (i & 63); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(1ull << (i & 63)); }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void clear() { std::fill(words_.begin(), words_.end(), 0); }
  void fill() {
    std::fill(words_.begin(), words_.end(), ~0ull);
    trimTail();
  }

  /// this |= other; returns true when this changed.
  bool uniteWith(const BitSet& other);
  /// this &= other; returns true when this changed.
  bool intersectWith(const BitSet& other);
  /// this &= ~other.
  void subtract(const BitSet& other);

  bool operator==(const BitSet& other) const {
    return words_ == other.words_;
  }

  std::size_t count() const;

  /// Calls fn(index) for each set bit, ascending.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        unsigned tz = static_cast<unsigned>(__builtin_ctzll(bits));
        fn(w * 64 + tz);
        bits &= bits - 1;
      }
    }
  }

 private:
  void trimTail() {
    if (nbits_ % 64 != 0 && !words_.empty())
      words_.back() &= (1ull << (nbits_ % 64)) - 1;
  }

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

enum class Direction : std::uint8_t { kForward, kBackward };
enum class Confluence : std::uint8_t { kUnion, kIntersection };

/// A bit-vector dataflow problem. Implementations provide the domain and a
/// block-granular transfer function applied in the problem's direction.
class DataflowProblem {
 public:
  virtual ~DataflowProblem() = default;

  virtual std::size_t domainSize() const = 0;
  virtual Direction direction() const = 0;
  virtual Confluence confluence() const = 0;

  /// Value at the CFG boundary (entry for forward, every exit for backward).
  virtual BitSet boundary() const { return BitSet(domainSize()); }
  /// Optimistic initial value for interior blocks (empty for union problems,
  /// full for intersection problems).
  virtual BitSet initial() const {
    BitSet b(domainSize());
    if (confluence() == Confluence::kIntersection) b.fill();
    return b;
  }

  /// Applies the block transfer to `state` in the problem's direction:
  /// forward problems receive the block-in and must leave the block-out,
  /// backward problems receive the block-out and must leave the block-in.
  virtual void transfer(const IrFunc& fn, const IrBlock& b,
                        BitSet& state) const = 0;
};

/// Per-block fixed-point solution. For forward problems `in[b]` is the state
/// at block entry and `out[b]` at exit; for backward problems `in[b]` is the
/// state at block entry (the transfer result) and `out[b]` at exit.
struct DataflowResult {
  std::vector<BitSet> in, out;
};

DataflowResult solve(const IrFunc& fn, const Cfg& cfg,
                     const DataflowProblem& problem);

// --- Built-in problem instances --------------------------------------------

/// Virtual registers read by `in` (operands, call args, kRet's implicit v0).
void collectUses(const IrInstr& in, std::vector<int>& out);

/// Backward liveness of virtual registers. Domain: vreg ids [0, nextVreg).
struct LivenessResult {
  DataflowResult flow;  // in = live-in, out = live-out per block
};
LivenessResult computeLiveness(const IrFunc& fn, const Cfg& cfg);

/// Forward reaching definitions. Domain: definition sites — instructions
/// with dst >= 0, numbered in block/instruction order.
struct DefSite {
  int block = 0;
  int instr = 0;
  int vreg = -1;
};
struct ReachingDefsResult {
  std::vector<DefSite> sites;                 // site id -> location
  std::map<int, std::vector<int>> sitesOfVreg;  // vreg -> site ids
  DataflowResult flow;                        // in/out per block over sites
};
ReachingDefsResult computeReachingDefs(const IrFunc& fn, const Cfg& cfg);

/// Memoizes per-function analyses keyed by function identity. The IR must
/// not change between queries; call invalidate() after transforming it.
class AnalysisManager {
 public:
  const Cfg& cfg(const IrFunc& fn);
  const LivenessResult& liveness(const IrFunc& fn);
  const ReachingDefsResult& reachingDefs(const IrFunc& fn);
  void invalidate(const IrFunc& fn);

 private:
  struct Entry {
    bool hasCfg = false, hasLive = false, hasReach = false;
    Cfg cfg;
    LivenessResult live;
    ReachingDefsResult reach;
  };
  std::map<const IrFunc*, Entry> cache_;
};

}  // namespace xmt::analysis
