// Interprocedural function summaries for the abstract interpreter.
//
// Built bottom-up over the call graph (callees first), then refined
// top-down (callers push argument ranges into their callees):
//
//   * `ret` — numeric range of the return value, computed by the interval
//     engine with all parameters TOP (sound for every call site);
//   * `retSym` — the return value in the AbsVal algebra with parameters
//     seeded as symbolic origins, so `int at(int i) { return i * 4; }`
//     summarizes as  4*param0  and a caller substitutes its argument's
//     abstract value (this is what removes the race lint's call cliff);
//   * `paramRanges` — per-parameter joined numeric range over every call
//     site observed in the module (TOP for recursive or never-called
//     functions), used by the lints to check helper bodies against the
//     values actually flowing in.
//
// Recursive functions (any non-trivial SCC or self-call) keep the TOP
// summary in every field.
#pragma once

#include <array>
#include <map>
#include <string>

#include "src/compiler/analysis/alias.h"
#include "src/compiler/analysis/vrange.h"
#include "src/compiler/ir.h"

namespace xmt::analysis {

inline constexpr int kMaxSummaryParams = 8;  // the call ABI's register args
/// Physical registers carrying the first 8 arguments (mirrors lower.cc).
inline constexpr int kSummaryArgRegs[kMaxSummaryParams] = {
    kA0, kA1, kA2, kA3, kT0, kT1, kT2, kT3};

struct FuncSummary {
  VRange ret = VRange::full32();
  AbsVal retSym;  // kind == kUnknown when inexpressible
  std::array<VRange, kMaxSummaryParams> paramRanges{
      VRange::full32(), VRange::full32(), VRange::full32(), VRange::full32(),
      VRange::full32(), VRange::full32(), VRange::full32(), VRange::full32()};
  bool recursive = false;
};

struct ModuleSummaries {
  std::map<std::string, FuncSummary> byName;
  const FuncSummary* find(const std::string& name) const {
    auto it = byName.find(name);
    return it == byName.end() ? nullptr : &it->second;
  }
};

/// Applies a callee's symbolic return summary to concrete argument values.
/// Returns Unknown when the summary is inexpressible at this call site; the
/// resolver then materializes an opaque handle for the call result.
AbsVal applyReturnSummary(const FuncSummary& s,
                          const std::vector<AbsVal>& argVals);

/// Builds summaries for every function of the module: bottom-up return
/// summaries, then a top-down argument-range pass.
ModuleSummaries buildModuleSummaries(const IrModule& mod,
                                     AnalysisManager& am);

}  // namespace xmt::analysis
