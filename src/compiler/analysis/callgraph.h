// Call graph over an IrModule, with the traversal orders the summary
// builder needs: a bottom-up order (callees before callers, for return
// summaries) and a top-down order (callers before callees, for argument
// ranges). Strongly connected components are condensed with Tarjan's
// algorithm; any function in a non-trivial SCC (or calling one) is
// recursive and gets the conservative TOP summary.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/compiler/ir.h"

namespace xmt::analysis {

struct CallGraph {
  std::vector<const IrFunc*> funcs;           // module order
  std::map<std::string, int> indexOf;         // name -> funcs index
  std::vector<std::vector<int>> callees;      // deduplicated edges
  std::vector<bool> recursive;                // in a cycle (incl. self-call)
  std::vector<int> bottomUp;                  // callees before callers
  std::vector<int> topDown;                   // callers before callees
};

CallGraph buildCallGraph(const IrModule& mod);

}  // namespace xmt::analysis
