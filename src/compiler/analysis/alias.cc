#include "src/compiler/analysis/alias.h"

#include <cstdlib>
#include <map>

#include "src/isa/isa.h"

namespace xmt::analysis {

void AbsVal::meetWith(const AbsVal& o) {
  if (o.kind == Kind::kBottom) return;
  if (kind == Kind::kBottom) {
    *this = o;
    return;
  }
  if (!(*this == o)) *this = unknown();
}

namespace {

// Addition of two abstract values; representable sums keep their base and
// unique term, anything else degrades to Unknown.
AbsVal addVals(const AbsVal& a, const AbsVal& b) {
  if (!a.isValue() || !b.isValue()) return AbsVal::unknown();
  if (a.base != AbsVal::Base::kNone && b.base != AbsVal::Base::kNone)
    return AbsVal::unknown();
  AbsVal r = a.base != AbsVal::Base::kNone ? a : b;
  const AbsVal& other = a.base != AbsVal::Base::kNone ? b : a;
  r.c = a.c + b.c;
  if (a.origin != kOriginNone && b.origin != kOriginNone) {
    if (a.origin != b.origin) return AbsVal::unknown();
    r.origin = a.origin;
    r.scale = a.scale + b.scale;
  } else if (other.origin != kOriginNone) {
    r.origin = other.origin;
    r.scale = other.scale;
  }
  if (r.origin != kOriginNone && r.scale == 0) r.origin = kOriginNone;
  return r;
}

AbsVal negate(const AbsVal& a) {
  if (!a.isValue() || a.base != AbsVal::Base::kNone) return AbsVal::unknown();
  AbsVal r = a;
  r.scale = -r.scale;
  r.c = -r.c;
  return r;
}

AbsVal mulByConst(const AbsVal& a, std::int64_t k) {
  if (!a.isValue() || a.base != AbsVal::Base::kNone) return AbsVal::unknown();
  AbsVal r = a;
  r.scale *= k;
  r.c *= k;
  if (r.scale == 0) r.origin = kOriginNone;
  return r;
}

}  // namespace

ValueResolver::ValueResolver(const IrFunc& fn, AnalysisManager& am) {
  const Cfg& cfg = am.cfg(fn);
  const ReachingDefsResult& rd = am.reachingDefs(fn);
  defVals_.assign(rd.sites.size(), AbsVal{});

  // Site id lookup per (block, instr).
  std::map<std::pair<int, int>, int> siteAt;
  for (std::size_t s = 0; s < rd.sites.size(); ++s)
    siteAt[{rd.sites[s].block, rd.sites[s].instr}] = static_cast<int>(s);

  // Operand lookup against the current per-vreg value map. Physical
  // registers are transient staging (clobbered by calls and conventions) —
  // always Unknown, except the architectural zero register.
  auto operandVal = [&](const std::map<int, AbsVal>& vals,
                        int reg) -> AbsVal {
    if (reg == 0) return AbsVal::constant(0);
    if (reg < kNumRegs) return AbsVal::unknown();
    auto it = vals.find(reg);
    return it == vals.end() ? AbsVal::unknown() : it->second;
  };

  auto evalDef = [&](const std::map<int, AbsVal>& vals, const IrInstr& in,
                     int siteId) -> AbsVal {
    switch (in.op) {
      case IOp::kLi:
        return AbsVal::constant(in.imm);
      case IOp::kLa: {
        AbsVal r;
        r.kind = AbsVal::Kind::kValue;
        r.base = AbsVal::Base::kSym;
        r.sym = in.sym;
        r.c = in.imm;
        return r;
      }
      case IOp::kGetTid: {
        AbsVal r;
        r.kind = AbsVal::Kind::kValue;
        r.origin = kOriginTid;
        r.scale = 1;
        return r;
      }
      case IOp::kFrameAddr: {
        AbsVal r;
        r.kind = AbsVal::Kind::kValue;
        r.base = AbsVal::Base::kFrame;
        r.c = in.imm;
        return r;
      }
      case IOp::kCopy:
        return operandVal(vals, in.a);
      case IOp::kAdd:
        return addVals(operandVal(vals, in.a), operandVal(vals, in.b));
      case IOp::kAddi:
        return addVals(operandVal(vals, in.a), AbsVal::constant(in.imm));
      case IOp::kSub:
        return addVals(operandVal(vals, in.a),
                       negate(operandVal(vals, in.b)));
      case IOp::kMul: {
        AbsVal a = operandVal(vals, in.a), b = operandVal(vals, in.b);
        if (a.isConst()) return mulByConst(b, a.c);
        if (b.isConst()) return mulByConst(a, b.c);
        return AbsVal::unknown();
      }
      case IOp::kSll:
        if (in.imm >= 0 && in.imm < 32)
          return mulByConst(operandVal(vals, in.a),
                            std::int64_t{1} << in.imm);
        return AbsVal::unknown();
      case IOp::kSllv: {
        AbsVal b = operandVal(vals, in.b);
        if (b.isConst() && b.c >= 0 && b.c < 32)
          return mulByConst(operandVal(vals, in.a), std::int64_t{1} << b.c);
        return AbsVal::unknown();
      }
      case IOp::kPs:
      case IOp::kPsm: {
        // The returned fetch-add base is distinct per execution when the
        // increment is a provably positive constant — the classifier's
        // "ps-mediated index" class (array compaction, queue allocation).
        AbsVal inc = operandVal(vals, in.op == IOp::kPs ? in.a : in.b);
        if (inc.isConst() && inc.c > 0) {
          AbsVal r;
          r.kind = AbsVal::Kind::kValue;
          r.origin = siteId;
          r.scale = 1;
          return r;
        }
        return AbsVal::unknown();
      }
      default:
        return AbsVal::unknown();
    }
  };

  // Fixed point: seed block-entry vreg values from the meet over reaching
  // definition sites, then walk each block linearly. Values only descend
  // (Bottom -> value -> Unknown), so this converges in a few sweeps.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b : cfg.rpo) {
      auto bi = static_cast<std::size_t>(b);
      std::map<int, AbsVal> vals;
      rd.flow.in[bi].forEach([&](std::size_t s) {
        const DefSite& site = rd.sites[s];
        auto [it, fresh] = vals.try_emplace(site.vreg, defVals_[s]);
        if (!fresh) it->second.meetWith(defVals_[s]);
      });
      const IrBlock& blk = fn.blocks[bi];
      for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
        const IrInstr& in = blk.instrs[i];
        if (in.dst < 0) continue;
        int siteId = siteAt.at({b, static_cast<int>(i)});
        AbsVal v = evalDef(vals, in, siteId);
        AbsVal& slot = defVals_[static_cast<std::size_t>(siteId)];
        AbsVal merged = slot;
        merged.meetWith(v);
        if (!(merged == slot)) {
          slot = merged;
          changed = true;
        }
        vals[in.dst] = slot;
      }
    }
  }

  // Final sweep: collect memory sites with resolved effective addresses.
  for (int b : cfg.rpo) {
    auto bi = static_cast<std::size_t>(b);
    std::map<int, AbsVal> vals;
    rd.flow.in[bi].forEach([&](std::size_t s) {
      const DefSite& site = rd.sites[s];
      auto [it, fresh] = vals.try_emplace(site.vreg, defVals_[s]);
      if (!fresh) it->second.meetWith(defVals_[s]);
    });
    const IrBlock& blk = fn.blocks[bi];
    for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
      const IrInstr& in = blk.instrs[i];
      bool isLoad = in.op == IOp::kLoadW || in.op == IOp::kLoadB;
      bool isStore = in.op == IOp::kStoreW || in.op == IOp::kStoreB;
      bool isPsm = in.op == IOp::kPsm;
      if (isLoad || isStore || isPsm) {
        MemSite m;
        m.block = b;
        m.instr = static_cast<int>(i);
        m.op = in.op;
        m.read = isLoad || isPsm;
        m.write = isStore || isPsm;
        m.atomic = isPsm;
        m.sizeBytes =
            (in.op == IOp::kLoadB || in.op == IOp::kStoreB) ? 1 : 4;
        m.srcLine = in.srcLine;
        m.addr = addVals(operandVal(vals, in.a), AbsVal::constant(in.imm));
        if (!m.addr.isValue()) {
          m.cls = AddrClass::kUnknown;
        } else if (m.addr.base == AbsVal::Base::kSym) {
          m.cls = m.addr.origin != kOriginNone ? AddrClass::kTidIndexed
                                               : AddrClass::kGlobal;
        } else if (m.addr.base == AbsVal::Base::kFrame) {
          m.cls = AddrClass::kFrameLocal;
        } else {
          m.cls = m.addr.origin != kOriginNone ? AddrClass::kTidIndexed
                                               : AddrClass::kUnknown;
        }
        m.threadPrivate = m.addr.isValue() && m.addr.origin != kOriginNone &&
                          std::abs(m.addr.scale) >= m.sizeBytes;
        memSites_.push_back(std::move(m));
      }
      if (in.dst >= 0) {
        int siteId = siteAt.at({b, static_cast<int>(i)});
        vals[in.dst] = defVals_[static_cast<std::size_t>(siteId)];
      }
    }
  }
}

}  // namespace xmt::analysis
