#include "src/compiler/analysis/alias.h"

#include <cstdlib>
#include <map>
#include <utility>

#include "src/compiler/analysis/summary.h"
#include "src/compiler/analysis/xmtai.h"
#include "src/isa/isa.h"

namespace xmt::analysis {

void AbsVal::meetWith(const AbsVal& o) {
  if (o.kind == Kind::kBottom) return;
  if (kind == Kind::kBottom) {
    *this = o;
    return;
  }
  if (kind == Kind::kValue && o.kind == Kind::kValue && base == o.base &&
      sym == o.sym && origin == o.origin && uniqueOrigin == o.uniqueOrigin &&
      scale == o.scale) {
    off = off.joined(o.off);
    if (hint.empty()) hint = o.hint;
    return;
  }
  std::string keep = !sym.empty()    ? sym
                     : !hint.empty() ? hint
                     : !o.sym.empty() ? o.sym
                                      : o.hint;
  *this = unknown();
  hint = std::move(keep);
}

AbsVal absAdd(const AbsVal& a, const AbsVal& b) {
  if (a.kind == AbsVal::Kind::kBottom || b.kind == AbsVal::Kind::kBottom)
    return AbsVal{};
  if (!a.isValue() || !b.isValue()) return AbsVal::unknown();
  if (a.base != AbsVal::Base::kNone && b.base != AbsVal::Base::kNone)
    return AbsVal::unknown();
  AbsVal r = a.base != AbsVal::Base::kNone ? a : b;
  const AbsVal& other = a.base != AbsVal::Base::kNone ? b : a;
  r.off = a.off.addSat(b.off);
  if (a.origin != kOriginNone && b.origin != kOriginNone) {
    if (a.origin != b.origin || a.uniqueOrigin != b.uniqueOrigin)
      return AbsVal::unknown();
    r.origin = a.origin;
    r.uniqueOrigin = a.uniqueOrigin;
    r.scale = a.scale + b.scale;
  } else if (other.origin != kOriginNone) {
    r.origin = other.origin;
    r.uniqueOrigin = other.uniqueOrigin;
    r.scale = other.scale;
  }
  if (r.origin != kOriginNone && r.scale == 0) {
    r.origin = kOriginNone;
    r.uniqueOrigin = false;
  }
  if (r.hint.empty()) r.hint = other.hint;
  return r;
}

AbsVal absNeg(const AbsVal& a) {
  if (a.kind == AbsVal::Kind::kBottom) return AbsVal{};
  if (!a.isValue() || a.base != AbsVal::Base::kNone) return AbsVal::unknown();
  AbsVal r = a;
  r.scale = -r.scale;
  r.off = r.off.negated();
  return r;
}

AbsVal absMulConst(const AbsVal& a, std::int64_t k) {
  if (a.kind == AbsVal::Kind::kBottom) return AbsVal{};
  if (!a.isValue() || a.base != AbsVal::Base::kNone) return AbsVal::unknown();
  // Keep coefficients sane: index arithmetic never needs huge scales, and
  // bounding them keeps the overlap algebra overflow-free.
  if (std::llabs(k) > (std::int64_t{1} << 40) ||
      std::llabs(a.scale) > (std::int64_t{1} << 20))
    return AbsVal::unknown();
  AbsVal r = a;
  r.scale *= k;
  r.off = r.off.mulConstSat(k);
  if (r.scale == 0) {
    r.origin = kOriginNone;
    r.uniqueOrigin = false;
  }
  return r;
}

namespace {

// Updates to one def site before its growing offset interval is widened to
// the infinity sentinels (loop carriers converge right after).
constexpr int kWidenAfter = 8;

}  // namespace

ValueResolver::ValueResolver(const IrFunc& fn, AnalysisManager& am,
                             const ModuleSummaries* summaries,
                             const RangeAnalysis* ranges,
                             bool seedParamOrigins) {
  const Cfg& cfg = am.cfg(fn);
  const ReachingDefsResult& rd = am.reachingDefs(fn);
  defVals_.assign(rd.sites.size(), AbsVal{});
  std::vector<int> bumps(rd.sites.size(), 0);

  // Site id lookup per (block, instr).
  std::map<std::pair<int, int>, int> siteAt;
  for (std::size_t s = 0; s < rd.sites.size(); ++s)
    siteAt[{rd.sites[s].block, rd.sites[s].instr}] = static_cast<int>(s);

  auto nameOf = [&](int vreg) -> std::string {
    auto it = fn.vregNames.find(vreg);
    return it == fn.vregNames.end() ? std::string() : it->second;
  };

  // Operand lookup against the current per-vreg value map. Physical
  // registers are transient staging: they are tracked within a block (and
  // kV0 across blocks — every return site re-defines v0 after its last
  // call, so its reaching definitions are exact), but other phys regs are
  // dropped at block entry and at call/syscall clobbers.
  auto operandVal = [&](const std::map<int, AbsVal>& vals,
                        int reg) -> AbsVal {
    if (reg == 0) return AbsVal::constant(0);
    auto it = vals.find(reg);
    return it == vals.end() ? AbsVal::unknown() : it->second;
  };

  auto erasePhys = [](std::map<int, AbsVal>& vals) {
    for (auto it = vals.begin(); it != vals.end();)
      it = (it->first > 0 && it->first < kNumRegs) ? vals.erase(it)
                                                   : std::next(it);
  };

  // Call transfer: substitute the callee's return summary into v0 and
  // clobber the transient phys state. An inexpressible return leaves v0
  // absent, so the following `copy res, v0` materializes an opaque handle.
  auto applyCall = [&](const IrInstr& in, std::map<int, AbsVal>& vals) {
    AbsVal ret = AbsVal::unknown();
    if (summaries != nullptr) {
      if (const FuncSummary* s = summaries->find(in.sym);
          s != nullptr && !s->recursive) {
        std::vector<AbsVal> argVals;
        argVals.reserve(in.args.size());
        for (int r : in.args) argVals.push_back(operandVal(vals, r));
        ret = applyReturnSummary(*s, argVals);
      }
    }
    erasePhys(vals);
    if (ret.kind != AbsVal::Kind::kUnknown) vals[kV0] = ret;
  };

  // Numeric range of an operand at an instruction, when available.
  auto numRange = [&](int block, int instr, int reg) -> VRange {
    if (ranges == nullptr) return VRange::full32();
    return ranges->rangeAt(block, instr, reg);
  };

  auto evalDef = [&](const std::map<int, AbsVal>& vals, const IrInstr& in,
                     int siteId, int block, int instr) -> AbsVal {
    switch (in.op) {
      case IOp::kLi:
        return AbsVal::constant(in.imm);
      case IOp::kLa: {
        AbsVal r;
        r.kind = AbsVal::Kind::kValue;
        r.base = AbsVal::Base::kSym;
        r.sym = in.sym;
        r.off = VRange::constant(in.imm);
        r.hint = in.sym;
        return r;
      }
      case IOp::kGetTid: {
        AbsVal r;
        r.kind = AbsVal::Kind::kValue;
        r.origin = kOriginTid;
        r.uniqueOrigin = true;
        r.scale = 1;
        return r;
      }
      case IOp::kFrameAddr: {
        AbsVal r;
        r.kind = AbsVal::Kind::kValue;
        r.base = AbsVal::Base::kFrame;
        r.off = VRange::constant(in.imm);
        return r;
      }
      case IOp::kCopy:
        return operandVal(vals, in.a);
      case IOp::kAdd:
        return absAdd(operandVal(vals, in.a), operandVal(vals, in.b));
      case IOp::kAddi:
        return absAdd(operandVal(vals, in.a), AbsVal::constant(in.imm));
      case IOp::kSub:
        return absAdd(operandVal(vals, in.a),
                      absNeg(operandVal(vals, in.b)));
      case IOp::kMul: {
        AbsVal a = operandVal(vals, in.a), b = operandVal(vals, in.b);
        if (a.kind == AbsVal::Kind::kBottom ||
            b.kind == AbsVal::Kind::kBottom)
          return AbsVal{};
        if (a.isConst()) return absMulConst(b, a.constVal());
        if (b.isConst()) return absMulConst(a, b.constVal());
        return AbsVal::unknown();
      }
      case IOp::kSll:
        if (in.imm >= 0 && in.imm < 32)
          return absMulConst(operandVal(vals, in.a),
                             std::int64_t{1} << in.imm);
        return AbsVal::unknown();
      case IOp::kSllv: {
        AbsVal b = operandVal(vals, in.b);
        if (b.kind == AbsVal::Kind::kBottom) return AbsVal{};
        if (b.isConst() && b.constVal() >= 0 && b.constVal() < 32)
          return absMulConst(operandVal(vals, in.a),
                             std::int64_t{1} << b.constVal());
        return AbsVal::unknown();
      }
      case IOp::kAndi:
        if (in.imm >= 0) {
          // `x & mask` is the identity when x provably fits the mask (the
          // fuzzer's canonical in-bounds index idiom) and a [0, mask]
          // constant range otherwise.
          AbsVal a = operandVal(vals, in.a);
          if (a.kind == AbsVal::Kind::kBottom) return AbsVal{};
          VRange n = numRange(block, instr, in.a);
          if (!n.isEmpty() && n.lo >= 0 && n.hi <= in.imm) return a;
          return AbsVal::constRange(VRange::of(0, in.imm));
        }
        return AbsVal::unknown();
      case IOp::kAnd: {
        AbsVal a = operandVal(vals, in.a), b = operandVal(vals, in.b);
        if (a.kind == AbsVal::Kind::kBottom ||
            b.kind == AbsVal::Kind::kBottom)
          return AbsVal{};
        const AbsVal* cst = b.isConst() && b.constVal() >= 0   ? &b
                            : a.isConst() && a.constVal() >= 0 ? &a
                                                               : nullptr;
        if (cst == nullptr) return AbsVal::unknown();
        const AbsVal& other = cst == &b ? a : b;
        int otherReg = cst == &b ? in.a : in.b;
        VRange n = numRange(block, instr, otherReg);
        if (!n.isEmpty() && n.lo >= 0 && n.hi <= cst->constVal())
          return other;
        return AbsVal::constRange(VRange::of(0, cst->constVal()));
      }
      case IOp::kLoadW:
      case IOp::kLoadB: {
        // A loaded value is inexpressible, but the handle it opaqueizes to
        // should carry the loaded location's name: `*p = ...` through a
        // pointer fetched from global P reports "P", not "<unknown>".
        AbsVal addr = absAdd(operandVal(vals, in.a), AbsVal::constant(in.imm));
        if (addr.kind == AbsVal::Kind::kBottom) return AbsVal{};
        AbsVal r = AbsVal::unknown();
        r.hint = !addr.sym.empty() ? addr.sym : addr.hint;
        return r;
      }
      case IOp::kPs:
      case IOp::kPsm: {
        // The returned fetch-add base is distinct per *execution* when the
        // increment is a provably positive constant — the classifier's
        // "ps-mediated index" class (array compaction, queue allocation).
        // Distinct per *thread* only when the ps executes inside the spawn
        // region: a serial ps broadcasts one value to every thread, so its
        // result must not license a disjointness proof (uniqueOrigin off).
        AbsVal inc = operandVal(vals, in.op == IOp::kPs ? in.a : in.b);
        if (inc.kind == AbsVal::Kind::kBottom) return AbsVal{};
        if (inc.isConst() && inc.constVal() > 0) {
          AbsVal r;
          r.kind = AbsVal::Kind::kValue;
          r.origin = siteId;
          r.uniqueOrigin =
              fn.blocks[static_cast<std::size_t>(block)].parallel;
          r.scale = 1;
          return r;
        }
        return AbsVal::unknown();
      }
      default:
        return AbsVal::unknown();
    }
  };

  // Block-entry seeding: the meet over reaching definition sites. Phys
  // registers other than v0 are excluded (call-clobbered staging).
  auto seedEntry = [&](std::size_t bi) {
    std::map<int, AbsVal> vals;
    rd.flow.in[bi].forEach([&](std::size_t s) {
      const DefSite& site = rd.sites[s];
      if (site.vreg > 0 && site.vreg < kNumRegs && site.vreg != kV0) return;
      auto [it, fresh] = vals.try_emplace(site.vreg, defVals_[s]);
      if (!fresh) it->second.meetWith(defVals_[s]);
    });
    if (seedParamOrigins && bi == 0) {
      for (int i = 0; i < fn.nParams && i < kMaxSummaryParams; ++i) {
        AbsVal p;
        p.kind = AbsVal::Kind::kValue;
        p.origin = paramOrigin(i);
        p.scale = 1;
        vals[kSummaryArgRegs[i]] = p;
      }
    }
    return vals;
  };

  // Fixed point: walk each block linearly from its seeded entry state.
  // Inexpressible definitions become opaque handles for their own site
  // (never raw Unknown), and offset intervals that keep growing are
  // widened to the infinity sentinels, so the chain of updates per site is
  // bounded and the sweep converges.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int b : cfg.rpo) {
      // Blocks the interval engine proves unreachable (a range-decided
      // branch prunes every path in) cannot execute: their definitions
      // stay kBottom and their memory accesses are never collected.
      if (ranges != nullptr && !ranges->blockReachable(b)) continue;
      auto bi = static_cast<std::size_t>(b);
      std::map<int, AbsVal> vals = seedEntry(bi);
      const IrBlock& blk = fn.blocks[bi];
      for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
        const IrInstr& in = blk.instrs[i];
        if (in.op == IOp::kCall) {
          applyCall(in, vals);
          continue;
        }
        if (in.op == IOp::kSys) {
          erasePhys(vals);
          continue;
        }
        if (in.dst < 0) continue;
        int siteId = siteAt.at({b, static_cast<int>(i)});
        auto si = static_cast<std::size_t>(siteId);
        AbsVal v = evalDef(vals, in, siteId, b, static_cast<int>(i));
        if (v.kind == AbsVal::Kind::kBottom) continue;  // operands pending
        if (!v.isValue()) {
          std::string h = !v.hint.empty() ? v.hint : nameOf(in.dst);
          v = AbsVal::opaque(siteId, std::move(h));
        }
        if (v.hint.empty()) v.hint = nameOf(in.dst);
        AbsVal& slot = defVals_[si];
        AbsVal merged = slot;
        merged.meetWith(v);
        if (!merged.isValue()) {
          std::string h = !merged.hint.empty() ? merged.hint : nameOf(in.dst);
          merged = AbsVal::opaque(siteId, std::move(h));
        }
        if (!(merged == slot)) {
          if (++bumps[si] > kWidenAfter && slot.isValue() &&
              merged.base == slot.base && merged.origin == slot.origin &&
              merged.scale == slot.scale)
            merged.off = merged.off.widenedInf(slot.off);
          // A pure-offset value (no base, no origin) *is* the register's
          // numeric value: the interval engine's post-state bounds it,
          // which tames loop carriers the offset widening would otherwise
          // leave at the infinity sentinels (`q = q + 1` under `q < n`).
          if (ranges != nullptr && merged.isValue() &&
              merged.base == AbsVal::Base::kNone &&
              merged.origin == kOriginNone && !merged.off.isConst()) {
            VRange cut = merged.off.intersected(
                ranges->rangeAt(b, static_cast<int>(i) + 1, in.dst));
            if (!cut.isEmpty()) merged.off = cut;
          }
          // Re-test: the widen + numeric cut may have landed back on the
          // stored value, and flagging a change then would never converge.
          if (!(merged == slot)) {
            slot = merged;
            changed = true;
          }
        }
        vals[in.dst] = slot;
      }
    }
  }

  // Final sweep: collect memory sites with resolved effective addresses
  // and the meet over returned values.
  retVal_ = AbsVal{};
  for (int b : cfg.rpo) {
    if (ranges != nullptr && !ranges->blockReachable(b)) continue;
    auto bi = static_cast<std::size_t>(b);
    std::map<int, AbsVal> vals = seedEntry(bi);
    const IrBlock& blk = fn.blocks[bi];
    for (std::size_t i = 0; i < blk.instrs.size(); ++i) {
      const IrInstr& in = blk.instrs[i];
      if (in.op == IOp::kCall) {
        applyCall(in, vals);
        continue;
      }
      if (in.op == IOp::kSys) {
        erasePhys(vals);
        continue;
      }
      if (in.op == IOp::kRet) retVal_.meetWith(operandVal(vals, kV0));
      bool isLoad = in.op == IOp::kLoadW || in.op == IOp::kLoadB;
      bool isStore = in.op == IOp::kStoreW || in.op == IOp::kStoreB;
      bool isPsm = in.op == IOp::kPsm;
      if (isLoad || isStore || isPsm) {
        MemSite m;
        m.block = b;
        m.instr = static_cast<int>(i);
        m.op = in.op;
        m.read = isLoad || isPsm;
        m.write = isStore || isPsm;
        m.atomic = isPsm;
        m.sizeBytes =
            (in.op == IOp::kLoadB || in.op == IOp::kStoreB) ? 1 : 4;
        m.srcLine = in.srcLine;
        m.addrReg = in.a;
        m.addr = absAdd(operandVal(vals, in.a),
                        AbsVal::constant(in.imm));
        if (!m.addr.isValue()) {
          m.cls = AddrClass::kUnknown;
        } else if (m.addr.base == AbsVal::Base::kSym) {
          m.cls = m.addr.origin != kOriginNone && m.addr.uniqueOrigin
                      ? AddrClass::kTidIndexed
                      : AddrClass::kGlobal;
        } else if (m.addr.base == AbsVal::Base::kFrame) {
          m.cls = AddrClass::kFrameLocal;
        } else {
          m.cls = m.addr.origin != kOriginNone && m.addr.uniqueOrigin
                      ? AddrClass::kTidIndexed
                      : AddrClass::kUnknown;
        }
        m.threadPrivate =
            m.addr.isValue() && m.addr.origin != kOriginNone &&
            m.addr.uniqueOrigin && !m.addr.off.isEmpty() &&
            m.addr.off.width() < VRange::kPosInf / 2 &&
            std::llabs(m.addr.scale) >= m.sizeBytes + m.addr.off.width();
        memSites_.push_back(std::move(m));
      }
      if (in.dst >= 0) {
        int siteId = siteAt.at({b, static_cast<int>(i)});
        vals[in.dst] = defVals_[static_cast<std::size_t>(siteId)];
      }
    }
  }
}

}  // namespace xmt::analysis
