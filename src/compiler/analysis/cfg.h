// Control-flow-graph utilities over the IrFunc block structure.
//
// Blocks already carry their successor links in their terminators (kBr /
// kJmp / kSpawn); this module materializes predecessor lists and a reverse
// post-order so analyses do not each rebuild them. A kSpawn instruction has
// two successors: the parallel body entry (t1) and the serial continuation
// (t2) — both are control-reachable and both must be analyzed.
#pragma once

#include <vector>

#include "src/compiler/ir.h"

namespace xmt::analysis {

/// Successor block ids of `b` (empty for kRet/kJoin/kHalt/empty blocks).
std::vector<int> successors(const IrBlock& b);

struct Cfg {
  std::vector<std::vector<int>> succ;  // per block id
  std::vector<std::vector<int>> pred;
  std::vector<int> rpo;                // reverse post-order from block 0
  std::vector<bool> reachable;         // from block 0

  std::size_t numBlocks() const { return succ.size(); }
};

Cfg buildCfg(const IrFunc& fn);

}  // namespace xmt::analysis
