#include "src/compiler/analysis/callgraph.h"

#include <algorithm>
#include <set>

namespace xmt::analysis {

namespace {

// Iterative Tarjan SCC. Returns the component id of each node; component
// ids are assigned in reverse topological order (callees first).
std::vector<int> tarjanScc(const std::vector<std::vector<int>>& adj,
                           int& numComps) {
  int n = static_cast<int>(adj.size());
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  std::vector<bool> onStack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  int next = 0;
  numComps = 0;

  struct Frame {
    int node;
    std::size_t edge;
  };
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] >= 0) continue;
    std::vector<Frame> work{{root, 0}};
    while (!work.empty()) {
      Frame& f = work.back();
      auto v = static_cast<std::size_t>(f.node);
      if (f.edge == 0) {
        index[v] = low[v] = next++;
        stack.push_back(f.node);
        onStack[v] = true;
      }
      if (f.edge < adj[v].size()) {
        int w = adj[v][f.edge++];
        auto wi = static_cast<std::size_t>(w);
        if (index[wi] < 0) {
          work.push_back({w, 0});
        } else if (onStack[wi]) {
          low[v] = std::min(low[v], index[wi]);
        }
        continue;
      }
      if (low[v] == index[v]) {
        while (true) {
          int w = stack.back();
          stack.pop_back();
          onStack[static_cast<std::size_t>(w)] = false;
          comp[static_cast<std::size_t>(w)] = numComps;
          if (w == f.node) break;
        }
        ++numComps;
      }
      int parent = work.size() >= 2 ? work[work.size() - 2].node : -1;
      work.pop_back();
      if (parent >= 0) {
        auto p = static_cast<std::size_t>(parent);
        low[p] = std::min(low[p], low[v]);
      }
    }
  }
  return comp;
}

}  // namespace

CallGraph buildCallGraph(const IrModule& mod) {
  CallGraph g;
  for (const IrFunc& fn : mod.funcs) {
    g.indexOf[fn.name] = static_cast<int>(g.funcs.size());
    g.funcs.push_back(&fn);
  }
  int n = static_cast<int>(g.funcs.size());
  g.callees.assign(static_cast<std::size_t>(n), {});
  std::vector<bool> selfCall(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i) {
    std::set<int> seen;
    for (const IrBlock& b : g.funcs[static_cast<std::size_t>(i)]->blocks)
      for (const IrInstr& in : b.instrs) {
        if (in.op != IOp::kCall) continue;
        auto it = g.indexOf.find(in.sym);
        if (it == g.indexOf.end()) continue;  // external: no edge
        if (it->second == i) selfCall[static_cast<std::size_t>(i)] = true;
        if (seen.insert(it->second).second)
          g.callees[static_cast<std::size_t>(i)].push_back(it->second);
      }
  }

  int numComps = 0;
  std::vector<int> comp = tarjanScc(g.callees, numComps);
  std::vector<int> compSize(static_cast<std::size_t>(numComps), 0);
  for (int c : comp) ++compSize[static_cast<std::size_t>(c)];
  g.recursive.assign(static_cast<std::size_t>(n), false);
  for (int i = 0; i < n; ++i)
    g.recursive[static_cast<std::size_t>(i)] =
        selfCall[static_cast<std::size_t>(i)] ||
        compSize[static_cast<std::size_t>(comp[static_cast<std::size_t>(i)])] >
            1;

  // Tarjan numbers components callees-first, so ascending component id is
  // already a bottom-up order; ties (same component) don't matter because
  // recursive components are summarized as TOP anyway.
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return comp[static_cast<std::size_t>(a)] < comp[static_cast<std::size_t>(b)];
  });
  g.bottomUp = order;
  g.topDown.assign(order.rbegin(), order.rend());
  return g;
}

}  // namespace xmt::analysis
