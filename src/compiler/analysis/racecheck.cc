#include "src/compiler/analysis/racecheck.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/compiler/analysis/alias.h"

namespace xmt::analysis {

namespace {

/// Blocks of the spawn region whose body entry is `entry`: everything
/// reachable from it while the `parallel` flag holds.
std::vector<int> regionBlocks(const IrFunc& fn, const Cfg& cfg, int entry) {
  std::vector<int> blocks;
  if (entry < 0 || static_cast<std::size_t>(entry) >= fn.blocks.size())
    return blocks;
  if (!fn.blocks[static_cast<std::size_t>(entry)].parallel) return blocks;
  std::vector<bool> seen(fn.blocks.size(), false);
  std::vector<int> work{entry};
  seen[static_cast<std::size_t>(entry)] = true;
  while (!work.empty()) {
    int b = work.back();
    work.pop_back();
    blocks.push_back(b);
    for (int s : cfg.succ[static_cast<std::size_t>(b)]) {
      auto si = static_cast<std::size_t>(s);
      if (!seen[si] && fn.blocks[si].parallel) {
        seen[si] = true;
        work.push_back(s);
      }
    }
  }
  return blocks;
}

/// Bucket key: the symbolic base two accesses must share to be comparable.
std::string bucketKey(const AbsVal& addr) {
  switch (addr.base) {
    case AbsVal::Base::kSym: return addr.sym;
    case AbsVal::Base::kFrame: return "<frame>";
    case AbsVal::Base::kNone: return "<absolute>";
  }
  return "<absolute>";
}

/// True when the two sites (possibly the same site, executed by two
/// distinct virtual threads) can touch overlapping bytes.
bool mayOverlapAcrossThreads(const MemSite& x, const MemSite& y) {
  const AbsVal& a = x.addr;
  const AbsVal& b = y.addr;
  if (a.origin == b.origin && a.scale == b.scale) {
    std::int64_t delta = a.c > b.c ? a.c - b.c : b.c - a.c;
    if (a.origin != kOriginNone && a.scale != 0) {
      // base + s*u + c with distinct u: starts differ by s*(u-u') + delta,
      // and |s*(u-u')| >= |s|, so |s| >= maxSize + delta rules overlap out.
      std::int64_t maxSize = std::max(x.sizeBytes, y.sizeBytes);
      return std::abs(a.scale) < maxSize + delta;
    }
    // Same fixed address in every thread: byte-interval test.
    return a.c < b.c + y.sizeBytes && b.c < a.c + x.sizeBytes;
  }
  // Different unique origins (or only one side scaled): the index spaces
  // are unrelated, assume they can collide.
  return true;
}

struct Reporter {
  std::vector<Diagnostic>& out;
  std::set<std::pair<std::string, DiagCode>> emitted;

  void report(DiagCode code, const std::string& symbol, int line,
              int otherLine, std::string message) {
    if (!emitted.insert({symbol, code}).second) return;
    Diagnostic d;
    d.code = code;
    d.severity = Severity::kWarning;
    d.line = line;
    d.otherLine = otherLine;
    d.symbol = symbol;
    d.message = std::move(message);
    out.push_back(std::move(d));
  }
};

void checkRegion(const std::vector<MemSite>& sites, Reporter& rep) {
  std::map<std::string, std::vector<const MemSite*>> buckets;
  for (const MemSite& m : sites) {
    if (!m.addr.isValue()) {
      if (m.write && !m.atomic)
        rep.report(DiagCode::kRaceUnknownAddress, "<unknown>", m.srcLine,
                   -1,
                   "write through unresolved address inside spawn region "
                   "may race");
      // Unresolved reads are ignored (see header).
      continue;
    }
    buckets[bucketKey(m.addr)].push_back(&m);
  }

  for (auto& [sym, v] : buckets) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (std::size_t j = i; j < v.size(); ++j) {
        const MemSite& a = *v[i];
        const MemSite& b = *v[j];
        if (!a.write && !b.write) continue;     // read/read never races
        if (a.atomic && b.atomic) continue;     // ps-mediated updates
        if (!mayOverlapAcrossThreads(a, b)) continue;
        bool ww = a.write && b.write;
        std::string what = sym == "<frame>" ? "shared stack location"
                                            : "'" + sym + "'";
        if (ww) {
          rep.report(DiagCode::kRaceWriteWrite, sym, a.srcLine, b.srcLine,
                     "concurrent virtual threads may write " + what +
                         " at the same address");
        } else {
          const MemSite& w = a.write ? a : b;
          const MemSite& r = a.write ? b : a;
          rep.report(DiagCode::kRaceReadWrite, sym, r.srcLine, w.srcLine,
                     "read of " + what +
                         " may race with a concurrent write");
        }
      }
    }
  }
}

}  // namespace

void analyzeFunctionRaces(const IrFunc& fn, AnalysisManager& am,
                          std::vector<Diagnostic>& out) {
  // Collect spawn body entries first; skip the whole analysis otherwise.
  std::vector<int> entries;
  for (const IrBlock& b : fn.blocks)
    if (!b.instrs.empty() && b.instrs.back().op == IOp::kSpawn)
      entries.push_back(b.instrs.back().t1);
  if (entries.empty()) return;

  const Cfg& cfg = am.cfg(fn);
  ValueResolver resolver(fn, am);

  // Index the function's memory sites by block for region filtering.
  std::map<int, std::vector<const MemSite*>> sitesByBlock;
  for (const MemSite& m : resolver.memorySites())
    sitesByBlock[m.block].push_back(&m);

  Reporter rep{out, {}};
  for (int entry : entries) {
    std::vector<MemSite> regionSites;
    for (int b : regionBlocks(fn, cfg, entry)) {
      auto it = sitesByBlock.find(b);
      if (it == sitesByBlock.end()) continue;
      for (const MemSite* m : it->second) regionSites.push_back(*m);
    }
    checkRegion(regionSites, rep);
  }
}

std::vector<Diagnostic> analyzeModuleRaces(const IrModule& mod) {
  std::vector<Diagnostic> diags;
  AnalysisManager am;
  for (const IrFunc& fn : mod.funcs) analyzeFunctionRaces(fn, am, diags);
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return a.line < b.line;
            });
  return diags;
}

}  // namespace xmt::analysis
