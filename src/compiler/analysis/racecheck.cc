#include "src/compiler/analysis/racecheck.h"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "src/compiler/analysis/alias.h"
#include "src/compiler/analysis/summary.h"
#include "src/compiler/analysis/xmtai.h"

namespace xmt::analysis {

namespace {

/// Blocks of the spawn region whose body entry is `entry`: everything
/// reachable from it while the `parallel` flag holds.
std::vector<int> regionBlocks(const IrFunc& fn, const Cfg& cfg, int entry) {
  std::vector<int> blocks;
  if (entry < 0 || static_cast<std::size_t>(entry) >= fn.blocks.size())
    return blocks;
  if (!fn.blocks[static_cast<std::size_t>(entry)].parallel) return blocks;
  std::vector<bool> seen(fn.blocks.size(), false);
  std::vector<int> work{entry};
  seen[static_cast<std::size_t>(entry)] = true;
  while (!work.empty()) {
    int b = work.back();
    work.pop_back();
    blocks.push_back(b);
    for (int s : cfg.succ[static_cast<std::size_t>(b)]) {
      auto si = static_cast<std::size_t>(s);
      if (!seen[si] && fn.blocks[si].parallel) {
        seen[si] = true;
        work.push_back(s);
      }
    }
  }
  return blocks;
}

/// Bucket key: the symbolic base two accesses must share to be comparable.
std::string bucketKey(const AbsVal& addr) {
  switch (addr.base) {
    case AbsVal::Base::kSym: return addr.sym;
    case AbsVal::Base::kFrame: return "<frame>";
    case AbsVal::Base::kNone: return "<absolute>";
  }
  return "<absolute>";
}

/// Largest |c1 - c2| over the two offset intervals (saturated).
std::int64_t maxDelta(const VRange& c1, const VRange& c2) {
  return std::max(c1.hi - c2.lo, c2.hi - c1.lo);
}

/// Can the two byte intervals [c + 0, c + size) intersect for some choice
/// of offsets in the ranges?
bool byteIntervalsMayOverlap(const VRange& c1, int size1, const VRange& c2,
                             int size2) {
  return c1.lo <= c2.hi + size2 - 1 && c2.lo <= c1.hi + size1 - 1;
}

/// True when the two sites (possibly the same site, executed by two
/// distinct virtual threads) can touch overlapping bytes. `uniformOrigin`
/// answers whether a def-site origin is thread-invariant (serial-defined).
bool mayOverlapAcrossThreads(
    const MemSite& x, const MemSite& y,
    const std::function<bool(int)>& uniformOrigin) {
  const AbsVal& a = x.addr;
  const AbsVal& b = y.addr;
  if (a.origin != b.origin || a.uniqueOrigin != b.uniqueOrigin) {
    // Unrelated index spaces (or only one side indexed): assume collision.
    return true;
  }
  if (a.origin != kOriginNone && a.uniqueOrigin) {
    // base + s*u + c with u distinct across threads. With equal scales the
    // starts differ by s*(u-u') + (c1-c2) and |s*(u-u')| >= |s|, so
    // |s| >= maxSize + max|c1-c2| rules overlap out.
    if (a.scale != b.scale) return true;
    std::int64_t maxSize = std::max(x.sizeBytes, y.sizeBytes);
    return std::llabs(a.scale) < maxSize + maxDelta(a.off, b.off);
  }
  if (a.origin != kOriginNone) {
    // Same non-unique origin. If it is thread-invariant (broadcast from
    // serial code — e.g. a serial ps result), both addresses share the
    // same concrete origin value, so with equal scales the byte-interval
    // test on the offsets decides. A per-thread origin proves nothing.
    if (!uniformOrigin(a.origin) || a.scale != b.scale) return true;
  }
  // Thread-invariant addresses: conflict iff the byte intervals can touch.
  return byteIntervalsMayOverlap(a.off, x.sizeBytes, b.off, y.sizeBytes);
}

struct Reporter {
  std::vector<Diagnostic>& out;
  std::set<std::pair<std::string, DiagCode>> emitted;

  void report(DiagCode code, const std::string& symbol, int line,
              int otherLine, std::string message) {
    if (!emitted.insert({symbol, code}).second) return;
    Diagnostic d;
    d.code = code;
    d.severity = Severity::kWarning;
    d.line = line;
    d.otherLine = otherLine;
    d.symbol = symbol;
    d.message = std::move(message);
    out.push_back(std::move(d));
  }
};

/// Name for an unresolved-address report: the value's provenance hint, the
/// source name of the address vreg, or "<unknown>".
std::string unresolvedName(const IrFunc& fn, const MemSite& m) {
  if (!m.addr.hint.empty()) return m.addr.hint;
  if (auto it = fn.vregNames.find(m.addrReg); it != fn.vregNames.end())
    return it->second;
  return "<unknown>";
}

void checkRegion(const IrFunc& fn, const std::vector<MemSite>& sites,
                 const std::function<bool(int)>& uniformOrigin,
                 Reporter& rep) {
  std::map<std::string, std::vector<const MemSite*>> buckets;
  for (const MemSite& m : sites) {
    // A value with a per-thread opaque origin is an index the algebra
    // could not express. With a known base this is an unresolved index
    // into a known array — excluded from the bucket instead of reported
    // (see racecheck.h); with no base it is a genuinely unknown pointer.
    bool opaqueIdx = m.addr.isValue() && m.addr.origin >= 0 &&
                     !m.addr.uniqueOrigin && !uniformOrigin(m.addr.origin);
    if (!m.addr.isValue() || (opaqueIdx && m.addr.base == AbsVal::Base::kNone)) {
      if (m.write && !m.atomic) {
        std::string name = unresolvedName(fn, m);
        std::string what =
            name == "<unknown>" ? "unresolved address"
                                : "unresolved address '" + name + "'";
        rep.report(DiagCode::kRaceUnknownAddress, name, m.srcLine, -1,
                   "write through " + what +
                       " inside spawn region may race");
      }
      // Unresolved reads are ignored (see header).
      continue;
    }
    if (opaqueIdx) continue;  // unresolved index into a known base: silent
    buckets[bucketKey(m.addr)].push_back(&m);
  }

  for (auto& [sym, v] : buckets) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (std::size_t j = i; j < v.size(); ++j) {
        const MemSite& a = *v[i];
        const MemSite& b = *v[j];
        if (!a.write && !b.write) continue;     // read/read never races
        if (a.atomic && b.atomic) continue;     // ps-mediated updates
        if (!mayOverlapAcrossThreads(a, b, uniformOrigin)) continue;
        bool ww = a.write && b.write;
        std::string what = sym == "<frame>" ? "shared stack location"
                                            : "'" + sym + "'";
        if (ww) {
          rep.report(DiagCode::kRaceWriteWrite, sym, a.srcLine, b.srcLine,
                     "concurrent virtual threads may write " + what +
                         " at the same address");
        } else {
          const MemSite& w = a.write ? a : b;
          const MemSite& r = a.write ? b : a;
          rep.report(DiagCode::kRaceReadWrite, sym, r.srcLine, w.srcLine,
                     "read of " + what +
                         " may race with a concurrent write");
        }
      }
    }
  }
}

}  // namespace

void analyzeFunctionRaces(const IrFunc& fn, AnalysisManager& am,
                          std::vector<Diagnostic>& out,
                          const ModuleSummaries* summaries) {
  // Collect spawn body entries first; skip the whole analysis otherwise.
  std::vector<int> entries;
  for (const IrBlock& b : fn.blocks)
    if (!b.instrs.empty() && b.instrs.back().op == IOp::kSpawn)
      entries.push_back(b.instrs.back().t1);
  if (entries.empty()) return;

  const Cfg& cfg = am.cfg(fn);
  const VRange* params = nullptr;
  if (summaries != nullptr) {
    if (const FuncSummary* s = summaries->find(fn.name);
        s != nullptr && !s->recursive)
      params = s->paramRanges.data();
  }
  RangeAnalysis ranges(fn, am, summaries, params);
  ValueResolver resolver(fn, am, summaries, &ranges);

  // A def-site origin is uniform (thread-invariant) when it was defined in
  // serial code: the functional model broadcasts the master's state, so
  // every virtual thread observes the same value.
  const ReachingDefsResult& rd = am.reachingDefs(fn);
  auto uniformOrigin = [&](int origin) {
    if (origin < 0 || static_cast<std::size_t>(origin) >= rd.sites.size())
      return false;
    int blk = rd.sites[static_cast<std::size_t>(origin)].block;
    return !fn.blocks[static_cast<std::size_t>(blk)].parallel;
  };

  // Index the function's memory sites by block for region filtering.
  std::map<int, std::vector<const MemSite*>> sitesByBlock;
  for (const MemSite& m : resolver.memorySites())
    sitesByBlock[m.block].push_back(&m);

  Reporter rep{out, {}};
  for (int entry : entries) {
    std::vector<MemSite> regionSites;
    for (int b : regionBlocks(fn, cfg, entry)) {
      auto it = sitesByBlock.find(b);
      if (it == sitesByBlock.end()) continue;
      for (const MemSite* m : it->second) regionSites.push_back(*m);
    }
    checkRegion(fn, regionSites, uniformOrigin, rep);
  }
}

std::vector<Diagnostic> analyzeModuleRaces(const IrModule& mod,
                                           const ModuleSummaries* summaries) {
  std::vector<Diagnostic> diags;
  AnalysisManager am;
  for (const IrFunc& fn : mod.funcs)
    analyzeFunctionRaces(fn, am, diags, summaries);
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return a.line < b.line;
            });
  return diags;
}

void applyExplorationVerdicts(std::vector<Diagnostic>& diags, bool verified) {
  if (!verified) return;
  for (Diagnostic& d : diags) {
    if (!isRaceDiag(d) || d.severity == Severity::kNote) continue;
    d.severity = Severity::kNote;
    d.message +=
        " — downgraded: exhaustive interleaving exploration (xmtmc) "
        "verified every spawn region race-free";
  }
}

}  // namespace xmt::analysis
