// Spawn-region race detector.
//
// For every spawn region (blocks reachable from a kSpawn body entry while
// `parallel` holds) the detector buckets the region's memory operations by
// symbolic base and checks each pair — including a site against a second
// virtual thread executing the same site — for cross-thread overlap using
// the AbsVal algebra from alias.h:
//
//   * two accesses at  base + s*u + c1  and  base + s*u + c2  on the same
//     unique origin are disjoint across threads iff |s| >= size + |c1 - c2|;
//   * scale-free accesses hit the same address in every thread, so they
//     conflict exactly when their byte intervals overlap;
//   * psm-to-psm pairs are exempt (the paper's sanctioned concurrent
//     update); psm against a plain access is still a race;
//   * a non-atomic write through an unresolved address is reported as a
//     separate "unknown address" warning; unresolved *reads* are deliberately
//     ignored — the documented imprecision that keeps the detector free of
//     false positives on patterns like S[$ - d] with a loop-carried d.
//
// Frame-local accesses are checked like a shared symbol ("<frame>"): the
// functional model broadcasts the master's stack pointer to every virtual
// thread, so spawn-body writes through it are genuinely shared.
#pragma once

#include <vector>

#include "src/compiler/analysis/dataflow.h"
#include "src/compiler/diag.h"
#include "src/compiler/ir.h"

namespace xmt::analysis {

/// Runs the detector over one function (no-op unless it spawns).
/// Diagnostics are appended with Severity::kWarning; the caller decides
/// whether warnings are fatal.
void analyzeFunctionRaces(const IrFunc& fn, AnalysisManager& am,
                          std::vector<Diagnostic>& out);

/// Runs the detector over every function of the module.
std::vector<Diagnostic> analyzeModuleRaces(const IrModule& mod);

}  // namespace xmt::analysis
