// Spawn-region race detector.
//
// For every spawn region (blocks reachable from a kSpawn body entry while
// `parallel` holds) the detector buckets the region's memory operations by
// symbolic base and checks each pair — including a site against a second
// virtual thread executing the same site — for cross-thread overlap using
// the AbsVal algebra from alias.h:
//
//   * two accesses at  base + s*u + C1  and  base + s*u + C2  (C1, C2
//     offset *intervals*) on the same unique origin are disjoint across
//     threads iff |s| >= size + max|c1 - c2|; a loop-carried offset that
//     widened to an infinity sentinel makes the delta unbounded, which
//     conservatively reports overlap;
//   * accesses whose origin term is the same for every thread (no origin,
//     or a *uniform* origin — defined in serial code, hence broadcast) hit
//     thread-invariant addresses, so they conflict exactly when their byte
//     intervals can intersect;
//   * psm-to-psm pairs are exempt (the paper's sanctioned concurrent
//     update); psm against a plain access is still a race;
//   * a write whose address has a known base (global symbol / frame) but an
//     opaque per-thread index — a value the algebra could not express,
//     defined inside the region — is deliberately *not* reported: it is an
//     unresolved index into a known array, the interprocedural analogue of
//     the PR-1 rule that ignores unresolved reads. This is the documented
//     imprecision that keeps bfs/fft-style indirect updates free of false
//     positives. Only writes with no known base at all are reported as
//     "unknown address", named after the source variable when the IR
//     carries one (IrFunc::vregNames / the AbsVal hint);
//   * unresolved *reads* are ignored, as before.
//
// Frame-local accesses are checked like a shared symbol ("<frame>"): the
// functional model broadcasts the master's stack pointer to every virtual
// thread, so spawn-body writes through it are genuinely shared.
//
// With `summaries` (see summary.h) call sites are no longer a cliff: the
// callee's return value is substituted into the caller's value algebra,
// so `dist[at(i)]`-style helpers resolve instead of degrading to unknown.
#pragma once

#include <vector>

#include "src/compiler/analysis/dataflow.h"
#include "src/compiler/diag.h"
#include "src/compiler/ir.h"

namespace xmt::analysis {

struct ModuleSummaries;

/// Runs the detector over one function (no-op unless it spawns).
/// Diagnostics are appended with Severity::kWarning; the caller decides
/// whether warnings are fatal.
void analyzeFunctionRaces(const IrFunc& fn, AnalysisManager& am,
                          std::vector<Diagnostic>& out,
                          const ModuleSummaries* summaries = nullptr);

/// Runs the detector over every function of the module.
std::vector<Diagnostic> analyzeModuleRaces(
    const IrModule& mod, const ModuleSummaries* summaries = nullptr);

/// Feeds model-checking verdicts back into the lint output: when xmtmc has
/// *exhaustively* verified every spawn region of the program free of races
/// and order dependence (`verified`), the static detector's "may race"
/// warnings are demonstrably over-approximations — they are downgraded to
/// Severity::kNote with an explanatory suffix instead of being dropped, so
/// the imprecision stays visible without failing -Werror builds. Verdicts
/// from non-exhaustive (budget-capped) runs must not be applied; pass
/// verified = false and the diagnostics are returned untouched.
void applyExplorationVerdicts(std::vector<Diagnostic>& diags, bool verified);

}  // namespace xmt::analysis
