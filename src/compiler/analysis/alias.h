// Lightweight address/alias classification for the race detector.
//
// Every definition site in a function is assigned an abstract value of the
// form  base + scale*unique + offset  where `base` is a global symbol or the
// (shared) stack frame, and `unique` is a per-virtual-thread-distinct source:
// the thread ID ($ / kGetTid) or the result of a prefix-sum whose increment
// is a provably positive constant (ps hands out distinct indices — the
// paper's sanctioned concurrent-update idiom, e.g. Fig. 2a compaction).
// Values are resolved with a reaching-definitions-driven fixed point: at a
// block entry each vreg's value is the meet over its reaching definitions,
// so a serial value broadcast into a spawn region keeps its classification,
// while multiply-defined loop carriers conservatively degrade to Unknown.
//
// Memory operations are then bucketed into the four address classes the
// detector reasons about: global-symbol, TID-indexed (provably
// thread-private), frame-local (shared — all virtual threads broadcast the
// master's stack pointer), and unknown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/compiler/analysis/dataflow.h"
#include "src/compiler/ir.h"

namespace xmt::analysis {

inline constexpr int kOriginNone = -1;
/// Distinguished `unique` source: the virtual thread ID.
inline constexpr int kOriginTid = -2;
// Origins >= 0 are definition-site ids of kPs/kPsm results.

struct AbsVal {
  enum class Kind : std::uint8_t { kBottom, kValue, kUnknown };
  enum class Base : std::uint8_t { kNone, kSym, kFrame };

  Kind kind = Kind::kBottom;
  Base base = Base::kNone;
  std::string sym;       // when base == kSym
  int origin = kOriginNone;
  std::int64_t scale = 0;  // coefficient of the unique term (0 iff no origin)
  std::int64_t c = 0;      // constant offset (the value itself for constants)

  static AbsVal unknown() { return {Kind::kUnknown}; }
  static AbsVal constant(std::int64_t v) {
    AbsVal r;
    r.kind = Kind::kValue;
    r.c = v;
    return r;
  }
  bool isValue() const { return kind == Kind::kValue; }
  bool isConst() const {
    return isValue() && base == Base::kNone && origin == kOriginNone;
  }
  bool operator==(const AbsVal& o) const {
    return kind == o.kind && base == o.base && sym == o.sym &&
           origin == o.origin && scale == o.scale && c == o.c;
  }

  /// Lattice meet (kBottom is the identity; unequal values go to kUnknown).
  void meetWith(const AbsVal& o);
};

enum class AddrClass : std::uint8_t {
  kGlobal,      // global symbol at a fixed offset (same address every thread)
  kTidIndexed,  // offset carries a unique per-thread term ($- or ps-derived)
  kFrameLocal,  // master stack frame (shared by all virtual threads!)
  kUnknown,
};

/// One load/store/psm instruction with its resolved address.
struct MemSite {
  int block = 0;
  int instr = 0;
  IOp op = IOp::kLoadW;
  bool write = false;   // store or psm
  bool read = false;    // load or psm
  bool atomic = false;  // kPsm
  int sizeBytes = 4;
  int srcLine = 0;
  AbsVal addr;          // effective address (instruction imm folded in)
  AddrClass cls = AddrClass::kUnknown;
  /// Provably distinct across virtual threads (|scale| >= access size on a
  /// unique origin): no two threads can touch the same bytes through it.
  bool threadPrivate = false;
};

/// Resolves abstract values for all definition sites of `fn` and extracts
/// its memory sites. Uses (and populates) the manager's cached CFG and
/// reaching-definitions solutions.
class ValueResolver {
 public:
  ValueResolver(const IrFunc& fn, AnalysisManager& am);

  const std::vector<MemSite>& memorySites() const { return memSites_; }
  /// Abstract value of definition site `siteId` (reaching-defs numbering).
  const AbsVal& valueOfDef(int siteId) const {
    return defVals_[static_cast<std::size_t>(siteId)];
  }

 private:
  std::vector<AbsVal> defVals_;
  std::vector<MemSite> memSites_;
};

}  // namespace xmt::analysis
