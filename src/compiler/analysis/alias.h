// Lightweight address/alias classification for the race detector and the
// value-range lints (the "joint domain" of the abstract interpreter).
//
// Every definition site in a function is assigned an abstract value of the
// form  base + scale*unique + [offLo, offHi]  where `base` is a global
// symbol or the (shared) stack frame, and `unique` is a per-virtual-thread
// -distinct source: the thread ID ($ / kGetTid) or the result of a
// prefix-sum executed inside the spawn region whose increment is a provably
// positive constant (ps hands out distinct indices — the paper's
// sanctioned concurrent-update idiom, e.g. Fig. 2a compaction). The offset
// is an interval, so multiply-defined loop carriers with affine updates
// stay symbolic (base + stride interval, widened to an infinity sentinel if
// they keep growing) instead of collapsing to Unknown.
//
// Definitions the algebra cannot express do not collapse to Unknown
// either: they become *opaque handles* — a value with its own def-site
// origin and uniqueOrigin=false. Opaque handles preserve the base symbol
// through later additions (dist + 4*opaque keeps base `dist`), which is
// what lets the race detector distinguish "unresolved index into a known
// array" from "write through a genuinely unknown pointer". Function calls
// are no longer a cliff: with module summaries the return value of a
// callee is substituted at the call site (constant range, param-affine
// form, or symbol address), falling back to an opaque handle.
//
// Memory operations are then bucketed into the four address classes the
// detector reasons about: global-symbol, TID-indexed (provably
// thread-private), frame-local (shared — all virtual threads broadcast the
// master's stack pointer), and unknown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/compiler/analysis/dataflow.h"
#include "src/compiler/analysis/vrange.h"
#include "src/compiler/ir.h"

namespace xmt::analysis {

struct ModuleSummaries;
class RangeAnalysis;

inline constexpr int kOriginNone = -1;
/// Distinguished `unique` source: the virtual thread ID.
inline constexpr int kOriginTid = -2;
/// Function parameter i is origin kOriginParamBase - i (summary building).
inline constexpr int kOriginParamBase = -10;
// Origins >= 0 are definition-site ids: ps/psm results and opaque handles.

inline constexpr int paramOrigin(int i) { return kOriginParamBase - i; }
inline constexpr bool isParamOrigin(int o) { return o <= kOriginParamBase; }
inline constexpr int paramOfOrigin(int o) { return kOriginParamBase - o; }

struct AbsVal {
  enum class Kind : std::uint8_t { kBottom, kValue, kUnknown };
  enum class Base : std::uint8_t { kNone, kSym, kFrame };

  Kind kind = Kind::kBottom;
  Base base = Base::kNone;
  std::string sym;       // when base == kSym
  int origin = kOriginNone;
  bool uniqueOrigin = false;  // origin provably distinct across threads
  std::int64_t scale = 0;  // coefficient of the origin term (0 iff no origin)
  VRange off{0, 0};        // constant offset (the value itself for constants)
  /// Best-effort provenance for diagnostics (variable or symbol name).
  /// Not part of the lattice: survives degradation, excluded from ==.
  std::string hint;

  static AbsVal unknown() {
    AbsVal r;
    r.kind = Kind::kUnknown;
    return r;
  }
  static AbsVal constant(std::int64_t v) {
    AbsVal r;
    r.kind = Kind::kValue;
    r.off = VRange::constant(v);
    return r;
  }
  static AbsVal constRange(const VRange& v) {
    AbsVal r;
    r.kind = Kind::kValue;
    r.off = v;
    return r;
  }
  /// Opaque handle for a def site whose value the algebra cannot express.
  static AbsVal opaque(int siteId, std::string hintName = "") {
    AbsVal r;
    r.kind = Kind::kValue;
    r.origin = siteId;
    r.scale = 1;
    r.hint = std::move(hintName);
    return r;
  }

  bool isValue() const { return kind == Kind::kValue; }
  bool isConst() const {
    return isValue() && base == Base::kNone && origin == kOriginNone &&
           off.isConst();
  }
  std::int64_t constVal() const { return off.lo; }
  /// Origin >= 0 with uniqueOrigin unset: an opaque handle (or a ps result
  /// the region cannot rely on for distinctness).
  bool hasOpaqueOrigin() const {
    return origin >= 0 ? !uniqueOrigin : isParamOrigin(origin);
  }

  bool operator==(const AbsVal& o) const {
    return kind == o.kind && base == o.base && sym == o.sym &&
           origin == o.origin && uniqueOrigin == o.uniqueOrigin &&
           scale == o.scale && off == o.off;
  }

  /// Lattice meet (kBottom is the identity; same-shape values hull their
  /// offset intervals; different shapes go to kUnknown, keeping the hint).
  void meetWith(const AbsVal& o);
};

/// Addition / negation / constant-multiplication over the AbsVal algebra.
/// Exposed for the summary applier; anything unrepresentable is Unknown.
AbsVal absAdd(const AbsVal& a, const AbsVal& b);
AbsVal absNeg(const AbsVal& a);
AbsVal absMulConst(const AbsVal& a, std::int64_t k);

enum class AddrClass : std::uint8_t {
  kGlobal,      // global symbol at a fixed offset (same address every thread)
  kTidIndexed,  // offset carries a unique per-thread term ($- or ps-derived)
  kFrameLocal,  // master stack frame (shared by all virtual threads!)
  kUnknown,
};

/// One load/store/psm instruction with its resolved address.
struct MemSite {
  int block = 0;
  int instr = 0;
  IOp op = IOp::kLoadW;
  bool write = false;   // store or psm
  bool read = false;    // load or psm
  bool atomic = false;  // kPsm
  int sizeBytes = 4;
  int srcLine = 0;
  int addrReg = -1;     // address operand vreg (for IrFunc::vregNames)
  AbsVal addr;          // effective address (instruction imm folded in)
  AddrClass cls = AddrClass::kUnknown;
  /// Provably distinct across virtual threads (|scale| >= access size plus
  /// the offset-interval width, on a unique origin): no two threads can
  /// touch the same bytes through it.
  bool threadPrivate = false;
};

/// Resolves abstract values for all definition sites of `fn` and extracts
/// its memory sites. Uses (and populates) the manager's cached CFG and
/// reaching-definitions solutions. Optional sharpeners:
///   * `summaries` substitutes callee return values at call sites;
///   * `ranges` supplies numeric facts (the `x & mask` identity);
///   * `seedParamOrigins` seeds the incoming argument registers with
///     symbolic param origins — used when building this function's summary.
class ValueResolver {
 public:
  explicit ValueResolver(const IrFunc& fn, AnalysisManager& am,
                         const ModuleSummaries* summaries = nullptr,
                         const RangeAnalysis* ranges = nullptr,
                         bool seedParamOrigins = false);

  const std::vector<MemSite>& memorySites() const { return memSites_; }
  /// Abstract value of definition site `siteId` (reaching-defs numbering).
  const AbsVal& valueOfDef(int siteId) const {
    return defVals_[static_cast<std::size_t>(siteId)];
  }
  /// Meet over the values reaching `return` statements (kBottom if none).
  const AbsVal& returnValue() const { return retVal_; }

 private:
  std::vector<AbsVal> defVals_;
  std::vector<MemSite> memSites_;
  AbsVal retVal_;
};

}  // namespace xmt::analysis
