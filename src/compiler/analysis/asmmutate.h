// Fault-injection mutation harness for the assembly-level verifier.
//
// The verifier (asmverify) is validated in two directions: a meta-oracle
// (everything the driver accepts must verify clean) and this harness, which
// perturbs *verified* assembly into programs that are guaranteed to violate
// one Section IV-A rule each, and asserts the verifier flags every mutant.
// Mutations are conservative text surgery: a mutant is only emitted when
// the surrounding code proves the perturbation introduces a violation
// (e.g. a fence is only dropped when a straight-line swnb → fence → ps/psm
// chain shows the fence is load-bearing), so "mutant not flagged" always
// means a verifier bug, never an equivalent mutant.
#pragma once

#include <string>
#include <vector>

namespace xmt::analysis {

enum class MutantClass {
  kDropFence,           // delete the fence guarding a later ps/psm
  kHoistStoreAcrossPs,  // move a swnb across its fence, next to the ps
  kBlockOutOfRegion,    // relocate an in-region instruction past the region
  kInRegionSpill,       // insert an sp-relative spill inside the region
  kUndefSpawnReg,       // in-region read of a never-written register
};

const char* mutantClassName(MutantClass c);

struct Mutant {
  MutantClass cls;
  std::string description;  // what was perturbed, for harness reports
  std::string asmText;
};

/// Generates every applicable mutant of `asmText`. Classes whose trigger
/// pattern does not occur in the input produce no mutants (e.g. a program
/// with no prefix-sums yields no fence mutants); harnesses aggregate over
/// a corpus to cover all classes.
std::vector<Mutant> generateMutants(const std::string& asmText);

}  // namespace xmt::analysis
