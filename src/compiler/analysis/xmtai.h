// xmtai — interprocedural value-range abstract interpretation.
//
// A flow-sensitive interval analysis over the IR CFG: every block entry
// maps vregs to VRange facts; the transfer functions mirror the
// simulator's int32 semantics (vrange.h); conditional branches refine both
// operands along their out-edges; loop heads (back-edge targets) widen
// after a few iterations so carriers converge to one-sided intervals.
// Thread IDs get the spawn bounds of their region ($ in spawn(lo,hi) is in
// [lo.lo, hi.hi]); call results get the callee's summarized return range.
//
// Consumers:
//   * the default-on lints (bounds / div-by-zero / shift-range /
//     ps-discipline), run through `analyzeModuleValues`;
//   * the race lint, which shares summaries via `runModuleAnalysis`;
//   * the -O2 range-driven simplification pass in opt.cc, which queries a
//     summary-free RangeAnalysis per function.
//
// Lint philosophy (matching the PR-1 race lint): warnings fire only on
// facts the analysis can *bound*. A definite violation (every execution of
// the site is wrong) gets the hard code; a possible violation fires the
// "-may" code only when the range is strictly bounded on both sides — an
// unconstrained value is never reported, which is what keeps the 17
// registry workloads and the fuzz corpus warning-free.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "src/compiler/analysis/dataflow.h"
#include "src/compiler/analysis/vrange.h"
#include "src/compiler/diag.h"
#include "src/compiler/ir.h"

namespace xmt::analysis {

struct ModuleSummaries;

/// Flow-sensitive interval facts for one function. Physical registers are
/// tracked block-locally (plus kV0 across blocks — every return site
/// redefines it after the last call, so its reaching value is exact);
/// other phys regs reset to TOP at block entry and at calls/syscalls.
class RangeAnalysis {
 public:
  using State = std::map<int, VRange>;  // missing vreg => full32

  /// `paramRanges` (nullable) seeds the incoming argument registers;
  /// `summaries` (nullable) resolves call-site return ranges.
  RangeAnalysis(const IrFunc& fn, AnalysisManager& am,
                const ModuleSummaries* summaries,
                const VRange* paramRanges);

  /// Range of `reg` in the state entering instruction `instr` of `block`.
  VRange rangeAt(int block, int instr, int reg) const;

  /// Replays the transfer over `block`, invoking `cb(instrIdx, state)` with
  /// the state *before* each instruction. No-op on unreachable blocks.
  void forEachInstr(int block,
                    const std::function<void(int, const State&)>& cb) const;

  /// Thread-ID range of a parallel block (full32 for serial blocks or when
  /// the spawn bounds are unknown).
  const VRange& tidRangeOf(int block) const;

  bool blockReachable(int block) const {
    return reached_[static_cast<std::size_t>(block)];
  }

  static VRange stateOf(const State& st, int reg);

 private:
  void transferInstr(const IrInstr& in, int block, State& st) const;

  const IrFunc& fn_;
  const ModuleSummaries* sums_;
  std::vector<State> in_;        // per-block entry states
  std::vector<bool> reached_;
  std::vector<int> regionOf_;    // parallel block -> region entry block
  std::map<int, VRange> tidOfRegion_;
  VRange full_ = VRange::full32();
};

/// Which value lints to run (all default-on, mirroring -W flags).
struct AiConfig {
  bool bounds = true;        // -Wxmt-bounds
  bool divZero = true;       // -Wxmt-div-zero
  bool shift = true;         // -Wxmt-shift
  bool psDiscipline = true;  // -Wxmt-ps-discipline
  bool any() const { return bounds || divZero || shift || psDiscipline; }
};

/// Runs the value lints over the module (builds summaries internally).
std::vector<Diagnostic> analyzeModuleValues(const IrModule& mod,
                                            const AiConfig& cfg = {});

/// Combined analysis entry for the driver: builds summaries once and runs
/// the race lint and/or the value lints over them. Diagnostics are sorted
/// by source line.
std::vector<Diagnostic> runModuleAnalysis(const IrModule& mod, bool races,
                                          const AiConfig& cfg);

}  // namespace xmt::analysis
