// XMTC compiler driver: pre-pass (inlining, clustering, outlining), core
// pass (lowering, optimization, register allocation, emission), post-pass
// (verification and layout repair) — the three-stage structure of
// Section IV.
#pragma once

#include <string>
#include <vector>

#include "src/assembler/program.h"
#include "src/compiler/diag.h"

namespace xmt {

struct CompilerOptions {
  int optLevel = 1;               // 0 disables generic IR optimization
  bool nonBlockingStores = true;  // Section IV-C latency tolerance
  bool prefetch = true;           // compiler prefetching (ref. [8])
  int prefetchDepth = 4;          // outstanding prefetches per load group
  bool clusterThreads = false;    // virtual-thread clustering (Section IV-C)
  int clusterCount = 1024;        // coarsened thread count
  bool inlineParallel = true;     // inline calls inside spawn blocks
  bool outline = true;            // the CIL outlining pre-pass; disabling it
                                  // demonstrates the paper's illegal
                                  // dataflow (Fig. 8) — unsafe!
  bool layoutQuirk = false;       // mimic GCC's Fig. 9a layout bug
  bool postPass = true;           // verification + layout repair
  bool analyzeRaces = false;      // static spawn-region race lint (--analyze)
  bool werrorRace = false;        // promote race findings to CompileError
  // Value-range lints (xmtai abstract interpreter), default-on. They fire
  // only on provable or strictly-bounded facts, so a warning-free program
  // stays warning-free; disable with -Wno-xmt-* in the driver.
  bool lintBounds = true;         // -Wxmt-bounds: out-of-extent accesses
  bool lintDivZero = true;        // -Wxmt-div-zero: trapping divisions
  bool lintShift = true;          // -Wxmt-shift: shift amounts outside [0,31]
  bool lintPsDiscipline = true;   // -Wxmt-ps-discipline: non-positive ps
                                  // increments (interprocedural)
  bool verifyAsm = true;          // assembly-level legality verifier
                                  // (asmverify) on the final assembly
  bool werrorAsm = false;         // promote verifier findings to errors
};

struct CompileResult {
  std::string asmText;
  std::string transformedSource;  // XMTC after the source-to-source passes
  int relocatedBlocks = 0;        // post-pass Fig. 9 repairs performed
  std::vector<Diagnostic> diagnostics;  // race-lint + asm-verifier findings
};

/// Compiles XMTC source to XMT assembly. Throws CompileError / AsmError.
CompileResult compileXmtc(const std::string& source,
                          const CompilerOptions& opts = {});

/// Compiles and assembles to a loadable program image.
Program compileToProgram(const std::string& source,
                         const CompilerOptions& opts = {});

}  // namespace xmt
