#include "src/compiler/diag.h"

namespace xmt {

const char* diagCodeTag(DiagCode code) {
  switch (code) {
    case DiagCode::kDollarOutsideSpawn: return "xmt-dollar-outside-spawn";
    case DiagCode::kRaceWriteWrite: return "xmt-race-ww";
    case DiagCode::kRaceReadWrite: return "xmt-race-rw";
    case DiagCode::kRaceUnknownAddress: return "xmt-race-unknown";
  }
  return "xmt-diag";
}

std::string formatDiagnostic(const Diagnostic& d) {
  const char* sev = d.severity == Severity::kError     ? "error"
                    : d.severity == Severity::kWarning ? "warning"
                                                       : "note";
  std::string out = std::string(sev) + ": line " + std::to_string(d.line) +
                    ": " + d.message;
  if (d.otherLine >= 0 && d.otherLine != d.line)
    out += " (conflicts with access at line " + std::to_string(d.otherLine) +
           ")";
  out += " [" + std::string(diagCodeTag(d.code)) + "]";
  return out;
}

bool isRaceDiag(const Diagnostic& d) {
  return d.code == DiagCode::kRaceWriteWrite ||
         d.code == DiagCode::kRaceReadWrite ||
         d.code == DiagCode::kRaceUnknownAddress;
}

}  // namespace xmt
