#include "src/compiler/diag.h"

#include "src/common/json.h"

namespace xmt {

const char* diagCodeTag(DiagCode code) {
  switch (code) {
    case DiagCode::kDollarOutsideSpawn: return "xmt-dollar-outside-spawn";
    case DiagCode::kRaceWriteWrite: return "xmt-race-ww";
    case DiagCode::kRaceReadWrite: return "xmt-race-rw";
    case DiagCode::kRaceUnknownAddress: return "xmt-race-unknown";
    case DiagCode::kPostPassBadSpawn: return "xmt-pp-bad-spawn";
    case DiagCode::kPostPassNestedSpawn: return "xmt-pp-nested-spawn";
    case DiagCode::kPostPassHaltInRegion: return "xmt-pp-halt-in-region";
    case DiagCode::kPostPassCallInRegion: return "xmt-pp-call-in-region";
    case DiagCode::kPostPassUnknownLabel: return "xmt-pp-unknown-label";
    case DiagCode::kPostPassMissingJoin: return "xmt-pp-missing-join";
    case DiagCode::kPostPassLayout: return "xmt-pp-layout";
    case DiagCode::kAsmUnassemblable: return "xmt-asm-unassemblable";
    case DiagCode::kAsmBadRegion: return "xmt-asm-bad-region";
    case DiagCode::kAsmMissingFence: return "xmt-asm-missing-fence";
    case DiagCode::kAsmSwnbAtJoin: return "xmt-asm-swnb-at-join";
    case DiagCode::kAsmRegionEscape: return "xmt-asm-region-escape";
    case DiagCode::kAsmMissingJoin: return "xmt-asm-missing-join";
    case DiagCode::kAsmIllegalInRegion: return "xmt-asm-illegal-in-region";
    case DiagCode::kAsmParallelStack: return "xmt-asm-parallel-stack";
    case DiagCode::kAsmUndefSpawnReg: return "xmt-asm-undef-spawn-reg";
    case DiagCode::kAsmRegionDataflow: return "xmt-asm-region-dataflow";
    case DiagCode::kBoundsOutOfRange: return "xmt-bounds-oob";
    case DiagCode::kBoundsMayExceed: return "xmt-bounds-may";
    case DiagCode::kDivByZero: return "xmt-div-zero";
    case DiagCode::kDivMayBeZero: return "xmt-div-may-zero";
    case DiagCode::kShiftRange: return "xmt-shift-range";
    case DiagCode::kPsNonPositive: return "xmt-ps-discipline";
    case DiagCode::kMcRace: return "xmt-mc-race";
    case DiagCode::kMcOrderDependent: return "xmt-mc-order";
    case DiagCode::kMcGrConflict: return "xmt-mc-gr";
    case DiagCode::kMcBudgetExhausted: return "xmt-mc-budget";
    case DiagCode::kMcStaticUnsound: return "xmt-mc-unsound";
  }
  return "xmt-diag";
}

std::string formatDiagnostic(const Diagnostic& d) {
  const char* sev = d.severity == Severity::kError     ? "error"
                    : d.severity == Severity::kWarning ? "warning"
                                                       : "note";
  std::string out = std::string(sev) + ": line " + std::to_string(d.line) +
                    ": " + d.message;
  if (d.otherLine >= 0 && d.otherLine != d.line)
    out += " (conflicts with access at line " + std::to_string(d.otherLine) +
           ")";
  out += " [" + std::string(diagCodeTag(d.code)) + "]";
  return out;
}

bool isRaceDiag(const Diagnostic& d) {
  return d.code == DiagCode::kRaceWriteWrite ||
         d.code == DiagCode::kRaceReadWrite ||
         d.code == DiagCode::kRaceUnknownAddress;
}

bool isAsmDiag(const Diagnostic& d) {
  return d.code >= DiagCode::kAsmUnassemblable &&
         d.code <= DiagCode::kAsmRegionDataflow;
}

bool isValueLintDiag(const Diagnostic& d) {
  return d.code >= DiagCode::kBoundsOutOfRange &&
         d.code <= DiagCode::kPsNonPositive;
}

bool isMcDiag(const Diagnostic& d) {
  return d.code >= DiagCode::kMcRace && d.code <= DiagCode::kMcStaticUnsound;
}

std::string diagnosticsJson(const std::vector<Diagnostic>& ds) {
  Json root = Json::object();
  Json arr = Json::array();
  for (const Diagnostic& d : ds) {
    Json j = Json::object();
    j.set("code", Json::str(diagCodeTag(d.code)));
    j.set("severity", Json::str(d.severity == Severity::kError     ? "error"
                                : d.severity == Severity::kWarning ? "warning"
                                                                   : "note"));
    j.set("line", Json::number(d.line));
    j.set("other_line", Json::number(d.otherLine));
    j.set("symbol", Json::str(d.symbol));
    j.set("message", Json::str(d.message));
    arr.push(std::move(j));
  }
  root.set("count", Json::number(static_cast<std::int64_t>(ds.size())));
  root.set("diagnostics", std::move(arr));
  return root.dump();
}

}  // namespace xmt
