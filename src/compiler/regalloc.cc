#include "src/compiler/regalloc.h"

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/error.h"

namespace xmt {

namespace {

// Allocatable registers. at (1) and k1 (27) are reserved as spill
// scratch; zero/tid/gp/sp/fp/ra are never allocated.
const int kCallerSaved[] = {kT4, kT5, kT6, kT7, kT8, kT9,
                            kT0, kT1, kT2, kT3, kV1, kV0,
                            kA3, kA2, kA1, kA0};
const int kCalleeSaved[] = {kS0, kS1, kS2, kS3, kS4, kS5, kS6, kS7};

struct Interval {
  int vreg = -1;
  int start = 0;
  int end = 0;
  bool crossesCall = false;
  bool touchesParallel = false;
};

std::vector<int> blockSuccessors(const IrBlock& b) {
  if (b.instrs.empty()) return {};
  const IrInstr& t = b.instrs.back();
  switch (t.op) {
    case IOp::kBr:
    case IOp::kSpawn:
      return {t.t1, t.t2};
    case IOp::kJmp:
      return {t.t1};
    default:
      return {};
  }
}

void usesOf(const IrInstr& in, std::vector<int>& out) {
  out.clear();
  if (in.a >= 0) out.push_back(in.a);
  if (in.b >= 0) out.push_back(in.b);
  for (int v : in.args) out.push_back(v);
  if (in.op == IOp::kRet) out.push_back(kV0);
}

}  // namespace

FrameInfo allocateRegisters(IrFunc& fn) {
  // --- Positions ---
  std::vector<int> blockStart(fn.blocks.size()), blockEnd(fn.blocks.size());
  int pos = 0;
  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    blockStart[bi] = pos;
    pos += static_cast<int>(fn.blocks[bi].instrs.size()) * 2;
    blockEnd[bi] = pos;
  }

  // --- Liveness (block level) ---
  std::size_t nb = fn.blocks.size();
  std::vector<std::set<int>> liveIn(nb), liveOut(nb);
  bool changed = true;
  std::vector<int> uses;
  while (changed) {
    changed = false;
    for (std::size_t bi = nb; bi-- > 0;) {
      const IrBlock& b = fn.blocks[bi];
      std::set<int> out;
      for (int s : blockSuccessors(b))
        if (s >= 0)
          out.insert(liveIn[static_cast<std::size_t>(s)].begin(),
                     liveIn[static_cast<std::size_t>(s)].end());
      std::set<int> in = out;
      for (std::size_t i = b.instrs.size(); i-- > 0;) {
        const IrInstr& ins = b.instrs[i];
        if (ins.dst >= 0) in.erase(ins.dst);
        usesOf(ins, uses);
        for (int u : uses) in.insert(u);
      }
      if (out != liveOut[bi]) {
        liveOut[bi] = std::move(out);
        changed = true;
      }
      if (in != liveIn[bi]) {
        liveIn[bi] = std::move(in);
        changed = true;
      }
    }
  }

  // --- Intervals ---
  std::map<int, Interval> ivals;
  auto touch = [&](int v, int p, bool parallel) {
    auto [it, fresh] = ivals.try_emplace(v);
    Interval& iv = it->second;
    if (fresh) {
      iv.vreg = v;
      iv.start = p;
      iv.end = p;
    } else {
      iv.start = std::min(iv.start, p);
      iv.end = std::max(iv.end, p);
    }
    iv.touchesParallel |= parallel;
  };
  std::vector<int> callPositions;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const IrBlock& b = fn.blocks[bi];
    for (int v : liveIn[bi]) touch(v, blockStart[bi], b.parallel);
    for (int v : liveOut[bi]) touch(v, blockEnd[bi], b.parallel);
    int p = blockStart[bi];
    for (const IrInstr& ins : b.instrs) {
      usesOf(ins, uses);
      for (int u : uses) touch(u, p, b.parallel);
      if (ins.dst >= 0) touch(ins.dst, p + 1, b.parallel);
      if (ins.op == IOp::kCall) callPositions.push_back(p);
      p += 2;
    }
  }
  for (auto& [v, iv] : ivals)
    for (int cp : callPositions)
      if (iv.start < cp && iv.end > cp) {
        iv.crossesCall = true;
        break;
      }

  // Broadcast live-in protection. A TCU's registers are snapshot from the
  // master once, at spawn onset; when the TCU is re-dispatched for further
  // virtual threads the snapshot is NOT refreshed. Therefore any value
  // defined in serial code and read inside a parallel region must keep its
  // register for the WHOLE region — a body temporary reusing it would
  // corrupt every virtual thread after the first on each TCU. Extend such
  // intervals to the end of each parallel region that uses them.
  {
    // Maximal runs of contiguous parallel blocks.
    std::vector<std::pair<int, int>> regions;  // (startPos, endPos)
    std::vector<int> regionEndOfBlock(nb, -1);
    for (std::size_t bi = 0; bi < nb; ++bi) {
      if (!fn.blocks[bi].parallel) continue;
      if (bi > 0 && fn.blocks[bi - 1].parallel && !regions.empty())
        regions.back().second = blockEnd[bi];
      else
        regions.emplace_back(blockStart[bi], blockEnd[bi]);
    }
    // Second pass: record each parallel block's region end.
    {
      std::size_t ri = 0;
      for (std::size_t bi = 0; bi < nb; ++bi) {
        if (!fn.blocks[bi].parallel) continue;
        while (ri < regions.size() && regions[ri].second < blockStart[bi])
          ++ri;
        XMT_CHECK(ri < regions.size());
        regionEndOfBlock[bi] = regions[ri].second;
      }
    }
    // A vreg has a serial def if any def happens in a serial block.
    std::set<int> serialDefs;
    for (std::size_t bi = 0; bi < nb; ++bi) {
      if (fn.blocks[bi].parallel) continue;
      for (const IrInstr& ins : fn.blocks[bi].instrs)
        if (ins.dst >= 0) serialDefs.insert(ins.dst);
    }
    for (std::size_t bi = 0; bi < nb; ++bi) {
      if (!fn.blocks[bi].parallel) continue;
      for (const IrInstr& ins : fn.blocks[bi].instrs) {
        usesOf(ins, uses);
        for (int u : uses) {
          if (!serialDefs.count(u)) continue;
          auto it = ivals.find(u);
          if (it != ivals.end())
            it->second.end =
                std::max(it->second.end, regionEndOfBlock[bi]);
        }
      }
    }
  }

  // --- Fixed (physical) intervals block their registers ---
  std::vector<std::vector<std::pair<int, int>>> fixed(kNumRegs);
  std::vector<Interval> work;
  for (auto& [v, iv] : ivals) {
    if (v < kNumRegs)
      fixed[static_cast<std::size_t>(v)].emplace_back(iv.start, iv.end);
    else
      work.push_back(iv);
  }
  auto conflictsFixed = [&](int reg, const Interval& iv) {
    for (auto [s, e] : fixed[static_cast<std::size_t>(reg)])
      if (iv.start <= e && s <= iv.end) return true;
    return false;
  };

  std::sort(work.begin(), work.end(), [](const Interval& a, const Interval& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.vreg < b.vreg;
  });

  // --- Linear scan ---
  std::map<int, int> regOf;     // vreg -> phys
  std::vector<int> spilled;
  struct Active {
    int end;
    int vreg;
    int reg;
  };
  std::vector<Active> active;
  FrameInfo frame;
  frame.frameWords = fn.frameWords;
  frame.saveRa = fn.hasCalls;

  auto regFree = [&](int reg, const Interval& iv) {
    for (const Active& a : active)
      if (a.reg == reg) return false;
    return !conflictsFixed(reg, iv);
  };

  for (const Interval& iv : work) {
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](const Active& a) {
                                  return a.end < iv.start;
                                }),
                 active.end());
    int chosen = -1;
    if (!iv.crossesCall) {
      for (int r : kCallerSaved)
        if (regFree(r, iv)) {
          chosen = r;
          break;
        }
    }
    if (chosen < 0) {
      for (int r : kCalleeSaved)
        if (regFree(r, iv)) {
          chosen = r;
          break;
        }
    }
    if (chosen < 0 && iv.crossesCall) {
      // Last resort for call-crossing values when s-regs ran out: none —
      // caller-saved would be clobbered. Spill.
    }
    if (chosen < 0) {
      if (iv.touchesParallel)
        throw CompileError(
            0,
            "register spill inside a spawn block in function '" + fn.name +
                "': too many live variables; no parallel stack exists");
      spilled.push_back(iv.vreg);
      continue;
    }
    regOf[iv.vreg] = chosen;
    if (chosen >= kS0 && chosen <= kS7) frame.usedCalleeSaved.insert(chosen);
    active.push_back({iv.end, iv.vreg, chosen});
  }

  // --- Spill slots ---
  std::map<int, int> slotOf;
  for (int v : spilled) {
    slotOf[v] = frame.frameWords;
    frame.frameWords += 1;
  }

  // --- Rewrite ---
  for (auto& b : fn.blocks) {
    std::vector<IrInstr> out;
    out.reserve(b.instrs.size());
    for (auto& ins : b.instrs) {
      int scratchIdx = 0;
      auto mapUse = [&](int v) -> int {
        if (v < kNumRegs) return v;
        auto r = regOf.find(v);
        if (r != regOf.end()) return r->second;
        auto s = slotOf.find(v);
        XMT_CHECK(s != slotOf.end());
        XMT_CHECK(!b.parallel);
        int scratch = scratchIdx++ == 0 ? kAt : kK1;
        IrInstr load(IOp::kLoadW);
        load.dst = scratch;
        load.a = -2;  // frame-relative marker, resolved by the emitter
        load.imm = s->second * 4;
        load.srcLine = ins.srcLine;
        out.push_back(load);
        return scratch;
      };
      if (ins.a >= 0) ins.a = mapUse(ins.a);
      if (ins.b >= 0) ins.b = mapUse(ins.b);
      for (auto& v : ins.args) v = mapUse(v);

      int spillStoreSlot = -1;
      if (ins.dst >= 0) {
        if (ins.dst < kNumRegs) {
          // fixed
        } else {
          auto r = regOf.find(ins.dst);
          if (r != regOf.end()) {
            ins.dst = r->second;
          } else {
            auto s = slotOf.find(ins.dst);
            XMT_CHECK(s != slotOf.end());
            XMT_CHECK(!b.parallel);
            spillStoreSlot = s->second;
            ins.dst = kAt;
          }
        }
      }
      out.push_back(ins);
      if (spillStoreSlot >= 0) {
        IrInstr store(IOp::kStoreW);
        store.a = -2;  // frame-relative
        store.imm = spillStoreSlot * 4;
        store.b = kAt;
        store.srcLine = ins.srcLine;
        out.push_back(store);
      }
    }
    b.instrs = std::move(out);
  }
  return frame;
}

}  // namespace xmt
