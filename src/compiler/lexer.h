// Lexer for XMTC, the paper's "modest single-program multiple-data parallel
// extension of C": C scalar types, pointers, arrays, control flow, plus
// `spawn`, the thread-ID symbol `$`, `ps`/`psm` prefix-sum builtins, and the
// `psBaseReg` storage class for global-register variables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xmt {

enum class Tok : std::uint8_t {
  kEof,
  kIdent, kIntLit, kFloatLit, kCharLit, kStringLit,
  // Keywords.
  kInt, kUnsigned, kFloat, kChar, kVoid, kIf, kElse, kWhile, kFor, kDo,
  kBreak, kContinue, kReturn, kSpawn, kPsBaseReg, kVolatile, kSizeof,
  // Punctuation and operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kDollar, kQuestion, kColon,
  kAssign, kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign,
  kPercentAssign, kShlAssign, kShrAssign, kAndAssign, kOrAssign, kXorAssign,
  kPlusPlus, kMinusMinus,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kAmpAmp, kPipePipe,
  kEq, kNe, kLt, kGt, kLe, kGe, kShl, kShr,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;        // identifier / string contents
  std::int64_t intVal = 0;
  double floatVal = 0.0;
  int line = 0;
};

/// Tokenizes XMTC source. Throws CompileError on malformed input.
std::vector<Token> lex(const std::string& source);

/// Token name for diagnostics.
const char* tokName(Tok t);

}  // namespace xmt
