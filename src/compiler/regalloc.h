// Linear-scan register allocation.
//
// Serial code may spill to the stack frame; a spill needed inside a spawn
// block is a compile error, because virtual threads have no stack — "the
// compiler checks if the available registers suffice and produces a
// register spill error otherwise" (Section IV-D).
//
// After allocation the IR is rewritten in place: every operand is a
// physical register (0..31), spill loads/stores are inserted using the
// reserved scratch registers at/k1, and the function's frame layout
// (locals + spills + saved callee-saved registers + ra) is finalized.
#pragma once

#include <set>

#include "src/compiler/ir.h"

namespace xmt {

struct FrameInfo {
  int frameWords = 0;                // locals + spill slots
  std::set<int> usedCalleeSaved;     // s-registers to save/restore
  bool saveRa = false;
};

/// Allocates registers for `fn`, rewriting it in place. Returns the frame
/// layout for prologue/epilogue emission. Throws CompileError on a register
/// spill inside a parallel block.
FrameInfo allocateRegisters(IrFunc& fn);

}  // namespace xmt
