#include "src/compiler/transforms.h"

#include <functional>
#include <map>
#include <set>

#include "src/common/error.h"
#include "src/compiler/lexer.h"
#include "src/compiler/sema.h"

namespace xmt {

namespace {

// --- Generic walkers --------------------------------------------------------

// Visits every expression (including sub-expressions) in a statement tree.
// The callback receives an owning pointer so it can replace the node.
void walkExprPtrs(ExprPtr& e, const std::function<void(ExprPtr&)>& fn);

void walkSubExprs(Expr& e, const std::function<void(ExprPtr&)>& fn) {
  if (e.a) walkExprPtrs(e.a, fn);
  if (e.b) walkExprPtrs(e.b, fn);
  if (e.c) walkExprPtrs(e.c, fn);
  for (auto& a : e.args) walkExprPtrs(a, fn);
}

void walkExprPtrs(ExprPtr& e, const std::function<void(ExprPtr&)>& fn) {
  if (!e) return;
  walkSubExprs(*e, fn);
  fn(e);
}

void walkStmtExprs(Stmt& s, const std::function<void(ExprPtr&)>& fn) {
  if (s.expr) walkExprPtrs(s.expr, fn);
  if (s.expr2) walkExprPtrs(s.expr2, fn);
  if (s.expr3) walkExprPtrs(s.expr3, fn);
  for (auto& d : s.decls)
    for (auto& init : d->init) walkExprPtrs(init, fn);
  for (auto& a : s.args) walkExprPtrs(a, fn);
  if (s.body) walkStmtExprs(*s.body, fn);
  if (s.elseBody) walkStmtExprs(*s.elseBody, fn);
  for (auto& sub : s.stmts) walkStmtExprs(*sub, fn);
}

void walkStmts(Stmt& s, const std::function<void(Stmt&)>& fn) {
  fn(s);
  if (s.body) walkStmts(*s.body, fn);
  if (s.elseBody) walkStmts(*s.elseBody, fn);
  for (auto& sub : s.stmts) walkStmts(*sub, fn);
}

ExprPtr cloneExpr(const Expr& e) {
  auto c = std::make_unique<Expr>(e.kind);
  c->line = e.line;
  c->type = e.type;
  c->intVal = e.intVal;
  c->floatVal = e.floatVal;
  c->strVal = e.strVal;
  c->decl = e.decl;
  c->opTok = e.opTok;
  c->prefix = e.prefix;
  if (e.a) c->a = cloneExpr(*e.a);
  if (e.b) c->b = cloneExpr(*e.b);
  if (e.c) c->c = cloneExpr(*e.c);
  for (const auto& a : e.args) c->args.push_back(cloneExpr(*a));
  return c;
}

ExprPtr makeVarRef(VarDecl* d) {
  auto e = std::make_unique<Expr>(ExprKind::kVarRef);
  e->decl = d;
  e->strVal = d->name;
  e->type = d->isArray() ? d->type.pointerTo() : d->type;
  return e;
}

ExprPtr makeIntLit(std::int64_t v) {
  auto e = std::make_unique<Expr>(ExprKind::kIntLit);
  e->intVal = v;
  e->type = TypeRef::Int();
  return e;
}

ExprPtr makeBinary(Tok op, ExprPtr a, ExprPtr b, TypeRef t) {
  auto e = std::make_unique<Expr>(ExprKind::kBinary);
  e->opTok = static_cast<int>(op);
  e->a = std::move(a);
  e->b = std::move(b);
  e->type = t;
  return e;
}

ExprPtr makeAssign(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>(ExprKind::kAssign);
  e->opTok = static_cast<int>(Tok::kAssign);
  e->type = lhs->type;
  e->a = std::move(lhs);
  e->b = std::move(rhs);
  return e;
}

StmtPtr makeExprStmt(ExprPtr e) {
  auto s = std::make_unique<Stmt>(StmtKind::kExpr);
  s->expr = std::move(e);
  return s;
}

std::unique_ptr<VarDecl> makeIntLocal(const std::string& name) {
  auto d = std::make_unique<VarDecl>();
  d->name = name;
  d->type = TypeRef::Int();
  return d;
}

// --- Outlining (Fig. 8) -----------------------------------------------------

struct Captures {
  std::vector<VarDecl*> order;       // deterministic capture order
  std::set<VarDecl*> seen;
  std::set<VarDecl*> byRef;          // scalar value may be written
  std::set<VarDecl*> declaredInside;
};

void collectCaptures(Stmt& body, Captures& cap) {
  walkStmts(body, [&](Stmt& s) {
    for (auto& d : s.decls) cap.declaredInside.insert(d.get());
  });
  auto noteUse = [&](VarDecl* d) {
    if (d == nullptr || d->isGlobal || cap.declaredInside.count(d)) return;
    if (cap.seen.insert(d).second) cap.order.push_back(d);
  };
  auto noteWrite = [&](Expr* lhs) {
    if (lhs && lhs->kind == ExprKind::kVarRef && lhs->decl &&
        !lhs->decl->isGlobal && !cap.declaredInside.count(lhs->decl))
      cap.byRef.insert(lhs->decl);
  };
  walkStmtExprs(body, [&](ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kVarRef:
        noteUse(e->decl);
        break;
      case ExprKind::kAssign:
      case ExprKind::kIncDec:
        noteWrite(e->a.get());
        break;
      case ExprKind::kPs:
        noteWrite(e->a.get());
        break;
      case ExprKind::kPsm:
        noteWrite(e->a.get());
        noteWrite(e->b.get());
        break;
      case ExprKind::kUnary:
        if (e->opTok == static_cast<int>(Tok::kAmp))
          noteWrite(e->a.get());  // conservative: &x escapes
        break;
      default:
        break;
    }
  });
}

void outlineOne(TranslationUnit& tu, FuncDecl& host, StmtPtr& spawnStmt,
                int index) {
  Stmt& sp = *spawnStmt;
  Captures cap;
  collectCaptures(*sp.body, cap);
  // low/high expressions are evaluated in the outlined function too, so
  // their variable uses are captures as well (read-only).
  walkExprPtrs(sp.expr, [&](ExprPtr& e) {
    if (e->kind == ExprKind::kVarRef && e->decl && !e->decl->isGlobal &&
        !cap.declaredInside.count(e->decl) && cap.seen.insert(e->decl).second)
      cap.order.push_back(e->decl);
  });
  walkExprPtrs(sp.expr2, [&](ExprPtr& e) {
    if (e->kind == ExprKind::kVarRef && e->decl && !e->decl->isGlobal &&
        !cap.declaredInside.count(e->decl) && cap.seen.insert(e->decl).second)
      cap.order.push_back(e->decl);
  });

  if (cap.order.size() > 8)
    throw CompileError(sp.line,
                       "spawn block captures more than 8 enclosing "
                       "variables; restructure using globals");

  auto fn = std::make_unique<FuncDecl>();
  fn->name = "__spawn" + std::to_string(index) + "_" + host.name;
  fn->retType = TypeRef::Void();
  fn->line = sp.line;
  fn->generatedByOutlining = true;

  // Build parameters and the substitution map.
  std::map<VarDecl*, VarDecl*> byValParam;
  std::map<VarDecl*, VarDecl*> byRefParam;
  std::vector<ExprPtr> callArgs;
  for (VarDecl* d : cap.order) {
    auto p = std::make_unique<VarDecl>();
    p->isParam = true;
    p->name = d->name;
    if (cap.byRef.count(d) && !d->isArray()) {
      p->type = d->type.pointerTo();
      byRefParam[d] = p.get();
      d->addrTaken = true;
      auto addr = std::make_unique<Expr>(ExprKind::kUnary);
      addr->opTok = static_cast<int>(Tok::kAmp);
      addr->a = makeVarRef(d);
      addr->type = d->type.pointerTo();
      callArgs.push_back(std::move(addr));
    } else {
      p->type = d->isArray() ? d->type.pointerTo() : d->type;
      byValParam[d] = p.get();
      callArgs.push_back(makeVarRef(d));
    }
    fn->params.push_back(std::move(p));
  }

  // Move the spawn into the new function and rewrite captured references.
  auto block = std::make_unique<Stmt>(StmtKind::kBlock);
  StmtPtr movedSpawn = std::move(spawnStmt);
  auto rewrite = [&](ExprPtr& e) {
    if (e->kind != ExprKind::kVarRef || e->decl == nullptr) return;
    auto bv = byValParam.find(e->decl);
    if (bv != byValParam.end()) {
      e->decl = bv->second;
      e->type = bv->second->type;
      return;
    }
    auto br = byRefParam.find(e->decl);
    if (br != byRefParam.end()) {
      auto deref = std::make_unique<Expr>(ExprKind::kUnary);
      deref->opTok = static_cast<int>(Tok::kStar);
      deref->type = br->second->type.pointee();
      deref->a = makeVarRef(br->second);
      e = std::move(deref);
    }
  };
  walkStmtExprs(*movedSpawn, rewrite);
  walkExprPtrs(movedSpawn->expr, rewrite);
  walkExprPtrs(movedSpawn->expr2, rewrite);
  block->stmts.push_back(std::move(movedSpawn));
  fn->body = std::move(block);

  // Replace the original statement with a call.
  auto call = std::make_unique<Expr>(ExprKind::kCall);
  call->strVal = fn->name;
  call->type = TypeRef::Void();
  call->args = std::move(callArgs);
  spawnStmt = makeExprStmt(std::move(call));

  tu.funcs.push_back(std::move(fn));
}

// Recursively finds top-level spawn statements (not nested inside another
// spawn) owned by `slot` or its children and outlines them.
void outlineInStmt(TranslationUnit& tu, FuncDecl& host, StmtPtr& slot,
                   int& counter) {
  if (!slot) return;
  if (slot->kind == StmtKind::kSpawn) {
    outlineOne(tu, host, slot, counter++);
    return;  // replaced by a call
  }
  outlineInStmt(tu, host, slot->body, counter);
  outlineInStmt(tu, host, slot->elseBody, counter);
  for (auto& sub : slot->stmts) outlineInStmt(tu, host, sub, counter);
}

// --- Virtual-thread clustering (Section IV-C) -------------------------------

int gClusterCounter = 0;

void clusterOne(StmtPtr& slot, int clusterCount) {
  Stmt& sp = *slot;
  int n = gClusterCounter++;
  auto nm = [&](const char* base) {
    return std::string(base) + std::to_string(n);
  };

  auto lo = makeIntLocal(nm("__clo"));
  lo->init.push_back(std::move(sp.expr));
  auto hi = makeIntLocal(nm("__chi"));
  hi->init.push_back(std::move(sp.expr2));
  auto cnt = makeIntLocal(nm("__cn"));
  cnt->init.push_back(makeBinary(
      Tok::kPlus,
      makeBinary(Tok::kMinus, makeVarRef(hi.get()), makeVarRef(lo.get()),
                 TypeRef::Int()),
      makeIntLit(1), TypeRef::Int()));
  auto ncl = makeIntLocal(nm("__cncl"));
  {
    auto cond = std::make_unique<Expr>(ExprKind::kCond);
    cond->c = makeBinary(Tok::kLt, makeVarRef(cnt.get()),
                         makeIntLit(clusterCount), TypeRef::Int());
    cond->a = makeVarRef(cnt.get());
    cond->b = makeIntLit(clusterCount);
    cond->type = TypeRef::Int();
    ncl->init.push_back(std::move(cond));
  }
  auto chunk = makeIntLocal(nm("__cc"));
  chunk->init.push_back(makeBinary(
      Tok::kSlash,
      makeBinary(Tok::kMinus,
                 makeBinary(Tok::kPlus, makeVarRef(cnt.get()),
                            makeVarRef(ncl.get()), TypeRef::Int()),
                 makeIntLit(1), TypeRef::Int()),
      makeVarRef(ncl.get()), TypeRef::Int()));

  // Inner spawn body: __ci, __ce; while loop over the chunk.
  auto iv = makeIntLocal(nm("__ci"));
  auto ev = makeIntLocal(nm("__ce"));
  VarDecl* ivp = iv.get();
  VarDecl* evp = ev.get();

  auto dollar = std::make_unique<Expr>(ExprKind::kDollar);
  dollar->type = TypeRef::Int();
  iv->init.push_back(makeBinary(
      Tok::kPlus, makeVarRef(lo.get()),
      makeBinary(Tok::kStar, std::move(dollar), makeVarRef(chunk.get()),
                 TypeRef::Int()),
      TypeRef::Int()));
  ev->init.push_back(makeBinary(
      Tok::kMinus,
      makeBinary(Tok::kPlus, makeVarRef(ivp), makeVarRef(chunk.get()),
                 TypeRef::Int()),
      makeIntLit(1), TypeRef::Int()));

  // Rewrite $ inside the original body to __ci.
  StmtPtr body = std::move(sp.body);
  walkStmtExprs(*body, [&](ExprPtr& e) {
    if (e->kind == ExprKind::kDollar) e = makeVarRef(ivp);
  });

  auto innerBlock = std::make_unique<Stmt>(StmtKind::kBlock);
  {
    auto declStmt = std::make_unique<Stmt>(StmtKind::kDecl);
    declStmt->decls.push_back(std::move(iv));
    innerBlock->stmts.push_back(std::move(declStmt));
    auto declStmt2 = std::make_unique<Stmt>(StmtKind::kDecl);
    declStmt2->decls.push_back(std::move(ev));
    innerBlock->stmts.push_back(std::move(declStmt2));
    // if (__ce > __chi) __ce = __chi;
    auto clamp = std::make_unique<Stmt>(StmtKind::kIf);
    clamp->expr = makeBinary(Tok::kGt, makeVarRef(evp), makeVarRef(hi.get()),
                             TypeRef::Int());
    clamp->body =
        makeExprStmt(makeAssign(makeVarRef(evp), makeVarRef(hi.get())));
    innerBlock->stmts.push_back(std::move(clamp));
    // while (__ci <= __ce) { body; __ci = __ci + 1; }
    auto loop = std::make_unique<Stmt>(StmtKind::kWhile);
    loop->expr = makeBinary(Tok::kLe, makeVarRef(ivp), makeVarRef(evp),
                            TypeRef::Int());
    auto loopBody = std::make_unique<Stmt>(StmtKind::kBlock);
    loopBody->stmts.push_back(std::move(body));
    loopBody->stmts.push_back(makeExprStmt(makeAssign(
        makeVarRef(ivp),
        makeBinary(Tok::kPlus, makeVarRef(ivp), makeIntLit(1),
                   TypeRef::Int()))));
    loop->body = std::move(loopBody);
    innerBlock->stmts.push_back(std::move(loop));
  }

  auto newSpawn = std::make_unique<Stmt>(StmtKind::kSpawn);
  newSpawn->line = sp.line;
  newSpawn->expr = makeIntLit(0);
  newSpawn->expr2 = makeBinary(Tok::kMinus, makeVarRef(ncl.get()),
                               makeIntLit(1), TypeRef::Int());
  newSpawn->body = std::move(innerBlock);

  // if (__cn > 0) { decls for __cncl/__cc; spawn }
  auto guarded = std::make_unique<Stmt>(StmtKind::kIf);
  guarded->expr = makeBinary(Tok::kGt, makeVarRef(cnt.get()), makeIntLit(0),
                             TypeRef::Int());
  auto guardBlock = std::make_unique<Stmt>(StmtKind::kBlock);
  {
    auto d1 = std::make_unique<Stmt>(StmtKind::kDecl);
    d1->decls.push_back(std::move(ncl));
    guardBlock->stmts.push_back(std::move(d1));
    auto d2 = std::make_unique<Stmt>(StmtKind::kDecl);
    d2->decls.push_back(std::move(chunk));
    guardBlock->stmts.push_back(std::move(d2));
    guardBlock->stmts.push_back(std::move(newSpawn));
  }
  guarded->body = std::move(guardBlock);

  auto outer = std::make_unique<Stmt>(StmtKind::kBlock);
  {
    auto d = std::make_unique<Stmt>(StmtKind::kDecl);
    d->decls.push_back(std::move(lo));
    outer->stmts.push_back(std::move(d));
    auto d2 = std::make_unique<Stmt>(StmtKind::kDecl);
    d2->decls.push_back(std::move(hi));
    outer->stmts.push_back(std::move(d2));
    auto d3 = std::make_unique<Stmt>(StmtKind::kDecl);
    d3->decls.push_back(std::move(cnt));
    outer->stmts.push_back(std::move(d3));
    outer->stmts.push_back(std::move(guarded));
  }
  slot = std::move(outer);
}

void clusterInStmt(StmtPtr& slot, int clusterCount) {
  if (!slot) return;
  if (slot->kind == StmtKind::kSpawn) {
    clusterOne(slot, clusterCount);
    return;  // inner spawn is the coarsened one; do not recurse
  }
  clusterInStmt(slot->body, clusterCount);
  clusterInStmt(slot->elseBody, clusterCount);
  for (auto& sub : slot->stmts) clusterInStmt(sub, clusterCount);
}

// --- Parallel-call inlining --------------------------------------------------

bool hasSideEffects(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kAssign:
    case ExprKind::kIncDec:
    case ExprKind::kPs:
    case ExprKind::kPsm:
    case ExprKind::kCall:
      return true;
    default:
      break;
  }
  if (e.a && hasSideEffects(*e.a)) return true;
  if (e.b && hasSideEffects(*e.b)) return true;
  if (e.c && hasSideEffects(*e.c)) return true;
  for (const auto& a : e.args)
    if (hasSideEffects(*a)) return true;
  return false;
}

// Returns the single `return expr;` of an expression-bodied function, or
// nullptr.
const Expr* singleReturnExpr(const FuncDecl& f) {
  const Stmt* body = f.body.get();
  while (body->kind == StmtKind::kBlock && body->stmts.size() == 1)
    body = body->stmts[0].get();
  if (body->kind == StmtKind::kReturn && body->expr) return body->expr.get();
  return nullptr;
}

void inlineCallsIn(TranslationUnit& tu, Stmt& stmt, int depthLimit);

void inlineExprCalls(TranslationUnit& tu, ExprPtr& e, int depthLimit) {
  walkExprPtrs(e, [&](ExprPtr& node) {
    if (node->kind != ExprKind::kCall) return;
    if (depthLimit <= 0)
      throw CompileError(node->line,
                         "recursive call inside a spawn block cannot be "
                         "inlined (no parallel stack)");
    FuncDecl* callee = tu.findFunc(node->strVal);
    XMT_CHECK(callee != nullptr);
    const Expr* retExpr = singleReturnExpr(*callee);
    if (retExpr == nullptr)
      throw CompileError(
          node->line,
          "call to '" + node->strVal +
              "' inside a spawn block: there is no parallel stack; only "
              "single-return-expression functions can be inlined");
    for (const auto& a : node->args)
      if (hasSideEffects(*a))
        throw CompileError(node->line,
                           "argument with side effects to a call inlined "
                           "into a spawn block");
    ExprPtr cloned = cloneExpr(*retExpr);
    // Substitute parameters.
    std::map<const VarDecl*, const Expr*> argOf;
    for (std::size_t i = 0; i < callee->params.size(); ++i)
      argOf[callee->params[i].get()] = node->args[i].get();
    walkExprPtrs(cloned, [&](ExprPtr& sub) {
      if (sub->kind == ExprKind::kVarRef) {
        auto it = argOf.find(sub->decl);
        if (it != argOf.end()) sub = cloneExpr(*it->second);
      }
    });
    // Inline nested calls inside the clone.
    inlineExprCalls(tu, cloned, depthLimit - 1);
    node = std::move(cloned);
  });
}

void inlineCallsIn(TranslationUnit& tu, Stmt& stmt, int depthLimit) {
  if (stmt.expr) inlineExprCalls(tu, stmt.expr, depthLimit);
  if (stmt.expr2) inlineExprCalls(tu, stmt.expr2, depthLimit);
  if (stmt.expr3) inlineExprCalls(tu, stmt.expr3, depthLimit);
  for (auto& d : stmt.decls)
    for (auto& init : d->init) inlineExprCalls(tu, init, depthLimit);
  for (auto& a : stmt.args) inlineExprCalls(tu, a, depthLimit);
  if (stmt.body) inlineCallsIn(tu, *stmt.body, depthLimit);
  if (stmt.elseBody) inlineCallsIn(tu, *stmt.elseBody, depthLimit);
  for (auto& sub : stmt.stmts) inlineCallsIn(tu, *sub, depthLimit);
}

void inlineInSpawnsOnly(TranslationUnit& tu, Stmt& stmt) {
  if (stmt.kind == StmtKind::kSpawn) {
    inlineCallsIn(tu, *stmt.body, 10);
    return;
  }
  if (stmt.body) inlineInSpawnsOnly(tu, *stmt.body);
  if (stmt.elseBody) inlineInSpawnsOnly(tu, *stmt.elseBody);
  for (auto& sub : stmt.stmts) inlineInSpawnsOnly(tu, *sub);
}

}  // namespace

void outlineSpawnBlocks(TranslationUnit& tu) {
  std::size_t originalCount = tu.funcs.size();
  for (std::size_t i = 0; i < originalCount; ++i) {
    int counter = 0;
    FuncDecl& f = *tu.funcs[i];
    outlineInStmt(tu, f, f.body, counter);
  }
}

void clusterVirtualThreads(TranslationUnit& tu, int clusterCount) {
  XMT_CHECK(clusterCount > 0);
  for (auto& f : tu.funcs) clusterInStmt(f->body, clusterCount);
}

void inlineParallelCalls(TranslationUnit& tu) {
  for (auto& f : tu.funcs)
    if (f->body) inlineInSpawnsOnly(tu, *f->body);
}

}  // namespace xmt
