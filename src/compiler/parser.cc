#include "src/compiler/parser.h"

#include "src/common/error.h"
#include "src/compiler/lexer.h"

namespace xmt {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& source) : toks_(lex(source)) {}

  std::unique_ptr<TranslationUnit> run() {
    auto tu = std::make_unique<TranslationUnit>();
    while (!at(Tok::kEof)) {
      bool isVolatile = accept(Tok::kVolatile);
      bool isPsBase = accept(Tok::kPsBaseReg);
      if (isPsBase) {
        // psBaseReg [int] name [= init] (',' name)* ';'
        accept(Tok::kInt);
        do {
          auto v = std::make_unique<VarDecl>();
          v->line = cur().line;
          v->name = expectIdent();
          v->type = TypeRef::Int();
          v->isGlobal = true;
          v->isPsBaseReg = true;
          if (accept(Tok::kAssign)) v->init.push_back(assignment());
          tu->globals.push_back(std::move(v));
        } while (accept(Tok::kComma));
        expect(Tok::kSemi);
        continue;
      }
      TypeRef base = parseBaseType();
      // Look ahead: pointer stars then ident then '(' => function.
      std::size_t save = pos_;
      int stars = 0;
      while (accept(Tok::kStar)) ++stars;
      if (at(Tok::kIdent) && toks_[pos_ + 1].kind == Tok::kLParen) {
        TypeRef ret = base;
        ret.ptr = stars;
        tu->funcs.push_back(parseFunction(ret));
        if (isVolatile) fail("volatile function");
        continue;
      }
      pos_ = save;
      parseGlobalDeclarators(*tu, base, isVolatile);
    }
    return tu;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(Tok k) const { return cur().kind == k; }
  bool accept(Tok k) {
    if (at(k)) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(Tok k) {
    if (!accept(k))
      fail(std::string("expected ") + tokName(k) + ", got " +
           tokName(cur().kind));
  }
  std::string expectIdent() {
    if (!at(Tok::kIdent)) fail("expected identifier");
    std::string s = cur().text;
    ++pos_;
    return s;
  }
  [[noreturn]] void fail(const std::string& msg) {
    throw CompileError(cur().line, msg);
  }

  bool atTypeKeyword() const {
    return at(Tok::kInt) || at(Tok::kUnsigned) || at(Tok::kFloat) ||
           at(Tok::kChar) || at(Tok::kVoid);
  }

  TypeRef parseBaseType() {
    TypeRef t;
    if (accept(Tok::kInt)) t.base = TypeRef::Base::kInt;
    else if (accept(Tok::kUnsigned)) {
      accept(Tok::kInt);
      t.base = TypeRef::Base::kUInt;
    } else if (accept(Tok::kFloat)) t.base = TypeRef::Base::kFloat;
    else if (accept(Tok::kChar)) t.base = TypeRef::Base::kChar;
    else if (accept(Tok::kVoid)) t.base = TypeRef::Base::kVoid;
    else fail("expected type");
    return t;
  }

  std::unique_ptr<VarDecl> parseDeclarator(TypeRef base, bool isVolatile) {
    auto v = std::make_unique<VarDecl>();
    v->line = cur().line;
    v->type = base;
    while (accept(Tok::kStar)) v->type.ptr++;
    v->isVolatile = isVolatile;
    v->name = expectIdent();
    while (accept(Tok::kLBracket)) {
      if (!at(Tok::kIntLit)) fail("array dimension must be a constant");
      v->dims.push_back(static_cast<int>(cur().intVal));
      ++pos_;
      expect(Tok::kRBracket);
    }
    if (accept(Tok::kAssign)) {
      if (accept(Tok::kLBrace)) {
        do {
          v->init.push_back(assignment());
        } while (accept(Tok::kComma));
        expect(Tok::kRBrace);
      } else {
        v->init.push_back(assignment());
      }
    }
    return v;
  }

  void parseGlobalDeclarators(TranslationUnit& tu, TypeRef base,
                              bool isVolatile) {
    do {
      auto v = parseDeclarator(base, isVolatile);
      v->isGlobal = true;
      tu.globals.push_back(std::move(v));
    } while (accept(Tok::kComma));
    expect(Tok::kSemi);
  }

  std::unique_ptr<FuncDecl> parseFunction(TypeRef ret) {
    auto f = std::make_unique<FuncDecl>();
    f->line = cur().line;
    f->retType = ret;
    f->name = expectIdent();
    expect(Tok::kLParen);
    if (!accept(Tok::kRParen)) {
      if (accept(Tok::kVoid) && at(Tok::kRParen)) {
        expect(Tok::kRParen);
      } else {
        do {
          TypeRef base =
              atTypeKeyword() ? parseBaseType() : TypeRef::Int();
          auto p = parseDeclarator(base, false);
          if (!p->init.empty()) fail("parameter with initializer");
          p->isParam = true;
          // Array parameters decay to pointers.
          if (p->isArray()) {
            p->dims.clear();
            p->type.ptr++;
          }
          f->params.push_back(std::move(p));
        } while (accept(Tok::kComma));
        expect(Tok::kRParen);
      }
    }
    f->body = parseBlock();
    return f;
  }

  StmtPtr parseBlock() {
    expect(Tok::kLBrace);
    auto blk = std::make_unique<Stmt>(StmtKind::kBlock);
    blk->line = cur().line;
    while (!accept(Tok::kRBrace)) {
      if (at(Tok::kEof)) fail("unterminated block");
      blk->stmts.push_back(statement());
    }
    return blk;
  }

  StmtPtr statement() {
    int line = cur().line;
    if (at(Tok::kLBrace)) return parseBlock();
    if (accept(Tok::kSemi)) {
      auto s = std::make_unique<Stmt>(StmtKind::kEmpty);
      s->line = line;
      return s;
    }
    if (accept(Tok::kIf)) {
      auto s = std::make_unique<Stmt>(StmtKind::kIf);
      s->line = line;
      expect(Tok::kLParen);
      s->expr = expression();
      expect(Tok::kRParen);
      s->body = statement();
      if (accept(Tok::kElse)) s->elseBody = statement();
      return s;
    }
    if (accept(Tok::kWhile)) {
      auto s = std::make_unique<Stmt>(StmtKind::kWhile);
      s->line = line;
      expect(Tok::kLParen);
      s->expr = expression();
      expect(Tok::kRParen);
      s->body = statement();
      return s;
    }
    if (accept(Tok::kDo)) {
      auto s = std::make_unique<Stmt>(StmtKind::kDoWhile);
      s->line = line;
      s->body = statement();
      expect(Tok::kWhile);
      expect(Tok::kLParen);
      s->expr = expression();
      expect(Tok::kRParen);
      expect(Tok::kSemi);
      return s;
    }
    if (accept(Tok::kFor)) {
      auto s = std::make_unique<Stmt>(StmtKind::kFor);
      s->line = line;
      expect(Tok::kLParen);
      if (!accept(Tok::kSemi)) {
        if (atTypeKeyword()) {
          TypeRef base = parseBaseType();
          do {
            auto v = parseDeclarator(base, false);
            s->decls.push_back(std::move(v));
          } while (accept(Tok::kComma));
        } else {
          s->expr = expression();
        }
        expect(Tok::kSemi);
      }
      if (!at(Tok::kSemi)) s->expr2 = expression();
      expect(Tok::kSemi);
      if (!at(Tok::kRParen)) s->expr3 = expression();
      expect(Tok::kRParen);
      s->body = statement();
      return s;
    }
    if (accept(Tok::kBreak)) {
      expect(Tok::kSemi);
      auto s = std::make_unique<Stmt>(StmtKind::kBreak);
      s->line = line;
      return s;
    }
    if (accept(Tok::kContinue)) {
      expect(Tok::kSemi);
      auto s = std::make_unique<Stmt>(StmtKind::kContinue);
      s->line = line;
      return s;
    }
    if (accept(Tok::kReturn)) {
      auto s = std::make_unique<Stmt>(StmtKind::kReturn);
      s->line = line;
      if (!at(Tok::kSemi)) s->expr = expression();
      expect(Tok::kSemi);
      return s;
    }
    if (accept(Tok::kSpawn)) {
      auto s = std::make_unique<Stmt>(StmtKind::kSpawn);
      s->line = line;
      expect(Tok::kLParen);
      s->expr = expression();
      expect(Tok::kComma);
      s->expr2 = expression();
      expect(Tok::kRParen);
      s->body = parseBlock();
      return s;
    }
    if (atTypeKeyword() || at(Tok::kVolatile)) {
      bool isVolatile = accept(Tok::kVolatile);
      TypeRef base = parseBaseType();
      auto s = std::make_unique<Stmt>(StmtKind::kDecl);
      s->line = line;
      do {
        s->decls.push_back(parseDeclarator(base, isVolatile));
      } while (accept(Tok::kComma));
      expect(Tok::kSemi);
      return s;
    }
    if (at(Tok::kIdent) && cur().text == "printf" &&
        toks_[pos_ + 1].kind == Tok::kLParen) {
      ++pos_;
      expect(Tok::kLParen);
      auto s = std::make_unique<Stmt>(StmtKind::kPrintf);
      s->line = line;
      if (!at(Tok::kStringLit)) fail("printf needs a literal format string");
      s->strVal = cur().text;
      ++pos_;
      while (accept(Tok::kComma)) s->args.push_back(assignment());
      expect(Tok::kRParen);
      expect(Tok::kSemi);
      return s;
    }
    auto s = std::make_unique<Stmt>(StmtKind::kExpr);
    s->line = line;
    s->expr = expression();
    expect(Tok::kSemi);
    return s;
  }

  // --- Expressions (precedence climbing) ---

  ExprPtr expression() { return assignment(); }

  ExprPtr assignment() {
    ExprPtr lhs = conditional();
    Tok k = cur().kind;
    if (k == Tok::kAssign || k == Tok::kPlusAssign || k == Tok::kMinusAssign ||
        k == Tok::kStarAssign || k == Tok::kSlashAssign ||
        k == Tok::kPercentAssign || k == Tok::kShlAssign ||
        k == Tok::kShrAssign || k == Tok::kAndAssign || k == Tok::kOrAssign ||
        k == Tok::kXorAssign) {
      int line = cur().line;
      ++pos_;
      auto e = std::make_unique<Expr>(ExprKind::kAssign);
      e->line = line;
      e->opTok = static_cast<int>(k);
      e->a = std::move(lhs);
      e->b = assignment();
      return e;
    }
    return lhs;
  }

  ExprPtr conditional() {
    ExprPtr c = binary(0);
    if (accept(Tok::kQuestion)) {
      auto e = std::make_unique<Expr>(ExprKind::kCond);
      e->line = c->line;
      e->c = std::move(c);
      e->a = expression();
      expect(Tok::kColon);
      e->b = conditional();
      return e;
    }
    return c;
  }

  // Binary operator precedence, loosest first.
  static int precOf(Tok k) {
    switch (k) {
      case Tok::kPipePipe: return 1;
      case Tok::kAmpAmp: return 2;
      case Tok::kPipe: return 3;
      case Tok::kCaret: return 4;
      case Tok::kAmp: return 5;
      case Tok::kEq:
      case Tok::kNe: return 6;
      case Tok::kLt:
      case Tok::kGt:
      case Tok::kLe:
      case Tok::kGe: return 7;
      case Tok::kShl:
      case Tok::kShr: return 8;
      case Tok::kPlus:
      case Tok::kMinus: return 9;
      case Tok::kStar:
      case Tok::kSlash:
      case Tok::kPercent: return 10;
      default: return 0;
    }
  }

  ExprPtr binary(int minPrec) {
    ExprPtr lhs = unary();
    for (;;) {
      int prec = precOf(cur().kind);
      if (prec == 0 || prec < minPrec) return lhs;
      Tok op = cur().kind;
      int line = cur().line;
      ++pos_;
      ExprPtr rhs = binaryRhs(prec + 1);
      auto e = std::make_unique<Expr>(ExprKind::kBinary);
      e->line = line;
      e->opTok = static_cast<int>(op);
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
  }

  ExprPtr binaryRhs(int minPrec) { return binary(minPrec); }

  ExprPtr unary() {
    int line = cur().line;
    switch (cur().kind) {
      case Tok::kPlusPlus:
      case Tok::kMinusMinus: {
        Tok k = cur().kind;
        ++pos_;
        auto e = std::make_unique<Expr>(ExprKind::kIncDec);
        e->line = line;
        e->prefix = true;
        e->opTok = static_cast<int>(k);
        e->a = unary();
        return e;
      }
      case Tok::kMinus:
      case Tok::kBang:
      case Tok::kTilde:
      case Tok::kStar:
      case Tok::kAmp: {
        Tok k = cur().kind;
        ++pos_;
        auto e = std::make_unique<Expr>(ExprKind::kUnary);
        e->line = line;
        e->opTok = static_cast<int>(k);
        e->a = unary();
        return e;
      }
      case Tok::kPlus:
        ++pos_;
        return unary();
      case Tok::kSizeof: {
        ++pos_;
        expect(Tok::kLParen);
        auto e = std::make_unique<Expr>(ExprKind::kSizeof);
        e->line = line;
        if (atTypeKeyword()) {
          TypeRef t = parseBaseType();
          while (accept(Tok::kStar)) t.ptr++;
          e->intVal = t.size();
        } else {
          e->a = expression();  // sized by sema
        }
        expect(Tok::kRParen);
        return e;
      }
      case Tok::kLParen:
        // Cast or parenthesized expression.
        if (atTypeKeyword(1)) {
          ++pos_;
          TypeRef t = parseBaseType();
          while (accept(Tok::kStar)) t.ptr++;
          expect(Tok::kRParen);
          auto e = std::make_unique<Expr>(ExprKind::kCast);
          e->line = line;
          e->type = t;
          e->a = unary();
          return e;
        }
        return postfix();
      default:
        return postfix();
    }
  }

  bool atTypeKeyword(int ahead) const {
    Tok k = toks_[pos_ + static_cast<std::size_t>(ahead)].kind;
    return k == Tok::kInt || k == Tok::kUnsigned || k == Tok::kFloat ||
           k == Tok::kChar || k == Tok::kVoid;
  }

  ExprPtr postfix() {
    ExprPtr e = primary();
    for (;;) {
      int line = cur().line;
      if (accept(Tok::kLBracket)) {
        auto idx = std::make_unique<Expr>(ExprKind::kIndex);
        idx->line = line;
        idx->a = std::move(e);
        idx->b = expression();
        expect(Tok::kRBracket);
        e = std::move(idx);
        continue;
      }
      if (at(Tok::kPlusPlus) || at(Tok::kMinusMinus)) {
        auto p = std::make_unique<Expr>(ExprKind::kIncDec);
        p->line = line;
        p->prefix = false;
        p->opTok = static_cast<int>(cur().kind);
        ++pos_;
        p->a = std::move(e);
        e = std::move(p);
        continue;
      }
      return e;
    }
  }

  ExprPtr primary() {
    int line = cur().line;
    switch (cur().kind) {
      case Tok::kIntLit:
      case Tok::kCharLit: {
        auto e = std::make_unique<Expr>(ExprKind::kIntLit);
        e->line = line;
        e->intVal = cur().intVal;
        ++pos_;
        return e;
      }
      case Tok::kFloatLit: {
        auto e = std::make_unique<Expr>(ExprKind::kFloatLit);
        e->line = line;
        e->floatVal = cur().floatVal;
        ++pos_;
        return e;
      }
      case Tok::kStringLit: {
        auto e = std::make_unique<Expr>(ExprKind::kStrLit);
        e->line = line;
        e->strVal = cur().text;
        ++pos_;
        return e;
      }
      case Tok::kDollar: {
        ++pos_;
        auto e = std::make_unique<Expr>(ExprKind::kDollar);
        e->line = line;
        return e;
      }
      case Tok::kIdent: {
        std::string name = cur().text;
        ++pos_;
        if (accept(Tok::kLParen)) {
          if (name == "ps" || name == "psm") {
            auto e = std::make_unique<Expr>(
                name == "ps" ? ExprKind::kPs : ExprKind::kPsm);
            e->line = line;
            e->a = assignment();  // increment lvalue
            expect(Tok::kComma);
            e->b = assignment();  // base
            expect(Tok::kRParen);
            return e;
          }
          auto e = std::make_unique<Expr>(ExprKind::kCall);
          e->line = line;
          e->strVal = name;
          if (!accept(Tok::kRParen)) {
            do {
              e->args.push_back(assignment());
            } while (accept(Tok::kComma));
            expect(Tok::kRParen);
          }
          return e;
        }
        auto e = std::make_unique<Expr>(ExprKind::kVarRef);
        e->line = line;
        e->strVal = name;
        return e;
      }
      case Tok::kLParen: {
        ++pos_;
        ExprPtr e = expression();
        expect(Tok::kRParen);
        return e;
      }
      default:
        fail(std::string("unexpected ") + tokName(cur().kind) +
             " in expression");
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

std::unique_ptr<TranslationUnit> parse(const std::string& source) {
  return Parser(source).run();
}

std::string TypeRef::str() const {
  std::string s;
  switch (base) {
    case Base::kVoid: s = "void"; break;
    case Base::kInt: s = "int"; break;
    case Base::kUInt: s = "unsigned"; break;
    case Base::kFloat: s = "float"; break;
    case Base::kChar: s = "char"; break;
  }
  for (int i = 0; i < ptr; ++i) s += "*";
  return s;
}

}  // namespace xmt
