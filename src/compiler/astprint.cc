// AST pretty-printer: renders the (possibly transformed) AST back to XMTC.
// Lets users inspect what the source-to-source pre-passes (outlining,
// clustering, inlining) did — the role CIL's output played in the original
// toolchain.
#include <sstream>

#include "src/common/error.h"
#include "src/compiler/ast.h"
#include "src/compiler/lexer.h"

namespace xmt {

namespace {

const char* opStr(int tok) {
  switch (static_cast<Tok>(tok)) {
    case Tok::kPlus: return "+";
    case Tok::kMinus: return "-";
    case Tok::kStar: return "*";
    case Tok::kSlash: return "/";
    case Tok::kPercent: return "%";
    case Tok::kAmp: return "&";
    case Tok::kPipe: return "|";
    case Tok::kCaret: return "^";
    case Tok::kTilde: return "~";
    case Tok::kBang: return "!";
    case Tok::kAmpAmp: return "&&";
    case Tok::kPipePipe: return "||";
    case Tok::kEq: return "==";
    case Tok::kNe: return "!=";
    case Tok::kLt: return "<";
    case Tok::kGt: return ">";
    case Tok::kLe: return "<=";
    case Tok::kGe: return ">=";
    case Tok::kShl: return "<<";
    case Tok::kShr: return ">>";
    case Tok::kAssign: return "=";
    case Tok::kPlusAssign: return "+=";
    case Tok::kMinusAssign: return "-=";
    case Tok::kStarAssign: return "*=";
    case Tok::kSlashAssign: return "/=";
    case Tok::kPercentAssign: return "%=";
    case Tok::kShlAssign: return "<<=";
    case Tok::kShrAssign: return ">>=";
    case Tok::kAndAssign: return "&=";
    case Tok::kOrAssign: return "|=";
    case Tok::kXorAssign: return "^=";
    case Tok::kPlusPlus: return "++";
    case Tok::kMinusMinus: return "--";
    default: return "?";
  }
}

class Printer {
 public:
  std::string run(const TranslationUnit& tu) {
    for (const auto& g : tu.globals) {
      if (g->isPsBaseReg) out_ << "psBaseReg ";
      else if (g->isVolatile) out_ << "volatile ";
      printVarDecl(*g);
      out_ << ";\n";
    }
    for (const auto& f : tu.funcs) {
      out_ << "\n" << f->retType.str() << " " << f->name << "(";
      for (std::size_t i = 0; i < f->params.size(); ++i) {
        if (i) out_ << ", ";
        printVarDecl(*f->params[i]);
      }
      out_ << ")\n";
      printStmt(*f->body, 0);
    }
    return out_.str();
  }

 private:
  void indent(int n) {
    for (int i = 0; i < n; ++i) out_ << "  ";
  }

  void printVarDecl(const VarDecl& v) {
    if (!v.isPsBaseReg) out_ << v.type.str() << " ";
    out_ << v.name;
    for (int d : v.dims) out_ << "[" << d << "]";
    if (!v.init.empty()) {
      out_ << " = ";
      if (v.init.size() > 1 || v.isArray()) {
        out_ << "{";
        for (std::size_t i = 0; i < v.init.size(); ++i) {
          if (i) out_ << ", ";
          printExpr(*v.init[i]);
        }
        out_ << "}";
      } else {
        printExpr(*v.init[0]);
      }
    }
  }

  void printStmt(const Stmt& s, int depth) {
    switch (s.kind) {
      case StmtKind::kBlock:
        indent(depth);
        out_ << "{\n";
        for (const auto& sub : s.stmts) printStmt(*sub, depth + 1);
        indent(depth);
        out_ << "}\n";
        break;
      case StmtKind::kExpr:
        indent(depth);
        printExpr(*s.expr);
        out_ << ";\n";
        break;
      case StmtKind::kDecl:
        indent(depth);
        for (std::size_t i = 0; i < s.decls.size(); ++i) {
          if (i) out_ << ", ";
          if (i == 0 && s.decls[i]->isVolatile) out_ << "volatile ";
          printVarDecl(*s.decls[i]);
        }
        out_ << ";\n";
        break;
      case StmtKind::kIf:
        indent(depth);
        out_ << "if (";
        printExpr(*s.expr);
        out_ << ")\n";
        printStmt(*s.body, depth + 1);
        if (s.elseBody) {
          indent(depth);
          out_ << "else\n";
          printStmt(*s.elseBody, depth + 1);
        }
        break;
      case StmtKind::kWhile:
        indent(depth);
        out_ << "while (";
        printExpr(*s.expr);
        out_ << ")\n";
        printStmt(*s.body, depth + 1);
        break;
      case StmtKind::kDoWhile:
        indent(depth);
        out_ << "do\n";
        printStmt(*s.body, depth + 1);
        indent(depth);
        out_ << "while (";
        printExpr(*s.expr);
        out_ << ");\n";
        break;
      case StmtKind::kFor:
        indent(depth);
        out_ << "for (";
        if (!s.decls.empty()) {
          for (std::size_t i = 0; i < s.decls.size(); ++i) {
            if (i) out_ << ", ";
            printVarDecl(*s.decls[i]);
          }
        } else if (s.expr) {
          printExpr(*s.expr);
        }
        out_ << "; ";
        if (s.expr2) printExpr(*s.expr2);
        out_ << "; ";
        if (s.expr3) printExpr(*s.expr3);
        out_ << ")\n";
        printStmt(*s.body, depth + 1);
        break;
      case StmtKind::kBreak:
        indent(depth);
        out_ << "break;\n";
        break;
      case StmtKind::kContinue:
        indent(depth);
        out_ << "continue;\n";
        break;
      case StmtKind::kReturn:
        indent(depth);
        out_ << "return";
        if (s.expr) {
          out_ << " ";
          printExpr(*s.expr);
        }
        out_ << ";\n";
        break;
      case StmtKind::kSpawn:
        indent(depth);
        out_ << "spawn(";
        printExpr(*s.expr);
        out_ << ", ";
        printExpr(*s.expr2);
        out_ << ")\n";
        printStmt(*s.body, depth + 1);
        break;
      case StmtKind::kEmpty:
        indent(depth);
        out_ << ";\n";
        break;
      case StmtKind::kPrintf: {
        indent(depth);
        out_ << "printf(\"";
        for (char c : s.strVal) {
          if (c == '\n') out_ << "\\n";
          else if (c == '\t') out_ << "\\t";
          else if (c == '"') out_ << "\\\"";
          else out_ << c;
        }
        out_ << "\"";
        for (const auto& a : s.args) {
          out_ << ", ";
          printExpr(*a);
        }
        out_ << ");\n";
        break;
      }
    }
  }

  void printExpr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit: out_ << e.intVal; break;
      case ExprKind::kFloatLit: out_ << e.floatVal << "f"; break;
      case ExprKind::kStrLit: out_ << "\"" << e.strVal << "\""; break;
      case ExprKind::kVarRef:
        out_ << (e.decl ? e.decl->name : e.strVal);
        break;
      case ExprKind::kDollar: out_ << "$"; break;
      case ExprKind::kUnary:
        out_ << "(" << opStr(e.opTok);
        printExpr(*e.a);
        out_ << ")";
        break;
      case ExprKind::kBinary:
        out_ << "(";
        printExpr(*e.a);
        out_ << " " << opStr(e.opTok) << " ";
        printExpr(*e.b);
        out_ << ")";
        break;
      case ExprKind::kAssign:
        printExpr(*e.a);
        out_ << " " << opStr(e.opTok) << " ";
        printExpr(*e.b);
        break;
      case ExprKind::kCond:
        out_ << "(";
        printExpr(*e.c);
        out_ << " ? ";
        printExpr(*e.a);
        out_ << " : ";
        printExpr(*e.b);
        out_ << ")";
        break;
      case ExprKind::kCall:
        out_ << e.strVal << "(";
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          if (i) out_ << ", ";
          printExpr(*e.args[i]);
        }
        out_ << ")";
        break;
      case ExprKind::kIndex:
        printExpr(*e.a);
        out_ << "[";
        printExpr(*e.b);
        out_ << "]";
        break;
      case ExprKind::kCast:
        out_ << "(" << e.type.str() << ")";
        printExpr(*e.a);
        break;
      case ExprKind::kIncDec:
        if (e.prefix) out_ << opStr(e.opTok);
        printExpr(*e.a);
        if (!e.prefix) out_ << opStr(e.opTok);
        break;
      case ExprKind::kPs:
        out_ << "ps(";
        printExpr(*e.a);
        out_ << ", ";
        printExpr(*e.b);
        out_ << ")";
        break;
      case ExprKind::kPsm:
        out_ << "psm(";
        printExpr(*e.a);
        out_ << ", ";
        printExpr(*e.b);
        out_ << ")";
        break;
      case ExprKind::kSizeof:
        out_ << e.intVal;
        break;
    }
  }

  std::ostringstream out_;
};

}  // namespace

std::string printAst(const TranslationUnit& tu) { return Printer().run(tu); }

}  // namespace xmt
