// IR optimization passes.
//
// Generic passes (constant folding, copy propagation, dead-code
// elimination) are deliberately block-local: they can never move a value
// across a spawn boundary, so they are safe by construction once outlining
// has run. The XMT-specific passes implement Section IV-C of the paper:
// non-blocking stores with memory-model fences, and prefetch-buffer
// prefetching that batches the address computations of nearby loads to
// create memory-level parallelism inside a virtual thread.
#pragma once

#include "src/compiler/ir.h"

namespace xmt {

/// Generic optimizations; level 0 = none, 1 = standard, 2 = standard plus
/// the range-driven simplification pass (rangeSimplify).
void optimizeIr(IrFunc& fn, int level);

/// Range-driven simplification (xmtai interval engine, -O2): folds
/// instructions whose result range is a single value, resolves branches the
/// ranges decide (dead-branch elimination — e.g. bounds checks a spawn's
/// thread-ID range subsumes), strength-reduces division/remainder by
/// power-of-two constants when the dividend is provably non-negative, and
/// drops masks the operand range proves redundant. Returns true when it
/// changed anything (callers should re-run cleanup). Validated against the
/// simulator by the xmtsmith differential oracle, which compiles every
/// fuzz program at -O0/-O1/-O2.
bool rangeSimplify(IrFunc& fn);

/// Replaces eligible (non-volatile, word) stores with non-blocking stores
/// and inserts the memory fences the XMT memory model requires before
/// ps/psm/spawn (Section IV-A).
void applyNonBlockingStores(IrFunc& fn);

/// Inserts prefetches in parallel blocks: for groups of loads in the same
/// block with independent address computations, hoists the address
/// computation of later loads above the first and issues `pref`, so the
/// loads overlap (the compiler prefetching of paper ref. [8]).
/// `depth` bounds the number of outstanding prefetches per group.
void insertPrefetches(IrFunc& fn, int depth);

/// Safety net for the outlining guarantee: no virtual register defined in a
/// parallel block may be used in a serial block. Throws InternalError.
void verifyParallelDataflow(const IrFunc& fn);

}  // namespace xmt
