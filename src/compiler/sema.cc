#include "src/compiler/sema.h"

#include <map>
#include <vector>

#include "src/common/error.h"
#include "src/compiler/diag.h"
#include "src/compiler/lexer.h"
#include "src/isa/isa.h"

namespace xmt {

bool isLvalue(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kVarRef:
      return e.decl != nullptr && !e.decl->isArray();
    case ExprKind::kIndex:
      return true;
    case ExprKind::kUnary:
      return e.opTok == static_cast<int>(Tok::kStar);  // *p
    default:
      return false;
  }
}

namespace {

class Sema {
 public:
  explicit Sema(TranslationUnit& tu) : tu_(tu) {}

  void run() {
    int nextGr = 0;
    for (auto& g : tu_.globals) {
      declare(g.get());
      if (g->isPsBaseReg) {
        if (nextGr > 5)
          throw CompileError(g->line,
                             "too many psBaseReg variables (at most 6: the "
                             "hardware reserves gr6/gr7 for spawn)");
        g->grIndex = nextGr++;
      }
      if (g->dims.size() > 1)
        throw CompileError(g->line,
                           "multi-dimensional arrays are not supported; "
                           "flatten the index manually");
      for (auto& init : g->init) {
        checkExpr(*init);
        if (init->kind != ExprKind::kIntLit &&
            init->kind != ExprKind::kFloatLit)
          throw CompileError(g->line,
                             "global initializers must be constants");
      }
      if (!g->init.empty() && g->isArray() &&
          static_cast<std::int64_t>(g->init.size()) > g->elementCount())
        throw CompileError(g->line, "too many initializers");
    }
    for (auto& f : tu_.funcs) checkFunction(*f);
    if (tu_.findFunc("main") == nullptr)
      throw CompileError(1, "no 'main' function");
  }

 private:
  [[noreturn]] void fail(int line, const std::string& msg) {
    throw CompileError(line, msg);
  }

  void declare(VarDecl* d) {
    auto& scope = scopes_.empty() ? globalScope_ : scopes_.back();
    if (!scope.emplace(d->name, d).second)
      fail(d->line, "redefinition of '" + d->name + "'");
  }

  VarDecl* lookup(const std::string& name, int line) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) return f->second;
    }
    auto f = globalScope_.find(name);
    if (f != globalScope_.end()) return f->second;
    fail(line, "use of undeclared identifier '" + name + "'");
  }

  void checkFunction(FuncDecl& f) {
    if (f.params.size() > 8)
      fail(f.line,
           "at most 8 parameters are supported (register-passed: a0-a3 "
           "then t0-t3)");
    curFunc_ = &f;
    scopes_.emplace_back();
    for (auto& p : f.params) declare(p.get());
    checkStmt(*f.body);
    scopes_.pop_back();
    curFunc_ = nullptr;
  }

  void checkStmt(Stmt& s) {
    switch (s.kind) {
      case StmtKind::kExpr:
        checkExpr(*s.expr);
        break;
      case StmtKind::kDecl:
        for (auto& d : s.decls) checkLocalDecl(*d, s.line);
        break;
      case StmtKind::kIf:
        checkCondition(*s.expr);
        checkStmt(*s.body);
        if (s.elseBody) checkStmt(*s.elseBody);
        break;
      case StmtKind::kWhile:
      case StmtKind::kDoWhile:
        checkCondition(*s.expr);
        ++loopDepth_;
        checkStmt(*s.body);
        --loopDepth_;
        break;
      case StmtKind::kFor:
        scopes_.emplace_back();
        for (auto& d : s.decls) checkLocalDecl(*d, s.line);
        if (s.expr) checkExpr(*s.expr);
        if (s.expr2) checkCondition(*s.expr2);
        if (s.expr3) checkExpr(*s.expr3);
        ++loopDepth_;
        checkStmt(*s.body);
        --loopDepth_;
        scopes_.pop_back();
        break;
      case StmtKind::kBlock:
        scopes_.emplace_back();
        for (auto& sub : s.stmts) checkStmt(*sub);
        scopes_.pop_back();
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loopDepth_ == 0) fail(s.line, "break/continue outside a loop");
        break;
      case StmtKind::kReturn:
        if (s.expr) {
          checkExpr(*s.expr);
          if (curFunc_->retType.isVoid())
            fail(s.line, "return with a value in a void function");
          coerce(s.expr, curFunc_->retType);
        } else if (!curFunc_->retType.isVoid()) {
          fail(s.line, "return without a value in a non-void function");
        }
        if (spawnDepth_ > 0)
          fail(s.line, "return inside a spawn block is not allowed");
        break;
      case StmtKind::kSpawn: {
        checkExpr(*s.expr);
        checkExpr(*s.expr2);
        coerce(s.expr, TypeRef::Int());
        coerce(s.expr2, TypeRef::Int());
        ++spawnDepth_;
        int savedLoop = loopDepth_;
        loopDepth_ = 0;  // break must not escape the spawn block
        checkStmt(*s.body);
        loopDepth_ = savedLoop;
        --spawnDepth_;
        break;
      }
      case StmtKind::kEmpty:
        break;
      case StmtKind::kPrintf:
        checkPrintf(s);
        break;
    }
  }

  void checkLocalDecl(VarDecl& d, int line) {
    if (d.dims.size() > 1)
      fail(line, "multi-dimensional arrays are not supported");
    if (spawnDepth_ > 0) {
      // "virtual threads can only use registers or global memory" — no
      // parallel stack in the current release.
      if (d.isArray())
        fail(line, "local arrays inside a spawn block are not supported "
                   "(no parallel stack)");
      if (d.isVolatile)
        fail(line, "volatile locals inside a spawn block are not supported");
    }
    if (d.init.size() > 1 && !d.isArray())
      fail(line, "scalar with brace initializer list");
    declare(&d);
    for (auto& init : d.init) {
      checkExpr(*init);
      if (!d.isArray()) coerce(d.init[0], d.type);
    }
  }

  void checkCondition(Expr& e) {
    checkExpr(e);
    if (e.type.isVoid()) fail(e.line, "void value used as condition");
  }

  void checkPrintf(Stmt& s) {
    std::size_t argIdx = 0;
    const std::string& f = s.strVal;
    for (std::size_t i = 0; i < f.size(); ++i) {
      if (f[i] != '%') continue;
      if (i + 1 >= f.size()) fail(s.line, "trailing '%' in format");
      char c = f[++i];
      if (c == '%') continue;
      if (c != 'd' && c != 'u' && c != 'c' && c != 'f' && c != 's')
        fail(s.line, std::string("unsupported format '%") + c + "'");
      if (argIdx >= s.args.size()) fail(s.line, "not enough printf arguments");
      checkExpr(*s.args[argIdx]);
      if (c == 'f') coerce(s.args[argIdx], TypeRef::Float());
      else if (c == 's') {
        const TypeRef& t = s.args[argIdx]->type;
        if (!(t.ptr == 1 && t.base == TypeRef::Base::kChar) &&
            s.args[argIdx]->kind != ExprKind::kStrLit)
          fail(s.line, "%s needs a char* argument");
      } else coerce(s.args[argIdx], TypeRef::Int());
      ++argIdx;
    }
    if (argIdx != s.args.size()) fail(s.line, "too many printf arguments");
  }

  // Inserts a cast so that `e` has type `to` (numeric conversions only).
  void coerce(ExprPtr& e, TypeRef to) {
    if (e->type == to) return;
    if (e->type.isPointer() && to.isPointer()) return;  // loose
    if (e->type.isPointer() && to.isIntegral()) return;
    if (e->type.isIntegral() && to.isPointer()) return;
    if (e->type.isIntegral() && to.isIntegral()) {
      // Same register representation (lbu zero-extends chars; stores
      // truncate). Crucially, do NOT retype the node: an lvalue like a
      // char-array element must keep its type, which drives the addressing
      // scale and load/store width during lowering.
      return;
    }
    if ((e->type.isIntegral() && to.isFloat()) ||
        (e->type.isFloat() && to.isIntegral())) {
      auto cast = std::make_unique<Expr>(ExprKind::kCast);
      cast->line = e->line;
      cast->type = to;
      cast->a = std::move(e);
      e = std::move(cast);
      return;
    }
    if (e->type.isFloat() && to.isFloat()) return;
    fail(e->line, "cannot convert " + e->type.str() + " to " + to.str());
  }

  void checkExpr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kIntLit:
        e.type = TypeRef::Int();
        break;
      case ExprKind::kFloatLit:
        e.type = TypeRef::Float();
        break;
      case ExprKind::kStrLit:
        e.type = TypeRef::Char().pointerTo();
        break;
      case ExprKind::kVarRef: {
        e.decl = lookup(e.strVal, e.line);
        if (e.decl->isArray())
          e.type = e.decl->type.pointerTo();  // decay
        else
          e.type = e.decl->type;
        break;
      }
      case ExprKind::kDollar:
        if (spawnDepth_ == 0) {
          Diagnostic d;
          d.code = DiagCode::kDollarOutsideSpawn;
          d.severity = Severity::kError;
          d.line = e.line;
          d.message =
              "'$' (the virtual thread ID) is only defined inside a spawn "
              "block";
          throw DiagnosticError(std::move(d));
        }
        e.type = TypeRef::Int();
        break;
      case ExprKind::kUnary: {
        checkExpr(*e.a);
        Tok op = static_cast<Tok>(e.opTok);
        if (op == Tok::kStar) {
          if (!e.a->type.isPointer())
            fail(e.line, "dereference of non-pointer");
          e.type = e.a->type.pointee();
        } else if (op == Tok::kAmp) {
          if (!isLvalue(*e.a) && !(e.a->kind == ExprKind::kVarRef &&
                                   e.a->decl->isArray()))
            fail(e.line, "cannot take the address of this expression");
          if (e.a->kind == ExprKind::kVarRef) {
            e.a->decl->addrTaken = true;
            if (e.a->decl->isPsBaseReg)
              fail(e.line, "cannot take the address of a psBaseReg variable");
            e.type = e.a->decl->isArray() ? e.a->decl->type.pointerTo()
                                          : e.a->type.pointerTo();
          } else {
            e.type = e.a->type.pointerTo();
          }
        } else if (op == Tok::kMinus || op == Tok::kTilde) {
          if (op == Tok::kTilde && e.a->type.isFloat())
            fail(e.line, "'~' on float");
          e.type = e.a->type.isFloat() ? TypeRef::Float() : TypeRef::Int();
        } else {  // !
          e.type = TypeRef::Int();
        }
        break;
      }
      case ExprKind::kBinary: {
        checkExpr(*e.a);
        checkExpr(*e.b);
        Tok op = static_cast<Tok>(e.opTok);
        bool cmp = op == Tok::kEq || op == Tok::kNe || op == Tok::kLt ||
                   op == Tok::kGt || op == Tok::kLe || op == Tok::kGe;
        bool logical = op == Tok::kAmpAmp || op == Tok::kPipePipe;
        if (logical) {
          e.type = TypeRef::Int();
          break;
        }
        // Pointer arithmetic: ptr +/- int.
        if (e.a->type.isPointer() || e.b->type.isPointer()) {
          if (cmp) {
            e.type = TypeRef::Int();
            break;
          }
          if (op != Tok::kPlus && op != Tok::kMinus)
            fail(e.line, "invalid pointer arithmetic");
          if (e.a->type.isPointer() && e.b->type.isPointer())
            fail(e.line, "pointer - pointer is not supported");
          e.type = e.a->type.isPointer() ? e.a->type : e.b->type;
          break;
        }
        bool anyFloat = e.a->type.isFloat() || e.b->type.isFloat();
        if (anyFloat) {
          if (op == Tok::kPercent || op == Tok::kShl || op == Tok::kShr ||
              op == Tok::kAmp || op == Tok::kPipe || op == Tok::kCaret)
            fail(e.line, "integer operator on float operands");
          coerce(e.a, TypeRef::Float());
          coerce(e.b, TypeRef::Float());
          e.type = cmp ? TypeRef::Int() : TypeRef::Float();
        } else {
          bool anyUnsigned =
              e.a->type.isUnsigned() || e.b->type.isUnsigned();
          e.type = cmp ? TypeRef::Int()
                       : (anyUnsigned ? TypeRef::UInt() : TypeRef::Int());
        }
        break;
      }
      case ExprKind::kAssign: {
        checkExpr(*e.a);
        checkExpr(*e.b);
        if (!isLvalue(*e.a)) fail(e.line, "assignment to non-lvalue");
        if (e.a->kind == ExprKind::kVarRef && e.a->decl->isPsBaseReg &&
            spawnDepth_ > 0)
          fail(e.line,
               "psBaseReg variables can only be modified with ps() inside "
               "a spawn block");
        coerce(e.b, e.a->type);
        e.type = e.a->type;
        break;
      }
      case ExprKind::kCond:
        checkCondition(*e.c);
        checkExpr(*e.a);
        checkExpr(*e.b);
        if (e.a->type.isFloat() || e.b->type.isFloat()) {
          coerce(e.a, TypeRef::Float());
          coerce(e.b, TypeRef::Float());
          e.type = TypeRef::Float();
        } else {
          e.type = e.a->type;
        }
        break;
      case ExprKind::kCall: {
        FuncDecl* callee = tu_.findFunc(e.strVal);
        if (callee == nullptr)
          fail(e.line, "call to undefined function '" + e.strVal + "'");
        if (e.args.size() != callee->params.size())
          fail(e.line, "'" + e.strVal + "' expects " +
                           std::to_string(callee->params.size()) +
                           " arguments");
        for (std::size_t i = 0; i < e.args.size(); ++i) {
          checkExpr(*e.args[i]);
          coerce(e.args[i], callee->params[i]->type);
        }
        e.type = callee->retType;
        if (spawnDepth_ > 0) sawCallInSpawn_ = true;
        break;
      }
      case ExprKind::kIndex: {
        checkExpr(*e.a);
        checkExpr(*e.b);
        if (!e.a->type.isPointer())
          fail(e.line, "subscript of non-array, non-pointer value");
        coerce(e.b, TypeRef::Int());
        e.type = e.a->type.pointee();
        break;
      }
      case ExprKind::kCast:
        checkExpr(*e.a);
        // e.type already set by the parser.
        break;
      case ExprKind::kIncDec:
        checkExpr(*e.a);
        if (!isLvalue(*e.a)) fail(e.line, "++/-- on non-lvalue");
        if (e.a->type.isFloat()) fail(e.line, "++/-- on float");
        e.type = e.a->type;
        break;
      case ExprKind::kPs: {
        checkExpr(*e.a);
        checkExpr(*e.b);
        if (!isLvalue(*e.a))
          fail(e.line, "ps: first argument must be an assignable variable");
        if (e.b->kind != ExprKind::kVarRef || !e.b->decl->isPsBaseReg)
          fail(e.line, "ps: base must be a psBaseReg variable");
        e.type = TypeRef::Int();
        break;
      }
      case ExprKind::kPsm: {
        checkExpr(*e.a);
        checkExpr(*e.b);
        if (!isLvalue(*e.a))
          fail(e.line, "psm: first argument must be an assignable variable");
        if (!isLvalue(*e.b))
          fail(e.line, "psm: base must be a memory location");
        if (e.b->kind == ExprKind::kVarRef && e.b->decl->isPsBaseReg)
          fail(e.line, "psm: base must be in memory, not a psBaseReg");
        e.type = TypeRef::Int();
        break;
      }
      case ExprKind::kSizeof:
        if (e.a) {
          checkExpr(*e.a);
          e.intVal = e.a->kind == ExprKind::kVarRef && e.a->decl->isArray()
                         ? e.a->decl->elementCount() * e.a->decl->type.size()
                         : e.a->type.size();
        }
        e.type = TypeRef::Int();
        break;
    }
  }

  TranslationUnit& tu_;
  std::map<std::string, VarDecl*> globalScope_;
  std::vector<std::map<std::string, VarDecl*>> scopes_;
  FuncDecl* curFunc_ = nullptr;
  int spawnDepth_ = 0;
  int loopDepth_ = 0;
  bool sawCallInSpawn_ = false;
};

}  // namespace

void analyze(TranslationUnit& tu) { Sema(tu).run(); }

}  // namespace xmt
