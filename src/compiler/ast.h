// XMTC abstract syntax tree.
//
// Nodes are owned through std::unique_ptr; passes dispatch on `kind`. Types
// are a small value type (scalars plus pointers, arrays carried as
// dimensions on declarations). The AST survives three source-to-source
// passes before lowering: parallel-call inlining, virtual-thread clustering,
// and the CIL-style outlining pre-pass (Section IV-B of the paper).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace xmt {

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

struct TypeRef {
  enum class Base : std::uint8_t { kVoid, kInt, kUInt, kFloat, kChar };
  Base base = Base::kInt;
  int ptr = 0;  // pointer depth: int* has ptr=1

  bool isPointer() const { return ptr > 0; }
  bool isFloat() const { return base == Base::kFloat && ptr == 0; }
  bool isVoid() const { return base == Base::kVoid && ptr == 0; }
  bool isChar() const { return base == Base::kChar && ptr == 0; }
  bool isUnsigned() const { return base == Base::kUInt && ptr == 0; }
  bool isIntegral() const {
    return !isPointer() && (base == Base::kInt || base == Base::kUInt ||
                            base == Base::kChar);
  }
  TypeRef pointee() const {
    TypeRef t = *this;
    t.ptr -= 1;
    return t;
  }
  TypeRef pointerTo() const {
    TypeRef t = *this;
    t.ptr += 1;
    return t;
  }
  /// Size of a value of this type in bytes.
  int size() const {
    if (ptr > 0) return 4;
    return base == Base::kChar ? 1 : 4;
  }
  bool operator==(const TypeRef& o) const {
    return base == o.base && ptr == o.ptr;
  }
  std::string str() const;

  static TypeRef Int() { return {Base::kInt, 0}; }
  static TypeRef UInt() { return {Base::kUInt, 0}; }
  static TypeRef Float() { return {Base::kFloat, 0}; }
  static TypeRef Char() { return {Base::kChar, 0}; }
  static TypeRef Void() { return {Base::kVoid, 0}; }
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

/// Variable declaration: global, local, or function parameter.
struct VarDecl {
  std::string name;
  TypeRef type;
  std::vector<int> dims;  // array dimensions; empty for scalars
  bool isGlobal = false;
  bool isParam = false;
  bool isVolatile = false;
  bool isPsBaseReg = false;
  int grIndex = -1;  // psBaseReg allocation (gr0..gr5)
  int line = 0;

  // Sema annotations.
  bool addrTaken = false;
  bool writtenInSpawn = false;  // for outlining: pass by reference
  bool isArray() const { return !dims.empty(); }
  /// Element count of the (flattened) array.
  std::int64_t elementCount() const {
    std::int64_t n = 1;
    for (int d : dims) n *= d;
    return n;
  }
  std::vector<ExprPtr> init;  // initializer(s); for arrays, a flat list
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  kIntLit, kFloatLit, kStrLit,
  kVarRef,       // resolved to a VarDecl by sema
  kDollar,       // $ — the virtual thread ID
  kUnary,        // op in `opTok`: - ! ~ * (deref) & (addr-of)
  kBinary,       // arithmetic / comparison / logical (&& and || lower with
                 // short-circuit)
  kAssign,       // lhs opTok= rhs (opTok == kAssign for plain '=')
  kCond,         // c ? t : f
  kCall,         // user function call
  kIndex,        // base[index]
  kCast,         // (type) sub
  kIncDec,       // ++/--; `prefix` selects form
  kPs,           // ps(inc, psBaseRegVar)
  kPsm,          // psm(inc, lvalue)
  kSizeof,
};

struct Expr {
  ExprKind kind;
  int line = 0;
  TypeRef type;  // set by sema

  std::int64_t intVal = 0;   // kIntLit / kSizeof result
  double floatVal = 0.0;     // kFloatLit
  std::string strVal;        // kStrLit contents / kCall callee name
  VarDecl* decl = nullptr;   // kVarRef target

  int opTok = 0;             // Tok as int, for unary/binary/assign
  bool prefix = false;       // kIncDec

  ExprPtr a, b, c;           // operands (lhs/rhs/condition arms)
  std::vector<ExprPtr> args; // kCall arguments / kPrintf args

  explicit Expr(ExprKind k) : kind(k) {}
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  kExpr, kDecl, kIf, kWhile, kDoWhile, kFor, kBlock, kBreak, kContinue,
  kReturn, kSpawn, kEmpty, kPrintf,
};

struct Stmt {
  StmtKind kind;
  int line = 0;

  ExprPtr expr;           // kExpr / kReturn value / kIf-kWhile condition
  ExprPtr expr2, expr3;   // kFor: init uses `decls` or expr; cond expr2; step expr3
  std::vector<std::unique_ptr<VarDecl>> decls;  // kDecl / kFor init decls
  std::vector<ExprPtr> declInitsLowered;        // unused placeholder
  StmtPtr body, elseBody;
  std::vector<StmtPtr> stmts;  // kBlock

  // kSpawn: expr = low, expr2 = high, body = spawn block.
  // kPrintf: strVal format, args.
  std::string strVal;
  std::vector<ExprPtr> args;

  explicit Stmt(StmtKind k) : kind(k) {}
};

// ---------------------------------------------------------------------------
// Functions and translation unit
// ---------------------------------------------------------------------------

struct FuncDecl {
  std::string name;
  TypeRef retType;
  std::vector<std::unique_ptr<VarDecl>> params;
  StmtPtr body;  // kBlock
  int line = 0;
  bool generatedByOutlining = false;
};

struct TranslationUnit {
  std::vector<std::unique_ptr<VarDecl>> globals;
  std::vector<std::unique_ptr<FuncDecl>> funcs;

  FuncDecl* findFunc(const std::string& name) {
    for (auto& f : funcs)
      if (f->name == name) return f.get();
    return nullptr;
  }
};

/// Pretty-prints the (possibly transformed) AST back to XMTC source — used
/// by the compiler-explorer example to show the outlining pre-pass output.
std::string printAst(const TranslationUnit& tu);

}  // namespace xmt
