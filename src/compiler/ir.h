// Three-address intermediate representation of the XMTC core pass.
//
// Virtual registers are integers; ids 0..31 are precolored to the machine
// registers of the same number (used for calling convention and syscall
// argument staging). Blocks form a CFG; block order is also the emission
// layout. Blocks lowered from a spawn body carry `parallel = true` — the
// optimizer uses this to refuse transformations that would constitute the
// paper's "illegal dataflow", and the register allocator uses it to turn
// spills inside spawn blocks into the compile error the paper mandates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/isa/isa.h"

namespace xmt {

enum class IOp : std::uint8_t {
  // Register-register ALU (dst, a, b).
  kAdd, kSub, kMul, kDiv, kRem, kAnd, kOr, kXor, kNor,
  kSlt, kSltu, kSllv, kSrlv, kSrav,
  kFadd, kFsub, kFmul, kFdiv, kFeq, kFlt, kFle,
  // Register-immediate ALU (dst, a, imm).
  kAddi, kAndi, kOri, kXori, kSlti, kSll, kSrl, kSra,
  // Conversions (dst, a).
  kCvtif, kCvtfi,
  // Materialization.
  kLi,        // dst = imm
  kLa,        // dst = &sym + imm
  kCopy,      // dst = a
  kGetTid,    // dst = $  (virtual thread ID)
  kFrameAddr, // dst = sp + imm  (stack slot address; serial code only)
  // Memory (address = a + imm; value = b for stores, dst for loads).
  kLoadW, kLoadB, kStoreW, kStoreB,
  kPref,      // prefetch a+imm
  kFence,
  // Prefix-sum.
  kPs,        // dst = fetch-add(gr[imm], a); a = increment
  kPsm,       // dst = fetch-add(mem[a+imm], b)
  kMtgr,      // gr[imm] = a
  kMfgr,      // dst = gr[imm]
  // Control.
  kCall,      // sym(args...); dst = v0 copy handled separately
  kRet,
  kBr,        // if rel(a, b) goto t1 else t2
  kJmp,       // goto t1
  kSpawn,     // spawn: body entry = t1, continuation = t2
  kJoin,
  kSys,       // syscall imm; argument pre-staged in a0 (operand a for
              // liveness)
  kHalt,
};

struct IrInstr {
  IOp op;
  int dst = -1;
  int a = -1;
  int b = -1;
  std::int32_t imm = 0;
  Op rel = Op::kBeq;          // kBr relation (machine branch opcode)
  int t1 = -1, t2 = -1;       // block targets
  std::string sym;            // kLa / kCall
  std::vector<int> args;      // kCall argument vregs (staged to phys regs)
  int srcLine = 0;
  bool nonBlocking = false;   // kStoreW: lowered to swnb
  bool volatileMem = false;   // suppresses nb-store / prefetch optimization
  bool readOnlyHint = false;  // kLoadW eligible for the read-only cache

  explicit IrInstr(IOp o) : op(o) {}
  bool isTerminator() const {
    return op == IOp::kBr || op == IOp::kJmp || op == IOp::kRet ||
           op == IOp::kJoin || op == IOp::kHalt;
  }
};

struct IrBlock {
  int id = 0;
  bool parallel = false;
  std::vector<IrInstr> instrs;
};

struct IrFunc {
  std::string name;
  int nParams = 0;
  int nextVreg = kNumRegs;  // 0..31 are precolored physical registers
  std::vector<IrBlock> blocks;
  bool hasCalls = false;
  bool isMain = false;
  int frameWords = 0;  // local stack slots (before spills)
  /// Source names of vregs holding named locals/params — diagnostics only
  /// (lets the race lint name the pointer behind an unresolved write).
  std::map<int, std::string> vregNames;

  int newVreg() { return nextVreg++; }
  IrBlock& block(int id) { return blocks[static_cast<std::size_t>(id)]; }
};

struct IrData {
  enum class Kind : std::uint8_t { kWords, kSpace, kAscii };
  std::string label;
  Kind kind = Kind::kWords;
  std::vector<std::uint32_t> words;
  std::uint32_t spaceBytes = 0;
  std::string str;
  bool exported = false;
};

struct IrModule {
  std::vector<IrFunc> funcs;
  std::vector<IrData> data;
};

/// Debug dump of a function's IR.
std::string dumpIr(const IrFunc& f);

}  // namespace xmt
