// Source-to-source AST transforms: the CIL-role pre-passes of the XMTC
// compiler (paper Section IV-B and IV-C).
//
//  - outlineSpawnBlocks: method extraction of every top-level spawn
//    statement into a fresh function, passing accessed enclosing-scope
//    variables by value or — when the spawn block may write them — by
//    reference (Fig. 8). This is what prevents the serial core-pass from
//    performing illegal dataflow across spawn boundaries.
//  - clusterVirtualThreads: virtual-thread clustering / coarsening — groups
//    fine-grained virtual threads into longer ones to amortize scheduling
//    overhead and enable prefetching (Section IV-C).
//  - inlineParallelCalls: inlines expression-bodied functions called inside
//    spawn blocks; there is no parallel (cactus) stack yet, so calls cannot
//    survive into parallel code.
#pragma once

#include "src/compiler/ast.h"

namespace xmt {

/// Outlines every spawn statement not nested in another spawn. Must run
/// after analyze(). Appends generated functions to the translation unit.
void outlineSpawnBlocks(TranslationUnit& tu);

/// Coarsens each spawn(lo, hi) into at most `clusterCount` longer virtual
/// threads, each iterating a contiguous chunk. Must run after analyze() and
/// before outlineSpawnBlocks().
void clusterVirtualThreads(TranslationUnit& tu, int clusterCount);

/// Inlines calls inside spawn blocks whose callee body is a single
/// `return expr;`. Throws CompileError for calls it cannot inline (they
/// would need a parallel stack). Must run after analyze().
void inlineParallelCalls(TranslationUnit& tu);

}  // namespace xmt
