#include "src/compiler/opt.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/common/error.h"
#include "src/compiler/analysis/dataflow.h"
#include "src/compiler/analysis/xmtai.h"

namespace xmt {

using analysis::collectUses;
using analysis::successors;

namespace {

bool isPure(IOp op) {
  switch (op) {
    case IOp::kAdd: case IOp::kSub: case IOp::kMul: case IOp::kDiv:
    case IOp::kRem: case IOp::kAnd: case IOp::kOr: case IOp::kXor:
    case IOp::kNor: case IOp::kSlt: case IOp::kSltu: case IOp::kSllv:
    case IOp::kSrlv: case IOp::kSrav: case IOp::kFadd: case IOp::kFsub:
    case IOp::kFmul: case IOp::kFdiv: case IOp::kFeq: case IOp::kFlt:
    case IOp::kFle: case IOp::kAddi: case IOp::kAndi: case IOp::kOri:
    case IOp::kXori: case IOp::kSlti: case IOp::kSll: case IOp::kSrl:
    case IOp::kSra: case IOp::kCvtif: case IOp::kCvtfi: case IOp::kLi:
    case IOp::kLa: case IOp::kCopy: case IOp::kGetTid: case IOp::kFrameAddr:
    case IOp::kMfgr:
      return true;
    default:
      return false;
  }
}

// kDiv/kRem can trap on zero; exclude them from folding removal when the
// divisor is an unknown value, and from DCE entirely (conservative).
bool isRemovableIfDead(const IrInstr& in) {
  if (in.op == IOp::kDiv || in.op == IOp::kRem) return false;
  if (isPure(in.op)) return true;
  if ((in.op == IOp::kLoadW || in.op == IOp::kLoadB) && !in.volatileMem)
    return true;
  return false;
}

void removeUnreachable(IrFunc& fn) {
  analysis::Cfg cfg = analysis::buildCfg(fn);
  for (std::size_t i = 0; i < fn.blocks.size(); ++i)
    if (!cfg.reachable[i]) fn.blocks[i].instrs.clear();
}

std::int32_t foldAlu(IOp op, std::int32_t a, std::int32_t b, bool& ok) {
  ok = true;
  auto ua = static_cast<std::uint32_t>(a);
  auto ub = static_cast<std::uint32_t>(b);
  switch (op) {
    case IOp::kAdd: case IOp::kAddi: return static_cast<std::int32_t>(ua + ub);
    case IOp::kSub: return static_cast<std::int32_t>(ua - ub);
    case IOp::kMul:
      return static_cast<std::int32_t>(static_cast<std::int64_t>(a) * b);
    case IOp::kAnd: case IOp::kAndi: return a & b;
    case IOp::kOr: case IOp::kOri: return a | b;
    case IOp::kXor: case IOp::kXori: return a ^ b;
    case IOp::kNor: return ~(a | b);
    case IOp::kSlt: case IOp::kSlti: return a < b ? 1 : 0;
    case IOp::kSltu: return ua < ub ? 1 : 0;
    case IOp::kSllv: case IOp::kSll:
      return static_cast<std::int32_t>(ua << (ub & 31));
    case IOp::kSrlv: case IOp::kSrl:
      return static_cast<std::int32_t>(ua >> (ub & 31));
    case IOp::kSrav: case IOp::kSra: return a >> (ub & 31);
    case IOp::kDiv:
      if (b == 0) { ok = false; return 0; }
      if (a == INT32_MIN && b == -1) return a;
      return a / b;
    case IOp::kRem:
      if (b == 0) { ok = false; return 0; }
      if (a == INT32_MIN && b == -1) return 0;
      return a % b;
    default:
      ok = false;
      return 0;
  }
}

bool isImmForm(IOp op) {
  switch (op) {
    case IOp::kAddi: case IOp::kAndi: case IOp::kOri: case IOp::kXori:
    case IOp::kSlti: case IOp::kSll: case IOp::kSrl: case IOp::kSra:
      return true;
    default:
      return false;
  }
}

bool isRegAlu(IOp op) {
  switch (op) {
    case IOp::kAdd: case IOp::kSub: case IOp::kMul: case IOp::kDiv:
    case IOp::kRem: case IOp::kAnd: case IOp::kOr: case IOp::kXor:
    case IOp::kNor: case IOp::kSlt: case IOp::kSltu: case IOp::kSllv:
    case IOp::kSrlv: case IOp::kSrav:
      return true;
    default:
      return false;
  }
}

// Block-local constant folding and copy propagation. Only vregs >= 32 are
// tracked (physical registers are clobbered by calls and convention).
void localValueNumbering(IrFunc& fn) {
  for (auto& blk : fn.blocks) {
    std::map<int, std::int32_t> constOf;
    std::map<int, int> copyOf;
    auto resolve = [&](int v) {
      auto it = copyOf.find(v);
      return it == copyOf.end() ? v : it->second;
    };
    auto constVal = [&](int v, std::int32_t& out) {
      if (v == 0) {  // the zero register
        out = 0;
        return true;
      }
      auto it = constOf.find(v);
      if (it == constOf.end()) return false;
      out = it->second;
      return true;
    };
    auto invalidate = [&](int v) {
      constOf.erase(v);
      copyOf.erase(v);
      for (auto it = copyOf.begin(); it != copyOf.end();) {
        if (it->second == v) it = copyOf.erase(it);
        else ++it;
      }
    };
    for (auto& in : blk.instrs) {
      if (in.a >= 32) in.a = resolve(in.a);
      if (in.b >= 32) in.b = resolve(in.b);
      for (auto& v : in.args)
        if (v >= 32) v = resolve(v);

      // Fold register-ALU with constant operands.
      if (isRegAlu(in.op) && in.dst >= 32) {
        std::int32_t ca, cb;
        bool hasA = constVal(in.a, ca), hasB = constVal(in.b, cb);
        if (hasA && hasB) {
          bool ok;
          std::int32_t r = foldAlu(in.op, ca, cb, ok);
          if (ok) {
            in.op = IOp::kLi;
            in.imm = r;
            in.a = in.b = -1;
          }
        }
      }
      if (isImmForm(in.op) && in.dst >= 32) {
        std::int32_t ca;
        if (constVal(in.a, ca)) {
          bool ok;
          std::int32_t r = foldAlu(in.op, ca, in.imm, ok);
          if (ok) {
            in.op = IOp::kLi;
            in.imm = r;
            in.a = -1;
          }
        }
      }
      if (in.op == IOp::kCopy && in.dst >= 32) {
        std::int32_t c;
        if (constVal(in.a, c)) {
          in.op = IOp::kLi;
          in.imm = c;
          in.a = -1;
        }
      }
      // Fold constant branches.
      if (in.op == IOp::kBr) {
        std::int32_t ca, cb;
        if (constVal(in.a, ca) && constVal(in.b, cb)) {
          bool taken = false;
          switch (in.rel) {
            case Op::kBeq: taken = ca == cb; break;
            case Op::kBne: taken = ca != cb; break;
            case Op::kBlt: taken = ca < cb; break;
            case Op::kBle: taken = ca <= cb; break;
            case Op::kBgt: taken = ca > cb; break;
            case Op::kBge: taken = ca >= cb; break;
            default: break;
          }
          in.op = IOp::kJmp;
          in.t1 = taken ? in.t1 : in.t2;
          in.t2 = -1;
          in.a = in.b = -1;
        }
      }

      // Record facts about the def.
      if (in.dst >= 0) {
        invalidate(in.dst);
        if (in.dst >= 32) {
          if (in.op == IOp::kLi) constOf[in.dst] = in.imm;
          else if (in.op == IOp::kCopy && in.a >= 32) copyOf[in.dst] = in.a;
        }
      }
    }
  }
}

void deadCodeElim(IrFunc& fn) {
  // Backward liveness over vregs (including physical for safety), solved by
  // the shared dataflow engine.
  analysis::Cfg cfg = analysis::buildCfg(fn);
  analysis::LivenessResult live = analysis::computeLiveness(fn, cfg);
  // Remove dead pure instructions, iterating within each block so a removed
  // instruction can in turn kill the instructions feeding it.
  for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
    IrBlock& b = fn.blocks[bi];
    analysis::BitSet liveNow = live.flow.out[bi];
    std::vector<IrInstr> kept;
    kept.reserve(b.instrs.size());
    std::vector<int> uses;
    for (std::size_t i = b.instrs.size(); i-- > 0;) {
      IrInstr& ins = b.instrs[i];
      bool dead = ins.dst >= 32 &&
                  !liveNow.test(static_cast<std::size_t>(ins.dst)) &&
                  isRemovableIfDead(ins);
      if (dead) continue;
      if (ins.op == IOp::kCopy && ins.dst == ins.a) continue;
      if (ins.dst >= 0) liveNow.reset(static_cast<std::size_t>(ins.dst));
      uses.clear();
      collectUses(ins, uses);
      for (int u : uses) liveNow.set(static_cast<std::size_t>(u));
      kept.push_back(std::move(ins));
    }
    std::reverse(kept.begin(), kept.end());
    b.instrs = std::move(kept);
  }
}

}  // namespace

bool rangeSimplify(IrFunc& fn) {
  analysis::AnalysisManager am;
  analysis::RangeAnalysis ra(fn, am, nullptr, nullptr);
  using analysis::VRange;

  // Collect rewrites against the unmutated ranges, then apply: every
  // rewrite is semantics-preserving on its own, so applying them together
  // is safe even though later ranges were computed over the original ops.
  bool changed = false;
  for (IrBlock& b : fn.blocks) {
    if (!ra.blockReachable(b.id)) continue;
    for (std::size_t i = 0; i < b.instrs.size(); ++i) {
      IrInstr& in = b.instrs[i];
      auto idx = static_cast<int>(i);
      auto rangeOf = [&](int reg) { return ra.rangeAt(b.id, idx, reg); };

      if (in.op == IOp::kBr) {
        VRange a = rangeOf(in.a), b2 = rangeOf(in.b);
        if (a.isEmpty() || b2.isEmpty()) continue;
        int decided = -1;  // 0 = never taken, 1 = always taken
        switch (in.rel) {
          case Op::kBeq:
            if (a.isConst() && b2.isConst() && a.lo == b2.lo) decided = 1;
            else if (a.hi < b2.lo || b2.hi < a.lo) decided = 0;
            break;
          case Op::kBne:
            if (a.hi < b2.lo || b2.hi < a.lo) decided = 1;
            else if (a.isConst() && b2.isConst() && a.lo == b2.lo) decided = 0;
            break;
          case Op::kBlt:
            if (a.hi < b2.lo) decided = 1;
            else if (a.lo >= b2.hi) decided = 0;
            break;
          case Op::kBle:
            if (a.hi <= b2.lo) decided = 1;
            else if (a.lo > b2.hi) decided = 0;
            break;
          case Op::kBgt:
            if (a.lo > b2.hi) decided = 1;
            else if (a.hi <= b2.lo) decided = 0;
            break;
          case Op::kBge:
            if (a.lo >= b2.hi) decided = 1;
            else if (a.hi < b2.lo) decided = 0;
            break;
          default:
            break;
        }
        if (decided < 0) continue;
        in.op = IOp::kJmp;
        in.t1 = decided == 1 ? in.t1 : in.t2;
        in.t2 = -1;
        in.a = in.b = -1;
        changed = true;
        continue;
      }

      if (in.dst < 32) continue;

      // Any pure computation whose result range collapsed to one value.
      // kDiv/kRem are implicitly trap-free here: div32/rem32 only produce
      // a constant when the divisor range excludes zero.
      if (isPure(in.op) && in.op != IOp::kLi && in.op != IOp::kCopy &&
          in.op != IOp::kLa && in.op != IOp::kFrameAddr) {
        VRange r = ra.rangeAt(b.id, idx + 1, in.dst);
        if (r.isConst()) {
          in.op = IOp::kLi;
          in.imm = static_cast<std::int32_t>(r.lo);
          in.a = in.b = -1;
          changed = true;
          continue;
        }
      }

      if (in.op == IOp::kDiv || in.op == IOp::kRem) {
        VRange d = rangeOf(in.b);
        if (!d.isConst()) continue;
        std::int64_t c = d.lo;
        if (c == 1) {
          if (in.op == IOp::kDiv) {
            in.op = IOp::kCopy;
          } else {
            in.op = IOp::kLi;
            in.imm = 0;
            in.a = -1;
          }
          in.b = -1;
          changed = true;
        } else if (c > 1 && (c & (c - 1)) == 0 && rangeOf(in.a).lo >= 0) {
          // x / 2^k == x >> k and x % 2^k == x & (2^k - 1) for x >= 0.
          if (in.op == IOp::kDiv) {
            in.op = IOp::kSra;
            in.imm = static_cast<std::int32_t>(__builtin_ctzll(
                static_cast<unsigned long long>(c)));
          } else {
            in.op = IOp::kAndi;
            in.imm = static_cast<std::int32_t>(c - 1);
          }
          in.b = -1;
          changed = true;
        }
        continue;
      }

      // Mask the operand range already satisfies.
      if (in.op == IOp::kAndi && in.imm >= 0) {
        VRange a = rangeOf(in.a);
        if (!a.isEmpty() && a.lo >= 0 && a.hi <= in.imm) {
          in.op = IOp::kCopy;
          in.imm = 0;
          changed = true;
        }
      }
    }
  }
  return changed;
}

void optimizeIr(IrFunc& fn, int level) {
  removeUnreachable(fn);
  if (level <= 0) return;
  for (int round = 0; round < 3; ++round) {
    localValueNumbering(fn);
    deadCodeElim(fn);
  }
  if (level >= 2 && rangeSimplify(fn)) {
    removeUnreachable(fn);
    localValueNumbering(fn);
    deadCodeElim(fn);
  }
}

void applyNonBlockingStores(IrFunc& fn) {
  bool anyStores = false;
  for (auto& b : fn.blocks)
    for (auto& in : b.instrs)
      if (in.op == IOp::kStoreW && !in.volatileMem) {
        in.nonBlocking = true;
        anyStores = true;
      } else if (in.op == IOp::kStoreB) {
        anyStores = true;
      }
  if (!anyStores) return;
  // Fences before ps/psm/spawn: the XMT memory model orders memory
  // operations relative to prefix-sums and spawn boundaries (Section IV-A).
  // Dirty tracking is block-local and assumes dirty at block entry.
  for (auto& b : fn.blocks) {
    std::vector<IrInstr> out;
    out.reserve(b.instrs.size());
    bool dirty = true;
    for (auto& in : b.instrs) {
      bool needsFence =
          in.op == IOp::kPs || in.op == IOp::kPsm || in.op == IOp::kSpawn;
      if (needsFence && dirty) {
        IrInstr f(IOp::kFence);
        f.srcLine = in.srcLine;
        out.push_back(f);
        dirty = false;
      }
      if (in.op == IOp::kFence) dirty = false;
      if (in.op == IOp::kStoreW || in.op == IOp::kStoreB) dirty = true;
      if (in.op == IOp::kCall) dirty = true;  // callee may store
      out.push_back(std::move(in));
    }
    b.instrs = std::move(out);
  }
}

void insertPrefetches(IrFunc& fn, int depth) {
  if (depth <= 0) return;
  for (auto& b : fn.blocks) {
    if (!b.parallel) continue;
    // The optimizable prefix of the block ends at the first instruction
    // that orders memory or transfers control.
    std::size_t prefixEnd = 0;
    while (prefixEnd < b.instrs.size()) {
      const IrInstr& in = b.instrs[prefixEnd];
      if (in.op == IOp::kStoreW || in.op == IOp::kStoreB ||
          in.op == IOp::kPs || in.op == IOp::kPsm || in.op == IOp::kFence ||
          in.op == IOp::kCall || in.op == IOp::kSys || in.isTerminator())
        break;
      ++prefixEnd;
    }
    // Find loads in the prefix.
    std::vector<std::size_t> loads;
    for (std::size_t i = 0; i < prefixEnd; ++i)
      if (b.instrs[i].op == IOp::kLoadW && !b.instrs[i].volatileMem)
        loads.push_back(i);
    if (loads.size() < 2) continue;
    if (loads.size() > static_cast<std::size_t>(depth))
      loads.resize(static_cast<std::size_t>(depth));

    std::size_t first = loads[0];
    // Def position of each vreg within the prefix.
    std::map<int, std::size_t> defPos;
    for (std::size_t i = 0; i < prefixEnd; ++i)
      if (b.instrs[i].dst >= 32) defPos[b.instrs[i].dst] = i;

    // For each later load, compute the pure backward slice of its address.
    std::set<std::size_t> moved;       // instructions hoisted above `first`
    std::vector<std::size_t> loadIdxs; // loads whose pref we insert
    std::set<int> loadResults;
    for (std::size_t li : loads) loadResults.insert(b.instrs[li].dst);

    for (std::size_t k = 1; k < loads.size(); ++k) {
      std::size_t li = loads[k];
      std::vector<std::size_t> slice;
      std::set<std::size_t> inSlice;
      bool ok = true;
      std::vector<int> work{b.instrs[li].a};
      while (!work.empty() && ok) {
        int v = work.back();
        work.pop_back();
        if (v < 32) continue;  // physical regs are stable here
        auto dp = defPos.find(v);
        if (dp == defPos.end() || dp->second < first) continue;  // already ok
        std::size_t di = dp->second;
        const IrInstr& def = b.instrs[di];
        if (!isPure(def.op) || loadResults.count(v) != 0 ||
            def.op == IOp::kDiv || def.op == IOp::kRem) {
          ok = false;
          break;
        }
        if (inSlice.insert(di).second) {
          slice.push_back(di);
          if (def.a >= 0) work.push_back(def.a);
          if (def.b >= 0) work.push_back(def.b);
        }
      }
      if (!ok) continue;
      for (std::size_t s : slice) moved.insert(s);
      loadIdxs.push_back(li);
    }
    if (loadIdxs.empty()) continue;

    // Rebuild the block: [hoisted slices (original order)] [prefs]
    // [remaining prefix] [rest].
    std::vector<IrInstr> out;
    out.reserve(b.instrs.size() + loadIdxs.size());
    for (std::size_t i = 0; i < first; ++i)
      if (!moved.count(i)) out.push_back(b.instrs[i]);
    // (moved instrs before `first` stay in place relative to each other)
    std::vector<IrInstr> hoisted;
    for (std::size_t i = 0; i < prefixEnd; ++i)
      if (moved.count(i)) hoisted.push_back(b.instrs[i]);
    for (auto& h : hoisted) out.push_back(h);
    for (std::size_t li : loadIdxs) {
      IrInstr pref(IOp::kPref);
      pref.a = b.instrs[li].a;
      pref.imm = b.instrs[li].imm;
      pref.srcLine = b.instrs[li].srcLine;
      out.push_back(pref);
    }
    for (std::size_t i = first; i < b.instrs.size(); ++i)
      if (!moved.count(i)) out.push_back(b.instrs[i]);
    b.instrs = std::move(out);
  }
}

void verifyParallelDataflow(const IrFunc& fn) {
  std::set<int> parallelDefs;
  for (const auto& b : fn.blocks) {
    if (!b.parallel) continue;
    for (const auto& in : b.instrs)
      if (in.dst >= 32) parallelDefs.insert(in.dst);
  }
  for (const auto& b : fn.blocks) {
    if (b.parallel) continue;
    for (const auto& in : b.instrs) {
      std::vector<int> uses;
      collectUses(in, uses);
      for (int u : uses)
        if (parallelDefs.count(u))
          throw InternalError(
              "illegal dataflow: value defined in a spawn block used in "
              "serial code (function " + fn.name + ")");
    }
  }
}

}  // namespace xmt
