#include "src/compiler/driver.h"

#include <iterator>

#include "src/assembler/assembler.h"
#include "src/compiler/analysis/asmverify.h"
#include "src/compiler/analysis/racecheck.h"
#include "src/compiler/analysis/xmtai.h"
#include "src/compiler/emit.h"
#include "src/compiler/lower.h"
#include "src/compiler/opt.h"
#include "src/compiler/parser.h"
#include "src/compiler/postpass.h"
#include "src/compiler/regalloc.h"
#include "src/compiler/sema.h"
#include "src/compiler/transforms.h"

namespace xmt {

CompileResult compileXmtc(const std::string& source,
                          const CompilerOptions& opts) {
  auto tu = parse(source);
  analyze(*tu);

  // Source-to-source pre-passes (the CIL stage).
  if (opts.inlineParallel) inlineParallelCalls(*tu);
  if (opts.clusterThreads) clusterVirtualThreads(*tu, opts.clusterCount);
  if (opts.outline) outlineSpawnBlocks(*tu);

  CompileResult res;
  res.transformedSource = printAst(*tu);

  analysis::AiConfig aiCfg;
  aiCfg.bounds = opts.lintBounds;
  aiCfg.divZero = opts.lintDivZero;
  aiCfg.shift = opts.lintShift;
  aiCfg.psDiscipline = opts.lintPsDiscipline;
  if (opts.analyzeRaces || aiCfg.any()) {
    // The lints run on a fresh, un-clustered, un-outlined lowering:
    // clustering rewrites $ into a loop variable and outlining hides frame
    // accesses behind pointer parameters, both of which would degrade the
    // address classification to Unknown. The IR is left unoptimized so
    // source lines map 1:1 onto accesses. Race lint and value lints share
    // one lowering and one set of interprocedural summaries.
    auto lintTu = parse(source);
    analyze(*lintTu);
    if (opts.inlineParallel) inlineParallelCalls(*lintTu);
    IrModule lintMod = lowerToIr(*lintTu);
    res.diagnostics =
        analysis::runModuleAnalysis(lintMod, opts.analyzeRaces, aiCfg);
    if (opts.werrorRace) {
      for (const Diagnostic& d : res.diagnostics) {
        if (!isRaceDiag(d)) continue;
        Diagnostic err = d;
        err.severity = Severity::kError;
        throw DiagnosticError(std::move(err));
      }
    }
  }

  // Core pass.
  IrModule mod = lowerToIr(*tu);
  std::vector<FrameInfo> frames;
  frames.reserve(mod.funcs.size());
  for (auto& fn : mod.funcs) {
    optimizeIr(fn, opts.optLevel);
    if (opts.nonBlockingStores) applyNonBlockingStores(fn);
    if (opts.prefetch) insertPrefetches(fn, opts.prefetchDepth);
    if (opts.outline) verifyParallelDataflow(fn);
    frames.push_back(allocateRegisters(fn));
  }
  res.asmText = emitAssembly(mod, frames, opts.layoutQuirk);

  // Post-pass.
  if (opts.postPass) {
    PostPassReport rep = runPostPass(res.asmText);
    res.asmText = std::move(rep.asmText);
    res.relocatedBlocks = rep.relocatedBlocks;
  }

  // Assembly-level legality verifier: checks the final text, after any
  // layout repair, against the Section IV-A machine rules.
  if (opts.verifyAsm) {
    std::vector<Diagnostic> vds = analysis::verifyAssembly(res.asmText);
    if (opts.werrorAsm && !vds.empty()) {
      Diagnostic err = vds.front();
      err.severity = Severity::kError;
      throw DiagnosticError(std::move(err));
    }
    res.diagnostics.insert(res.diagnostics.end(),
                           std::make_move_iterator(vds.begin()),
                           std::make_move_iterator(vds.end()));
  }
  return res;
}

Program compileToProgram(const std::string& source,
                         const CompilerOptions& opts) {
  return assemble(compileXmtc(source, opts).asmText);
}

}  // namespace xmt
