#include "src/compiler/lower.h"

#include <cstring>

#include "src/common/error.h"
#include "src/compiler/lexer.h"
#include "src/compiler/sema.h"

namespace xmt {

namespace {

// Physical argument registers: a0-a3 then t0-t3 (custom convention; the
// callee immediately copies them into fresh vregs).
constexpr int kArgRegs[8] = {kA0, kA1, kA2, kA3, kT0, kT1, kT2, kT3};

struct AddrVal {
  int reg = 0;          // base register (may be vreg 0 = zero)
  std::int32_t off = 0; // constant byte offset
};

class FuncLowering {
 public:
  FuncLowering(TranslationUnit& tu, IrModule& mod, FuncDecl& f)
      : tu_(tu), mod_(mod), f_(f) {
    fn_.name = f.name;
    fn_.nParams = static_cast<int>(f.params.size());
    fn_.isMain = (f.name == "main");
  }

  IrFunc run() {
    cur_ = newBlock();
    // Copy incoming arguments out of the physical registers.
    for (std::size_t i = 0; i < f_.params.size(); ++i) {
      VarDecl* p = f_.params[i].get();
      int v = fn_.newVreg();
      emitCopy(v, kArgRegs[i]);
      if (needsSlot(*p)) {
        int slot = allocSlot(*p);
        AddrVal a{frameReg(slot), 0};
        emitStore(a, v, p->type.isChar(), p->isVolatile);
      } else {
        varReg_[p] = v;
        fn_.vregNames[v] = p->name;
      }
    }
    exitBlock_ = -1;  // created on demand
    genStmt(*f_.body);
    // Fall-through at end of body.
    if (!terminated()) {
      if (fn_.isMain) {
        emit(IrInstr(IOp::kHalt));
      } else {
        if (!f_.retType.isVoid())
          throw CompileError(f_.line, "control reaches end of non-void "
                                      "function '" + f_.name + "'");
        emit(IrInstr(IOp::kRet));
      }
    }
    if (exitBlock_ >= 0) {
      setBlock(exitBlock_);
      emit(IrInstr(fn_.isMain ? IOp::kHalt : IOp::kRet));
    }
    return std::move(fn_);
  }

 private:
  [[noreturn]] void fail(int line, const std::string& msg) {
    throw CompileError(line, msg);
  }

  // --- Block plumbing ---

  int newBlock() {
    IrBlock b;
    b.id = static_cast<int>(fn_.blocks.size());
    b.parallel = inParallel_;
    fn_.blocks.push_back(std::move(b));
    return static_cast<int>(fn_.blocks.size()) - 1;
  }
  void setBlock(int id) { cur_ = id; }
  IrBlock& curBlock() { return fn_.blocks[static_cast<std::size_t>(cur_)]; }
  bool terminated() {
    return !curBlock().instrs.empty() &&
           curBlock().instrs.back().isTerminator();
  }
  IrInstr& emit(IrInstr in) {
    in.srcLine = curLine_;
    if (terminated()) {
      // Unreachable code after return/break: park it in a dead block.
      setBlock(newBlock());
    }
    curBlock().instrs.push_back(std::move(in));
    return curBlock().instrs.back();
  }
  void emitCopy(int dst, int src) {
    IrInstr in(IOp::kCopy);
    in.dst = dst;
    in.a = src;
    emit(std::move(in));
  }
  void emitJmp(int target) {
    IrInstr in(IOp::kJmp);
    in.t1 = target;
    emit(std::move(in));
  }
  void emitBr(Op rel, int a, int b, int t, int f) {
    IrInstr in(IOp::kBr);
    in.rel = rel;
    in.a = a;
    in.b = b;
    in.t1 = t;
    in.t2 = f;
    emit(std::move(in));
  }
  int emitLi(std::int32_t v) {
    if (v == 0) return 0;  // the zero register
    IrInstr in(IOp::kLi);
    in.dst = fn_.newVreg();
    in.imm = v;
    return emit(std::move(in)).dst;
  }

  // --- Storage for variables ---

  static bool needsSlot(const VarDecl& d) {
    return d.isArray() || d.addrTaken || d.isVolatile;
  }

  int allocSlot(const VarDecl& d) {
    if (inParallel_)
      fail(d.line, "variable '" + d.name +
                       "' needs stack storage inside a spawn block (no "
                       "parallel stack)");
    int words = d.isArray()
                    ? static_cast<int>((d.elementCount() * d.type.size() + 3) / 4)
                    : 1;
    int slot = fn_.frameWords;
    fn_.frameWords += words;
    varSlot_[&d] = slot;
    return slot;
  }

  int frameReg(int slotWords) {
    IrInstr in(IOp::kFrameAddr);
    in.dst = fn_.newVreg();
    in.imm = slotWords * 4;
    return emit(std::move(in)).dst;
  }

  // --- Memory helpers ---

  void emitStore(const AddrVal& a, int val, bool isByte, bool isVolatile) {
    IrInstr in(isByte ? IOp::kStoreB : IOp::kStoreW);
    in.a = a.reg;
    in.imm = a.off;
    in.b = val;
    in.volatileMem = isVolatile;
    emit(std::move(in));
  }
  int emitLoad(const AddrVal& a, bool isByte, bool isVolatile) {
    IrInstr in(isByte ? IOp::kLoadB : IOp::kLoadW);
    in.a = a.reg;
    in.imm = a.off;
    in.dst = fn_.newVreg();
    in.volatileMem = isVolatile;
    return emit(std::move(in)).dst;
  }

  // --- Lvalues ---

  // Address of an lvalue expression (never called for register-resident
  // scalars — see loadLvalue/storeLvalue).
  AddrVal genAddr(Expr& e) {
    switch (e.kind) {
      case ExprKind::kVarRef: {
        VarDecl* d = e.decl;
        XMT_CHECK(d != nullptr);
        if (d->isPsBaseReg) fail(e.line, "psBaseReg has no address");
        if (d->isGlobal) {
          IrInstr in(IOp::kLa);
          in.dst = fn_.newVreg();
          in.sym = d->name;
          return {emit(std::move(in)).dst, 0};
        }
        auto slot = varSlot_.find(d);
        if (slot == varSlot_.end()) {
          // Scalar local living in a register: it must have been forced to
          // a slot by sema (addrTaken) before we ever need its address.
          fail(e.line, "internal: address of register variable");
        }
        return {frameReg(slot->second), 0};
      }
      case ExprKind::kIndex: {
        int base = genExpr(*e.a);
        int scale = e.type.size();
        if (e.b->kind == ExprKind::kIntLit) {
          return {base, static_cast<std::int32_t>(e.b->intVal * scale)};
        }
        int idx = genExpr(*e.b);
        int scaled = idx;
        if (scale == 4) {
          IrInstr sh(IOp::kSll);
          sh.dst = fn_.newVreg();
          sh.a = idx;
          sh.imm = 2;
          scaled = emit(std::move(sh)).dst;
        }
        IrInstr add(IOp::kAdd);
        add.dst = fn_.newVreg();
        add.a = base;
        add.b = scaled;
        return {emit(std::move(add)).dst, 0};
      }
      case ExprKind::kUnary:
        XMT_CHECK(e.opTok == static_cast<int>(Tok::kStar));
        return {genExpr(*e.a), 0};
      default:
        fail(e.line, "expression is not an lvalue");
    }
  }

  bool isRegisterVar(const Expr& e) const {
    return e.kind == ExprKind::kVarRef && e.decl != nullptr &&
           !e.decl->isGlobal && !e.decl->isPsBaseReg &&
           varSlot_.count(e.decl) == 0;
  }

  int loadLvalue(Expr& e) {
    if (e.kind == ExprKind::kVarRef && e.decl->isPsBaseReg) {
      IrInstr in(IOp::kMfgr);
      in.dst = fn_.newVreg();
      in.imm = e.decl->grIndex;
      return emit(std::move(in)).dst;
    }
    if (isRegisterVar(e)) {
      auto it = varReg_.find(e.decl);
      if (it == varReg_.end())
        fail(e.line, "use of uninitialized variable '" + e.decl->name + "'");
      return it->second;
    }
    AddrVal a = genAddr(e);
    return emitLoad(a, e.type.isChar(), isVolatileAccess(e));
  }

  void storeLvalue(Expr& e, int val) {
    if (e.kind == ExprKind::kVarRef && e.decl->isPsBaseReg) {
      IrInstr in(IOp::kMtgr);
      in.a = val;
      in.imm = e.decl->grIndex;
      emit(std::move(in));
      return;
    }
    if (isRegisterVar(e)) {
      auto it = varReg_.find(e.decl);
      if (it == varReg_.end()) {
        int v = fn_.newVreg();
        varReg_[e.decl] = v;
        fn_.vregNames[v] = e.decl->name;
        emitCopy(v, val);
      } else {
        emitCopy(it->second, val);
      }
      return;
    }
    AddrVal a = genAddr(e);
    emitStore(a, val, e.type.isChar(), isVolatileAccess(e));
  }

  static bool isVolatileAccess(const Expr& e) {
    if (e.kind == ExprKind::kVarRef && e.decl) return e.decl->isVolatile;
    if (e.kind == ExprKind::kIndex && e.a->kind == ExprKind::kVarRef &&
        e.a->decl)
      return e.a->decl->isVolatile;
    return false;
  }

  // --- Conditions ---

  void genCond(Expr& e, int tBlk, int fBlk) {
    if (e.kind == ExprKind::kUnary &&
        e.opTok == static_cast<int>(Tok::kBang)) {
      genCond(*e.a, fBlk, tBlk);
      return;
    }
    if (e.kind == ExprKind::kBinary) {
      Tok op = static_cast<Tok>(e.opTok);
      if (op == Tok::kAmpAmp) {
        int mid = newBlock();
        genCond(*e.a, mid, fBlk);
        setBlock(mid);
        genCond(*e.b, tBlk, fBlk);
        return;
      }
      if (op == Tok::kPipePipe) {
        int mid = newBlock();
        genCond(*e.a, tBlk, mid);
        setBlock(mid);
        genCond(*e.b, tBlk, fBlk);
        return;
      }
      bool isCmp = op == Tok::kEq || op == Tok::kNe || op == Tok::kLt ||
                   op == Tok::kGt || op == Tok::kLe || op == Tok::kGe;
      if (isCmp && !e.a->type.isFloat() && !e.b->type.isFloat()) {
        int a = genExpr(*e.a);
        int b = genExpr(*e.b);
        Op rel;
        switch (op) {
          case Tok::kEq: rel = Op::kBeq; break;
          case Tok::kNe: rel = Op::kBne; break;
          case Tok::kLt: rel = Op::kBlt; break;
          case Tok::kGt: rel = Op::kBgt; break;
          case Tok::kLe: rel = Op::kBle; break;
          default: rel = Op::kBge; break;
        }
        emitBr(rel, a, b, tBlk, fBlk);
        return;
      }
    }
    int v = genExpr(e);
    emitBr(Op::kBne, v, 0, tBlk, fBlk);
  }

  // --- Expressions ---

  int genExpr(Expr& e) {
    curLine_ = e.line;
    switch (e.kind) {
      case ExprKind::kIntLit:
        return emitLi(static_cast<std::int32_t>(e.intVal));
      case ExprKind::kFloatLit: {
        float f = static_cast<float>(e.floatVal);
        std::int32_t bits;
        std::memcpy(&bits, &f, 4);
        return emitLi(bits);
      }
      case ExprKind::kStrLit: {
        IrInstr in(IOp::kLa);
        in.dst = fn_.newVreg();
        in.sym = internString(e.strVal);
        return emit(std::move(in)).dst;
      }
      case ExprKind::kVarRef:
        if (e.decl->isGlobal && e.decl->isArray()) {
          IrInstr in(IOp::kLa);
          in.dst = fn_.newVreg();
          in.sym = e.decl->name;
          return emit(std::move(in)).dst;
        }
        if (!e.decl->isGlobal && e.decl->isArray()) {
          auto slot = varSlot_.find(e.decl);
          XMT_CHECK(slot != varSlot_.end());
          return frameReg(slot->second);
        }
        return loadLvalue(e);
      case ExprKind::kDollar:
        XMT_CHECK(!dollarStack_.empty());
        return dollarStack_.back();
      case ExprKind::kUnary: {
        Tok op = static_cast<Tok>(e.opTok);
        if (op == Tok::kStar) return loadLvalue(e);
        if (op == Tok::kAmp) {
          if (e.a->kind == ExprKind::kVarRef && e.a->decl->isArray())
            return genExpr(*e.a);  // array decays to its own address
          AddrVal a = genAddr(*e.a);
          if (a.off == 0) return a.reg;
          IrInstr add(IOp::kAddi);
          add.dst = fn_.newVreg();
          add.a = a.reg;
          add.imm = a.off;
          return emit(std::move(add)).dst;
        }
        int v = genExpr(*e.a);
        if (op == Tok::kMinus) {
          IrInstr in(e.a->type.isFloat() ? IOp::kFsub : IOp::kSub);
          in.dst = fn_.newVreg();
          in.a = 0;
          in.b = v;
          if (e.a->type.isFloat()) {
            // 0.0f - v
            int zero = emitLi(0);
            in.a = zero;
          }
          return emit(std::move(in)).dst;
        }
        if (op == Tok::kTilde) {
          IrInstr in(IOp::kNor);
          in.dst = fn_.newVreg();
          in.a = v;
          in.b = 0;
          return emit(std::move(in)).dst;
        }
        // ! : v == 0
        return emitNot(v, e.a->type.isFloat());
      }
      case ExprKind::kBinary:
        return genBinary(e);
      case ExprKind::kAssign: {
        Tok op = static_cast<Tok>(e.opTok);
        if (op == Tok::kAssign) {
          int v = genExpr(*e.b);
          storeLvalue(*e.a, v);
          return v;
        }
        // Compound: load, op, store.
        int lhs = loadLvalue(*e.a);
        int rhs = genExpr(*e.b);
        Tok binOp;
        switch (op) {
          case Tok::kPlusAssign: binOp = Tok::kPlus; break;
          case Tok::kMinusAssign: binOp = Tok::kMinus; break;
          case Tok::kStarAssign: binOp = Tok::kStar; break;
          case Tok::kSlashAssign: binOp = Tok::kSlash; break;
          case Tok::kPercentAssign: binOp = Tok::kPercent; break;
          case Tok::kShlAssign: binOp = Tok::kShl; break;
          case Tok::kShrAssign: binOp = Tok::kShr; break;
          case Tok::kAndAssign: binOp = Tok::kAmp; break;
          case Tok::kOrAssign: binOp = Tok::kPipe; break;
          default: binOp = Tok::kCaret; break;
        }
        int res = emitArith(binOp, lhs, rhs, e.a->type, *e.a, *e.b, e.line);
        storeLvalue(*e.a, res);
        return res;
      }
      case ExprKind::kCond: {
        int res = fn_.newVreg();
        int tB = newBlock(), fB = newBlock(), mB = newBlock();
        genCond(*e.c, tB, fB);
        setBlock(tB);
        emitCopy(res, genExpr(*e.a));
        emitJmp(mB);
        setBlock(fB);
        emitCopy(res, genExpr(*e.b));
        emitJmp(mB);
        setBlock(mB);
        return res;
      }
      case ExprKind::kCall:
        return genCall(e);
      case ExprKind::kIndex:
        return loadLvalue(e);
      case ExprKind::kCast: {
        int v = genExpr(*e.a);
        if (e.a->type.isFloat() && e.type.isIntegral()) {
          IrInstr in(IOp::kCvtfi);
          in.dst = fn_.newVreg();
          in.a = v;
          return emit(std::move(in)).dst;
        }
        if (e.a->type.isIntegral() && e.type.isFloat()) {
          IrInstr in(IOp::kCvtif);
          in.dst = fn_.newVreg();
          in.a = v;
          return emit(std::move(in)).dst;
        }
        if (e.type.isChar() && !e.a->type.isChar()) {
          IrInstr in(IOp::kAndi);
          in.dst = fn_.newVreg();
          in.a = v;
          in.imm = 0xff;
          return emit(std::move(in)).dst;
        }
        return v;
      }
      case ExprKind::kIncDec: {
        int old = loadLvalue(*e.a);
        int delta = e.a->type.isPointer() ? e.a->type.pointee().size() : 1;
        if (static_cast<Tok>(e.opTok) == Tok::kMinusMinus) delta = -delta;
        IrInstr in(IOp::kAddi);
        in.dst = fn_.newVreg();
        in.a = old;
        in.imm = delta;
        int neu = emit(std::move(in)).dst;
        // Snapshot the old value before the store (the store may overwrite
        // the same register for register-resident vars).
        int oldCopy = old;
        if (!e.prefix) {
          oldCopy = fn_.newVreg();
          emitCopy(oldCopy, old);
        }
        storeLvalue(*e.a, neu);
        return e.prefix ? neu : oldCopy;
      }
      case ExprKind::kPs: {
        int inc = loadLvalue(*e.a);
        IrInstr in(IOp::kPs);
        in.dst = fn_.newVreg();
        in.a = inc;
        in.imm = e.b->decl->grIndex;
        int old = emit(std::move(in)).dst;
        storeLvalue(*e.a, old);
        return old;
      }
      case ExprKind::kPsm: {
        int inc = loadLvalue(*e.a);
        AddrVal addr = genAddr(*e.b);
        IrInstr in(IOp::kPsm);
        in.dst = fn_.newVreg();
        in.a = addr.reg;
        in.imm = addr.off;
        in.b = inc;
        int old = emit(std::move(in)).dst;
        storeLvalue(*e.a, old);
        return old;
      }
      case ExprKind::kSizeof:
        return emitLi(static_cast<std::int32_t>(e.intVal));
    }
    fail(e.line, "internal: unhandled expression");
  }

  int emitNot(int v, bool isFloat) {
    (void)isFloat;
    // (v == 0) as a value: sltu d, zero, v gives v!=0; xori flips.
    IrInstr ne(IOp::kSltu);
    ne.dst = fn_.newVreg();
    ne.a = 0;
    ne.b = v;
    int neR = emit(std::move(ne)).dst;
    IrInstr x(IOp::kXori);
    x.dst = fn_.newVreg();
    x.a = neR;
    x.imm = 1;
    return emit(std::move(x)).dst;
  }

  int emitArith(Tok op, int a, int b, TypeRef resType, const Expr& lhs,
                const Expr& rhs, int line) {
    bool flt = resType.isFloat() ||
               (lhs.type.isFloat() || rhs.type.isFloat());
    // Pointer arithmetic scaling.
    if (lhs.type.isPointer() && rhs.type.isIntegral() &&
        (op == Tok::kPlus || op == Tok::kMinus)) {
      int scale = lhs.type.pointee().size();
      if (scale == 4) {
        IrInstr sh(IOp::kSll);
        sh.dst = fn_.newVreg();
        sh.a = b;
        sh.imm = 2;
        b = emit(std::move(sh)).dst;
      }
    } else if (rhs.type.isPointer() && lhs.type.isIntegral() &&
               op == Tok::kPlus) {
      int scale = rhs.type.pointee().size();
      if (scale == 4) {
        IrInstr sh(IOp::kSll);
        sh.dst = fn_.newVreg();
        sh.a = a;
        sh.imm = 2;
        a = emit(std::move(sh)).dst;
      }
    }
    auto r3 = [&](IOp o) {
      IrInstr in(o);
      in.dst = fn_.newVreg();
      in.a = a;
      in.b = b;
      return emit(std::move(in)).dst;
    };
    bool uns = lhs.type.isUnsigned() || rhs.type.isUnsigned() ||
               lhs.type.isPointer() || rhs.type.isPointer();
    switch (op) {
      case Tok::kPlus: return r3(flt ? IOp::kFadd : IOp::kAdd);
      case Tok::kMinus: return r3(flt ? IOp::kFsub : IOp::kSub);
      case Tok::kStar: return r3(flt ? IOp::kFmul : IOp::kMul);
      case Tok::kSlash: return r3(flt ? IOp::kFdiv : IOp::kDiv);
      case Tok::kPercent:
        if (flt) fail(line, "'%' on float");
        return r3(IOp::kRem);
      case Tok::kAmp: return r3(IOp::kAnd);
      case Tok::kPipe: return r3(IOp::kOr);
      case Tok::kCaret: return r3(IOp::kXor);
      case Tok::kShl: return r3(IOp::kSllv);
      case Tok::kShr: return r3(uns ? IOp::kSrlv : IOp::kSrav);
      // Comparisons as values.
      case Tok::kLt: return r3(flt ? IOp::kFlt : (uns ? IOp::kSltu : IOp::kSlt));
      case Tok::kGt: {
        std::swap(a, b);
        return r3(flt ? IOp::kFlt : (uns ? IOp::kSltu : IOp::kSlt));
      }
      case Tok::kLe: {
        if (flt) return r3(IOp::kFle);
        std::swap(a, b);
        int g = r3(uns ? IOp::kSltu : IOp::kSlt);  // b < a  == a > b
        return flipBit(g);
      }
      case Tok::kGe: {
        if (flt) {
          std::swap(a, b);
          return r3(IOp::kFle);
        }
        int l = r3(uns ? IOp::kSltu : IOp::kSlt);  // a < b
        return flipBit(l);
      }
      case Tok::kEq: {
        if (flt) return r3(IOp::kFeq);
        int x = r3(IOp::kXor);
        IrInstr ne(IOp::kSltu);
        ne.dst = fn_.newVreg();
        ne.a = 0;
        ne.b = x;
        return flipBit(emit(std::move(ne)).dst);
      }
      case Tok::kNe: {
        if (flt) return flipBit(r3(IOp::kFeq));
        int x = r3(IOp::kXor);
        IrInstr ne(IOp::kSltu);
        ne.dst = fn_.newVreg();
        ne.a = 0;
        ne.b = x;
        return emit(std::move(ne)).dst;
      }
      default:
        fail(line, "internal: unhandled binary operator");
    }
  }

  int flipBit(int v) {
    IrInstr x(IOp::kXori);
    x.dst = fn_.newVreg();
    x.a = v;
    x.imm = 1;
    return emit(std::move(x)).dst;
  }

  int genBinary(Expr& e) {
    Tok op = static_cast<Tok>(e.opTok);
    if (op == Tok::kAmpAmp || op == Tok::kPipePipe) {
      int res = fn_.newVreg();
      int tB = newBlock(), fB = newBlock(), mB = newBlock();
      genCond(e, tB, fB);
      setBlock(tB);
      IrInstr one(IOp::kLi);
      one.dst = res;
      one.imm = 1;
      emit(std::move(one));
      emitJmp(mB);
      setBlock(fB);
      IrInstr zero(IOp::kLi);
      zero.dst = res;
      zero.imm = 0;
      emit(std::move(zero));
      emitJmp(mB);
      setBlock(mB);
      return res;
    }
    int a = genExpr(*e.a);
    int b = genExpr(*e.b);
    return emitArith(op, a, b, e.type, *e.a, *e.b, e.line);
  }

  int genCall(Expr& e) {
    if (inParallel_)
      fail(e.line, "function call inside a spawn block survived inlining; "
                   "there is no parallel stack");
    fn_.hasCalls = true;
    std::vector<int> vals;
    vals.reserve(e.args.size());
    for (auto& a : e.args) vals.push_back(genExpr(*a));
    IrInstr call(IOp::kCall);
    call.sym = e.strVal;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      emitCopy(kArgRegs[i], vals[i]);
      call.args.push_back(kArgRegs[i]);
    }
    emit(std::move(call));
    int res = fn_.newVreg();
    emitCopy(res, kV0);
    return res;
  }

  // --- Statements ---

  void genLocalDecl(VarDecl& d) {
    curLine_ = d.line;
    if (needsSlot(d)) {
      int slot = allocSlot(d);
      // Array initializers.
      if (d.isArray()) {
        int elem = d.type.size();
        for (std::size_t i = 0; i < d.init.size(); ++i) {
          int v = genExpr(*d.init[i]);
          AddrVal a{frameReg(slot), static_cast<std::int32_t>(i) *
                                        static_cast<std::int32_t>(elem)};
          emitStore(a, v, d.type.isChar(), d.isVolatile);
        }
      } else if (!d.init.empty()) {
        int v = genExpr(*d.init[0]);
        AddrVal a{frameReg(slot), 0};
        emitStore(a, v, d.type.isChar(), d.isVolatile);
      }
      return;
    }
    int v = fn_.newVreg();
    varReg_[&d] = v;
    fn_.vregNames[v] = d.name;
    if (!d.init.empty()) {
      int init = genExpr(*d.init[0]);
      emitCopy(v, init);
    }
  }

  void genStmt(Stmt& s) {
    curLine_ = s.line;
    switch (s.kind) {
      case StmtKind::kExpr:
        genExpr(*s.expr);
        break;
      case StmtKind::kDecl:
        for (auto& d : s.decls) genLocalDecl(*d);
        break;
      case StmtKind::kIf: {
        int tB = newBlock(), mB = newBlock();
        int fB = s.elseBody ? newBlock() : mB;
        genCond(*s.expr, tB, fB);
        setBlock(tB);
        genStmt(*s.body);
        if (!terminated()) emitJmp(mB);
        if (s.elseBody) {
          setBlock(fB);
          genStmt(*s.elseBody);
          if (!terminated()) emitJmp(mB);
        }
        setBlock(mB);
        break;
      }
      case StmtKind::kWhile: {
        int head = newBlock(), body = newBlock(), exit = newBlock();
        emitJmp(head);
        setBlock(head);
        genCond(*s.expr, body, exit);
        loops_.push_back({head, exit});
        setBlock(body);
        genStmt(*s.body);
        if (!terminated()) emitJmp(head);
        loops_.pop_back();
        setBlock(exit);
        break;
      }
      case StmtKind::kDoWhile: {
        int body = newBlock(), head = newBlock(), exit = newBlock();
        emitJmp(body);
        loops_.push_back({head, exit});
        setBlock(body);
        genStmt(*s.body);
        if (!terminated()) emitJmp(head);
        loops_.pop_back();
        setBlock(head);
        genCond(*s.expr, body, exit);
        setBlock(exit);
        break;
      }
      case StmtKind::kFor: {
        for (auto& d : s.decls) genLocalDecl(*d);
        if (s.expr) genExpr(*s.expr);
        int head = newBlock(), body = newBlock(), step = newBlock(),
            exit = newBlock();
        emitJmp(head);
        setBlock(head);
        if (s.expr2) genCond(*s.expr2, body, exit);
        else emitJmp(body);
        loops_.push_back({step, exit});
        setBlock(body);
        genStmt(*s.body);
        if (!terminated()) emitJmp(step);
        loops_.pop_back();
        setBlock(step);
        if (s.expr3) genExpr(*s.expr3);
        emitJmp(head);
        setBlock(exit);
        break;
      }
      case StmtKind::kBlock:
        for (auto& sub : s.stmts) genStmt(*sub);
        break;
      case StmtKind::kBreak:
        XMT_CHECK(!loops_.empty());
        emitJmp(loops_.back().second);
        break;
      case StmtKind::kContinue:
        XMT_CHECK(!loops_.empty());
        emitJmp(loops_.back().first);
        break;
      case StmtKind::kReturn: {
        if (s.expr) {
          int v = genExpr(*s.expr);
          emitCopy(kV0, v);
        }
        if (exitBlock_ < 0) exitBlock_ = newBlock();
        emitJmp(exitBlock_);
        break;
      }
      case StmtKind::kSpawn:
        genSpawn(s);
        break;
      case StmtKind::kEmpty:
        break;
      case StmtKind::kPrintf:
        genPrintf(s);
        break;
    }
  }

  void genSpawn(Stmt& s) {
    if (inParallel_) {
      // Nested spawn: serialized by the current release, exactly as the
      // paper states.
      int lo = genExpr(*s.expr);
      int hi = genExpr(*s.expr2);
      int iv = fn_.newVreg();
      emitCopy(iv, lo);
      int head = newBlock(), body = newBlock(), exit = newBlock();
      emitJmp(head);
      setBlock(head);
      emitBr(Op::kBle, iv, hi, body, exit);
      setBlock(body);
      dollarStack_.push_back(iv);
      genStmt(*s.body);
      dollarStack_.pop_back();
      IrInstr inc(IOp::kAddi);
      inc.dst = iv;
      inc.a = iv;
      inc.imm = 1;
      emit(std::move(inc));
      emitJmp(head);
      setBlock(exit);
      return;
    }
    int lo = genExpr(*s.expr);
    int hi = genExpr(*s.expr2);
    IrInstr mlo(IOp::kMtgr);
    mlo.a = lo;
    mlo.imm = kGrNextId;
    emit(std::move(mlo));
    IrInstr mhi(IOp::kMtgr);
    mhi.a = hi;
    mhi.imm = kGrHigh;
    emit(std::move(mhi));
    IrInstr sp(IOp::kSpawn);
    sp.t1 = -1;
    sp.t2 = -1;
    emit(std::move(sp));
    int spBlock = cur_;
    std::size_t spIdx = curBlock().instrs.size() - 1;

    inParallel_ = true;
    int body = newBlock();
    setBlock(body);
    IrInstr tid(IOp::kGetTid);
    tid.dst = fn_.newVreg();
    int tidReg = emit(std::move(tid)).dst;
    dollarStack_.push_back(tidReg);
    genStmt(*s.body);
    dollarStack_.pop_back();
    emit(IrInstr(IOp::kJoin));
    inParallel_ = false;

    int cont = newBlock();
    setBlock(cont);
    auto& spawnInstr =
        fn_.blocks[static_cast<std::size_t>(spBlock)].instrs[spIdx];
    spawnInstr.t1 = body;
    spawnInstr.t2 = cont;
  }

  void genPrintf(Stmt& s) {
    std::size_t argIdx = 0;
    std::string pending;
    auto flush = [&] {
      if (pending.empty()) return;
      IrInstr la(IOp::kLa);
      la.dst = fn_.newVreg();
      la.sym = internString(pending);
      int addr = emit(std::move(la)).dst;
      emitCopy(kA0, addr);
      IrInstr sys(IOp::kSys);
      sys.imm = 3;
      sys.a = kA0;
      emit(std::move(sys));
      pending.clear();
    };
    const std::string& f = s.strVal;
    for (std::size_t i = 0; i < f.size(); ++i) {
      if (f[i] != '%') {
        pending += f[i];
        continue;
      }
      char c = f[++i];
      if (c == '%') {
        pending += '%';
        continue;
      }
      flush();
      int v = genExpr(*s.args[argIdx++]);
      emitCopy(kA0, v);
      IrInstr sys(IOp::kSys);
      sys.a = kA0;
      switch (c) {
        case 'd':
        case 'u': sys.imm = 1; break;
        case 'c': sys.imm = 2; break;
        case 's': sys.imm = 3; break;
        case 'f': sys.imm = 4; break;
        default: XMT_CHECK(false);
      }
      emit(std::move(sys));
    }
    flush();
  }

  std::string internString(const std::string& s) {
    for (const auto& d : mod_.data)
      if (d.kind == IrData::Kind::kAscii && d.str == s) return d.label;
    IrData d;
    d.label = "__str" + std::to_string(mod_.data.size());
    d.kind = IrData::Kind::kAscii;
    d.str = s;
    mod_.data.push_back(std::move(d));
    return mod_.data.back().label;
  }

  TranslationUnit& tu_;
  IrModule& mod_;
  FuncDecl& f_;
  IrFunc fn_;
  int cur_ = 0;
  int curLine_ = 0;
  int exitBlock_ = -1;
  bool inParallel_ = false;
  std::map<const VarDecl*, int> varReg_;
  std::map<const VarDecl*, int> varSlot_;
  std::vector<int> dollarStack_;
  std::vector<std::pair<int, int>> loops_;  // (continue target, break target)
};

std::uint32_t constWord(const Expr& e) {
  if (e.kind == ExprKind::kFloatLit) {
    float f = static_cast<float>(e.floatVal);
    std::uint32_t bits;
    std::memcpy(&bits, &f, 4);
    return bits;
  }
  return static_cast<std::uint32_t>(e.intVal);
}

}  // namespace

IrModule lowerToIr(TranslationUnit& tu) {
  IrModule mod;
  for (auto& g : tu.globals) {
    if (g->isPsBaseReg) continue;  // lives in a global register
    IrData d;
    d.label = g->name;
    d.exported = true;
    std::uint32_t bytes =
        static_cast<std::uint32_t>(g->elementCount() * g->type.size());
    if (g->init.empty()) {
      d.kind = IrData::Kind::kSpace;
      d.spaceBytes = (bytes + 3u) & ~3u;
    } else {
      d.kind = IrData::Kind::kWords;
      std::size_t n = (bytes + 3) / 4;
      d.words.assign(n, 0);
      if (g->isArray() && g->type.isChar()) {
        // Byte-element arrays: pack initializers.
        std::vector<std::uint8_t> raw(n * 4, 0);
        for (std::size_t i = 0; i < g->init.size(); ++i)
          raw[i] = static_cast<std::uint8_t>(g->init[i]->intVal);
        std::memcpy(d.words.data(), raw.data(), n * 4);
      } else {
        for (std::size_t i = 0; i < g->init.size(); ++i)
          d.words[i] = constWord(*g->init[i]);
      }
    }
    mod.data.push_back(std::move(d));
  }
  for (auto& f : tu.funcs)
    mod.funcs.push_back(FuncLowering(tu, mod, *f).run());

  // psBaseReg initializers become mtgr instructions at the top of main.
  std::vector<IrInstr> grInit;
  for (auto& g : tu.globals) {
    if (!g->isPsBaseReg || g->init.empty()) continue;
    IrInstr li(IOp::kLi);
    IrInstr mt(IOp::kMtgr);
    li.imm = static_cast<std::int32_t>(g->init[0]->intVal);
    mt.imm = g->grIndex;
    grInit.push_back(li);
    grInit.push_back(mt);
  }
  if (!grInit.empty()) {
    for (auto& fn : mod.funcs) {
      if (!fn.isMain) continue;
      auto& entry = fn.blocks[0].instrs;
      std::vector<IrInstr> prefix;
      for (std::size_t i = 0; i + 1 < grInit.size(); i += 2) {
        IrInstr li = grInit[i];
        li.dst = fn.newVreg();
        IrInstr mt = grInit[i + 1];
        mt.a = li.dst;
        prefix.push_back(li);
        prefix.push_back(mt);
      }
      entry.insert(entry.begin(), prefix.begin(), prefix.end());
    }
  }
  return mod;
}

std::string dumpIr(const IrFunc& f) {
  std::string out = "func " + f.name + ":\n";
  for (const auto& b : f.blocks) {
    out += "  B" + std::to_string(b.id) + (b.parallel ? " [par]" : "") +
           ":\n";
    for (const auto& in : b.instrs) {
      out += "    op=" + std::to_string(static_cast<int>(in.op)) +
             " dst=" + std::to_string(in.dst) + " a=" + std::to_string(in.a) +
             " b=" + std::to_string(in.b) + " imm=" + std::to_string(in.imm);
      if (!in.sym.empty()) out += " sym=" + in.sym;
      if (in.t1 >= 0)
        out += " t1=" + std::to_string(in.t1) + " t2=" +
               std::to_string(in.t2);
      out += "\n";
    }
  }
  return out;
}

}  // namespace xmt
