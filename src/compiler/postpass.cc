#include "src/compiler/postpass.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "src/common/error.h"

namespace xmt {

namespace {

struct AsmLine {
  std::vector<std::string> labels;
  std::string mnemonic;                 // empty for label-only / directives
  std::vector<std::string> operands;
  int srcLine = 0;                      // 1-based line in the input text
};

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Parses assembly into structured lines. Comments and data directives are
// preserved verbatim via `raw` rendering on output.
struct ParsedAsm {
  std::vector<AsmLine> lines;
  std::map<std::string, std::size_t> labelAt;  // label -> line index

  std::string render() const {
    std::ostringstream out;
    for (const auto& l : lines) {
      for (const auto& lbl : l.labels) out << lbl << ":\n";
      if (!l.mnemonic.empty()) {
        out << "  " << l.mnemonic;
        for (std::size_t i = 0; i < l.operands.size(); ++i)
          out << (i == 0 ? " " : ", ") << l.operands[i];
        out << "\n";
      }
    }
    return out.str();
  }
};

ParsedAsm parseAsm(const std::string& text) {
  ParsedAsm p;
  std::istringstream in(text);
  std::string raw;
  std::vector<std::string> pendingLabels;
  int srcLine = 0;
  auto isIdent = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '$';
  };
  while (std::getline(in, raw)) {
    ++srcLine;
    // Strip comments (no string literals contain '#' in our output except
    // .asciiz — handle by skipping inside quotes).
    std::string s;
    bool inStr = false;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      char c = raw[i];
      if (inStr) {
        s += c;
        if (c == '\\' && i + 1 < raw.size()) s += raw[++i];
        else if (c == '"') inStr = false;
        continue;
      }
      if (c == '"') { inStr = true; s += c; continue; }
      if (c == '#') break;
      s += c;
    }
    s = trim(s);
    if (s.empty()) continue;
    // Labels.
    for (;;) {
      std::size_t j = 0;
      while (j < s.size() && isIdent(s[j])) ++j;
      if (j > 0 && j < s.size() && s[j] == ':') {
        pendingLabels.push_back(s.substr(0, j));
        s = trim(s.substr(j + 1));
        continue;
      }
      break;
    }
    if (s.empty()) continue;
    AsmLine line;
    line.srcLine = srcLine;
    line.labels = std::move(pendingLabels);
    pendingLabels.clear();
    std::size_t sp = s.find_first_of(" \t");
    if (sp == std::string::npos) {
      line.mnemonic = s;
    } else {
      line.mnemonic = s.substr(0, sp);
      std::string rest = s.substr(sp + 1);
      // Split on commas outside quotes.
      std::string curTok;
      bool q = false;
      for (std::size_t i = 0; i < rest.size(); ++i) {
        char c = rest[i];
        if (q) {
          curTok += c;
          if (c == '\\' && i + 1 < rest.size()) curTok += rest[++i];
          else if (c == '"') q = false;
          continue;
        }
        if (c == '"') { q = true; curTok += c; continue; }
        if (c == ',') {
          line.operands.push_back(trim(curTok));
          curTok.clear();
          continue;
        }
        curTok += c;
      }
      if (!trim(curTok).empty()) line.operands.push_back(trim(curTok));
    }
    p.lines.push_back(std::move(line));
  }
  if (!pendingLabels.empty()) {
    AsmLine tail;
    tail.labels = std::move(pendingLabels);
    p.lines.push_back(std::move(tail));
  }
  for (std::size_t i = 0; i < p.lines.size(); ++i)
    for (const auto& lbl : p.lines[i].labels) p.labelAt[lbl] = i;
  return p;
}

bool isBranch(const std::string& m) {
  return m == "beq" || m == "bne" || m == "blt" || m == "ble" || m == "bgt" ||
         m == "bge" || m == "beqz" || m == "bnez";
}

bool endsFlow(const std::string& m) {
  return m == "j" || m == "jr" || m == "join" || m == "halt" || m == "b";
}

// Branch/jump target label, or empty.
std::string targetOf(const AsmLine& l) {
  if (l.mnemonic == "j" || l.mnemonic == "b") return l.operands.at(0);
  if (isBranch(l.mnemonic)) return l.operands.back();
  return {};
}

[[noreturn]] void fail(DiagCode code, int line, const std::string& msg,
                       std::string symbol = {}, int otherLine = -1) {
  Diagnostic d;
  d.code = code;
  d.severity = Severity::kError;
  d.line = line;
  d.otherLine = otherLine;
  d.symbol = std::move(symbol);
  d.message = "post-pass: " + msg;
  throw PostPassError(std::move(d));
}

}  // namespace

PostPassReport runPostPass(const std::string& asmText) {
  ParsedAsm p = parseAsm(asmText);
  PostPassReport report;
  int fixLabelCounter = 0;

  for (std::size_t si = 0; si < p.lines.size(); ++si) {
    if (p.lines[si].mnemonic != "spawn") continue;
    ++report.regionsChecked;
    const int spawnLine = p.lines[si].srcLine;
    if (p.lines[si].operands.size() != 2)
      fail(DiagCode::kPostPassBadSpawn, spawnLine,
           "spawn needs two label operands");
    const std::string regionLbl = p.lines[si].operands[0];
    auto s = p.labelAt.find(p.lines[si].operands[0]);
    auto e = p.labelAt.find(p.lines[si].operands[1]);
    if (s == p.labelAt.end() || e == p.labelAt.end())
      fail(DiagCode::kPostPassUnknownLabel, spawnLine,
           "spawn references unknown label",
           s == p.labelAt.end() ? p.lines[si].operands[0]
                                : p.lines[si].operands[1]);
    std::size_t start = s->second;
    std::size_t end = e->second;
    if (start > end)
      fail(DiagCode::kPostPassBadSpawn, spawnLine, "inverted spawn region",
           regionLbl);

    for (int attempt = 0; attempt < 8; ++attempt) {
      // Reachability from the region entry.
      std::set<std::size_t> visited;
      std::vector<std::size_t> work{start};
      while (!work.empty()) {
        std::size_t i = work.back();
        work.pop_back();
        if (i >= p.lines.size() || !visited.insert(i).second) continue;
        const AsmLine& l = p.lines[i];
        if (l.mnemonic == "spawn")
          fail(DiagCode::kPostPassNestedSpawn, l.srcLine,
               "nested spawn inside a spawn region", regionLbl, spawnLine);
        if (l.mnemonic == "halt")
          fail(DiagCode::kPostPassHaltInRegion, l.srcLine,
               "halt inside a spawn region", regionLbl, spawnLine);
        if (l.mnemonic == "jr")
          fail(DiagCode::kPostPassCallInRegion, l.srcLine,
               "jr inside a spawn region (no calls in parallel code)",
               regionLbl, spawnLine);
        std::string tgt = targetOf(l);
        if (!tgt.empty()) {
          auto t = p.labelAt.find(tgt);
          if (t == p.labelAt.end())
            fail(DiagCode::kPostPassUnknownLabel, l.srcLine,
                 "branch to unknown label " + tgt, tgt);
          work.push_back(t->second);
        }
        if (!endsFlow(l.mnemonic)) work.push_back(i + 1);
      }
      // Misplaced = reachable but outside [start, end).
      std::vector<std::size_t> misplaced;
      for (std::size_t i : visited)
        if (i < start || i >= end) misplaced.push_back(i);
      if (misplaced.empty()) break;
      if (attempt == 7)
        fail(DiagCode::kPostPassLayout, spawnLine,
             "could not repair spawn-region layout", regionLbl);

      // Take the first contiguous misplaced run.
      std::sort(misplaced.begin(), misplaced.end());
      std::size_t runBegin = misplaced[0];
      std::size_t runEnd = runBegin;
      for (std::size_t i : misplaced) {
        if (i == runEnd + 1 || i == runBegin) runEnd = i;
        else break;
      }
      // If the run's last line can fall through, give the successor a label
      // and append an explicit jump (keeps semantics when relocated).
      std::vector<AsmLine> chunk(p.lines.begin() +
                                     static_cast<std::ptrdiff_t>(runBegin),
                                 p.lines.begin() +
                                     static_cast<std::ptrdiff_t>(runEnd + 1));
      if (!endsFlow(chunk.back().mnemonic)) {
        std::size_t succ = runEnd + 1;
        if (succ >= p.lines.size())
          fail(DiagCode::kPostPassLayout, chunk.back().srcLine,
               "misplaced block falls off the end", regionLbl, spawnLine);
        std::string lbl;
        if (!p.lines[succ].labels.empty()) {
          lbl = p.lines[succ].labels[0];
        } else {
          lbl = "__pp_succ" + std::to_string(fixLabelCounter++);
          p.lines[succ].labels.push_back(lbl);
        }
        AsmLine jmp;
        jmp.mnemonic = "j";
        jmp.operands.push_back(lbl);
        chunk.push_back(jmp);
      }

      // Find the join line inside the region (layout position of the
      // repair point).
      std::size_t joinIdx = end;
      for (std::size_t i = start; i < end; ++i)
        if (p.lines[i].mnemonic == "join") joinIdx = i;
      if (joinIdx == end)
        fail(DiagCode::kPostPassMissingJoin, spawnLine,
             "spawn region without a join", regionLbl);

      // Give the join a label and make the preceding fall-through explicit.
      std::string joinLbl;
      if (!p.lines[joinIdx].labels.empty()) {
        joinLbl = p.lines[joinIdx].labels[0];
      } else {
        joinLbl = "__pp_join" + std::to_string(fixLabelCounter++);
        p.lines[joinIdx].labels.push_back(joinLbl);
      }
      std::vector<AsmLine> insertion;
      if (joinIdx > start && !endsFlow(p.lines[joinIdx - 1].mnemonic)) {
        AsmLine jmp;
        jmp.mnemonic = "j";
        jmp.operands.push_back(joinLbl);
        insertion.push_back(jmp);
      }
      insertion.insert(insertion.end(), chunk.begin(), chunk.end());

      // Remove the misplaced run (careful with index shifts): remove first
      // if it sits after the join, then insert.
      if (runBegin > joinIdx) {
        p.lines.erase(p.lines.begin() + static_cast<std::ptrdiff_t>(runBegin),
                      p.lines.begin() +
                          static_cast<std::ptrdiff_t>(runEnd + 1));
        p.lines.insert(p.lines.begin() + static_cast<std::ptrdiff_t>(joinIdx),
                       insertion.begin(), insertion.end());
      } else {
        // Misplaced run before the region: insert first, then remove.
        p.lines.insert(p.lines.begin() + static_cast<std::ptrdiff_t>(joinIdx),
                       insertion.begin(), insertion.end());
        p.lines.erase(p.lines.begin() + static_cast<std::ptrdiff_t>(runBegin),
                      p.lines.begin() +
                          static_cast<std::ptrdiff_t>(runEnd + 1));
      }
      ++report.relocatedBlocks;

      // Rebuild the label index and region bounds, then re-verify.
      p.labelAt.clear();
      for (std::size_t i = 0; i < p.lines.size(); ++i)
        for (const auto& lbl : p.lines[i].labels) p.labelAt[lbl] = i;
      // This spawn line may have moved.
      for (std::size_t i = 0; i < p.lines.size(); ++i)
        if (p.lines[i].mnemonic == "spawn" &&
            p.lines[i].operands == p.lines[si].operands)
          si = i;
      start = p.labelAt.at(p.lines[si].operands[0]);
      end = p.labelAt.at(p.lines[si].operands[1]);
    }
  }

  // Hidden fault-injection hook for the differential-fuzzing harness: a
  // deliberate miscompile reachable only through the environment, so the
  // three-way oracle and the reducer can be tested against a known-real bug
  // (DESIGN.md §8). Never set outside tests.
  //   drop-fence — deletes every fence (timing-dependent store/spawn races)
  //   dup-psm    — duplicates every psm (accumulators deterministically off)
  if (const char* inject = std::getenv("XMT_XMTSMITH_INJECT")) {
    const std::string kind = inject;
    std::vector<AsmLine> out;
    out.reserve(p.lines.size());
    std::vector<std::string> carry;  // labels of deleted lines move forward
    for (const auto& l : p.lines) {
      if (kind == "drop-fence" && l.mnemonic == "fence") {
        carry.insert(carry.end(), l.labels.begin(), l.labels.end());
        continue;
      }
      out.push_back(l);
      if (!carry.empty()) {
        out.back().labels.insert(out.back().labels.begin(), carry.begin(),
                                 carry.end());
        carry.clear();
      }
      if (kind == "dup-psm" && l.mnemonic == "psm") {
        AsmLine dup = l;
        dup.labels.clear();
        out.push_back(std::move(dup));
      }
    }
    if (!carry.empty() && !out.empty())
      out.back().labels.insert(out.back().labels.end(), carry.begin(),
                               carry.end());
    p.lines = std::move(out);
  }

  report.asmText = p.render();
  return report;
}

}  // namespace xmt
