// Structured compiler diagnostics.
//
// The race detector and the XMT-specific semantic checks report findings as
// Diagnostic values carrying a stable machine-readable code, a severity, and
// the source location — so tests can assert on the exact finding and drivers
// can render, count, or promote them (-Werror-race) uniformly instead of
// string-matching free-form error text.
#pragma once

#include <string>
#include <vector>

#include "src/common/error.h"

namespace xmt {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

enum class DiagCode : std::uint8_t {
  // XMT semantic rules.
  kDollarOutsideSpawn,   // '$' used outside a spawn body
  // Spawn-region concurrency lint.
  kRaceWriteWrite,       // unsynchronized concurrent writes to one location
  kRaceReadWrite,        // concurrent read/write conflict
  kRaceUnknownAddress,   // write through an unresolvable address (may race)
  // Post-pass structural verification (Section IV-B layout rules).
  kPostPassBadSpawn,     // malformed spawn operands / unknown / inverted labels
  kPostPassNestedSpawn,  // spawn reachable inside a spawn region
  kPostPassHaltInRegion, // halt reachable inside a spawn region
  kPostPassCallInRegion, // jr reachable inside a spawn region
  kPostPassUnknownLabel, // branch to a label that is never defined
  kPostPassMissingJoin,  // spawn region with no join to relocate around
  kPostPassLayout,       // layout cannot be repaired (Fig. 9)
  // Assembly-level legality verifier (asmverify, Section IV-A rules).
  kAsmUnassemblable,     // verifier input does not assemble
  kAsmBadRegion,         // spawn bounds are not a valid text range
  kAsmMissingFence,      // path reaches ps/psm with an outstanding swnb
  kAsmSwnbAtJoin,        // strict mode: swnb outstanding at join/spawn
  kAsmRegionEscape,      // control flow leaves the spawn region (Fig. 9 oracle)
  kAsmMissingJoin,       // no reachable join terminates the region
  kAsmIllegalInRegion,   // spawn/halt/call/return inside a region
  kAsmParallelStack,     // sp referenced inside a region (no parallel stack)
  kAsmUndefSpawnReg,     // in-region read of a never-defined register
  kAsmRegionDataflow,    // Fig. 8: TCU-local write read by serial code
  // Value-range lints (xmtai abstract interpreter). Appended after the asm
  // block: isAsmDiag() tests by enum range.
  kBoundsOutOfRange,     // access provably outside the symbol's extent
  kBoundsMayExceed,      // bounded index range can exceed the extent
  kDivByZero,            // divisor is provably zero (traps at runtime)
  kDivMayBeZero,         // bounded divisor range contains zero
  kShiftRange,           // bounded shift amount escapes [0, 31]
  kPsNonPositive,        // ps increment provably <= 0 (discipline)
  // Model-checker verdicts (xmtmc). Appended after the value-lint block:
  // isValueLintDiag() tests by enum range.
  kMcRace,               // data race witnessed on a concrete schedule
  kMcOrderDependent,     // final state differs between two schedules
  kMcGrConflict,         // non-ps global register conflict between threads
  kMcBudgetExhausted,    // exploration budget hit before exhausting region
  kMcStaticUnsound,      // static independence contradicted dynamically
};

/// Stable short tag for a code ("xmt-race-ww", ...), shown in brackets after
/// the rendered message, GCC -W style.
const char* diagCodeTag(DiagCode code);

struct Diagnostic {
  DiagCode code;
  Severity severity = Severity::kWarning;
  int line = 0;           // XMTC source line of the primary access
  int otherLine = -1;     // conflicting access, when there is one
  std::string symbol;     // location name: global symbol, "<stack>", "<unknown>"
  std::string message;
};

/// "warning: line 4: concurrent writes ... [xmt-race-ww]"
std::string formatDiagnostic(const Diagnostic& d);

/// True if `d` is one of the race-lint findings (as opposed to a semantic
/// diagnostic).
bool isRaceDiag(const Diagnostic& d);

/// True if `d` was produced by the assembly-level verifier (asmverify).
bool isAsmDiag(const Diagnostic& d);

/// True if `d` is one of the value-range lint findings (xmtai).
bool isValueLintDiag(const Diagnostic& d);

/// True if `d` is a model-checker verdict (xmtmc).
bool isMcDiag(const Diagnostic& d);

/// Machine-readable serialization of a diagnostic list (for --diag-json):
/// {"diagnostics":[{"code":...,"severity":...,"line":...,"other_line":...,
/// "symbol":...,"message":...}]}. Deterministic via src/common/json.
std::string diagnosticsJson(const std::vector<Diagnostic>& ds);

/// A diagnostic promoted to a hard failure. Derives CompileError so existing
/// catch sites and tests keep working; carries the structured finding.
class DiagnosticError : public CompileError {
 public:
  explicit DiagnosticError(Diagnostic d)
      : CompileError(d.line, formatDiagnostic(d)), diag_(std::move(d)) {}
  const Diagnostic& diag() const { return diag_; }
  DiagCode code() const { return diag_.code; }

 private:
  Diagnostic diag_;
};

}  // namespace xmt
