// Structured compiler diagnostics.
//
// The race detector and the XMT-specific semantic checks report findings as
// Diagnostic values carrying a stable machine-readable code, a severity, and
// the source location — so tests can assert on the exact finding and drivers
// can render, count, or promote them (-Werror-race) uniformly instead of
// string-matching free-form error text.
#pragma once

#include <string>
#include <vector>

#include "src/common/error.h"

namespace xmt {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

enum class DiagCode : std::uint8_t {
  // XMT semantic rules.
  kDollarOutsideSpawn,   // '$' used outside a spawn body
  // Spawn-region concurrency lint.
  kRaceWriteWrite,       // unsynchronized concurrent writes to one location
  kRaceReadWrite,        // concurrent read/write conflict
  kRaceUnknownAddress,   // write through an unresolvable address (may race)
};

/// Stable short tag for a code ("xmt-race-ww", ...), shown in brackets after
/// the rendered message, GCC -W style.
const char* diagCodeTag(DiagCode code);

struct Diagnostic {
  DiagCode code;
  Severity severity = Severity::kWarning;
  int line = 0;           // XMTC source line of the primary access
  int otherLine = -1;     // conflicting access, when there is one
  std::string symbol;     // location name: global symbol, "<stack>", "<unknown>"
  std::string message;
};

/// "warning: line 4: concurrent writes ... [xmt-race-ww]"
std::string formatDiagnostic(const Diagnostic& d);

/// True if `d` is one of the race-lint findings (as opposed to a semantic
/// diagnostic).
bool isRaceDiag(const Diagnostic& d);

/// A diagnostic promoted to a hard failure. Derives CompileError so existing
/// catch sites and tests keep working; carries the structured finding.
class DiagnosticError : public CompileError {
 public:
  explicit DiagnosticError(Diagnostic d)
      : CompileError(d.line, formatDiagnostic(d)), diag_(std::move(d)) {}
  const Diagnostic& diag() const { return diag_; }
  DiagCode code() const { return diag_.code; }

 private:
  Diagnostic diag_;
};

}  // namespace xmt
