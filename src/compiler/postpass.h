// Compiler post-pass (the SableCC stage of the paper, Section IV-B).
//
// Takes the assembly produced by the core pass, verifies it complies with
// XMT semantics, and repairs the basic-block layout problem of Fig. 9: all
// code of a spawn block must be placed between the spawn and join
// instructions, because the hardware broadcasts exactly that range to the
// TCUs. A basic block that is reachable from the spawn-block entry but laid
// out outside the region is relocated to just before the join, with an
// explicit jump inserted so the preceding code still reaches the join
// (Fig. 9b).
#pragma once

#include <string>

#include "src/compiler/diag.h"

namespace xmt {

struct PostPassReport {
  std::string asmText;     // verified / repaired assembly
  int relocatedBlocks = 0; // how many misplaced blocks were pulled back
  int regionsChecked = 0;
};

/// A post-pass verification failure carrying the structured finding:
/// Diagnostic::line is the assembly line of the offending instruction and
/// Diagnostic::symbol names the spawn-region start label when the failure
/// is attributable to one region. Derives AsmError so existing catch sites
/// keep working.
class PostPassError : public AsmError {
 public:
  explicit PostPassError(Diagnostic d)
      : AsmError(d.line, d.message + " [" + diagCodeTag(d.code) + "]"),
        diag_(std::move(d)) {}
  const Diagnostic& diag() const { return diag_; }
  DiagCode code() const { return diag_.code; }

 private:
  Diagnostic diag_;
};

/// Verifies and repairs assembly text. Throws PostPassError when the layout
/// cannot be repaired or other XMT rules are violated (nested spawn inside
/// a region, missing join, halt inside a region).
PostPassReport runPostPass(const std::string& asmText);

}  // namespace xmt
