// Compiler post-pass (the SableCC stage of the paper, Section IV-B).
//
// Takes the assembly produced by the core pass, verifies it complies with
// XMT semantics, and repairs the basic-block layout problem of Fig. 9: all
// code of a spawn block must be placed between the spawn and join
// instructions, because the hardware broadcasts exactly that range to the
// TCUs. A basic block that is reachable from the spawn-block entry but laid
// out outside the region is relocated to just before the join, with an
// explicit jump inserted so the preceding code still reaches the join
// (Fig. 9b).
#pragma once

#include <string>

namespace xmt {

struct PostPassReport {
  std::string asmText;     // verified / repaired assembly
  int relocatedBlocks = 0; // how many misplaced blocks were pulled back
  int regionsChecked = 0;
};

/// Verifies and repairs assembly text. Throws AsmError when the layout
/// cannot be repaired or other XMT rules are violated (nested spawn inside
/// a region, missing join, halt inside a region).
PostPassReport runPostPass(const std::string& asmText);

}  // namespace xmt
