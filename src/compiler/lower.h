// Lowering from the (analyzed, transformed) XMTC AST to the three-address
// IR. Functions get a CFG; globals and string literals become data items.
#pragma once

#include "src/compiler/ast.h"
#include "src/compiler/ir.h"

namespace xmt {

/// Lowers the translation unit. Throws CompileError for constructs that
/// cannot be compiled (calls remaining in parallel code, locals needing a
/// stack in parallel code, ...).
IrModule lowerToIr(TranslationUnit& tu);

}  // namespace xmt
