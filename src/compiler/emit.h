// Assembly emission from register-allocated IR.
//
// `layoutQuirk` reproduces the GCC behaviour of paper Fig. 9a: a basic
// block that logically belongs to a spawn block is laid out after the
// function tail. The post-pass must detect and repair it; the option exists
// so tests and the compiler-explorer example can exercise that repair on
// demand.
#pragma once

#include <string>
#include <vector>

#include "src/compiler/ir.h"
#include "src/compiler/regalloc.h"

namespace xmt {

std::string emitAssembly(const IrModule& mod,
                         const std::vector<FrameInfo>& frames,
                         bool layoutQuirk);

}  // namespace xmt
