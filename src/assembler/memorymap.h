// Memory-map files: initial values for global variables.
//
// "A memory map file contains the initial values of global variables. ...
// global variables are the only way to provide input to XMTC programs."
//
// Format (one statement per line, '#' comments):
//
//   A = 1 2 3 4 5          # words written starting at symbol A
//   N = 5                  # scalar
//   B[2] = 7               # single element (word index)
//
// Values may be decimal, hex (0x...), or floating point with a trailing 'f'
// (stored as IEEE-754 bits).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/assembler/program.h"

namespace xmt {

struct MemoryMapEntry {
  std::string symbol;
  std::int64_t index = 0;            // word offset within the symbol
  std::vector<std::uint32_t> words;  // raw 32-bit values
};

class MemoryMap {
 public:
  /// Parses memory-map text. Throws AsmError on bad syntax.
  static MemoryMap parse(const std::string& text);

  void add(const std::string& symbol, std::vector<std::uint32_t> words,
           std::int64_t index = 0);

  /// Writes all entries into the program's data segment. Symbols must exist
  /// and entries must fit within the symbol's extent; throws AsmError
  /// otherwise.
  void apply(Program& program) const;

  const std::vector<MemoryMapEntry>& entries() const { return entries_; }

 private:
  std::vector<MemoryMapEntry> entries_;
};

}  // namespace xmt
