// Two-pass assembler for XMT assembly text.
//
// This is the C++ counterpart of the SableCC-generated front-end the paper
// describes: it reads an assembly file and instantiates instruction objects
// for the simulator. Directives:
//
//   .text / .data          switch segment
//   label:                 define a label in the current segment
//   .global name           export `name` to the host / memory-map interface
//   .word v, v, ...        emit 32-bit words (values or symbol names)
//   .float v, v, ...       emit 32-bit IEEE-754 floats
//   .space n               reserve n zero bytes
//   .align n               align to 2^n bytes
//   .asciiz "text"         NUL-terminated string with C escapes
//
// Pseudo-instructions expanded by the assembler: b, beqz, bnez, neg, not.
// Branch/jump targets and `la` resolve to absolute byte addresses.
#pragma once

#include <string>

#include "src/assembler/program.h"

namespace xmt {

/// Assembles `source` into a program image. Throws AsmError with a line
/// number on any syntax or resolution failure.
Program assemble(const std::string& source);

}  // namespace xmt
