// The loadable program image produced by the assembler.
//
// Addresses are byte addresses in a flat 32-bit space. The text segment
// starts at kTextBase with one 4-byte slot per instruction; the data segment
// starts at kDataBase. Symbols name positions in either segment; data symbols
// are the only way to pass input to an XMTC program (the toolchain has no OS
// and no file I/O, exactly as in the paper).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/isa/isa.h"

namespace xmt {

inline constexpr std::uint32_t kTextBase = 0x00001000u;
inline constexpr std::uint32_t kDataBase = 0x10000000u;
inline constexpr std::uint32_t kStackTop = 0x7ffffff0u;

struct Symbol {
  std::uint32_t addr = 0;
  std::uint32_t size = 0;   // bytes (0 for text labels)
  bool isText = false;
  bool isGlobal = false;    // exported via .global (visible to the host API)
};

struct Program {
  std::vector<Instruction> text;      // text[i] lives at kTextBase + 4*i
  std::vector<std::uint8_t> data;     // data[i] lives at kDataBase + i
  std::map<std::string, Symbol> symbols;
  std::uint32_t entry = kTextBase;    // address of "main" or first instruction

  /// Index into `text` for an instruction address; throws on bad address.
  std::size_t textIndex(std::uint32_t addr) const;

  /// Address of a symbol; throws AsmError when undefined.
  const Symbol& symbol(const std::string& name) const;
  bool hasSymbol(const std::string& name) const;
};

}  // namespace xmt
