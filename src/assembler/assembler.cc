#include "src/assembler/assembler.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "src/common/error.h"

namespace xmt {

std::size_t Program::textIndex(std::uint32_t addr) const {
  if (addr < kTextBase || (addr - kTextBase) % 4 != 0)
    throw SimError("bad instruction address 0x" + std::to_string(addr));
  std::size_t idx = (addr - kTextBase) / 4;
  if (idx >= text.size())
    throw SimError("instruction address out of range");
  return idx;
}

const Symbol& Program::symbol(const std::string& name) const {
  auto it = symbols.find(name);
  if (it == symbols.end()) throw AsmError("undefined symbol '" + name + "'");
  return it->second;
}

bool Program::hasSymbol(const std::string& name) const {
  return symbols.count(name) != 0;
}

namespace {

struct Token {
  std::string text;
};

// Splits an assembly operand list on commas, respecting quoted strings.
std::vector<std::string> splitOperands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  bool inStr = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (inStr) {
      cur += c;
      if (c == '\\' && i + 1 < s.size()) cur += s[++i];
      else if (c == '"') inStr = false;
      continue;
    }
    if (c == '"') { inStr = true; cur += c; continue; }
    if (c == ',') { out.push_back(cur); cur.clear(); continue; }
    cur += c;
  }
  if (!cur.empty()) out.push_back(cur);
  // Trim each piece.
  for (auto& p : out) {
    std::size_t b = 0, e = p.size();
    while (b < e && std::isspace(static_cast<unsigned char>(p[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(p[e - 1]))) --e;
    p = p.substr(b, e - b);
  }
  while (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}
bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '$';
}

struct Line {
  int number = 0;
  std::vector<std::string> labels;
  std::string mnemonic;   // directive (leading '.') or instruction
  std::vector<std::string> operands;
};

// Strips comments (# or ;) outside of strings.
std::string stripComment(const std::string& raw) {
  std::string out;
  bool inStr = false;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    char c = raw[i];
    if (inStr) {
      out += c;
      if (c == '\\' && i + 1 < raw.size()) out += raw[++i];
      else if (c == '"') inStr = false;
      continue;
    }
    if (c == '"') { inStr = true; out += c; continue; }
    if (c == '#' || c == ';') break;
    out += c;
  }
  return out;
}

std::vector<Line> tokenizeLines(const std::string& source) {
  std::vector<Line> lines;
  std::istringstream in(source);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string s = stripComment(raw);
    Line line;
    line.number = lineno;
    std::size_t i = 0;
    auto skipWs = [&] {
      while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
        ++i;
    };
    // Labels: ident ':'
    for (;;) {
      skipWs();
      std::size_t save = i;
      if (i < s.size() && isIdentStart(s[i])) {
        std::size_t j = i;
        while (j < s.size() && isIdentChar(s[j])) ++j;
        std::size_t k = j;
        while (k < s.size() && std::isspace(static_cast<unsigned char>(s[k])))
          ++k;
        if (k < s.size() && s[k] == ':') {
          line.labels.push_back(s.substr(i, j - i));
          i = k + 1;
          continue;
        }
      }
      i = save;
      break;
    }
    skipWs();
    if (i < s.size()) {
      std::size_t j = i;
      while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j])))
        ++j;
      line.mnemonic = s.substr(i, j - i);
      line.operands = splitOperands(s.substr(j));
    }
    if (!line.labels.empty() || !line.mnemonic.empty())
      lines.push_back(std::move(line));
  }
  return lines;
}

std::int64_t parseIntValue(const std::string& s, int lineno) {
  const char* c = s.c_str();
  char* end = nullptr;
  long long v = std::strtoll(c, &end, 0);
  if (end == c || *end != '\0')
    throw AsmError(lineno, "bad integer '" + s + "'");
  return v;
}

std::uint32_t parseWordValue(const std::string& s, int lineno) {
  if (!s.empty() && (s.back() == 'f' || s.back() == 'F') &&
      s.find('.') != std::string::npos) {
    float f = std::strtof(s.c_str(), nullptr);
    std::uint32_t bits;
    std::memcpy(&bits, &f, 4);
    return bits;
  }
  return static_cast<std::uint32_t>(parseIntValue(s, lineno));
}

std::string parseStringLiteral(const std::string& s, int lineno) {
  if (s.size() < 2 || s.front() != '"' || s.back() != '"')
    throw AsmError(lineno, "expected string literal");
  std::string out;
  for (std::size_t i = 1; i + 1 < s.size(); ++i) {
    char c = s[i];
    if (c == '\\' && i + 2 < s.size() + 1) {
      char n = s[++i];
      switch (n) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case '0': out += '\0'; break;
        case '\\': out += '\\'; break;
        case '"': out += '"'; break;
        default: out += n; break;
      }
    } else {
      out += c;
    }
  }
  return out;
}

class AssemblerImpl {
 public:
  explicit AssemblerImpl(const std::string& source)
      : lines_(tokenizeLines(source)) {}

  Program run() {
    pass1();
    pass2();
    finalize();
    return std::move(prog_);
  }

 private:
  enum class Seg { kText, kData };

  // Pass 1: lay out segments and record symbol addresses.
  void pass1() {
    Seg seg = Seg::kText;
    std::uint32_t textAddr = kTextBase;
    std::uint32_t dataAddr = kDataBase;
    auto defineLabels = [&](const Line& line) {
      std::uint32_t addr = (seg == Seg::kText) ? textAddr : dataAddr;
      for (const auto& lbl : line.labels) {
        if (prog_.symbols.count(lbl))
          throw AsmError(line.number, "duplicate label '" + lbl + "'");
        Symbol sym;
        sym.addr = addr;
        sym.isText = (seg == Seg::kText);
        prog_.symbols[lbl] = sym;
        lastDataSym_ = (seg == Seg::kData) ? lbl : lastDataSym_;
        if (seg == Seg::kData) openDataSyms_.push_back(lbl);
      }
    };
    for (const auto& line : lines_) {
      if (line.mnemonic == ".text") { seg = Seg::kText; defineLabels(line); continue; }
      if (line.mnemonic == ".data") { seg = Seg::kData; defineLabels(line); continue; }
      defineLabels(line);
      if (line.mnemonic.empty()) continue;
      if (line.mnemonic[0] == '.') {
        std::uint32_t grow = directiveSize(line, seg, dataAddr);
        if (seg == Seg::kData) {
          // Extend the size of open (most recent) data symbols.
          dataAddr += grow;
          for (const auto& name : openDataSyms_)
            prog_.symbols[name].size = dataAddr - prog_.symbols[name].addr;
        } else if (grow != 0) {
          throw AsmError(line.number, "data directive in .text segment");
        }
        continue;
      }
      // New data labels close previous symbol extents only when followed by
      // another label; simplest rule: a label starts a fresh extent list.
      if (seg == Seg::kText) {
        openDataSyms_.clear();
        textAddr += 4 * instructionCount(line);
      } else {
        throw AsmError(line.number, "instruction in .data segment");
      }
      if (!line.labels.empty()) openDataSyms_.clear();
    }
    // Reset open symbol tracking for pass 2 correctness: recompute sizes by
    // scanning symbol addresses (extent = distance to next data symbol).
    fixDataSymbolSizes(dataAddr);
    dataSize_ = dataAddr - kDataBase;
  }

  void fixDataSymbolSizes(std::uint32_t dataEnd) {
    // Deterministic extents: size of each data symbol = gap to the next data
    // symbol address (or segment end). More robust than incremental growth
    // when several labels alias the same address.
    std::vector<std::pair<std::uint32_t, std::string>> datasyms;
    for (auto& [name, sym] : prog_.symbols)
      if (!sym.isText) datasyms.emplace_back(sym.addr, name);
    std::sort(datasyms.begin(), datasyms.end());
    for (std::size_t i = 0; i < datasyms.size(); ++i) {
      std::uint32_t end =
          (i + 1 < datasyms.size()) ? datasyms[i + 1].first : dataEnd;
      auto& sym = prog_.symbols[datasyms[i].second];
      sym.size = end - sym.addr;
    }
  }

  // Returns byte growth of the data segment for a directive (pass 1).
  std::uint32_t directiveSize(const Line& line, Seg seg,
                              std::uint32_t dataAddr) {
    const std::string& d = line.mnemonic;
    if (d == ".global") {
      if (line.operands.size() != 1)
        throw AsmError(line.number, ".global needs one symbol");
      globals_.push_back(line.operands[0]);
      return 0;
    }
    if (d == ".word" || d == ".float")
      return static_cast<std::uint32_t>(4 * line.operands.size());
    if (d == ".space") {
      if (line.operands.size() != 1)
        throw AsmError(line.number, ".space needs one operand");
      auto n = parseIntValue(line.operands[0], line.number);
      if (n < 0) throw AsmError(line.number, ".space with negative size");
      return static_cast<std::uint32_t>(n);
    }
    if (d == ".align") {
      if (line.operands.size() != 1)
        throw AsmError(line.number, ".align needs one operand");
      auto n = parseIntValue(line.operands[0], line.number);
      std::uint32_t a = 1u << n;
      std::uint32_t aligned = (dataAddr + a - 1) & ~(a - 1);
      return aligned - dataAddr;
    }
    if (d == ".asciiz") {
      if (line.operands.size() != 1)
        throw AsmError(line.number, ".asciiz needs one string");
      return static_cast<std::uint32_t>(
          parseStringLiteral(line.operands[0], line.number).size() + 1);
    }
    if (seg == Seg::kData || d == ".text" || d == ".data") return 0;
    throw AsmError(line.number, "unknown directive '" + d + "'");
  }

  // Number of machine instructions a mnemonic line expands to.
  std::size_t instructionCount(const Line& line) {
    // All pseudo-instructions expand 1:1 in this assembler.
    (void)line;
    return 1;
  }

  std::int32_t resolveValue(const std::string& s, int lineno) {
    if (s.empty()) throw AsmError(lineno, "empty operand");
    if (isIdentStart(s[0]) && parseReg(s) < 0) {
      auto it = prog_.symbols.find(s);
      if (it == prog_.symbols.end())
        throw AsmError(lineno, "undefined symbol '" + s + "'");
      return static_cast<std::int32_t>(it->second.addr);
    }
    return static_cast<std::int32_t>(parseIntValue(s, lineno));
  }

  int reqReg(const std::string& s, int lineno) {
    int r = parseReg(s);
    if (r < 0) throw AsmError(lineno, "bad register '" + s + "'");
    return r;
  }

  // Parses "imm(rs)" or "sym(rs)" or "sym" (rs = zero).
  void parseMemOperand(const std::string& s, int lineno, Instruction& in) {
    auto lp = s.find('(');
    if (lp == std::string::npos) {
      in.imm = resolveValue(s, lineno);
      in.rs = kZero;
      return;
    }
    auto rp = s.rfind(')');
    if (rp == std::string::npos || rp < lp)
      throw AsmError(lineno, "bad memory operand '" + s + "'");
    std::string off = s.substr(0, lp);
    std::string base = s.substr(lp + 1, rp - lp - 1);
    in.imm = off.empty() ? 0 : resolveValue(off, lineno);
    in.rs = static_cast<std::uint8_t>(reqReg(base, lineno));
  }

  void pass2() {
    prog_.data.assign(dataSize_, 0);
    Seg seg = Seg::kText;
    std::uint32_t dataAddr = kDataBase;
    for (const auto& line : lines_) {
      if (line.mnemonic.empty()) continue;
      if (line.mnemonic == ".text") { seg = Seg::kText; continue; }
      if (line.mnemonic == ".data") { seg = Seg::kData; continue; }
      if (line.mnemonic[0] == '.') {
        emitDirective(line, seg, dataAddr);
        continue;
      }
      emitInstruction(line);
    }
  }

  void emitDirective(const Line& line, Seg seg, std::uint32_t& dataAddr) {
    const std::string& d = line.mnemonic;
    auto putWord = [&](std::uint32_t w) {
      std::size_t off = dataAddr - kDataBase;
      XMT_CHECK(off + 4 <= prog_.data.size());
      std::memcpy(prog_.data.data() + off, &w, 4);
      dataAddr += 4;
    };
    if (d == ".word") {
      for (const auto& opnd : line.operands) {
        if (!opnd.empty() && isIdentStart(opnd[0]) && parseReg(opnd) < 0)
          putWord(static_cast<std::uint32_t>(resolveValue(opnd, line.number)));
        else
          putWord(parseWordValue(opnd, line.number));
      }
    } else if (d == ".float") {
      for (const auto& opnd : line.operands) {
        float f = std::strtof(opnd.c_str(), nullptr);
        std::uint32_t bits;
        std::memcpy(&bits, &f, 4);
        putWord(bits);
      }
    } else if (d == ".space") {
      dataAddr += static_cast<std::uint32_t>(
          parseIntValue(line.operands[0], line.number));
    } else if (d == ".align") {
      auto n = parseIntValue(line.operands[0], line.number);
      std::uint32_t a = 1u << n;
      dataAddr = (dataAddr + a - 1) & ~(a - 1);
    } else if (d == ".asciiz") {
      std::string s = parseStringLiteral(line.operands[0], line.number);
      std::size_t off = dataAddr - kDataBase;
      XMT_CHECK(off + s.size() + 1 <= prog_.data.size());
      std::memcpy(prog_.data.data() + off, s.data(), s.size());
      prog_.data[off + s.size()] = 0;
      dataAddr += static_cast<std::uint32_t>(s.size() + 1);
    }
    (void)seg;
  }

  void emitInstruction(const Line& line) {
    std::string mn = line.mnemonic;
    std::vector<std::string> ops = line.operands;
    // Pseudo-instruction expansion.
    if (mn == "b") { mn = "j"; }
    else if (mn == "beqz") { mn = "beq"; ops.insert(ops.begin() + 1, "zero"); }
    else if (mn == "bnez") { mn = "bne"; ops.insert(ops.begin() + 1, "zero"); }
    else if (mn == "neg") { mn = "sub"; ops.insert(ops.begin() + 1, "zero"); }
    else if (mn == "not") { mn = "nor"; ops.push_back("zero"); }

    Op op = opByName(mn);
    if (op == Op::kOpCount)
      throw AsmError(line.number, "unknown instruction '" + mn + "'");
    const OpInfo& info = opInfo(op);
    Instruction in;
    in.op = op;
    in.srcLine = line.number;
    auto need = [&](std::size_t n) {
      if (ops.size() != n)
        throw AsmError(line.number, mn + " expects " + std::to_string(n) +
                                        " operands");
    };
    switch (info.format) {
      case OpFormat::kR3:
        need(3);
        in.rd = static_cast<std::uint8_t>(reqReg(ops[0], line.number));
        in.rs = static_cast<std::uint8_t>(reqReg(ops[1], line.number));
        in.rt = static_cast<std::uint8_t>(reqReg(ops[2], line.number));
        break;
      case OpFormat::kR2I:
        need(3);
        in.rd = static_cast<std::uint8_t>(reqReg(ops[0], line.number));
        in.rs = static_cast<std::uint8_t>(reqReg(ops[1], line.number));
        in.imm = resolveValue(ops[2], line.number);
        break;
      case OpFormat::kRI:
        need(2);
        in.rd = static_cast<std::uint8_t>(reqReg(ops[0], line.number));
        in.imm = resolveValue(ops[1], line.number);
        break;
      case OpFormat::kRL:
        need(2);
        in.rd = static_cast<std::uint8_t>(reqReg(ops[0], line.number));
        in.imm = resolveValue(ops[1], line.number);
        break;
      case OpFormat::kR2:
        need(2);
        in.rd = static_cast<std::uint8_t>(reqReg(ops[0], line.number));
        in.rs = static_cast<std::uint8_t>(reqReg(ops[1], line.number));
        break;
      case OpFormat::kMem:
        if (op == Op::kPref) {  // pref has no register operand
          need(1);
          in.rt = kZero;
          parseMemOperand(ops[0], line.number, in);
          break;
        }
        need(2);
        in.rt = static_cast<std::uint8_t>(reqReg(ops[0], line.number));
        parseMemOperand(ops[1], line.number, in);
        break;
      case OpFormat::kBr2:
        need(3);
        in.rs = static_cast<std::uint8_t>(reqReg(ops[0], line.number));
        in.rt = static_cast<std::uint8_t>(reqReg(ops[1], line.number));
        in.imm = resolveValue(ops[2], line.number);
        break;
      case OpFormat::kJump:
        need(1);
        in.imm = resolveValue(ops[0], line.number);
        break;
      case OpFormat::kR1:
        need(1);
        in.rs = static_cast<std::uint8_t>(reqReg(ops[0], line.number));
        break;
      case OpFormat::kR1L:
        need(2);
        break;
      case OpFormat::kGr: {
        need(2);
        in.rd = static_cast<std::uint8_t>(reqReg(ops[0], line.number));
        const std::string& g = ops[1];
        if (g.size() < 3 || g.compare(0, 2, "gr") != 0)
          throw AsmError(line.number, "expected global register grN");
        // The suffix must be fully numeric: atoi would quietly turn "grx"
        // into gr0 and "gr1junk" into gr1.
        int n = 0;
        for (std::size_t i = 2; i < g.size(); ++i) {
          char c = g[i];
          if (!std::isdigit(static_cast<unsigned char>(c)))
            throw AsmError(line.number,
                           "bad global register '" + g + "': expected grN");
          n = n * 10 + (c - '0');
          if (n >= kNumGlobalRegs)
            throw AsmError(line.number, "global register out of range");
        }
        in.rt = static_cast<std::uint8_t>(n);
        break;
      }
      case OpFormat::kSpawn:
        need(2);
        in.imm = resolveValue(ops[0], line.number);
        in.imm2 = resolveValue(ops[1], line.number);
        break;
      case OpFormat::kImm:
        need(1);
        in.imm = resolveValue(ops[0], line.number);
        break;
      case OpFormat::kNone:
        need(0);
        break;
    }
    prog_.text.push_back(in);
  }

  void finalize() {
    for (const auto& g : globals_) {
      auto it = prog_.symbols.find(g);
      if (it == prog_.symbols.end())
        throw AsmError(".global for undefined symbol '" + g + "'");
      it->second.isGlobal = true;
    }
    if (prog_.hasSymbol("main")) {
      const Symbol& m = prog_.symbol("main");
      if (!m.isText) throw AsmError("'main' is not a text symbol");
      prog_.entry = m.addr;
    }
  }

  std::vector<Line> lines_;
  Program prog_;
  std::vector<std::string> globals_;
  std::vector<std::string> openDataSyms_;
  std::string lastDataSym_;
  std::uint32_t dataSize_ = 0;
};

}  // namespace

Program assemble(const std::string& source) {
  return AssemblerImpl(source).run();
}

}  // namespace xmt
