#include "src/assembler/memorymap.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "src/common/error.h"

namespace xmt {

namespace {

std::uint32_t parseWord(const std::string& s, int lineno) {
  if (s.find('.') != std::string::npos ||
      (!s.empty() && (s.back() == 'f' || s.back() == 'F') &&
       s.find("0x") != 0)) {
    float f = std::strtof(s.c_str(), nullptr);
    std::uint32_t bits;
    std::memcpy(&bits, &f, 4);
    return bits;
  }
  const char* c = s.c_str();
  char* end = nullptr;
  long long v = std::strtoll(c, &end, 0);
  if (end == c || *end != '\0')
    throw AsmError(lineno, "memory map: bad value '" + s + "'");
  return static_cast<std::uint32_t>(v);
}

}  // namespace

MemoryMap MemoryMap::parse(const std::string& text) {
  MemoryMap map;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    // Trim.
    std::size_t b = 0, e = line.size();
    while (b < e && std::isspace(static_cast<unsigned char>(line[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(line[e - 1]))) --e;
    line = line.substr(b, e - b);
    if (line.empty()) continue;

    auto eq = line.find('=');
    if (eq == std::string::npos)
      throw AsmError(lineno, "memory map: expected 'name = values'");
    std::string lhs = line.substr(0, eq);
    std::string rhs = line.substr(eq + 1);
    // Trim lhs.
    while (!lhs.empty() && std::isspace(static_cast<unsigned char>(lhs.back())))
      lhs.pop_back();

    MemoryMapEntry entry;
    auto lb = lhs.find('[');
    if (lb != std::string::npos) {
      auto rb = lhs.find(']');
      if (rb == std::string::npos || rb < lb)
        throw AsmError(lineno, "memory map: bad index syntax");
      entry.symbol = lhs.substr(0, lb);
      entry.index = std::strtoll(lhs.substr(lb + 1, rb - lb - 1).c_str(),
                                 nullptr, 0);
    } else {
      entry.symbol = lhs;
    }
    if (entry.symbol.empty())
      throw AsmError(lineno, "memory map: empty symbol name");

    std::istringstream vals(rhs);
    std::string v;
    while (vals >> v) entry.words.push_back(parseWord(v, lineno));
    if (entry.words.empty())
      throw AsmError(lineno, "memory map: no values for '" + entry.symbol +
                                 "'");
    map.entries_.push_back(std::move(entry));
  }
  return map;
}

void MemoryMap::add(const std::string& symbol,
                    std::vector<std::uint32_t> words, std::int64_t index) {
  MemoryMapEntry e;
  e.symbol = symbol;
  e.index = index;
  e.words = std::move(words);
  entries_.push_back(std::move(e));
}

void MemoryMap::apply(Program& program) const {
  for (const auto& e : entries_) {
    const Symbol& sym = program.symbol(e.symbol);
    if (sym.isText)
      throw AsmError("memory map: '" + e.symbol + "' is a text symbol");
    std::uint64_t byteOff =
        static_cast<std::uint64_t>(e.index) * 4;
    std::uint64_t end = byteOff + e.words.size() * 4;
    if (end > sym.size)
      throw AsmError("memory map: write to '" + e.symbol + "' (" +
                     std::to_string(end) + " bytes) exceeds its extent (" +
                     std::to_string(sym.size) + " bytes)");
    std::size_t base = sym.addr - kDataBase + byteOff;
    XMT_CHECK(base + e.words.size() * 4 <= program.data.size());
    std::memcpy(program.data.data() + base, e.words.data(),
                e.words.size() * 4);
  }
}

}  // namespace xmt
