// xmtsmith: seeded whole-program XMTC generator with a host-side reference
// interpreter — the program half of the differential-fuzzing oracle.
//
// Csmith-style randomized differential testing (the way gem5 and MGSim earn
// cross-model trust) needs three things from a generator: every program must
// be *well-defined* (no UB to disagree about), *terminating* (bounded loops),
// and *order-independent* (identical architectural results whether the spawn
// hardware interleaves virtual threads or the functional model serializes
// them). xmtsmith generates from a restricted grammar that guarantees all
// three by construction:
//
//   - integers only; arithmetic is 32-bit two's-complement wrap on both
//     sides (the host interpreter computes in uint32, exactly like the
//     simulator's ALU);
//   - shift counts are masked `& 31` in the emitted source, divisors are
//     forced odd with `| 1` (never zero; INT_MIN/-1 follows the simulator's
//     wrap rule);
//   - array sizes are powers of two and every computed index is masked
//     `& (size-1)` — always in bounds;
//   - loops are counted (`for`/`while` over a fresh variable the body never
//     writes) with literal bounds;
//   - spawn bodies follow the XMT discipline: per-thread-owned writes only
//     (`A[$] = ...`), commutative `ps`/`psm` accumulation into targets that
//     are touched by nothing else inside the region, and the prefix-sum
//     result locals are never read afterwards — so the final memory state
//     does not depend on thread execution order;
//   - printf only in serial code (thread interleaving would reorder it);
//   - helper functions are pure (parameters in, value out) so calls are
//     legal both serially and inside spawn regions (where the compiler
//     inlines them).
//
// The generated program is kept as a small value-typed AST (the materialized
// decision trace of the generator): it renders to XMTC text for the
// toolchain, interprets directly on the host for the reference leg of the
// oracle, and supports structural surgery for the delta-debugging reducer.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace xmt::testing {

// ---------------------------------------------------------------------------
// Generated-program AST (value types; deep-copyable for the reducer)
// ---------------------------------------------------------------------------

struct GenExpr;
using GenExprPtr = std::unique_ptr<GenExpr>;

struct GenExpr {
  enum class Kind : std::uint8_t {
    kLit,     // intVal
    kVar,     // name (local or global scalar)
    kIndex,   // name[ kids[0] & (size-1) ]; mask emitted by render()
    kDollar,  // $ (spawn bodies only)
    kUnary,   // op: '-' '~' '!'
    kBinary,  // op: + - * / % & | ^ l(<<) r(>>) < > L(<=) G(>=) e(==)
              //     n(!=) A(&&) O(||)
    kCond,    // kids[0] ? kids[1] : kids[2]
    kCall,    // name(kids...)
  };
  Kind kind = Kind::kLit;
  char op = 0;
  std::int32_t intVal = 0;
  std::string name;
  int mask = 0;  // kIndex: size-1 of the array at generation time
  std::vector<GenExprPtr> kids;

  GenExprPtr clone() const;
};

struct GenStmt;
using GenStmtPtr = std::unique_ptr<GenStmt>;

struct GenStmt {
  enum class Kind : std::uint8_t {
    kDecl,    // int name = expr;
    kAssign,  // name = expr;  or  name[index & mask] = expr;
    kIf,      // if (expr) body [else elseBody]
    kFor,     // for (int name = 0; name < bound; name++) body
    kWhile,   // int name = 0; while (name < bound) { body; name = name + 1; }
    kPrintf,  // printf(format, args...) — serial code only
    kPs,      // int tmp = expr; ps(tmp, name);      tmp never read again
    kPsm,     // int tmp = expr; psm(tmp, name[idx]); tmp never read again
    kSpawn,   // spawn(0, count-1) body
    kBlock,   // { body... }
  };
  Kind kind = Kind::kBlock;
  std::string name;             // decl/assign/loop-var/ps-psm target
  std::string tmpName;          // kPs/kPsm scratch local
  std::int32_t bound = 0;       // kFor/kWhile literal bound
  int count = 0;                // kSpawn thread count
  int mask = 0;                 // kAssign/kPsm array index mask
  std::string format;           // kPrintf
  GenExprPtr index;             // kAssign/kPsm array index (null: scalar)
  GenExprPtr value;             // kDecl/kAssign/kPs/kPsm value expression
  std::vector<GenExprPtr> args; // kPrintf arguments
  std::vector<GenStmtPtr> body;
  std::vector<GenStmtPtr> elseBody;

  GenStmtPtr clone() const;
};

struct GenGlobal {
  std::string name;
  bool isArray = false;
  int size = 1;          // power of two for arrays
  bool isPsBase = false; // psBaseReg (scalar, lives in a global register)
  std::int32_t init = 0;
};

struct GenFunc {
  std::string name;
  std::vector<std::string> params;  // int parameters
  std::vector<GenStmtPtr> body;     // decls/if/for over params+locals only
  GenExprPtr ret;                   // return expression

  GenFunc clone() const;
};

/// A generated whole program: the materialized decision trace of one seed.
struct GenProgram {
  std::uint64_t seed = 0;
  std::vector<GenGlobal> globals;
  std::vector<GenFunc> funcs;
  std::vector<GenStmtPtr> main;

  GenProgram clone() const;
  /// Renders the program as XMTC source text.
  std::string render() const;
  /// Number of text lines render() produces (reducer size metric).
  int lineCount() const;

  const GenGlobal* findGlobal(const std::string& name) const;
  const GenFunc* findFunc(const std::string& name) const;
};

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

struct GenOptions {
  int maxFuncs = 2;          // pure helper functions
  int maxScalarGlobals = 5;  // plus up to one psBaseReg
  int maxArrayGlobals = 4;
  int maxArraySize = 64;     // power of two, >= largest spawn count
  int maxTopStmts = 10;      // top-level statements in main
  int maxBlockStmts = 5;     // statements per nested block
  int maxDepth = 3;          // statement nesting depth
  int maxExprDepth = 4;
  int maxLoopBound = 10;
  int maxSpawnCount = 48;    // virtual threads per spawn
  bool allowPrintf = true;
};

/// Deterministically generates a program from `seed`: same seed, same
/// program, on every platform (xoshiro-backed Rng).
GenProgram generate(std::uint64_t seed, const GenOptions& opts = {});

// ---------------------------------------------------------------------------
// Host reference interpretation
// ---------------------------------------------------------------------------

/// Final architectural state of a host reference run. Mirrors exactly what
/// the simulator exposes: named globals (arrays flattened), printf output,
/// and the halt code.
struct RefResult {
  bool ok = false;          // false: step budget exhausted (generator bug)
  std::string error;
  std::int32_t haltCode = 0;
  std::string output;
  /// Final values of all memory-resident globals (psBaseReg values are
  /// mirrored into their `out_<name>` shadow global by the generator's
  /// epilogue, so everything observable is here). Scalars have size 1.
  std::map<std::string, std::vector<std::int32_t>> globals;
};

/// Executes the program on the host. Spawn bodies run serially in thread-ID
/// order — legal because the generation discipline makes results
/// order-independent. `stepBudget` guards the interpreter against generator
/// bugs; generated loops are bounded, so hitting it is itself a finding.
RefResult interpret(const GenProgram& prog,
                    std::uint64_t stepBudget = 20'000'000);

}  // namespace xmt::testing
