#include "src/testing/diffrun.h"

#include <cstdio>
#include <exception>
#include <sstream>

#include "src/assembler/assembler.h"
#include "src/campaign/spec.h"
#include "src/compiler/analysis/asmverify.h"
#include "src/core/toolchain.h"

namespace xmt::testing {

// ---------------------------------------------------------------------------
// Configuration sampling
// ---------------------------------------------------------------------------

std::vector<DiffConfigPoint> configPointsFromSpec(
    const std::string& specText) {
  auto spec = campaign::CampaignSpec::fromText(specText);
  std::vector<DiffConfigPoint> points;
  for (auto& p : spec.expand()) {
    // A fuzzing spec fixes workload/mode, so every expanded point is a
    // distinct machine; drop accidental duplicates all the same.
    bool dup = false;
    for (const auto& q : points) dup = dup || q.name == p.key;
    if (!dup) points.push_back({p.key, std::move(p.config)});
  }
  return points;
}

std::vector<DiffConfigPoint> defaultConfigPoints() {
  return configPointsFromSpec(
      "campaign = xmtsmith-default\n"
      "base = fpga64\n"
      "workload = vadd\n"
      "sweep.clusters = 2,8\n"
      "sweep.dram_latency = 20,100\n");
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

namespace {

std::string clip(const std::string& s, std::size_t n = 160) {
  if (s.size() <= n) return s;
  return s.substr(0, n) + "...";
}

struct LegState {
  bool ok = false;
  std::string error;
  std::int32_t haltCode = 0;
  std::string output;
  std::uint64_t digest = 0;
  std::map<std::string, std::vector<std::int32_t>> globals;
};

LegState runLeg(const Program& program, const XmtConfig& config, SimMode mode,
                const Oracle* oracle, std::uint64_t maxInstructions) {
  LegState leg;
  try {
    XmtConfig cfg = config;
    cfg.maxInstructions = maxInstructions;
    Simulator sim(program, cfg, mode);
    RunResult r = sim.run();
    if (!r.halted) {
      leg.error = "did not halt";
      return leg;
    }
    leg.haltCode = r.haltCode;
    leg.output = r.output;
    leg.digest = sim.memoryDigest();
    if (oracle != nullptr)
      for (const auto& [name, expect] : oracle->globals) {
        auto got = sim.getGlobalArray(name);
        if (got.size() > expect.size()) got.resize(expect.size());
        leg.globals.emplace(name, std::move(got));
      }
    leg.ok = true;
  } catch (const std::exception& e) {
    leg.error = e.what();
  }
  return leg;
}

void compareWithOracle(const Oracle& oracle, const LegState& leg,
                       const std::string& legName, int opt,
                       const std::string& configName, DiffOutcome& out) {
  if (leg.haltCode != oracle.haltCode) {
    out.mismatches.push_back(
        {"halt-code", opt, configName,
         legName + ": halt code " + std::to_string(leg.haltCode) +
             ", reference " + std::to_string(oracle.haltCode)});
    return;
  }
  if (leg.output != oracle.output) {
    out.mismatches.push_back(
        {"output", opt, configName,
         legName + ": printf output \"" + clip(escapeString(leg.output)) +
             "\", reference \"" + clip(escapeString(oracle.output)) + "\""});
    return;
  }
  for (const auto& [name, expect] : oracle.globals) {
    auto it = leg.globals.find(name);
    if (it == leg.globals.end() || it->second != expect) {
      std::ostringstream detail;
      detail << legName << ": global " << name << " differs";
      if (it != leg.globals.end()) {
        for (std::size_t i = 0; i < expect.size(); ++i) {
          if (i >= it->second.size() || it->second[i] != expect[i]) {
            detail << " at [" << i << "]: got "
                   << (i < it->second.size()
                           ? std::to_string(it->second[i])
                           : std::string("<missing>"))
                   << ", reference " << expect[i];
            break;
          }
        }
      }
      out.mismatches.push_back({"global", opt, configName, detail.str()});
      return;
    }
  }
}

}  // namespace

std::string DiffOutcome::describe() const {
  std::ostringstream os;
  for (const auto& m : mismatches) {
    os << "[" << m.kind << "] -O" << m.optLevel;
    if (!m.configName.empty()) os << " {" << m.configName << "}";
    os << ": " << m.detail << "\n";
  }
  return os.str();
}

DiffOutcome runDiffSource(const std::string& source, const Oracle* oracle,
                          const DiffOptions& opts) {
  DiffOutcome out;
  std::vector<DiffConfigPoint> configs =
      opts.configs.empty() && opts.cycleLegs ? defaultConfigPoints()
                                             : opts.configs;
  for (int opt : opts.optLevels) {
    Program program;
    try {
      CompilerOptions copts;
      copts.optLevel = opt;
      copts.outline = opts.outline;
      copts.werrorAsm = opts.werrorAsm;
      if (opts.fenceOracle) {
        CompileResult cres = compileXmtc(source, copts);
        analysis::AsmVerifyOptions vo;
        vo.strictSpawnFence = true;
        bool fenceFinding = false;
        for (const Diagnostic& d :
             analysis::verifyAssembly(cres.asmText, vo)) {
          if (d.code != DiagCode::kAsmMissingFence &&
              d.code != DiagCode::kAsmSwnbAtJoin)
            continue;
          out.mismatches.push_back({"fence", opt, "", formatDiagnostic(d)});
          fenceFinding = true;
        }
        if (fenceFinding) continue;  // execution legs cannot observe it
        program = assemble(cres.asmText);
      } else {
        program = compileToProgram(source, copts);
      }
    } catch (const std::exception& e) {
      out.mismatches.push_back({"compile-error", opt, "", e.what()});
      continue;
    }

    // Functional leg: the fast mode the paper recommends for debugging must
    // agree with the reference on everything architectural.
    LegState func = runLeg(program, XmtConfig::fpga64(), SimMode::kFunctional,
                           oracle, opts.maxInstructions);
    ++out.legsRun;
    if (!func.ok) {
      out.mismatches.push_back(
          {"sim-error", opt, "", "functional: " + func.error});
      continue;
    }
    if (oracle != nullptr)
      compareWithOracle(*oracle, func, "functional", opt, "", out);

    if (!opts.cycleLegs) continue;

    // Cycle-accurate legs across the sampled machines: each must agree with
    // the reference AND hash to the same memory as the functional run.
    for (const auto& point : configs) {
      LegState cyc = runLeg(program, point.config, SimMode::kCycleAccurate,
                            oracle, opts.maxInstructions);
      ++out.legsRun;
      if (!cyc.ok) {
        out.mismatches.push_back(
            {"sim-error", opt, point.name, "cycle: " + cyc.error});
        continue;
      }
      if (oracle != nullptr)
        compareWithOracle(*oracle, cyc, "cycle", opt, point.name, out);
      if (cyc.haltCode == func.haltCode && cyc.output == func.output &&
          cyc.digest != func.digest) {
        std::ostringstream detail;
        detail << "memoryDigest functional=" << std::hex << func.digest
               << " cycle=" << cyc.digest;
        out.mismatches.push_back({"digest", opt, point.name, detail.str()});
      }
    }
  }
  return out;
}

DiffOutcome runDiff(const GenProgram& prog, const DiffOptions& opts) {
  DiffOutcome out;
  RefResult ref = interpret(prog);
  if (!ref.ok) {
    out.mismatches.push_back({"ref-budget", 0, "", ref.error});
    return out;
  }
  Oracle oracle;
  oracle.haltCode = ref.haltCode;
  oracle.output = ref.output;
  oracle.globals = ref.globals;
  DiffOutcome run = runDiffSource(prog.render(), &oracle, opts);
  return run;
}

std::function<bool(const GenProgram&)> mismatchPredicate(
    const Mismatch& m, const DiffOptions& opts) {
  DiffOptions narrowed = opts;
  narrowed.optLevels = {m.optLevel};
  if (m.configName.empty()) {
    // Reference-vs-functional finding: the cycle legs cannot influence it,
    // and skipping them makes reduction probes an order of magnitude
    // cheaper.
    narrowed.cycleLegs = false;
    narrowed.configs.clear();
  } else {
    std::vector<DiffConfigPoint> all =
        opts.configs.empty() ? defaultConfigPoints() : opts.configs;
    narrowed.configs.clear();
    for (auto& p : all)
      if (p.name == m.configName) narrowed.configs.push_back(std::move(p));
  }
  std::string kind = m.kind;
  return [narrowed, kind](const GenProgram& candidate) {
    try {
      DiffOutcome out = runDiff(candidate, narrowed);
      for (const auto& mm : out.mismatches)
        if (mm.kind == kind) return true;
      return false;
    } catch (...) {
      return false;
    }
  };
}

// ---------------------------------------------------------------------------
// Corpus files
// ---------------------------------------------------------------------------

std::string escapeString(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\x%02x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string unescapeString(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case '\\': out += '\\'; break;
      case '"': out += '"'; break;
      case 'x': {
        if (i + 2 < s.size()) {
          out += static_cast<char>(
              std::stoi(s.substr(i + 1, 2), nullptr, 16));
          i += 2;
        }
        break;
      }
      default: out += s[i];
    }
  }
  return out;
}

std::string renderCorpusFile(const std::string& source, const Oracle& oracle,
                             const std::string& reproComment) {
  std::ostringstream os;
  os << "// xmtsmith corpus program — replayed by tests/test_corpus.cc\n";
  if (!reproComment.empty()) os << "// repro: " << reproComment << "\n";
  os << "// EXPECT-HALT: " << oracle.haltCode << "\n";
  os << "// EXPECT-OUTPUT: \"" << escapeString(oracle.output) << "\"\n";
  for (const auto& [name, vals] : oracle.globals) {
    os << "// EXPECT: " << name;
    for (auto v : vals) os << " " << v;
    os << "\n";
  }
  os << source;
  return os.str();
}

Oracle parseCorpusExpectations(const std::string& fileText) {
  Oracle oracle;
  std::istringstream is(fileText);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("// EXPECT-HALT: ", 0) == 0) {
      oracle.haltCode = std::stoi(line.substr(16));
    } else if (line.rfind("// EXPECT-OUTPUT: \"", 0) == 0) {
      std::size_t open = line.find('"');
      std::size_t close = line.rfind('"');
      if (close > open)
        oracle.output =
            unescapeString(line.substr(open + 1, close - open - 1));
    } else if (line.rfind("// EXPECT: ", 0) == 0) {
      std::istringstream ls(line.substr(11));
      std::string name;
      ls >> name;
      std::vector<std::int32_t> vals;
      long long v = 0;
      while (ls >> v) vals.push_back(static_cast<std::int32_t>(v));
      if (!name.empty()) oracle.globals.emplace(name, std::move(vals));
    }
  }
  return oracle;
}

}  // namespace xmt::testing
