// Delta-debugging reducer for xmtsmith findings.
//
// A fuzzer finding is only actionable once it is small. Because xmtsmith
// keeps the generated program as an AST (the generator's materialized
// decision trace), reduction is structural surgery rather than text
// hacking: every candidate the reducer probes is still a well-defined,
// terminating, order-independent XMTC program *by construction*, so the
// host reference stays a valid oracle throughout. The reducer greedily
// iterates four passes to a fixpoint, re-checking the caller's "still
// fails" predicate after every mutation:
//
//   1. statement deletion (chunked halves, then singles, deepest lists too);
//   2. structure simplification (if -> its then-block, loop bounds -> 1,
//      spawn thread counts -> 4);
//   3. expression shrinking (any subtree -> literal 0, then 1);
//   4. garbage collection of now-unreferenced globals and helper functions.
//
// Candidates that no longer reproduce (including ones that no longer
// compile — deleting a declaration can orphan a use) are rolled back.
#pragma once

#include <functional>

#include "src/testing/xmtsmith.h"

namespace xmt::testing {

struct ReduceOptions {
  /// Probe budget: every predicate evaluation costs one compile+run per
  /// enabled oracle leg, so this bounds reduction wall time.
  int maxProbes = 4000;
};

struct ReduceResult {
  GenProgram program;     // the smallest failing variant found
  int probes = 0;         // predicate evaluations spent
  bool reproduced = false;  // false: the input never satisfied `fails`
};

/// Shrinks `prog` while `fails` keeps returning true. `fails` is typically
/// diffrun's mismatchPredicate(). Deterministic: same input and predicate,
/// same reduction.
ReduceResult reduceProgram(const GenProgram& prog,
                           const std::function<bool(const GenProgram&)>& fails,
                           const ReduceOptions& opts = {});

}  // namespace xmt::testing
