// xmtmc: exhaustive spawn-region interleaving exploration with DPOR.
//
// The functional simulator serializes spawn regions, so every existing
// oracle — the static race lint, the dynamic RaceCheckPlugin, xmtsmith
// differential fuzzing — observes exactly one schedule per run, and "no
// violation found" never means "no reachable interleaving violates it".
// McExplorer closes that gap: installed as the FuncModel's RegionRunner it
// intercepts each spawn region, snapshots the architectural state (memory,
// global registers, printf transcript) and enumerates the causally distinct
// visible-operation interleavings by stateless replay under
// Flanagan/Godefroid dynamic partial-order reduction with sleep sets.
//
// Verified properties, per region:
//   * data-race freedom — any cross-thread pair of overlapping accesses
//     with a write that is not psm-against-psm (the paper's sanctioned
//     concurrent update) is reported as kMcRace, matching RaceCheckPlugin
//     semantics, with the schedule prefix that exposed it as a witness;
//   * global-register discipline — mtgr inside a region, or a gr read
//     racing a concurrent ps, is kMcGrConflict;
//   * order-independence — the digest of memory + global registers after
//     every complete trace must equal the first (serial-order) trace's;
//     a divergence is kMcOrderDependent with the full schedule as witness.
//     The printf transcript and statically order-permuted symbols (ps-
//     allocated compaction targets; see mcheck.h) are masked.
//
// Static pruning: pairs of ps/psm operations at source lines proven
// order-commutative by computeMcFacts never generate backtrack points —
// this is what collapses a ps-counter region from n! traces to one. Pairs
// of accesses at provably thread-private lines skip straight to a
// disjointness cross-check; an overlap there means the static algebra was
// wrong and is reported as kMcStaticUnsound.
//
// Budgets are explicit: a region that exceeds maxTracesPerRegion /
// maxTransitionsPerRegion is reported kMcBudgetExhausted (never a silent
// pass) and falls back to seeded random schedule perturbation, which runs
// the same per-trace checks without the exhaustiveness claim.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "src/compiler/analysis/mcheck.h"
#include "src/compiler/diag.h"
#include "src/sim/funcmodel.h"
#include "src/workloads/registry.h"

namespace xmt::testing {

struct McOptions {
  std::uint64_t maxTracesPerRegion = 4096;
  std::uint64_t maxTransitionsPerRegion = 2000000;
  std::uint64_t maxInstructions = 200000000;  // functional runaway guard
  bool staticPrune = true;    // use McStaticFacts to shrink the dependence
  std::uint64_t perturbSeed = 1;  // seed for the budget-exhausted fallback
  int perturbRounds = 8;          // random schedules after exhaustion
  std::set<std::string> digestExclude;  // extra masked symbols (registry)
};

/// One region's exploration statistics.
struct McRegionReport {
  std::uint64_t spawnSeq = 0;
  std::uint32_t threads = 0;
  std::uint64_t traces = 0;       // complete interleavings executed
  std::uint64_t transitions = 0;  // visible operations executed, all traces
  std::uint64_t sleepSkips = 0;   // sleep-set-blocked prefixes abandoned
  std::uint64_t prunedPairs = 0;  // dependence tests short-cut statically
  /// log10 of the naive interleaving count (the multinomial over the
  /// serial trace's per-thread step counts) — the denominator of the
  /// reduction factor.
  double naiveLog10 = 0.0;
  bool exhaustive = false;  // every Mazurkiewicz trace within budget
  int perturbRounds = 0;    // fallback schedules run after exhaustion
};

struct McViolation {
  Diagnostic diag;
  std::uint64_t spawnSeq = 0;
  /// Witness: thread index (region-local, 0-based) per visible step, from
  /// region entry up to and including the violating step. Replaying it
  /// through RegionExec reproduces the violation deterministically.
  std::vector<std::uint32_t> schedule;
};

struct McResult {
  bool ran = false;  // runFunctional completed (halted or not)
  bool halted = false;
  std::int32_t haltCode = 0;
  std::uint64_t instructions = 0;
  std::string output;
  std::string error;  // SimError text when the run aborted
  std::vector<McViolation> violations;
  std::vector<McRegionReport> regions;
  /// Violations plus budget notes, in discovery order (for --diag-json).
  std::vector<Diagnostic> diagnostics;

  bool clean() const { return violations.empty() && error.empty(); }
  bool allExhaustive() const {
    for (const McRegionReport& r : regions)
      if (!r.exhaustive) return false;
    return true;
  }
  /// Exhaustively verified free of violations.
  bool verified() const { return ran && clean() && allExhaustive(); }
};

/// "t0*3 t1*2 t0" — run-length rendering of a schedule witness.
std::string renderSchedule(const std::vector<std::uint32_t>& schedule);

/// The DPOR region runner. Install on a FuncModel with setRegionRunner,
/// run, then read violations()/regions(). `facts` may be null (no static
/// pruning). Not reusable across runs: make a fresh explorer per program.
class McExplorer : public RegionRunner {
 public:
  McExplorer(const Program& prog, const McOptions& opts,
             const analysis::McStaticFacts* facts);

  std::uint64_t runRegion(FuncModel& fm, const Context& master,
                          std::uint32_t startPc, std::uint32_t low,
                          std::uint32_t high, std::uint64_t spawnSeq,
                          std::uint64_t instrBudget, CommitObserver* observer,
                          Stats* stats) override;

  const std::vector<McViolation>& violations() const { return violations_; }
  const std::vector<McRegionReport>& regions() const { return regions_; }
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }

 private:
  struct PairClass {
    bool dependent = false;
    bool pruned = false;  // independent by a static fact
    DiagCode violation = DiagCode::kDollarOutsideSpawn;  // sentinel
    bool hasViolation = false;
  };
  struct StepRec {
    std::size_t thread = 0;
    RegionExec::VisibleOp op;
    std::vector<std::uint32_t> clockAfter;
  };
  struct Node {
    std::size_t chosen = 0;
    StepRec step;
    std::vector<std::size_t> done;
    std::vector<std::size_t> backtrack;
    std::vector<std::size_t> sleepBase;
  };

  PairClass classifyPair(const RegionExec::VisibleOp& a,
                         const RegionExec::VisibleOp& b) const;
  void recordViolation(DiagCode code, const RegionExec::VisibleOp& earlier,
                       const RegionExec::VisibleOp& later,
                       std::uint64_t spawnSeq,
                       const std::vector<std::uint32_t>& schedule);
  void explore(FuncModel& fm, const Context& master, std::uint32_t startPc,
               std::uint32_t low, std::uint32_t high, std::uint64_t spawnSeq,
               std::uint64_t instrBudget, const FuncModel::ArchState& entry,
               McRegionReport& rep);
  void perturb(FuncModel& fm, const Context& master, std::uint32_t startPc,
               std::uint32_t low, std::uint32_t high, std::uint64_t spawnSeq,
               std::uint64_t instrBudget, const FuncModel::ArchState& entry,
               McRegionReport& rep);
  std::uint64_t digestState(const FuncModel& fm) const;
  std::string symbolAt(std::uint32_t addr) const;

  const Program& prog_;
  McOptions opts_;
  const analysis::McStaticFacts* facts_;
  std::vector<McViolation> violations_;
  std::vector<McRegionReport> regions_;
  std::vector<Diagnostic> diagnostics_;
  std::set<std::string> emitted_;  // violation dedup keys
  std::uint64_t refDigest_ = 0;    // current region's serial-trace digest
  bool haveRef_ = false;
  // Data symbols sorted by address, for violation naming.
  std::vector<std::pair<std::uint32_t, std::pair<std::uint32_t, std::string>>>
      dataSyms_;
};

/// Model-checks a loaded program image. `facts` may be null; `prepare`
/// (may be empty) fills input globals before the run.
McResult modelCheckProgram(
    const Program& prog, const McOptions& opts = {},
    const analysis::McStaticFacts* facts = nullptr,
    const std::function<void(FuncModel&)>& prepare = {});

/// Compiles `source` with default options, computes the static facts on
/// the lint lowering, and model-checks the result.
McResult modelCheckSource(const std::string& source,
                          const McOptions& opts = {});

/// Model-checks a registry workload instance: builds its source and input
/// (instancePrepare), merges the entry's digestExclude set into the
/// order-independence mask, and runs under a functional Simulator so any
/// attached plugins observe the committed replay.
McResult modelCheckWorkload(const workloads::WorkloadInstance& w,
                            McOptions opts = {});

/// A discipline-violation mutant for the self-validation harness: XMTC
/// source derived from a clean template by one seeded mutation.
struct McMutant {
  std::string name;
  std::string source;
  bool shouldViolate = true;  // false: the unmutated clean original
};

/// The fixed mutant corpus: clean originals (shouldViolate = false) plus
/// >= 20 seeded ps/psm/ordering violations that xmtmc must catch with a
/// concrete schedule witness.
std::vector<McMutant> disciplineMutants();

}  // namespace xmt::testing
