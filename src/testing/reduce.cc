#include "src/testing/reduce.h"

#include <iterator>
#include <set>
#include <utility>
#include <vector>

namespace xmt::testing {

namespace {

GenExprPtr literal(std::int32_t v) {
  auto e = std::make_unique<GenExpr>();
  e->kind = GenExpr::Kind::kLit;
  e->intVal = v;
  return e;
}

struct Reducer {
  GenProgram cur;
  const std::function<bool(const GenProgram&)>& fails;
  int probes = 0;
  int maxProbes;

  bool budget() const { return probes < maxProbes; }

  bool test() {
    ++probes;
    return fails(cur);
  }

  // ---- pass 1: statement deletion ----

  bool tryEraseRange(std::vector<GenStmtPtr>& list, std::size_t b,
                     std::size_t n) {
    if (!budget() || n == 0 || b + n > list.size()) return false;
    std::vector<GenStmtPtr> saved;
    saved.insert(saved.end(),
                 std::make_move_iterator(list.begin() +
                                         static_cast<std::ptrdiff_t>(b)),
                 std::make_move_iterator(
                     list.begin() + static_cast<std::ptrdiff_t>(b + n)));
    list.erase(list.begin() + static_cast<std::ptrdiff_t>(b),
               list.begin() + static_cast<std::ptrdiff_t>(b + n));
    if (test()) return true;
    list.insert(list.begin() + static_cast<std::ptrdiff_t>(b),
                std::make_move_iterator(saved.begin()),
                std::make_move_iterator(saved.end()));
    return false;
  }

  bool shrinkList(std::vector<GenStmtPtr>& list) {
    bool progress = false;
    // Coarse first: halves, while they keep disappearing.
    while (budget() && list.size() >= 4) {
      std::size_t half = list.size() / 2;
      if (tryEraseRange(list, half, list.size() - half) ||
          tryEraseRange(list, 0, half)) {
        progress = true;
        continue;
      }
      break;
    }
    // Then singles, back to front (later statements depend on earlier ones,
    // so deleting from the end succeeds more often).
    for (std::size_t i = list.size(); i-- > 0;)
      if (tryEraseRange(list, i, 1)) progress = true;
    return progress;
  }

  bool deletePass() {
    bool progress = false;
    auto walk = [&](auto&& self, std::vector<GenStmtPtr>& list) -> void {
      if (shrinkList(list)) progress = true;
      for (auto& s : list) {
        self(self, s->body);
        self(self, s->elseBody);
      }
    };
    walk(walk, cur.main);
    for (auto& f : cur.funcs) walk(walk, f.body);
    return progress;
  }

  // ---- pass 2: structure simplification ----

  bool tryMutateStmt(GenStmt& s, const std::function<void(GenStmt&)>& mut) {
    if (!budget()) return false;
    GenStmtPtr backup = s.clone();
    mut(s);
    if (test()) return true;
    s = std::move(*backup);
    return false;
  }

  bool structPass() {
    bool progress = false;
    std::vector<GenStmt*> stmts;
    auto collect = [&](auto&& self,
                       std::vector<GenStmtPtr>& list) -> void {
      for (auto& s : list) {
        stmts.push_back(s.get());
        self(self, s->body);
        self(self, s->elseBody);
      }
    };
    collect(collect, cur.main);
    for (auto& f : cur.funcs) collect(collect, f.body);

    for (GenStmt* s : stmts) {
      switch (s->kind) {
        case GenStmt::Kind::kIf:
          // if (c) B else E  ->  { B }
          progress |= tryMutateStmt(*s, [](GenStmt& st) {
            st.kind = GenStmt::Kind::kBlock;
            st.value.reset();
            st.elseBody.clear();
          });
          break;
        case GenStmt::Kind::kFor:
        case GenStmt::Kind::kWhile:
          if (s->bound > 1)
            progress |= tryMutateStmt(*s, [](GenStmt& st) { st.bound = 1; });
          break;
        case GenStmt::Kind::kSpawn:
          if (s->count > 4)
            progress |= tryMutateStmt(*s, [](GenStmt& st) { st.count = 4; });
          break;
        default:
          break;
      }
    }
    return progress;
  }

  // ---- pass 3: expression shrinking ----

  void collectSlots(std::vector<GenExprPtr*>& out) {
    auto walkExpr = [&](auto&& self, GenExprPtr& e) -> void {
      if (!e) return;
      out.push_back(&e);
      for (auto& k : e->kids) self(self, k);
    };
    auto walkStmts = [&](auto&& self,
                         std::vector<GenStmtPtr>& list) -> void {
      for (auto& s : list) {
        if (s->index) walkExpr(walkExpr, s->index);
        if (s->value) walkExpr(walkExpr, s->value);
        for (auto& a : s->args) walkExpr(walkExpr, a);
        self(self, s->body);
        self(self, s->elseBody);
      }
    };
    walkStmts(walkStmts, cur.main);
    for (auto& f : cur.funcs) {
      walkStmts(walkStmts, f.body);
      if (f.ret) walkExpr(walkExpr, f.ret);
    }
  }

  bool exprPass() {
    bool progress = false;
    bool changed = true;
    while (changed && budget()) {
      changed = false;
      std::vector<GenExprPtr*> slots;
      collectSlots(slots);
      for (GenExprPtr* slot : slots) {
        if ((*slot)->kind == GenExpr::Kind::kLit) continue;
        if (!budget()) break;
        for (std::int32_t v : {0, 1}) {
          GenExprPtr backup = std::move(*slot);
          *slot = literal(v);
          if (test()) {
            progress = changed = true;
            break;
          }
          *slot = std::move(backup);
        }
        // A successful replacement destroyed the subtree the collected
        // pointers walked through; re-collect from scratch.
        if (changed) break;
      }
    }
    return progress;
  }

  // ---- pass 4: unreferenced-symbol garbage collection ----

  void referencedNames(std::set<std::string>& out) {
    auto walkExpr = [&](auto&& self, const GenExprPtr& e) -> void {
      if (!e) return;
      if (!e->name.empty()) out.insert(e->name);
      for (const auto& k : e->kids) self(self, k);
    };
    auto walkStmts = [&](auto&& self,
                         const std::vector<GenStmtPtr>& list) -> void {
      for (const auto& s : list) {
        if (!s->name.empty()) out.insert(s->name);
        walkExpr(walkExpr, s->index);
        walkExpr(walkExpr, s->value);
        for (const auto& a : s->args) walkExpr(walkExpr, a);
        self(self, s->body);
        self(self, s->elseBody);
      }
    };
    walkStmts(walkStmts, cur.main);
    for (const auto& f : cur.funcs) {
      walkStmts(walkStmts, f.body);
      walkExpr(walkExpr, f.ret);
    }
  }

  bool gcPass() {
    bool progress = false;
    std::set<std::string> used;
    referencedNames(used);
    for (std::size_t i = cur.funcs.size(); i-- > 0;) {
      if (used.count(cur.funcs[i].name) != 0 || !budget()) continue;
      GenFunc saved = std::move(cur.funcs[i]);
      cur.funcs.erase(cur.funcs.begin() + static_cast<std::ptrdiff_t>(i));
      if (test()) {
        progress = true;
      } else {
        cur.funcs.insert(cur.funcs.begin() + static_cast<std::ptrdiff_t>(i),
                         std::move(saved));
      }
    }
    for (std::size_t i = cur.globals.size(); i-- > 0;) {
      if (used.count(cur.globals[i].name) != 0 || !budget()) continue;
      GenGlobal saved = cur.globals[i];
      cur.globals.erase(cur.globals.begin() +
                        static_cast<std::ptrdiff_t>(i));
      if (test()) {
        progress = true;
      } else {
        cur.globals.insert(
            cur.globals.begin() + static_cast<std::ptrdiff_t>(i), saved);
      }
    }
    return progress;
  }
};

}  // namespace

ReduceResult reduceProgram(
    const GenProgram& prog,
    const std::function<bool(const GenProgram&)>& fails,
    const ReduceOptions& opts) {
  ReduceResult r;
  Reducer red{prog.clone(), fails, 0, opts.maxProbes};
  if (!red.test()) {
    r.program = prog.clone();
    r.probes = red.probes;
    return r;
  }
  r.reproduced = true;
  bool progress = true;
  while (progress && red.budget()) {
    progress = false;
    progress |= red.deletePass();
    progress |= red.structPass();
    progress |= red.exprPass();
    progress |= red.gcPass();
  }
  r.program = std::move(red.cur);
  r.probes = red.probes;
  return r;
}

}  // namespace xmt::testing
