// diffrun: the three-way differential oracle around xmtsmith programs.
//
// One generated program is executed three ways — host reference interpreter,
// SimMode::kFunctional, and SimMode::kCycleAccurate — at every requested
// optimization level and across a sampled set of machine configurations
// (reusing the campaign grid machinery for the sampling). Any disagreement
// in halt code, printf output, named-global values, or (between the two
// simulator modes) Simulator::memoryDigest() is a finding. The same oracle
// replays corpus .xmtc files whose expectations are embedded as comments, so
// reduced reproducers stay checked forever without carrying their generator
// AST around.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/config.h"
#include "src/testing/xmtsmith.h"

namespace xmt::testing {

// ---------------------------------------------------------------------------
// Configuration sampling
// ---------------------------------------------------------------------------

struct DiffConfigPoint {
  std::string name;  // canonical campaign point key
  XmtConfig config;
};

/// Builds config points from a campaign sweep spec (only the machine
/// dimensions matter; workload/mode fields are ignored).
std::vector<DiffConfigPoint> configPointsFromSpec(const std::string& specText);

/// The default sample: fpga64 swept over cluster count and DRAM latency
/// (4 points — small/large machine, fast/slow memory).
std::vector<DiffConfigPoint> defaultConfigPoints();

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

/// Reference expectations for one program: what every leg must observe.
/// Produced either by the host interpreter (generated programs) or parsed
/// from EXPECT comments (corpus files).
struct Oracle {
  std::int32_t haltCode = 0;
  std::string output;
  /// Named globals to compare (scalars have size 1). For corpus files this
  /// is exactly the set of EXPECT lines; for generated programs, every
  /// memory-resident global.
  std::map<std::string, std::vector<std::int32_t>> globals;
};

/// One disagreement. `kind` is stable and machine-matchable (the reducer
/// predicate keys on it): "compile-error", "sim-error", "halt-code",
/// "output", "global", "digest", "ref-budget".
struct Mismatch {
  std::string kind;
  int optLevel = 0;
  std::string configName;  // empty for functional-only comparisons
  std::string detail;
};

struct DiffOutcome {
  std::vector<Mismatch> mismatches;
  int legsRun = 0;
  bool ok() const { return mismatches.empty(); }
  /// Human-readable one-line-per-mismatch summary.
  std::string describe() const;
};

struct DiffOptions {
  std::vector<int> optLevels = {0, 1, 2};
  std::vector<DiffConfigPoint> configs;  // empty: defaultConfigPoints()
  std::uint64_t maxInstructions = 200'000'000;
  /// When false, only the reference-vs-functional comparison runs (used by
  /// reduction predicates for findings the cycle legs cannot influence).
  bool cycleLegs = true;
  /// Compile without the outlining pre-pass. Outlined codegen never emits
  /// fences in the spawn helper (it contains no stores), which masks the
  /// drop-fence fault injection entirely (DESIGN.md section 8.5); with
  /// outlining off the fences stay in the spawning function and the fault
  /// becomes observable.
  bool outline = true;
  /// Promote asm-verifier findings to CompileError so a deleted fence
  /// surfaces as a "compile-error" mismatch instead of a warning the
  /// oracle never sees. Note un-outlined codegen legitimately trips the
  /// Fig. 8 machine-level rule on some generated programs, so this is too
  /// blunt for a clean `--no-outline` baseline; prefer `fenceOracle`.
  bool werrorAsm = false;
  /// Re-verify the emitted assembly with AsmVerifyOptions::strictSpawnFence
  /// and report any fence finding (missing fence on a path to ps/psm, or
  /// swnb outstanding at spawn) as a mismatch of kind "fence". Combined
  /// with `outline = false` this makes the drop-fence fault injection
  /// observable in a time-boxed CI sweep while staying silent on clean
  /// compilations.
  bool fenceOracle = false;
};

/// Full oracle over a generated program: interprets it on the host, then
/// compares every (opt level x mode x config) simulator leg against the
/// reference and against each other (memoryDigest functional == cycle).
DiffOutcome runDiff(const GenProgram& prog, const DiffOptions& opts = {});

/// Same oracle legs over raw XMTC text with an externally supplied
/// reference (corpus replay). If `oracle` is null only the cross-mode
/// digest/output/halt comparisons run.
DiffOutcome runDiffSource(const std::string& source, const Oracle* oracle,
                          const DiffOptions& opts = {});

/// Builds a reduction predicate: true iff `prog` still yields a mismatch of
/// `m.kind` at m.optLevel (and m.configName, when set). Variants that fail
/// to compile for a *different* reason than the original mismatch do not
/// reproduce (surgery artifacts must not steer the reduction).
std::function<bool(const GenProgram&)> mismatchPredicate(
    const Mismatch& m, const DiffOptions& opts = {});

// ---------------------------------------------------------------------------
// Corpus files
// ---------------------------------------------------------------------------

/// Renders a self-contained corpus file: repro-command header, EXPECT
/// comment block (halt code, escaped output, every oracle global), then the
/// program text.
std::string renderCorpusFile(const std::string& source, const Oracle& oracle,
                             const std::string& reproComment);

/// Parses the EXPECT comment block out of a corpus file (the whole file is
/// still valid XMTC — expectations live in comments).
Oracle parseCorpusExpectations(const std::string& fileText);

/// C-style escaping used by EXPECT-OUTPUT lines.
std::string escapeString(const std::string& s);
std::string unescapeString(const std::string& s);

}  // namespace xmt::testing
