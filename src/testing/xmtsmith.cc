#include "src/testing/xmtsmith.h"

#include <cstdio>
#include <sstream>

#include "src/common/rng.h"

namespace xmt::testing {

// ---------------------------------------------------------------------------
// Deep copies
// ---------------------------------------------------------------------------

GenExprPtr GenExpr::clone() const {
  auto e = std::make_unique<GenExpr>();
  e->kind = kind;
  e->op = op;
  e->intVal = intVal;
  e->name = name;
  e->mask = mask;
  for (const auto& k : kids) e->kids.push_back(k->clone());
  return e;
}

GenStmtPtr GenStmt::clone() const {
  auto s = std::make_unique<GenStmt>();
  s->kind = kind;
  s->name = name;
  s->tmpName = tmpName;
  s->bound = bound;
  s->count = count;
  s->mask = mask;
  s->format = format;
  if (index) s->index = index->clone();
  if (value) s->value = value->clone();
  for (const auto& a : args) s->args.push_back(a->clone());
  for (const auto& b : body) s->body.push_back(b->clone());
  for (const auto& b : elseBody) s->elseBody.push_back(b->clone());
  return s;
}

GenFunc GenFunc::clone() const {
  GenFunc f;
  f.name = name;
  f.params = params;
  for (const auto& s : body) f.body.push_back(s->clone());
  if (ret) f.ret = ret->clone();
  return f;
}

GenProgram GenProgram::clone() const {
  GenProgram p;
  p.seed = seed;
  p.globals = globals;
  for (const auto& f : funcs) p.funcs.push_back(f.clone());
  for (const auto& s : main) p.main.push_back(s->clone());
  return p;
}

const GenGlobal* GenProgram::findGlobal(const std::string& name) const {
  for (const auto& g : globals)
    if (g.name == name) return &g;
  return nullptr;
}

const GenFunc* GenProgram::findFunc(const std::string& name) const {
  for (const auto& f : funcs)
    if (f.name == name) return &f;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

namespace {

std::string lit(std::int32_t v) {
  // The lexer rejects out-of-range literals and the parser has no unary
  // minus on literals, so negatives render as (0 - X), like the other
  // property tests do.
  if (v < 0)
    return "(0 - " + std::to_string(-static_cast<std::int64_t>(v)) + ")";
  return std::to_string(v);
}

std::string renderExpr(const GenExpr& e) {
  switch (e.kind) {
    case GenExpr::Kind::kLit:
      return lit(e.intVal);
    case GenExpr::Kind::kVar:
      return e.name;
    case GenExpr::Kind::kIndex:
      return e.name + "[(" + renderExpr(*e.kids[0]) + ") & " +
             std::to_string(e.mask) + "]";
    case GenExpr::Kind::kDollar:
      return "$";
    case GenExpr::Kind::kUnary:
      return std::string("(") + e.op + renderExpr(*e.kids[0]) + ")";
    case GenExpr::Kind::kCond:
      return "(" + renderExpr(*e.kids[0]) + " ? " + renderExpr(*e.kids[1]) +
             " : " + renderExpr(*e.kids[2]) + ")";
    case GenExpr::Kind::kCall: {
      std::string s = e.name + "(";
      for (std::size_t i = 0; i < e.kids.size(); ++i) {
        if (i) s += ", ";
        s += renderExpr(*e.kids[i]);
      }
      return s + ")";
    }
    case GenExpr::Kind::kBinary: {
      const std::string a = renderExpr(*e.kids[0]);
      const std::string b = renderExpr(*e.kids[1]);
      switch (e.op) {
        // Well-definedness guards are part of the rendering contract: the
        // host interpreter applies the identical transformation.
        case '/': return "(" + a + " / (" + b + " | 1))";
        case '%': return "(" + a + " % (" + b + " | 1))";
        case 'l': return "(" + a + " << (" + b + " & 31))";
        case 'r': return "(" + a + " >> (" + b + " & 31))";
        case 'L': return "(" + a + " <= " + b + ")";
        case 'G': return "(" + a + " >= " + b + ")";
        case 'e': return "(" + a + " == " + b + ")";
        case 'n': return "(" + a + " != " + b + ")";
        case 'A': return "(" + a + " && " + b + ")";
        case 'O': return "(" + a + " || " + b + ")";
        default:
          return "(" + a + " " + std::string(1, e.op) + " " + b + ")";
      }
    }
  }
  return "0";
}

void renderStmts(std::ostringstream& out, const std::vector<GenStmtPtr>& body,
                 int indent);

void renderStmt(std::ostringstream& out, const GenStmt& s, int indent) {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  switch (s.kind) {
    case GenStmt::Kind::kDecl:
      out << pad << "int " << s.name << " = " << renderExpr(*s.value)
          << ";\n";
      return;
    case GenStmt::Kind::kAssign:
      if (s.index)
        out << pad << s.name << "[(" << renderExpr(*s.index) << ") & "
            << s.mask << "] = " << renderExpr(*s.value) << ";\n";
      else
        out << pad << s.name << " = " << renderExpr(*s.value) << ";\n";
      return;
    case GenStmt::Kind::kIf:
      out << pad << "if (" << renderExpr(*s.value) << ") {\n";
      renderStmts(out, s.body, indent + 1);
      if (!s.elseBody.empty()) {
        out << pad << "} else {\n";
        renderStmts(out, s.elseBody, indent + 1);
      }
      out << pad << "}\n";
      return;
    case GenStmt::Kind::kFor:
      out << pad << "for (int " << s.name << " = 0; " << s.name << " < "
          << s.bound << "; " << s.name << "++) {\n";
      renderStmts(out, s.body, indent + 1);
      out << pad << "}\n";
      return;
    case GenStmt::Kind::kWhile:
      out << pad << "int " << s.name << " = 0;\n";
      out << pad << "while (" << s.name << " < " << s.bound << ") {\n";
      renderStmts(out, s.body, indent + 1);
      out << pad << "  " << s.name << " = " << s.name << " + 1;\n";
      out << pad << "}\n";
      return;
    case GenStmt::Kind::kPrintf: {
      out << pad << "printf(\"" << s.format << "\"";
      for (const auto& a : s.args) out << ", " << renderExpr(*a);
      out << ");\n";
      return;
    }
    case GenStmt::Kind::kPs:
      out << pad << "{ int " << s.tmpName << " = " << renderExpr(*s.value)
          << "; ps(" << s.tmpName << ", " << s.name << "); }\n";
      return;
    case GenStmt::Kind::kPsm:
      out << pad << "{ int " << s.tmpName << " = " << renderExpr(*s.value)
          << "; psm(" << s.tmpName << ", " << s.name;
      if (s.index)
        out << "[(" << renderExpr(*s.index) << ") & " << s.mask << "]";
      out << "); }\n";
      return;
    case GenStmt::Kind::kSpawn:
      out << pad << "spawn(0, " << s.count - 1 << ") {\n";
      renderStmts(out, s.body, indent + 1);
      out << pad << "}\n";
      return;
    case GenStmt::Kind::kBlock:
      out << pad << "{\n";
      renderStmts(out, s.body, indent + 1);
      out << pad << "}\n";
      return;
  }
}

void renderStmts(std::ostringstream& out, const std::vector<GenStmtPtr>& body,
                 int indent) {
  for (const auto& s : body) renderStmt(out, *s, indent);
}

}  // namespace

std::string GenProgram::render() const {
  std::ostringstream out;
  for (const auto& g : globals) {
    if (g.isPsBase)
      out << "psBaseReg " << g.name << " = " << lit(g.init) << ";\n";
    else if (g.isArray)
      out << "int " << g.name << "[" << g.size << "];\n";
    else
      out << "int " << g.name << " = " << lit(g.init) << ";\n";
  }
  for (const auto& f : funcs) {
    out << "int " << f.name << "(";
    for (std::size_t i = 0; i < f.params.size(); ++i) {
      if (i) out << ", ";
      out << "int " << f.params[i];
    }
    out << ") {\n";
    renderStmts(out, f.body, 1);
    out << "  return " << renderExpr(*f.ret) << ";\n}\n";
  }
  out << "int main() {\n";
  renderStmts(out, main, 1);
  out << "  return 0;\n}\n";
  return out.str();
}

int GenProgram::lineCount() const {
  const std::string s = render();
  int n = 0;
  for (char c : s)
    if (c == '\n') ++n;
  return n;
}

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

namespace {

// What a statement/expression generator may touch at the current point.
// Spawn regions get a role partition over the globals that guarantees
// order-independence (see header comment).
struct Ctx {
  bool inSpawn = false;
  bool inFunc = false;  // helper-function body: must stay side-effect-free
  int depth = 0;
  std::vector<std::string> locals;          // readable locals
  std::vector<std::string> writableLocals;  // assignable (spawn: own frame)
  std::vector<std::string> roScalars;       // readable scalar globals
  std::vector<std::string> writableScalars; // assignable (serial only)
  std::vector<const GenGlobal*> roArrays;   // arbitrary-index reads
  std::vector<const GenGlobal*> rwArrays;   // serial: arbitrary-index writes
  std::vector<const GenGlobal*> ownArrays;  // spawn: [$] read/write only
  std::vector<const GenGlobal*> accumArrays;// spawn: psm targets only
  std::vector<std::string> accumScalars;    // spawn: psm targets only
  std::string psBase;                       // spawn: ps target ("" = none)
  std::vector<int> callees;  // indices of functions callable here
};

class Generator {
 public:
  Generator(std::uint64_t seed, const GenOptions& o)
      : rng_(seed * 0x9e3779b97f4a7c15ull + 0xd1b54a32d192ed03ull), o_(o) {
    prog_.seed = seed;
  }

  GenProgram run() {
    makeGlobals();
    makeFuncs();
    Ctx ctx = serialCtx();
    int n = 3 + static_cast<int>(rng_.below(
                    static_cast<std::uint64_t>(o_.maxTopStmts - 2)));
    for (int i = 0; i < n; ++i)
      prog_.main.push_back(genStmt(ctx, /*allowSpawn=*/true));
    if (spawns_ == 0) prog_.main.push_back(genSpawn(ctx));
    // Epilogue: mirror psBaseReg accumulators into memory-resident shadow
    // globals so the oracle (and corpus EXPECT lines) can observe them.
    for (const auto& g : prog_.globals) {
      if (!g.isPsBase) continue;
      auto s = std::make_unique<GenStmt>();
      s->kind = GenStmt::Kind::kAssign;
      s->name = "out_" + g.name;
      s->value = varRef(g.name);
      prog_.main.push_back(std::move(s));
    }
    return std::move(prog_);
  }

 private:
  Rng rng_;
  GenOptions o_;
  GenProgram prog_;
  int nameSeq_ = 0;
  int spawns_ = 0;
  std::vector<bool> simpleFuncs_;  // per-func: inlinable into spawn regions

  std::string fresh(const char* stem) {
    return stem + std::to_string(nameSeq_++);
  }

  static GenExprPtr literal(std::int32_t v) {
    auto e = std::make_unique<GenExpr>();
    e->kind = GenExpr::Kind::kLit;
    e->intVal = v;
    return e;
  }

  static GenExprPtr varRef(const std::string& name) {
    auto e = std::make_unique<GenExpr>();
    e->kind = GenExpr::Kind::kVar;
    e->name = name;
    return e;
  }

  void makeGlobals() {
    int nScalars = 2 + static_cast<int>(rng_.below(
                           static_cast<std::uint64_t>(o_.maxScalarGlobals - 1)));
    for (int i = 0; i < nScalars; ++i) {
      GenGlobal g;
      g.name = fresh("g");
      // Global initializers must be plain constants (no expressions), so
      // negatives — which render as (0 - N) — are not available here.
      g.init = static_cast<std::int32_t>(rng_.range(0, 99));
      prog_.globals.push_back(g);
    }
    int nArrays = 2 + static_cast<int>(rng_.below(
                          static_cast<std::uint64_t>(o_.maxArrayGlobals - 1)));
    for (int i = 0; i < nArrays; ++i) {
      GenGlobal g;
      g.name = fresh("arr");
      g.isArray = true;
      int size = 8;
      while (size < o_.maxArraySize && rng_.chance(0.55)) size *= 2;
      g.size = size;
      prog_.globals.push_back(g);
    }
    if (rng_.chance(0.8)) {
      GenGlobal ps;
      ps.name = fresh("psb");
      ps.isPsBase = true;
      prog_.globals.push_back(ps);
      GenGlobal shadow;
      shadow.name = "out_" + ps.name;
      prog_.globals.push_back(shadow);
    }
  }

  void makeFuncs() {
    int n = static_cast<int>(rng_.below(
        static_cast<std::uint64_t>(o_.maxFuncs + 1)));
    for (int i = 0; i < n; ++i) {
      GenFunc f;
      f.name = fresh("fn");
      int nParams = 1 + static_cast<int>(rng_.below(3));
      for (int k = 0; k < nParams; ++k) f.params.push_back(fresh("a"));
      // Only single-return-expression functions can be inlined into spawn
      // regions (there is no parallel stack), and inlining is transitive —
      // so "simple" functions call only earlier simple functions, and only
      // they are reachable from parallel code.
      bool simple = rng_.chance(0.5);
      Ctx ctx;  // pure: parameters and locals only, no globals
      ctx.inFunc = true;
      ctx.locals = f.params;
      ctx.writableLocals.clear();  // parameters stay read-only
      for (int k = 0; k < i; ++k)
        if (!simple || simpleFuncs_[static_cast<std::size_t>(k)])
          ctx.callees.push_back(k);
      ctx.depth = o_.maxDepth - 1;  // keep helper bodies shallow
      if (!simple) {
        int nStmts = static_cast<int>(rng_.below(4));
        // Bodies reference only locals: seed one so assigns have a target.
        auto d = std::make_unique<GenStmt>();
        d->kind = GenStmt::Kind::kDecl;
        d->name = fresh("l");
        d->value = genExpr(ctx, 2);
        ctx.locals.push_back(d->name);
        ctx.writableLocals.push_back(d->name);
        f.body.push_back(std::move(d));
        for (int k = 0; k < nStmts; ++k)
          f.body.push_back(genFuncStmt(ctx));
      }
      f.ret = genExpr(ctx, o_.maxExprDepth - 1);
      simpleFuncs_.push_back(simple);
      prog_.funcs.push_back(std::move(f));
    }
  }

  Ctx serialCtx() {
    Ctx ctx;
    for (const auto& g : prog_.globals) {
      if (g.isPsBase) {
        ctx.roScalars.push_back(g.name);  // serial read of the accumulator
      } else if (g.isArray) {
        ctx.roArrays.push_back(&g);
        ctx.rwArrays.push_back(&g);
      } else {
        ctx.roScalars.push_back(g.name);
        ctx.writableScalars.push_back(g.name);
      }
    }
    for (int k = 0; k < static_cast<int>(prog_.funcs.size()); ++k)
      ctx.callees.push_back(k);
    return ctx;
  }

  // ---- expressions ----

  GenExprPtr genExpr(const Ctx& ctx, int depth) {
    if (depth <= 0 || rng_.chance(0.28)) return genLeaf(ctx);
    double roll = rng_.uniform();
    auto e = std::make_unique<GenExpr>();
    if (roll < 0.10) {
      e->kind = GenExpr::Kind::kUnary;
      static const char ops[] = {'-', '~', '!'};
      e->op = ops[rng_.below(3)];
      e->kids.push_back(genExpr(ctx, depth - 1));
    } else if (roll < 0.18) {
      e->kind = GenExpr::Kind::kCond;
      e->kids.push_back(genExpr(ctx, depth - 1));
      e->kids.push_back(genExpr(ctx, depth - 1));
      e->kids.push_back(genExpr(ctx, depth - 1));
    } else if (roll < 0.28 && !ctx.callees.empty()) {
      const GenFunc& f = prog_.funcs[static_cast<std::size_t>(
          ctx.callees[rng_.below(ctx.callees.size())])];
      e->kind = GenExpr::Kind::kCall;
      e->name = f.name;
      for (std::size_t k = 0; k < f.params.size(); ++k)
        e->kids.push_back(genExpr(ctx, depth - 1));
    } else {
      e->kind = GenExpr::Kind::kBinary;
      static const char ops[] = {'+', '+', '-', '-', '*', '&', '|', '^',
                                 '/', '%', 'l', 'r', '<', '>', 'L', 'G',
                                 'e', 'n', 'A', 'O'};
      e->op = ops[rng_.below(sizeof(ops))];
      e->kids.push_back(genExpr(ctx, depth - 1));
      e->kids.push_back(genExpr(ctx, depth - 1));
    }
    return e;
  }

  GenExprPtr genLeaf(const Ctx& ctx) {
    // Collect candidate leaves, then pick uniformly among categories.
    for (int attempt = 0; attempt < 4; ++attempt) {
      double roll = rng_.uniform();
      if (roll < 0.30) {
        std::int32_t v = rng_.chance(0.2)
                             ? static_cast<std::int32_t>(
                                   rng_.range(-100000, 100000))
                             : static_cast<std::int32_t>(rng_.range(-64, 64));
        return literal(v);
      }
      if (roll < 0.55 && !ctx.locals.empty())
        return varRef(ctx.locals[rng_.below(ctx.locals.size())]);
      if (roll < 0.70 && !ctx.roScalars.empty())
        return varRef(ctx.roScalars[rng_.below(ctx.roScalars.size())]);
      if (roll < 0.78 && ctx.inSpawn) {
        auto e = std::make_unique<GenExpr>();
        e->kind = GenExpr::Kind::kDollar;
        return e;
      }
      if (roll < 0.92 && !ctx.roArrays.empty()) {
        const GenGlobal* g = ctx.roArrays[rng_.below(ctx.roArrays.size())];
        auto e = std::make_unique<GenExpr>();
        e->kind = GenExpr::Kind::kIndex;
        e->name = g->name;
        e->mask = g->size - 1;
        e->kids.push_back(genExpr(ctx, 1));
        return e;
      }
      if (ctx.inSpawn && !ctx.ownArrays.empty()) {
        // Own cell: arr[$] — reads this thread's slot only.
        const GenGlobal* g = ctx.ownArrays[rng_.below(ctx.ownArrays.size())];
        auto e = std::make_unique<GenExpr>();
        e->kind = GenExpr::Kind::kIndex;
        e->name = g->name;
        e->mask = g->size - 1;
        auto d = std::make_unique<GenExpr>();
        d->kind = GenExpr::Kind::kDollar;
        e->kids.push_back(std::move(d));
        return e;
      }
    }
    return literal(static_cast<std::int32_t>(rng_.range(-16, 16)));
  }

  // ---- statements ----

  GenStmtPtr genStmt(Ctx& ctx, bool allowSpawn) {
    double roll = rng_.uniform();
    if (!ctx.inSpawn) {
      if (allowSpawn && ctx.depth <= 1 && roll < 0.18) return genSpawn(ctx);
      if (roll < 0.30) return genDecl(ctx);
      if (roll < 0.46) return genAssign(ctx);
      if (roll < 0.56 && ctx.depth < o_.maxDepth) return genIf(ctx);
      if (roll < 0.68 && ctx.depth < o_.maxDepth) return genLoop(ctx);
      // No printf inside helper functions: calls must stay side-effect-free,
      // otherwise intra-expression evaluation order (which the compiler does
      // not pin down) becomes observable and the host reference diverges.
      if (roll < 0.76 && o_.allowPrintf && !ctx.inFunc) return genPrintf(ctx);
      return genAssign(ctx);
    }
    // Spawn-region statements.
    if (roll < 0.24) return genDecl(ctx);
    if (roll < 0.46) return genAssign(ctx);
    if (roll < 0.58 && ctx.depth < o_.maxDepth) return genIf(ctx);
    if (roll < 0.68 && ctx.depth < o_.maxDepth) return genLoop(ctx);
    if (roll < 0.82 && !ctx.psBase.empty()) return genPs(ctx);
    if (roll < 0.96 &&
        (!ctx.accumArrays.empty() || !ctx.accumScalars.empty()))
      return genPsm(ctx);
    return genAssign(ctx);
  }

  // Function bodies: locals only — no globals, printf, spawn, ps/psm.
  GenStmtPtr genFuncStmt(Ctx& ctx) {
    double roll = rng_.uniform();
    if (roll < 0.35) return genDecl(ctx);
    if (roll < 0.55 && ctx.depth < o_.maxDepth) return genIf(ctx);
    if (roll < 0.70 && ctx.depth < o_.maxDepth) return genLoop(ctx);
    return genAssign(ctx);
  }

  GenStmtPtr genDecl(Ctx& ctx) {
    auto s = std::make_unique<GenStmt>();
    s->kind = GenStmt::Kind::kDecl;
    s->name = fresh(ctx.inSpawn ? "t" : "v");
    s->value = genExpr(ctx, o_.maxExprDepth);
    ctx.locals.push_back(s->name);
    ctx.writableLocals.push_back(s->name);
    return s;
  }

  GenStmtPtr genAssign(Ctx& ctx) {
    auto s = std::make_unique<GenStmt>();
    s->kind = GenStmt::Kind::kAssign;
    s->value = genExpr(ctx, o_.maxExprDepth);
    if (ctx.inSpawn) {
      // Targets: own locals, or an own-array cell at [$].
      bool toArray = !ctx.ownArrays.empty() &&
                     (ctx.writableLocals.empty() || rng_.chance(0.55));
      if (toArray) {
        const GenGlobal* g = ctx.ownArrays[rng_.below(ctx.ownArrays.size())];
        s->name = g->name;
        s->mask = g->size - 1;
        auto d = std::make_unique<GenExpr>();
        d->kind = GenExpr::Kind::kDollar;
        s->index = std::move(d);
        return s;
      }
      if (ctx.writableLocals.empty()) {
        // Nothing assignable: degrade to a fresh declaration.
        s->kind = GenStmt::Kind::kDecl;
        s->name = fresh("t");
        ctx.locals.push_back(s->name);
        ctx.writableLocals.push_back(s->name);
        return s;
      }
      s->name = ctx.writableLocals[rng_.below(ctx.writableLocals.size())];
      return s;
    }
    double roll = rng_.uniform();
    if (roll < 0.35 && !ctx.rwArrays.empty()) {
      const GenGlobal* g = ctx.rwArrays[rng_.below(ctx.rwArrays.size())];
      s->name = g->name;
      s->mask = g->size - 1;
      s->index = genExpr(ctx, 2);
      return s;
    }
    if (roll < 0.70 && !ctx.writableScalars.empty()) {
      s->name =
          ctx.writableScalars[rng_.below(ctx.writableScalars.size())];
      return s;
    }
    if (!ctx.writableLocals.empty()) {
      s->name = ctx.writableLocals[rng_.below(ctx.writableLocals.size())];
      return s;
    }
    if (!ctx.writableScalars.empty()) {
      s->name =
          ctx.writableScalars[rng_.below(ctx.writableScalars.size())];
      return s;
    }
    s->kind = GenStmt::Kind::kDecl;
    s->name = fresh("v");
    ctx.locals.push_back(s->name);
    ctx.writableLocals.push_back(s->name);
    return s;
  }

  GenStmtPtr genIf(Ctx& ctx) {
    auto s = std::make_unique<GenStmt>();
    s->kind = GenStmt::Kind::kIf;
    s->value = genExpr(ctx, o_.maxExprDepth - 1);
    genBody(ctx, s->body, /*allowSpawn=*/false);
    if (rng_.chance(0.4)) genBody(ctx, s->elseBody, /*allowSpawn=*/false);
    return s;
  }

  GenStmtPtr genLoop(Ctx& ctx) {
    auto s = std::make_unique<GenStmt>();
    s->kind = rng_.chance(0.6) ? GenStmt::Kind::kFor : GenStmt::Kind::kWhile;
    s->name = fresh("i");
    s->bound = 1 + static_cast<std::int32_t>(rng_.below(
                       static_cast<std::uint64_t>(o_.maxLoopBound)));
    // Loop counter is readable but never assignable inside the body.
    Ctx inner = cloneCtx(ctx);
    inner.depth = ctx.depth + 1;
    inner.locals.push_back(s->name);
    genBody(inner, s->body, /*allowSpawn=*/false, &ctx);
    return s;
  }

  GenStmtPtr genPrintf(Ctx& ctx) {
    auto s = std::make_unique<GenStmt>();
    s->kind = GenStmt::Kind::kPrintf;
    int nArgs = 1 + static_cast<int>(rng_.below(2));
    s->format = "t" + std::to_string(rng_.below(100));
    for (int i = 0; i < nArgs; ++i) {
      s->format += " %d";
      s->args.push_back(genExpr(ctx, 2));
    }
    s->format += "\\n";
    return s;
  }

  GenStmtPtr genPs(Ctx& ctx) {
    auto s = std::make_unique<GenStmt>();
    s->kind = GenStmt::Kind::kPs;
    s->name = ctx.psBase;
    s->tmpName = fresh("p");
    s->value = genExpr(ctx, 2);
    return s;
  }

  GenStmtPtr genPsm(Ctx& ctx) {
    auto s = std::make_unique<GenStmt>();
    s->kind = GenStmt::Kind::kPsm;
    s->tmpName = fresh("p");
    s->value = genExpr(ctx, 2);
    bool toArray = !ctx.accumArrays.empty() &&
                   (ctx.accumScalars.empty() || rng_.chance(0.5));
    if (toArray) {
      const GenGlobal* g =
          ctx.accumArrays[rng_.below(ctx.accumArrays.size())];
      s->name = g->name;
      s->mask = g->size - 1;
      s->index = genExpr(ctx, 2);
    } else {
      s->name = ctx.accumScalars[rng_.below(ctx.accumScalars.size())];
    }
    return s;
  }

  GenStmtPtr genSpawn(Ctx& serial) {
    ++spawns_;
    auto s = std::make_unique<GenStmt>();
    s->kind = GenStmt::Kind::kSpawn;
    static const int counts[] = {4, 8, 12, 16, 24, 32, 48};
    int count = counts[rng_.below(sizeof(counts) / sizeof(counts[0]))];
    while (count > o_.maxSpawnCount) count /= 2;
    s->count = count;

    // Partition the globals into order-independence roles for this region.
    Ctx ctx;
    ctx.inSpawn = true;
    ctx.depth = serial.depth + 1;
    // Enclosing serial locals are readable (outlining passes them by
    // value); never written from parallel code.
    ctx.locals = serial.locals;
    // Parallel code can only call functions the compiler can inline:
    // transitively single-return-expression ones.
    for (int k : serial.callees)
      if (simpleFuncs_[static_cast<std::size_t>(k)]) ctx.callees.push_back(k);
    for (const auto& g : prog_.globals) {
      if (g.isPsBase) {
        if (rng_.chance(0.7)) ctx.psBase = g.name;
        continue;
      }
      if (g.name.rfind("out_", 0) == 0) continue;  // oracle shadows: serial
      if (g.isArray) {
        double role = rng_.uniform();
        if (role < 0.40 && g.size >= count) ctx.ownArrays.push_back(&g);
        else if (role < 0.75) ctx.roArrays.push_back(&g);
        else if (role < 0.90) ctx.accumArrays.push_back(&g);
        // else: untouched in this region
      } else {
        double role = rng_.uniform();
        if (role < 0.60) ctx.roScalars.push_back(g.name);
        else if (role < 0.80) ctx.accumScalars.push_back(g.name);
      }
    }
    int n = 2 + static_cast<int>(rng_.below(
                    static_cast<std::uint64_t>(o_.maxBlockStmts)));
    for (int i = 0; i < n; ++i)
      s->body.push_back(genStmt(ctx, /*allowSpawn=*/false));
    return s;
  }

  // Generates a nested statement list. `outer` (when given) receives no new
  // locals: declarations inside the body stay scoped to the body.
  void genBody(Ctx& ctx, std::vector<GenStmtPtr>& body, bool allowSpawn,
               Ctx* outer = nullptr) {
    (void)outer;
    Ctx inner = cloneCtx(ctx);
    inner.depth = ctx.depth + 1;
    int n = 1 + static_cast<int>(rng_.below(
                    static_cast<std::uint64_t>(o_.maxBlockStmts)));
    for (int i = 0; i < n; ++i)
      body.push_back(genStmt(inner, allowSpawn));
  }

  static Ctx cloneCtx(const Ctx& c) { return c; }
};

}  // namespace

GenProgram generate(std::uint64_t seed, const GenOptions& opts) {
  return Generator(seed, opts).run();
}

// ---------------------------------------------------------------------------
// Host reference interpretation
// ---------------------------------------------------------------------------

namespace {

struct BudgetExhausted {};

struct Machine {
  const GenProgram& prog;
  std::uint64_t budget;
  std::uint64_t steps = 0;
  std::map<std::string, std::vector<std::uint32_t>> mem;  // data globals
  std::map<std::string, std::uint32_t> psBase;            // gr accumulators
  std::string out;

  void tick() {
    if (++steps > budget) throw BudgetExhausted{};
  }
};

struct Frame {
  std::map<std::string, std::uint32_t> vars;
  const Frame* parent = nullptr;  // spawn body reading enclosing serial frame
  bool inSpawn = false;
  std::uint32_t tid = 0;
};

std::uint32_t evalExpr(Machine& m, const Frame& f, const GenExpr& e);

std::uint32_t* findVar(Frame& f, const std::string& name) {
  for (Frame* fr = &f; fr != nullptr;
       fr = const_cast<Frame*>(fr->parent)) {
    auto it = fr->vars.find(name);
    if (it != fr->vars.end()) return &it->second;
  }
  return nullptr;
}

std::uint32_t readVar(Machine& m, const Frame& f, const std::string& name) {
  for (const Frame* fr = &f; fr != nullptr; fr = fr->parent) {
    auto it = fr->vars.find(name);
    if (it != fr->vars.end()) return it->second;
  }
  auto ps = m.psBase.find(name);
  if (ps != m.psBase.end()) return ps->second;
  auto g = m.mem.find(name);
  if (g != m.mem.end()) return g->second[0];
  return 0;  // unreachable for generator-produced programs
}

std::uint32_t evalBinary(char op, std::uint32_t a, std::uint32_t b) {
  auto sa = static_cast<std::int32_t>(a);
  auto sb = static_cast<std::int32_t>(b);
  switch (op) {
    case '+': return a + b;
    case '-': return a - b;
    case '*':
      return static_cast<std::uint32_t>(static_cast<std::int64_t>(sa) * sb);
    case '&': return a & b;
    case '|': return a | b;
    case '^': return a ^ b;
    case '/': {
      // Rendered as (a / (b | 1)): never zero; INT_MIN / -1 wraps like the
      // simulator's divider (src/sim/semantics.cc).
      std::int32_t d = static_cast<std::int32_t>(b | 1u);
      if (sa == INT32_MIN && d == -1) return a;
      return static_cast<std::uint32_t>(sa / d);
    }
    case '%': {
      std::int32_t d = static_cast<std::int32_t>(b | 1u);
      if (sa == INT32_MIN && d == -1) return 0;
      return static_cast<std::uint32_t>(sa % d);
    }
    case 'l': return a << (b & 31);
    case 'r': return static_cast<std::uint32_t>(sa >> (b & 31));
    case '<': return sa < sb ? 1 : 0;
    case '>': return sa > sb ? 1 : 0;
    case 'L': return sa <= sb ? 1 : 0;
    case 'G': return sa >= sb ? 1 : 0;
    case 'e': return a == b ? 1 : 0;
    case 'n': return a != b ? 1 : 0;
    case 'A': return (a != 0 && b != 0) ? 1 : 0;
    case 'O': return (a != 0 || b != 0) ? 1 : 0;
  }
  return 0;
}

void execStmts(Machine& m, Frame& f, const std::vector<GenStmtPtr>& body);

std::uint32_t callFunc(Machine& m, const GenFunc& fn,
                       const std::vector<std::uint32_t>& args) {
  Frame f;
  for (std::size_t i = 0; i < fn.params.size(); ++i)
    f.vars[fn.params[i]] = i < args.size() ? args[i] : 0;
  execStmts(m, f, fn.body);
  return evalExpr(m, f, *fn.ret);
}

std::uint32_t evalExpr(Machine& m, const Frame& f, const GenExpr& e) {
  m.tick();
  switch (e.kind) {
    case GenExpr::Kind::kLit:
      return static_cast<std::uint32_t>(e.intVal);
    case GenExpr::Kind::kVar:
      return readVar(m, f, e.name);
    case GenExpr::Kind::kDollar:
      return f.tid;
    case GenExpr::Kind::kIndex: {
      std::uint32_t idx =
          evalExpr(m, f, *e.kids[0]) & static_cast<std::uint32_t>(e.mask);
      auto it = m.mem.find(e.name);
      return it != m.mem.end() && idx < it->second.size() ? it->second[idx]
                                                         : 0;
    }
    case GenExpr::Kind::kUnary: {
      std::uint32_t a = evalExpr(m, f, *e.kids[0]);
      switch (e.op) {
        case '-': return 0u - a;
        case '~': return ~a;
        case '!': return a == 0 ? 1 : 0;
      }
      return 0;
    }
    case GenExpr::Kind::kBinary:
      return evalBinary(e.op, evalExpr(m, f, *e.kids[0]),
                        evalExpr(m, f, *e.kids[1]));
    case GenExpr::Kind::kCond:
      return evalExpr(m, f, *e.kids[0]) != 0 ? evalExpr(m, f, *e.kids[1])
                                             : evalExpr(m, f, *e.kids[2]);
    case GenExpr::Kind::kCall: {
      const GenFunc* fn = m.prog.findFunc(e.name);
      if (fn == nullptr) return 0;
      std::vector<std::uint32_t> args;
      for (const auto& k : e.kids) args.push_back(evalExpr(m, f, *k));
      return callFunc(m, *fn, args);
    }
  }
  return 0;
}

void storeNamed(Machine& m, Frame& f, const std::string& name,
                std::uint32_t v) {
  if (std::uint32_t* slot = findVar(f, name)) {
    *slot = v;
    return;
  }
  auto ps = m.psBase.find(name);
  if (ps != m.psBase.end()) {
    ps->second = v;
    return;
  }
  auto g = m.mem.find(name);
  if (g != m.mem.end()) g->second[0] = v;
}

void execStmt(Machine& m, Frame& f, const GenStmt& s) {
  m.tick();
  switch (s.kind) {
    case GenStmt::Kind::kDecl:
      f.vars[s.name] = s.value ? evalExpr(m, f, *s.value) : 0;
      return;
    case GenStmt::Kind::kAssign: {
      std::uint32_t v = evalExpr(m, f, *s.value);
      if (s.index) {
        std::uint32_t idx =
            evalExpr(m, f, *s.index) & static_cast<std::uint32_t>(s.mask);
        auto it = m.mem.find(s.name);
        if (it != m.mem.end() && idx < it->second.size())
          it->second[idx] = v;
        return;
      }
      storeNamed(m, f, s.name, v);
      return;
    }
    case GenStmt::Kind::kIf:
      if (evalExpr(m, f, *s.value) != 0) {
        Frame inner;
        inner.parent = &f;
        inner.inSpawn = f.inSpawn;
        inner.tid = f.tid;
        execStmts(m, inner, s.body);
      } else if (!s.elseBody.empty()) {
        Frame inner;
        inner.parent = &f;
        inner.inSpawn = f.inSpawn;
        inner.tid = f.tid;
        execStmts(m, inner, s.elseBody);
      }
      return;
    case GenStmt::Kind::kFor:
    case GenStmt::Kind::kWhile:
      for (std::int32_t i = 0; i < s.bound; ++i) {
        m.tick();
        Frame inner;
        inner.parent = &f;
        inner.inSpawn = f.inSpawn;
        inner.tid = f.tid;
        inner.vars[s.name] = static_cast<std::uint32_t>(i);
        execStmts(m, inner, s.body);
      }
      return;
    case GenStmt::Kind::kPrintf: {
      std::size_t arg = 0;
      const std::string& fmt = s.format;
      for (std::size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] == '%' && i + 1 < fmt.size() && fmt[i + 1] == 'd') {
          char buf[16];
          std::uint32_t v =
              arg < s.args.size() ? evalExpr(m, f, *s.args[arg]) : 0;
          ++arg;
          std::snprintf(buf, sizeof buf, "%d",
                        static_cast<std::int32_t>(v));
          m.out += buf;
          ++i;
        } else if (fmt[i] == '\\' && i + 1 < fmt.size() &&
                   fmt[i + 1] == 'n') {
          m.out += '\n';
          ++i;
        } else {
          m.out += fmt[i];
        }
      }
      return;
    }
    case GenStmt::Kind::kPs: {
      std::uint32_t inc = evalExpr(m, f, *s.value);
      auto it = m.psBase.find(s.name);
      if (it != m.psBase.end()) it->second += inc;  // result local is dead
      return;
    }
    case GenStmt::Kind::kPsm: {
      std::uint32_t inc = evalExpr(m, f, *s.value);
      if (s.index) {
        std::uint32_t idx =
            evalExpr(m, f, *s.index) & static_cast<std::uint32_t>(s.mask);
        auto it = m.mem.find(s.name);
        if (it != m.mem.end() && idx < it->second.size())
          it->second[idx] += inc;
      } else {
        auto it = m.mem.find(s.name);
        if (it != m.mem.end()) it->second[0] += inc;
      }
      return;
    }
    case GenStmt::Kind::kSpawn:
      // Serial execution in thread-ID order — legal because the generation
      // discipline makes spawn results order-independent.
      for (int tid = 0; tid < s.count; ++tid) {
        Frame tf;
        tf.parent = &f;
        tf.inSpawn = true;
        tf.tid = static_cast<std::uint32_t>(tid);
        execStmts(m, tf, s.body);
      }
      return;
    case GenStmt::Kind::kBlock: {
      Frame inner;
      inner.parent = &f;
      inner.inSpawn = f.inSpawn;
      inner.tid = f.tid;
      execStmts(m, inner, s.body);
      return;
    }
  }
}

void execStmts(Machine& m, Frame& f, const std::vector<GenStmtPtr>& body) {
  for (const auto& s : body) execStmt(m, f, *s);
}

}  // namespace

RefResult interpret(const GenProgram& prog, std::uint64_t stepBudget) {
  Machine m{.prog = prog, .budget = stepBudget};
  for (const auto& g : prog.globals) {
    if (g.isPsBase)
      m.psBase[g.name] = static_cast<std::uint32_t>(g.init);
    else if (g.isArray)
      m.mem[g.name].assign(static_cast<std::size_t>(g.size), 0u);
    else
      m.mem[g.name].assign(1, static_cast<std::uint32_t>(g.init));
  }
  RefResult r;
  try {
    Frame f;
    execStmts(m, f, prog.main);
  } catch (const BudgetExhausted&) {
    r.ok = false;
    r.error = "host interpreter step budget exhausted";
    return r;
  }
  r.ok = true;
  r.haltCode = 0;
  r.output = std::move(m.out);
  for (const auto& [name, words] : m.mem) {
    std::vector<std::int32_t> vals(words.size());
    for (std::size_t i = 0; i < words.size(); ++i)
      vals[i] = static_cast<std::int32_t>(words[i]);
    r.globals.emplace(name, std::move(vals));
  }
  return r;
}

}  // namespace xmt::testing
