#include "src/testing/explore.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/compiler/driver.h"
#include "src/sim/simulator.h"

namespace xmt::testing {

namespace {

using OpKind = RegionExec::OpKind;

bool isMemKind(OpKind k) {
  return k == OpKind::kLoad || k == OpKind::kStore || k == OpKind::kPsm;
}
bool isGrKind(OpKind k) {
  return k == OpKind::kPs || k == OpKind::kGrRead || k == OpKind::kGrWrite;
}

bool contains(const std::vector<std::size_t>& v, std::size_t x) {
  return std::find(v.begin(), v.end(), x) != v.end();
}

std::string hex64(std::uint64_t v) {
  std::ostringstream s;
  s << std::hex << v;
  return s.str();
}

const char* accessWord(const RegionExec::VisibleOp& op) {
  if (op.kind == OpKind::kPsm) return "psm";
  return op.write ? "write" : "read";
}

}  // namespace

std::string renderSchedule(const std::vector<std::uint32_t>& schedule) {
  std::string out = "[";
  for (std::size_t i = 0; i < schedule.size();) {
    std::size_t j = i;
    while (j < schedule.size() && schedule[j] == schedule[i]) ++j;
    if (i != 0) out += " ";
    out += "t" + std::to_string(schedule[i]);
    if (j - i > 1) out += "*" + std::to_string(j - i);
    i = j;
  }
  return out + "]";
}

McExplorer::McExplorer(const Program& prog, const McOptions& opts,
                       const analysis::McStaticFacts* facts)
    : prog_(prog), opts_(opts), facts_(facts) {
  for (const auto& [name, sym] : prog.symbols) {
    if (sym.isText) continue;
    dataSyms_.push_back(
        {sym.addr, {std::max<std::uint32_t>(sym.size, 4u), name}});
  }
  std::sort(dataSyms_.begin(), dataSyms_.end());
}

std::string McExplorer::symbolAt(std::uint32_t addr) const {
  for (const auto& [base, ext] : dataSyms_)
    if (addr >= base && addr < base + ext.first) return ext.second;
  return "<unknown>";
}

McExplorer::PairClass McExplorer::classifyPair(
    const RegionExec::VisibleOp& a, const RegionExec::VisibleOp& b) const {
  PairClass r;
  if (isMemKind(a.kind) && isMemKind(b.kind)) {
    bool overlap = a.addr < b.addr + b.size && b.addr < a.addr + a.size;
    if (!overlap) return r;
    if (a.kind == OpKind::kPsm && b.kind == OpKind::kPsm) {
      if (opts_.staticPrune && facts_ != nullptr &&
          facts_->commutativePsmSymbols.count(symbolAt(a.addr)) != 0) {
        r.pruned = true;  // every psm that can land here commutes
        return r;
      }
      r.dependent = true;  // sanctioned update, but result order is visible
      return r;
    }
    if (opts_.staticPrune && facts_ != nullptr && !a.atomic && !b.atomic &&
        a.srcLine == b.srcLine &&
        facts_->privateSymbols.count(symbolAt(a.addr)) != 0) {
      // threadPrivate is a per-site claim: two *instances of the same
      // instruction* in different threads never overlap. Seeing them
      // overlap dynamically means the static algebra was wrong. (Distinct
      // sites inside a private symbol may legitimately collide — that is
      // an ordinary race, reported below.)
      r.dependent = true;
      r.hasViolation = true;
      r.violation = DiagCode::kMcStaticUnsound;
      return r;
    }
    if (!a.write && !b.write) return r;
    r.dependent = true;
    r.hasViolation = true;
    r.violation = DiagCode::kMcRace;
    return r;
  }
  if (isGrKind(a.kind) && isGrKind(b.kind) && a.addr == b.addr) {
    if (a.kind == OpKind::kPs && b.kind == OpKind::kPs) {
      if (opts_.staticPrune && facts_ != nullptr &&
          facts_->commutativePsGrs.count(static_cast<int>(a.addr)) != 0) {
        r.pruned = true;
        return r;
      }
      r.dependent = true;
      return r;
    }
    if (a.kind == OpKind::kGrRead && b.kind == OpKind::kGrRead) return r;
    r.dependent = true;
    r.hasViolation = true;
    r.violation = DiagCode::kMcGrConflict;
    return r;
  }
  // Output-output (transcript order is tolerated and masked), joins, and
  // mixed memory/gr spaces never conflict.
  return r;
}

void McExplorer::recordViolation(DiagCode code,
                                 const RegionExec::VisibleOp& earlier,
                                 const RegionExec::VisibleOp& later,
                                 std::uint64_t spawnSeq,
                                 const std::vector<std::uint32_t>& schedule) {
  std::string sym;
  if (isMemKind(later.kind))
    sym = symbolAt(later.addr);
  else
    sym = "gr" + std::to_string(later.addr);
  std::string key = std::string(diagCodeTag(code)) + ":" +
                    std::to_string(earlier.srcLine) + ":" +
                    std::to_string(later.srcLine) + ":" + sym;
  if (!emitted_.insert(key).second) return;

  Diagnostic d;
  d.code = code;
  d.severity = Severity::kError;
  d.line = later.srcLine;
  d.otherLine = earlier.srcLine;
  d.symbol = sym;
  std::string where = sym == "<unknown>" ? "a shared location" : "'" + sym + "'";
  switch (code) {
    case DiagCode::kMcRace:
      d.message = "data race on " + where + ": " + accessWord(earlier) +
                  " at line " + std::to_string(earlier.srcLine) + " vs " +
                  accessWord(later) + " at line " +
                  std::to_string(later.srcLine) + "; witness schedule " +
                  renderSchedule(schedule);
      break;
    case DiagCode::kMcGrConflict:
      d.message = "non-ps conflict on global register " + sym +
                  " between lines " + std::to_string(earlier.srcLine) +
                  " and " + std::to_string(later.srcLine) +
                  "; witness schedule " + renderSchedule(schedule);
      break;
    case DiagCode::kMcStaticUnsound:
      d.message = "static independence contradicted: accesses inside " +
                  where +
                  " were proven pairwise thread-private but overlap "
                  "dynamically (asm lines " +
                  std::to_string(earlier.srcLine) + ", " +
                  std::to_string(later.srcLine) + "); witness schedule " +
                  renderSchedule(schedule);
      break;
    default:
      d.message = "model-check violation; witness schedule " +
                  renderSchedule(schedule);
      break;
  }
  McViolation v;
  v.diag = d;
  v.spawnSeq = spawnSeq;
  v.schedule = schedule;
  violations_.push_back(std::move(v));
  diagnostics_.push_back(std::move(d));
}

std::uint64_t McExplorer::digestState(const FuncModel& fm) const {
  FuncModel::ArchState s = fm.saveArchState();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> masks;
  auto addMask = [&](const std::string& name) {
    if (!prog_.hasSymbol(name)) return;
    const Symbol& sy = prog_.symbol(name);
    if (sy.isText) return;
    masks.push_back(
        {sy.addr, sy.addr + std::max<std::uint32_t>(sy.size, 4u)});
  };
  for (const std::string& name : opts_.digestExclude) addMask(name);
  if (facts_ != nullptr)
    for (const std::string& name : facts_->orderPermutedSymbols)
      addMask(name);

  std::sort(s.pages.begin(), s.pages.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mixByte = [&](std::uint8_t b) {
    h = (h ^ b) * 0x100000001b3ull;
  };
  auto mixWord = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mixByte(static_cast<std::uint8_t>(v >> (i * 8)));
  };
  for (auto& [pageIndex, bytes] : s.pages) {
    // snapshot() keys pages by index, not byte address.
    std::uint64_t pageBase = static_cast<std::uint64_t>(pageIndex)
                             << SparseMemory::kPageBits;
    for (const auto& [lo, hi] : masks) {
      std::uint64_t pLo = pageBase, pHi = pageBase + bytes.size();
      std::uint64_t a = std::max<std::uint64_t>(lo, pLo);
      std::uint64_t b = std::min<std::uint64_t>(hi, pHi);
      for (std::uint64_t x = a; x < b; ++x) bytes[x - pLo] = 0;
    }
    bool allZero = true;
    for (std::uint8_t b : bytes)
      if (b != 0) {
        allZero = false;
        break;
      }
    // A zero-filled page is indistinguishable from an untouched one; skip
    // it so traces differing only in lazy page allocation digest equal.
    if (allZero) continue;
    mixWord(pageBase);
    for (std::uint8_t b : bytes) mixByte(b);
  }
  for (std::uint32_t g : s.gr) mixWord(g);
  return h;
}

void McExplorer::explore(FuncModel& fm, const Context& master,
                         std::uint32_t startPc, std::uint32_t low,
                         std::uint32_t high, std::uint64_t spawnSeq,
                         std::uint64_t instrBudget,
                         const FuncModel::ArchState& entry,
                         McRegionReport& rep) {
  std::vector<Node> nodes;
  bool outOfBudget = false;
  haveRef_ = false;
  for (;;) {
    if (rep.traces >= opts_.maxTracesPerRegion ||
        rep.transitions >= opts_.maxTransitionsPerRegion) {
      outOfBudget = true;
      break;
    }
    fm.restoreArchState(entry);
    RegionExec exec(fm, master, startPc, low, high, spawnSeq, instrBudget,
                    /*eager=*/true);
    const std::size_t n = exec.threadCount();
    std::vector<std::vector<std::uint32_t>> clocks(
        n, std::vector<std::uint32_t>(n, 0));
    std::vector<std::uint32_t> schedule;
    std::vector<std::size_t> childSleep;
    bool slept = false;
    std::size_t depth = 0;
    while (!exec.allDone()) {
      if (rep.transitions >= opts_.maxTransitionsPerRegion) {
        outOfBudget = true;
        break;
      }
      if (depth == nodes.size()) {
        Node fresh;
        fresh.sleepBase = childSleep;
        std::size_t pick = n;
        for (std::size_t t = 0; t < n; ++t) {
          if (exec.done(t) || contains(fresh.sleepBase, t)) continue;
          pick = t;
          break;
        }
        if (pick == n) {  // every enabled thread is asleep: redundant prefix
          slept = true;
          ++rep.sleepSkips;
          break;
        }
        fresh.chosen = pick;
        fresh.done.push_back(pick);
        fresh.backtrack.push_back(pick);
        nodes.push_back(std::move(fresh));
      }
      Node& node = nodes[depth];
      const std::size_t t = node.chosen;
      RegionExec::VisibleOp op = exec.step(t, nullptr, nullptr);
      ++rep.transitions;
      schedule.push_back(static_cast<std::uint32_t>(t));

      // Vector-clock scan, latest first. `c` accumulates the joins of all
      // later-than-f dependent steps, so the happens-before test against it
      // recognizes chains through intermediaries.
      std::vector<std::uint32_t> c = clocks[t];
      for (std::size_t i = depth; i-- > 0;) {
        const StepRec& f = nodes[i].step;
        if (f.thread == t) continue;
        PairClass pc = classifyPair(f.op, op);
        if (pc.pruned) {
          ++rep.prunedPairs;
          continue;
        }
        if (!pc.dependent) continue;
        bool hb = f.clockAfter[f.thread] <= c[f.thread];
        if (!hb) {
          if (!contains(nodes[i].backtrack, t)) nodes[i].backtrack.push_back(t);
          if (pc.hasViolation)
            recordViolation(pc.violation, f.op, op, spawnSeq, schedule);
        } else if (pc.hasViolation &&
                   pc.violation == DiagCode::kMcStaticUnsound) {
          recordViolation(pc.violation, f.op, op, spawnSeq, schedule);
        }
        for (std::size_t k = 0; k < n; ++k)
          c[k] = std::max(c[k], f.clockAfter[k]);
      }
      c[t] += 1;
      clocks[t] = c;
      node.step.thread = t;
      node.step.op = op;
      node.step.clockAfter = clocks[t];

      // Sleep set for the next depth: previously explored siblings and the
      // inherited sleepers stay asleep while their pending op is
      // independent of the op just executed.
      childSleep.clear();
      auto keepAsleep = [&](std::size_t q) {
        if (q == t || exec.done(q) || contains(childSleep, q)) return;
        if (!classifyPair(exec.pending(q), op).dependent) childSleep.push_back(q);
      };
      for (std::size_t q : node.sleepBase) keepAsleep(q);
      for (std::size_t q : node.done) keepAsleep(q);
      ++depth;
    }
    if (outOfBudget) break;

    if (!slept) {
      ++rep.traces;
      std::uint64_t dig = digestState(fm);
      if (!haveRef_) {
        haveRef_ = true;
        refDigest_ = dig;
        std::vector<std::uint64_t> cnt(n, 0);
        for (std::uint32_t x : schedule) ++cnt[x];
        double lg =
            std::lgamma(static_cast<double>(schedule.size()) + 1.0);
        for (std::uint64_t k : cnt)
          lg -= std::lgamma(static_cast<double>(k) + 1.0);
        rep.naiveLog10 = lg / std::log(10.0);
      } else if (dig != refDigest_) {
        std::string key = "order:" + std::to_string(spawnSeq);
        if (emitted_.insert(key).second) {
          Diagnostic d;
          d.code = DiagCode::kMcOrderDependent;
          d.severity = Severity::kError;
          d.line = 0;
          d.symbol = "<region " + std::to_string(spawnSeq) + ">";
          d.message =
              "spawn region " + std::to_string(spawnSeq) +
              " is order-dependent: final state digest " + hex64(dig) +
              " under schedule " + renderSchedule(schedule) +
              " differs from the serial schedule's " + hex64(refDigest_);
          McViolation v;
          v.diag = d;
          v.spawnSeq = spawnSeq;
          v.schedule = schedule;
          violations_.push_back(std::move(v));
          diagnostics_.push_back(std::move(d));
        }
      }
    }

    // Backtrack: deepest node with an unexplored, non-sleeping candidate.
    bool advanced = false;
    while (!nodes.empty()) {
      Node& nb = nodes.back();
      std::size_t pick = static_cast<std::size_t>(-1);
      for (std::size_t cand : nb.backtrack) {
        if (contains(nb.done, cand) || contains(nb.sleepBase, cand)) continue;
        if (pick == static_cast<std::size_t>(-1) || cand < pick) pick = cand;
      }
      if (pick != static_cast<std::size_t>(-1)) {
        nb.chosen = pick;
        nb.done.push_back(pick);
        advanced = true;
        break;
      }
      nodes.pop_back();
    }
    if (!advanced) {
      rep.exhaustive = true;
      break;
    }
  }

  if (outOfBudget) {
    rep.exhaustive = false;
    Diagnostic d;
    d.code = DiagCode::kMcBudgetExhausted;
    d.severity = Severity::kWarning;
    d.line = 0;
    d.symbol = "<region " + std::to_string(spawnSeq) + ">";
    d.message = "spawn region " + std::to_string(spawnSeq) +
                " exceeded the exploration budget after " +
                std::to_string(rep.traces) + " traces / " +
                std::to_string(rep.transitions) +
                " transitions; verification is NOT exhaustive (" +
                std::to_string(opts_.perturbRounds) +
                " seeded random schedules checked instead)";
    diagnostics_.push_back(std::move(d));
    perturb(fm, master, startPc, low, high, spawnSeq, instrBudget, entry,
            rep);
  }
}

void McExplorer::perturb(FuncModel& fm, const Context& master,
                         std::uint32_t startPc, std::uint32_t low,
                         std::uint32_t high, std::uint64_t spawnSeq,
                         std::uint64_t instrBudget,
                         const FuncModel::ArchState& entry,
                         McRegionReport& rep) {
  for (int round = 0; round < opts_.perturbRounds; ++round) {
    fm.restoreArchState(entry);
    RegionExec exec(fm, master, startPc, low, high, spawnSeq, instrBudget,
                    /*eager=*/true);
    const std::size_t n = exec.threadCount();
    Rng rng(opts_.perturbSeed * 0x9e3779b97f4a7c15ull +
            spawnSeq * 1000003ull + static_cast<std::uint64_t>(round));
    std::vector<StepRec> steps;
    std::vector<std::vector<std::uint32_t>> clocks(
        n, std::vector<std::uint32_t>(n, 0));
    std::vector<std::uint32_t> schedule;
    std::vector<std::size_t> live;
    for (std::size_t t = 0; t < n; ++t) live.push_back(t);
    while (!live.empty()) {
      std::size_t idx = static_cast<std::size_t>(rng.below(live.size()));
      std::size_t t = live[idx];
      RegionExec::VisibleOp op = exec.step(t, nullptr, nullptr);
      schedule.push_back(static_cast<std::uint32_t>(t));
      std::vector<std::uint32_t> c = clocks[t];
      for (std::size_t i = steps.size(); i-- > 0;) {
        const StepRec& f = steps[i];
        if (f.thread == t) continue;
        PairClass pc = classifyPair(f.op, op);
        if (pc.pruned || !pc.dependent) continue;
        bool hb = f.clockAfter[f.thread] <= c[f.thread];
        if (pc.hasViolation &&
            (!hb || pc.violation == DiagCode::kMcStaticUnsound))
          recordViolation(pc.violation, f.op, op, spawnSeq, schedule);
        for (std::size_t k = 0; k < n; ++k)
          c[k] = std::max(c[k], f.clockAfter[k]);
      }
      c[t] += 1;
      clocks[t] = c;
      steps.push_back({t, op, clocks[t]});
      if (exec.done(t)) {
        live[idx] = live.back();
        live.pop_back();
      }
    }
    if (haveRef_ && digestState(fm) != refDigest_) {
      std::string key = "order:" + std::to_string(spawnSeq);
      if (emitted_.insert(key).second) {
        Diagnostic d;
        d.code = DiagCode::kMcOrderDependent;
        d.severity = Severity::kError;
        d.line = 0;
        d.symbol = "<region " + std::to_string(spawnSeq) + ">";
        d.message = "spawn region " + std::to_string(spawnSeq) +
                    " is order-dependent (found by seeded perturbation): "
                    "schedule " +
                    renderSchedule(schedule) +
                    " diverges from the serial schedule's final state";
        McViolation v;
        v.diag = d;
        v.spawnSeq = spawnSeq;
        v.schedule = schedule;
        violations_.push_back(std::move(v));
        diagnostics_.push_back(std::move(d));
      }
    }
    ++rep.perturbRounds;
  }
}

std::uint64_t McExplorer::runRegion(FuncModel& fm, const Context& master,
                                    std::uint32_t startPc, std::uint32_t low,
                                    std::uint32_t high,
                                    std::uint64_t spawnSeq,
                                    std::uint64_t instrBudget,
                                    CommitObserver* observer, Stats* stats) {
  std::int64_t count = static_cast<std::int64_t>(static_cast<std::int32_t>(high)) -
                       static_cast<std::int64_t>(static_cast<std::int32_t>(low)) + 1;
  if (count < 0) count = 0;
  McRegionReport rep;
  rep.spawnSeq = spawnSeq;
  rep.threads = static_cast<std::uint32_t>(count);

  FuncModel::ArchState entry = fm.saveArchState();
  if (count > 1) {
    explore(fm, master, startPc, low, high, spawnSeq, instrBudget, entry,
            rep);
    fm.restoreArchState(entry);
  } else {
    rep.exhaustive = true;
    rep.traces = count > 0 ? 1 : 0;
  }

  // Committed execution: the canonical serial schedule, replayed lazily so
  // the observer/stats event stream is identical to the classic
  // serialization (golden stats and plugins see no difference).
  RegionExec exec(fm, master, startPc, low, high, spawnSeq, instrBudget,
                  /*eager=*/false);
  if (stats != nullptr) stats->virtualThreads += exec.threadCount();
  for (std::size_t t = 0; t < exec.threadCount(); ++t)
    while (!exec.done(t)) exec.step(t, observer, stats);
  regions_.push_back(rep);
  return exec.instructionsExecuted();
}

McResult modelCheckProgram(const Program& prog, const McOptions& opts,
                           const analysis::McStaticFacts* facts,
                           const std::function<void(FuncModel&)>& prepare) {
  FuncModel fm(prog);
  if (prepare) prepare(fm);
  McExplorer explorer(prog, opts, facts);
  fm.setRegionRunner(&explorer);
  McResult res;
  try {
    FunctionalRunResult r =
        fm.runFunctional(opts.maxInstructions, nullptr, nullptr);
    res.ran = true;
    res.halted = r.halted;
    res.haltCode = r.haltCode;
    res.instructions = r.instructions;
  } catch (const SimError& e) {
    res.error = e.what();
  }
  res.output = fm.output();
  res.violations = explorer.violations();
  res.regions = explorer.regions();
  res.diagnostics = explorer.diagnostics();
  return res;
}

McResult modelCheckSource(const std::string& source, const McOptions& opts) {
  Program prog = compileToProgram(source, CompilerOptions{});
  analysis::McStaticFacts facts = analysis::computeMcFactsForSource(source);
  return modelCheckProgram(prog, opts, &facts, {});
}

McResult modelCheckWorkload(const workloads::WorkloadInstance& w,
                            McOptions opts) {
  const workloads::WorkloadEntry& entry = workloads::findWorkload(w.name);
  std::string source = workloads::instanceSource(w);
  Program prog = compileToProgram(source, CompilerOptions{});
  analysis::McStaticFacts facts = analysis::computeMcFactsForSource(source);
  for (const std::string& s : entry.digestExclude) opts.digestExclude.insert(s);

  Simulator sim(prog, XmtConfig::fpga64(), SimMode::kFunctional);
  workloads::instancePrepare(w, sim);
  McExplorer explorer(prog, opts, &facts);
  sim.funcModel().setRegionRunner(&explorer);
  McResult res;
  try {
    RunResult r = sim.run();
    res.ran = true;
    res.halted = r.halted;
    res.haltCode = r.haltCode;
    res.instructions = r.instructions;
  } catch (const SimError& e) {
    res.error = e.what();
  }
  res.output = sim.output();
  res.violations = explorer.violations();
  res.regions = explorer.regions();
  res.diagnostics = explorer.diagnostics();
  return res;
}

// --- The discipline-violation mutant corpus --------------------------------

namespace {

std::string mutantHeader(int n) {
  std::ostringstream s;
  s << "int A[" << n << "];\n"
    << "int B[" << n << "];\n"
    << "int S[" << n << "];\n"
    << "int T[" << n << "];\n"
    << "psBaseReg base = 0;\n"
    << "int total;\n"
    << "int flag;\n";
  return s.str();
}

std::string mutantMain(int n, const std::string& body,
                       const std::string& tail = "") {
  std::ostringstream s;
  s << "int main() {\n"
    << "  for (int i = 0; i < " << n << "; i++) A[i] = i - 1;\n"
    << "  spawn(0, " << (n - 1) << ") {\n"
    << body << "  }\n"
    << tail << "  return 0;\n"
    << "}\n";
  return s.str();
}

}  // namespace

std::vector<McMutant> disciplineMutants() {
  const int n = 4;
  std::vector<McMutant> out;
  auto add = [&](const std::string& name, const std::string& body,
                 bool violates, const std::string& tail = "") {
    out.push_back({name, mutantHeader(n) + mutantMain(n, body, tail),
                   violates});
  };

  // Clean originals: must verify silent and exhaustive.
  add("clean-counter", "    int one = 1;\n    ps(one, base);\n", false,
      "  total = base;\n");
  add("clean-vadd", "    B[$] = A[$] + 1;\n", false);
  add("clean-compaction",
      "    int inc = 1;\n    if (A[$] != 0) {\n      ps(inc, base);\n"
      "      B[inc] = A[$];\n    }\n",
      false, "  total = base;\n");
  add("clean-histogram",
      "    int one = 1;\n    int b = A[$] - (A[$] / 2) * 2;\n"
      "    if (b < 0) b = 0 - b;\n    psm(one, S[b]);\n",
      false);
  add("clean-psm-sum", "    int v = A[$];\n    psm(v, total);\n", false);

  // Seeded discipline violations: each must be caught with a witness.
  add("mut-shared-index-write", "    B[0] = $;\n", true);
  add("mut-shared-scalar-write", "    total = $;\n", true);
  add("mut-neighbor-read",
      "    S[$] = $;\n    if ($ > 0) T[$] = S[$ - 1];\n", true);
  add("mut-ps-result-leak",
      "    int i = 1;\n    ps(i, base);\n    total = i;\n", true);
  add("mut-ps-result-visible",
      "    int i = 1;\n    ps(i, base);\n    B[$] = i;\n", true);
  add("mut-psm-result-branch",
      "    int one = 1;\n    psm(one, total);\n"
      "    if (one == 0) flag = $;\n",
      true);
  add("mut-psm-result-visible",
      "    int v = 1;\n    psm(v, total);\n    S[$] = v;\n", true);
  add("mut-nonatomic-rmw", "    total = total + 1;\n", true);
  add("mut-nonatomic-accumulate", "    total = total + A[$];\n", true);
  add("mut-psm-vs-plain",
      "    int one = 1;\n    psm(one, total);\n    if ($ == 0) total = 5;\n",
      true);
  add("mut-ps-zero-increment",
      "    int inc = 0;\n    ps(inc, base);\n    B[inc] = $;\n", true);
  add("mut-stride-collision", "    B[$ / 2] = $;\n", true);
  add("mut-even-odd-collision", "    B[($ / 2) * 2] = $;\n", true);
  add("mut-index-wraparound",
      "    B[$ - ($ / 2) * 2] = $;\n", true);
  add("mut-read-of-written",
      "    B[$] = $;\n    if ($ == 1) T[0] = B[0];\n", true);
  add("mut-partial-overlap",
      "    B[$] = 1;\n    if ($ < " + std::to_string(n - 1) +
          ") B[$ + 1] = 2;\n",
      true);
  add("mut-gr-read-in-region",
      "    B[$] = base;\n    int i = 1;\n    ps(i, base);\n", true);
  add("mut-first-wins",
      "    if (flag == 0) {\n      flag = 1;\n      total = $;\n    }\n",
      true);
  add("mut-max-reduction",
      "    if (A[$] > total) total = A[$];\n", true);
  add("mut-queue-no-ps",
      "    B[total] = $;\n    total = total + 1;\n", true);
  add("mut-compaction-dup-index",
      "    int inc = 1;\n    ps(inc, base);\n    B[inc] = 1;\n"
      "    if (inc > 0) B[inc - 1] = 2;\n",
      true);
  add("mut-second-region-racy", "    B[$] = A[$];\n", true,
      "  spawn(0, " + std::to_string(n - 1) + ") { total = $; }\n");

  // A racy helper inlined into the region (inline-parallel pre-pass): the
  // inlined read of `total` races the region's write of it.
  {
    std::ostringstream s;
    s << mutantHeader(n) << "int touch(int t) {\n  return total + t;\n}\n"
      << mutantMain(n, "    total = touch($);\n");
    out.push_back({"mut-racy-helper", s.str(), true});
  }
  return out;
}

}  // namespace xmt::testing
