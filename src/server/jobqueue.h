// Multi-client job queue for xmtserved.
//
// A job is one submitted sweep: an ordered vector of resolved
// CampaignPoints plus a record slot per point. The queue dispatches one
// point at a time with two policies layered on top of plain FIFO:
//
//   Fairness  — dispatch round-robins across *clients* (connection
//               identities), and within a client across that client's
//               jobs in arrival order. A client that dumps a 10k-point
//               sweep cannot starve another's 4-point request; they
//               interleave point-by-point.
//   Backpressure — the queue holds at most `maxQueuedPoints` undispatched
//               points. A submit that would exceed the bound is rejected
//               (the daemon answers busy:true) instead of buffering
//               without limit; the client retries.
//
// The queue itself never simulates — daemon workers pull JobTasks, run
// them through the cache/coalescer/simulator, and hand the finished
// record back via complete().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/campaign/resultstore.h"
#include "src/campaign/spec.h"

namespace xmt::server {

/// One dispatched unit of work: point `slot` of job `job`.
struct JobTask {
  std::uint64_t job = 0;
  std::size_t slot = 0;
  campaign::CampaignPoint point;
  int pdesShards = 1;
};

struct JobStatus {
  bool found = false;
  std::string name;
  std::string state;  // "queued" | "running" | "done" | "cancelled"
  std::size_t total = 0;
  std::size_t done = 0;        // landed records (ok or failed)
  std::size_t failed = 0;
  std::size_t cacheHits = 0;   // served from cache or coalesced
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t maxQueuedPoints);

  /// Enqueues a job. Returns the new job id, or 0 when the queue bound
  /// would be exceeded (backpressure — nothing was enqueued).
  std::uint64_t submit(std::uint64_t client, std::string name,
                       std::vector<campaign::CampaignPoint> points,
                       int pdesShards);

  /// Blocks until a task is available (false once stop() has been called
  /// and nothing is left to dispatch). Fair across clients.
  bool next(JobTask* out);

  /// Lands the finished record for a dispatched task. `viaCache` marks
  /// points served without a fresh simulation (cache hit or coalesced).
  void complete(const JobTask& task, campaign::PointRecord rec,
                bool viaCache);

  /// Skips the job's undispatched points. In-flight points still land.
  /// Returns false for an unknown job id.
  bool cancel(std::uint64_t job);

  JobStatus status(std::uint64_t job) const;

  /// Landed ok-records of the job so far, sorted by point index; *state
  /// receives the same string status() reports. Empty + found=false state
  /// "unknown" for a bad id.
  std::vector<campaign::PointRecord> records(std::uint64_t job,
                                             std::string* state) const;

  std::size_t queuedPoints() const;

  /// Wakes all waiters; next() drains nothing further after this.
  void stop();

 private:
  struct Job {
    std::uint64_t id = 0;
    std::uint64_t client = 0;
    std::string name;
    int pdesShards = 1;
    std::vector<campaign::CampaignPoint> points;
    std::vector<campaign::PointRecord> recs;  // slot-indexed
    std::vector<char> landed;                 // slot-indexed
    std::size_t nextSlot = 0;   // first undispatched point
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t cacheHits = 0;
    bool cancelled = false;
  };

  std::string stateLocked(const Job& j) const;
  bool pickLocked(JobTask* out);

  const std::size_t maxQueuedPoints_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Job> jobs_;
  std::vector<std::uint64_t> clientOrder_;  // distinct clients, arrival order
  std::size_t rr_ = 0;                      // next client to serve
  std::uint64_t nextJobId_ = 1;
  std::size_t queued_ = 0;                  // undispatched points, all jobs
  bool stopped_ = false;
};

}  // namespace xmt::server
