// Thin client for the xmtserved protocol — the library behind the xmtq
// CLI and the serving tests. One ServerClient wraps one connection; it
// is not thread-safe (the protocol is strictly request/response per
// connection; concurrent clients open their own connections).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/json.h"

namespace xmt::server {

struct SubmitResult {
  bool ok = false;
  bool busy = false;       // backpressure: retry later
  std::string error;       // set when !ok
  std::uint64_t job = 0;
  std::size_t points = 0;
};

struct StatusResult {
  std::string state;       // queued | running | done | cancelling | cancelled
  std::size_t total = 0;
  std::size_t done = 0;
  std::size_t failed = 0;
  std::size_t cacheHits = 0;
};

struct ResultsPage {
  std::string state;
  std::vector<std::string> records;  // results.jsonl lines, point order
};

class ServerClient {
 public:
  /// Connects; throws IoError when no daemon listens on `socketPath`.
  explicit ServerClient(const std::string& socketPath);

  /// Sends one request object, returns the response object. Throws
  /// IoError when the connection drops, ConfigError on an unparsable
  /// response.
  Json request(const Json& req);

  Json ping();
  SubmitResult submitSpec(const std::string& specText, int pdesShards = 1);
  StatusResult status(std::uint64_t job);            // throws on unknown job
  ResultsPage results(std::uint64_t job);            // throws on unknown job
  bool cancel(std::uint64_t job);
  Json stats();
  void shutdown();

  /// Polls status until the job leaves queued/running, then fetches the
  /// final records. `pollMs` is the sleep between polls.
  ResultsPage waitForJob(std::uint64_t job, int pollMs = 20);

 private:
  Json roundTrip(const std::string& line);

  class Impl;
  // UnixConn kept out of the header via a tiny pimpl so client users
  // don't pull in socket headers.
  std::shared_ptr<Impl> impl_;
};

}  // namespace xmt::server
