#include "src/server/cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "src/common/digest.h"
#include "src/common/error.h"
#include "src/common/json.h"
#include "src/common/version.h"
#include "src/sim/statsjson.h"
#include "src/workloads/registry.h"

namespace xmt::server {

namespace fs = std::filesystem;

namespace {

bool isHexKeyFile(const std::string& name) {
  // <48 hex chars>.json
  if (name.size() != 48 + 5 || name.compare(48, 5, ".json") != 0) return false;
  return name.find_first_not_of("0123456789abcdef") == 48;
}

// Write-then-fsync-then-rename: the destination path either holds the old
// content or the complete new content, never a torn entry. The temp name
// is uniquified so concurrent inserts of the same key cannot interleave
// writes into one temp file.
bool writeAtomically(const std::string& path, const std::string& content) {
  static std::atomic<std::uint64_t> seq{0};
  std::string tmp =
      path + ".tmp" + std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t off = 0;
  while (off < content.size()) {
    ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  ::fsync(fd);
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

ResultCache::ResultCache(std::string root, std::uint64_t maxBytes)
    : root_(std::move(root)), maxBytes_(maxBytes) {
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec)
    throw ConfigError("cannot create cache directory '" + root_ +
                      "': " + ec.message());
  scanExisting();
}

std::string ResultCache::pathFor(const std::string& key) const {
  return root_ + "/" + key.substr(0, 2) + "/" + key + ".json";
}

void ResultCache::scanExisting() {
  // Rebuild the index from disk; order recency by mtime so LRU decisions
  // survive a daemon restart. Leftover .tmp files from a kill mid-insert
  // are swept here.
  struct Found {
    fs::file_time_type mtime;
    std::string key;
    std::uint64_t size;
  };
  std::vector<Found> found;
  std::error_code ec;
  for (const auto& shard : fs::directory_iterator(root_, ec)) {
    if (!shard.is_directory(ec)) continue;
    for (const auto& entry : fs::directory_iterator(shard.path(), ec)) {
      std::string name = entry.path().filename().string();
      if (!isHexKeyFile(name)) {
        if (name.find(".tmp") != std::string::npos)
          fs::remove(entry.path(), ec);
        continue;
      }
      Found f;
      f.key = name.substr(0, 48);
      f.size = static_cast<std::uint64_t>(entry.file_size(ec));
      f.mtime = entry.last_write_time(ec);
      found.push_back(std::move(f));
    }
  }
  std::sort(found.begin(), found.end(), [](const Found& a, const Found& b) {
    return a.mtime < b.mtime;
  });
  for (const auto& f : found) {
    entries_[f.key] = Entry{f.size, ++useClock_};
    bytes_ += f.size;
  }
}

bool ResultCache::lookup(const std::string& key, campaign::RunPayload* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return false;
    }
    it->second.lastUse = ++useClock_;
  }

  std::string path = pathFor(key);
  std::ifstream f(path);
  std::string text((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  bool good = static_cast<bool>(f);
  if (good) {
    try {
      Json j = Json::parse(text);
      if (j.at("key").asString() != key)
        throw ConfigError("cache entry key mismatch");
      out->ok = true;
      out->error.clear();
      out->json = j.at("payload").dump();
    } catch (const Error&) {
      good = false;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (!good) {
    // Corrupt or vanished entry: drop it and report a miss so the point
    // simply re-simulates.
    if (it != entries_.end()) {
      bytes_ -= std::min(bytes_, it->second.size);
      entries_.erase(it);
      std::error_code ec;
      fs::remove(path, ec);
    }
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  // Refresh the on-disk recency signal for post-restart LRU ordering.
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  return true;
}

void ResultCache::insert(const std::string& key,
                         const campaign::RunPayload& payload) {
  if (!payload.ok) return;
  Json entry = Json::object();
  entry.set("key", Json::str(key));
  entry.set("version", Json::str(kToolchainVersion));
  entry.set("payload", Json::parse(payload.json));
  std::string text = entry.dump();
  text += '\n';

  std::string path = pathFor(key);
  std::error_code ec;
  fs::create_directories(root_ + "/" + key.substr(0, 2), ec);
  if (!writeAtomically(path, text)) return;  // disk trouble: stay a miss

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) bytes_ -= std::min(bytes_, it->second.size);
  entries_[key] = Entry{static_cast<std::uint64_t>(text.size()), ++useClock_};
  bytes_ += text.size();
  ++stats_.inserts;
  evictOverflowLocked(key);
}

void ResultCache::evictOverflowLocked(const std::string& keep) {
  while (bytes_ > maxBytes_ && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == entries_.end() ||
          it->second.lastUse < victim->second.lastUse)
        victim = it;
    }
    if (victim == entries_.end()) break;
    std::error_code ec;
    fs::remove(pathFor(victim->first), ec);
    bytes_ -= std::min(bytes_, victim->second.size);
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s = stats_;
  s.bytes = bytes_;
  s.entries = entries_.size();
  return s;
}

std::string ResultCache::keyFor(const campaign::CampaignPoint& point) {
  return keyFor(point, kToolchainVersion);
}

std::string ResultCache::keyFor(const campaign::CampaignPoint& point,
                                const std::string& version) {
  std::uint64_t cfg = fnv1a64(point.config.toConfigMap().toText() +
                              "\nmode=" + simModeName(point.mode));
  std::uint64_t wl = fnv1a64(point.workload.key() + "\n" +
                             workloads::instanceSource(point.workload));
  return hex64(cfg) + hex64(wl) + hex64(fnv1a64(version));
}

bool Coalescer::lead(const std::string& key, campaign::RunPayload* out) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = inflight_.find(key);
  if (it == inflight_.end()) {
    inflight_[key] = std::make_shared<Pending>();
    return true;
  }
  std::shared_ptr<Pending> p = it->second;  // keep alive past erase
  ++coalesced_;
  cv_.wait(lock, [&] { return p->done; });
  *out = p->payload;
  return false;
}

void Coalescer::finish(const std::string& key, campaign::RunPayload payload) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = inflight_.find(key);
  if (it == inflight_.end()) return;
  it->second->payload = std::move(payload);
  it->second->done = true;
  inflight_.erase(it);
  cv_.notify_all();
}

std::uint64_t Coalescer::coalescedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_;
}

}  // namespace xmt::server
