#include "src/server/client.h"

#include <chrono>
#include <thread>

#include "src/common/error.h"
#include "src/common/socket.h"
#include "src/server/protocol.h"

namespace xmt::server {

class ServerClient::Impl {
 public:
  explicit Impl(const std::string& path) : conn(UnixConn::connect(path)) {}
  UnixConn conn;
};

ServerClient::ServerClient(const std::string& socketPath)
    : impl_(std::make_shared<Impl>(socketPath)) {}

Json ServerClient::roundTrip(const std::string& line) {
  if (!impl_->conn.sendLine(line)) throw IoError("server connection lost");
  std::string reply;
  if (impl_->conn.recvLine(&reply, kMaxFrameBytes) != UnixConn::Recv::kOk)
    throw IoError("server closed the connection");
  return Json::parse(reply);
}

Json ServerClient::request(const Json& req) { return roundTrip(req.dump()); }

Json ServerClient::ping() {
  Json req = Json::object();
  req.set("cmd", Json::str("ping"));
  return request(req);
}

SubmitResult ServerClient::submitSpec(const std::string& specText,
                                      int pdesShards) {
  Json req = Json::object();
  req.set("cmd", Json::str("submit"));
  req.set("spec", Json::str(specText));
  if (pdesShards > 1) req.set("pdes_shards", Json::number(pdesShards));
  Json resp = request(req);
  SubmitResult r;
  r.ok = resp.at("ok").asBool();
  if (!r.ok) {
    const Json* busy = resp.find("busy");
    r.busy = busy && busy->asBool();
    r.error = resp.at("error").asString();
    return r;
  }
  r.job = static_cast<std::uint64_t>(resp.at("job").asInt());
  r.points = static_cast<std::size_t>(resp.at("points").asInt());
  return r;
}

StatusResult ServerClient::status(std::uint64_t job) {
  Json req = Json::object();
  req.set("cmd", Json::str("status"));
  req.set("job", Json::number(job));
  Json resp = request(req);
  if (!resp.at("ok").asBool())
    throw ConfigError("status: " + resp.at("error").asString());
  StatusResult s;
  s.state = resp.at("state").asString();
  s.total = static_cast<std::size_t>(resp.at("total").asInt());
  s.done = static_cast<std::size_t>(resp.at("done").asInt());
  s.failed = static_cast<std::size_t>(resp.at("failed").asInt());
  s.cacheHits = static_cast<std::size_t>(resp.at("cache_hits").asInt());
  return s;
}

ResultsPage ServerClient::results(std::uint64_t job) {
  Json req = Json::object();
  req.set("cmd", Json::str("results"));
  req.set("job", Json::number(job));
  Json resp = request(req);
  if (!resp.at("ok").asBool())
    throw ConfigError("results: " + resp.at("error").asString());
  ResultsPage page;
  page.state = resp.at("state").asString();
  std::size_t count = static_cast<std::size_t>(resp.at("count").asInt());
  page.records.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string line;
    if (impl_->conn.recvLine(&line, kMaxFrameBytes) != UnixConn::Recv::kOk)
      throw IoError("connection lost mid-stream");
    page.records.push_back(std::move(line));
  }
  return page;
}

bool ServerClient::cancel(std::uint64_t job) {
  Json req = Json::object();
  req.set("cmd", Json::str("cancel"));
  req.set("job", Json::number(job));
  return request(req).at("ok").asBool();
}

Json ServerClient::stats() {
  Json req = Json::object();
  req.set("cmd", Json::str("stats"));
  return request(req);
}

void ServerClient::shutdown() {
  Json req = Json::object();
  req.set("cmd", Json::str("shutdown"));
  request(req);
}

ResultsPage ServerClient::waitForJob(std::uint64_t job, int pollMs) {
  while (true) {
    StatusResult s = status(job);
    if (s.state != "queued" && s.state != "running" &&
        s.state != "cancelling")
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(pollMs));
  }
  return results(job);
}

}  // namespace xmt::server
