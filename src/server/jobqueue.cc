#include "src/server/jobqueue.h"

#include <algorithm>

namespace xmt::server {

JobQueue::JobQueue(std::size_t maxQueuedPoints)
    : maxQueuedPoints_(maxQueuedPoints) {}

std::uint64_t JobQueue::submit(std::uint64_t client, std::string name,
                               std::vector<campaign::CampaignPoint> points,
                               int pdesShards) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopped_) return 0;
  if (queued_ + points.size() > maxQueuedPoints_) return 0;  // backpressure
  Job job;
  job.id = nextJobId_++;
  job.client = client;
  job.name = std::move(name);
  job.pdesShards = pdesShards;
  job.recs.resize(points.size());
  job.landed.assign(points.size(), 0);
  job.points = std::move(points);
  queued_ += job.points.size();
  if (std::find(clientOrder_.begin(), clientOrder_.end(), client) ==
      clientOrder_.end())
    clientOrder_.push_back(client);
  std::uint64_t id = job.id;
  jobs_.emplace(id, std::move(job));
  cv_.notify_all();
  return id;
}

std::string JobQueue::stateLocked(const Job& j) const {
  if (j.cancelled)
    return j.done == j.nextSlot ? "cancelled" : "cancelling";
  if (j.done == j.points.size()) return "done";
  if (j.nextSlot == 0) return "queued";
  return "running";
}

bool JobQueue::pickLocked(JobTask* out) {
  // Round-robin over clients; within a client, oldest job first (jobs_ is
  // id-ordered and ids are monotonic).
  for (std::size_t k = 0; k < clientOrder_.size(); ++k) {
    std::size_t ci = (rr_ + k) % clientOrder_.size();
    std::uint64_t client = clientOrder_[ci];
    for (auto& [id, job] : jobs_) {
      if (job.client != client || job.cancelled) continue;
      if (job.nextSlot >= job.points.size()) continue;
      out->job = id;
      out->slot = job.nextSlot;
      out->point = job.points[job.nextSlot];
      out->pdesShards = job.pdesShards;
      ++job.nextSlot;
      --queued_;
      rr_ = (ci + 1) % clientOrder_.size();
      return true;
    }
  }
  return false;
}

bool JobQueue::next(JobTask* out) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Stop wins over remaining work: a stopping daemon abandons
    // undispatched points (clients resubmit; the cache makes the redo
    // cheap) instead of draining an arbitrarily deep queue.
    if (stopped_) return false;
    if (pickLocked(out)) return true;
    cv_.wait(lock);
  }
}

void JobQueue::complete(const JobTask& task, campaign::PointRecord rec,
                        bool viaCache) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(task.job);
  if (it == jobs_.end()) return;
  Job& job = it->second;
  if (task.slot >= job.landed.size() || job.landed[task.slot]) return;
  job.landed[task.slot] = 1;
  if (!rec.ok) ++job.failed;
  if (viaCache) ++job.cacheHits;
  job.recs[task.slot] = std::move(rec);
  ++job.done;
}

bool JobQueue::cancel(std::uint64_t job) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return false;
  Job& j = it->second;
  if (!j.cancelled) {
    j.cancelled = true;
    queued_ -= j.points.size() - j.nextSlot;
    // Dispatched points keep running; undispatched slots never will.
    // done/total in status reflect the dispatched prefix only.
  }
  return true;
}

JobStatus JobQueue::status(std::uint64_t job) const {
  std::lock_guard<std::mutex> lock(mu_);
  JobStatus s;
  auto it = jobs_.find(job);
  if (it == jobs_.end()) return s;
  const Job& j = it->second;
  s.found = true;
  s.name = j.name;
  s.state = stateLocked(j);
  s.total = j.points.size();
  s.done = j.done;
  s.failed = j.failed;
  s.cacheHits = j.cacheHits;
  return s;
}

std::vector<campaign::PointRecord> JobQueue::records(
    std::uint64_t job, std::string* state) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<campaign::PointRecord> out;
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    if (state) *state = "unknown";
    return out;
  }
  const Job& j = it->second;
  if (state) *state = stateLocked(j);
  for (std::size_t i = 0; i < j.points.size(); ++i)
    if (j.landed[i] && j.recs[i].ok) out.push_back(j.recs[i]);
  std::sort(out.begin(), out.end(),
            [](const campaign::PointRecord& a, const campaign::PointRecord& b) {
              return a.index < b.index;
            });
  return out;
}

std::size_t JobQueue::queuedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

void JobQueue::stop() {
  std::lock_guard<std::mutex> lock(mu_);
  stopped_ = true;
  cv_.notify_all();
}

}  // namespace xmt::server
