// The xmtserved wire protocol: newline-delimited JSON over a Unix-domain
// stream socket, one request object per line, one response object (plus,
// for `results`, a run of record lines) per request.
//
// Requests ({"cmd": ..., ...}):
//   ping                          -> {"ok":true,"server":"xmtserved",
//                                     "version":<toolchain>}
//   submit  {spec, pdes_shards?}  -> {"ok":true,"job":N,"points":P}
//                                  | {"ok":false,"busy":true,...}  (queue full)
//   status  {job}                 -> {"ok":true,"state":...,"total","done",
//                                     "failed","cache_hits"}
//   results {job}                 -> {"ok":true,"state":...,"count":K} then
//                                    K results.jsonl-format record lines
//                                    (ok points, sorted by point index)
//   cancel  {job}                 -> {"ok":true}   (queued points skipped)
//   stats                         -> {"ok":true, cache/serving counters}
//   shutdown                      -> {"ok":true} and the daemon begins a
//                                    graceful stop
//
// Every error is {"ok":false,"error":...}; backpressure adds
// "busy":true so clients can distinguish "retry later" from "never".
// A malformed line gets an error reply and the connection stays open; an
// oversized line (> frame limit) is drained, rejected, and the
// connection stays open — a bad client can never wedge the accept loop.
#pragma once

#include <cstddef>
#include <string>

#include "src/common/json.h"

namespace xmt::server {

/// Frames beyond this are rejected with kOversize (requests are small;
/// the only big payloads flow server->client as separate record lines).
inline constexpr std::size_t kMaxFrameBytes = 1 << 20;

struct Request {
  std::string cmd;
  Json body;  // the full request object
};

/// Parses and minimally validates one request line. Throws ConfigError
/// (field = offending key) on malformed JSON, a missing/non-string "cmd",
/// or an unknown command name.
Request parseRequest(const std::string& line);

Json okResponse();
Json errorResponse(const std::string& message);
/// Backpressure reply: ok=false, busy=true.
Json busyResponse(const std::string& message);

}  // namespace xmt::server
