#include "src/server/protocol.h"

#include <algorithm>
#include <array>

#include "src/common/error.h"

namespace xmt::server {

namespace {

constexpr std::array<const char*, 7> kCommands = {
    "ping", "submit", "status", "results", "cancel", "stats", "shutdown"};

}  // namespace

Request parseRequest(const std::string& line) {
  Request req;
  req.body = Json::parse(line);  // ConfigError on malformed JSON
  if (!req.body.isObject())
    throw ConfigError("request", "expected a JSON object");
  const Json* cmd = req.body.find("cmd");
  if (!cmd) throw ConfigError("cmd", "missing command");
  req.cmd = cmd->asString();
  if (std::find_if(kCommands.begin(), kCommands.end(), [&](const char* c) {
        return req.cmd == c;
      }) == kCommands.end())
    throw ConfigError("cmd", "unknown command '" + req.cmd + "'");
  return req;
}

Json okResponse() {
  Json j = Json::object();
  j.set("ok", Json::boolean(true));
  return j;
}

Json errorResponse(const std::string& message) {
  Json j = Json::object();
  j.set("ok", Json::boolean(false));
  j.set("error", Json::str(message));
  return j;
}

Json busyResponse(const std::string& message) {
  Json j = Json::object();
  j.set("ok", Json::boolean(false));
  j.set("busy", Json::boolean(true));
  j.set("error", Json::str(message));
  return j;
}

}  // namespace xmt::server
