#include "src/server/daemon.h"

#include <chrono>

#include "src/common/error.h"
#include "src/common/version.h"

namespace xmt::server {

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)),
      cache_(opts_.cacheDir, opts_.cacheMaxBytes),
      queue_(opts_.maxQueuedPoints),
      listener_(opts_.socketPath) {
  int workers =
      opts_.workers > 0 ? opts_.workers : ThreadPool::hardwareWorkers();
  pool_ = std::make_unique<ThreadPool>(workers);
  freeSlots_ = workers + 2;  // small lookahead; queue stays the scheduler
  dispatchThread_ = std::thread([this] { dispatchLoop(); });
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

Server::~Server() { stop(); }

void Server::stop() {
  std::lock_guard<std::mutex> stopLock(stopMu_);
  if (stopped_) return;
  stopped_ = true;
  stopping_.store(true);

  listener_.wake();
  if (acceptThread_.joinable()) acceptThread_.join();
  {
    std::lock_guard<std::mutex> lock(connMu_);
    for (auto& slot : conns_) slot.conn.shutdownBoth();
  }
  for (auto& slot : conns_)
    if (slot.thread.joinable()) slot.thread.join();
  conns_.clear();

  queue_.stop();
  if (dispatchThread_.joinable()) dispatchThread_.join();
  pool_->wait();
  pool_.reset();

  shutdownCv_.notify_all();
}

bool Server::waitForShutdown(int timeoutMs) {
  std::unique_lock<std::mutex> lock(shutdownMu_);
  shutdownCv_.wait_for(lock, std::chrono::milliseconds(timeoutMs),
                       [this] { return shutdownRequested_; });
  return shutdownRequested_;
}

void Server::acceptLoop() {
  while (!stopping_.load()) {
    UnixConn conn = listener_.accept();
    if (!conn.valid()) break;
    reapFinishedConns();
    std::lock_guard<std::mutex> lock(connMu_);
    conns_.emplace_back();
    ConnSlot* slot = &conns_.back();
    slot->conn = std::move(conn);
    std::uint64_t clientId = nextClientId_++;
    slot->thread = std::thread([this, slot, clientId] {
      serveConn(slot, clientId);
    });
  }
}

void Server::reapFinishedConns() {
  std::lock_guard<std::mutex> lock(connMu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->finished.load()) {
      if (it->thread.joinable()) it->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::serveConn(ConnSlot* slot, std::uint64_t clientId) {
  std::string line;
  while (!stopping_.load()) {
    UnixConn::Recv r = slot->conn.recvLine(&line, opts_.maxFrameBytes);
    if (r == UnixConn::Recv::kEof) break;
    if (r == UnixConn::Recv::kOversize) {
      // The line has been drained; reject it and keep serving.
      slot->conn.sendLine(
          errorResponse("frame exceeds " +
                        std::to_string(opts_.maxFrameBytes) + " bytes")
              .dump());
      continue;
    }
    handleLine(line, clientId, slot->conn);
  }
  slot->finished.store(true);
}

void Server::handleLine(const std::string& line, std::uint64_t clientId,
                        UnixConn& conn) {
  Request req;
  try {
    req = parseRequest(line);
  } catch (const Error& e) {
    conn.sendLine(errorResponse(e.what()).dump());
    return;
  }

  try {
    if (req.cmd == "ping") {
      Json j = okResponse();
      j.set("server", Json::str("xmtserved"));
      j.set("version", Json::str(kToolchainVersion));
      conn.sendLine(j.dump());
    } else if (req.cmd == "submit") {
      const Json* spec = req.body.find("spec");
      if (!spec) {
        conn.sendLine(errorResponse("submit: missing 'spec'").dump());
        return;
      }
      int shards = 1;
      if (const Json* s = req.body.find("pdes_shards"))
        shards = static_cast<int>(s->asInt());
      campaign::CampaignSpec cs =
          campaign::CampaignSpec::fromText(spec->asString());
      std::vector<campaign::CampaignPoint> points = cs.expand();
      if (points.size() > opts_.maxQueuedPoints) {
        conn.sendLine(
            errorResponse("submit: grid has " +
                          std::to_string(points.size()) +
                          " points, above the queue bound of " +
                          std::to_string(opts_.maxQueuedPoints))
                .dump());
        return;
      }
      std::uint64_t id =
          queue_.submit(clientId, cs.name(), std::move(points), shards);
      if (id == 0) {
        conn.sendLine(busyResponse("queue full, retry later").dump());
        return;
      }
      Json j = okResponse();
      j.set("job", Json::number(id));
      j.set("points", Json::number(
                          static_cast<std::int64_t>(cs.pointCount())));
      conn.sendLine(j.dump());
    } else if (req.cmd == "status") {
      JobStatus s = queue_.status(
          static_cast<std::uint64_t>(req.body.at("job").asInt()));
      if (!s.found) {
        conn.sendLine(errorResponse("unknown job").dump());
        return;
      }
      Json j = okResponse();
      j.set("name", Json::str(s.name));
      j.set("state", Json::str(s.state));
      j.set("total", Json::number(static_cast<std::int64_t>(s.total)));
      j.set("done", Json::number(static_cast<std::int64_t>(s.done)));
      j.set("failed", Json::number(static_cast<std::int64_t>(s.failed)));
      j.set("cache_hits",
            Json::number(static_cast<std::int64_t>(s.cacheHits)));
      conn.sendLine(j.dump());
    } else if (req.cmd == "results") {
      std::string state;
      std::vector<campaign::PointRecord> recs = queue_.records(
          static_cast<std::uint64_t>(req.body.at("job").asInt()), &state);
      if (state == "unknown") {
        conn.sendLine(errorResponse("unknown job").dump());
        return;
      }
      Json j = okResponse();
      j.set("state", Json::str(state));
      j.set("count", Json::number(static_cast<std::int64_t>(recs.size())));
      conn.sendLine(j.dump());
      for (const auto& r : recs) conn.sendLine(r.recordJson);
    } else if (req.cmd == "cancel") {
      bool found = queue_.cancel(
          static_cast<std::uint64_t>(req.body.at("job").asInt()));
      conn.sendLine(
          (found ? okResponse() : errorResponse("unknown job")).dump());
    } else if (req.cmd == "stats") {
      CacheStats cs = cache_.stats();
      Json c = Json::object();
      c.set("entries", Json::number(cs.entries));
      c.set("bytes", Json::number(cs.bytes));
      c.set("hits", Json::number(cs.hits));
      c.set("misses", Json::number(cs.misses));
      c.set("inserts", Json::number(cs.inserts));
      c.set("evictions", Json::number(cs.evictions));
      Json j = okResponse();
      j.set("simulations", Json::number(campaign::simulationsExecuted()));
      j.set("coalesced", Json::number(coalescer_.coalescedCount()));
      j.set("queued_points",
            Json::number(static_cast<std::int64_t>(queue_.queuedPoints())));
      j.set("cache", std::move(c));
      conn.sendLine(j.dump());
    } else if (req.cmd == "shutdown") {
      conn.sendLine(okResponse().dump());
      std::lock_guard<std::mutex> lock(shutdownMu_);
      shutdownRequested_ = true;
      shutdownCv_.notify_all();
    }
  } catch (const Error& e) {
    conn.sendLine(errorResponse(e.what()).dump());
  }
}

void Server::dispatchLoop() {
  JobTask task;
  while (queue_.next(&task)) {
    {
      std::unique_lock<std::mutex> lock(slotMu_);
      slotCv_.wait(lock, [this] { return freeSlots_ > 0; });
      --freeSlots_;
    }
    pool_->submit([this, task] {
      execTask(task);
      std::lock_guard<std::mutex> lock(slotMu_);
      ++freeSlots_;
      slotCv_.notify_one();
    });
  }
}

void Server::execTask(const JobTask& task) {
  std::string key = ResultCache::keyFor(task.point);
  campaign::RunPayload payload;
  bool viaCache = false;
  if (cache_.lookup(key, &payload)) {
    viaCache = true;
  } else if (!coalescer_.lead(key, &payload)) {
    viaCache = true;  // another task simulated it while we waited
  } else {
    // We are the leader. Re-check the cache: a previous leader may have
    // landed the entry between our miss and our lead().
    if (cache_.lookup(key, &payload)) {
      viaCache = true;
    } else {
      payload = campaign::simulatePoint(task.point, task.pdesShards);
      if (payload.ok) cache_.insert(key, payload);
    }
    coalescer_.finish(key, payload);
  }
  queue_.complete(task, campaign::payloadToRecord(task.point, payload),
                  viaCache);
}

}  // namespace xmt::server
