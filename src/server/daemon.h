// xmtserved: the simulation-as-a-service daemon.
//
// One Server owns the four moving parts and wires them together:
//
//   UnixListener  -> accept loop, one lightweight thread per connection
//                    (protocol parsing only; never simulates)
//   JobQueue      -> fairness + backpressure between clients
//   dispatcher    -> pulls tasks from the queue in fair order and feeds
//                    the work-stealing ThreadPool, keeping at most a few
//                    tasks in the pool so the queue stays the ordering
//                    authority
//   ResultCache + Coalescer -> every point is served from the persistent
//                    content-addressed cache when possible; concurrent
//                    identical points collapse onto one simulation
//
// The daemon is embeddable: tests construct a Server in-process, drive
// it through real sockets, destroy it, and construct a new one over the
// same cache directory to model a restart.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/socket.h"
#include "src/common/threadpool.h"
#include "src/server/cache.h"
#include "src/server/jobqueue.h"
#include "src/server/protocol.h"

namespace xmt::server {

struct ServerOptions {
  std::string socketPath;            // required
  std::string cacheDir;              // required
  std::uint64_t cacheMaxBytes = 256ull << 20;
  int workers = 0;                   // <= 0: hardware concurrency
  std::size_t maxQueuedPoints = 4096;
  std::size_t maxFrameBytes = kMaxFrameBytes;
};

class Server {
 public:
  /// Binds the socket, opens the cache, and starts serving. Throws
  /// IoError/ConfigError when the socket or cache directory is unusable.
  explicit Server(ServerOptions opts);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Graceful stop: wakes the accept loop, closes live connections,
  /// drains in-flight points (queued-but-undispatched work is dropped),
  /// and joins every thread. Idempotent.
  void stop();

  /// Blocks up to timeoutMs; returns true once a client has issued
  /// `shutdown` (the caller then runs stop()).
  bool waitForShutdown(int timeoutMs);

  ResultCache& cache() { return cache_; }
  std::uint64_t coalescedCount() const { return coalescer_.coalescedCount(); }
  const ServerOptions& options() const { return opts_; }

 private:
  struct ConnSlot {
    UnixConn conn;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void acceptLoop();
  void serveConn(ConnSlot* slot, std::uint64_t clientId);
  /// Handles one request line; sends the response (and, for `results`,
  /// the record lines) on `conn`.
  void handleLine(const std::string& line, std::uint64_t clientId,
                  UnixConn& conn);
  void dispatchLoop();
  void execTask(const JobTask& task);
  void reapFinishedConns();

  ServerOptions opts_;
  ResultCache cache_;
  Coalescer coalescer_;
  JobQueue queue_;
  UnixListener listener_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex connMu_;
  std::list<ConnSlot> conns_;
  std::uint64_t nextClientId_ = 1;

  // Bounds tasks handed to the pool so the JobQueue keeps deciding order.
  std::mutex slotMu_;
  std::condition_variable slotCv_;
  int freeSlots_ = 0;

  std::mutex shutdownMu_;
  std::condition_variable shutdownCv_;
  bool shutdownRequested_ = false;

  std::thread acceptThread_;
  std::thread dispatchThread_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  std::mutex stopMu_;
};

}  // namespace xmt::server
