// Persistent content-addressed result cache for xmtserved.
//
// The unit of caching is the spec-independent RunPayload of one
// (config point, workload, simulation mode): any sweep, submitted by any
// client, that covers the same point is a hit — across daemon restarts,
// because entries live on disk. The key is content-addressed:
//
//   key = hex64(config-point digest) . hex64(workload digest)
//       . hex64(toolchain-version digest)
//
// where the config-point digest covers the canonical XmtConfig text plus
// the simulation mode, the workload digest covers the instance key *and*
// the generated XMTC source (so a generator change re-keys even at the
// same parameters), and the version digest pins the toolchain build that
// produced the numbers. Entries are sharded into 256 directories by the
// leading key byte to keep directory scans flat at millions of entries.
//
// Durability: an entry is written to a temporary file, fsync'd, then
// renamed into place — readers (including a daemon that was SIGKILLed
// mid-insert and restarted) only ever see complete entries. Eviction is
// LRU under a total-size bound; recency survives restarts via file
// mtimes, which lookups refresh.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/campaign/runner.h"
#include "src/campaign/spec.h"

namespace xmt::server {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes = 0;     // current on-disk footprint
  std::uint64_t entries = 0;   // current entry count
};

class ResultCache {
 public:
  /// Opens (creating if needed) the cache rooted at `root`, scanning any
  /// entries a previous daemon left behind. `maxBytes` bounds the total
  /// on-disk footprint (a single oversized entry is kept regardless, so
  /// the newest result is never thrown away by its own insert).
  ResultCache(std::string root, std::uint64_t maxBytes);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Thread-safe. On hit fills *out (ok=true payload) and refreshes the
  /// entry's recency. A corrupt entry (torn by an unclean shutdown
  /// predating atomic renames, or bit-rotted) is deleted and reported as
  /// a miss — it re-simulates instead of poisoning results.
  bool lookup(const std::string& key, campaign::RunPayload* out);

  /// Thread-safe. Persists a successful payload under `key` (failed
  /// payloads are never cached — they re-run, matching the result
  /// store's retry semantics). Evicts LRU entries beyond the size bound.
  void insert(const std::string& key, const campaign::RunPayload& payload);

  CacheStats stats() const;
  const std::string& root() const { return root_; }

  /// Content-addressed key of a resolved campaign point under a given
  /// toolchain version (defaults to the running toolchain's).
  static std::string keyFor(const campaign::CampaignPoint& point);
  static std::string keyFor(const campaign::CampaignPoint& point,
                            const std::string& version);

 private:
  struct Entry {
    std::uint64_t size = 0;
    std::uint64_t lastUse = 0;  // logical clock; higher = more recent
  };

  std::string pathFor(const std::string& key) const;
  void scanExisting();
  void evictOverflowLocked(const std::string& keep);

  std::string root_;
  std::uint64_t maxBytes_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::uint64_t bytes_ = 0;
  std::uint64_t useClock_ = 0;
  CacheStats stats_;
};

/// In-flight request coalescing: when several jobs need the same cache
/// key concurrently, exactly one caller (the leader) simulates; the rest
/// block until the leader finishes and then share its payload. This is
/// what turns "two clients submit overlapping grids at the same moment"
/// into one simulation per distinct point rather than two.
class Coalescer {
 public:
  /// Returns true: the caller is the leader for `key` and MUST call
  /// finish() exactly once (even on failure). Returns false: a leader was
  /// already running; the call blocked until it finished and *out now
  /// holds the leader's payload.
  bool lead(const std::string& key, campaign::RunPayload* out);

  /// Publishes the leader's payload and releases all waiters.
  void finish(const std::string& key, campaign::RunPayload payload);

  /// Total requests that were resolved by waiting on another's run.
  std::uint64_t coalescedCount() const;

 private:
  struct Pending {
    bool done = false;
    campaign::RunPayload payload;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<Pending>> inflight_;
  std::uint64_t coalesced_ = 0;
};

}  // namespace xmt::server
