// The XMT toolchain facade — the library's primary public API.
//
// Mirrors the programmer's workflow the paper describes: write a PRAM-style
// XMTC program, compile it with the optimizing compiler, and run it on a
// simulated XMT configuration (cycle-accurate, or the fast functional mode
// for debugging), providing input through global variables and reading
// results from the memory dump, printf output, and cycle statistics.
//
//   xmt::Toolchain tc;                        // fpga64, cycle-accurate
//   auto sim = tc.makeSimulator(source);
//   sim->setGlobalArray("A", data);
//   auto r = sim->run();
//   auto b = sim->getGlobalArray("B");
#pragma once

#include <memory>
#include <string>

#include "src/compiler/driver.h"
#include "src/sim/simulator.h"

namespace xmt {

struct ToolchainOptions {
  CompilerOptions compiler;
  XmtConfig config = XmtConfig::fpga64();
  SimMode mode = SimMode::kCycleAccurate;
};

class Toolchain {
 public:
  Toolchain() = default;
  explicit Toolchain(ToolchainOptions opts) : opts_(std::move(opts)) {}

  const ToolchainOptions& options() const { return opts_; }
  ToolchainOptions& options() { return opts_; }

  /// Compiles XMTC to assembly (exposes the pre-pass output too).
  CompileResult compile(const std::string& xmtcSource) const {
    return compileXmtc(xmtcSource, opts_.compiler);
  }

  /// Compiles and assembles to a loadable image.
  Program build(const std::string& xmtcSource) const {
    return compileToProgram(xmtcSource, opts_.compiler);
  }

  /// Compiles, assembles and loads into a fresh simulator.
  std::unique_ptr<Simulator> makeSimulator(
      const std::string& xmtcSource) const {
    return std::make_unique<Simulator>(build(xmtcSource), opts_.config,
                                       opts_.mode);
  }

  /// One-shot convenience: build, run to halt, return the simulator (for
  /// output/global inspection) with the result.
  struct Execution {
    RunResult result;
    std::unique_ptr<Simulator> sim;
  };
  Execution run(const std::string& xmtcSource) const {
    Execution e;
    e.sim = makeSimulator(xmtcSource);
    e.result = e.sim->run();
    return e;
  }

 private:
  ToolchainOptions opts_;
};

}  // namespace xmt
