// Content digest helpers shared by campaign fingerprints and the server
// result cache: FNV-1a 64 over text, and fixed-width hex formatting so
// digests are stable as file names and JSON fields.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

namespace xmt {

inline std::uint64_t fnv1a64(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// 16 lower-case hex digits, zero padded.
inline std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

}  // namespace xmt
