#include "src/common/config.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/error.h"

namespace xmt {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

ConfigMap ConfigMap::fromText(const std::string& text) {
  ConfigMap cfg;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    if (eq == std::string::npos)
      throw ConfigError("line " + std::to_string(lineno) +
                        ": expected key=value, got '" + line + "'");
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (key.empty())
      throw ConfigError("line " + std::to_string(lineno) + ": empty key");
    cfg.values_[key] = value;
  }
  return cfg;
}

ConfigMap ConfigMap::fromFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ConfigError("cannot open config file '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return fromText(ss.str());
}

void ConfigMap::applyOverride(const std::string& keyEqualsValue) {
  auto eq = keyEqualsValue.find('=');
  if (eq == std::string::npos)
    throw ConfigError("override '" + keyEqualsValue +
                      "' is not of the form key=value");
  std::string key = trim(keyEqualsValue.substr(0, eq));
  std::string value = trim(keyEqualsValue.substr(eq + 1));
  if (key.empty()) throw ConfigError("override with empty key");
  values_[key] = value;
}

void ConfigMap::applyOverrides(const std::vector<std::string>& overrides) {
  for (const auto& o : overrides) applyOverride(o);
}

void ConfigMap::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}
void ConfigMap::set(const std::string& key, std::int64_t value) {
  values_[key] = std::to_string(value);
}
void ConfigMap::set(const std::string& key, double value) {
  std::ostringstream ss;
  ss << value;
  values_[key] = ss.str();
}

bool ConfigMap::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::optional<std::string> ConfigMap::find(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ConfigMap::getString(const std::string& key,
                                 const std::string& dflt) const {
  auto v = find(key);
  return v ? *v : dflt;
}

std::int64_t ConfigMap::getInt(const std::string& key,
                               std::int64_t dflt) const {
  auto v = find(key);
  if (!v) return dflt;
  const char* s = v->c_str();
  char* end = nullptr;
  errno = 0;
  long long r = std::strtoll(s, &end, 0);
  if (end == s || *end != '\0')
    throw ConfigError("key '" + key + "': '" + *v + "' is not an integer");
  if (errno == ERANGE)
    throw ConfigError("key '" + key + "': '" + *v + "' is out of range");
  return static_cast<std::int64_t>(r);
}

double ConfigMap::getDouble(const std::string& key, double dflt) const {
  auto v = find(key);
  if (!v) return dflt;
  const char* s = v->c_str();
  char* end = nullptr;
  double r = std::strtod(s, &end);
  if (end == s || *end != '\0')
    throw ConfigError("key '" + key + "': '" + *v + "' is not a number");
  return r;
}

bool ConfigMap::getBool(const std::string& key, bool dflt) const {
  auto v = find(key);
  if (!v) return dflt;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw ConfigError("key '" + key + "': '" + *v + "' is not a boolean");
}

std::vector<std::string> ConfigMap::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::string ConfigMap::toText() const {
  std::ostringstream ss;
  for (const auto& [k, v] : values_) ss << k << " = " << v << "\n";
  return ss.str();
}

}  // namespace xmt
