// Key=value configuration store with file parsing and CLI-style overrides.
//
// XMTSim configurations ("the simulated XMT configuration is determined by
// the user typically via configuration files and/or command line arguments")
// are expressed as flat key=value maps. ConfigMap parses files of the form
//
//   # comment
//   clusters = 64
//   tcus_per_cluster = 16
//
// and accepts "key=value" override strings, as from argv.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace xmt {

class ConfigMap {
 public:
  ConfigMap() = default;

  /// Parses config file text (not a path). Throws ConfigError on bad syntax.
  static ConfigMap fromText(const std::string& text);

  /// Loads a config file from disk. Throws ConfigError if unreadable.
  static ConfigMap fromFile(const std::string& path);

  /// Applies one "key=value" override (CLI style). Throws on bad syntax.
  void applyOverride(const std::string& keyEqualsValue);

  /// Applies a list of "key=value" overrides.
  void applyOverrides(const std::vector<std::string>& overrides);

  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, double value);

  bool has(const std::string& key) const;

  /// Typed getters with defaults. Throw ConfigError when the stored value
  /// cannot be converted to the requested type.
  std::string getString(const std::string& key, const std::string& dflt) const;
  std::int64_t getInt(const std::string& key, std::int64_t dflt) const;
  double getDouble(const std::string& key, double dflt) const;
  bool getBool(const std::string& key, bool dflt) const;

  /// All keys, sorted, for serialization and diffing.
  std::vector<std::string> keys() const;

  /// Round-trippable textual form (sorted key = value lines).
  std::string toText() const;

 private:
  std::optional<std::string> find(const std::string& key) const;
  std::map<std::string, std::string> values_;
};

}  // namespace xmt
