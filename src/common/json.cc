#include "src/common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "src/common/error.h"

namespace xmt {

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(std::int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::number(std::uint64_t v) {
  if (v > static_cast<std::uint64_t>(INT64_MAX))
    throw ConfigError("json integer out of range");
  return number(static_cast<std::int64_t>(v));
}

Json Json::real(double v) {
  if (!std::isfinite(v))
    throw ConfigError("json numbers must be finite");
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

Json Json::str(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::asBool() const {
  if (kind_ != Kind::kBool) throw ConfigError("json value is not a bool");
  return bool_;
}

std::int64_t Json::asInt() const {
  if (kind_ != Kind::kInt) throw ConfigError("json value is not an integer");
  return int_;
}

double Json::asDouble() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ != Kind::kDouble) throw ConfigError("json value is not a number");
  return double_;
}

const std::string& Json::asString() const {
  if (kind_ != Kind::kString) throw ConfigError("json value is not a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) throw ConfigError("json value is not an array");
  return items_;
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields_)
    if (k == key) return &v;
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (!v) throw ConfigError("json object has no field '" + key + "'");
  return *v;
}

void Json::push(Json v) {
  if (kind_ != Kind::kArray) throw ConfigError("json push on non-array");
  items_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  if (kind_ != Kind::kObject) throw ConfigError("json set on non-object");
  for (auto& [k, existing] : fields_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  fields_.emplace_back(key, std::move(v));
}

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void Json::dumpTo(std::string& out) const {
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kInt: out += std::to_string(int_); return;
    case Kind::kDouble: {
      char buf[32];
      auto [p, ec] = std::to_chars(buf, buf + sizeof buf, double_);
      (void)ec;
      out.append(buf, p);
      return;
    }
    case Kind::kString: appendEscaped(out, string_); return;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        items_[i].dumpTo(out);
      }
      out += ']';
      return;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i) out += ',';
        appendEscaped(out, fields_[i].first);
        out += ':';
        fields_[i].second.dumpTo(out);
      }
      out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dumpTo(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Json document() {
    Json v = value();
    skipWs();
    if (pos_ != s_.size()) fail("trailing characters after json document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw ConfigError("json parse error at offset " + std::to_string(pos_) +
                      ": " + why);
  }

  void skipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeWord(const char* w) {
    std::size_t n = std::string(w).size();
    if (s_.compare(pos_, n, w) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Json value() {
    skipWs();
    char c = peek();
    if (c == '{') return objectValue();
    if (c == '[') return arrayValue();
    if (c == '"') return Json::str(stringValue());
    if (consumeWord("null")) return Json::null();
    if (consumeWord("true")) return Json::boolean(true);
    if (consumeWord("false")) return Json::boolean(false);
    return numberValue();
  }

  Json objectValue() {
    expect('{');
    Json obj = Json::object();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skipWs();
      std::string key = stringValue();
      skipWs();
      expect(':');
      obj.set(key, value());
      skipWs();
      char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json arrayValue() {
    expect('[');
    Json arr = Json::array();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(value());
      skipWs();
      char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string stringValue() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Only the escapes the writer emits (< 0x20) plus plain ASCII are
          // expected; encode anything else as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json numberValue() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool isDouble = false;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        isDouble = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    std::string tok = s_.substr(start, pos_ - start);
    if (!isDouble) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec != std::errc() || p != tok.data() + tok.size())
        fail("bad integer '" + tok + "'");
      return Json::number(v);
    }
    double v = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec != std::errc() || p != tok.data() + tok.size())
      fail("bad number '" + tok + "'");
    return Json::real(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).document(); }

}  // namespace xmt
