// Work-stealing thread pool for the campaign engine.
//
// Campaign points are wildly unequal in cost — a functional-mode point can
// finish 100x faster than a chip1024 cycle-accurate point — so a static
// partition of points over workers leaves most threads idle behind the
// slowest shard. Instead every worker owns a deque: submit() deals tasks
// round-robin, a worker drains its own deque LIFO (cache-warm), and an
// idle worker steals the oldest task (FIFO) from a sibling, so the big
// points migrate to whoever is free.
//
// Tasks may submit() further tasks. wait() blocks until every task
// submitted so far has completed; the destructor drains outstanding work
// before joining.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xmt {

class ThreadPool {
 public:
  /// `workers` <= 0 selects hardwareWorkers().
  explicit ThreadPool(int workers = 0) {
    int n = workers > 0 ? workers : hardwareWorkers();
    queues_.resize(static_cast<std::size_t>(n));
    for (auto& q : queues_) q = std::make_unique<WorkerQueue>();
    threads_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      threads_.emplace_back([this, i] { workerLoop(static_cast<std::size_t>(i)); });
  }

  ~ThreadPool() {
    wait();
    {
      std::lock_guard<std::mutex> lock(wakeMu_);
      stop_ = true;
    }
    workCv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules a task. Thread-safe; callable from worker threads.
  void submit(std::function<void()> task) {
    std::size_t slot = next_.fetch_add(1, std::memory_order_relaxed) %
                       queues_.size();
    pending_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queues_[slot]->mu);
      queues_[slot]->tasks.push_back(std::move(task));
    }
    {
      // Publish under wakeMu_ so a worker between its predicate check and
      // its block cannot miss the notification.
      std::lock_guard<std::mutex> lock(wakeMu_);
      queued_.fetch_add(1, std::memory_order_release);
    }
    workCv_.notify_one();
  }

  /// Blocks until all tasks submitted so far (including tasks they spawn)
  /// have finished.
  void wait() {
    std::unique_lock<std::mutex> lock(doneMu_);
    doneCv_.wait(lock,
                 [this] { return pending_.load(std::memory_order_acquire) == 0; });
  }

  int workerCount() const { return static_cast<int>(threads_.size()); }

  static int hardwareWorkers() {
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  bool tryPop(std::size_t self, std::function<void()>& out) {
    // Own queue: newest first (LIFO) — better locality for task trees.
    {
      WorkerQueue& q = *queues_[self];
      std::lock_guard<std::mutex> lock(q.mu);
      if (!q.tasks.empty()) {
        out = std::move(q.tasks.back());
        q.tasks.pop_back();
        queued_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    // Steal sweep: oldest first (FIFO) from each sibling in turn.
    for (std::size_t k = 1; k < queues_.size(); ++k) {
      WorkerQueue& q = *queues_[(self + k) % queues_.size()];
      std::lock_guard<std::mutex> lock(q.mu);
      if (!q.tasks.empty()) {
        out = std::move(q.tasks.front());
        q.tasks.pop_front();
        queued_.fetch_sub(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  void workerLoop(std::size_t self) {
    std::function<void()> task;
    while (true) {
      if (tryPop(self, task)) {
        task();
        task = nullptr;
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(doneMu_);
          doneCv_.notify_all();
        }
        continue;
      }
      std::unique_lock<std::mutex> lock(wakeMu_);
      workCv_.wait(lock, [this] {
        return stop_ || queued_.load(std::memory_order_acquire) > 0;
      });
      if (stop_ && queued_.load(std::memory_order_acquire) == 0) return;
    }
  }

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> pending_{0};  // submitted, not yet finished
  std::atomic<std::size_t> queued_{0};   // sitting in a deque
  std::mutex wakeMu_;
  std::condition_variable workCv_;
  std::mutex doneMu_;
  std::condition_variable doneCv_;
  bool stop_ = false;
};

}  // namespace xmt
