// Toolchain version identity.
//
// Campaign fingerprints and the server's content-addressed cache keys
// incorporate this string so that results computed by an older
// compiler/simulator are never served for a newer one: bumping the
// version invalidates every resume manifest and every cache entry at
// once. Bump it whenever a change can alter any persisted simulation
// record (compiler output, timing model, stats schema).
#pragma once

namespace xmt {

inline constexpr char kToolchainVersion[] = "xmt-toolchain-0.8";

}  // namespace xmt
