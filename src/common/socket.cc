#include "src/common/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace xmt {

namespace {

int makeSocket() {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw IoError(std::string("socket: ") + std::strerror(errno));
  return fd;
}

sockaddr_un makeAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof addr.sun_path)
    throw IoError("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

UnixConn::~UnixConn() { close(); }

UnixConn::UnixConn(UnixConn&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

UnixConn& UnixConn::operator=(UnixConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    other.fd_ = -1;
  }
  return *this;
}

UnixConn UnixConn::connect(const std::string& path) {
  int fd = makeSocket();
  sockaddr_un addr = makeAddr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    int err = errno;
    ::close(fd);
    throw IoError("connect '" + path + "': " + std::strerror(err));
  }
  return UnixConn(fd);
}

bool UnixConn::sendLine(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed += '\n';
  std::size_t sent = 0;
  while (sent < framed.size()) {
    ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

UnixConn::Recv UnixConn::recvLine(std::string* out, std::size_t maxBytes) {
  bool oversize = false;
  char chunk[65536];
  while (true) {
    std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      if (oversize || nl > maxBytes) {
        buf_.erase(0, nl + 1);  // discard the too-long line
        return Recv::kOversize;
      }
      out->assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return Recv::kOk;
    }
    if (buf_.size() > maxBytes) {
      // Keep draining until the newline, but stop accumulating.
      oversize = true;
      buf_.clear();
    }
    if (fd_ < 0) return Recv::kEof;
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Recv::kEof;
    }
    if (n == 0) return Recv::kEof;  // a torn trailing line is dropped
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

void UnixConn::shutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void UnixConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixListener::UnixListener(std::string path) : path_(std::move(path)) {
  fd_ = makeSocket();
  sockaddr_un addr = makeAddr(path_);
  ::unlink(path_.c_str());  // stale socket from a previous daemon
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw IoError("bind '" + path_ + "': " + std::strerror(err));
  }
  if (::listen(fd_, 64) != 0) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw IoError("listen '" + path_ + "': " + std::strerror(err));
  }
}

UnixListener::~UnixListener() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

UnixConn UnixListener::accept() {
  while (fd_ >= 0) {
    int cfd = ::accept(fd_, nullptr, nullptr);
    if (cfd >= 0) return UnixConn(cfd);
    if (errno == EINTR || errno == ECONNABORTED) continue;
    break;  // EINVAL after wake(), or a real failure: stop accepting
  }
  return UnixConn();
}

void UnixListener::wake() {
  // shutdown() on a listening socket makes a blocked accept() return
  // (EINVAL on Linux) without racing fd reuse the way close() would.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

}  // namespace xmt
