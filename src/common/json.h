// Minimal JSON document model with deterministic serialization.
//
// The campaign engine persists every simulation point as one JSON record
// (JSON-lines), and resumability requires that re-serializing the same
// Stats yields byte-identical text. Hence: object keys keep insertion
// order, integers print exactly, and doubles print via shortest
// round-trip (std::to_chars). The parser accepts the full subset this
// writer emits (and standard JSON in general) so result stores can be
// read back for merging, ranking and tests.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace xmt {

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;

  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(std::int64_t v);
  static Json number(std::uint64_t v);
  static Json number(int v) { return number(static_cast<std::int64_t>(v)); }
  static Json real(double v);
  static Json str(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::kNull; }
  bool isObject() const { return kind_ == Kind::kObject; }
  bool isArray() const { return kind_ == Kind::kArray; }

  // Accessors throw ConfigError on kind mismatch (JSON here is always
  // configuration/result data, so the config error domain fits).
  bool asBool() const;
  std::int64_t asInt() const;
  double asDouble() const;  // accepts kInt too
  const std::string& asString() const;
  const std::vector<Json>& items() const;  // array elements

  /// Object field access; returns nullptr when absent (or not an object).
  const Json* find(const std::string& key) const;
  /// Object field access; throws ConfigError when absent.
  const Json& at(const std::string& key) const;

  /// Array append.
  void push(Json v);
  /// Object field set (appends; keeps insertion order, last set wins on
  /// lookup but duplicate keys are never produced by set()).
  void set(const std::string& key, Json v);

  const std::vector<std::pair<std::string, Json>>& fields() const {
    return fields_;
  }

  /// Serializes compactly (no whitespace). Deterministic.
  std::string dump() const;

  /// Parses a complete JSON document. Throws ConfigError on syntax errors
  /// or trailing garbage.
  static Json parse(const std::string& text);

 private:
  void dumpTo(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

}  // namespace xmt
