// Error types shared across the XMT toolchain.
//
// The toolchain reports user-facing failures (bad XMTC source, malformed
// assembly, invalid configuration, simulator misuse) via exceptions derived
// from xmt::Error. Internal invariant violations use XMT_CHECK, which throws
// InternalError so tests can assert on them without aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace xmt {

/// Base class for all toolchain errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or semantically invalid XMTC source code.
class CompileError : public Error {
 public:
  CompileError(int line, const std::string& what)
      : Error("compile error (line " + std::to_string(line) + "): " + what),
        line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

/// Malformed assembly input or a post-pass verification failure.
class AsmError : public Error {
 public:
  explicit AsmError(const std::string& what) : Error("asm error: " + what) {}
  AsmError(int line, const std::string& what)
      : Error("asm error (line " + std::to_string(line) + "): " + what) {}
};

/// Invalid simulator configuration or API misuse. When the failure is
/// attributable to one configuration key, `field()` names it so callers
/// (e.g. the campaign spec validator) can report which sweep dimension is
/// broken instead of a free-form string.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what)
      : Error("config error: " + what) {}
  ConfigError(std::string field, const std::string& what)
      : Error("config error: " + field + ": " + what),
        field_(std::move(field)) {}
  const std::string& field() const { return field_; }

 private:
  std::string field_;
};

/// A simulated program performed an illegal operation (bad address, division
/// trap, register-spill in parallel code detected at run time, ...).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error("sim error: " + what) {}
};

/// Violated internal invariant — a bug in the toolchain itself.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what)
      : Error("internal error: " + what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  throw InternalError(std::string(expr) + " at " + file + ":" +
                      std::to_string(line));
}
}  // namespace detail

}  // namespace xmt

/// Internal invariant check; throws xmt::InternalError when violated.
#define XMT_CHECK(expr)                                     \
  do {                                                      \
    if (!(expr))                                            \
      ::xmt::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)
