// Unix-domain stream sockets with newline-delimited framing.
//
// The xmtserved protocol is one JSON document per line in both
// directions, so the transport layer is exactly two concerns: RAII
// around the file descriptors, and line reassembly with an explicit
// frame-size bound. An oversized frame is reported as kOversize after
// the rest of the line has been drained, so a hostile or buggy client
// can neither wedge the reader mid-line nor force unbounded buffering —
// the connection stays usable for the error reply.
#pragma once

#include <cstddef>
#include <string>

#include "src/common/error.h"

namespace xmt {

/// Socket-layer failure (bind/listen/connect). Protocol-level errors are
/// JSON replies, not exceptions.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// One connected stream endpoint. Movable, closes on destruction.
class UnixConn {
 public:
  UnixConn() = default;
  explicit UnixConn(int fd) : fd_(fd) {}
  ~UnixConn();
  UnixConn(UnixConn&& other) noexcept;
  UnixConn& operator=(UnixConn&& other) noexcept;
  UnixConn(const UnixConn&) = delete;
  UnixConn& operator=(const UnixConn&) = delete;

  /// Connects to a listening socket. Throws IoError when nothing listens.
  static UnixConn connect(const std::string& path);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends `line` plus a trailing '\n'. Returns false once the peer is
  /// gone (EPIPE/reset) — never raises SIGPIPE.
  bool sendLine(const std::string& line);

  enum class Recv { kOk, kEof, kOversize };

  /// Reads one '\n'-terminated line (without the terminator) into *out.
  /// kOversize: the line exceeded maxBytes; it has been consumed and
  /// discarded, and the stream is positioned at the next line.
  Recv recvLine(std::string* out, std::size_t maxBytes);

  /// Shuts down both directions, waking a blocked peer/reader. The fd
  /// stays owned (and is closed by the destructor).
  void shutdownBoth();

  void close();

 private:
  int fd_ = -1;
  std::string buf_;  // bytes received but not yet returned
};

/// Listening socket bound to a filesystem path. Removes a stale socket
/// file on bind and unlinks its own on destruction.
class UnixListener {
 public:
  explicit UnixListener(std::string path);
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Blocks for the next connection; returns an invalid conn once
  /// wake() has been called (or the listener failed).
  UnixConn accept();

  /// Unblocks accept() permanently (idempotent, thread-safe).
  void wake();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

}  // namespace xmt
