
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assembler.cc" "tests/CMakeFiles/xmt_tests.dir/test_assembler.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_assembler.cc.o.d"
  "/root/repo/tests/test_async_icn.cc" "tests/CMakeFiles/xmt_tests.dir/test_async_icn.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_async_icn.cc.o.d"
  "/root/repo/tests/test_checkpoint.cc" "tests/CMakeFiles/xmt_tests.dir/test_checkpoint.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_checkpoint.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/xmt_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_compiler.cc" "tests/CMakeFiles/xmt_tests.dir/test_compiler.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_compiler.cc.o.d"
  "/root/repo/tests/test_compiler_fuzz.cc" "tests/CMakeFiles/xmt_tests.dir/test_compiler_fuzz.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_compiler_fuzz.cc.o.d"
  "/root/repo/tests/test_configs.cc" "tests/CMakeFiles/xmt_tests.dir/test_configs.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_configs.cc.o.d"
  "/root/repo/tests/test_desim.cc" "tests/CMakeFiles/xmt_tests.dir/test_desim.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_desim.cc.o.d"
  "/root/repo/tests/test_funcmodel.cc" "tests/CMakeFiles/xmt_tests.dir/test_funcmodel.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_funcmodel.cc.o.d"
  "/root/repo/tests/test_isa.cc" "tests/CMakeFiles/xmt_tests.dir/test_isa.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_isa.cc.o.d"
  "/root/repo/tests/test_memory_model.cc" "tests/CMakeFiles/xmt_tests.dir/test_memory_model.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_memory_model.cc.o.d"
  "/root/repo/tests/test_memsys.cc" "tests/CMakeFiles/xmt_tests.dir/test_memsys.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_memsys.cc.o.d"
  "/root/repo/tests/test_optlevels.cc" "tests/CMakeFiles/xmt_tests.dir/test_optlevels.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_optlevels.cc.o.d"
  "/root/repo/tests/test_phase.cc" "tests/CMakeFiles/xmt_tests.dir/test_phase.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_phase.cc.o.d"
  "/root/repo/tests/test_plugins_trace.cc" "tests/CMakeFiles/xmt_tests.dir/test_plugins_trace.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_plugins_trace.cc.o.d"
  "/root/repo/tests/test_postpass.cc" "tests/CMakeFiles/xmt_tests.dir/test_postpass.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_postpass.cc.o.d"
  "/root/repo/tests/test_power.cc" "tests/CMakeFiles/xmt_tests.dir/test_power.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_power.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/xmt_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_sim_memsys.cc" "tests/CMakeFiles/xmt_tests.dir/test_sim_memsys.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_sim_memsys.cc.o.d"
  "/root/repo/tests/test_toolchain.cc" "tests/CMakeFiles/xmt_tests.dir/test_toolchain.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_toolchain.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/xmt_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/xmt_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xmt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
