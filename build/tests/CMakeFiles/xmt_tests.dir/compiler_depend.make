# Empty compiler generated dependencies file for xmt_tests.
# This may be replaced when dependencies are built.
