# Empty compiler generated dependencies file for bench_small_parallelism.
# This may be replaced when dependencies are built.
