file(REMOVE_RECURSE
  "CMakeFiles/bench_small_parallelism.dir/bench_small_parallelism.cc.o"
  "CMakeFiles/bench_small_parallelism.dir/bench_small_parallelism.cc.o.d"
  "bench_small_parallelism"
  "bench_small_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_small_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
