# Empty dependencies file for bench_dvfs_thermal.
# This may be replaced when dependencies are built.
