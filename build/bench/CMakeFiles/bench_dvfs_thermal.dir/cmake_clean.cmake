file(REMOVE_RECURSE
  "CMakeFiles/bench_dvfs_thermal.dir/bench_dvfs_thermal.cc.o"
  "CMakeFiles/bench_dvfs_thermal.dir/bench_dvfs_thermal.cc.o.d"
  "bench_dvfs_thermal"
  "bench_dvfs_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dvfs_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
