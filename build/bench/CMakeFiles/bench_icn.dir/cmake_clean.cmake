file(REMOVE_RECURSE
  "CMakeFiles/bench_icn.dir/bench_icn.cc.o"
  "CMakeFiles/bench_icn.dir/bench_icn.cc.o.d"
  "bench_icn"
  "bench_icn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_icn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
