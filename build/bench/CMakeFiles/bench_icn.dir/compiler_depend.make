# Empty compiler generated dependencies file for bench_icn.
# This may be replaced when dependencies are built.
