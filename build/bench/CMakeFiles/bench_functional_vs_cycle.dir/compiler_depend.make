# Empty compiler generated dependencies file for bench_functional_vs_cycle.
# This may be replaced when dependencies are built.
