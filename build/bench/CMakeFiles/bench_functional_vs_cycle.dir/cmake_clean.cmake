file(REMOVE_RECURSE
  "CMakeFiles/bench_functional_vs_cycle.dir/bench_functional_vs_cycle.cc.o"
  "CMakeFiles/bench_functional_vs_cycle.dir/bench_functional_vs_cycle.cc.o.d"
  "bench_functional_vs_cycle"
  "bench_functional_vs_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_functional_vs_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
