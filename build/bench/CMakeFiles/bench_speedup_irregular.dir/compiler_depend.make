# Empty compiler generated dependencies file for bench_speedup_irregular.
# This may be replaced when dependencies are built.
