file(REMOVE_RECURSE
  "CMakeFiles/bench_speedup_irregular.dir/bench_speedup_irregular.cc.o"
  "CMakeFiles/bench_speedup_irregular.dir/bench_speedup_irregular.cc.o.d"
  "bench_speedup_irregular"
  "bench_speedup_irregular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speedup_irregular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
