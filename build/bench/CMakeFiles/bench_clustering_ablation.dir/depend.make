# Empty dependencies file for bench_clustering_ablation.
# This may be replaced when dependencies are built.
