file(REMOVE_RECURSE
  "CMakeFiles/bench_clustering_ablation.dir/bench_clustering_ablation.cc.o"
  "CMakeFiles/bench_clustering_ablation.dir/bench_clustering_ablation.cc.o.d"
  "bench_clustering_ablation"
  "bench_clustering_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clustering_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
