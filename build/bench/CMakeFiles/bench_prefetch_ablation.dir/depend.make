# Empty dependencies file for bench_prefetch_ablation.
# This may be replaced when dependencies are built.
