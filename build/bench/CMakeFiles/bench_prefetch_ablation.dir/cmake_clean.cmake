file(REMOVE_RECURSE
  "CMakeFiles/bench_prefetch_ablation.dir/bench_prefetch_ablation.cc.o"
  "CMakeFiles/bench_prefetch_ablation.dir/bench_prefetch_ablation.cc.o.d"
  "bench_prefetch_ablation"
  "bench_prefetch_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefetch_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
