file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_de_vs_dt.dir/bench_fig5_de_vs_dt.cc.o"
  "CMakeFiles/bench_fig5_de_vs_dt.dir/bench_fig5_de_vs_dt.cc.o.d"
  "bench_fig5_de_vs_dt"
  "bench_fig5_de_vs_dt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_de_vs_dt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
