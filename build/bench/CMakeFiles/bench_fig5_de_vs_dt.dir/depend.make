# Empty dependencies file for bench_fig5_de_vs_dt.
# This may be replaced when dependencies are built.
