file(REMOVE_RECURSE
  "CMakeFiles/bench_ps_vs_psm.dir/bench_ps_vs_psm.cc.o"
  "CMakeFiles/bench_ps_vs_psm.dir/bench_ps_vs_psm.cc.o.d"
  "bench_ps_vs_psm"
  "bench_ps_vs_psm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ps_vs_psm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
