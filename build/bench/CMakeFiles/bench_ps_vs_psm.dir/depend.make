# Empty dependencies file for bench_ps_vs_psm.
# This may be replaced when dependencies are built.
