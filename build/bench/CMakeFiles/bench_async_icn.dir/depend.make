# Empty dependencies file for bench_async_icn.
# This may be replaced when dependencies are built.
