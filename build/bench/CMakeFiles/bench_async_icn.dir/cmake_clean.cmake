file(REMOVE_RECURSE
  "CMakeFiles/bench_async_icn.dir/bench_async_icn.cc.o"
  "CMakeFiles/bench_async_icn.dir/bench_async_icn.cc.o.d"
  "bench_async_icn"
  "bench_async_icn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_async_icn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
