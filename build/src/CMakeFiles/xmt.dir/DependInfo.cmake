
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assembler/assembler.cc" "src/CMakeFiles/xmt.dir/assembler/assembler.cc.o" "gcc" "src/CMakeFiles/xmt.dir/assembler/assembler.cc.o.d"
  "/root/repo/src/assembler/memorymap.cc" "src/CMakeFiles/xmt.dir/assembler/memorymap.cc.o" "gcc" "src/CMakeFiles/xmt.dir/assembler/memorymap.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/xmt.dir/common/config.cc.o" "gcc" "src/CMakeFiles/xmt.dir/common/config.cc.o.d"
  "/root/repo/src/compiler/astprint.cc" "src/CMakeFiles/xmt.dir/compiler/astprint.cc.o" "gcc" "src/CMakeFiles/xmt.dir/compiler/astprint.cc.o.d"
  "/root/repo/src/compiler/driver.cc" "src/CMakeFiles/xmt.dir/compiler/driver.cc.o" "gcc" "src/CMakeFiles/xmt.dir/compiler/driver.cc.o.d"
  "/root/repo/src/compiler/emit.cc" "src/CMakeFiles/xmt.dir/compiler/emit.cc.o" "gcc" "src/CMakeFiles/xmt.dir/compiler/emit.cc.o.d"
  "/root/repo/src/compiler/lexer.cc" "src/CMakeFiles/xmt.dir/compiler/lexer.cc.o" "gcc" "src/CMakeFiles/xmt.dir/compiler/lexer.cc.o.d"
  "/root/repo/src/compiler/lower.cc" "src/CMakeFiles/xmt.dir/compiler/lower.cc.o" "gcc" "src/CMakeFiles/xmt.dir/compiler/lower.cc.o.d"
  "/root/repo/src/compiler/opt.cc" "src/CMakeFiles/xmt.dir/compiler/opt.cc.o" "gcc" "src/CMakeFiles/xmt.dir/compiler/opt.cc.o.d"
  "/root/repo/src/compiler/parser.cc" "src/CMakeFiles/xmt.dir/compiler/parser.cc.o" "gcc" "src/CMakeFiles/xmt.dir/compiler/parser.cc.o.d"
  "/root/repo/src/compiler/postpass.cc" "src/CMakeFiles/xmt.dir/compiler/postpass.cc.o" "gcc" "src/CMakeFiles/xmt.dir/compiler/postpass.cc.o.d"
  "/root/repo/src/compiler/regalloc.cc" "src/CMakeFiles/xmt.dir/compiler/regalloc.cc.o" "gcc" "src/CMakeFiles/xmt.dir/compiler/regalloc.cc.o.d"
  "/root/repo/src/compiler/sema.cc" "src/CMakeFiles/xmt.dir/compiler/sema.cc.o" "gcc" "src/CMakeFiles/xmt.dir/compiler/sema.cc.o.d"
  "/root/repo/src/compiler/transforms.cc" "src/CMakeFiles/xmt.dir/compiler/transforms.cc.o" "gcc" "src/CMakeFiles/xmt.dir/compiler/transforms.cc.o.d"
  "/root/repo/src/desim/clockdomain.cc" "src/CMakeFiles/xmt.dir/desim/clockdomain.cc.o" "gcc" "src/CMakeFiles/xmt.dir/desim/clockdomain.cc.o.d"
  "/root/repo/src/desim/scheduler.cc" "src/CMakeFiles/xmt.dir/desim/scheduler.cc.o" "gcc" "src/CMakeFiles/xmt.dir/desim/scheduler.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/xmt.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/xmt.dir/isa/isa.cc.o.d"
  "/root/repo/src/memsys/cache.cc" "src/CMakeFiles/xmt.dir/memsys/cache.cc.o" "gcc" "src/CMakeFiles/xmt.dir/memsys/cache.cc.o.d"
  "/root/repo/src/power/dvfs.cc" "src/CMakeFiles/xmt.dir/power/dvfs.cc.o" "gcc" "src/CMakeFiles/xmt.dir/power/dvfs.cc.o.d"
  "/root/repo/src/power/floorviz.cc" "src/CMakeFiles/xmt.dir/power/floorviz.cc.o" "gcc" "src/CMakeFiles/xmt.dir/power/floorviz.cc.o.d"
  "/root/repo/src/power/power.cc" "src/CMakeFiles/xmt.dir/power/power.cc.o" "gcc" "src/CMakeFiles/xmt.dir/power/power.cc.o.d"
  "/root/repo/src/power/thermal.cc" "src/CMakeFiles/xmt.dir/power/thermal.cc.o" "gcc" "src/CMakeFiles/xmt.dir/power/thermal.cc.o.d"
  "/root/repo/src/sim/checkpoint.cc" "src/CMakeFiles/xmt.dir/sim/checkpoint.cc.o" "gcc" "src/CMakeFiles/xmt.dir/sim/checkpoint.cc.o.d"
  "/root/repo/src/sim/config.cc" "src/CMakeFiles/xmt.dir/sim/config.cc.o" "gcc" "src/CMakeFiles/xmt.dir/sim/config.cc.o.d"
  "/root/repo/src/sim/cyclemodel.cc" "src/CMakeFiles/xmt.dir/sim/cyclemodel.cc.o" "gcc" "src/CMakeFiles/xmt.dir/sim/cyclemodel.cc.o.d"
  "/root/repo/src/sim/funcmodel.cc" "src/CMakeFiles/xmt.dir/sim/funcmodel.cc.o" "gcc" "src/CMakeFiles/xmt.dir/sim/funcmodel.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/CMakeFiles/xmt.dir/sim/memory.cc.o" "gcc" "src/CMakeFiles/xmt.dir/sim/memory.cc.o.d"
  "/root/repo/src/sim/phase.cc" "src/CMakeFiles/xmt.dir/sim/phase.cc.o" "gcc" "src/CMakeFiles/xmt.dir/sim/phase.cc.o.d"
  "/root/repo/src/sim/plugins.cc" "src/CMakeFiles/xmt.dir/sim/plugins.cc.o" "gcc" "src/CMakeFiles/xmt.dir/sim/plugins.cc.o.d"
  "/root/repo/src/sim/semantics.cc" "src/CMakeFiles/xmt.dir/sim/semantics.cc.o" "gcc" "src/CMakeFiles/xmt.dir/sim/semantics.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/xmt.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/xmt.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/xmt.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/xmt.dir/sim/stats.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/xmt.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/xmt.dir/sim/trace.cc.o.d"
  "/root/repo/src/workloads/graphs.cc" "src/CMakeFiles/xmt.dir/workloads/graphs.cc.o" "gcc" "src/CMakeFiles/xmt.dir/workloads/graphs.cc.o.d"
  "/root/repo/src/workloads/kernels.cc" "src/CMakeFiles/xmt.dir/workloads/kernels.cc.o" "gcc" "src/CMakeFiles/xmt.dir/workloads/kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
