# Empty dependencies file for xmt.
# This may be replaced when dependencies are built.
