file(REMOVE_RECURSE
  "libxmt.a"
)
