# Empty compiler generated dependencies file for xmtcc.
# This may be replaced when dependencies are built.
