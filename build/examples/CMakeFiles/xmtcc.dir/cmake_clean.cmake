file(REMOVE_RECURSE
  "CMakeFiles/xmtcc.dir/xmtcc.cpp.o"
  "CMakeFiles/xmtcc.dir/xmtcc.cpp.o.d"
  "xmtcc"
  "xmtcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmtcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
