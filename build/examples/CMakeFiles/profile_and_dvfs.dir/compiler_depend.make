# Empty compiler generated dependencies file for profile_and_dvfs.
# This may be replaced when dependencies are built.
