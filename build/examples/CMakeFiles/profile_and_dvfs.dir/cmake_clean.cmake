file(REMOVE_RECURSE
  "CMakeFiles/profile_and_dvfs.dir/profile_and_dvfs.cpp.o"
  "CMakeFiles/profile_and_dvfs.dir/profile_and_dvfs.cpp.o.d"
  "profile_and_dvfs"
  "profile_and_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_and_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
