// Serving-layer latency: what the content-addressed result cache and the
// xmtserved daemon buy over re-simulating.
//
// Four measurements:
//
//   - coldPointSimulate — compile + cycle-accurate simulate of one sweep
//     point, the price every uncached request pays.
//   - cachedPointLookup — the same point served from the on-disk cache
//     (read, parse, verify, recency refresh). The cold_vs_hit_speedup
//     counter is the headline: a warm hit must be orders of magnitude
//     (>=100x) cheaper than the simulation it replaces.
//   - daemonWarmRoundTrip — full protocol cost of a warm single-point
//     job: connect-once, submit over the Unix socket, dispatch through
//     the fair queue, serve from cache, stream the record back.
//   - daemonColdFanout — 4 clients concurrently request the same cold
//     point; the coalescing_factor counter reports the fraction of
//     requests resolved by waiting on another client's simulation
//     (3/4 = 0.75 when coalescing is perfect).
#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/campaign/runner.h"
#include "src/campaign/spec.h"
#include "src/server/cache.h"
#include "src/server/client.h"
#include "src/server/daemon.h"

namespace {

using xmt::campaign::CampaignPoint;
using xmt::campaign::CampaignSpec;
using xmt::campaign::RunPayload;
using xmt::server::ResultCache;
using xmt::server::Server;
using xmt::server::ServerClient;
using xmt::server::ServerOptions;

std::string benchDir(const std::string& tag) {
  auto d =
      std::filesystem::temp_directory_path() / ("xmt_bench_server_" + tag);
  std::filesystem::remove_all(d);
  std::filesystem::create_directories(d);
  return d.string();
}

std::string pointSpec(int n) {
  return "campaign = bench\nbase = fpga64\nworkload = vadd\nworkload.n = " +
         std::to_string(n) + "\nmode = cycle\n";
}

CampaignPoint benchPoint(int n) {
  return CampaignSpec::fromText(pointSpec(n)).expand().front();
}

void coldPointSimulate(benchmark::State& state) {
  CampaignPoint point = benchPoint(4096);
  for (auto _ : state) {
    RunPayload p = xmt::campaign::simulatePoint(point);
    if (!p.ok) state.SkipWithError("simulation failed");
    benchmark::DoNotOptimize(p.json.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(coldPointSimulate)->Unit(benchmark::kMillisecond);

void cachedPointLookup(benchmark::State& state) {
  CampaignPoint point = benchPoint(4096);
  std::string key = ResultCache::keyFor(point);
  std::string dir = benchDir("lookup");
  ResultCache cache(dir, 256ull << 20);

  // One cold run to fill the cache — also the reference for the speedup.
  auto t0 = std::chrono::steady_clock::now();
  RunPayload cold = xmt::campaign::simulatePoint(point);
  auto t1 = std::chrono::steady_clock::now();
  double coldSeconds = std::chrono::duration<double>(t1 - t0).count();
  if (!cold.ok) {
    state.SkipWithError("simulation failed");
    return;
  }
  cache.insert(key, cold);

  auto h0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    RunPayload hit;
    if (!cache.lookup(key, &hit)) state.SkipWithError("cache miss");
    benchmark::DoNotOptimize(hit.json.data());
  }
  auto h1 = std::chrono::steady_clock::now();
  double hitSeconds = std::chrono::duration<double>(h1 - h0).count() /
                      static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations());
  state.counters["cold_ms"] = coldSeconds * 1e3;
  state.counters["hit_us"] = hitSeconds * 1e6;
  state.counters["cold_vs_hit_speedup"] =
      hitSeconds > 0 ? coldSeconds / hitSeconds : 0;
  std::filesystem::remove_all(dir);
}
BENCHMARK(cachedPointLookup)->Unit(benchmark::kMicrosecond);

void daemonWarmRoundTrip(benchmark::State& state) {
  std::string dir = benchDir("warm_rt");
  ServerOptions opts;
  opts.socketPath = dir + "/d.sock";
  opts.cacheDir = dir + "/cache";
  opts.workers = 2;
  Server server(opts);
  ServerClient client(opts.socketPath);
  std::string spec = pointSpec(1024);
  {  // warm the cache once
    auto sub = client.submitSpec(spec);
    if (!sub.ok) {
      state.SkipWithError("warmup submit failed");
      return;
    }
    client.waitForJob(sub.job, 1);
  }
  for (auto _ : state) {
    auto sub = client.submitSpec(spec);
    if (!sub.ok) state.SkipWithError("submit failed");
    auto page = client.waitForJob(sub.job, 1);
    if (page.records.size() != 1) state.SkipWithError("bad result");
    benchmark::DoNotOptimize(page.records.data());
  }
  state.SetItemsProcessed(state.iterations());
  server.stop();
  std::filesystem::remove_all(dir);
}
BENCHMARK(daemonWarmRoundTrip)->Unit(benchmark::kMillisecond);

void daemonColdFanout(benchmark::State& state) {
  constexpr int kClients = 4;
  std::string dir = benchDir("fanout");
  ServerOptions opts;
  opts.socketPath = dir + "/d.sock";
  opts.cacheDir = dir + "/cache";
  opts.workers = kClients;
  Server server(opts);
  std::uint64_t sims0 = xmt::campaign::simulationsExecuted();
  std::uint64_t requests = 0;
  int n = 1000;  // distinct per iteration so every round starts cold
  for (auto _ : state) {
    std::string spec = pointSpec(++n);
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, spec] {
        ServerClient client(opts.socketPath);
        auto sub = client.submitSpec(spec);
        if (sub.ok) client.waitForJob(sub.job, 1);
      });
    }
    for (auto& t : threads) t.join();
    requests += kClients;
  }
  std::uint64_t sims = xmt::campaign::simulationsExecuted() - sims0;
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
  // 0.75 with 4 clients means every concurrent duplicate was coalesced or
  // cache-served; 0 means every client simulated for itself.
  state.counters["coalescing_factor"] =
      requests > 0
          ? static_cast<double>(requests - sims) / static_cast<double>(requests)
          : 0;
  state.counters["simulations"] = static_cast<double>(sims);
  server.stop();
  std::filesystem::remove_all(dir);
}
BENCHMARK(daemonColdFanout)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
